// /statsz — the machine-readable export of an obs::MetricsRegistry snapshot.
// The JSON is deterministic: metrics appear in ascending name order (the
// json::Object preserves insertion order and the snapshot is pre-sorted), so
// two snapshots of identical recordings serialize byte-identically — the
// golden test in tests/obs_test.cc pins the format.
//
// Shape:
//   {
//     "counters":   { "<name>": <uint>, ... },
//     "gauges":     { "<name>": <int>, ... },
//     "histograms": { "<name>": { "count": n, "mean_ns": m, "p50_ns": ...,
//                                 "p95_ns": ..., "p99_ns": ..., "max_ns": ...,
//                                 "sum_ns": ... }, ... }
//   }
//
// Histogram values are nanoseconds by convention (every built-in histogram
// records ns); counters/gauges are unitless.
#pragma once

#include <ostream>

#include "json/json.h"
#include "obs/metrics.h"

namespace trips::obs {

/// Builds the /statsz JSON document from a snapshot.
json::Value StatszJson(const MetricsSnapshot& snapshot);

/// Snapshots `registry` and writes the pretty-printed JSON (with a trailing
/// newline) to `out` — the one-call export used by Service::DumpStatsz and
/// Cluster::DumpStatsz.
void DumpStatsz(const MetricsRegistry& registry, std::ostream& out);

}  // namespace trips::obs
