#include "obs/statsz.h"

namespace trips::obs {

json::Value StatszJson(const MetricsSnapshot& snapshot) {
  json::Object counters;
  for (const auto& [name, value] : snapshot.counters) {
    counters[name] = static_cast<int64_t>(value);
  }
  json::Object gauges;
  for (const auto& [name, value] : snapshot.gauges) {
    gauges[name] = value;
  }
  json::Object histograms;
  for (const auto& [name, summary] : snapshot.histograms) {
    json::Object h;
    h["count"] = static_cast<int64_t>(summary.count);
    h["mean_ns"] = summary.mean;
    h["p50_ns"] = static_cast<int64_t>(summary.p50);
    h["p95_ns"] = static_cast<int64_t>(summary.p95);
    h["p99_ns"] = static_cast<int64_t>(summary.p99);
    h["max_ns"] = static_cast<int64_t>(summary.max);
    h["sum_ns"] = static_cast<int64_t>(summary.sum);
    histograms[name] = std::move(h);
  }
  json::Object root;
  root["counters"] = std::move(counters);
  root["gauges"] = std::move(gauges);
  root["histograms"] = std::move(histograms);
  return json::Value(std::move(root));
}

void DumpStatsz(const MetricsRegistry& registry, std::ostream& out) {
  out << StatszJson(registry.Snap()).Pretty() << "\n";
}

}  // namespace trips::obs
