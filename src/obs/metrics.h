// trips::obs — the unified metrics & stage-tracing subsystem. Every layer of
// the serving stack (util::ThreadPool, core::Translator sessions, the
// StreamSession ingest path, store::TripStore, dsm routing/spatial caches,
// cluster::Cluster) records into one obs::MetricsRegistry, and one
// deterministic snapshot (obs/statsz.h) exports the lot as JSON.
//
// Design constraints, in order:
//   1. Hot-path cost. Counters and histograms are lock-free and
//      thread-sharded: each recording thread owns a cache-line-padded slot,
//      so concurrent translation workers never contend on a shared line. One
//      Counter::Add is a single relaxed fetch_add on a thread-local shard;
//      reads merge the shards.
//   2. Determinism. A snapshot depends only on WHAT was recorded, never on
//      which thread recorded it or how the shards interleaved: counters sum,
//      histogram quantiles are computed from the merged bucket counts, and
//      the exported JSON orders metrics by name. tests/obs_test.cc holds the
//      merge-determinism and golden-snapshot suites.
//   3. Opt-out. Runtime: MetricsRegistry::set_enabled(false) (or the
//      TRIPS_OBS_DISABLED environment variable) turns every registry-owned
//      metric into a cheap early-return; translation output is byte-identical
//      metrics on or off. Compile time: build with -DTRIPS_OBS_DISABLED and
//      the recording bodies compile away entirely.
//
// Histograms are log-bucketed: fixed pow-1.25 buckets spanning nanoseconds to
// minutes (96 buckets from 64 ns to ~80 s; a pure 64-bucket ladder at ratio
// 1.25 cannot reach minutes, so the ladder is extended instead of coarsened).
// The first bucket absorbs everything below 64 ns and the last is open-ended;
// the maximum is tracked exactly, and reported quantiles clamp to it.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace trips::obs {

/// Monotonic wall time in nanoseconds (steady clock) — the time base of every
/// StageTimer and trace stamp.
uint64_t NowNanos();

/// Recording slots per metric. Threads are assigned slots round-robin, so up
/// to kMetricShards recording threads touch distinct cache lines.
inline constexpr size_t kMetricShards = 16;

namespace internal {
/// This thread's fixed shard slot in [0, kMetricShards).
uint32_t ThisThreadSlot();
}  // namespace internal

/// Monotonic event counter. Thread-sharded: Add is one relaxed fetch_add on
/// the calling thread's slot; Value merges the slots. Default-constructed
/// counters are always on; registry-owned counters honour the registry's
/// enabled switch.
class Counter {
 public:
  Counter() = default;
  explicit Counter(const std::atomic<bool>* gate) : gate_(gate) {}
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t delta = 1) {
#if !defined(TRIPS_OBS_DISABLED)
    if (gate_ != nullptr && !gate_->load(std::memory_order_relaxed)) return;
    shards_[internal::ThisThreadSlot()].v.fetch_add(delta,
                                                    std::memory_order_relaxed);
#else
    (void)delta;
#endif
  }

  /// Sum over all shards. Concurrent Adds may or may not be included (each
  /// shard is read once; the result is a monotone-consistent snapshot).
  uint64_t Value() const {
    uint64_t total = 0;
    for (const Shard& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

  /// Zeroes every shard. Not linearizable against concurrent Adds; call at
  /// quiescent points (benchmark phase boundaries, test setup).
  void Reset() {
    for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> v{0};
  };
  std::array<Shard, kMetricShards> shards_{};
  const std::atomic<bool>* gate_ = nullptr;
};

/// Signed level metric (queue depths, buffer occupancy). Add/Sub are
/// thread-sharded like Counter; Set is for single-writer configuration values
/// (worker counts) and must not race with concurrent Add/Sub.
class Gauge {
 public:
  Gauge() = default;
  explicit Gauge(const std::atomic<bool>* gate) : gate_(gate) {}
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Add(int64_t delta) {
#if !defined(TRIPS_OBS_DISABLED)
    if (gate_ != nullptr && !gate_->load(std::memory_order_relaxed)) return;
    shards_[internal::ThisThreadSlot()].v.fetch_add(delta,
                                                    std::memory_order_relaxed);
#else
    (void)delta;
#endif
  }
  void Sub(int64_t delta) { Add(-delta); }

  /// Overwrites the merged value (zeroes all shards, writes slot 0).
  void Set(int64_t value) {
#if !defined(TRIPS_OBS_DISABLED)
    for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
    shards_[0].v.store(value, std::memory_order_relaxed);
#else
    (void)value;
#endif
  }

  int64_t Value() const {
    int64_t total = 0;
    for (const Shard& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<int64_t> v{0};
  };
  std::array<Shard, kMetricShards> shards_{};
  const std::atomic<bool>* gate_ = nullptr;
};

/// Deterministic digest of one histogram, computed from the merged shards.
/// count/sum/max are exact; quantiles have log-bucket resolution (each bucket
/// is at most 25% wide) and clamp to the exact max, and depend only on the
/// merged bucket counts — never on shard interleaving.
struct HistogramSummary {
  uint64_t count = 0;
  uint64_t sum = 0;   ///< exact sum of recorded values
  uint64_t max = 0;   ///< exact maximum recorded value
  uint64_t p50 = 0;
  uint64_t p95 = 0;
  uint64_t p99 = 0;
  double mean = 0;    ///< sum / count (0 when empty)

  bool operator==(const HistogramSummary&) const = default;
};

/// Log-bucketed latency histogram (values in nanoseconds by convention; any
/// uint64 works). Record is lock-free: three relaxed adds and one max update
/// on the calling thread's shard.
class Histogram {
 public:
  static constexpr size_t kBuckets = 96;

  Histogram() = default;
  explicit Histogram(const std::atomic<bool>* gate) : gate_(gate) {}
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Record(uint64_t value) {
#if !defined(TRIPS_OBS_DISABLED)
    if (!recording()) return;
    Shard& shard = shards_[internal::ThisThreadSlot()];
    shard.buckets[BucketOf(value)].fetch_add(1, std::memory_order_relaxed);
    shard.count.fetch_add(1, std::memory_order_relaxed);
    shard.sum.fetch_add(value, std::memory_order_relaxed);
    uint64_t seen = shard.max.load(std::memory_order_relaxed);
    while (value > seen && !shard.max.compare_exchange_weak(
                               seen, value, std::memory_order_relaxed)) {
    }
#else
    (void)value;
#endif
  }

  /// True when a Record call would actually record — StageTimer checks this
  /// before touching the clock, so a disabled registry costs no clock reads.
  bool recording() const {
#if defined(TRIPS_OBS_DISABLED)
    return false;
#else
    return gate_ == nullptr || gate_->load(std::memory_order_relaxed);
#endif
  }

  /// Merges the shards into a deterministic summary.
  HistogramSummary Summarize() const;

  /// Inclusive upper bound of bucket `i` (the pow-1.25 ladder). Exposed for
  /// the determinism tests and for documentation of quantile resolution.
  static uint64_t BucketUpperBound(size_t i);

  /// The bucket `value` lands in.
  static size_t BucketOf(uint64_t value);

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<uint64_t>, kBuckets> buckets{};
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum{0};
    std::atomic<uint64_t> max{0};
  };
  std::array<Shard, kMetricShards> shards_{};
  const std::atomic<bool>* gate_ = nullptr;
};

/// RAII stage timer: records the enclosed scope's wall time into a histogram.
/// Null histogram or disabled registry: no clock reads, no recording.
///
///     { obs::StageTimer t(metrics->clean_ns); cleaner.CleanBlock(...); }
class StageTimer {
 public:
  explicit StageTimer(Histogram* histogram)
      : histogram_(histogram),
        start_ns_(histogram != nullptr && histogram->recording() ? NowNanos()
                                                                 : 0) {}
  ~StageTimer() {
    if (start_ns_ != 0) histogram_->Record(NowNanos() - start_ns_);
  }
  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

 private:
  Histogram* histogram_;
  uint64_t start_ns_;
};

/// Lightweight per-record-batch trace context: stamps when raw data entered
/// the system, so a flushed translation result can report its true
/// ingest-to-emit latency (arrival of the OLDEST raw record -> result
/// delivery — the worst-case, SLO-relevant latency of the flush). A zero
/// stamp means "not traced" (batch requests, metrics off). The stamp is read
/// from the session's trace clock: obs::NowNanos() on a live feed, or the
/// harness-injected clock (core::StreamOptions::trace_clock) when a load
/// generator replays a simulated schedule — either way the delivery reading
/// uses the same clock, so stamp minus reading is always one time base.
struct TraceContext {
  uint64_t ingest_steady_ns = 0;  ///< trace-clock ns at first ingest

  bool active() const { return ingest_steady_ns != 0; }
};

/// One deterministic snapshot of a registry: metrics in name order, callback
/// gauges folded in. The JSON export (obs/statsz.h) serializes exactly this.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<std::pair<std::string, HistogramSummary>> histograms;

  /// Point lookups by metric name (binary search — each vector is kept in
  /// ascending name order). Consumers that read a snapshot programmatically
  /// (the load/SLO harness pulling drop counters and queue-depth gauges) use
  /// these instead of re-implementing the scan. The *_or forms return the
  /// fallback when the metric never recorded.
  const uint64_t* counter(const std::string& name) const;
  const int64_t* gauge(const std::string& name) const;
  const HistogramSummary* histogram(const std::string& name) const;
  uint64_t counter_or(const std::string& name, uint64_t fallback = 0) const;
  int64_t gauge_or(const std::string& name, int64_t fallback = 0) const;
};

/// Owns named metrics and hands out stable pointers to them. Lookup/creation
/// takes a lock (call at wiring time, keep the returned pointer for the hot
/// path); the metrics themselves are lock-free. The registry's enabled flag
/// gates every owned metric at recording time.
class MetricsRegistry {
 public:
  /// Enabled by default; the TRIPS_OBS_DISABLED environment variable (any
  /// non-empty value except "0") or the compile-time macro start it disabled.
  MetricsRegistry();
  explicit MetricsRegistry(bool enabled);

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Finds or creates. The returned pointer stays valid for the registry's
  /// lifetime; callers cache it and record lock-free.
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name);

  /// Registers (or replaces) a pull-style gauge evaluated at snapshot time —
  /// for values another subsystem already maintains (routing cache hits,
  /// segment counts). The callback must stay valid until RemoveCallback or
  /// registry destruction, and must not reenter the registry.
  void SetCallback(const std::string& name, std::function<int64_t()> fn);
  void RemoveCallback(const std::string& name);

  /// Runtime recording switch. Disabling stops recording only; existing
  /// values remain readable and snapshots still work.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  /// Deterministic snapshot: every metric by ascending name, histogram shards
  /// merged, callbacks evaluated.
  MetricsSnapshot Snap() const;

 private:
  std::atomic<bool> enabled_{true};
  mutable std::mutex mu_;  // guards the maps; metric objects are lock-free
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::function<int64_t()>> callbacks_;
};

}  // namespace trips::obs
