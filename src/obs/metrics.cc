#include "obs/metrics.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>

namespace trips::obs {

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

namespace internal {

uint32_t ThisThreadSlot() {
  // Round-robin assignment spreads recording threads evenly over the shards
  // (a hash of thread::id would collide for small thread counts).
  static std::atomic<uint32_t> next{0};
  thread_local uint32_t slot =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return slot;
}

}  // namespace internal

// ---- Histogram --------------------------------------------------------------

namespace {

// The pow-1.25 bucket ladder, built once with integer arithmetic so every
// build and platform agrees on the boundaries: bounds[0] = 64 ns, then
// bounds[i+1] = max(bounds[i]+1, bounds[i]*5/4). 96 steps reach ~80 s; the
// last bucket is open-ended.
std::array<uint64_t, Histogram::kBuckets> BuildBounds() {
  std::array<uint64_t, Histogram::kBuckets> bounds{};
  uint64_t b = 64;
  for (size_t i = 0; i < Histogram::kBuckets; ++i) {
    bounds[i] = b;
    b = std::max(b + 1, b / 4 * 5);
  }
  return bounds;
}

const std::array<uint64_t, Histogram::kBuckets>& Bounds() {
  static const std::array<uint64_t, Histogram::kBuckets> bounds = BuildBounds();
  return bounds;
}

}  // namespace

uint64_t Histogram::BucketUpperBound(size_t i) {
  return Bounds()[std::min(i, kBuckets - 1)];
}

size_t Histogram::BucketOf(uint64_t value) {
  const auto& bounds = Bounds();
  // First bucket whose inclusive upper bound admits `value`; the last bucket
  // absorbs everything beyond the ladder.
  return static_cast<size_t>(
      std::lower_bound(bounds.begin(), bounds.end() - 1, value) -
      bounds.begin());
}

HistogramSummary Histogram::Summarize() const {
  // Merge the shards. The merged arrays depend only on what was recorded
  // (addition commutes), so the summary is interleaving-independent.
  std::array<uint64_t, kBuckets> buckets{};
  HistogramSummary out;
  for (const Shard& shard : shards_) {
    for (size_t i = 0; i < kBuckets; ++i) {
      buckets[i] += shard.buckets[i].load(std::memory_order_relaxed);
    }
    out.count += shard.count.load(std::memory_order_relaxed);
    out.sum += shard.sum.load(std::memory_order_relaxed);
    out.max = std::max(out.max, shard.max.load(std::memory_order_relaxed));
  }
  if (out.count == 0) return out;
  out.mean = static_cast<double>(out.sum) / static_cast<double>(out.count);

  // Quantile = upper bound of the bucket holding the rank-th recording,
  // clamped to the exact max (so p99 of a single value IS that value).
  auto quantile = [&](double q) -> uint64_t {
    uint64_t rank = static_cast<uint64_t>(
        std::ceil(q * static_cast<double>(out.count)));
    if (rank < 1) rank = 1;
    if (rank > out.count) rank = out.count;
    uint64_t cum = 0;
    for (size_t i = 0; i < kBuckets; ++i) {
      cum += buckets[i];
      if (cum >= rank) return std::min(BucketUpperBound(i), out.max);
    }
    return out.max;
  };
  out.p50 = quantile(0.50);
  out.p95 = quantile(0.95);
  out.p99 = quantile(0.99);
  return out;
}

// ---- MetricsSnapshot --------------------------------------------------------

namespace {

// Binary search over a name-sorted (name, value) vector; nullptr when absent.
template <typename V>
const V* FindByName(const std::vector<std::pair<std::string, V>>& items,
                    const std::string& name) {
  auto it = std::lower_bound(
      items.begin(), items.end(), name,
      [](const std::pair<std::string, V>& a, const std::string& b) {
        return a.first < b;
      });
  if (it == items.end() || it->first != name) return nullptr;
  return &it->second;
}

}  // namespace

const uint64_t* MetricsSnapshot::counter(const std::string& name) const {
  return FindByName(counters, name);
}

const int64_t* MetricsSnapshot::gauge(const std::string& name) const {
  return FindByName(gauges, name);
}

const HistogramSummary* MetricsSnapshot::histogram(const std::string& name) const {
  return FindByName(histograms, name);
}

uint64_t MetricsSnapshot::counter_or(const std::string& name,
                                     uint64_t fallback) const {
  const uint64_t* v = counter(name);
  return v != nullptr ? *v : fallback;
}

int64_t MetricsSnapshot::gauge_or(const std::string& name,
                                  int64_t fallback) const {
  const int64_t* v = gauge(name);
  return v != nullptr ? *v : fallback;
}

// ---- MetricsRegistry --------------------------------------------------------

namespace {

bool DefaultEnabled() {
#if defined(TRIPS_OBS_DISABLED)
  return false;
#else
  const char* env = std::getenv("TRIPS_OBS_DISABLED");
  return env == nullptr || env[0] == '\0' ||
         (env[0] == '0' && env[1] == '\0');
#endif
}

}  // namespace

MetricsRegistry::MetricsRegistry() : enabled_(DefaultEnabled()) {}

MetricsRegistry::MetricsRegistry(bool enabled) : enabled_(enabled) {}

Counter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>(&enabled_);
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>(&enabled_);
  return slot.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(&enabled_);
  return slot.get();
}

void MetricsRegistry::SetCallback(const std::string& name,
                                  std::function<int64_t()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  callbacks_[name] = std::move(fn);
}

void MetricsRegistry::RemoveCallback(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  callbacks_.erase(name);
}

MetricsSnapshot MetricsRegistry::Snap() const {
  MetricsSnapshot snap;
  std::vector<std::pair<std::string, std::function<int64_t()>>> callbacks;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snap.counters.reserve(counters_.size());
    for (const auto& [name, c] : counters_) {
      snap.counters.emplace_back(name, c->Value());
    }
    snap.gauges.reserve(gauges_.size() + callbacks_.size());
    for (const auto& [name, g] : gauges_) {
      snap.gauges.emplace_back(name, g->Value());
    }
    snap.histograms.reserve(histograms_.size());
    for (const auto& [name, h] : histograms_) {
      snap.histograms.emplace_back(name, h->Summarize());
    }
    callbacks.assign(callbacks_.begin(), callbacks_.end());
  }
  // Callbacks run outside the lock (they may take other subsystems' locks);
  // fold them into the gauge list and restore name order.
  for (const auto& [name, fn] : callbacks) snap.gauges.emplace_back(name, fn());
  std::sort(snap.gauges.begin(), snap.gauges.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return snap;
}

}  // namespace trips::obs
