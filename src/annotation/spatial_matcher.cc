#include "annotation/spatial_matcher.h"

#include <map>

namespace trips::annotation {

SpatialMatcher::SpatialMatcher(const dsm::Dsm* dsm, SpatialMatcherOptions options)
    : dsm_(dsm), options_(options) {}

SpatialMatch SpatialMatcher::Match(const positioning::PositioningSequence& seq,
                                   size_t begin, size_t end) const {
  SpatialMatch out;
  if (end > seq.records.size()) end = seq.records.size();
  if (begin >= end) return out;

  // Each record votes with the time it "owns": half the gap to each
  // neighbouring record (1 for singletons).
  std::map<dsm::RegionId, double> votes;
  double total = 0;
  for (size_t i = begin; i < end; ++i) {
    double weight = 0;
    if (i > begin) {
      weight +=
          static_cast<double>(seq.records[i].timestamp - seq.records[i - 1].timestamp) /
          2;
    }
    if (i + 1 < end) {
      weight +=
          static_cast<double>(seq.records[i + 1].timestamp - seq.records[i].timestamp) /
          2;
    }
    if (weight <= 0) weight = 1;
    dsm::RegionId rid = dsm_->RegionAt(seq.records[i].location);
    votes[rid] += weight;
    total += weight;
  }

  dsm::RegionId best = dsm::kInvalidRegion;
  double best_votes = 0;
  for (const auto& [rid, v] : votes) {
    if (rid == dsm::kInvalidRegion) continue;
    if (v > best_votes) {
      best_votes = v;
      best = rid;
    }
  }
  if (best == dsm::kInvalidRegion || total <= 0) return out;
  double coverage = best_votes / total;
  if (coverage < options_.min_coverage) return out;

  out.region = best;
  out.coverage = coverage;
  if (const dsm::SemanticRegion* r = dsm_->GetRegion(best)) {
    out.region_name = r->name;
  }
  return out;
}

}  // namespace trips::annotation
