#include "annotation/spatial_matcher.h"

#include <algorithm>
#include <vector>

#include "positioning/record_block.h"

namespace trips::annotation {

using positioning::LocationAt;
using positioning::RecordCount;
using positioning::TimeAt;

SpatialMatcher::SpatialMatcher(const dsm::Dsm* dsm, SpatialMatcherOptions options)
    : dsm_(dsm), options_(options) {}

template <typename Source>
SpatialMatch SpatialMatcher::MatchImpl(const Source& src, size_t begin,
                                       size_t end) const {
  SpatialMatch out;
  if (end > RecordCount(src)) end = RecordCount(src);
  if (begin >= end) return out;

  // Flat per-region vote accumulator, reused across calls (thread-local: one
  // matcher instance serves all translation workers). The buffer is indexed
  // by region id and only the touched entries are reset afterwards, so the
  // steady-state inner loop allocates nothing.
  static thread_local std::vector<double> votes;
  static thread_local std::vector<dsm::RegionId> touched;
  size_t region_count = dsm_->regions().size();
  if (votes.size() < region_count) votes.resize(region_count, 0);
  touched.clear();

  // Each record votes with the time it "owns": half the gap to each
  // neighbouring record (1 for singletons).
  double total = 0;
  for (size_t i = begin; i < end; ++i) {
    double weight = 0;
    if (i > begin) {
      weight += static_cast<double>(TimeAt(src, i) - TimeAt(src, i - 1)) / 2;
    }
    if (i + 1 < end) {
      weight += static_cast<double>(TimeAt(src, i + 1) - TimeAt(src, i)) / 2;
    }
    if (weight <= 0) weight = 1;
    dsm::RegionId rid = dsm_->RegionAt(LocationAt(src, i));
    if (rid != dsm::kInvalidRegion) {
      if (votes[rid] == 0) touched.push_back(rid);
      votes[rid] += weight;
    }
    total += weight;
  }

  // Candidates in ascending region id with a strict comparison: the same
  // winner (lowest id among vote ties) the former std::map accumulator chose.
  std::sort(touched.begin(), touched.end());
  dsm::RegionId best = dsm::kInvalidRegion;
  double best_votes = 0;
  for (dsm::RegionId rid : touched) {
    if (votes[rid] > best_votes) {
      best_votes = votes[rid];
      best = rid;
    }
  }
  for (dsm::RegionId rid : touched) votes[rid] = 0;

  if (best == dsm::kInvalidRegion || total <= 0) return out;
  double coverage = best_votes / total;
  if (coverage < options_.min_coverage) return out;

  out.region = best;
  out.coverage = coverage;
  if (const dsm::SemanticRegion* r = dsm_->GetRegion(best)) {
    out.region_name = r->name;
  }
  return out;
}

SpatialMatch SpatialMatcher::Match(const positioning::PositioningSequence& seq,
                                   size_t begin, size_t end) const {
  return MatchImpl(seq, begin, end);
}

SpatialMatch SpatialMatcher::Match(const positioning::RecordBlock& block,
                                   size_t begin, size_t end) const {
  return MatchImpl(block, begin, end);
}

}  // namespace trips::annotation
