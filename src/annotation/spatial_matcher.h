// Spatial matching — the spatial-annotation half of the Annotation layer
// (§3): "The spatial annotation is made by matching the semantic regions in
// the DSM created by the Space Modeler."
#pragma once

#include <string>

#include "dsm/dsm.h"
#include "positioning/record.h"
#include "positioning/record_block.h"

namespace trips::annotation {

/// Result of matching a snippet against the DSM's semantic regions.
struct SpatialMatch {
  dsm::RegionId region = dsm::kInvalidRegion;
  std::string region_name;
  /// Time-weighted fraction of the snippet spent inside the matched region.
  double coverage = 0;
};

/// Options of the matcher.
struct SpatialMatcherOptions {
  /// Matches below this coverage are rejected (no region annotation).
  double min_coverage = 0.3;
};

/// Matches snippets to semantic regions by time-weighted majority of the
/// per-record RegionAt lookups.
class SpatialMatcher {
 public:
  explicit SpatialMatcher(const dsm::Dsm* dsm, SpatialMatcherOptions options = {});

  /// Matches records [begin, end) of `seq`.
  SpatialMatch Match(const positioning::PositioningSequence& seq, size_t begin,
                     size_t end) const;

  /// Columnar form over a record block (shared implementation — matches are
  /// identical to the AoS form).
  SpatialMatch Match(const positioning::RecordBlock& block, size_t begin,
                     size_t end) const;

 private:
  template <typename Source>
  SpatialMatch MatchImpl(const Source& src, size_t begin, size_t end) const;

  const dsm::Dsm* dsm_;
  SpatialMatcherOptions options_;
};

}  // namespace trips::annotation
