#include "annotation/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace trips::annotation {

namespace {

// Gini impurity of a label histogram.
double Gini(const std::vector<size_t>& counts, size_t total) {
  if (total == 0) return 0;
  double g = 1.0;
  for (size_t c : counts) {
    double p = static_cast<double>(c) / static_cast<double>(total);
    g -= p * p;
  }
  return g;
}

}  // namespace

DecisionTree::DecisionTree(DecisionTreeOptions options) : options_(options) {}

Status DecisionTree::Train(const std::vector<Sample>& samples,
                           const std::vector<int>& labels, int num_classes) {
  if (samples.empty()) return Status::InvalidArgument("no training samples");
  if (samples.size() != labels.size()) {
    return Status::InvalidArgument("samples/labels size mismatch");
  }
  if (num_classes < 2) return Status::InvalidArgument("need >= 2 classes");
  num_features_ = samples[0].size();
  for (const Sample& s : samples) {
    if (s.size() != num_features_) {
      return Status::InvalidArgument("ragged feature vectors");
    }
  }
  for (int label : labels) {
    if (label < 0 || label >= num_classes) {
      return Status::InvalidArgument("label out of range");
    }
  }
  num_classes_ = num_classes;
  nodes_.clear();
  std::vector<size_t> indices(samples.size());
  std::iota(indices.begin(), indices.end(), 0);
  Rng rng(options_.seed);
  Grow(samples, labels, indices, 0, &rng);
  return Status::OK();
}

int DecisionTree::Grow(const std::vector<Sample>& samples,
                       const std::vector<int>& labels, std::vector<size_t>& indices,
                       int depth, Rng* rng) {
  int node_id = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  nodes_[node_id].depth = depth;

  // Class histogram for this node.
  std::vector<size_t> counts(num_classes_, 0);
  for (size_t i : indices) ++counts[labels[i]];
  const size_t total = indices.size();
  double impurity = Gini(counts, total);

  auto make_leaf = [&]() {
    Node& node = nodes_[node_id];
    node.leaf = true;
    node.probabilities.resize(num_classes_);
    for (int c = 0; c < num_classes_; ++c) {
      node.probabilities[c] =
          total > 0 ? static_cast<double>(counts[c]) / static_cast<double>(total) : 0;
    }
  };

  if (depth >= options_.max_depth || total < options_.min_samples_split ||
      impurity <= 1e-12) {
    make_leaf();
    return node_id;
  }

  // Candidate features (all, or a random subset for forests).
  std::vector<size_t> feats(num_features_);
  std::iota(feats.begin(), feats.end(), 0);
  if (options_.max_features > 0 && options_.max_features < num_features_) {
    rng->Shuffle(&feats);
    feats.resize(options_.max_features);
  }

  int best_feature = -1;
  double best_threshold = 0;
  double best_gain = 1e-9;

  std::vector<std::pair<double, int>> column;  // (value, label)
  column.reserve(total);
  for (size_t f : feats) {
    column.clear();
    for (size_t i : indices) column.emplace_back(samples[i][f], labels[i]);
    std::sort(column.begin(), column.end());
    if (column.front().first == column.back().first) continue;

    std::vector<size_t> left_counts(num_classes_, 0);
    size_t left_total = 0;
    for (size_t k = 0; k + 1 < column.size(); ++k) {
      ++left_counts[column[k].second];
      ++left_total;
      if (column[k].first == column[k + 1].first) continue;
      size_t right_total = total - left_total;
      if (left_total < options_.min_samples_leaf ||
          right_total < options_.min_samples_leaf) {
        continue;
      }
      std::vector<size_t> right_counts(num_classes_);
      for (int c = 0; c < num_classes_; ++c) right_counts[c] = counts[c] - left_counts[c];
      double weighted =
          (static_cast<double>(left_total) * Gini(left_counts, left_total) +
           static_cast<double>(right_total) * Gini(right_counts, right_total)) /
          static_cast<double>(total);
      double gain = impurity - weighted;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int>(f);
        best_threshold = (column[k].first + column[k + 1].first) / 2;
      }
    }
  }

  if (best_feature < 0) {
    make_leaf();
    return node_id;
  }

  std::vector<size_t> left_idx, right_idx;
  for (size_t i : indices) {
    (samples[i][best_feature] <= best_threshold ? left_idx : right_idx).push_back(i);
  }
  if (left_idx.empty() || right_idx.empty()) {
    make_leaf();
    return node_id;
  }

  int left = Grow(samples, labels, left_idx, depth + 1, rng);
  int right = Grow(samples, labels, right_idx, depth + 1, rng);
  Node& node = nodes_[node_id];
  node.leaf = false;
  node.feature = best_feature;
  node.threshold = best_threshold;
  node.left = left;
  node.right = right;
  return node_id;
}

const DecisionTree::Node& DecisionTree::Descend(const Sample& x) const {
  int id = 0;
  while (!nodes_[id].leaf) {
    const Node& node = nodes_[id];
    double v = node.feature < static_cast<int>(x.size()) ? x[node.feature] : 0;
    id = v <= node.threshold ? node.left : node.right;
  }
  return nodes_[id];
}

int DecisionTree::Predict(const Sample& x) const {
  const Node& leaf = Descend(x);
  return static_cast<int>(std::max_element(leaf.probabilities.begin(),
                                           leaf.probabilities.end()) -
                          leaf.probabilities.begin());
}

std::vector<double> DecisionTree::PredictProba(const Sample& x) const {
  return Descend(x).probabilities;
}

int DecisionTree::Depth() const {
  int depth = 0;
  for (const Node& n : nodes_) depth = std::max(depth, n.depth);
  return depth;
}

}  // namespace trips::annotation

namespace trips::annotation {

json::Value DecisionTree::ToJson() const {
  json::Object root;
  root["type"] = Name();
  root["num_classes"] = num_classes_;
  root["num_features"] = static_cast<int64_t>(num_features_);
  json::Array nodes;
  for (const Node& node : nodes_) {
    json::Object jn;
    jn["leaf"] = node.leaf;
    jn["depth"] = node.depth;
    if (node.leaf) {
      json::Array probs;
      for (double p : node.probabilities) probs.push_back(p);
      jn["probs"] = std::move(probs);
    } else {
      jn["feature"] = node.feature;
      jn["threshold"] = node.threshold;
      jn["left"] = node.left;
      jn["right"] = node.right;
    }
    nodes.push_back(std::move(jn));
  }
  root["nodes"] = std::move(nodes);
  return root;
}

Result<DecisionTree> DecisionTree::FromJson(const json::Value& value) {
  if (!value.is_object() || value.GetString("type") != "decision_tree") {
    return Status::ParseError("not a serialized decision tree");
  }
  DecisionTree tree;
  tree.num_classes_ = static_cast<int>(value.GetInt("num_classes"));
  tree.num_features_ = static_cast<size_t>(value.GetInt("num_features"));
  const json::Value* nodes = value.AsObject().Find("nodes");
  if (nodes == nullptr || !nodes->is_array() || nodes->AsArray().empty()) {
    return Status::ParseError("decision tree without nodes");
  }
  const int count = static_cast<int>(nodes->AsArray().size());
  for (const json::Value& jn : nodes->AsArray()) {
    if (!jn.is_object()) return Status::ParseError("tree node must be an object");
    Node node;
    node.leaf = jn.GetBool("leaf", true);
    node.depth = static_cast<int>(jn.GetInt("depth"));
    if (node.leaf) {
      const json::Value* probs = jn.AsObject().Find("probs");
      if (probs == nullptr || !probs->is_array()) {
        return Status::ParseError("leaf without probabilities");
      }
      for (const json::Value& p : probs->AsArray()) {
        if (!p.is_number()) return Status::ParseError("non-numeric probability");
        node.probabilities.push_back(p.AsDouble());
      }
      if (static_cast<int>(node.probabilities.size()) != tree.num_classes_) {
        return Status::ParseError("leaf probability arity mismatch");
      }
    } else {
      node.feature = static_cast<int>(jn.GetInt("feature", -1));
      node.threshold = jn.GetDouble("threshold");
      node.left = static_cast<int>(jn.GetInt("left", -1));
      node.right = static_cast<int>(jn.GetInt("right", -1));
      if (node.left < 0 || node.left >= count || node.right < 0 ||
          node.right >= count || node.feature < 0) {
        return Status::ParseError("tree node with invalid links");
      }
    }
    tree.nodes_.push_back(std::move(node));
  }
  return tree;
}

}  // namespace trips::annotation
