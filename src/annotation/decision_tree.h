// CART-style decision tree classifier (Gini impurity, axis-aligned splits),
// implemented from scratch. One of the learning-based identification models
// usable by the Annotator, and the base learner of the random forest.
#pragma once

#include "annotation/classifier.h"
#include "json/json.h"

namespace trips::annotation {

/// Tree growth hyper-parameters.
struct DecisionTreeOptions {
  int max_depth = 12;
  size_t min_samples_split = 4;
  size_t min_samples_leaf = 1;
  /// Features considered per split: 0 = all, otherwise a random subset of
  /// this size (used by the forest).
  size_t max_features = 0;
  /// Seed for the feature subsampling (only relevant when max_features > 0).
  uint64_t seed = 0x7ee5u;
};

/// A single classification tree.
class DecisionTree : public Classifier {
 public:
  explicit DecisionTree(DecisionTreeOptions options = {});

  Status Train(const std::vector<Sample>& samples, const std::vector<int>& labels,
               int num_classes) override;
  int Predict(const Sample& x) const override;
  std::vector<double> PredictProba(const Sample& x) const override;
  std::string Name() const override { return "decision_tree"; }
  int NumClasses() const override { return num_classes_; }

  /// Number of nodes in the grown tree (0 before training).
  size_t NodeCount() const { return nodes_.size(); }
  /// Depth of the grown tree (0 before training).
  int Depth() const;

  /// Serializes the trained tree (structure + leaf distributions).
  json::Value ToJson() const;
  /// Restores a tree serialized with ToJson.
  static Result<DecisionTree> FromJson(const json::Value& value);

 private:
  struct Node {
    bool leaf = true;
    int feature = -1;
    double threshold = 0;
    int left = -1;
    int right = -1;
    std::vector<double> probabilities;  // leaf class distribution
    int depth = 0;
  };

  int Grow(const std::vector<Sample>& samples, const std::vector<int>& labels,
           std::vector<size_t>& indices, int depth, Rng* rng);
  const Node& Descend(const Sample& x) const;

  DecisionTreeOptions options_;
  std::vector<Node> nodes_;
  int num_classes_ = 0;
  size_t num_features_ = 0;
};

}  // namespace trips::annotation
