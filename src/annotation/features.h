// Feature extraction for event identification (§3): "The feature extraction
// considers the information of positioning location variance, traveling
// distance and speed, covering range, number of turns, etc."
#pragma once

#include <array>
#include <string>
#include <vector>

#include "positioning/record.h"
#include "positioning/record_block.h"

namespace trips::annotation {

/// Indices of the extracted features (keep FeatureNames() in sync).
enum FeatureIndex : size_t {
  kDurationS = 0,       ///< snippet duration, seconds
  kRecordCount,         ///< number of records
  kLocationVariance,    ///< mean squared planar distance from the centroid
  kTravelDistance,      ///< summed step lengths, metres
  kNetDisplacement,     ///< straight-line start->end distance, metres
  kMeanSpeed,           ///< travel distance / duration, m/s
  kMaxStepSpeed,        ///< max per-step speed, m/s
  kCoveringRange,       ///< bounding-box diagonal, metres
  kStraightness,        ///< net displacement / travel distance in [0,1]
  kTurnCount,           ///< heading changes > 45 degrees
  kTurnRate,            ///< turns per minute
  kStopFraction,        ///< fraction of steps slower than 0.2 m/s
  kFloorChanges,        ///< number of floor transitions
  kFeatureCount,
};

/// One extracted feature vector.
using FeatureVector = std::array<double, kFeatureCount>;

/// Human-readable names of the features, index-aligned with FeatureIndex.
const std::vector<std::string>& FeatureNames();

/// Extracts features from a slice [begin, end) of a time-sorted sequence.
/// Slices with fewer than 2 records yield a zero vector with the available
/// counts filled in.
FeatureVector ExtractFeatures(const positioning::PositioningSequence& seq,
                              size_t begin, size_t end);

/// Columnar form: the same features over a slice of a time-sorted record
/// block (shared implementation — results are bit-identical to the AoS form).
FeatureVector ExtractFeatures(const positioning::RecordBlock& block, size_t begin,
                              size_t end);

/// Convenience: features of a whole sequence.
FeatureVector ExtractFeatures(const positioning::PositioningSequence& seq);

}  // namespace trips::annotation
