#include "annotation/logistic.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace trips::annotation {

LogisticRegression::LogisticRegression(LogisticOptions options) : options_(options) {}

std::vector<double> LogisticRegression::Standardize(const Sample& x) const {
  std::vector<double> z(num_features_, 0);
  for (size_t f = 0; f < num_features_ && f < x.size(); ++f) {
    z[f] = (x[f] - mean_[f]) / stddev_[f];
  }
  return z;
}

Status LogisticRegression::Train(const std::vector<Sample>& samples,
                                 const std::vector<int>& labels, int num_classes) {
  if (samples.empty()) return Status::InvalidArgument("no training samples");
  if (samples.size() != labels.size()) {
    return Status::InvalidArgument("samples/labels size mismatch");
  }
  if (num_classes < 2) return Status::InvalidArgument("need >= 2 classes");
  num_features_ = samples[0].size();
  num_classes_ = num_classes;

  // Standardization statistics.
  mean_.assign(num_features_, 0);
  stddev_.assign(num_features_, 0);
  for (const Sample& s : samples) {
    if (s.size() != num_features_) {
      return Status::InvalidArgument("ragged feature vectors");
    }
    for (size_t f = 0; f < num_features_; ++f) mean_[f] += s[f];
  }
  for (double& m : mean_) m /= static_cast<double>(samples.size());
  for (const Sample& s : samples) {
    for (size_t f = 0; f < num_features_; ++f) {
      double d = s[f] - mean_[f];
      stddev_[f] += d * d;
    }
  }
  for (double& sd : stddev_) {
    sd = std::sqrt(sd / static_cast<double>(samples.size()));
    if (sd < 1e-9) sd = 1;  // constant feature
  }

  const size_t stride = num_features_ + 1;
  weights_.assign(static_cast<size_t>(num_classes_) * stride, 0);

  std::vector<std::vector<double>> z(samples.size());
  for (size_t i = 0; i < samples.size(); ++i) z[i] = Standardize(samples[i]);

  Rng rng(options_.seed);
  std::vector<size_t> order(samples.size());
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> logits(num_classes_);

  const double lr = options_.learning_rate;
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(&order);
    for (size_t i : order) {
      // Forward: softmax over class logits.
      for (int c = 0; c < num_classes_; ++c) {
        const double* w = &weights_[static_cast<size_t>(c) * stride];
        double dot = w[num_features_];  // bias
        for (size_t f = 0; f < num_features_; ++f) dot += w[f] * z[i][f];
        logits[c] = dot;
      }
      double max_logit = *std::max_element(logits.begin(), logits.end());
      double denom = 0;
      for (int c = 0; c < num_classes_; ++c) {
        logits[c] = std::exp(logits[c] - max_logit);
        denom += logits[c];
      }
      // Backward: SGD step on cross-entropy + L2.
      for (int c = 0; c < num_classes_; ++c) {
        double p = logits[c] / denom;
        double err = p - (labels[i] == c ? 1.0 : 0.0);
        double* w = &weights_[static_cast<size_t>(c) * stride];
        for (size_t f = 0; f < num_features_; ++f) {
          w[f] -= lr * (err * z[i][f] + options_.l2 * w[f]);
        }
        w[num_features_] -= lr * err;
      }
    }
  }
  return Status::OK();
}

std::vector<double> LogisticRegression::PredictProba(const Sample& x) const {
  std::vector<double> probs(std::max(num_classes_, 1), 0);
  if (num_classes_ == 0) return probs;
  std::vector<double> z = Standardize(x);
  const size_t stride = num_features_ + 1;
  std::vector<double> logits(num_classes_);
  for (int c = 0; c < num_classes_; ++c) {
    const double* w = &weights_[static_cast<size_t>(c) * stride];
    double dot = w[num_features_];
    for (size_t f = 0; f < num_features_; ++f) dot += w[f] * z[f];
    logits[c] = dot;
  }
  double max_logit = *std::max_element(logits.begin(), logits.end());
  double denom = 0;
  for (int c = 0; c < num_classes_; ++c) {
    probs[c] = std::exp(logits[c] - max_logit);
    denom += probs[c];
  }
  for (double& p : probs) p /= denom;
  return probs;
}

int LogisticRegression::Predict(const Sample& x) const {
  std::vector<double> probs = PredictProba(x);
  return static_cast<int>(std::max_element(probs.begin(), probs.end()) -
                          probs.begin());
}

}  // namespace trips::annotation

namespace trips::annotation {

namespace {

json::Array DoublesToJson(const std::vector<double>& values) {
  json::Array out;
  for (double v : values) out.push_back(v);
  return out;
}

Status DoublesFromJson(const json::Value& parent, const std::string& key,
                       std::vector<double>* out) {
  const json::Value* arr = parent.AsObject().Find(key);
  if (arr == nullptr || !arr->is_array()) {
    return Status::ParseError("missing numeric array '" + key + "'");
  }
  out->clear();
  for (const json::Value& v : arr->AsArray()) {
    if (!v.is_number()) return Status::ParseError("non-numeric entry in '" + key + "'");
    out->push_back(v.AsDouble());
  }
  return Status::OK();
}

}  // namespace

json::Value LogisticRegression::ToJson() const {
  json::Object root;
  root["type"] = Name();
  root["num_classes"] = num_classes_;
  root["num_features"] = static_cast<int64_t>(num_features_);
  root["mean"] = DoublesToJson(mean_);
  root["stddev"] = DoublesToJson(stddev_);
  root["weights"] = DoublesToJson(weights_);
  return root;
}

Result<LogisticRegression> LogisticRegression::FromJson(const json::Value& value) {
  if (!value.is_object() || value.GetString("type") != "logistic_regression") {
    return Status::ParseError("not a serialized logistic regression");
  }
  LogisticRegression model;
  model.num_classes_ = static_cast<int>(value.GetInt("num_classes"));
  model.num_features_ = static_cast<size_t>(value.GetInt("num_features"));
  TRIPS_RETURN_NOT_OK(DoublesFromJson(value, "mean", &model.mean_));
  TRIPS_RETURN_NOT_OK(DoublesFromJson(value, "stddev", &model.stddev_));
  TRIPS_RETURN_NOT_OK(DoublesFromJson(value, "weights", &model.weights_));
  if (model.mean_.size() != model.num_features_ ||
      model.stddev_.size() != model.num_features_ ||
      model.weights_.size() !=
          static_cast<size_t>(model.num_classes_) * (model.num_features_ + 1)) {
    return Status::ParseError("logistic regression arity mismatch");
  }
  return model;
}

}  // namespace trips::annotation
