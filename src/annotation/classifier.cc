#include "annotation/classifier.h"

namespace trips::annotation {

double Accuracy(const Classifier& model, const std::vector<Sample>& samples,
                const std::vector<int>& labels) {
  if (samples.empty() || samples.size() != labels.size()) return 0;
  size_t hits = 0;
  for (size_t i = 0; i < samples.size(); ++i) {
    if (model.Predict(samples[i]) == labels[i]) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(samples.size());
}

std::vector<ClassMetrics> EvaluatePerClass(const Classifier& model,
                                           const std::vector<Sample>& samples,
                                           const std::vector<int>& labels,
                                           int num_classes) {
  std::vector<size_t> tp(num_classes, 0), fp(num_classes, 0), fn(num_classes, 0);
  std::vector<ClassMetrics> out(num_classes);
  for (size_t i = 0; i < samples.size() && i < labels.size(); ++i) {
    int pred = model.Predict(samples[i]);
    int truth = labels[i];
    if (truth >= 0 && truth < num_classes) ++out[truth].support;
    if (pred == truth) {
      if (truth >= 0 && truth < num_classes) ++tp[truth];
    } else {
      if (pred >= 0 && pred < num_classes) ++fp[pred];
      if (truth >= 0 && truth < num_classes) ++fn[truth];
    }
  }
  for (int c = 0; c < num_classes; ++c) {
    double p = tp[c] + fp[c] > 0
                   ? static_cast<double>(tp[c]) / static_cast<double>(tp[c] + fp[c])
                   : 0;
    double r = tp[c] + fn[c] > 0
                   ? static_cast<double>(tp[c]) / static_cast<double>(tp[c] + fn[c])
                   : 0;
    out[c].precision = p;
    out[c].recall = r;
    out[c].f1 = (p + r) > 0 ? 2 * p * r / (p + r) : 0;
  }
  return out;
}

}  // namespace trips::annotation
