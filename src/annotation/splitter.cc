#include "annotation/splitter.h"

#include <algorithm>
#include <queue>

namespace trips::annotation {

using positioning::PositioningSequence;

namespace {

// Collects indices of the spatio-temporal neighbours of record i. Records are
// time-sorted, so the temporal window bounds the scan.
std::vector<size_t> Neighbours(const PositioningSequence& seq, size_t i,
                               const SplitterOptions& opt) {
  std::vector<size_t> out;
  const auto& records = seq.records;
  const auto& ri = records[i];
  // Scan backwards (excluding self).
  for (size_t j = i; j-- > 0;) {
    if (ri.timestamp - records[j].timestamp > opt.eps_time) break;
    if (records[j].location.floor == ri.location.floor &&
        records[j].location.PlanarDistanceTo(ri.location) <= opt.eps_space) {
      out.push_back(j);
    }
  }
  // Scan forwards.
  for (size_t j = i + 1; j < records.size(); ++j) {
    if (records[j].timestamp - ri.timestamp > opt.eps_time) break;
    if (records[j].location.floor == ri.location.floor &&
        records[j].location.PlanarDistanceTo(ri.location) <= opt.eps_space) {
      out.push_back(j);
    }
  }
  return out;
}

}  // namespace

std::vector<Snippet> SplitSequence(const PositioningSequence& seq,
                                   const SplitterOptions& options) {
  std::vector<Snippet> snippets;
  const size_t n = seq.records.size();
  if (n < 2) return snippets;

  constexpr int kUnvisited = -2;
  constexpr int kNoise = -1;
  std::vector<int> label(n, kUnvisited);
  int next_cluster = 0;

  // Sequential DBSCAN.
  for (size_t i = 0; i < n; ++i) {
    if (label[i] != kUnvisited) continue;
    std::vector<size_t> nb = Neighbours(seq, i, options);
    if (nb.size() + 1 < options.min_pts) {
      label[i] = kNoise;
      continue;
    }
    int cluster = next_cluster++;
    label[i] = cluster;
    std::queue<size_t> frontier;
    for (size_t j : nb) frontier.push(j);
    while (!frontier.empty()) {
      size_t j = frontier.front();
      frontier.pop();
      if (label[j] == kNoise) label[j] = cluster;  // border point
      if (label[j] != kUnvisited) continue;
      label[j] = cluster;
      std::vector<size_t> nb2 = Neighbours(seq, j, options);
      if (nb2.size() + 1 >= options.min_pts) {
        for (size_t k : nb2) {
          if (label[k] == kUnvisited || label[k] == kNoise) frontier.push(k);
        }
      }
    }
  }

  // Maximal time-contiguous runs of equal label become snippets.
  size_t run_begin = 0;
  for (size_t i = 1; i <= n; ++i) {
    if (i == n || label[i] != label[run_begin]) {
      Snippet s;
      s.begin = run_begin;
      s.end = i;
      s.dense = label[run_begin] >= 0;
      snippets.push_back(s);
      run_begin = i;
    }
  }

  // Merge too-short runs into the preceding snippet.
  if (options.min_snippet > 0 && snippets.size() > 1) {
    std::vector<Snippet> merged;
    for (const Snippet& s : snippets) {
      DurationMs dur = seq.records[s.end - 1].timestamp - seq.records[s.begin].timestamp;
      if (!merged.empty() && dur < options.min_snippet) {
        merged.back().end = s.end;
      } else {
        merged.push_back(s);
      }
    }
    snippets = std::move(merged);
  }
  return snippets;
}

}  // namespace trips::annotation
