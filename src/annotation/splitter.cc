#include "annotation/splitter.h"

#include <algorithm>
#include <queue>

#include "positioning/record_block.h"

namespace trips::annotation {

using positioning::FloorAt;
using positioning::PositioningSequence;
using positioning::RecordBlock;
using positioning::RecordCount;
using positioning::TimeAt;
using positioning::XYAt;

namespace {

// Collects indices of the spatio-temporal neighbours of record i. Records are
// time-sorted, so the temporal window bounds the scan. Templated over the
// record layout (AoS sequence / SoA block); both instantiations run the same
// arithmetic.
template <typename Source>
std::vector<size_t> Neighbours(const Source& src, size_t i,
                               const SplitterOptions& opt) {
  std::vector<size_t> out;
  const size_t n = RecordCount(src);
  const TimestampMs ti = TimeAt(src, i);
  const geo::Point2 pi = XYAt(src, i);
  const geo::FloorId fi = FloorAt(src, i);
  // Scan backwards (excluding self).
  for (size_t j = i; j-- > 0;) {
    if (ti - TimeAt(src, j) > opt.eps_time) break;
    if (FloorAt(src, j) == fi && XYAt(src, j).DistanceTo(pi) <= opt.eps_space) {
      out.push_back(j);
    }
  }
  // Scan forwards.
  for (size_t j = i + 1; j < n; ++j) {
    if (TimeAt(src, j) - ti > opt.eps_time) break;
    if (FloorAt(src, j) == fi && XYAt(src, j).DistanceTo(pi) <= opt.eps_space) {
      out.push_back(j);
    }
  }
  return out;
}

template <typename Source>
std::vector<Snippet> SplitImpl(const Source& src, const SplitterOptions& options) {
  std::vector<Snippet> snippets;
  const size_t n = RecordCount(src);
  if (n < 2) return snippets;

  constexpr int kUnvisited = -2;
  constexpr int kNoise = -1;
  std::vector<int> label(n, kUnvisited);
  int next_cluster = 0;

  // Sequential DBSCAN.
  for (size_t i = 0; i < n; ++i) {
    if (label[i] != kUnvisited) continue;
    std::vector<size_t> nb = Neighbours(src, i, options);
    if (nb.size() + 1 < options.min_pts) {
      label[i] = kNoise;
      continue;
    }
    int cluster = next_cluster++;
    label[i] = cluster;
    std::queue<size_t> frontier;
    for (size_t j : nb) frontier.push(j);
    while (!frontier.empty()) {
      size_t j = frontier.front();
      frontier.pop();
      if (label[j] == kNoise) label[j] = cluster;  // border point
      if (label[j] != kUnvisited) continue;
      label[j] = cluster;
      std::vector<size_t> nb2 = Neighbours(src, j, options);
      if (nb2.size() + 1 >= options.min_pts) {
        for (size_t k : nb2) {
          if (label[k] == kUnvisited || label[k] == kNoise) frontier.push(k);
        }
      }
    }
  }

  // Maximal time-contiguous runs of equal label become snippets.
  size_t run_begin = 0;
  for (size_t i = 1; i <= n; ++i) {
    if (i == n || label[i] != label[run_begin]) {
      Snippet s;
      s.begin = run_begin;
      s.end = i;
      s.dense = label[run_begin] >= 0;
      snippets.push_back(s);
      run_begin = i;
    }
  }

  // Merge too-short runs into the preceding snippet.
  if (options.min_snippet > 0 && snippets.size() > 1) {
    std::vector<Snippet> merged;
    for (const Snippet& s : snippets) {
      DurationMs dur = TimeAt(src, s.end - 1) - TimeAt(src, s.begin);
      if (!merged.empty() && dur < options.min_snippet) {
        merged.back().end = s.end;
      } else {
        merged.push_back(s);
      }
    }
    snippets = std::move(merged);
  }
  return snippets;
}

}  // namespace

std::vector<Snippet> SplitSequence(const PositioningSequence& seq,
                                   const SplitterOptions& options) {
  return SplitImpl(seq, options);
}

std::vector<Snippet> SplitSequence(const RecordBlock& block,
                                   const SplitterOptions& options) {
  return SplitImpl(block, options);
}

}  // namespace trips::annotation
