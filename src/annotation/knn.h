// k-nearest-neighbours classifier with standardized features and optional
// inverse-distance weighting — the lazy-learning alternative among the event
// identification models (instance-based, no training beyond memorization,
// which suits the Event Editor's designate-a-few-segments workflow).
#pragma once

#include "annotation/classifier.h"
#include "json/json.h"

namespace trips::annotation {

/// kNN hyper-parameters.
struct KnnOptions {
  size_t k = 5;
  /// Weight neighbours by 1/(distance + epsilon) instead of uniformly.
  bool distance_weighted = true;
};

/// Standardized-Euclidean kNN.
class KnnClassifier : public Classifier {
 public:
  explicit KnnClassifier(KnnOptions options = {});

  Status Train(const std::vector<Sample>& samples, const std::vector<int>& labels,
               int num_classes) override;
  int Predict(const Sample& x) const override;
  std::vector<double> PredictProba(const Sample& x) const override;
  std::string Name() const override { return "knn"; }
  int NumClasses() const override { return num_classes_; }

  /// Number of memorized training samples.
  size_t SampleCount() const { return samples_.size(); }

  /// Serializes the memorized (standardized) training set.
  json::Value ToJson() const;
  /// Restores a model serialized with ToJson.
  static Result<KnnClassifier> FromJson(const json::Value& value);

 private:
  std::vector<double> Standardize(const Sample& x) const;

  KnnOptions options_;
  int num_classes_ = 0;
  size_t num_features_ = 0;
  std::vector<double> mean_, stddev_;
  std::vector<std::vector<double>> samples_;  // standardized
  std::vector<int> labels_;
};

}  // namespace trips::annotation
