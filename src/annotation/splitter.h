// Density-based splitting — first step of the Annotation layer (§3): "a
// density-based splitting obtains a number of data snippets by clustering
// positioning records with respect to their spatio-temporal attributes."
//
// We run a sequential ST-DBSCAN over the cleaned records: two records are
// neighbours when they are within eps_space metres on the same floor AND
// within eps_time of each other; records with at least min_pts neighbours are
// core points and clusters grow over density-connected cores. Because the
// time axis bounds the neighbourhood, clusters come out temporally coherent;
// the final snippets are the maximal time-contiguous runs of equal cluster
// label (dense snippets = dwell-like, noise runs = transition-like).
#pragma once

#include <cstddef>
#include <vector>

#include "positioning/record.h"
#include "positioning/record_block.h"

namespace trips::annotation {

/// Parameters of the spatio-temporal density clustering.
struct SplitterOptions {
  /// Spatial neighbourhood radius, metres.
  double eps_space = 3.0;
  /// Temporal neighbourhood radius, milliseconds.
  DurationMs eps_time = 90 * kMillisPerSecond;
  /// Minimum neighbours (incl. self) for a core point.
  size_t min_pts = 4;
  /// Runs shorter than this are merged into the preceding snippet rather
  /// than emitted on their own (anti-fragmentation).
  DurationMs min_snippet = 10 * kMillisPerSecond;
};

/// A snippet: the record index range [begin, end) of one split segment.
struct Snippet {
  size_t begin = 0;
  size_t end = 0;  ///< exclusive
  /// True when the snippet is a density cluster (dwell-like); false for a
  /// between-cluster transition run.
  bool dense = false;

  size_t Size() const { return end - begin; }
};

/// Splits a time-sorted sequence into snippets. Returns an empty vector for
/// sequences with fewer than 2 records.
std::vector<Snippet> SplitSequence(const positioning::PositioningSequence& seq,
                                   const SplitterOptions& options = {});

/// Columnar form over a time-sorted record block (shared implementation —
/// snippets are identical to the AoS form).
std::vector<Snippet> SplitSequence(const positioning::RecordBlock& block,
                                   const SplitterOptions& options = {});

}  // namespace trips::annotation
