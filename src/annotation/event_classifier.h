// Event identification: maps snippet features to mobility event names. Wraps
// a learning model (decision tree / random forest / logistic regression)
// trained on the segments designated in the Event Editor, with a rule-based
// fallback for the cold-start case (no training data yet).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "annotation/classifier.h"
#include "annotation/features.h"
#include "config/event_editor.h"
#include "json/json.h"
#include "util/result.h"

namespace trips::annotation {

/// Which learning model family the identifier uses.
enum class ModelKind { kDecisionTree, kRandomForest, kLogisticRegression, kKnn };

/// Short name of a model kind ("random_forest", ...).
const char* ModelKindName(ModelKind kind);

/// Options of the event identifier.
struct EventClassifierOptions {
  ModelKind model = ModelKind::kRandomForest;
  /// Predictions below this probability fall back to "unknown".
  double min_confidence = 0.0;
};

/// Learning-based mobility event identifier.
class EventClassifier {
 public:
  explicit EventClassifier(EventClassifierOptions options = {});

  /// Trains on the Event Editor's designated segments. Fails when fewer than
  /// two distinct event patterns have segments.
  Status Train(const std::vector<config::LabeledSegment>& training_data);

  /// Identifies the event of a snippet given its features. Before Train (or
  /// when confidence is too low) returns the rule-based identification.
  std::string Identify(const FeatureVector& features) const;

  /// Identification plus the winning probability (1.0 for rule-based).
  std::pair<std::string, double> IdentifyWithConfidence(
      const FeatureVector& features) const;

  /// Heuristic cold-start identification: long low-motion snippets are
  /// stays, directed crossings are pass-bys, the rest wander.
  static std::string RuleBasedIdentify(const FeatureVector& features);

  /// Serializes the trained identifier (model + event vocabulary) so the
  /// backend can reuse it "in other translation tasks in the same indoor
  /// space" (§4). Fails when untrained.
  Result<json::Value> ToJson() const;
  /// Restores an identifier serialized with ToJson.
  static Result<EventClassifier> FromJson(const json::Value& value);
  /// File-based convenience wrappers around ToJson/FromJson.
  Status SaveToFile(const std::string& path) const;
  static Result<EventClassifier> LoadFromFile(const std::string& path);

  /// True after a successful Train call.
  bool trained() const { return model_ != nullptr; }
  /// Event names in class-id order (empty before training).
  const std::vector<std::string>& event_names() const { return event_names_; }
  /// The underlying model (null before training).
  const Classifier* model() const { return model_.get(); }

 private:
  EventClassifierOptions options_;
  std::unique_ptr<Classifier> model_;
  std::vector<std::string> event_names_;
};

/// Builds (features, class-id) training matrices from labeled segments using
/// the given event vocabulary. Exposed for benches and tests.
void BuildTrainingMatrix(const std::vector<config::LabeledSegment>& segments,
                         const std::vector<std::string>& vocabulary,
                         std::vector<Sample>* samples, std::vector<int>* labels);

}  // namespace trips::annotation
