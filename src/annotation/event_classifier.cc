#include "annotation/event_classifier.h"

#include <algorithm>

#include "annotation/decision_tree.h"
#include "annotation/knn.h"
#include "annotation/logistic.h"
#include "annotation/random_forest.h"
#include "core/semantics.h"

namespace trips::annotation {

const char* ModelKindName(ModelKind kind) {
  switch (kind) {
    case ModelKind::kDecisionTree:
      return "decision_tree";
    case ModelKind::kRandomForest:
      return "random_forest";
    case ModelKind::kLogisticRegression:
      return "logistic_regression";
    case ModelKind::kKnn:
      return "knn";
  }
  return "unknown";
}

EventClassifier::EventClassifier(EventClassifierOptions options)
    : options_(options) {}

void BuildTrainingMatrix(const std::vector<config::LabeledSegment>& segments,
                         const std::vector<std::string>& vocabulary,
                         std::vector<Sample>* samples, std::vector<int>* labels) {
  samples->clear();
  labels->clear();
  for (const config::LabeledSegment& seg : segments) {
    auto it = std::find(vocabulary.begin(), vocabulary.end(), seg.event);
    if (it == vocabulary.end()) continue;
    FeatureVector f = ExtractFeatures(seg.segment);
    samples->emplace_back(f.begin(), f.end());
    labels->push_back(static_cast<int>(it - vocabulary.begin()));
  }
}

Status EventClassifier::Train(
    const std::vector<config::LabeledSegment>& training_data) {
  // Vocabulary = distinct event names in first-appearance order.
  std::vector<std::string> vocab;
  for (const config::LabeledSegment& seg : training_data) {
    if (std::find(vocab.begin(), vocab.end(), seg.event) == vocab.end()) {
      vocab.push_back(seg.event);
    }
  }
  if (vocab.size() < 2) {
    return Status::FailedPrecondition(
        "need designated segments for >= 2 event patterns, got " +
        std::to_string(vocab.size()));
  }

  std::vector<Sample> samples;
  std::vector<int> labels;
  BuildTrainingMatrix(training_data, vocab, &samples, &labels);

  std::unique_ptr<Classifier> model;
  switch (options_.model) {
    case ModelKind::kDecisionTree:
      model = std::make_unique<DecisionTree>();
      break;
    case ModelKind::kRandomForest:
      model = std::make_unique<RandomForest>();
      break;
    case ModelKind::kLogisticRegression:
      model = std::make_unique<LogisticRegression>();
      break;
    case ModelKind::kKnn:
      model = std::make_unique<KnnClassifier>();
      break;
  }
  TRIPS_RETURN_NOT_OK(model->Train(samples, labels, static_cast<int>(vocab.size())));
  model_ = std::move(model);
  event_names_ = std::move(vocab);
  return Status::OK();
}

std::string EventClassifier::RuleBasedIdentify(const FeatureVector& f) {
  // Thresholds follow the GPS stop/move literature adapted to indoor scale
  // and to residual positioning jitter (a stationary device still shows
  // ~0.3-0.6 m/s of apparent speed after cleaning at Wi-Fi noise levels).
  bool slow = f[kMeanSpeed] < 0.8;
  bool compact = f[kCoveringRange] < 12.0;
  bool longish = f[kDurationS] >= 120;
  if (slow && compact && longish) return core::kEventStay;
  bool directed = f[kStraightness] > 0.5 && f[kMeanSpeed] >= 0.8;
  if (directed) return core::kEventPassBy;
  if (f[kDurationS] < 60 && f[kMeanSpeed] >= 0.7) return core::kEventPassBy;
  if (slow && compact) return core::kEventStay;
  return core::kEventWander;
}

std::pair<std::string, double> EventClassifier::IdentifyWithConfidence(
    const FeatureVector& features) const {
  if (model_ == nullptr) return {RuleBasedIdentify(features), 1.0};
  Sample x(features.begin(), features.end());
  std::vector<double> probs = model_->PredictProba(x);
  int best = static_cast<int>(std::max_element(probs.begin(), probs.end()) -
                              probs.begin());
  double confidence = probs.empty() ? 0 : probs[best];
  if (confidence < options_.min_confidence) {
    return {core::kEventUnknown, confidence};
  }
  return {event_names_[best], confidence};
}

std::string EventClassifier::Identify(const FeatureVector& features) const {
  return IdentifyWithConfidence(features).first;
}

}  // namespace trips::annotation

namespace trips::annotation {

Result<json::Value> EventClassifier::ToJson() const {
  if (model_ == nullptr) {
    return Status::FailedPrecondition("cannot serialize an untrained identifier");
  }
  json::Object root;
  root["model_kind"] = ModelKindName(options_.model);
  root["min_confidence"] = options_.min_confidence;
  json::Array events;
  for (const std::string& name : event_names_) events.push_back(name);
  root["events"] = std::move(events);
  // Each concrete model serializes itself with an embedded "type" tag.
  if (const auto* tree = dynamic_cast<const DecisionTree*>(model_.get())) {
    root["model"] = tree->ToJson();
  } else if (const auto* forest = dynamic_cast<const RandomForest*>(model_.get())) {
    root["model"] = forest->ToJson();
  } else if (const auto* logistic =
                 dynamic_cast<const LogisticRegression*>(model_.get())) {
    root["model"] = logistic->ToJson();
  } else if (const auto* knn = dynamic_cast<const KnnClassifier*>(model_.get())) {
    root["model"] = knn->ToJson();
  } else {
    return Status::NotSupported("unknown model family: " + model_->Name());
  }
  return json::Value(std::move(root));
}

Result<EventClassifier> EventClassifier::FromJson(const json::Value& value) {
  if (!value.is_object()) {
    return Status::ParseError("identifier document must be an object");
  }
  EventClassifierOptions options;
  options.min_confidence = value.GetDouble("min_confidence", 0.0);
  const json::Value* model = value.AsObject().Find("model");
  if (model == nullptr || !model->is_object()) {
    return Status::ParseError("missing 'model' object");
  }
  std::string type = model->GetString("type");
  std::unique_ptr<Classifier> restored;
  if (type == "decision_tree") {
    options.model = ModelKind::kDecisionTree;
    TRIPS_ASSIGN_OR_RETURN(DecisionTree tree, DecisionTree::FromJson(*model));
    restored = std::make_unique<DecisionTree>(std::move(tree));
  } else if (type == "random_forest") {
    options.model = ModelKind::kRandomForest;
    TRIPS_ASSIGN_OR_RETURN(RandomForest forest, RandomForest::FromJson(*model));
    restored = std::make_unique<RandomForest>(std::move(forest));
  } else if (type == "logistic_regression") {
    options.model = ModelKind::kLogisticRegression;
    TRIPS_ASSIGN_OR_RETURN(LogisticRegression logistic,
                           LogisticRegression::FromJson(*model));
    restored = std::make_unique<LogisticRegression>(std::move(logistic));
  } else if (type == "knn") {
    options.model = ModelKind::kKnn;
    TRIPS_ASSIGN_OR_RETURN(KnnClassifier knn, KnnClassifier::FromJson(*model));
    restored = std::make_unique<KnnClassifier>(std::move(knn));
  } else {
    return Status::ParseError("unknown model type '" + type + "'");
  }

  EventClassifier classifier(options);
  const json::Value* events = value.AsObject().Find("events");
  if (events == nullptr || !events->is_array() || events->AsArray().size() < 2) {
    return Status::ParseError("identifier needs >= 2 event names");
  }
  for (const json::Value& e : events->AsArray()) {
    if (!e.is_string()) return Status::ParseError("event name must be a string");
    classifier.event_names_.push_back(e.AsString());
  }
  if (restored->NumClasses() != static_cast<int>(classifier.event_names_.size())) {
    return Status::ParseError("event vocabulary does not match model classes");
  }
  classifier.model_ = std::move(restored);
  return classifier;
}

Status EventClassifier::SaveToFile(const std::string& path) const {
  TRIPS_ASSIGN_OR_RETURN(json::Value doc, ToJson());
  return json::WriteFile(doc, path);
}

Result<EventClassifier> EventClassifier::LoadFromFile(const std::string& path) {
  TRIPS_ASSIGN_OR_RETURN(json::Value doc, json::ParseFile(path));
  return FromJson(doc);
}

}  // namespace trips::annotation
