// Random forest classifier: bagged CART trees with per-split feature
// subsampling, implemented from scratch. The default learning-based event
// identification model of the Annotator.
#pragma once

#include <memory>

#include "annotation/decision_tree.h"

namespace trips::annotation {

/// Forest hyper-parameters.
struct RandomForestOptions {
  int num_trees = 25;
  DecisionTreeOptions tree;
  /// Features per split; 0 = floor(sqrt(num_features)).
  size_t max_features = 0;
  uint64_t seed = 0xf0425;
};

/// Bootstrap-aggregated decision trees; probabilities are averaged over trees.
class RandomForest : public Classifier {
 public:
  explicit RandomForest(RandomForestOptions options = {});

  Status Train(const std::vector<Sample>& samples, const std::vector<int>& labels,
               int num_classes) override;
  int Predict(const Sample& x) const override;
  std::vector<double> PredictProba(const Sample& x) const override;
  std::string Name() const override { return "random_forest"; }
  int NumClasses() const override { return num_classes_; }

  size_t TreeCount() const { return trees_.size(); }

  /// Serializes the trained forest (all member trees).
  json::Value ToJson() const;
  /// Restores a forest serialized with ToJson.
  static Result<RandomForest> FromJson(const json::Value& value);

 private:
  RandomForestOptions options_;
  std::vector<DecisionTree> trees_;
  int num_classes_ = 0;
};

}  // namespace trips::annotation
