// Multinomial logistic regression (softmax) trained by mini-batch gradient
// descent with feature standardization, implemented from scratch. A linear
// alternative to the tree models for event identification.
#pragma once

#include "annotation/classifier.h"
#include "json/json.h"

namespace trips::annotation {

/// Optimizer hyper-parameters.
struct LogisticOptions {
  double learning_rate = 0.1;
  int epochs = 300;
  double l2 = 1e-4;
  uint64_t seed = 0x10915;
};

/// Softmax regression classifier.
class LogisticRegression : public Classifier {
 public:
  explicit LogisticRegression(LogisticOptions options = {});

  Status Train(const std::vector<Sample>& samples, const std::vector<int>& labels,
               int num_classes) override;
  int Predict(const Sample& x) const override;
  std::vector<double> PredictProba(const Sample& x) const override;
  std::string Name() const override { return "logistic_regression"; }
  int NumClasses() const override { return num_classes_; }

  /// Serializes the trained weights and standardization statistics.
  json::Value ToJson() const;
  /// Restores a model serialized with ToJson.
  static Result<LogisticRegression> FromJson(const json::Value& value);

 private:
  std::vector<double> Standardize(const Sample& x) const;

  LogisticOptions options_;
  int num_classes_ = 0;
  size_t num_features_ = 0;
  std::vector<double> mean_, stddev_;
  // weights_[c * (F+1) + f]; the last column is the bias.
  std::vector<double> weights_;
};

}  // namespace trips::annotation
