#include "annotation/random_forest.h"

#include <algorithm>
#include <cmath>

namespace trips::annotation {

RandomForest::RandomForest(RandomForestOptions options) : options_(options) {}

Status RandomForest::Train(const std::vector<Sample>& samples,
                           const std::vector<int>& labels, int num_classes) {
  if (samples.empty()) return Status::InvalidArgument("no training samples");
  if (samples.size() != labels.size()) {
    return Status::InvalidArgument("samples/labels size mismatch");
  }
  if (options_.num_trees < 1) return Status::InvalidArgument("need >= 1 tree");

  size_t num_features = samples[0].size();
  size_t per_split = options_.max_features > 0
                         ? options_.max_features
                         : static_cast<size_t>(
                               std::max(1.0, std::floor(std::sqrt(
                                                 static_cast<double>(num_features)))));

  trees_.clear();
  num_classes_ = num_classes;
  Rng rng(options_.seed);
  const size_t n = samples.size();
  std::vector<Sample> boot_x(n);
  std::vector<int> boot_y(n);
  for (int t = 0; t < options_.num_trees; ++t) {
    for (size_t i = 0; i < n; ++i) {
      size_t pick = static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(n) - 1));
      boot_x[i] = samples[pick];
      boot_y[i] = labels[pick];
    }
    DecisionTreeOptions topt = options_.tree;
    topt.max_features = per_split;
    topt.seed = static_cast<uint64_t>(rng.UniformInt(1, 1'000'000'000));
    DecisionTree tree(topt);
    TRIPS_RETURN_NOT_OK(tree.Train(boot_x, boot_y, num_classes));
    trees_.push_back(std::move(tree));
  }
  return Status::OK();
}

std::vector<double> RandomForest::PredictProba(const Sample& x) const {
  std::vector<double> probs(num_classes_, 0);
  if (trees_.empty()) return probs;
  for (const DecisionTree& tree : trees_) {
    std::vector<double> p = tree.PredictProba(x);
    for (int c = 0; c < num_classes_ && c < static_cast<int>(p.size()); ++c) {
      probs[c] += p[c];
    }
  }
  for (double& p : probs) p /= static_cast<double>(trees_.size());
  return probs;
}

int RandomForest::Predict(const Sample& x) const {
  std::vector<double> probs = PredictProba(x);
  return static_cast<int>(std::max_element(probs.begin(), probs.end()) -
                          probs.begin());
}

}  // namespace trips::annotation

namespace trips::annotation {

json::Value RandomForest::ToJson() const {
  json::Object root;
  root["type"] = Name();
  root["num_classes"] = num_classes_;
  json::Array trees;
  for (const DecisionTree& tree : trees_) trees.push_back(tree.ToJson());
  root["trees"] = std::move(trees);
  return root;
}

Result<RandomForest> RandomForest::FromJson(const json::Value& value) {
  if (!value.is_object() || value.GetString("type") != "random_forest") {
    return Status::ParseError("not a serialized random forest");
  }
  RandomForest forest;
  forest.num_classes_ = static_cast<int>(value.GetInt("num_classes"));
  const json::Value* trees = value.AsObject().Find("trees");
  if (trees == nullptr || !trees->is_array() || trees->AsArray().empty()) {
    return Status::ParseError("random forest without trees");
  }
  for (const json::Value& jt : trees->AsArray()) {
    TRIPS_ASSIGN_OR_RETURN(DecisionTree tree, DecisionTree::FromJson(jt));
    forest.trees_.push_back(std::move(tree));
  }
  return forest;
}

}  // namespace trips::annotation
