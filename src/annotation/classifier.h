// Common interface of the learning-based identification models (§3: "a
// learning-based identification model, for which the training mobility event
// data is collected through the Event Editor"). All models are implemented
// from scratch in this repository.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "util/result.h"
#include "util/rng.h"

namespace trips::annotation {

/// A training/inference sample: dense feature values.
using Sample = std::vector<double>;

/// Multiclass classifier over dense feature vectors.
class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Fits the model. `labels[i]` is the class of `samples[i]`, in
  /// [0, num_classes). Fails on empty or ragged input.
  virtual Status Train(const std::vector<Sample>& samples,
                       const std::vector<int>& labels, int num_classes) = 0;

  /// Predicts the most likely class for `x`; undefined before Train succeeds.
  virtual int Predict(const Sample& x) const = 0;

  /// Per-class probability estimates (sums to 1).
  virtual std::vector<double> PredictProba(const Sample& x) const = 0;

  /// Model family name, e.g. "decision_tree".
  virtual std::string Name() const = 0;

  /// Number of classes the model was trained with (0 before training).
  virtual int NumClasses() const = 0;
};

/// Simple holdout accuracy of a trained classifier.
double Accuracy(const Classifier& model, const std::vector<Sample>& samples,
                const std::vector<int>& labels);

/// Per-class precision/recall/F1.
struct ClassMetrics {
  double precision = 0;
  double recall = 0;
  double f1 = 0;
  size_t support = 0;
};

/// Computes per-class metrics of a trained classifier on a labeled set.
std::vector<ClassMetrics> EvaluatePerClass(const Classifier& model,
                                           const std::vector<Sample>& samples,
                                           const std::vector<int>& labels,
                                           int num_classes);

}  // namespace trips::annotation
