#include "annotation/annotator.h"

#include <chrono>

namespace trips::annotation {

using positioning::RecordCount;
using positioning::TimeAt;

namespace {

// Shared post-processing: merge equal-adjacent triplets, drop short ones.
void Postprocess(const AnnotatorOptions& options,
                 core::MobilitySemanticsSequence* seq) {
  if (options.merge_adjacent && seq->semantics.size() > 1) {
    std::vector<core::MobilitySemantic> merged;
    for (core::MobilitySemantic& s : seq->semantics) {
      if (!merged.empty() && merged.back().event == s.event &&
          merged.back().region == s.region &&
          s.range.begin - merged.back().range.end <= options.merge_max_gap) {
        merged.back().range.end = s.range.end;
      } else {
        merged.push_back(std::move(s));
      }
    }
    seq->semantics = std::move(merged);
  }
  if (options.min_duration > 0) {
    std::vector<core::MobilitySemantic> kept;
    for (core::MobilitySemantic& s : seq->semantics) {
      if (s.range.Duration() >= options.min_duration) kept.push_back(std::move(s));
    }
    seq->semantics = std::move(kept);
  }
}

// Builds one triplet from a snippet, or returns false to drop it.
template <typename Source>
bool MakeTriplet(const Source& src, const Snippet& snip,
                 const SpatialMatcher& matcher, const AnnotatorOptions& options,
                 const std::string& event, core::MobilitySemantic* out) {
  SpatialMatch match = matcher.Match(src, snip.begin, snip.end);
  if (match.region == dsm::kInvalidRegion && options.drop_unmatched) return false;
  out->event = event;
  out->region = match.region;
  out->region_name = match.region_name;
  out->range = {TimeAt(src, snip.begin), TimeAt(src, snip.end - 1)};
  out->inferred = false;
  return true;
}

// The annotation loop over either layout: split, extract features per
// snippet, pick the event through `event_of`, match the region, postprocess.
template <typename Source, typename EventFn>
core::MobilitySemanticsSequence AnnotateImpl(const Source& cleaned,
                                             const AnnotatorOptions& options,
                                             const SpatialMatcher& matcher,
                                             const EventFn& event_of,
                                             AnnotateTimings* timings) {
  core::MobilitySemanticsSequence out;
  out.device_id = cleaned.device_id;
  std::vector<Snippet> snippets;
  if (timings != nullptr) {
    auto t0 = std::chrono::steady_clock::now();
    snippets = SplitSequence(cleaned, options.splitter);
    timings->split_ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
  } else {
    snippets = SplitSequence(cleaned, options.splitter);
  }
  for (const Snippet& snip : snippets) {
    if (snip.Size() < 2) continue;
    FeatureVector features = ExtractFeatures(cleaned, snip.begin, snip.end);
    std::string event = event_of(features);
    core::MobilitySemantic triplet;
    if (MakeTriplet(cleaned, snip, matcher, options, event, &triplet)) {
      out.semantics.push_back(std::move(triplet));
    }
  }
  Postprocess(options, &out);
  return out;
}

}  // namespace

Annotator::Annotator(const dsm::Dsm* dsm, const EventClassifier* classifier,
                     AnnotatorOptions options)
    : dsm_(dsm),
      classifier_(classifier),
      options_(options),
      matcher_(dsm, options.matcher) {}

core::MobilitySemanticsSequence Annotator::Annotate(
    const positioning::PositioningSequence& cleaned,
    AnnotateTimings* timings) const {
  return AnnotateImpl(
      cleaned, options_, matcher_,
      [this](const FeatureVector& f) { return classifier_->Identify(f); },
      timings);
}

core::MobilitySemanticsSequence Annotator::Annotate(
    const positioning::RecordBlock& cleaned, AnnotateTimings* timings) const {
  return AnnotateImpl(
      cleaned, options_, matcher_,
      [this](const FeatureVector& f) { return classifier_->Identify(f); },
      timings);
}

StopMoveBaseline::StopMoveBaseline(const dsm::Dsm* dsm, AnnotatorOptions options,
                                   double stop_speed)
    : dsm_(dsm),
      options_(options),
      stop_speed_(stop_speed),
      matcher_(dsm, options.matcher) {}

core::MobilitySemanticsSequence StopMoveBaseline::Annotate(
    const positioning::PositioningSequence& cleaned) const {
  // The two-pattern vocabulary of the prior GPS systems: stop or move.
  return AnnotateImpl(
      cleaned, options_, matcher_,
      [this](const FeatureVector& f) {
        return std::string(f[kMeanSpeed] < stop_speed_ ? core::kEventStay
                                                       : core::kEventPassBy);
      },
      nullptr);
}

core::MobilitySemanticsSequence StopMoveBaseline::Annotate(
    const positioning::RecordBlock& cleaned) const {
  return AnnotateImpl(
      cleaned, options_, matcher_,
      [this](const FeatureVector& f) {
        return std::string(f[kMeanSpeed] < stop_speed_ ? core::kEventStay
                                                       : core::kEventPassBy);
      },
      nullptr);
}

}  // namespace trips::annotation
