#include "annotation/annotator.h"

namespace trips::annotation {

namespace {

// Shared post-processing: merge equal-adjacent triplets, drop short ones.
void Postprocess(const AnnotatorOptions& options,
                 core::MobilitySemanticsSequence* seq) {
  if (options.merge_adjacent && seq->semantics.size() > 1) {
    std::vector<core::MobilitySemantic> merged;
    for (core::MobilitySemantic& s : seq->semantics) {
      if (!merged.empty() && merged.back().event == s.event &&
          merged.back().region == s.region &&
          s.range.begin - merged.back().range.end <= options.merge_max_gap) {
        merged.back().range.end = s.range.end;
      } else {
        merged.push_back(std::move(s));
      }
    }
    seq->semantics = std::move(merged);
  }
  if (options.min_duration > 0) {
    std::vector<core::MobilitySemantic> kept;
    for (core::MobilitySemantic& s : seq->semantics) {
      if (s.range.Duration() >= options.min_duration) kept.push_back(std::move(s));
    }
    seq->semantics = std::move(kept);
  }
}

// Builds one triplet from a snippet, or returns false to drop it.
bool MakeTriplet(const positioning::PositioningSequence& seq, const Snippet& snip,
                 const SpatialMatcher& matcher, const AnnotatorOptions& options,
                 const std::string& event, core::MobilitySemantic* out) {
  SpatialMatch match = matcher.Match(seq, snip.begin, snip.end);
  if (match.region == dsm::kInvalidRegion && options.drop_unmatched) return false;
  out->event = event;
  out->region = match.region;
  out->region_name = match.region_name;
  out->range = {seq.records[snip.begin].timestamp,
                seq.records[snip.end - 1].timestamp};
  out->inferred = false;
  return true;
}

}  // namespace

Annotator::Annotator(const dsm::Dsm* dsm, const EventClassifier* classifier,
                     AnnotatorOptions options)
    : dsm_(dsm),
      classifier_(classifier),
      options_(options),
      matcher_(dsm, options.matcher) {}

core::MobilitySemanticsSequence Annotator::Annotate(
    const positioning::PositioningSequence& cleaned) const {
  core::MobilitySemanticsSequence out;
  out.device_id = cleaned.device_id;
  std::vector<Snippet> snippets = SplitSequence(cleaned, options_.splitter);
  for (const Snippet& snip : snippets) {
    if (snip.Size() < 2) continue;
    FeatureVector features = ExtractFeatures(cleaned, snip.begin, snip.end);
    std::string event = classifier_->Identify(features);
    core::MobilitySemantic triplet;
    if (MakeTriplet(cleaned, snip, matcher_, options_, event, &triplet)) {
      out.semantics.push_back(std::move(triplet));
    }
  }
  Postprocess(options_, &out);
  return out;
}

StopMoveBaseline::StopMoveBaseline(const dsm::Dsm* dsm, AnnotatorOptions options,
                                   double stop_speed)
    : dsm_(dsm),
      options_(options),
      stop_speed_(stop_speed),
      matcher_(dsm, options.matcher) {}

core::MobilitySemanticsSequence StopMoveBaseline::Annotate(
    const positioning::PositioningSequence& cleaned) const {
  core::MobilitySemanticsSequence out;
  out.device_id = cleaned.device_id;
  std::vector<Snippet> snippets = SplitSequence(cleaned, options_.splitter);
  for (const Snippet& snip : snippets) {
    if (snip.Size() < 2) continue;
    FeatureVector features = ExtractFeatures(cleaned, snip.begin, snip.end);
    // The two-pattern vocabulary of the prior GPS systems: stop or move.
    std::string event =
        features[kMeanSpeed] < stop_speed_ ? core::kEventStay : core::kEventPassBy;
    core::MobilitySemantic triplet;
    if (MakeTriplet(cleaned, snip, matcher_, options_, event, &triplet)) {
      out.semantics.push_back(std::move(triplet));
    }
  }
  Postprocess(options_, &out);
  return out;
}

}  // namespace trips::annotation
