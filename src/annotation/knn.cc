#include "annotation/knn.h"

#include <algorithm>
#include <cmath>

namespace trips::annotation {

KnnClassifier::KnnClassifier(KnnOptions options) : options_(options) {}

std::vector<double> KnnClassifier::Standardize(const Sample& x) const {
  std::vector<double> z(num_features_, 0);
  for (size_t f = 0; f < num_features_ && f < x.size(); ++f) {
    z[f] = (x[f] - mean_[f]) / stddev_[f];
  }
  return z;
}

Status KnnClassifier::Train(const std::vector<Sample>& samples,
                            const std::vector<int>& labels, int num_classes) {
  if (samples.empty()) return Status::InvalidArgument("no training samples");
  if (samples.size() != labels.size()) {
    return Status::InvalidArgument("samples/labels size mismatch");
  }
  if (num_classes < 2) return Status::InvalidArgument("need >= 2 classes");
  if (options_.k == 0) return Status::InvalidArgument("k must be positive");
  num_features_ = samples[0].size();

  mean_.assign(num_features_, 0);
  stddev_.assign(num_features_, 0);
  for (const Sample& s : samples) {
    if (s.size() != num_features_) {
      return Status::InvalidArgument("ragged feature vectors");
    }
    for (size_t f = 0; f < num_features_; ++f) mean_[f] += s[f];
  }
  for (double& m : mean_) m /= static_cast<double>(samples.size());
  for (const Sample& s : samples) {
    for (size_t f = 0; f < num_features_; ++f) {
      double d = s[f] - mean_[f];
      stddev_[f] += d * d;
    }
  }
  for (double& sd : stddev_) {
    sd = std::sqrt(sd / static_cast<double>(samples.size()));
    if (sd < 1e-9) sd = 1;
  }

  num_classes_ = num_classes;
  samples_.clear();
  samples_.reserve(samples.size());
  for (const Sample& s : samples) samples_.push_back(Standardize(s));
  labels_ = labels;
  for (int label : labels_) {
    if (label < 0 || label >= num_classes) {
      return Status::InvalidArgument("label out of range");
    }
  }
  return Status::OK();
}

std::vector<double> KnnClassifier::PredictProba(const Sample& x) const {
  std::vector<double> probs(std::max(num_classes_, 1), 0);
  if (samples_.empty()) return probs;
  std::vector<double> z = Standardize(x);

  // Partial sort of the k nearest (squared) distances.
  std::vector<std::pair<double, int>> dists;
  dists.reserve(samples_.size());
  for (size_t i = 0; i < samples_.size(); ++i) {
    double d2 = 0;
    for (size_t f = 0; f < num_features_; ++f) {
      double d = samples_[i][f] - z[f];
      d2 += d * d;
    }
    dists.emplace_back(d2, labels_[i]);
  }
  size_t k = std::min(options_.k, dists.size());
  std::partial_sort(dists.begin(), dists.begin() + static_cast<long>(k), dists.end());

  double total = 0;
  for (size_t i = 0; i < k; ++i) {
    double weight =
        options_.distance_weighted ? 1.0 / (std::sqrt(dists[i].first) + 1e-6) : 1.0;
    probs[dists[i].second] += weight;
    total += weight;
  }
  if (total > 0) {
    for (double& p : probs) p /= total;
  }
  return probs;
}

int KnnClassifier::Predict(const Sample& x) const {
  std::vector<double> probs = PredictProba(x);
  return static_cast<int>(std::max_element(probs.begin(), probs.end()) -
                          probs.begin());
}

}  // namespace trips::annotation

namespace trips::annotation {

json::Value KnnClassifier::ToJson() const {
  json::Object root;
  root["type"] = Name();
  root["num_classes"] = num_classes_;
  root["num_features"] = static_cast<int64_t>(num_features_);
  root["k"] = static_cast<int64_t>(options_.k);
  root["distance_weighted"] = options_.distance_weighted;
  auto doubles = [](const std::vector<double>& values) {
    json::Array out;
    for (double v : values) out.push_back(v);
    return out;
  };
  root["mean"] = doubles(mean_);
  root["stddev"] = doubles(stddev_);
  json::Array samples;
  for (const std::vector<double>& s : samples_) samples.push_back(doubles(s));
  root["samples"] = std::move(samples);
  json::Array labels;
  for (int label : labels_) labels.push_back(label);
  root["labels"] = std::move(labels);
  return root;
}

Result<KnnClassifier> KnnClassifier::FromJson(const json::Value& value) {
  if (!value.is_object() || value.GetString("type") != "knn") {
    return Status::ParseError("not a serialized knn model");
  }
  KnnOptions options;
  options.k = static_cast<size_t>(value.GetInt("k", 5));
  options.distance_weighted = value.GetBool("distance_weighted", true);
  KnnClassifier model(options);
  model.num_classes_ = static_cast<int>(value.GetInt("num_classes"));
  model.num_features_ = static_cast<size_t>(value.GetInt("num_features"));
  auto read_doubles = [&value](const std::string& key,
                               std::vector<double>* out) -> Status {
    const json::Value* arr = value.AsObject().Find(key);
    if (arr == nullptr || !arr->is_array()) {
      return Status::ParseError("missing numeric array '" + key + "'");
    }
    for (const json::Value& v : arr->AsArray()) {
      if (!v.is_number()) return Status::ParseError("non-numeric '" + key + "'");
      out->push_back(v.AsDouble());
    }
    return Status::OK();
  };
  TRIPS_RETURN_NOT_OK(read_doubles("mean", &model.mean_));
  TRIPS_RETURN_NOT_OK(read_doubles("stddev", &model.stddev_));
  const json::Value* samples = value.AsObject().Find("samples");
  const json::Value* labels = value.AsObject().Find("labels");
  if (samples == nullptr || !samples->is_array() || labels == nullptr ||
      !labels->is_array() ||
      samples->AsArray().size() != labels->AsArray().size() ||
      samples->AsArray().empty()) {
    return Status::ParseError("knn samples/labels malformed");
  }
  for (const json::Value& js : samples->AsArray()) {
    if (!js.is_array()) return Status::ParseError("knn sample must be an array");
    std::vector<double> s;
    for (const json::Value& v : js.AsArray()) {
      if (!v.is_number()) return Status::ParseError("non-numeric knn sample");
      s.push_back(v.AsDouble());
    }
    if (s.size() != model.num_features_) {
      return Status::ParseError("knn sample arity mismatch");
    }
    model.samples_.push_back(std::move(s));
  }
  for (const json::Value& jl : labels->AsArray()) {
    if (!jl.is_number()) return Status::ParseError("non-numeric knn label");
    model.labels_.push_back(static_cast<int>(jl.AsInt()));
  }
  return model;
}

}  // namespace trips::annotation
