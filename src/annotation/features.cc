#include "annotation/features.h"

#include <cmath>

#include "positioning/record_block.h"

namespace trips::annotation {

const std::vector<std::string>& FeatureNames() {
  static const std::vector<std::string> kNames = {
      "duration_s",      "record_count",   "location_variance", "travel_distance",
      "net_displacement", "mean_speed",    "max_step_speed",    "covering_range",
      "straightness",    "turn_count",     "turn_rate",         "stop_fraction",
      "floor_changes",
  };
  return kNames;
}

namespace {

// One algorithm, two layouts: instantiated for the AoS sequence and the SoA
// block through the uniform accessors, so both paths compute bit-identical
// features.
template <typename Source>
FeatureVector ExtractFeaturesImpl(const Source& src, size_t begin, size_t end) {
  using positioning::FloorAt;
  using positioning::RecordCount;
  using positioning::TimeAt;
  using positioning::XYAt;

  FeatureVector f{};
  if (end > RecordCount(src)) end = RecordCount(src);
  if (begin >= end) return f;
  const size_t n = end - begin;
  f[kRecordCount] = static_cast<double>(n);
  if (n < 2) return f;

  DurationMs duration = TimeAt(src, end - 1) - TimeAt(src, begin);
  f[kDurationS] = static_cast<double>(duration) / 1000.0;

  // Centroid & variance.
  geo::Point2 centroid;
  for (size_t i = begin; i < end; ++i) centroid = centroid + XYAt(src, i);
  centroid = centroid / static_cast<double>(n);
  double var = 0;
  geo::BoundingBox box;
  for (size_t i = begin; i < end; ++i) {
    double d = XYAt(src, i).DistanceTo(centroid);
    var += d * d;
    box.Extend(XYAt(src, i));
  }
  f[kLocationVariance] = var / static_cast<double>(n);
  f[kCoveringRange] =
      std::sqrt(box.Width() * box.Width() + box.Height() * box.Height());

  // Steps: distance, speed, turns, stops, floor changes.
  double travel = 0;
  double max_speed = 0;
  int turns = 0;
  int slow_steps = 0;
  int steps = 0;
  int floor_changes = 0;
  bool have_heading = false;
  double prev_heading = 0;
  for (size_t i = begin + 1; i < end; ++i) {
    geo::Point2 step = XYAt(src, i) - XYAt(src, i - 1);
    double len = step.Norm();
    travel += len;
    DurationMs dt = TimeAt(src, i) - TimeAt(src, i - 1);
    double speed = dt > 0 ? len / (static_cast<double>(dt) / 1000.0) : 0;
    if (speed > max_speed) max_speed = speed;
    ++steps;
    if (speed < 0.2) ++slow_steps;
    if (FloorAt(src, i) != FloorAt(src, i - 1)) ++floor_changes;
    if (len > 0.05) {  // ignore jitter when computing headings
      double heading = std::atan2(step.y, step.x);
      if (have_heading) {
        double diff = std::fabs(heading - prev_heading);
        if (diff > 3.14159265358979323846) diff = 2 * 3.14159265358979323846 - diff;
        if (diff > 3.14159265358979323846 / 4) ++turns;  // > 45 degrees
      }
      prev_heading = heading;
      have_heading = true;
    }
  }
  f[kTravelDistance] = travel;
  f[kNetDisplacement] = XYAt(src, begin).DistanceTo(XYAt(src, end - 1));
  f[kMeanSpeed] = f[kDurationS] > 0 ? travel / f[kDurationS] : 0;
  f[kMaxStepSpeed] = max_speed;
  f[kStraightness] = travel > 1e-9 ? f[kNetDisplacement] / travel : 0;
  f[kTurnCount] = turns;
  f[kTurnRate] = f[kDurationS] > 0 ? turns / (f[kDurationS] / 60.0) : 0;
  f[kStopFraction] =
      steps > 0 ? static_cast<double>(slow_steps) / static_cast<double>(steps) : 0;
  f[kFloorChanges] = floor_changes;
  return f;
}

}  // namespace

FeatureVector ExtractFeatures(const positioning::PositioningSequence& seq,
                              size_t begin, size_t end) {
  return ExtractFeaturesImpl(seq, begin, end);
}

FeatureVector ExtractFeatures(const positioning::RecordBlock& block, size_t begin,
                              size_t end) {
  return ExtractFeaturesImpl(block, begin, end);
}

FeatureVector ExtractFeatures(const positioning::PositioningSequence& seq) {
  return ExtractFeatures(seq, 0, seq.records.size());
}

}  // namespace trips::annotation
