#include "annotation/features.h"

#include <cmath>

namespace trips::annotation {

const std::vector<std::string>& FeatureNames() {
  static const std::vector<std::string> kNames = {
      "duration_s",      "record_count",   "location_variance", "travel_distance",
      "net_displacement", "mean_speed",    "max_step_speed",    "covering_range",
      "straightness",    "turn_count",     "turn_rate",         "stop_fraction",
      "floor_changes",
  };
  return kNames;
}

FeatureVector ExtractFeatures(const positioning::PositioningSequence& seq,
                              size_t begin, size_t end) {
  FeatureVector f{};
  if (end > seq.records.size()) end = seq.records.size();
  if (begin >= end) return f;
  const size_t n = end - begin;
  f[kRecordCount] = static_cast<double>(n);
  if (n < 2) return f;

  const auto& r = seq.records;
  DurationMs duration = r[end - 1].timestamp - r[begin].timestamp;
  f[kDurationS] = static_cast<double>(duration) / 1000.0;

  // Centroid & variance.
  geo::Point2 centroid;
  for (size_t i = begin; i < end; ++i) centroid = centroid + r[i].location.xy;
  centroid = centroid / static_cast<double>(n);
  double var = 0;
  geo::BoundingBox box;
  for (size_t i = begin; i < end; ++i) {
    double d = r[i].location.xy.DistanceTo(centroid);
    var += d * d;
    box.Extend(r[i].location.xy);
  }
  f[kLocationVariance] = var / static_cast<double>(n);
  f[kCoveringRange] =
      std::sqrt(box.Width() * box.Width() + box.Height() * box.Height());

  // Steps: distance, speed, turns, stops, floor changes.
  double travel = 0;
  double max_speed = 0;
  int turns = 0;
  int slow_steps = 0;
  int steps = 0;
  int floor_changes = 0;
  bool have_heading = false;
  double prev_heading = 0;
  for (size_t i = begin + 1; i < end; ++i) {
    geo::Point2 step = r[i].location.xy - r[i - 1].location.xy;
    double len = step.Norm();
    travel += len;
    DurationMs dt = r[i].timestamp - r[i - 1].timestamp;
    double speed = dt > 0 ? len / (static_cast<double>(dt) / 1000.0) : 0;
    if (speed > max_speed) max_speed = speed;
    ++steps;
    if (speed < 0.2) ++slow_steps;
    if (r[i].location.floor != r[i - 1].location.floor) ++floor_changes;
    if (len > 0.05) {  // ignore jitter when computing headings
      double heading = std::atan2(step.y, step.x);
      if (have_heading) {
        double diff = std::fabs(heading - prev_heading);
        if (diff > 3.14159265358979323846) diff = 2 * 3.14159265358979323846 - diff;
        if (diff > 3.14159265358979323846 / 4) ++turns;  // > 45 degrees
      }
      prev_heading = heading;
      have_heading = true;
    }
  }
  f[kTravelDistance] = travel;
  f[kNetDisplacement] = r[begin].location.xy.DistanceTo(r[end - 1].location.xy);
  f[kMeanSpeed] = f[kDurationS] > 0 ? travel / f[kDurationS] : 0;
  f[kMaxStepSpeed] = max_speed;
  f[kStraightness] = travel > 1e-9 ? f[kNetDisplacement] / travel : 0;
  f[kTurnCount] = turns;
  f[kTurnRate] = f[kDurationS] > 0 ? turns / (f[kDurationS] / 60.0) : 0;
  f[kStopFraction] =
      steps > 0 ? static_cast<double>(slow_steps) / static_cast<double>(steps) : 0;
  f[kFloorChanges] = floor_changes;
  return f;
}

FeatureVector ExtractFeatures(const positioning::PositioningSequence& seq) {
  return ExtractFeatures(seq, 0, seq.records.size());
}

}  // namespace trips::annotation
