// Mobility Semantics Annotator — the Annotation layer of the framework (§2,
// §3): "reads the cleaned sequence from the Raw Data Cleaner, and extracts a
// sequence of mobility semantics by matching proper annotations according to
// the relevant contexts (i.e., semantic regions and mobility events)."
#pragma once

#include <cstdint>
#include <vector>

#include "annotation/event_classifier.h"
#include "annotation/spatial_matcher.h"
#include "annotation/splitter.h"
#include "core/semantics.h"
#include "positioning/record.h"

namespace trips::annotation {

/// Options of the annotator.
struct AnnotatorOptions {
  SplitterOptions splitter;
  SpatialMatcherOptions matcher;
  /// Drop snippets that match no semantic region at all.
  bool drop_unmatched = true;
  /// Merge consecutive triplets with equal (event, region)...
  bool merge_adjacent = true;
  /// ...but only when separated by at most this much time; merging across a
  /// longer hole would hide a data gap the Complementing layer should fill.
  DurationMs merge_max_gap = 30 * kMillisPerSecond;
  /// Minimum triplet duration; shorter ones are dropped.
  DurationMs min_duration = 5 * kMillisPerSecond;
};

/// Optional timing breakdown of one Annotate call, filled by the annotator so
/// callers (core::Translator) can attribute the split stage separately from
/// the rest of annotation without this layer depending on trips::obs.
struct AnnotateTimings {
  uint64_t split_ns = 0;  ///< wall time of SplitSequence
};

/// Produces mobility semantics from cleaned positioning sequences.
class Annotator {
 public:
  /// `dsm` and `classifier` must outlive the annotator. The classifier may be
  /// untrained (rule-based identification is used then).
  Annotator(const dsm::Dsm* dsm, const EventClassifier* classifier,
            AnnotatorOptions options = {});

  /// Annotates one cleaned sequence into its mobility semantics sequence.
  /// When `timings` is non-null the per-stage breakdown is written to it.
  core::MobilitySemanticsSequence Annotate(
      const positioning::PositioningSequence& cleaned,
      AnnotateTimings* timings = nullptr) const;

  /// Columnar form: annotates a cleaned record block directly (the block
  /// pipeline path — no AoS materialization; output identical to the AoS
  /// form).
  core::MobilitySemanticsSequence Annotate(
      const positioning::RecordBlock& cleaned,
      AnnotateTimings* timings = nullptr) const;

 private:
  const dsm::Dsm* dsm_;
  const EventClassifier* classifier_;
  AnnotatorOptions options_;
  SpatialMatcher matcher_;
};

/// Baseline annotator implementing the stop/move scheme of the prior GPS
/// systems TRIPS compares against ([10, 12] in the paper): snippets whose
/// mean speed is below `stop_speed` become "stay", everything else "pass-by".
/// Spatial matching is shared with the TRIPS annotator.
class StopMoveBaseline {
 public:
  StopMoveBaseline(const dsm::Dsm* dsm, AnnotatorOptions options = {},
                   double stop_speed = 0.5);

  core::MobilitySemanticsSequence Annotate(
      const positioning::PositioningSequence& cleaned) const;

  /// Columnar form over a cleaned record block.
  core::MobilitySemanticsSequence Annotate(
      const positioning::RecordBlock& cleaned) const;

 private:
  const dsm::Dsm* dsm_;
  AnnotatorOptions options_;
  double stop_speed_;
  SpatialMatcher matcher_;
};

}  // namespace trips::annotation
