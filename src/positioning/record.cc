#include "positioning/record.h"

#include <algorithm>

namespace trips::positioning {

void PositioningSequence::SortByTime() {
  std::stable_sort(records.begin(), records.end(),
                   [](const RawRecord& a, const RawRecord& b) {
                     return a.timestamp < b.timestamp;
                   });
}

DurationMs PositioningSequence::MeanInterval() const {
  if (records.size() < 2) return 0;
  return (records.back().timestamp - records.front().timestamp) /
         static_cast<DurationMs>(records.size() - 1);
}

double PositioningSequence::FrequencyHz() const {
  DurationMs interval = MeanInterval();
  return interval > 0 ? 1000.0 / static_cast<double>(interval) : 0.0;
}

double PositioningSequence::PlanarPathLength() const {
  double total = 0;
  for (size_t i = 1; i < records.size(); ++i) {
    if (records[i - 1].location.floor == records[i].location.floor) {
      total += records[i - 1].location.PlanarDistanceTo(records[i].location);
    }
  }
  return total;
}

std::vector<RawRecord> PositioningSequence::RecordsIn(const TimeRange& range) const {
  std::vector<RawRecord> out;
  for (const RawRecord& r : records) {
    if (range.Contains(r.timestamp)) out.push_back(r);
  }
  return out;
}

}  // namespace trips::positioning
