// Wi-Fi-like positioning error model.
//
// SUBSTITUTION (see DESIGN.md §1): the paper demonstrates on a proprietary
// Wi-Fi positioning dataset from a 7-floor Hangzhou mall. We reproduce the
// error characteristics that dataset exhibits — and that the paper's Cleaning
// layer explicitly targets (§3): noisy planar locations, wrong floor values,
// outlier jumps, discrete/irregular sampling, and dropout gaps — by degrading
// ground-truth trajectories with a parameterized stochastic model. Unlike the
// proprietary data, this keeps ground truth available for quantitative
// evaluation.
#pragma once

#include <vector>

#include "positioning/record.h"
#include "util/rng.h"

namespace trips::positioning {

/// Parameters of the synthetic positioning error model. Defaults approximate
/// a mid-quality indoor Wi-Fi deployment.
struct ErrorModelOptions {
  /// Standard deviation of isotropic Gaussian planar noise, metres.
  double xy_noise_sigma = 1.5;
  /// Probability that a record's floor value is wrong.
  double floor_error_rate = 0.05;
  /// When a floor error occurs, probability it is an adjacent floor (else a
  /// uniformly random other floor).
  double floor_error_adjacent_bias = 0.8;
  /// Probability of a gross outlier (uniform jump up to outlier_range metres).
  double outlier_rate = 0.01;
  /// Maximum planar displacement of an outlier, metres.
  double outlier_range = 30.0;
  /// Probability that an individual record is dropped (sensing miss).
  double dropout_rate = 0.05;
  /// Expected number of long gaps per hour of data (device unseen; models
  /// leaving Wi-Fi coverage). Gap lengths are uniform in the range below.
  double gaps_per_hour = 0.5;
  DurationMs gap_min = 2 * kMillisPerMinute;
  DurationMs gap_max = 10 * kMillisPerMinute;
  /// Number of floors in the building (floor ids 0..floor_count-1).
  int floor_count = 7;
};

/// Degrades a ground-truth sequence into a raw positioning sequence by
/// applying the configured error processes. Record order is preserved;
/// timestamps are untouched (sampling discreteness is the generator's job).
PositioningSequence ApplyErrorModel(const PositioningSequence& truth,
                                    const ErrorModelOptions& options, Rng* rng);

/// Summary statistics comparing a degraded sequence against its ground truth
/// (matched by timestamp). Used by the cleaning benchmarks.
struct ErrorStats {
  size_t matched = 0;          ///< records present in both sequences
  size_t floor_errors = 0;     ///< matched records with a wrong floor
  double planar_rmse = 0;      ///< RMSE of planar distance over matched records
  double mean_planar_error = 0;
  size_t dropped = 0;          ///< truth records missing from the degraded data
};

/// Computes ErrorStats between `truth` and `observed` (both time-sorted).
ErrorStats CompareToTruth(const PositioningSequence& truth,
                          const PositioningSequence& observed);

}  // namespace trips::positioning
