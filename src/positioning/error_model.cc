#include "positioning/error_model.h"

#include <cmath>
#include <map>

namespace trips::positioning {

PositioningSequence ApplyErrorModel(const PositioningSequence& truth,
                                    const ErrorModelOptions& options, Rng* rng) {
  PositioningSequence out;
  out.device_id = truth.device_id;
  if (truth.records.empty()) return out;

  // Pre-draw long gaps over the sequence's time span.
  TimeRange span = truth.Span();
  double hours = static_cast<double>(span.Duration()) / kMillisPerHour;
  int gap_count = 0;
  if (options.gaps_per_hour > 0 && hours > 0) {
    double expected = options.gaps_per_hour * hours;
    gap_count = static_cast<int>(expected);
    if (rng->Chance(expected - gap_count)) ++gap_count;
  }
  std::vector<TimeRange> gaps;
  for (int i = 0; i < gap_count; ++i) {
    DurationMs len = rng->UniformInt(options.gap_min, options.gap_max);
    if (span.Duration() <= len) continue;
    TimestampMs start = rng->UniformInt(span.begin, span.end - len);
    gaps.push_back({start, start + len});
  }

  out.records.reserve(truth.records.size());
  for (const RawRecord& r : truth.records) {
    bool in_gap = false;
    for (const TimeRange& g : gaps) {
      if (g.Contains(r.timestamp)) {
        in_gap = true;
        break;
      }
    }
    if (in_gap || rng->Chance(options.dropout_rate)) continue;

    RawRecord noisy = r;
    noisy.location.xy.x += rng->Gaussian(0, options.xy_noise_sigma);
    noisy.location.xy.y += rng->Gaussian(0, options.xy_noise_sigma);

    if (rng->Chance(options.outlier_rate)) {
      double angle = rng->Uniform(0, 2 * 3.14159265358979323846);
      double dist = rng->Uniform(options.outlier_range * 0.3, options.outlier_range);
      noisy.location.xy.x += dist * std::cos(angle);
      noisy.location.xy.y += dist * std::sin(angle);
    }

    if (options.floor_count > 1 && rng->Chance(options.floor_error_rate)) {
      geo::FloorId f = noisy.location.floor;
      if (rng->Chance(options.floor_error_adjacent_bias)) {
        // Adjacent-floor confusion, clamped to the building.
        geo::FloorId delta = rng->Chance(0.5) ? 1 : -1;
        geo::FloorId nf = f + delta;
        if (nf < 0) nf = f + 1;
        if (nf >= options.floor_count) nf = f - 1;
        noisy.location.floor = nf;
      } else {
        geo::FloorId nf = f;
        while (nf == f) {
          nf = static_cast<geo::FloorId>(rng->UniformInt(0, options.floor_count - 1));
        }
        noisy.location.floor = nf;
      }
    }
    out.records.push_back(noisy);
  }
  return out;
}

ErrorStats CompareToTruth(const PositioningSequence& truth,
                          const PositioningSequence& observed) {
  ErrorStats stats;
  std::map<TimestampMs, const RawRecord*> by_time;
  for (const RawRecord& r : observed.records) by_time[r.timestamp] = &r;

  double sq_sum = 0;
  double abs_sum = 0;
  for (const RawRecord& t : truth.records) {
    auto it = by_time.find(t.timestamp);
    if (it == by_time.end()) {
      ++stats.dropped;
      continue;
    }
    ++stats.matched;
    const RawRecord& o = *it->second;
    if (o.location.floor != t.location.floor) ++stats.floor_errors;
    double d = o.location.PlanarDistanceTo(t.location);
    sq_sum += d * d;
    abs_sum += d;
  }
  if (stats.matched > 0) {
    stats.planar_rmse = std::sqrt(sq_sum / static_cast<double>(stats.matched));
    stats.mean_planar_error = abs_sum / static_cast<double>(stats.matched);
  }
  return stats;
}

}  // namespace trips::positioning
