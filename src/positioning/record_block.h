// Columnar (struct-of-arrays) record storage — the layout the translation
// hot path runs on. A RecordBlock holds one device's records as contiguous
// per-attribute columns (timestamps, planar x/y, floors) plus a validity
// bitmap, so the cleaning/annotation passes stream exactly the columns they
// touch instead of striding over AoS RawRecord structs, and a block's buffers
// are reusable across sequences (reserve once, Clear + refill).
//
// Conversions to/from positioning::PositioningSequence are exact (the columns
// store the same doubles/int64s the AoS records hold), so the AoS API shims
// that delegate through a block are byte-identical to operating on the
// sequence directly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "geometry/point.h"
#include "positioning/record.h"
#include "util/time_util.h"

namespace trips::positioning {

/// One device's positioning records in columnar form. All columns have equal
/// length; `validity` packs one bit per record (1 = valid) in 64-bit words.
/// The helpers keep the columns and the bitmap consistent; code that writes
/// the columns directly (the cleaning passes) must keep the lengths aligned.
struct RecordBlock {
  std::string device_id;
  std::vector<TimestampMs> timestamps;
  std::vector<double> xs;
  std::vector<double> ys;
  std::vector<geo::FloorId> floors;
  /// Validity bitmap, ceil(Size()/64) words; bit i of word i/64 = record i.
  std::vector<uint64_t> validity;

  size_t Size() const { return timestamps.size(); }
  bool Empty() const { return timestamps.empty(); }

  /// Drops all records (capacity retained — the reuse path).
  void Clear();

  /// Reserves capacity in every column.
  void Reserve(size_t n);

  /// Appends one record, marked valid.
  void Append(double x, double y, geo::FloorId floor, TimestampMs t);
  void Append(const RawRecord& record) {
    Append(record.location.xy.x, record.location.xy.y, record.location.floor,
           record.timestamp);
  }

  // ---- per-record access ----

  geo::IndoorPoint Location(size_t i) const { return {xs[i], ys[i], floors[i]}; }
  geo::Point2 XY(size_t i) const { return {xs[i], ys[i]}; }
  void SetLocation(size_t i, const geo::IndoorPoint& p) {
    xs[i] = p.xy.x;
    ys[i] = p.xy.y;
    floors[i] = p.floor;
  }
  RawRecord Record(size_t i) const { return {Location(i), timestamps[i]}; }

  /// Gathers records [begin, end) out of the columns into a contiguous
  /// IndoorPoint staging array (out[k] = Location(begin + k), so `out` must
  /// hold end - begin points) — the column->batch transposition the cleaner's
  /// batched snap query feeds from.
  void GatherLocations(size_t begin, size_t end, geo::IndoorPoint* out) const {
    for (size_t i = begin; i < end; ++i) {
      out[i - begin] = {xs[i], ys[i], floors[i]};
    }
  }

  // ---- validity bitmap ----

  bool IsValid(size_t i) const {
    return (validity[i >> 6] >> (i & 63)) & uint64_t{1};
  }
  void SetValid(size_t i, bool valid) {
    uint64_t mask = uint64_t{1} << (i & 63);
    if (valid) {
      validity[i >> 6] |= mask;
    } else {
      validity[i >> 6] &= ~mask;
    }
  }
  /// Marks every record valid (the state conversions/Append produce).
  void MarkAllValid();
  /// Number of records currently marked invalid.
  size_t InvalidCount() const;

  // ---- whole-block operations ----

  /// Time span covered ([0,0] when empty); assumes time-sorted columns.
  TimeRange Span() const {
    if (Empty()) return {};
    return {timestamps.front(), timestamps.back()};
  }

  /// Stable sort of all columns by timestamp — the same permutation
  /// PositioningSequence::SortByTime applies to AoS records.
  void SortByTime();

  // ---- conversions ----

  /// Refills this block from a sequence, reusing the column buffers.
  void AssignFrom(const PositioningSequence& seq);

  /// Materializes the block into `out`, reusing its record buffer.
  void MaterializeTo(PositioningSequence* out) const;

  /// Convenience: a freshly allocated AoS copy.
  PositioningSequence ToSequence() const;

  /// Convenience: a freshly allocated block copy of `seq`.
  static RecordBlock FromSequence(const PositioningSequence& seq);
};

// ---- uniform per-record accessors ------------------------------------------
//
// Overloaded for both layouts so an algorithm body can be written once (as a
// template over the source type) and run on AoS sequences and SoA blocks with
// identical arithmetic — the annotation layer's splitter, feature extraction
// and spatial matcher are implemented this way.

inline size_t RecordCount(const PositioningSequence& s) { return s.records.size(); }
inline size_t RecordCount(const RecordBlock& b) { return b.Size(); }

inline TimestampMs TimeAt(const PositioningSequence& s, size_t i) {
  return s.records[i].timestamp;
}
inline TimestampMs TimeAt(const RecordBlock& b, size_t i) { return b.timestamps[i]; }

inline geo::Point2 XYAt(const PositioningSequence& s, size_t i) {
  return s.records[i].location.xy;
}
inline geo::Point2 XYAt(const RecordBlock& b, size_t i) { return b.XY(i); }

inline geo::FloorId FloorAt(const PositioningSequence& s, size_t i) {
  return s.records[i].location.floor;
}
inline geo::FloorId FloorAt(const RecordBlock& b, size_t i) { return b.floors[i]; }

inline geo::IndoorPoint LocationAt(const PositioningSequence& s, size_t i) {
  return s.records[i].location;
}
inline geo::IndoorPoint LocationAt(const RecordBlock& b, size_t i) {
  return b.Location(i);
}

}  // namespace trips::positioning
