#include "positioning/record_block.h"

#include <algorithm>
#include <numeric>

namespace trips::positioning {

namespace {
inline size_t WordsFor(size_t n) { return (n + 63) / 64; }
}  // namespace

void RecordBlock::Clear() {
  timestamps.clear();
  xs.clear();
  ys.clear();
  floors.clear();
  validity.clear();
}

void RecordBlock::Reserve(size_t n) {
  timestamps.reserve(n);
  xs.reserve(n);
  ys.reserve(n);
  floors.reserve(n);
  validity.reserve(WordsFor(n));
}

void RecordBlock::Append(double x, double y, geo::FloorId floor, TimestampMs t) {
  size_t i = timestamps.size();
  timestamps.push_back(t);
  xs.push_back(x);
  ys.push_back(y);
  floors.push_back(floor);
  if (validity.size() < WordsFor(i + 1)) validity.push_back(0);
  SetValid(i, true);
}

void RecordBlock::MarkAllValid() {
  validity.assign(WordsFor(Size()), ~uint64_t{0});
  // Bits past Size() in the last word are never read, so no trim needed.
}

size_t RecordBlock::InvalidCount() const {
  size_t invalid = 0;
  for (size_t i = 0, n = Size(); i < n; ++i) {
    if (!IsValid(i)) ++invalid;
  }
  return invalid;
}

void RecordBlock::SortByTime() {
  const size_t n = Size();
  if (n < 2) return;
  bool sorted = true;
  for (size_t i = 1; i < n; ++i) {
    if (timestamps[i] < timestamps[i - 1]) {
      sorted = false;
      break;
    }
  }
  if (sorted) return;

  // Stable permutation by timestamp — index ties keep input order, exactly
  // like std::stable_sort over AoS records compared by timestamp only.
  std::vector<uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  std::stable_sort(perm.begin(), perm.end(), [this](uint32_t a, uint32_t b) {
    return timestamps[a] < timestamps[b];
  });

  std::vector<TimestampMs> ts(n);
  std::vector<double> px(n), py(n);
  std::vector<geo::FloorId> pf(n);
  std::vector<uint64_t> pv(WordsFor(n), 0);
  for (size_t i = 0; i < n; ++i) {
    uint32_t src = perm[i];
    ts[i] = timestamps[src];
    px[i] = xs[src];
    py[i] = ys[src];
    pf[i] = floors[src];
    if (IsValid(src)) pv[i >> 6] |= uint64_t{1} << (i & 63);
  }
  timestamps = std::move(ts);
  xs = std::move(px);
  ys = std::move(py);
  floors = std::move(pf);
  validity = std::move(pv);
}

void RecordBlock::AssignFrom(const PositioningSequence& seq) {
  device_id = seq.device_id;
  const size_t n = seq.records.size();
  timestamps.resize(n);
  xs.resize(n);
  ys.resize(n);
  floors.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const RawRecord& r = seq.records[i];
    timestamps[i] = r.timestamp;
    xs[i] = r.location.xy.x;
    ys[i] = r.location.xy.y;
    floors[i] = r.location.floor;
  }
  MarkAllValid();
}

void RecordBlock::MaterializeTo(PositioningSequence* out) const {
  out->device_id = device_id;
  const size_t n = Size();
  out->records.resize(n);
  for (size_t i = 0; i < n; ++i) {
    out->records[i] = Record(i);
  }
}

PositioningSequence RecordBlock::ToSequence() const {
  PositioningSequence seq;
  MaterializeTo(&seq);
  return seq;
}

RecordBlock RecordBlock::FromSequence(const PositioningSequence& seq) {
  RecordBlock block;
  block.AssignFrom(seq);
  return block;
}

}  // namespace trips::positioning
