#include "positioning/csv_io.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>

#include "util/string_util.h"

namespace trips::positioning {

namespace {

bool ParseDoubleStrict(std::string_view text, double* out) {
  std::string s(Trim(text));
  if (s.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size();
}

Result<TimestampMs> ParseTimestampField(std::string_view field) {
  std::string s(Trim(field));
  if (s.empty()) return Status::ParseError("empty timestamp field");
  // Epoch-millisecond integers have no '-' past position 0 and no ':'.
  if (s.find(':') == std::string::npos) {
    char* end = nullptr;
    long long v = std::strtoll(s.c_str(), &end, 10);
    if (end == s.c_str() + s.size()) return static_cast<TimestampMs>(v);
    return Status::ParseError("bad numeric timestamp '" + s + "'");
  }
  return ParseTimestamp(s);
}

}  // namespace

Result<std::vector<PositioningSequence>> ParseCsv(const std::string& text) {
  std::map<std::string, size_t> index;
  std::vector<PositioningSequence> sequences;
  size_t line_no = 0;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    std::vector<std::string> fields = Split(trimmed, ',');
    if (line_no == 1 && !fields.empty() && ToLower(Trim(fields[0])) == "device_id") {
      continue;  // header row
    }
    if (fields.size() != 5) {
      return Status::ParseError("line " + std::to_string(line_no) +
                                ": expected 5 fields, got " +
                                std::to_string(fields.size()));
    }
    std::string device(Trim(fields[0]));
    double x = 0, y = 0, floor = 0;
    if (!ParseDoubleStrict(fields[1], &x) || !ParseDoubleStrict(fields[2], &y) ||
        !ParseDoubleStrict(fields[3], &floor)) {
      return Status::ParseError("line " + std::to_string(line_no) +
                                ": bad numeric field");
    }
    auto ts = ParseTimestampField(fields[4]);
    if (!ts.ok()) {
      return Status::ParseError("line " + std::to_string(line_no) + ": " +
                                ts.status().message());
    }
    auto [it, inserted] = index.try_emplace(device, sequences.size());
    if (inserted) {
      sequences.emplace_back();
      sequences.back().device_id = device;
    }
    sequences[it->second].records.emplace_back(
        x, y, static_cast<geo::FloorId>(floor), ts.ValueOrDie());
  }
  for (PositioningSequence& seq : sequences) seq.SortByTime();
  return sequences;
}

Result<std::vector<PositioningSequence>> ReadCsvFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseCsv(buf.str());
}

std::string ToCsv(const std::vector<PositioningSequence>& sequences) {
  std::string out = "device_id,x,y,floor,timestamp\n";
  char buf[160];
  for (const PositioningSequence& seq : sequences) {
    for (const RawRecord& r : seq.records) {
      std::snprintf(buf, sizeof(buf), "%s,%.4f,%.4f,%d,%lld\n", seq.device_id.c_str(),
                    r.location.xy.x, r.location.xy.y, r.location.floor,
                    static_cast<long long>(r.timestamp));
      out += buf;
    }
  }
  return out;
}

Status WriteCsvFile(const std::vector<PositioningSequence>& sequences,
                    const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot write '" + path + "'");
  out << ToCsv(sequences);
  if (!out.good()) return Status::IOError("write failed for '" + path + "'");
  return Status::OK();
}

}  // namespace trips::positioning
