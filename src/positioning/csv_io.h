// CSV import/export of positioning data — one of the Data Selector's
// multi-source inputs ("text files, database tables, and streams APIs", §2).
//
// File format (header optional):
//   device_id,x,y,floor,timestamp
// where timestamp is either epoch milliseconds or "YYYY-MM-DD hh:mm:ss[.mmm]".
#pragma once

#include <string>
#include <vector>

#include "positioning/record.h"
#include "util/result.h"

namespace trips::positioning {

/// Parses CSV text into per-device sequences (sorted by time within each
/// device; devices ordered by first appearance).
Result<std::vector<PositioningSequence>> ParseCsv(const std::string& text);

/// Reads and parses a CSV file.
Result<std::vector<PositioningSequence>> ReadCsvFile(const std::string& path);

/// Serializes sequences to CSV text (epoch-millisecond timestamps, header row).
std::string ToCsv(const std::vector<PositioningSequence>& sequences);

/// Writes sequences to a CSV file.
Status WriteCsvFile(const std::vector<PositioningSequence>& sequences,
                    const std::string& path);

}  // namespace trips::positioning
