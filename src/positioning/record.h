// Raw indoor positioning records and per-device sequences — the left-hand
// side of the paper's Table 1: "oi, (5.1, 12.7, 3F), 1:02:05pm".
#pragma once

#include <string>
#include <vector>

#include "geometry/point.h"
#include "util/time_util.h"

namespace trips::positioning {

/// One raw positioning record: a geometric point at a timestamp. The device
/// id lives on the enclosing sequence.
struct RawRecord {
  geo::IndoorPoint location;
  TimestampMs timestamp = 0;

  RawRecord() = default;
  RawRecord(geo::IndoorPoint loc, TimestampMs t) : location(loc), timestamp(t) {}
  RawRecord(double x, double y, geo::FloorId f, TimestampMs t)
      : location(x, y, f), timestamp(t) {}

  bool operator==(const RawRecord& other) const = default;
};

/// The positioning records of one device, ordered by timestamp.
struct PositioningSequence {
  /// Device identifier (e.g. an anonymized MAC such as "3a.6f.14").
  std::string device_id;
  std::vector<RawRecord> records;

  bool Empty() const { return records.empty(); }
  size_t Size() const { return records.size(); }

  /// Time span covered by the sequence ([0,0] when empty).
  TimeRange Span() const {
    if (records.empty()) return {};
    return {records.front().timestamp, records.back().timestamp};
  }

  /// Sorts records by timestamp (stable; keeps equal-time order).
  void SortByTime();

  /// Mean sampling interval in ms (0 when fewer than 2 records).
  DurationMs MeanInterval() const;

  /// Average positioning frequency in Hz (0 when fewer than 2 records).
  double FrequencyHz() const;

  /// Sum of planar distances between consecutive same-floor records.
  double PlanarPathLength() const;

  /// Returns the records whose timestamps fall within [range.begin, range.end].
  std::vector<RawRecord> RecordsIn(const TimeRange& range) const;
};

}  // namespace trips::positioning
