// Tiny SVG document builder used by the map renderer. No external deps.
#pragma once

#include <string>
#include <vector>

#include "geometry/shapes.h"

namespace trips::viewer {

/// Builds an SVG document incrementally; Finish() returns the markup.
class SvgBuilder {
 public:
  /// Document in user units; `scale` maps metres to pixels, `margin` pixels
  /// of padding. The y axis is flipped so building coordinates (y up) render
  /// naturally.
  SvgBuilder(geo::BoundingBox world, double scale = 8.0, double margin = 20.0);

  void AddPolygon(const geo::Polygon& poly, const std::string& fill,
                  const std::string& stroke, double stroke_width = 1.0,
                  double fill_opacity = 1.0);
  void AddPolyline(const std::vector<geo::Point2>& points, const std::string& stroke,
                   double stroke_width = 1.5, double opacity = 1.0,
                   bool dashed = false);
  void AddCircle(const geo::Point2& center, double radius_px, const std::string& fill,
                 double opacity = 1.0);
  void AddText(const geo::Point2& anchor, const std::string& text, double size_px,
               const std::string& fill = "#333");
  /// Raw SVG fragment escape hatch (already-transformed coordinates).
  void AddRaw(const std::string& fragment);

  /// Transforms a world point to pixel coordinates.
  geo::Point2 ToPixel(const geo::Point2& world) const;

  double WidthPx() const;
  double HeightPx() const;

  /// Completes the document and returns the SVG markup.
  std::string Finish() const;

 private:
  geo::BoundingBox world_;
  double scale_;
  double margin_;
  std::vector<std::string> elements_;
};

/// Escapes &, <, > and quotes for XML attribute/text contexts.
std::string XmlEscape(const std::string& text);

}  // namespace trips::viewer
