// Standalone HTML export of a translation session: per-floor map views plus
// the interactive-ish timeline (semantics as the primary navigator, per §3
// "Map View and Timeline Control"). Substitutes the paper's web frontend
// with a self-contained file (DESIGN.md §1).
#pragma once

#include <string>

#include "util/result.h"
#include "viewer/map_renderer.h"

namespace trips::viewer {

/// Options of the HTML export.
struct HtmlExportOptions {
  MapViewOptions map;
  std::string title = "TRIPS translation view";
};

/// Builds a single HTML document containing every floor's SVG map and, for
/// each timeline whose entries carry labels (semantics), a timeline listing.
std::string RenderHtml(const dsm::Dsm& dsm, const MapRenderer& renderer,
                       const HtmlExportOptions& options = {});

/// Writes RenderHtml output to a file.
Status WriteHtml(const dsm::Dsm& dsm, const MapRenderer& renderer,
                 const std::string& path, const HtmlExportOptions& options = {});

}  // namespace trips::viewer
