// Region heatmap: shades each semantic region of a floor by an analytics
// metric (visits, dwell time, conversion) — the "popular indoor location
// discovery" view on top of the Viewer's map rendering.
#pragma once

#include <string>

#include "core/analytics.h"
#include "dsm/dsm.h"
#include "util/result.h"

namespace trips::viewer {

/// Which RegionStats field drives the shading.
enum class HeatmapMetric { kVisits, kTotalTime, kConversion };

/// Heatmap rendering options.
struct HeatmapOptions {
  HeatmapMetric metric = HeatmapMetric::kVisits;
  double scale = 8.0;  ///< pixels per metre
  bool label_values = true;
};

/// Renders `floor` with regions filled on a white-to-red ramp normalized to
/// the hottest region across the whole corpus (so floors are comparable).
std::string RenderRegionHeatmapSvg(const dsm::Dsm& dsm,
                                   const core::MobilityAnalytics& analytics,
                                   geo::FloorId floor,
                                   const HeatmapOptions& options = {});

/// Writes RenderRegionHeatmapSvg output to a file.
Status WriteRegionHeatmapSvg(const dsm::Dsm& dsm,
                             const core::MobilityAnalytics& analytics,
                             geo::FloorId floor, const std::string& path,
                             const HeatmapOptions& options = {});

}  // namespace trips::viewer
