// Indoor Map Visualizer + Mobility Data Visualizer (§2, §3): renders one
// floor of the DSM and any number of timelines on top of it, with per-source
// visibility control (the legend panel) and floor switching. The browser
// canvas of the paper becomes standalone SVG output (see DESIGN.md §1).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "dsm/dsm.h"
#include "util/result.h"
#include "viewer/timeline.h"

namespace trips::viewer {

/// Rendering options, including the visibility-control legend.
struct MapViewOptions {
  /// Pixels per metre.
  double scale = 8.0;
  /// Label semantic regions with their names.
  bool label_regions = true;
  /// Per-source visibility toggles; sources absent from the map are visible.
  std::map<std::string, bool> visible;
  /// Per-source stroke/fill colors; sources absent get defaults.
  std::map<std::string, std::string> colors;
  /// Restrict rendered entries to this window (invalid range = everything).
  TimeRange window{1, 0};
};

/// Renders floors of a DSM with overlaid mobility data.
class MapRenderer {
 public:
  /// `dsm` must outlive the renderer.
  explicit MapRenderer(const dsm::Dsm* dsm) : dsm_(dsm) {}

  /// Adds a data timeline to render (raw/cleaned/semantics/truth).
  void AddTimeline(Timeline timeline);
  /// Removes all timelines.
  void ClearTimelines() { timelines_.clear(); }
  const std::vector<Timeline>& timelines() const { return timelines_; }

  /// Renders `floor` as an SVG document (the "map view" for that floor).
  std::string RenderFloorSvg(geo::FloorId floor, const MapViewOptions& options = {}) const;

  /// Writes RenderFloorSvg output to a file.
  Status WriteFloorSvg(geo::FloorId floor, const std::string& path,
                       const MapViewOptions& options = {}) const;

 private:
  bool IsVisible(const MapViewOptions& options, const std::string& source) const;
  std::string ColorFor(const MapViewOptions& options, const std::string& source,
                       size_t index) const;

  const dsm::Dsm* dsm_;
  std::vector<Timeline> timelines_;
};

}  // namespace trips::viewer
