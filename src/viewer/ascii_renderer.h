// ASCII map view: renders one floor plus timeline points into a character
// grid for terminals — handy in examples and debugging sessions where no
// SVG viewer is at hand.
#pragma once

#include <string>

#include "dsm/dsm.h"
#include "viewer/timeline.h"

namespace trips::viewer {

/// Options of the ASCII rendering.
struct AsciiOptions {
  int width = 100;   ///< grid columns
  int height = 30;   ///< grid rows
};

/// Renders `floor` of the DSM as characters: '#' walls/edges, '.' walkable,
/// '+' doors, '=' stairs/elevators, letters for timeline sources (first
/// letter of the source name), '*' semantics display points.
std::string RenderFloorAscii(const dsm::Dsm& dsm, geo::FloorId floor,
                             const std::vector<Timeline>& timelines,
                             const AsciiOptions& options = {});

/// Renders a semantics sequence as a textual timeline (one line per entry,
/// inferred entries marked with '~').
std::string RenderTimelineText(const core::MobilitySemanticsSequence& seq);

}  // namespace trips::viewer
