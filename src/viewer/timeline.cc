#include "viewer/timeline.h"

#include <cmath>

namespace trips::viewer {

TimeRange Timeline::Span() const {
  if (entries.empty()) return {};
  TimeRange span = entries.front().range;
  for (const TimelineEntry& e : entries) {
    span.begin = std::min(span.begin, e.range.begin);
    span.end = std::max(span.end, e.range.end);
  }
  return span;
}

std::vector<const TimelineEntry*> Timeline::EntriesIn(const TimeRange& range) const {
  std::vector<const TimelineEntry*> out;
  for (const TimelineEntry& e : entries) {
    if (e.range.Overlaps(range)) out.push_back(&e);
  }
  return out;
}

Timeline Timeline::FromPositioning(const positioning::PositioningSequence& seq,
                                   std::string source) {
  Timeline tl;
  tl.source = std::move(source);
  tl.entries.reserve(seq.records.size());
  for (const positioning::RawRecord& r : seq.records) {
    TimelineEntry e;
    e.display_point = r.location;
    e.range = {r.timestamp, r.timestamp};
    tl.entries.push_back(std::move(e));
  }
  return tl;
}

Timeline Timeline::FromSemantics(const core::MobilitySemanticsSequence& seq,
                                 const positioning::PositioningSequence& backing,
                                 DisplayPointPolicy policy, std::string source) {
  Timeline tl;
  tl.source = std::move(source);
  tl.entries.reserve(seq.semantics.size());
  for (const core::MobilitySemantic& s : seq.semantics) {
    TimelineEntry e;
    e.range = s.range;
    e.label = s.ToString();
    e.inferred = s.inferred;

    std::vector<positioning::RawRecord> covered = backing.RecordsIn(s.range);
    if (!covered.empty()) {
      if (policy == DisplayPointPolicy::kTemporalMiddle) {
        TimestampMs mid = (s.range.begin + s.range.end) / 2;
        const positioning::RawRecord* best = &covered.front();
        for (const positioning::RawRecord& r : covered) {
          if (std::llabs(r.timestamp - mid) < std::llabs(best->timestamp - mid)) {
            best = &r;
          }
        }
        e.display_point = best->location;
      } else {
        geo::Point2 centroid;
        for (const positioning::RawRecord& r : covered) {
          centroid = centroid + r.location.xy;
        }
        centroid = centroid / static_cast<double>(covered.size());
        const positioning::RawRecord* best = &covered.front();
        double best_dist = best->location.xy.DistanceTo(centroid);
        for (const positioning::RawRecord& r : covered) {
          double d = r.location.xy.DistanceTo(centroid);
          if (d < best_dist) {
            best_dist = d;
            best = &r;
          }
        }
        e.display_point = best->location;
      }
    } else if (!backing.records.empty()) {
      e.display_point = backing.records[backing.records.size() / 2].location;
    }
    tl.entries.push_back(std::move(e));
  }
  return tl;
}

}  // namespace trips::viewer
