#include "viewer/heatmap.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>

#include "viewer/svg.h"

namespace trips::viewer {

namespace {

double MetricOf(const core::RegionStats& stats, HeatmapMetric metric) {
  switch (metric) {
    case HeatmapMetric::kVisits:
      return static_cast<double>(stats.visits);
    case HeatmapMetric::kTotalTime:
      return static_cast<double>(stats.total_time);
    case HeatmapMetric::kConversion:
      return stats.conversion_rate;
  }
  return 0;
}

// White (0) to saturated red (1).
std::string Ramp(double t) {
  t = std::clamp(t, 0.0, 1.0);
  int g = static_cast<int>(255 * (1 - 0.8 * t));
  int b = static_cast<int>(255 * (1 - 0.9 * t));
  char buf[16];
  std::snprintf(buf, sizeof(buf), "#ff%02x%02x", g, b);
  return buf;
}

std::string MetricLabel(const core::RegionStats& stats, HeatmapMetric metric) {
  char buf[48];
  switch (metric) {
    case HeatmapMetric::kVisits:
      std::snprintf(buf, sizeof(buf), "%zu", stats.visits);
      break;
    case HeatmapMetric::kTotalTime:
      std::snprintf(buf, sizeof(buf), "%.0fm",
                    static_cast<double>(stats.total_time) / kMillisPerMinute);
      break;
    case HeatmapMetric::kConversion:
      std::snprintf(buf, sizeof(buf), "%.0f%%", stats.conversion_rate * 100);
      break;
  }
  return buf;
}

}  // namespace

std::string RenderRegionHeatmapSvg(const dsm::Dsm& dsm,
                                   const core::MobilityAnalytics& analytics,
                                   geo::FloorId floor,
                                   const HeatmapOptions& options) {
  std::map<dsm::RegionId, core::RegionStats> by_region;
  double max_metric = 0;
  for (const core::RegionStats& stats : analytics.RegionReport()) {
    by_region[stats.region] = stats;
    max_metric = std::max(max_metric, MetricOf(stats, options.metric));
  }

  SvgBuilder svg(dsm.FloorBounds(floor), options.scale);
  if (const dsm::Floor* f = dsm.GetFloor(floor)) {
    if (f->outline.vertices.size() >= 3) {
      svg.AddPolygon(f->outline, "#fcfcfc", "#999", 1.5);
    }
  }
  for (const dsm::Entity& e : dsm.entities()) {
    if (e.floor != floor || !dsm::IsWalkableKind(e.kind)) continue;
    svg.AddPolygon(e.shape, "#f4f4f4", "#bbb", 0.6);
  }
  for (const dsm::SemanticRegion& r : dsm.regions()) {
    if (r.floor != floor) continue;
    auto it = by_region.find(r.id);
    double value = it != by_region.end() ? MetricOf(it->second, options.metric) : 0;
    double t = max_metric > 0 ? value / max_metric : 0;
    svg.AddPolygon(r.shape, Ramp(t), "#a33", 0.8, 0.8);
    svg.AddText(r.Center() + geo::Point2{0, 1.0}, r.name, 9, "#222");
    if (options.label_values && it != by_region.end()) {
      svg.AddText(r.Center() - geo::Point2{0, 1.5},
                  MetricLabel(it->second, options.metric), 9, "#444");
    }
  }
  return svg.Finish();
}

Status WriteRegionHeatmapSvg(const dsm::Dsm& dsm,
                             const core::MobilityAnalytics& analytics,
                             geo::FloorId floor, const std::string& path,
                             const HeatmapOptions& options) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot write '" + path + "'");
  out << RenderRegionHeatmapSvg(dsm, analytics, floor, options);
  if (!out.good()) return Status::IOError("write failed for '" + path + "'");
  return Status::OK();
}

}  // namespace trips::viewer
