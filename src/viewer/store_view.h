// Viewer entry points that render straight from TripStore queries — no
// intermediate analytics plumbing at the call site: point the renderer at a
// store and a floor (heatmap) or a device (timeline) and get the view the
// paper's browsing step shows, but backed by the persistent corpus instead
// of one in-memory batch.
#pragma once

#include <string>

#include "store/trip_store.h"
#include "viewer/heatmap.h"

namespace trips::viewer {

/// Renders the region heatmap of `floor` from the store's corpus (analytics
/// built segment-parallel inside the store).
std::string RenderStoreHeatmapSvg(const dsm::Dsm& dsm, const store::TripStore& store,
                                  geo::FloorId floor,
                                  const HeatmapOptions& options = {});

/// Writes RenderStoreHeatmapSvg output to a file.
Status WriteStoreHeatmapSvg(const dsm::Dsm& dsm, const store::TripStore& store,
                            geo::FloorId floor, const std::string& path,
                            const HeatmapOptions& options = {});

/// Renders the stored history of one device as a text timeline: one row per
/// triplet, with a proportional bar over the device's stored span ('#' for
/// annotated triplets, '~' for inferred ones) next to the triplet text.
/// `width` is the bar width in characters.
std::string RenderDeviceTimelineText(const store::TripStore& store,
                                     const std::string& device, size_t width = 48);

}  // namespace trips::viewer
