#include "viewer/html_export.h"

#include <fstream>

#include "viewer/svg.h"

namespace trips::viewer {

std::string RenderHtml(const dsm::Dsm& dsm, const MapRenderer& renderer,
                       const HtmlExportOptions& options) {
  std::string out = "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n";
  out += "<title>" + XmlEscape(options.title) + "</title>\n";
  out +=
      "<style>body{font-family:sans-serif;margin:1.5em;}h2{margin-top:1.2em;}"
      ".tl{border-left:3px solid #3182bd;padding-left:1em;margin:0.5em 0;}"
      ".tl .inferred{color:#999;font-style:italic;}"
      ".floor{margin-bottom:2em;}</style></head><body>\n";
  out += "<h1>" + XmlEscape(options.title) + "</h1>\n";

  // Timeline listings (semantics as primary navigator).
  for (const Timeline& tl : renderer.timelines()) {
    bool has_labels = false;
    for (const TimelineEntry& e : tl.entries) has_labels |= !e.label.empty();
    if (!has_labels) continue;
    out += "<h2>Timeline: " + XmlEscape(tl.source) + "</h2>\n<div class=\"tl\">\n";
    for (const TimelineEntry& e : tl.entries) {
      if (e.label.empty()) continue;
      out += std::string("<div") + (e.inferred ? " class=\"inferred\"" : "") + ">" +
             XmlEscape(e.label) + "</div>\n";
    }
    out += "</div>\n";
  }

  // Per-floor maps.
  for (const dsm::Floor& f : dsm.floors()) {
    out += "<div class=\"floor\"><h2>Floor " + XmlEscape(f.name) + "</h2>\n";
    out += renderer.RenderFloorSvg(f.id, options.map);
    out += "</div>\n";
  }
  out += "</body></html>\n";
  return out;
}

Status WriteHtml(const dsm::Dsm& dsm, const MapRenderer& renderer,
                 const std::string& path, const HtmlExportOptions& options) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot write '" + path + "'");
  out << RenderHtml(dsm, renderer, options);
  if (!out.good()) return Status::IOError("write failed for '" + path + "'");
  return Status::OK();
}

}  // namespace trips::viewer
