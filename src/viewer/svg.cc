#include "viewer/svg.h"

#include <cstdio>

namespace trips::viewer {

std::string XmlEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      case '\'':
        out += "&apos;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

namespace {
std::string Num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}
}  // namespace

SvgBuilder::SvgBuilder(geo::BoundingBox world, double scale, double margin)
    : world_(world), scale_(scale), margin_(margin) {
  if (world_.Empty()) {
    world_.Extend({0, 0});
    world_.Extend({1, 1});
  }
}

geo::Point2 SvgBuilder::ToPixel(const geo::Point2& world) const {
  double x = margin_ + (world.x - world_.min.x) * scale_;
  double y = margin_ + (world_.max.y - world.y) * scale_;  // flip y
  return {x, y};
}

double SvgBuilder::WidthPx() const { return world_.Width() * scale_ + 2 * margin_; }
double SvgBuilder::HeightPx() const { return world_.Height() * scale_ + 2 * margin_; }

void SvgBuilder::AddPolygon(const geo::Polygon& poly, const std::string& fill,
                            const std::string& stroke, double stroke_width,
                            double fill_opacity) {
  std::string points;
  for (const geo::Point2& v : poly.vertices) {
    geo::Point2 p = ToPixel(v);
    points += Num(p.x) + "," + Num(p.y) + " ";
  }
  elements_.push_back("<polygon points=\"" + points + "\" fill=\"" + fill +
                      "\" fill-opacity=\"" + Num(fill_opacity) + "\" stroke=\"" +
                      stroke + "\" stroke-width=\"" + Num(stroke_width) + "\"/>");
}

void SvgBuilder::AddPolyline(const std::vector<geo::Point2>& points,
                             const std::string& stroke, double stroke_width,
                             double opacity, bool dashed) {
  std::string pts;
  for (const geo::Point2& v : points) {
    geo::Point2 p = ToPixel(v);
    pts += Num(p.x) + "," + Num(p.y) + " ";
  }
  std::string dash = dashed ? " stroke-dasharray=\"6 4\"" : "";
  elements_.push_back("<polyline points=\"" + pts + "\" fill=\"none\" stroke=\"" +
                      stroke + "\" stroke-width=\"" + Num(stroke_width) +
                      "\" stroke-opacity=\"" + Num(opacity) + "\"" + dash + "/>");
}

void SvgBuilder::AddCircle(const geo::Point2& center, double radius_px,
                           const std::string& fill, double opacity) {
  geo::Point2 p = ToPixel(center);
  elements_.push_back("<circle cx=\"" + Num(p.x) + "\" cy=\"" + Num(p.y) + "\" r=\"" +
                      Num(radius_px) + "\" fill=\"" + fill + "\" fill-opacity=\"" +
                      Num(opacity) + "\"/>");
}

void SvgBuilder::AddText(const geo::Point2& anchor, const std::string& text,
                         double size_px, const std::string& fill) {
  geo::Point2 p = ToPixel(anchor);
  elements_.push_back("<text x=\"" + Num(p.x) + "\" y=\"" + Num(p.y) +
                      "\" font-size=\"" + Num(size_px) +
                      "\" font-family=\"sans-serif\" text-anchor=\"middle\" fill=\"" +
                      fill + "\">" + XmlEscape(text) + "</text>");
}

void SvgBuilder::AddRaw(const std::string& fragment) { elements_.push_back(fragment); }

std::string SvgBuilder::Finish() const {
  std::string out = "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" +
                    Num(WidthPx()) + "\" height=\"" + Num(HeightPx()) + "\">\n";
  out += "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
  for (const std::string& e : elements_) {
    out += e;
    out += "\n";
  }
  out += "</svg>\n";
  return out;
}

}  // namespace trips::viewer
