#include "viewer/store_view.h"

#include <algorithm>
#include <fstream>

namespace trips::viewer {

std::string RenderStoreHeatmapSvg(const dsm::Dsm& dsm, const store::TripStore& store,
                                  geo::FloorId floor,
                                  const HeatmapOptions& options) {
  core::MobilityAnalytics analytics = store.BuildAnalytics(&dsm);
  return RenderRegionHeatmapSvg(dsm, analytics, floor, options);
}

Status WriteStoreHeatmapSvg(const dsm::Dsm& dsm, const store::TripStore& store,
                            geo::FloorId floor, const std::string& path,
                            const HeatmapOptions& options) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot write '" + path + "'");
  out << RenderStoreHeatmapSvg(dsm, store, floor, options);
  if (!out.good()) return Status::IOError("write failed for '" + path + "'");
  return Status::OK();
}

std::string RenderDeviceTimelineText(const store::TripStore& store,
                                     const std::string& device, size_t width) {
  core::MobilitySemanticsSequence history = store.DeviceHistory(device);
  if (history.Empty()) return "(no stored semantics for " + device + ")\n";
  width = std::max<size_t>(width, 8);
  TimeRange span = history.Span();
  DurationMs total = std::max<DurationMs>(span.Duration(), 1);

  std::string out = device + ": " + FormatTimestamp(span.begin) + " .. " +
                    FormatTimestamp(span.end) + " (" +
                    std::to_string(history.Size()) + " triplets)\n";
  for (const core::MobilitySemantic& s : history.semantics) {
    size_t from = static_cast<size_t>((s.range.begin - span.begin) *
                                      static_cast<DurationMs>(width) / total);
    size_t to = static_cast<size_t>((s.range.end - span.begin) *
                                    static_cast<DurationMs>(width) / total);
    from = std::min(from, width - 1);
    to = std::min(std::max(to, from + 1), width);
    std::string bar(width, '.');
    for (size_t i = from; i < to; ++i) bar[i] = s.inferred ? '~' : '#';
    out += "[" + bar + "] " + s.ToString() + "\n";
  }
  return out;
}

}  // namespace trips::viewer
