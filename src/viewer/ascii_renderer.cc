#include "viewer/ascii_renderer.h"

#include <algorithm>
#include <vector>

namespace trips::viewer {

std::string RenderFloorAscii(const dsm::Dsm& dsm, geo::FloorId floor,
                             const std::vector<Timeline>& timelines,
                             const AsciiOptions& options) {
  geo::BoundingBox bounds = dsm.FloorBounds(floor);
  if (bounds.Empty() || options.width < 2 || options.height < 2) return "";

  int w = options.width;
  int h = options.height;
  std::vector<std::string> grid(h, std::string(w, ' '));

  auto world_at = [&](int col, int row) {
    double x = bounds.min.x + (col + 0.5) / w * bounds.Width();
    double y = bounds.max.y - (row + 0.5) / h * bounds.Height();
    return geo::Point2{x, y};
  };
  auto cell_of = [&](const geo::Point2& p, int* col, int* row) {
    *col = static_cast<int>((p.x - bounds.min.x) / bounds.Width() * w);
    *row = static_cast<int>((bounds.max.y - p.y) / bounds.Height() * h);
    *col = std::clamp(*col, 0, w - 1);
    *row = std::clamp(*row, 0, h - 1);
  };

  // Rasterize the space: sample each cell's centre.
  for (int row = 0; row < h; ++row) {
    for (int col = 0; col < w; ++col) {
      geo::Point2 p = world_at(col, row);
      geo::IndoorPoint ip{p, floor};
      char c = ' ';
      dsm::EntityId part = dsm.PartitionAt(ip);
      if (part != dsm::kInvalidEntity) {
        const dsm::Entity* e = dsm.GetEntity(part);
        c = dsm::IsVerticalKind(e->kind) ? '=' : '.';
      }
      for (const dsm::Entity& e : dsm.entities()) {
        if (e.floor != floor) continue;
        if (e.kind == dsm::EntityKind::kDoor && e.shape.Contains(p)) c = '+';
        if ((e.kind == dsm::EntityKind::kWall ||
             e.kind == dsm::EntityKind::kObstacle) &&
            e.shape.Contains(p)) {
          c = '#';
        }
      }
      grid[row][col] = c;
    }
  }

  // Overlay timelines.
  for (const Timeline& tl : timelines) {
    char mark = tl.source.empty() ? 'o' : tl.source[0];
    for (const TimelineEntry& e : tl.entries) {
      if (e.display_point.floor != floor) continue;
      int col, row;
      cell_of(e.display_point.xy, &col, &row);
      grid[row][col] = e.label.empty() ? mark : '*';
    }
  }

  std::string out;
  out.reserve(static_cast<size_t>(h) * (w + 1));
  for (const std::string& line : grid) {
    out += line;
    out += '\n';
  }
  return out;
}

std::string RenderTimelineText(const core::MobilitySemanticsSequence& seq) {
  std::string out = "timeline of " + seq.device_id + ":\n";
  for (const core::MobilitySemantic& s : seq.semantics) {
    out += s.inferred ? "  ~ " : "  | ";
    out += FormatClock(s.range.begin) + "-" + FormatClock(s.range.end);
    out += "  " + s.event;
    out += "  @ " + s.region_name + "\n";
  }
  return out;
}

}  // namespace trips::viewer
