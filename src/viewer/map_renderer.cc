#include "viewer/map_renderer.h"

#include <fstream>

#include "viewer/svg.h"

namespace trips::viewer {

namespace {

const char* kDefaultColors[] = {"#e6550d", "#3182bd", "#31a354",
                                "#756bb1", "#d62728", "#8c564b"};

// Fill colors per entity kind.
std::string KindFill(dsm::EntityKind kind) {
  switch (kind) {
    case dsm::EntityKind::kRoom:
      return "#f7f3e9";
    case dsm::EntityKind::kHallway:
      return "#eef3f7";
    case dsm::EntityKind::kDoor:
      return "#c49a6c";
    case dsm::EntityKind::kWall:
      return "#555555";
    case dsm::EntityKind::kStaircase:
      return "#d9e7d0";
    case dsm::EntityKind::kElevator:
      return "#d0d9e7";
    case dsm::EntityKind::kObstacle:
      return "#cccccc";
  }
  return "#ffffff";
}

}  // namespace

void MapRenderer::AddTimeline(Timeline timeline) {
  timelines_.push_back(std::move(timeline));
}

bool MapRenderer::IsVisible(const MapViewOptions& options,
                            const std::string& source) const {
  auto it = options.visible.find(source);
  return it == options.visible.end() || it->second;
}

std::string MapRenderer::ColorFor(const MapViewOptions& options,
                                  const std::string& source, size_t index) const {
  auto it = options.colors.find(source);
  if (it != options.colors.end()) return it->second;
  return kDefaultColors[index % (sizeof(kDefaultColors) / sizeof(kDefaultColors[0]))];
}

std::string MapRenderer::RenderFloorSvg(geo::FloorId floor,
                                        const MapViewOptions& options) const {
  geo::BoundingBox bounds = dsm_->FloorBounds(floor);
  SvgBuilder svg(bounds, options.scale);

  // Floor outline.
  if (const dsm::Floor* f = dsm_->GetFloor(floor)) {
    if (f->outline.vertices.size() >= 3) {
      svg.AddPolygon(f->outline, "#fcfcfc", "#999", 1.5);
    }
  }
  // Entities (walkable first so doors/walls draw on top).
  for (const dsm::Entity& e : dsm_->entities()) {
    if (e.floor != floor || !dsm::IsWalkableKind(e.kind)) continue;
    svg.AddPolygon(e.shape, KindFill(e.kind), "#aaa", 0.8, 0.9);
  }
  for (const dsm::Entity& e : dsm_->entities()) {
    if (e.floor != floor || dsm::IsWalkableKind(e.kind)) continue;
    svg.AddPolygon(e.shape, KindFill(e.kind), "#888", 0.5, 1.0);
  }
  // Region outlines + labels.
  for (const dsm::SemanticRegion& r : dsm_->regions()) {
    if (r.floor != floor) continue;
    svg.AddPolygon(r.shape, "none", "#4a90d9", 1.0, 0.0);
    if (options.label_regions) {
      svg.AddText(r.Center(), r.name, 10, "#3a6ea5");
    }
  }

  // Timelines: polyline through visible same-floor display points plus dots;
  // semantics entries get labels.
  bool windowed = options.window.Valid();
  size_t index = 0;
  for (const Timeline& tl : timelines_) {
    if (!IsVisible(options, tl.source)) {
      ++index;
      continue;
    }
    std::string color = ColorFor(options, tl.source, index);
    std::vector<geo::Point2> chain;
    for (const TimelineEntry& e : tl.entries) {
      if (e.display_point.floor != floor) continue;
      if (windowed && !e.range.Overlaps(options.window)) continue;
      chain.push_back(e.display_point.xy);
    }
    if (chain.size() > 1) {
      svg.AddPolyline(chain, color, 1.2, 0.55);
    }
    for (const TimelineEntry& e : tl.entries) {
      if (e.display_point.floor != floor) continue;
      if (windowed && !e.range.Overlaps(options.window)) continue;
      bool is_semantic = !e.label.empty();
      svg.AddCircle(e.display_point.xy, is_semantic ? 5.0 : 2.0, color,
                    e.inferred ? 0.45 : 0.9);
      if (is_semantic) {
        svg.AddText(e.display_point.xy + geo::Point2{0, 1.2}, e.label, 9, color);
      }
    }
    ++index;
  }

  // Legend.
  double ly = bounds.max.y - 1;
  index = 0;
  for (const Timeline& tl : timelines_) {
    std::string color = ColorFor(options, tl.source, index);
    std::string state = IsVisible(options, tl.source) ? "" : " (hidden)";
    svg.AddText({bounds.min.x + 8, ly}, tl.source + state, 10, color);
    ly -= 2.2;
    ++index;
  }

  return svg.Finish();
}

Status MapRenderer::WriteFloorSvg(geo::FloorId floor, const std::string& path,
                                  const MapViewOptions& options) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot write '" + path + "'");
  out << RenderFloorSvg(floor, options);
  if (!out.good()) return Status::IOError("write failed for '" + path + "'");
  return Status::OK();
}

}  // namespace trips::viewer
