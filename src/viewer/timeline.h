// Timeline abstraction of mobility data sequences (§3, "Abstraction of
// Different Mobility Data"): every sequence — raw or cleaned positioning,
// ground truth, mobility semantics — becomes "a timeline of entries, each
// consists of a display point and a time range", so the Viewer can render
// all of them generically. For a semantics entry, the display point is
// "selected from the positioning location(s) in the mobility semantics's
// corresponding raw record(s)" — the temporally middle or spatially central
// one according to configuration.
#pragma once

#include <string>
#include <vector>

#include "core/semantics.h"
#include "positioning/record.h"

namespace trips::viewer {

/// One renderable entry.
struct TimelineEntry {
  geo::IndoorPoint display_point;
  TimeRange range;
  /// Optional label (the semantics triplet text; empty for raw records).
  std::string label;
  /// True when the entry came from an inferred (complemented) triplet.
  bool inferred = false;
};

/// Display-point selection policy for semantics entries.
enum class DisplayPointPolicy {
  kTemporalMiddle,  ///< the record closest to the middle of the time range
  kSpatialCenter,   ///< the record closest to the centroid of covered records
};

/// A named, colored sequence of timeline entries.
struct Timeline {
  /// Source name shown in the legend ("raw", "cleaned", "semantics", "truth").
  std::string source;
  std::vector<TimelineEntry> entries;

  bool Empty() const { return entries.empty(); }

  /// Overall covered span.
  TimeRange Span() const;

  /// Entries whose range overlaps `range` — the synchronous map-view lookup
  /// driven by clicking a semantics entry on the timeline.
  std::vector<const TimelineEntry*> EntriesIn(const TimeRange& range) const;

  /// Abstracts a positioning sequence: one entry per record, instantaneous
  /// time range.
  static Timeline FromPositioning(const positioning::PositioningSequence& seq,
                                  std::string source);

  /// Abstracts a mobility semantics sequence. `backing` supplies the
  /// positioning locations the display points are selected from (pass the
  /// cleaned or raw sequence); when a triplet covers no backing record, the
  /// region centroid would be unknown here, so the entry falls back to the
  /// midpoint-in-time record of the whole backing sequence or (0,0) when
  /// backing is empty.
  static Timeline FromSemantics(const core::MobilitySemanticsSequence& seq,
                                const positioning::PositioningSequence& backing,
                                DisplayPointPolicy policy, std::string source);
};

}  // namespace trips::viewer
