// 2-D point/vector primitives. Indoor locations are 2-D points plus a floor
// number (see IndoorPoint); all planar math lives on Point2.
#pragma once

#include <cmath>
#include <cstdint>
#include <string>

namespace trips::geo {

/// A point (or vector) in the floorplan plane, in metres.
struct Point2 {
  double x = 0;
  double y = 0;

  Point2() = default;
  Point2(double px, double py) : x(px), y(py) {}

  Point2 operator+(const Point2& o) const { return {x + o.x, y + o.y}; }
  Point2 operator-(const Point2& o) const { return {x - o.x, y - o.y}; }
  Point2 operator*(double s) const { return {x * s, y * s}; }
  Point2 operator/(double s) const { return {x / s, y / s}; }
  bool operator==(const Point2& o) const { return x == o.x && y == o.y; }

  /// Dot product.
  double Dot(const Point2& o) const { return x * o.x + y * o.y; }
  /// Z-component of the 3-D cross product (signed parallelogram area).
  double Cross(const Point2& o) const { return x * o.y - y * o.x; }
  /// Euclidean norm.
  double Norm() const { return std::sqrt(x * x + y * y); }
  /// Squared Euclidean norm.
  double NormSq() const { return x * x + y * y; }
  /// Euclidean distance to another point.
  double DistanceTo(const Point2& o) const { return (*this - o).Norm(); }
  /// Unit vector in this direction (returns {0,0} for the zero vector).
  Point2 Normalized() const {
    double n = Norm();
    return n > 0 ? Point2{x / n, y / n} : Point2{};
  }

  std::string ToString() const;
};

/// Floor index within a building (0 = ground floor).
using FloorId = int32_t;

/// An indoor location: planar point + floor. This is the geometry of one raw
/// positioning record's location, e.g. "(5.1, 12.7, 3F)" in the paper.
struct IndoorPoint {
  Point2 xy;
  FloorId floor = 0;

  IndoorPoint() = default;
  IndoorPoint(double x, double y, FloorId f) : xy(x, y), floor(f) {}
  IndoorPoint(Point2 p, FloorId f) : xy(p), floor(f) {}

  bool operator==(const IndoorPoint& o) const = default;

  /// Planar distance, ignoring the floor difference.
  double PlanarDistanceTo(const IndoorPoint& o) const { return xy.DistanceTo(o.xy); }

  std::string ToString() const;
};

/// Axis-aligned bounding box.
struct BoundingBox {
  Point2 min{1e300, 1e300};
  Point2 max{-1e300, -1e300};

  /// True iff no point has been added.
  bool Empty() const { return min.x > max.x; }
  /// Grows the box to cover `p`.
  void Extend(const Point2& p) {
    if (p.x < min.x) min.x = p.x;
    if (p.y < min.y) min.y = p.y;
    if (p.x > max.x) max.x = p.x;
    if (p.y > max.y) max.y = p.y;
  }
  /// Grows the box to cover another box.
  void Extend(const BoundingBox& b) {
    if (b.Empty()) return;
    Extend(b.min);
    Extend(b.max);
  }
  /// True iff `p` lies within the closed box.
  bool Contains(const Point2& p) const {
    return p.x >= min.x && p.x <= max.x && p.y >= min.y && p.y <= max.y;
  }
  /// True iff the two closed boxes intersect.
  bool Intersects(const BoundingBox& b) const {
    return !(b.min.x > max.x || b.max.x < min.x || b.min.y > max.y || b.max.y < min.y);
  }
  double Width() const { return Empty() ? 0 : max.x - min.x; }
  double Height() const { return Empty() ? 0 : max.y - min.y; }
  Point2 Center() const { return (min + max) / 2; }
};

}  // namespace trips::geo
