// Planar shapes used to trace floorplans: segments, polylines, polygons and
// circles — the drawing elements of the Space Modeler (§3, Fig. 2).
#pragma once

#include <vector>

#include "geometry/point.h"

namespace trips::geo {

/// A line segment between two points.
struct Segment {
  Point2 a;
  Point2 b;

  Segment() = default;
  Segment(Point2 pa, Point2 pb) : a(pa), b(pb) {}

  /// Length of the segment.
  double Length() const { return a.DistanceTo(b); }
  /// Point at parameter t in [0,1] along the segment.
  Point2 At(double t) const { return a + (b - a) * t; }
  /// Smallest distance from `p` to any point of the segment.
  double DistanceTo(const Point2& p) const;
  /// Closest point of the segment to `p`.
  Point2 ClosestPoint(const Point2& p) const;
  /// True iff this segment properly or improperly intersects `other`.
  bool Intersects(const Segment& other) const;
  /// Midpoint of the segment.
  Point2 Midpoint() const { return (a + b) / 2; }
};

/// An open chain of points (walls are traced as polylines).
struct Polyline {
  std::vector<Point2> points;

  /// Total length of the chain.
  double Length() const;
  /// Smallest distance from `p` to the chain.
  double DistanceTo(const Point2& p) const;
  /// Bounding box of all vertices.
  BoundingBox Bounds() const;
  /// Point at arclength fraction t in [0,1] along the chain.
  Point2 At(double t) const;
};

/// A simple polygon (room/region outline). Vertices may wind either way;
/// Area() is signed, AbsArea() is not.
struct Polygon {
  std::vector<Point2> vertices;

  Polygon() = default;
  explicit Polygon(std::vector<Point2> v) : vertices(std::move(v)) {}

  /// Convenience: axis-aligned rectangle polygon.
  static Polygon Rectangle(double x0, double y0, double x1, double y1);

  /// Signed area (positive for counter-clockwise winding).
  double Area() const;
  /// Absolute enclosed area.
  double AbsArea() const { return std::fabs(Area()); }
  /// Perimeter length.
  double Perimeter() const;
  /// Centroid of the enclosed region (vertex average for degenerate polygons).
  Point2 Centroid() const;
  /// True iff `p` is inside or on the boundary (even-odd rule with an
  /// epsilon-snapped boundary test).
  bool Contains(const Point2& p) const;
  /// Smallest distance from `p` to the polygon boundary.
  double BoundaryDistanceTo(const Point2& p) const;
  /// Bounding box of all vertices.
  BoundingBox Bounds() const;
  /// Boundary edges as segments (closing edge included).
  std::vector<Segment> Edges() const;
  /// True iff the straight segment a->b crosses the polygon boundary.
  bool BoundaryIntersects(const Segment& s) const;
};

/// A circle (pillars, circular kiosks).
struct Circle {
  Point2 center;
  double radius = 0;

  Circle() = default;
  Circle(Point2 c, double r) : center(c), radius(r) {}

  /// True iff `p` lies inside or on the circle.
  bool Contains(const Point2& p) const { return center.DistanceTo(p) <= radius; }
  double Area() const { return 3.14159265358979323846 * radius * radius; }
  /// Approximates the circle as a regular n-gon (for DSM storage & rendering).
  Polygon ToPolygon(int segments = 24) const;
};

/// Returns the orientation sign of the triangle (a,b,c): >0 counter-clockwise,
/// <0 clockwise, 0 collinear (with epsilon tolerance).
int Orientation(const Point2& a, const Point2& b, const Point2& c);

}  // namespace trips::geo
