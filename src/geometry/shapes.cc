#include "geometry/shapes.h"

#include <algorithm>
#include <cstdio>

namespace trips::geo {

namespace {
constexpr double kEps = 1e-9;
}

std::string Point2::ToString() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "(%.3f, %.3f)", x, y);
  return buf;
}

std::string IndoorPoint::ToString() const {
  char buf[80];
  std::snprintf(buf, sizeof(buf), "(%.3f, %.3f, F%d)", xy.x, xy.y, floor);
  return buf;
}

double Segment::DistanceTo(const Point2& p) const {
  return ClosestPoint(p).DistanceTo(p);
}

Point2 Segment::ClosestPoint(const Point2& p) const {
  Point2 d = b - a;
  double len2 = d.NormSq();
  if (len2 < kEps) return a;
  double t = (p - a).Dot(d) / len2;
  t = std::clamp(t, 0.0, 1.0);
  return At(t);
}

int Orientation(const Point2& a, const Point2& b, const Point2& c) {
  double cross = (b - a).Cross(c - a);
  if (cross > kEps) return 1;
  if (cross < -kEps) return -1;
  return 0;
}

namespace {

bool OnSegment(const Point2& a, const Point2& b, const Point2& p) {
  return p.x >= std::min(a.x, b.x) - kEps && p.x <= std::max(a.x, b.x) + kEps &&
         p.y >= std::min(a.y, b.y) - kEps && p.y <= std::max(a.y, b.y) + kEps;
}

}  // namespace

bool Segment::Intersects(const Segment& other) const {
  int o1 = Orientation(a, b, other.a);
  int o2 = Orientation(a, b, other.b);
  int o3 = Orientation(other.a, other.b, a);
  int o4 = Orientation(other.a, other.b, b);
  if (o1 != o2 && o3 != o4) return true;
  if (o1 == 0 && OnSegment(a, b, other.a)) return true;
  if (o2 == 0 && OnSegment(a, b, other.b)) return true;
  if (o3 == 0 && OnSegment(other.a, other.b, a)) return true;
  if (o4 == 0 && OnSegment(other.a, other.b, b)) return true;
  return false;
}

double Polyline::Length() const {
  double total = 0;
  for (size_t i = 1; i < points.size(); ++i) {
    total += points[i - 1].DistanceTo(points[i]);
  }
  return total;
}

double Polyline::DistanceTo(const Point2& p) const {
  if (points.empty()) return 1e300;
  if (points.size() == 1) return points[0].DistanceTo(p);
  double best = 1e300;
  for (size_t i = 1; i < points.size(); ++i) {
    best = std::min(best, Segment(points[i - 1], points[i]).DistanceTo(p));
  }
  return best;
}

BoundingBox Polyline::Bounds() const {
  BoundingBox box;
  for (const Point2& p : points) box.Extend(p);
  return box;
}

Point2 Polyline::At(double t) const {
  if (points.empty()) return {};
  if (points.size() == 1 || t <= 0) return points.front();
  if (t >= 1) return points.back();
  double target = Length() * t;
  double acc = 0;
  for (size_t i = 1; i < points.size(); ++i) {
    double seg = points[i - 1].DistanceTo(points[i]);
    if (acc + seg >= target && seg > 0) {
      double local = (target - acc) / seg;
      return Segment(points[i - 1], points[i]).At(local);
    }
    acc += seg;
  }
  return points.back();
}

Polygon Polygon::Rectangle(double x0, double y0, double x1, double y1) {
  if (x0 > x1) std::swap(x0, x1);
  if (y0 > y1) std::swap(y0, y1);
  return Polygon({{x0, y0}, {x1, y0}, {x1, y1}, {x0, y1}});
}

double Polygon::Area() const {
  if (vertices.size() < 3) return 0;
  double sum = 0;
  for (size_t i = 0; i < vertices.size(); ++i) {
    const Point2& p = vertices[i];
    const Point2& q = vertices[(i + 1) % vertices.size()];
    sum += p.Cross(q);
  }
  return sum / 2;
}

double Polygon::Perimeter() const {
  if (vertices.size() < 2) return 0;
  double total = 0;
  for (size_t i = 0; i < vertices.size(); ++i) {
    total += vertices[i].DistanceTo(vertices[(i + 1) % vertices.size()]);
  }
  return total;
}

Point2 Polygon::Centroid() const {
  if (vertices.empty()) return {};
  double area = Area();
  if (std::fabs(area) < kEps) {
    Point2 sum;
    for (const Point2& v : vertices) sum = sum + v;
    return sum / static_cast<double>(vertices.size());
  }
  double cx = 0, cy = 0;
  for (size_t i = 0; i < vertices.size(); ++i) {
    const Point2& p = vertices[i];
    const Point2& q = vertices[(i + 1) % vertices.size()];
    double cross = p.Cross(q);
    cx += (p.x + q.x) * cross;
    cy += (p.y + q.y) * cross;
  }
  return {cx / (6 * area), cy / (6 * area)};
}

bool Polygon::Contains(const Point2& p) const {
  if (vertices.size() < 3) return false;
  // Boundary counts as inside.
  if (BoundaryDistanceTo(p) < 1e-7) return true;
  // Even-odd ray cast to +x.
  bool inside = false;
  size_t n = vertices.size();
  for (size_t i = 0, j = n - 1; i < n; j = i++) {
    const Point2& vi = vertices[i];
    const Point2& vj = vertices[j];
    bool crosses = ((vi.y > p.y) != (vj.y > p.y));
    if (crosses) {
      double x_at = vj.x + (p.y - vj.y) / (vi.y - vj.y) * (vi.x - vj.x);
      if (p.x < x_at) inside = !inside;
    }
  }
  return inside;
}

double Polygon::BoundaryDistanceTo(const Point2& p) const {
  double best = 1e300;
  for (const Segment& e : Edges()) {
    best = std::min(best, e.DistanceTo(p));
  }
  return best;
}

BoundingBox Polygon::Bounds() const {
  BoundingBox box;
  for (const Point2& v : vertices) box.Extend(v);
  return box;
}

std::vector<Segment> Polygon::Edges() const {
  std::vector<Segment> edges;
  size_t n = vertices.size();
  if (n < 2) return edges;
  edges.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    edges.emplace_back(vertices[i], vertices[(i + 1) % n]);
  }
  return edges;
}

bool Polygon::BoundaryIntersects(const Segment& s) const {
  for (const Segment& e : Edges()) {
    if (e.Intersects(s)) return true;
  }
  return false;
}

Polygon Circle::ToPolygon(int segments) const {
  Polygon poly;
  if (segments < 3) segments = 3;
  poly.vertices.reserve(segments);
  for (int i = 0; i < segments; ++i) {
    double theta = 2 * 3.14159265358979323846 * i / segments;
    poly.vertices.push_back(
        {center.x + radius * std::cos(theta), center.y + radius * std::sin(theta)});
  }
  return poly;
}

}  // namespace trips::geo
