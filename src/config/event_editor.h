// Event Editor — third Configurator module (§2): "helps users work out the
// training data for the model that identifies the mobility events in the
// translation. It allows users to define mobility event patterns, and
// designate each defined pattern the corresponding positioning sequence
// segments on the map view."
#pragma once

#include <map>
#include <string>
#include <vector>

#include "positioning/record.h"
#include "util/result.h"

namespace trips::config {

/// A user-defined mobility event pattern.
struct EventPattern {
  std::string name;         ///< e.g. "stay", "pass-by", "queue".
  std::string description;  ///< free text for the analyst.
};

/// One designated training example: a positioning-sequence segment labeled
/// with the event pattern it exemplifies.
struct LabeledSegment {
  std::string event;
  positioning::PositioningSequence segment;
};

/// Collects event-pattern definitions and their designated training segments.
class EventEditor {
 public:
  /// Defines a new pattern; duplicate names fail.
  Status DefinePattern(const std::string& name, const std::string& description = "");

  /// Removes a pattern and all of its designated segments.
  Status RemovePattern(const std::string& name);

  /// Designates a segment as a training example of `pattern` (the map-view
  /// selection in the paper's Fig. 5(3)). The pattern must exist and the
  /// segment must contain at least two records.
  Status DesignateSegment(const std::string& pattern,
                          positioning::PositioningSequence segment);

  /// Convenience: designates the sub-segment of `seq` within `range`.
  Status DesignateRange(const std::string& pattern,
                        const positioning::PositioningSequence& seq, TimeRange range);

  /// Defined patterns, in definition order.
  const std::vector<EventPattern>& patterns() const { return patterns_; }
  /// True iff the pattern is defined.
  bool HasPattern(const std::string& name) const;

  /// All designated training segments (the Translator's training corpus).
  const std::vector<LabeledSegment>& training_data() const { return training_; }

  /// Number of designated segments per pattern.
  std::map<std::string, size_t> SegmentCounts() const;

  /// Monotonic counter bumped by every successful mutation (pattern defined
  /// or removed, segment designated). Lets consumers that train from the
  /// editor (e.g. core::Pipeline rebuilding its engine) detect whether the
  /// corpus changed since they last read it.
  size_t revision() const { return revision_; }

 private:
  std::vector<EventPattern> patterns_;
  std::vector<LabeledSegment> training_;
  size_t revision_ = 0;
};

}  // namespace trips::config
