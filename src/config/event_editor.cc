#include "config/event_editor.h"

#include <algorithm>

namespace trips::config {

Status EventEditor::DefinePattern(const std::string& name,
                                  const std::string& description) {
  if (name.empty()) return Status::InvalidArgument("pattern name must be non-empty");
  if (HasPattern(name)) return Status::AlreadyExists("pattern '" + name + "'");
  patterns_.push_back({name, description});
  ++revision_;
  return Status::OK();
}

Status EventEditor::RemovePattern(const std::string& name) {
  auto it = std::find_if(patterns_.begin(), patterns_.end(),
                         [&](const EventPattern& p) { return p.name == name; });
  if (it == patterns_.end()) return Status::NotFound("pattern '" + name + "'");
  patterns_.erase(it);
  training_.erase(std::remove_if(training_.begin(), training_.end(),
                                 [&](const LabeledSegment& s) {
                                   return s.event == name;
                                 }),
                  training_.end());
  ++revision_;
  return Status::OK();
}

Status EventEditor::DesignateSegment(const std::string& pattern,
                                     positioning::PositioningSequence segment) {
  if (!HasPattern(pattern)) return Status::NotFound("pattern '" + pattern + "'");
  if (segment.records.size() < 2) {
    return Status::InvalidArgument("training segment needs >= 2 records");
  }
  segment.SortByTime();
  training_.push_back({pattern, std::move(segment)});
  ++revision_;
  return Status::OK();
}

Status EventEditor::DesignateRange(const std::string& pattern,
                                   const positioning::PositioningSequence& seq,
                                   TimeRange range) {
  positioning::PositioningSequence segment;
  segment.device_id = seq.device_id;
  segment.records = seq.RecordsIn(range);
  return DesignateSegment(pattern, std::move(segment));
}

bool EventEditor::HasPattern(const std::string& name) const {
  return std::any_of(patterns_.begin(), patterns_.end(),
                     [&](const EventPattern& p) { return p.name == name; });
}

std::map<std::string, size_t> EventEditor::SegmentCounts() const {
  std::map<std::string, size_t> counts;
  for (const EventPattern& p : patterns_) counts[p.name] = 0;
  for (const LabeledSegment& s : training_) ++counts[s.event];
  return counts;
}

}  // namespace trips::config
