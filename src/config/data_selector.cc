#include "config/data_selector.h"

#include <map>

#include "positioning/csv_io.h"
#include "util/string_util.h"

namespace trips::config {

namespace {

class DeviceIdRule : public SelectionRule {
 public:
  explicit DeviceIdRule(std::string glob) : glob_(std::move(glob)) {}
  bool Matches(const positioning::PositioningSequence& seq) const override {
    return GlobMatch(glob_, seq.device_id);
  }
  std::string Describe() const override { return "device_id ~ '" + glob_ + "'"; }

 private:
  std::string glob_;
};

class SpatialRangeRule : public SelectionRule {
 public:
  SpatialRangeRule(geo::BoundingBox box, geo::FloorId floor, double min_fraction)
      : box_(box), floor_(floor), min_fraction_(min_fraction) {}
  bool Matches(const positioning::PositioningSequence& seq) const override {
    if (seq.records.empty()) return min_fraction_ <= 0;
    size_t inside = 0;
    for (const positioning::RawRecord& r : seq.records) {
      if ((floor_ < 0 || r.location.floor == floor_) && box_.Contains(r.location.xy)) {
        ++inside;
      }
    }
    return static_cast<double>(inside) / static_cast<double>(seq.records.size()) >=
           min_fraction_;
  }
  std::string Describe() const override {
    return "spatial_range(floor=" + std::to_string(floor_) +
           ", frac>=" + FormatDouble(min_fraction_, 3) + ")";
  }

 private:
  geo::BoundingBox box_;
  geo::FloorId floor_;
  double min_fraction_;
};

class TemporalRangeRule : public SelectionRule {
 public:
  TemporalRangeRule(TimeRange range, bool within) : range_(range), within_(within) {}
  bool Matches(const positioning::PositioningSequence& seq) const override {
    if (seq.records.empty()) return false;
    TimeRange span = seq.Span();
    return within_ ? (span.begin >= range_.begin && span.end <= range_.end)
                   : span.Overlaps(range_);
  }
  std::string Describe() const override {
    return std::string(within_ ? "within" : "overlaps") + " [" +
           FormatTimestamp(range_.begin) + ", " + FormatTimestamp(range_.end) + "]";
  }

 private:
  TimeRange range_;
  bool within_;
};

class FrequencyRule : public SelectionRule {
 public:
  FrequencyRule(double min_hz, double max_hz) : min_hz_(min_hz), max_hz_(max_hz) {}
  bool Matches(const positioning::PositioningSequence& seq) const override {
    double hz = seq.FrequencyHz();
    return hz >= min_hz_ && hz <= max_hz_;
  }
  std::string Describe() const override {
    return "frequency in [" + FormatDouble(min_hz_) + ", " + FormatDouble(max_hz_) +
           "] Hz";
  }

 private:
  double min_hz_, max_hz_;
};

class MinDurationRule : public SelectionRule {
 public:
  explicit MinDurationRule(DurationMs min_duration) : min_(min_duration) {}
  bool Matches(const positioning::PositioningSequence& seq) const override {
    return seq.Span().Duration() >= min_;
  }
  std::string Describe() const override {
    return "duration >= " + std::to_string(min_ / kMillisPerSecond) + "s";
  }

 private:
  DurationMs min_;
};

class MinRecordsRule : public SelectionRule {
 public:
  explicit MinRecordsRule(size_t n) : n_(n) {}
  bool Matches(const positioning::PositioningSequence& seq) const override {
    return seq.records.size() >= n_;
  }
  std::string Describe() const override {
    return "records >= " + std::to_string(n_);
  }

 private:
  size_t n_;
};

class PeriodicPatternRule : public SelectionRule {
 public:
  PeriodicPatternRule(DurationMs begin, DurationMs end, double min_fraction)
      : begin_(begin), end_(end), min_fraction_(min_fraction) {}
  bool Matches(const positioning::PositioningSequence& seq) const override {
    if (seq.records.empty()) return false;
    size_t inside = 0;
    for (const positioning::RawRecord& r : seq.records) {
      DurationMs tod = MillisOfDay(r.timestamp);
      bool in = begin_ <= end_ ? (tod >= begin_ && tod < end_)
                               : (tod >= begin_ || tod < end_);  // wraps midnight
      if (in) ++inside;
    }
    return static_cast<double>(inside) / static_cast<double>(seq.records.size()) >=
           min_fraction_;
  }
  std::string Describe() const override {
    return "daily window [" + std::to_string(begin_ / kMillisPerHour) + "h, " +
           std::to_string(end_ / kMillisPerHour) + "h) frac>=" +
           FormatDouble(min_fraction_, 2);
  }

 private:
  DurationMs begin_, end_;
  double min_fraction_;
};

class AndRule : public SelectionRule {
 public:
  explicit AndRule(std::vector<RulePtr> rules) : rules_(std::move(rules)) {}
  bool Matches(const positioning::PositioningSequence& seq) const override {
    for (const RulePtr& r : rules_) {
      if (r && !r->Matches(seq)) return false;
    }
    return true;
  }
  std::string Describe() const override { return Combine("AND"); }

 protected:
  std::string Combine(const std::string& op) const {
    std::string out = "(";
    for (size_t i = 0; i < rules_.size(); ++i) {
      if (i > 0) out += " " + op + " ";
      out += rules_[i] ? rules_[i]->Describe() : "true";
    }
    return out + ")";
  }
  std::vector<RulePtr> rules_;
};

class OrRule : public AndRule {
 public:
  explicit OrRule(std::vector<RulePtr> rules) : AndRule(std::move(rules)) {}
  bool Matches(const positioning::PositioningSequence& seq) const override {
    if (rules_.empty()) return true;
    for (const RulePtr& r : rules_) {
      if (r && r->Matches(seq)) return true;
    }
    return false;
  }
  std::string Describe() const override { return Combine("OR"); }
};

class NotRule : public SelectionRule {
 public:
  explicit NotRule(RulePtr rule) : rule_(std::move(rule)) {}
  bool Matches(const positioning::PositioningSequence& seq) const override {
    return rule_ == nullptr || !rule_->Matches(seq);
  }
  std::string Describe() const override {
    return "NOT " + (rule_ ? rule_->Describe() : "true");
  }

 private:
  RulePtr rule_;
};

class InMemorySource : public SequenceSource {
 public:
  explicit InMemorySource(std::vector<positioning::PositioningSequence> seqs)
      : seqs_(std::move(seqs)) {}
  Result<std::vector<positioning::PositioningSequence>> Load() const override {
    return seqs_;
  }
  std::string Describe() const override {
    return "in-memory (" + std::to_string(seqs_.size()) + " sequences)";
  }

 private:
  std::vector<positioning::PositioningSequence> seqs_;
};

class CsvFileSource : public SequenceSource {
 public:
  explicit CsvFileSource(std::string path) : path_(std::move(path)) {}
  Result<std::vector<positioning::PositioningSequence>> Load() const override {
    return positioning::ReadCsvFile(path_);
  }
  std::string Describe() const override { return "csv:" + path_; }

 private:
  std::string path_;
};

}  // namespace

RulePtr DeviceIdPattern(std::string glob) {
  return std::make_shared<DeviceIdRule>(std::move(glob));
}
RulePtr SpatialRange(geo::BoundingBox box, geo::FloorId floor, double min_fraction) {
  return std::make_shared<SpatialRangeRule>(box, floor, min_fraction);
}
RulePtr TemporalRange(TimeRange range, bool require_within) {
  return std::make_shared<TemporalRangeRule>(range, require_within);
}
RulePtr FrequencyRange(double min_hz, double max_hz) {
  return std::make_shared<FrequencyRule>(min_hz, max_hz);
}
RulePtr MinDuration(DurationMs min_duration) {
  return std::make_shared<MinDurationRule>(min_duration);
}
RulePtr MinRecords(size_t min_records) {
  return std::make_shared<MinRecordsRule>(min_records);
}
RulePtr PeriodicPattern(DurationMs begin_of_day, DurationMs end_of_day,
                        double min_fraction) {
  return std::make_shared<PeriodicPatternRule>(begin_of_day, end_of_day, min_fraction);
}
RulePtr And(std::vector<RulePtr> rules) {
  return std::make_shared<AndRule>(std::move(rules));
}
RulePtr Or(std::vector<RulePtr> rules) {
  return std::make_shared<OrRule>(std::move(rules));
}
RulePtr Not(RulePtr rule) { return std::make_shared<NotRule>(std::move(rule)); }

void DataSelector::AddSequences(
    std::vector<positioning::PositioningSequence> sequences) {
  sources_.push_back(std::make_shared<InMemorySource>(std::move(sequences)));
}

void DataSelector::AddCsvFile(std::string path) {
  sources_.push_back(std::make_shared<CsvFileSource>(std::move(path)));
}

void DataSelector::AddSource(std::shared_ptr<const SequenceSource> source) {
  sources_.push_back(std::move(source));
}

Result<std::vector<positioning::PositioningSequence>> DataSelector::Select() const {
  // Merge sources per device id, in device first-appearance order.
  std::map<std::string, size_t> index;
  std::vector<positioning::PositioningSequence> merged;
  for (const auto& source : sources_) {
    TRIPS_ASSIGN_OR_RETURN(std::vector<positioning::PositioningSequence> loaded,
                           source->Load());
    for (positioning::PositioningSequence& seq : loaded) {
      auto [it, inserted] = index.try_emplace(seq.device_id, merged.size());
      if (inserted) {
        merged.push_back(std::move(seq));
      } else {
        auto& dst = merged[it->second].records;
        dst.insert(dst.end(), seq.records.begin(), seq.records.end());
      }
    }
  }
  std::vector<positioning::PositioningSequence> selected;
  for (positioning::PositioningSequence& seq : merged) {
    seq.SortByTime();
    if (rule_ == nullptr || rule_->Matches(seq)) {
      selected.push_back(std::move(seq));
    }
  }
  return selected;
}

}  // namespace trips::config
