// Space Modeler — second Configurator module (§2, §3 "Creating DSM from
// Floorplan Image"). The paper's mouse-driven canvas becomes a programmatic
// drawing API with the same three-step flow and features: (1) import the
// floorplan; (2) trace it by drawing/combining geometric elements (polygons,
// polylines, circles) with undo/redo, auto-adjust hints, transformation
// edit-mode and layer control; (3) load and attach semantic tags, then build
// the DSM (geometry + topology + regions) from the drawn shapes.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "dsm/dsm.h"
#include "util/result.h"

namespace trips::config {

/// Identifier of a drawn shape on the Space Modeler canvas.
using ShapeId = int32_t;

/// One shape traced on the canvas.
struct DrawnShape {
  ShapeId id = -1;
  dsm::EntityKind kind = dsm::EntityKind::kRoom;
  std::string name;
  geo::FloorId floor = 0;
  geo::Polygon shape;
  std::string semantic_tag;
  /// Drawing layer (layer/group control); higher layers render on top.
  int layer = 0;
  /// Display style key (maps to a color in the Viewer legend).
  std::string style;
  /// When true, BuildDsm also creates a semantic region from this shape.
  bool make_region = false;
  std::string region_category;
};

/// Options controlling drawing assistance.
struct SpaceModelerOptions {
  /// Auto-adjust hint: snap new vertices to existing vertices closer than
  /// this distance (metres); 0 disables snapping.
  double snap_distance = 0.5;
  /// Half-thickness used when closing a traced polyline (wall) into a thin
  /// polygon.
  double wall_half_thickness = 0.15;
  /// Circle tessellation for ToPolygon.
  int circle_segments = 24;
};

/// The drawing tool. All mutating operations are undoable.
class SpaceModeler {
 public:
  explicit SpaceModeler(SpaceModelerOptions options = {});

  // ---- step (1): import the floorplan ----

  /// Registers a floor canvas of the given size (the floorplan image extent).
  /// Floors can be imported in any order; duplicate ids fail.
  Status ImportFloorplan(geo::FloorId floor, const std::string& name, double width,
                         double height);

  // ---- step (2): trace the floorplan ----

  /// Draws a polygon entity; vertices are snapped per the auto-adjust hint.
  Result<ShapeId> DrawPolygon(dsm::EntityKind kind, const std::string& name,
                              geo::FloorId floor, std::vector<geo::Point2> vertices);
  /// Draws an axis-aligned rectangle entity.
  Result<ShapeId> DrawRectangle(dsm::EntityKind kind, const std::string& name,
                                geo::FloorId floor, double x0, double y0, double x1,
                                double y1);
  /// Draws a circle entity (tessellated into a polygon).
  Result<ShapeId> DrawCircle(dsm::EntityKind kind, const std::string& name,
                             geo::FloorId floor, geo::Point2 center, double radius);
  /// Traces a polyline (typically a wall) and closes it into a thin polygon.
  Result<ShapeId> DrawPolyline(dsm::EntityKind kind, const std::string& name,
                               geo::FloorId floor, std::vector<geo::Point2> points);

  // Edit-mode: free transformation / resizing / moving.

  /// Translates a shape by (dx, dy).
  Status MoveShape(ShapeId id, double dx, double dy);
  /// Scales a shape about its centroid.
  Status ResizeShape(ShapeId id, double factor);
  /// Replaces a shape's vertices outright.
  Status TransformShape(ShapeId id, std::vector<geo::Point2> new_vertices);
  /// Deletes a shape.
  Status EraseShape(ShapeId id);
  /// Assigns a drawing layer (layer/group control).
  Status SetLayer(ShapeId id, int layer);

  /// Undo the last mutating operation; fails when nothing to undo.
  Status Undo();
  /// Redo the last undone operation; fails when nothing to redo.
  Status Redo();

  // ---- step (3): semantic tags and styles ----

  /// Attaches a semantic tag to a drawn shape (the semantic tab).
  Status AssignTag(ShapeId id, const std::string& tag);
  /// Marks a shape to also become a semantic region named after the shape.
  Status MarkAsRegion(ShapeId id, const std::string& category);
  /// Customizes the display style of a semantic tag (Viewer legend color).
  void SetTagStyle(const std::string& tag, const std::string& color);

  // ---- output ----

  /// Builds the DSM: every drawn shape becomes an entity; shapes marked as
  /// regions also produce semantic regions mapped to their entities; the
  /// topology is computed. The modeler remains editable afterwards.
  Result<dsm::Dsm> BuildDsm(const std::string& model_name) const;

  /// Access to the canvas state.
  const std::vector<DrawnShape>& shapes() const { return shapes_; }
  const DrawnShape* GetShape(ShapeId id) const;
  const std::map<std::string, std::string>& tag_styles() const { return tag_styles_; }
  size_t FloorCount() const { return floors_.size(); }

 private:
  // Snapshot-based undo: push the current canvas before each mutation.
  void Checkpoint();
  geo::Point2 Snap(const geo::Point2& p) const;
  Result<ShapeId> AddShape(dsm::EntityKind kind, const std::string& name,
                           geo::FloorId floor, geo::Polygon polygon);
  DrawnShape* FindShape(ShapeId id);

  SpaceModelerOptions options_;
  std::vector<dsm::Floor> floors_;
  std::vector<DrawnShape> shapes_;
  std::map<std::string, std::string> tag_styles_;
  ShapeId next_id_ = 0;
  std::vector<std::vector<DrawnShape>> undo_stack_;
  std::vector<std::vector<DrawnShape>> redo_stack_;
};

}  // namespace trips::config
