// Data Selector — first Configurator module (§2): "accepts the indoor
// positioning data from multi-sources (e.g., text files, database tables, and
// streams APIs), and offers users a set of configurable and combinable rules
// to select the (device) positioning sequences of particular interest.
// Typical rules include device ID pattern, spatial range, temporal range,
// positioning frequency, and periodic pattern."
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "geometry/point.h"
#include "positioning/record.h"
#include "util/result.h"

namespace trips::config {

/// A predicate over one device's positioning sequence. Rules are combinable
/// with And/Or/Not to form a selection tree.
class SelectionRule {
 public:
  virtual ~SelectionRule() = default;
  /// True iff the sequence passes this rule.
  virtual bool Matches(const positioning::PositioningSequence& seq) const = 0;
  /// Human-readable rule description, e.g. "device_id ~ '3a.*'".
  virtual std::string Describe() const = 0;
};

using RulePtr = std::shared_ptr<const SelectionRule>;

/// Device ID glob pattern ('*' and '?'), e.g. "3a.*.14".
RulePtr DeviceIdPattern(std::string glob);

/// At least `min_fraction` of the records fall inside `box` on `floor`
/// (floor = -1 means any floor). min_fraction > 0 with an empty sequence
/// never matches.
RulePtr SpatialRange(geo::BoundingBox box, geo::FloorId floor,
                     double min_fraction = 1e-9);

/// The sequence's time span overlaps (or, when `require_within`, lies fully
/// inside) the given range.
RulePtr TemporalRange(TimeRange range, bool require_within = false);

/// Mean positioning frequency lies in [min_hz, max_hz].
RulePtr FrequencyRange(double min_hz, double max_hz);

/// The sequence spans at least `min_duration` (e.g. "lasts for more than one
/// hour").
RulePtr MinDuration(DurationMs min_duration);

/// The sequence has at least `min_records` records.
RulePtr MinRecords(size_t min_records);

/// Periodic (daily) pattern: at least `min_fraction` of the records fall in
/// the daily clock window [begin_of_day, end_of_day), expressed in
/// milliseconds since UTC midnight — e.g. the mall's operating hours.
RulePtr PeriodicPattern(DurationMs begin_of_day, DurationMs end_of_day,
                        double min_fraction = 1.0);

/// Logical combinators.
RulePtr And(std::vector<RulePtr> rules);
RulePtr Or(std::vector<RulePtr> rules);
RulePtr Not(RulePtr rule);

/// A pluggable source of positioning sequences (text file, table dump,
/// stream adapter, ...).
class SequenceSource {
 public:
  virtual ~SequenceSource() = default;
  /// Loads all sequences from this source.
  virtual Result<std::vector<positioning::PositioningSequence>> Load() const = 0;
  /// Source description for diagnostics.
  virtual std::string Describe() const = 0;
};

/// Configures sources plus a rule tree and produces the selected sequences.
class DataSelector {
 public:
  /// Adds in-memory sequences (e.g. a decoded database table).
  void AddSequences(std::vector<positioning::PositioningSequence> sequences);
  /// Adds a CSV file source (read lazily at Select time).
  void AddCsvFile(std::string path);
  /// Adds a custom source (e.g. a stream adapter).
  void AddSource(std::shared_ptr<const SequenceSource> source);

  /// Sets the selection rule; nullptr selects everything.
  void SetRule(RulePtr rule) { rule_ = std::move(rule); }
  const RulePtr& rule() const { return rule_; }

  /// Loads every source, merges records of the same device across sources
  /// (time-sorted), applies the rule, and returns the selected sequences.
  Result<std::vector<positioning::PositioningSequence>> Select() const;

  /// Number of configured sources.
  size_t SourceCount() const { return sources_.size(); }

 private:
  std::vector<std::shared_ptr<const SequenceSource>> sources_;
  RulePtr rule_;
};

}  // namespace trips::config
