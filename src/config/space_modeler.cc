#include "config/space_modeler.h"

#include <algorithm>

namespace trips::config {

SpaceModeler::SpaceModeler(SpaceModelerOptions options)
    : options_(std::move(options)) {}

Status SpaceModeler::ImportFloorplan(geo::FloorId floor, const std::string& name,
                                     double width, double height) {
  if (width <= 0 || height <= 0) {
    return Status::InvalidArgument("floorplan must have positive extent");
  }
  for (const dsm::Floor& f : floors_) {
    if (f.id == floor) {
      return Status::AlreadyExists("floor " + std::to_string(floor) +
                                   " already imported");
    }
  }
  dsm::Floor f;
  f.id = floor;
  f.name = name;
  f.outline = geo::Polygon::Rectangle(0, 0, width, height);
  floors_.push_back(std::move(f));
  return Status::OK();
}

void SpaceModeler::Checkpoint() {
  undo_stack_.push_back(shapes_);
  redo_stack_.clear();
}

geo::Point2 SpaceModeler::Snap(const geo::Point2& p) const {
  if (options_.snap_distance <= 0) return p;
  geo::Point2 best = p;
  double best_dist = options_.snap_distance;
  for (const DrawnShape& s : shapes_) {
    for (const geo::Point2& v : s.shape.vertices) {
      double d = v.DistanceTo(p);
      if (d < best_dist) {
        best_dist = d;
        best = v;
      }
    }
  }
  return best;
}

DrawnShape* SpaceModeler::FindShape(ShapeId id) {
  for (DrawnShape& s : shapes_) {
    if (s.id == id) return &s;
  }
  return nullptr;
}

const DrawnShape* SpaceModeler::GetShape(ShapeId id) const {
  for (const DrawnShape& s : shapes_) {
    if (s.id == id) return &s;
  }
  return nullptr;
}

Result<ShapeId> SpaceModeler::AddShape(dsm::EntityKind kind, const std::string& name,
                                       geo::FloorId floor, geo::Polygon polygon) {
  bool floor_known = false;
  for (const dsm::Floor& f : floors_) floor_known |= (f.id == floor);
  if (!floor_known) {
    return Status::FailedPrecondition("floor " + std::to_string(floor) +
                                      " not imported; call ImportFloorplan first");
  }
  if (polygon.vertices.size() < 3) {
    return Status::InvalidArgument("shape '" + name + "' needs >= 3 vertices");
  }
  Checkpoint();
  DrawnShape s;
  s.id = next_id_++;
  s.kind = kind;
  s.name = name;
  s.floor = floor;
  s.shape = std::move(polygon);
  shapes_.push_back(std::move(s));
  return shapes_.back().id;
}

Result<ShapeId> SpaceModeler::DrawPolygon(dsm::EntityKind kind,
                                          const std::string& name, geo::FloorId floor,
                                          std::vector<geo::Point2> vertices) {
  for (geo::Point2& v : vertices) v = Snap(v);
  return AddShape(kind, name, floor, geo::Polygon(std::move(vertices)));
}

Result<ShapeId> SpaceModeler::DrawRectangle(dsm::EntityKind kind,
                                            const std::string& name,
                                            geo::FloorId floor, double x0, double y0,
                                            double x1, double y1) {
  return AddShape(kind, name, floor, geo::Polygon::Rectangle(x0, y0, x1, y1));
}

Result<ShapeId> SpaceModeler::DrawCircle(dsm::EntityKind kind, const std::string& name,
                                         geo::FloorId floor, geo::Point2 center,
                                         double radius) {
  if (radius <= 0) return Status::InvalidArgument("circle radius must be positive");
  geo::Circle c{Snap(center), radius};
  return AddShape(kind, name, floor, c.ToPolygon(options_.circle_segments));
}

Result<ShapeId> SpaceModeler::DrawPolyline(dsm::EntityKind kind,
                                           const std::string& name, geo::FloorId floor,
                                           std::vector<geo::Point2> points) {
  if (points.size() < 2) {
    return Status::InvalidArgument("polyline needs >= 2 points");
  }
  for (geo::Point2& p : points) p = Snap(p);
  // Close the traced chain into a thin polygon by offsetting each segment
  // sideways by the wall half-thickness: forward along one side, back along
  // the other.
  double h = options_.wall_half_thickness;
  std::vector<geo::Point2> ring;
  ring.reserve(points.size() * 2);
  auto normal_at = [&](size_t i) {
    size_t a = i == 0 ? 0 : i - 1;
    size_t b = i + 1 < points.size() ? i + 1 : points.size() - 1;
    geo::Point2 dir = (points[b] - points[a]).Normalized();
    return geo::Point2{-dir.y, dir.x};
  };
  for (size_t i = 0; i < points.size(); ++i) {
    ring.push_back(points[i] + normal_at(i) * h);
  }
  for (size_t i = points.size(); i-- > 0;) {
    ring.push_back(points[i] - normal_at(i) * h);
  }
  return AddShape(kind, name, floor, geo::Polygon(std::move(ring)));
}

Status SpaceModeler::MoveShape(ShapeId id, double dx, double dy) {
  DrawnShape* s = FindShape(id);
  if (s == nullptr) return Status::NotFound("shape " + std::to_string(id));
  Checkpoint();
  s = FindShape(id);  // Checkpoint copies; pointer remains valid but re-fetch anyway.
  for (geo::Point2& v : s->shape.vertices) {
    v.x += dx;
    v.y += dy;
  }
  return Status::OK();
}

Status SpaceModeler::ResizeShape(ShapeId id, double factor) {
  if (factor <= 0) return Status::InvalidArgument("resize factor must be positive");
  DrawnShape* s = FindShape(id);
  if (s == nullptr) return Status::NotFound("shape " + std::to_string(id));
  Checkpoint();
  s = FindShape(id);
  geo::Point2 c = s->shape.Centroid();
  for (geo::Point2& v : s->shape.vertices) {
    v = c + (v - c) * factor;
  }
  return Status::OK();
}

Status SpaceModeler::TransformShape(ShapeId id, std::vector<geo::Point2> new_vertices) {
  if (new_vertices.size() < 3) {
    return Status::InvalidArgument("transformed shape needs >= 3 vertices");
  }
  DrawnShape* s = FindShape(id);
  if (s == nullptr) return Status::NotFound("shape " + std::to_string(id));
  Checkpoint();
  s = FindShape(id);
  s->shape.vertices = std::move(new_vertices);
  return Status::OK();
}

Status SpaceModeler::EraseShape(ShapeId id) {
  if (FindShape(id) == nullptr) return Status::NotFound("shape " + std::to_string(id));
  Checkpoint();
  shapes_.erase(std::remove_if(shapes_.begin(), shapes_.end(),
                               [id](const DrawnShape& s) { return s.id == id; }),
                shapes_.end());
  return Status::OK();
}

Status SpaceModeler::SetLayer(ShapeId id, int layer) {
  DrawnShape* s = FindShape(id);
  if (s == nullptr) return Status::NotFound("shape " + std::to_string(id));
  Checkpoint();
  FindShape(id)->layer = layer;
  return Status::OK();
}

Status SpaceModeler::Undo() {
  if (undo_stack_.empty()) return Status::FailedPrecondition("nothing to undo");
  redo_stack_.push_back(std::move(shapes_));
  shapes_ = std::move(undo_stack_.back());
  undo_stack_.pop_back();
  return Status::OK();
}

Status SpaceModeler::Redo() {
  if (redo_stack_.empty()) return Status::FailedPrecondition("nothing to redo");
  undo_stack_.push_back(std::move(shapes_));
  shapes_ = std::move(redo_stack_.back());
  redo_stack_.pop_back();
  return Status::OK();
}

Status SpaceModeler::AssignTag(ShapeId id, const std::string& tag) {
  DrawnShape* s = FindShape(id);
  if (s == nullptr) return Status::NotFound("shape " + std::to_string(id));
  Checkpoint();
  FindShape(id)->semantic_tag = tag;
  return Status::OK();
}

Status SpaceModeler::MarkAsRegion(ShapeId id, const std::string& category) {
  DrawnShape* s = FindShape(id);
  if (s == nullptr) return Status::NotFound("shape " + std::to_string(id));
  if (s->name.empty()) {
    return Status::FailedPrecondition("region shapes need a name");
  }
  Checkpoint();
  DrawnShape* fresh = FindShape(id);
  fresh->make_region = true;
  fresh->region_category = category;
  return Status::OK();
}

void SpaceModeler::SetTagStyle(const std::string& tag, const std::string& color) {
  tag_styles_[tag] = color;
}

Result<dsm::Dsm> SpaceModeler::BuildDsm(const std::string& model_name) const {
  dsm::Dsm out;
  out.set_name(model_name);
  for (const dsm::Floor& f : floors_) {
    TRIPS_RETURN_NOT_OK(out.AddFloor(f));
  }
  // Draw order by layer, then insertion, matching the canvas stacking.
  std::vector<const DrawnShape*> ordered;
  ordered.reserve(shapes_.size());
  for (const DrawnShape& s : shapes_) ordered.push_back(&s);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const DrawnShape* a, const DrawnShape* b) {
                     return a->layer < b->layer;
                   });
  for (const DrawnShape* s : ordered) {
    dsm::Entity e;
    e.kind = s->kind;
    e.name = s->name;
    e.floor = s->floor;
    e.shape = s->shape;
    e.semantic_tag = s->semantic_tag;
    TRIPS_ASSIGN_OR_RETURN(dsm::EntityId eid, out.AddEntity(std::move(e)));
    if (s->make_region) {
      dsm::SemanticRegion r;
      r.name = s->name;
      r.category = s->region_category.empty() ? s->semantic_tag : s->region_category;
      r.floor = s->floor;
      r.shape = s->shape;
      TRIPS_ASSIGN_OR_RETURN(dsm::RegionId rid, out.AddRegion(std::move(r)));
      TRIPS_RETURN_NOT_OK(out.MapEntityToRegion(eid, rid));
    }
  }
  TRIPS_RETURN_NOT_OK(out.ComputeTopology());
  return out;
}

}  // namespace trips::config
