// Minimal JSON value model, parser and serializer.
//
// The paper stores the Digital Space Model "in JSON format, which is flexible
// to parse and manipulate" (§3). This module is the self-contained substrate
// for that: a tagged-union Value plus strict RFC-8259-style parsing (UTF-8
// pass-through, \uXXXX escapes decoded to UTF-8) and deterministic
// serialization (object keys kept in insertion order).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/result.h"

namespace trips::json {

class Value;

/// Array of JSON values.
using Array = std::vector<Value>;

/// JSON object preserving insertion order of keys.
class Object {
 public:
  /// Returns the value for `key`, inserting a null value if absent.
  Value& operator[](const std::string& key);
  /// Returns the value for `key` or nullptr when absent.
  const Value* Find(const std::string& key) const;
  /// True iff `key` is present.
  bool Contains(const std::string& key) const { return Find(key) != nullptr; }
  /// Number of members.
  size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }

  /// Members in insertion order.
  const std::vector<std::pair<std::string, Value>>& items() const { return items_; }

  bool operator==(const Object& other) const;

 private:
  std::vector<std::pair<std::string, Value>> items_;
};

/// The type tag of a JSON value.
enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

/// A JSON value: null, bool, number (double), string, array or object.
class Value {
 public:
  /// Constructs a null value.
  Value() : type_(Type::kNull) {}
  Value(std::nullptr_t) : type_(Type::kNull) {}                 // NOLINT
  Value(bool b) : type_(Type::kBool), bool_(b) {}               // NOLINT
  Value(double d) : type_(Type::kNumber), num_(d) {}            // NOLINT
  Value(int i) : type_(Type::kNumber), num_(i) {}               // NOLINT
  Value(int64_t i) : type_(Type::kNumber), num_(static_cast<double>(i)) {}  // NOLINT
  Value(const char* s) : type_(Type::kString), str_(s) {}       // NOLINT
  Value(std::string s) : type_(Type::kString), str_(std::move(s)) {}  // NOLINT
  Value(Array a) : type_(Type::kArray), arr_(std::move(a)) {}   // NOLINT
  Value(Object o) : type_(Type::kObject), obj_(std::move(o)) {}  // NOLINT

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Value accessors; behaviour is undefined if the type tag does not match
  /// (guard with the is_*() predicates or the Get* helpers below).
  bool AsBool() const { return bool_; }
  double AsDouble() const { return num_; }
  int64_t AsInt() const { return static_cast<int64_t>(num_); }
  const std::string& AsString() const { return str_; }
  const Array& AsArray() const { return arr_; }
  Array& AsArray() { return arr_; }
  const Object& AsObject() const { return obj_; }
  Object& AsObject() { return obj_; }

  /// Typed lookups into an object value; return the fallback when this value
  /// is not an object, the key is missing, or the member has the wrong type.
  double GetDouble(const std::string& key, double fallback = 0) const;
  int64_t GetInt(const std::string& key, int64_t fallback = 0) const;
  bool GetBool(const std::string& key, bool fallback = false) const;
  std::string GetString(const std::string& key, std::string fallback = "") const;

  /// Serializes compactly (no whitespace).
  std::string Dump() const;
  /// Serializes with 2-space indentation.
  std::string Pretty() const;

  bool operator==(const Value& other) const;

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double num_ = 0;
  std::string str_;
  Array arr_;
  Object obj_;
};

/// Parses a complete JSON document; trailing non-whitespace is an error.
Result<Value> Parse(std::string_view text);

/// Reads and parses a JSON file.
Result<Value> ParseFile(const std::string& path);

/// Writes `value` to `path`, pretty-printed.
Status WriteFile(const Value& value, const std::string& path);

/// Escapes a string for embedding in JSON output (adds surrounding quotes).
std::string EscapeString(std::string_view s);

}  // namespace trips::json
