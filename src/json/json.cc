#include "json/json.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace trips::json {

Value& Object::operator[](const std::string& key) {
  for (auto& [k, v] : items_) {
    if (k == key) return v;
  }
  items_.emplace_back(key, Value());
  return items_.back().second;
}

const Value* Object::Find(const std::string& key) const {
  for (const auto& [k, v] : items_) {
    if (k == key) return &v;
  }
  return nullptr;
}

bool Object::operator==(const Object& other) const { return items_ == other.items_; }

bool Value::operator==(const Value& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::kNull:
      return true;
    case Type::kBool:
      return bool_ == other.bool_;
    case Type::kNumber:
      return num_ == other.num_;
    case Type::kString:
      return str_ == other.str_;
    case Type::kArray:
      return arr_ == other.arr_;
    case Type::kObject:
      return obj_ == other.obj_;
  }
  return false;
}

double Value::GetDouble(const std::string& key, double fallback) const {
  if (!is_object()) return fallback;
  const Value* v = obj_.Find(key);
  return (v && v->is_number()) ? v->AsDouble() : fallback;
}

int64_t Value::GetInt(const std::string& key, int64_t fallback) const {
  if (!is_object()) return fallback;
  const Value* v = obj_.Find(key);
  return (v && v->is_number()) ? v->AsInt() : fallback;
}

bool Value::GetBool(const std::string& key, bool fallback) const {
  if (!is_object()) return fallback;
  const Value* v = obj_.Find(key);
  return (v && v->is_bool()) ? v->AsBool() : fallback;
}

std::string Value::GetString(const std::string& key, std::string fallback) const {
  if (!is_object()) return fallback;
  const Value* v = obj_.Find(key);
  return (v && v->is_string()) ? v->AsString() : fallback;
}

std::string EscapeString(std::string_view s) {
  std::string out = "\"";
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  out += '"';
  return out;
}

namespace {

// Formats a number the shortest way that round-trips: integers without a
// fractional part, otherwise up to 17 significant digits.
std::string FormatNumber(double d) {
  if (std::isfinite(d) && d == std::floor(d) && std::fabs(d) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(d));
    return buf;
  }
  if (!std::isfinite(d)) return "null";  // JSON has no Inf/NaN.
  char buf[40];
  for (int prec = 15; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, d);
    double back = std::strtod(buf, nullptr);
    if (back == d) break;
  }
  return buf;
}

void Indent(std::string* out, int indent, int depth) {
  if (indent <= 0) return;
  out->push_back('\n');
  out->append(static_cast<size_t>(indent) * depth, ' ');
}

}  // namespace

void Value::DumpTo(std::string* out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull:
      *out += "null";
      break;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      break;
    case Type::kNumber:
      *out += FormatNumber(num_);
      break;
    case Type::kString:
      *out += EscapeString(str_);
      break;
    case Type::kArray: {
      *out += '[';
      for (size_t i = 0; i < arr_.size(); ++i) {
        if (i > 0) *out += indent > 0 ? "," : ",";
        Indent(out, indent, depth + 1);
        arr_[i].DumpTo(out, indent, depth + 1);
      }
      if (!arr_.empty()) Indent(out, indent, depth);
      *out += ']';
      break;
    }
    case Type::kObject: {
      *out += '{';
      size_t i = 0;
      for (const auto& [k, v] : obj_.items()) {
        if (i++ > 0) *out += ",";
        Indent(out, indent, depth + 1);
        *out += EscapeString(k);
        *out += indent > 0 ? ": " : ":";
        v.DumpTo(out, indent, depth + 1);
      }
      if (!obj_.empty()) Indent(out, indent, depth);
      *out += '}';
      break;
    }
  }
}

std::string Value::Dump() const {
  std::string out;
  DumpTo(&out, 0, 0);
  return out;
}

std::string Value::Pretty() const {
  std::string out;
  DumpTo(&out, 2, 0);
  return out;
}

namespace {

// Recursive-descent JSON parser over a string_view.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Value> ParseDocument() {
    SkipWs();
    Value v;
    TRIPS_RETURN_NOT_OK(ParseValue(&v));
    SkipWs();
    if (pos_ != text_.size()) {
      return Fail("trailing characters after JSON value");
    }
    return v;
  }

 private:
  Status Fail(const std::string& what) const {
    return Status::ParseError(what + " at offset " + std::to_string(pos_));
  }

  void SkipWs() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool Peek(char c) const { return pos_ < text_.size() && text_[pos_] == c; }

  Status Expect(char c) {
    if (!Peek(c)) return Fail(std::string("expected '") + c + "'");
    ++pos_;
    return Status::OK();
  }

  Status ParseValue(Value* out) {
    if (depth_ > kMaxDepth) return Fail("nesting too deep");
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"': {
        std::string s;
        TRIPS_RETURN_NOT_OK(ParseString(&s));
        *out = Value(std::move(s));
        return Status::OK();
      }
      case 't':
        return ParseLiteral("true", Value(true), out);
      case 'f':
        return ParseLiteral("false", Value(false), out);
      case 'n':
        return ParseLiteral("null", Value(), out);
      default:
        return ParseNumber(out);
    }
  }

  Status ParseLiteral(std::string_view lit, Value v, Value* out) {
    if (text_.substr(pos_, lit.size()) != lit) return Fail("bad literal");
    pos_ += lit.size();
    *out = std::move(v);
    return Status::OK();
  }

  Status ParseNumber(Value* out) {
    size_t start = pos_;
    if (Peek('-')) ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("invalid value");
    std::string num(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double d = std::strtod(num.c_str(), &end);
    if (end != num.c_str() + num.size()) return Fail("invalid number '" + num + "'");
    *out = Value(d);
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    TRIPS_RETURN_NOT_OK(Expect('"'));
    out->clear();
    while (true) {
      if (pos_ >= text_.size()) return Fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Fail("unterminated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'u': {
          unsigned code = 0;
          TRIPS_RETURN_NOT_OK(ParseHex4(&code));
          // Surrogate pair handling.
          if (code >= 0xD800 && code <= 0xDBFF && pos_ + 1 < text_.size() &&
              text_[pos_] == '\\' && text_[pos_ + 1] == 'u') {
            pos_ += 2;
            unsigned low = 0;
            TRIPS_RETURN_NOT_OK(ParseHex4(&low));
            if (low >= 0xDC00 && low <= 0xDFFF) {
              code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
            } else {
              return Fail("invalid surrogate pair");
            }
          }
          AppendUtf8(code, out);
          break;
        }
        default:
          return Fail("bad escape character");
      }
    }
  }

  Status ParseHex4(unsigned* out) {
    if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_++];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return Fail("bad hex digit in \\u escape");
      }
    }
    *out = v;
    return Status::OK();
  }

  static void AppendUtf8(unsigned code, std::string* out) {
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (code >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  Status ParseArray(Value* out) {
    TRIPS_RETURN_NOT_OK(Expect('['));
    ++depth_;
    Array arr;
    SkipWs();
    if (Peek(']')) {
      ++pos_;
      --depth_;
      *out = Value(std::move(arr));
      return Status::OK();
    }
    while (true) {
      Value v;
      SkipWs();
      TRIPS_RETURN_NOT_OK(ParseValue(&v));
      arr.push_back(std::move(v));
      SkipWs();
      if (Peek(',')) {
        ++pos_;
        continue;
      }
      TRIPS_RETURN_NOT_OK(Expect(']'));
      break;
    }
    --depth_;
    *out = Value(std::move(arr));
    return Status::OK();
  }

  Status ParseObject(Value* out) {
    TRIPS_RETURN_NOT_OK(Expect('{'));
    ++depth_;
    Object obj;
    SkipWs();
    if (Peek('}')) {
      ++pos_;
      --depth_;
      *out = Value(std::move(obj));
      return Status::OK();
    }
    while (true) {
      SkipWs();
      std::string key;
      TRIPS_RETURN_NOT_OK(ParseString(&key));
      SkipWs();
      TRIPS_RETURN_NOT_OK(Expect(':'));
      SkipWs();
      Value v;
      TRIPS_RETURN_NOT_OK(ParseValue(&v));
      obj[key] = std::move(v);
      SkipWs();
      if (Peek(',')) {
        ++pos_;
        continue;
      }
      TRIPS_RETURN_NOT_OK(Expect('}'));
      break;
    }
    --depth_;
    *out = Value(std::move(obj));
    return Status::OK();
  }

  static constexpr int kMaxDepth = 256;

  std::string_view text_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Result<Value> Parse(std::string_view text) { return Parser(text).ParseDocument(); }

Result<Value> ParseFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return Parse(buf.str());
}

Status WriteFile(const Value& value, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot write '" + path + "'");
  out << value.Pretty() << "\n";
  if (!out.good()) return Status::IOError("write failed for '" + path + "'");
  return Status::OK();
}

}  // namespace trips::json
