#include "dsm/routing.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <list>
#include <mutex>
#include <queue>
#include <unordered_map>

namespace trips::dsm {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

// Routing node anchors snap to a 1 um lattice. Raw polygon centroids carry
// ~1e-12 of arithmetic jitter, so geometrically-collinear node chains (shop
// doors lining a corridor wall) are not exact floating-point ties: a path
// threading an extra door can fold one ulp below the direct edge, and the
// shortest distance would then depend on which interior nodes the query
// graph kept. Snapping makes collinear chains tie exactly, so the contracted
// and flat query paths fold to bitwise-identical sums; the anchors move less
// than a micrometre.
geo::IndoorPoint SnapNodeAnchor(geo::IndoorPoint p) {
  p.xy.x = std::round(p.xy.x * 1e6) / 1e6;
  p.xy.y = std::round(p.xy.y * 1e6) / 1e6;
  return p;
}
}

geo::IndoorPoint Route::PointAtDistance(double d) const {
  if (waypoints.empty()) return {};
  if (d <= 0) return waypoints.front();
  double acc = 0;
  for (size_t i = 1; i < waypoints.size(); ++i) {
    const geo::IndoorPoint& a = waypoints[i - 1];
    const geo::IndoorPoint& b = waypoints[i];
    double leg;
    if (a.floor == b.floor) {
      leg = a.PlanarDistanceTo(b);
    } else {
      // Vertical transition: walk the same per-floor cost the planner charged
      // into `distance`. Position jumps at the midpoint.
      leg = vertical_cost_per_floor * std::abs(a.floor - b.floor);
      if (d <= acc + leg) {
        return (d - acc) < leg / 2 ? a : b;
      }
      acc += leg;
      continue;
    }
    if (d <= acc + leg && leg > 0) {
      double t = (d - acc) / leg;
      return {a.xy + (b.xy - a.xy) * t, a.floor};
    }
    acc += leg;
  }
  return waypoints.back();
}

// Bounded LRUs of per-source-node shortest-path trees — one shard for flat
// SourceTrees, one for contracted PortalTrees, sharing the hit/miss counters.
// Internally locked: the planner is shared by concurrent translation workers.
struct RoutePlanner::TreeCache {
  template <typename Tree>
  struct Shard {
    std::mutex mu;
    std::list<int> order;  // front = most recently used
    std::unordered_map<int, std::pair<std::list<int>::iterator,
                                      std::shared_ptr<const Tree>>>
        entries;

    void Clear() {
      std::lock_guard<std::mutex> lock(mu);
      order.clear();
      entries.clear();
    }
    size_t Size() {
      std::lock_guard<std::mutex> lock(mu);
      return entries.size();
    }
  };

  explicit TreeCache(size_t cap) : capacity(cap) {}

  template <typename Tree, typename Fn>
  std::shared_ptr<const Tree> GetOrCompute(Shard<Tree>& shard, int source,
                                           Fn&& compute) {
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      auto it = shard.entries.find(source);
      if (it != shard.entries.end()) {
        shard.order.splice(shard.order.begin(), shard.order, it->second.first);
        hits.fetch_add(1, std::memory_order_relaxed);
        return it->second.second;
      }
    }
    misses.fetch_add(1, std::memory_order_relaxed);
    auto tree = std::make_shared<const Tree>(compute());
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.entries.find(source);
    if (it != shard.entries.end()) {
      // Another worker computed the same tree while we did; keep theirs.
      shard.order.splice(shard.order.begin(), shard.order, it->second.first);
      return it->second.second;
    }
    shard.order.push_front(source);
    shard.entries.emplace(source, std::make_pair(shard.order.begin(), tree));
    while (shard.entries.size() > capacity) {
      shard.entries.erase(shard.order.back());
      shard.order.pop_back();
      evictions.fetch_add(1, std::memory_order_relaxed);
    }
    return tree;
  }

  const size_t capacity;
  Shard<SourceTree> flat;
  Shard<PortalTree> portal;
  std::atomic<size_t> hits{0};
  std::atomic<size_t> misses{0};
  std::atomic<size_t> evictions{0};
};

Result<RoutePlanner> RoutePlanner::Build(const Dsm* dsm, RoutePlannerOptions options) {
  if (dsm == nullptr) return Status::InvalidArgument("dsm is null");
  if (!dsm->topology_computed()) {
    return Status::FailedPrecondition("DSM topology not computed");
  }
  RoutePlanner planner;
  planner.dsm_ = dsm;
  planner.options_ = options;
  planner.use_contraction_ = options.use_contraction;
  planner.cache_ = std::make_shared<TreeCache>(options.route_cache_capacity);

  const Topology& topo = dsm->topology();

  // One node per door, belonging to all partitions the door connects.
  std::map<EntityId, int> door_node;
  for (const auto& [door_id, partitions] : topo.door_partitions) {
    const Entity* door = dsm->GetEntity(door_id);
    if (door == nullptr || partitions.empty()) continue;
    Node node;
    node.point = SnapNodeAnchor(door->IndoorCenter());
    node.partitions = partitions;
    door_node[door_id] = static_cast<int>(planner.nodes_.size());
    planner.nodes_.push_back(std::move(node));
  }
  // One node per partition-overlap portal (crossing corridors etc.),
  // belonging to both overlapping partitions.
  for (const Topology::Overlap& ov : topo.partition_overlaps) {
    const Entity* ea = dsm->GetEntity(ov.a);
    if (ea == nullptr) continue;
    Node node;
    node.point = SnapNodeAnchor({ov.portal, ea->floor});
    node.partitions = {ov.a, ov.b};
    planner.nodes_.push_back(std::move(node));
  }
  // One node per vertical connector endpoint (its own partition).
  std::map<EntityId, int> vertical_node;
  for (const auto& [a, b] : topo.vertical_links) {
    for (EntityId vid : {a, b}) {
      if (vertical_node.count(vid)) continue;
      const Entity* v = dsm->GetEntity(vid);
      if (v == nullptr) continue;
      Node node;
      node.point = SnapNodeAnchor(v->IndoorCenter());
      node.partitions = {vid};
      vertical_node[vid] = static_cast<int>(planner.nodes_.size());
      planner.nodes_.push_back(std::move(node));
    }
  }

  planner.adjacency_.resize(planner.nodes_.size());
  for (size_t i = 0; i < planner.nodes_.size(); ++i) {
    for (EntityId pid : planner.nodes_[i].partitions) {
      planner.partition_nodes_[pid].push_back(static_cast<int>(i));
    }
  }

  // Intra-partition edges: nodes sharing a partition connect with planar
  // distance (partitions are convex-ish rooms/hallways in floorplans).
  for (const auto& [pid, node_ids] : planner.partition_nodes_) {
    for (size_t i = 0; i < node_ids.size(); ++i) {
      for (size_t j = i + 1; j < node_ids.size(); ++j) {
        int a = node_ids[i];
        int b = node_ids[j];
        double w = planner.nodes_[a].point.PlanarDistanceTo(planner.nodes_[b].point);
        planner.AddEdge(a, b, w);
      }
    }
  }
  // Vertical edges between linked connector endpoints.
  std::vector<uint8_t> has_vertical(planner.nodes_.size(), 0);
  for (const auto& [a, b] : topo.vertical_links) {
    auto ia = vertical_node.find(a);
    auto ib = vertical_node.find(b);
    if (ia == vertical_node.end() || ib == vertical_node.end()) continue;
    const Entity* ea = dsm->GetEntity(a);
    const Entity* eb = dsm->GetEntity(b);
    double w = options.vertical_cost_per_floor * std::abs(ea->floor - eb->floor);
    planner.AddEdge(ia->second, ib->second, w);
    has_vertical[ia->second] = 1;
    has_vertical[ib->second] = 1;
  }
  // A vertical connector is itself a walkable partition that may carry doors;
  // nothing further needed: door nodes listing it as a partition already link.

  planner.BuildPortalGraph(has_vertical);

  return planner;
}

void RoutePlanner::AddEdge(int a, int b, double w) {
  adjacency_[a].push_back({b, w});
  adjacency_[b].push_back({a, w});
}

void RoutePlanner::BuildPortalGraph(const std::vector<uint8_t>& has_vertical) {
  const int n = static_cast<int>(nodes_.size());
  node_portal_.assign(n, -1);
  portal_nodes_.clear();

  // A node survives contraction only when a shortest path can usefully pass
  // *through* it: it ends a vertical edge, or it *bridges* — some neighbor u
  // in one of its partitions and some neighbor v in another share no
  // partition themselves, so u -> n -> v has no direct shortcut. Everything
  // else (a dead-end room's door, its coincident wall-touch overlap twin, a
  // portal into a node-less partition) can only start or end a journey — the
  // triangle inequality lets every through-path skip it — and the query-time
  // local search covers the endpoint role. Ascending node order keeps
  // portal-rank heap tie-breaks aligned with the flat Dijkstra's node-id
  // tie-breaks.
  for (int i = 0; i < n; ++i) {
    bool portal = has_vertical[i] != 0;
    const std::vector<EntityId>& parts = nodes_[i].partitions;
    for (size_t pi = 0; !portal && pi < parts.size(); ++pi) {
      auto pit = partition_nodes_.find(parts[pi]);
      if (pit == partition_nodes_.end()) continue;
      for (size_t qi = pi + 1; !portal && qi < parts.size(); ++qi) {
        auto qit = partition_nodes_.find(parts[qi]);
        if (qit == partition_nodes_.end()) continue;
        for (size_t ui = 0; !portal && ui < pit->second.size(); ++ui) {
          int u = pit->second[ui];
          if (u == i) continue;
          for (int v : qit->second) {
            if (v == i || v == u) continue;
            if (!NodesAdjacent(u, v)) {
              portal = true;
              break;
            }
          }
        }
      }
    }
    if (portal) {
      node_portal_[i] = static_cast<int32_t>(portal_nodes_.size());
      portal_nodes_.push_back(i);
    }
  }

  // Shortcut adjacency: the flat edges restricted to portal endpoints, CSR
  // over portal ranks. Weights are reused verbatim, so contracted path sums
  // fold the same doubles in the same order as flat path sums.
  const size_t m = portal_nodes_.size();
  portal_adj_offsets_.assign(m + 1, 0);
  for (size_t p = 0; p < m; ++p) {
    for (const Edge& e : adjacency_[portal_nodes_[p]]) {
      if (node_portal_[e.to] >= 0) ++portal_adj_offsets_[p + 1];
    }
  }
  for (size_t p = 0; p < m; ++p) portal_adj_offsets_[p + 1] += portal_adj_offsets_[p];
  portal_adjacency_.resize(portal_adj_offsets_[m]);
  std::vector<uint32_t> cursor(portal_adj_offsets_.begin(),
                               portal_adj_offsets_.end() - 1);
  for (size_t p = 0; p < m; ++p) {
    for (const Edge& e : adjacency_[portal_nodes_[p]]) {
      if (node_portal_[e.to] < 0) continue;
      portal_adjacency_[cursor[p]++] = {node_portal_[e.to], e.weight};
    }
  }

  // Node -> portal entry/exit hops: a portal reaches itself at cost 0; a
  // contracted node reaches the portals it shares a partition with through
  // its (unchanged) flat edge weight. Sorted by portal rank, duplicates from
  // doubly-shared partitions collapse (their weights are identical).
  link_offsets_.assign(n + 1, 0);
  node_portal_links_.clear();
  std::vector<PortalLink> scratch;
  for (int i = 0; i < n; ++i) {
    scratch.clear();
    if (node_portal_[i] >= 0) {
      scratch.push_back({node_portal_[i], 0.0});
    } else {
      for (const Edge& e : adjacency_[i]) {
        if (node_portal_[e.to] >= 0) {
          scratch.push_back({node_portal_[e.to], e.weight});
        }
      }
      std::sort(scratch.begin(), scratch.end(),
                [](const PortalLink& a, const PortalLink& b) {
                  return a.portal != b.portal ? a.portal < b.portal
                                              : a.weight < b.weight;
                });
      scratch.erase(std::unique(scratch.begin(), scratch.end(),
                                [](const PortalLink& a, const PortalLink& b) {
                                  return a.portal == b.portal;
                                }),
                    scratch.end());
    }
    node_portal_links_.insert(node_portal_links_.end(), scratch.begin(),
                              scratch.end());
    link_offsets_[i + 1] = static_cast<uint32_t>(node_portal_links_.size());
  }
}

std::span<const RoutePlanner::PortalLink> RoutePlanner::LinksOf(int node) const {
  return {node_portal_links_.data() + link_offsets_[node],
          link_offsets_[node + 1] - link_offsets_[node]};
}

bool RoutePlanner::NodesAdjacent(int a, int b) const {
  for (EntityId pa : nodes_[a].partitions) {
    for (EntityId pb : nodes_[b].partitions) {
      if (pa == pb) return true;
    }
  }
  return false;
}

size_t RoutePlanner::FlatEdgeCount() const {
  size_t count = 0;
  for (const auto& edges : adjacency_) count += edges.size();
  return count;
}

std::vector<std::pair<int, double>> RoutePlanner::LocalNodes(
    const geo::IndoorPoint& p) const {
  std::vector<std::pair<int, double>> out;
  EntityId pid = dsm_->PartitionAt(p);
  if (pid == kInvalidEntity) return out;
  auto it = partition_nodes_.find(pid);
  if (it == partition_nodes_.end()) return out;
  for (int node : it->second) {
    out.emplace_back(node, nodes_[node].point.PlanarDistanceTo(p));
  }
  return out;
}

RoutePlanner::SourceTree RoutePlanner::ComputeTree(int source) const {
  return ComputeMultiSeedTree({{source, 0.0}});
}

RoutePlanner::SourceTree RoutePlanner::ComputeMultiSeedTree(
    const std::vector<std::pair<int, double>>& seeds) const {
  SourceTree tree;
  tree.dist.assign(nodes_.size(), kInf);
  tree.prev.assign(nodes_.size(), -1);
  using QItem = std::pair<double, int>;
  std::priority_queue<QItem, std::vector<QItem>, std::greater<>> queue;
  for (const auto& [node, w] : seeds) {
    if (w < tree.dist[node]) {
      tree.dist[node] = w;
      queue.push({w, node});
    }
  }
  while (!queue.empty()) {
    auto [d, u] = queue.top();
    queue.pop();
    if (d > tree.dist[u]) continue;
    for (const Edge& e : adjacency_[u]) {
      double nd = d + e.weight;
      if (nd < tree.dist[e.to]) {
        tree.dist[e.to] = nd;
        tree.prev[e.to] = u;
        queue.push({nd, e.to});
      }
    }
  }
  return tree;
}

// Per-thread scratch arena for portal Dijkstras. The tree member backs hub
// queries (whose trees are query-local, never cached, and handed out
// non-owning); the seed/rank/heap buffers back every portal Dijkstra, cached
// or not, so their capacity is paid once per thread.
struct RoutePlanner::PortalScratch {
  PortalTree tree;
  std::vector<PortalSeed> seeds;
  std::vector<double> seed_rank_w;
  std::vector<int32_t> seed_rank_id;
  std::vector<std::pair<double, int32_t>> heap;
};

RoutePlanner::PortalScratch& RoutePlanner::LocalPortalScratch() {
  static thread_local PortalScratch scratch;
  return scratch;
}

void RoutePlanner::ComputePortalTreeInto(PortalScratch* scratch,
                                         PortalTree* out) const {
  const size_t m = portal_nodes_.size();
  PortalTree& tree = *out;
  tree.dist.assign(m, kInf);
  tree.prev.assign(m, -1);
  tree.seed_node.assign(m, -1);
  tree.settle.assign(m, std::numeric_limits<int32_t>::max());
  // Seed tie-breaking: equal-value seeds resolve by (entry offset, entry
  // node) — the order the flat multi-seed Dijkstra's heap pops their writers
  // in — so the recorded entry node matches the flat tree's predecessor.
  std::vector<double>& seed_rank_w = scratch->seed_rank_w;
  std::vector<int32_t>& seed_rank_id = scratch->seed_rank_id;
  seed_rank_w.assign(m, kInf);
  seed_rank_id.assign(m, std::numeric_limits<int32_t>::max());
  // Binary min-heap over (distance, portal) in the scratch vector — the same
  // pop order as a std::priority_queue (the comparator totally orders items),
  // without a fresh container per query.
  using QItem = std::pair<double, int32_t>;
  std::vector<QItem>& heap = scratch->heap;
  heap.clear();
  auto heap_push = [&heap](QItem item) {
    heap.push_back(item);
    std::push_heap(heap.begin(), heap.end(), std::greater<>());
  };
  for (const PortalSeed& s : scratch->seeds) {
    double cur = tree.dist[s.portal];
    bool better = s.value < cur;
    bool tie_wins = s.value == cur &&
                    (s.rank_w < seed_rank_w[s.portal] ||
                     (s.rank_w == seed_rank_w[s.portal] &&
                      s.via < seed_rank_id[s.portal]));
    if (!better && !tie_wins) continue;
    tree.dist[s.portal] = s.value;
    tree.seed_node[s.portal] = s.via;
    seed_rank_w[s.portal] = s.rank_w;
    seed_rank_id[s.portal] = s.via;
    if (better) heap_push({s.value, s.portal});
  }
  int32_t settled = 0;
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), std::greater<>());
    auto [d, u] = heap.back();
    heap.pop_back();
    if (d > tree.dist[u]) continue;
    if (tree.settle[u] != std::numeric_limits<int32_t>::max()) continue;
    tree.settle[u] = settled++;
    for (uint32_t k = portal_adj_offsets_[u]; k < portal_adj_offsets_[u + 1]; ++k) {
      const Edge& e = portal_adjacency_[k];
      double nd = d + e.weight;
      if (nd < tree.dist[e.to]) {
        tree.dist[e.to] = nd;
        tree.prev[e.to] = u;
        tree.seed_node[e.to] = -1;
        heap_push({nd, e.to});
      }
    }
  }
}

std::shared_ptr<const RoutePlanner::SourceTree> RoutePlanner::TreeFrom(
    int source) const {
  if (cache_ == nullptr || cache_->capacity == 0) {
    return std::make_shared<const SourceTree>(ComputeTree(source));
  }
  return cache_->GetOrCompute(cache_->flat, source,
                              [&] { return ComputeTree(source); });
}

std::shared_ptr<const RoutePlanner::PortalTree> RoutePlanner::PortalTreeFrom(
    int source) const {
  auto compute = [&] {
    // Memoized trees are owned (they outlive the query in the cache), but the
    // seed/rank/heap working set still comes from the thread's scratch.
    PortalScratch& scratch = LocalPortalScratch();
    std::span<const PortalLink> links = LinksOf(source);
    scratch.seeds.clear();
    scratch.seeds.reserve(links.size());
    for (const PortalLink& link : links) {
      scratch.seeds.push_back({link.portal, link.weight, link.weight, source});
    }
    PortalTree tree;
    ComputePortalTreeInto(&scratch, &tree);
    return tree;
  };
  if (cache_ == nullptr || cache_->capacity == 0) {
    return std::make_shared<const PortalTree>(compute());
  }
  return cache_->GetOrCompute(cache_->portal, source, compute);
}

bool RoutePlanner::BestCrossing(
    const std::vector<std::pair<int, double>>& from_nodes,
    const std::vector<std::pair<int, double>>& to_nodes, BestPair* out) const {
  bool found = false;
  if (from_nodes.size() > options_.max_memoized_sources) {
    // Hub-partition mode: one multi-seed Dijkstra for the whole query instead
    // of one tree per source node (a corridor can carry a node per shop).
    auto tree = std::make_shared<const SourceTree>(ComputeMultiSeedTree(from_nodes));
    for (const auto& [b, wb] : to_nodes) {
      double graph = tree->dist[b];
      if (graph == kInf) continue;
      double total = graph + wb;
      if (!found || total < out->total) {
        found = true;
        out->total = total;
        out->entry = -1;
        out->exit = b;
        out->tree = tree;
      }
    }
    return found;
  }
  // Memoized mode. Entry nodes ascending, exit nodes ascending, strict
  // improvement: the winning pair is the lexicographic minimum among equal
  // totals, independent of cache state.
  for (const auto& [a, wa] : from_nodes) {
    std::shared_ptr<const SourceTree> tree = TreeFrom(a);
    for (const auto& [b, wb] : to_nodes) {
      double graph = tree->dist[b];
      if (graph == kInf) continue;
      double total = wa + graph + wb;
      if (!found || total < out->total) {
        found = true;
        out->total = total;
        out->entry = a;
        out->exit = b;
        out->tree = tree;
      }
    }
  }
  return found;
}

// First-writer-in-pop-order selection among an exit node's predecessors,
// mirroring the flat Dijkstra: smaller value wins, ties go to the earlier
// writer. Pops order primarily by distance; equal-distance portal writers
// compare by their settle sequence (which encodes both the heap's id order
// and zero-weight causality), and a direct local-node writer against a
// portal compares by node id.
void RoutePlanner::ExitResolution::Offer(double new_value, double new_rank_w,
                                         int32_t new_rank_id, int32_t new_settle,
                                         bool new_direct, int new_direct_entry,
                                         int new_exit_portal) {
  bool wins;
  if (new_value != value) {
    wins = new_value < value;
  } else if (new_rank_w != rank_w) {
    wins = new_rank_w < rank_w;
  } else if (!new_direct && !direct) {
    wins = new_settle < settle;
  } else {
    wins = new_rank_id < rank_id;
  }
  if (!wins) return;
  value = new_value;
  rank_w = new_rank_w;
  rank_id = new_rank_id;
  settle = new_settle;
  direct = new_direct;
  direct_entry = new_direct_entry;
  exit_portal = new_exit_portal;
}

std::shared_ptr<const RoutePlanner::PortalTree> RoutePlanner::ComputeHubPortalTree(
    const std::vector<std::pair<int, double>>& from_nodes) const {
  PortalScratch& scratch = LocalPortalScratch();
  std::vector<PortalSeed>& seeds = scratch.seeds;
  seeds.clear();
  for (const auto& [a, wa] : from_nodes) {
    for (const PortalLink& link : LinksOf(a)) {
      // A portal local node seeds itself the way the flat Dijkstra assigns
      // its seeds: before the main loop, beating every equal-valued
      // relaxation (rank below any pop); hops from contracted local nodes
      // are relaxations written at the node's pop rank (wa, a).
      double rank_w = portal_nodes_[link.portal] == a ? -1.0 : wa;
      seeds.push_back({link.portal, wa + link.weight, rank_w, a});
    }
  }
  ComputePortalTreeInto(&scratch, &scratch.tree);
  // Non-owning handle to the scratch-resident tree (aliasing constructor with
  // an empty control block): hub trees are query-local and consumed before the
  // calling thread runs its next hub portal Dijkstra, so no copy is needed.
  return std::shared_ptr<const PortalTree>(std::shared_ptr<const PortalTree>(),
                                           &scratch.tree);
}

RoutePlanner::SourceByPartition RoutePlanner::GroupSourcesByPartition(
    const std::vector<std::pair<int, double>>& from_nodes) const {
  SourceByPartition sources;
  for (const auto& [a, wa] : from_nodes) {
    for (EntityId pid : nodes_[a].partitions) {
      sources[pid].emplace_back(a, wa);
    }
  }
  return sources;
}

RoutePlanner::ExitResolution RoutePlanner::ResolveExitHub(
    int b, const PortalTree& tree, const SourceByPartition& sources) const {
  ExitResolution exit;
  // Direct single-edge candidates only matter for contracted exit nodes: a
  // portal b already receives every local-node edge through the tree (as a
  // seed or a portal adjacency), with the correct write order.
  if (node_portal_[b] < 0) {
    for (EntityId pid : nodes_[b].partitions) {
      auto it = sources.find(pid);
      if (it == sources.end()) continue;
      for (const auto& [a, wa] : it->second) {
        // b's own seed (a == b) is assigned before the flat Dijkstra's main
        // loop ever runs, so it beats every equal-valued writer.
        double v = a == b ? wa
                          : wa + nodes_[a].point.PlanarDistanceTo(nodes_[b].point);
        exit.Offer(v, a == b ? -1.0 : wa, a, 0, /*direct=*/true, a, -1);
      }
    }
  }
  for (const PortalLink& link : LinksOf(b)) {
    double dt = tree.dist[link.portal];
    if (dt == kInf) continue;
    exit.Offer(dt + link.weight, dt, portal_nodes_[link.portal],
               tree.settle[link.portal], /*direct=*/false, -1, link.portal);
  }
  return exit;
}

RoutePlanner::ExitResolution RoutePlanner::ResolveExitMemoized(
    int a, int b, const PortalTree& tree) const {
  ExitResolution exit;
  if (NodesAdjacent(a, b)) {
    // The tree root pops first in the flat Dijkstra, so the direct edge wins
    // every tie: rank below any portal pop.
    double v = a == b ? 0.0 : nodes_[a].point.PlanarDistanceTo(nodes_[b].point);
    exit.Offer(v, -1.0, a, 0, /*direct=*/true, a, -1);
  }
  for (const PortalLink& link : LinksOf(b)) {
    double dt = tree.dist[link.portal];
    if (dt == kInf) continue;
    exit.Offer(dt + link.weight, dt, portal_nodes_[link.portal],
               tree.settle[link.portal], /*direct=*/false, -1, link.portal);
  }
  return exit;
}

bool RoutePlanner::BestCrossingContracted(
    const std::vector<std::pair<int, double>>& from_nodes,
    const std::vector<std::pair<int, double>>& to_nodes, BestPair* out) const {
  bool found = false;
  auto consider = [&](double total, int entry, int b, const ExitResolution& exit,
                      const std::shared_ptr<const PortalTree>& tree) {
    if (found && total >= out->total) return;
    found = true;
    out->total = total;
    out->entry = exit.direct ? exit.direct_entry : entry;
    out->exit = b;
    out->direct = exit.direct;
    out->exit_portal = exit.exit_portal;
    out->tree = nullptr;
    out->portal_tree = tree;
  };

  if (from_nodes.size() > options_.max_memoized_sources) {
    std::shared_ptr<const PortalTree> tree = ComputeHubPortalTree(from_nodes);
    SourceByPartition sources = GroupSourcesByPartition(from_nodes);
    for (const auto& [b, wb] : to_nodes) {
      ExitResolution exit = ResolveExitHub(b, *tree, sources);
      if (exit.value == kInf) continue;
      consider(exit.value + wb, -1, b, exit, tree);
    }
    return found;
  }

  // Memoized mode: one cached portal tree per source node, same loop order
  // and strict-improvement rule as the flat reference.
  for (const auto& [a, wa] : from_nodes) {
    std::shared_ptr<const PortalTree> tree = PortalTreeFrom(a);
    for (const auto& [b, wb] : to_nodes) {
      ExitResolution exit = ResolveExitMemoized(a, b, *tree);
      if (exit.value == kInf) continue;
      consider(wa + exit.value + wb, a, b, exit, tree);
    }
  }
  return found;
}

void RoutePlanner::UnpackChain(const BestPair& best, std::vector<int>* chain) const {
  const size_t start = chain->size();
  if (best.portal_tree == nullptr) {
    // Flat crossing: walk the tree back from the exit node to the root
    // (memoized mode) or the seeding local node (hub mode); both end at a -1
    // predecessor.
    for (int n = best.exit; n != -1; n = best.tree->prev[n]) chain->push_back(n);
    std::reverse(chain->begin() + static_cast<long>(start), chain->end());
    return;
  }
  if (best.direct) {
    chain->push_back(best.entry);
    if (best.exit != best.entry) chain->push_back(best.exit);
    return;
  }
  // Contracted crossing: walk the portal predecessors back to the seeded
  // root, then the root's entry node; every hop is a flat-graph edge, so the
  // unpacked chain is a full node path.
  for (int p = best.exit_portal; p != -1;) {
    chain->push_back(portal_nodes_[p]);
    int prev = best.portal_tree->prev[p];
    if (prev == -1) {
      int via = best.portal_tree->seed_node[p];
      if (via >= 0 && via != portal_nodes_[p]) chain->push_back(via);
      break;
    }
    p = prev;
  }
  std::reverse(chain->begin() + static_cast<long>(start), chain->end());
  if (chain->back() != best.exit) chain->push_back(best.exit);
}

Result<Route> RoutePlanner::FindRouteImpl(const geo::IndoorPoint& from,
                                          const geo::IndoorPoint& to,
                                          bool contracted) const {
  EntityId from_part = dsm_->PartitionAt(from);
  EntityId to_part = dsm_->PartitionAt(to);
  if (from_part == kInvalidEntity) {
    return Status::NotFound("route origin is outside every walkable partition");
  }
  if (to_part == kInvalidEntity) {
    return Status::NotFound("route target is outside every walkable partition");
  }

  // Same partition: straight line.
  if (from_part == to_part) {
    Route route;
    route.waypoints = {from, to};
    route.distance = from.PlanarDistanceTo(to);
    route.vertical_cost_per_floor = options_.vertical_cost_per_floor;
    return route;
  }

  BestPair best;
  bool found = contracted
                   ? BestCrossingContracted(LocalNodes(from), LocalNodes(to), &best)
                   : BestCrossing(LocalNodes(from), LocalNodes(to), &best);
  if (!found) {
    return Status::NotFound("no indoor path between the given points");
  }

  std::vector<int> chain;
  UnpackChain(best, &chain);

  Route route;
  route.waypoints.reserve(chain.size() + 2);
  route.waypoints.push_back(from);
  for (int n : chain) route.waypoints.push_back(nodes_[n].point);
  route.waypoints.push_back(to);
  route.distance = best.total;
  route.vertical_cost_per_floor = options_.vertical_cost_per_floor;
  return route;
}

double RoutePlanner::IndoorDistanceImpl(const geo::IndoorPoint& from,
                                        const geo::IndoorPoint& to,
                                        bool contracted) const {
  EntityId from_part = dsm_->PartitionAt(from);
  EntityId to_part = dsm_->PartitionAt(to);
  if (from_part == kInvalidEntity || to_part == kInvalidEntity) return kInf;
  if (from_part == to_part) return from.PlanarDistanceTo(to);
  BestPair best;
  bool found = contracted
                   ? BestCrossingContracted(LocalNodes(from), LocalNodes(to), &best)
                   : BestCrossing(LocalNodes(from), LocalNodes(to), &best);
  return found ? best.total : kInf;
}

std::vector<double> RoutePlanner::IndoorDistancesImpl(
    const geo::IndoorPoint& from, std::span<const geo::IndoorPoint> tos,
    bool contracted) const {
  std::vector<double> out(tos.size(), kInf);
  EntityId from_part = dsm_->PartitionAt(from);
  if (from_part == kInvalidEntity) return out;

  // Resolve the source side once: its local nodes and their shortest-path
  // trees (or, for a hub partition, one shared multi-seed tree — the same
  // mode BestCrossing would pick per query, so batch results equal the
  // single-query ones).
  std::vector<std::pair<int, double>> from_nodes = LocalNodes(from);
  bool hub = from_nodes.size() > options_.max_memoized_sources;

  // Flat reference resolution.
  std::shared_ptr<const SourceTree> flat_hub_tree;
  std::vector<std::shared_ptr<const SourceTree>> flat_trees;
  // Contracted resolution.
  std::shared_ptr<const PortalTree> portal_hub_tree;
  std::vector<std::shared_ptr<const PortalTree>> portal_trees;
  SourceByPartition src_by_partition;

  if (contracted) {
    if (hub) {
      portal_hub_tree = ComputeHubPortalTree(from_nodes);
      src_by_partition = GroupSourcesByPartition(from_nodes);
    } else {
      portal_trees.reserve(from_nodes.size());
      for (const auto& [a, wa] : from_nodes) portal_trees.push_back(PortalTreeFrom(a));
    }
  } else if (hub) {
    flat_hub_tree = std::make_shared<const SourceTree>(ComputeMultiSeedTree(from_nodes));
  } else {
    flat_trees.reserve(from_nodes.size());
    for (const auto& [a, wa] : from_nodes) flat_trees.push_back(TreeFrom(a));
  }

  // Targets cluster in few partitions, so the contracted exit resolution
  // (the same ResolveExit* the single-query crossing search runs) is
  // memoized per target partition for the duration of the batch: row-major
  // [ai][bj] graph distances, one row in hub mode. The cached values are
  // exactly the per-query ones, so batch results stay equal to single
  // queries by construction.
  std::map<EntityId, std::vector<double>> graph_cache;
  auto graph_row_for = [&](EntityId to_part,
                           const std::vector<int>& b_nodes) -> const std::vector<double>& {
    auto cached = graph_cache.find(to_part);
    if (cached != graph_cache.end()) return cached->second;
    std::vector<double>& row = graph_cache[to_part];
    if (hub) {
      row.reserve(b_nodes.size());
      for (int b : b_nodes) {
        row.push_back(ResolveExitHub(b, *portal_hub_tree, src_by_partition).value);
      }
    } else {
      row.reserve(from_nodes.size() * b_nodes.size());
      for (size_t ai = 0; ai < from_nodes.size(); ++ai) {
        for (int b : b_nodes) {
          row.push_back(
              ResolveExitMemoized(from_nodes[ai].first, b, *portal_trees[ai]).value);
        }
      }
    }
    return row;
  };

  for (size_t i = 0; i < tos.size(); ++i) {
    const geo::IndoorPoint& to = tos[i];
    EntityId to_part = dsm_->PartitionAt(to);
    if (to_part == kInvalidEntity) continue;
    if (to_part == from_part) {
      out[i] = from.PlanarDistanceTo(to);
      continue;
    }
    auto it = partition_nodes_.find(to_part);
    if (it == partition_nodes_.end()) continue;
    const std::vector<int>& b_nodes = it->second;
    const std::vector<double>* row = contracted ? &graph_row_for(to_part, b_nodes)
                                                : nullptr;
    double best = kInf;
    if (hub) {
      for (size_t bi = 0; bi < b_nodes.size(); ++bi) {
        int b = b_nodes[bi];
        double graph = contracted ? (*row)[bi] : flat_hub_tree->dist[b];
        if (graph == kInf) continue;
        double total = graph + nodes_[b].point.PlanarDistanceTo(to);
        if (total < best) best = total;
      }
    } else {
      for (size_t ai = 0; ai < from_nodes.size(); ++ai) {
        const auto& [a, wa] = from_nodes[ai];
        for (size_t bi = 0; bi < b_nodes.size(); ++bi) {
          int b = b_nodes[bi];
          double graph = contracted ? (*row)[ai * b_nodes.size() + bi]
                                    : flat_trees[ai]->dist[b];
          if (graph == kInf) continue;
          double wb = nodes_[b].point.PlanarDistanceTo(to);
          double total = wa + graph + wb;
          if (total < best) best = total;
        }
      }
    }
    out[i] = best;
  }
  return out;
}

Result<Route> RoutePlanner::FindRoute(const geo::IndoorPoint& from,
                                      const geo::IndoorPoint& to) const {
  return FindRouteImpl(from, to, use_contraction_);
}

Result<Route> RoutePlanner::FindRouteFlat(const geo::IndoorPoint& from,
                                          const geo::IndoorPoint& to) const {
  return FindRouteImpl(from, to, /*contracted=*/false);
}

double RoutePlanner::IndoorDistance(const geo::IndoorPoint& from,
                                    const geo::IndoorPoint& to) const {
  return IndoorDistanceImpl(from, to, use_contraction_);
}

double RoutePlanner::IndoorDistanceFlat(const geo::IndoorPoint& from,
                                        const geo::IndoorPoint& to) const {
  return IndoorDistanceImpl(from, to, /*contracted=*/false);
}

std::vector<double> RoutePlanner::IndoorDistances(
    const geo::IndoorPoint& from, std::span<const geo::IndoorPoint> tos) const {
  return IndoorDistancesImpl(from, tos, use_contraction_);
}

std::vector<double> RoutePlanner::IndoorDistancesFlat(
    const geo::IndoorPoint& from, std::span<const geo::IndoorPoint> tos) const {
  return IndoorDistancesImpl(from, tos, /*contracted=*/false);
}

bool RoutePlanner::Reachable(const geo::IndoorPoint& from,
                             const geo::IndoorPoint& to) const {
  return IndoorDistance(from, to) != kInf;
}

bool RoutePlanner::ReachableFlat(const geo::IndoorPoint& from,
                                 const geo::IndoorPoint& to) const {
  return IndoorDistanceFlat(from, to) != kInf;
}

void RoutePlanner::set_contraction_enabled(bool enabled) {
  if (use_contraction_ == enabled) return;
  use_contraction_ = enabled;
  ClearCache();
}

size_t RoutePlanner::cache_hits() const {
  return cache_ != nullptr ? cache_->hits.load(std::memory_order_relaxed) : 0;
}

size_t RoutePlanner::cache_misses() const {
  return cache_ != nullptr ? cache_->misses.load(std::memory_order_relaxed) : 0;
}

size_t RoutePlanner::cache_evictions() const {
  return cache_ != nullptr ? cache_->evictions.load(std::memory_order_relaxed)
                           : 0;
}

size_t RoutePlanner::cache_size() const {
  if (cache_ == nullptr) return 0;
  return cache_->flat.Size() + cache_->portal.Size();
}

void RoutePlanner::ClearCache() const {
  if (cache_ == nullptr) return;
  cache_->flat.Clear();
  cache_->portal.Clear();
  cache_->hits.store(0, std::memory_order_relaxed);
  cache_->misses.store(0, std::memory_order_relaxed);
  cache_->evictions.store(0, std::memory_order_relaxed);
}

}  // namespace trips::dsm
