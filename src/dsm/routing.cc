#include "dsm/routing.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

namespace trips::dsm {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

geo::IndoorPoint Route::PointAtDistance(double d) const {
  if (waypoints.empty()) return {};
  if (d <= 0) return waypoints.front();
  double acc = 0;
  for (size_t i = 1; i < waypoints.size(); ++i) {
    const geo::IndoorPoint& a = waypoints[i - 1];
    const geo::IndoorPoint& b = waypoints[i];
    double leg;
    if (a.floor == b.floor) {
      leg = a.PlanarDistanceTo(b);
    } else {
      // Vertical transition: cost was charged by the planner; approximate its
      // walking length with the floor change. Position jumps at the midpoint.
      leg = 15.0 * std::abs(a.floor - b.floor);
      if (d <= acc + leg) {
        return (d - acc) < leg / 2 ? a : b;
      }
      acc += leg;
      continue;
    }
    if (d <= acc + leg && leg > 0) {
      double t = (d - acc) / leg;
      return {a.xy + (b.xy - a.xy) * t, a.floor};
    }
    acc += leg;
  }
  return waypoints.back();
}

Result<RoutePlanner> RoutePlanner::Build(const Dsm* dsm, RoutePlannerOptions options) {
  if (dsm == nullptr) return Status::InvalidArgument("dsm is null");
  if (!dsm->topology_computed()) {
    return Status::FailedPrecondition("DSM topology not computed");
  }
  RoutePlanner planner;
  planner.dsm_ = dsm;
  planner.options_ = options;

  const Topology& topo = dsm->topology();

  // One node per door, belonging to all partitions the door connects.
  std::map<EntityId, int> door_node;
  for (const auto& [door_id, partitions] : topo.door_partitions) {
    const Entity* door = dsm->GetEntity(door_id);
    if (door == nullptr || partitions.empty()) continue;
    Node node;
    node.point = door->IndoorCenter();
    node.partitions = partitions;
    door_node[door_id] = static_cast<int>(planner.nodes_.size());
    planner.nodes_.push_back(std::move(node));
  }
  // One node per partition-overlap portal (crossing corridors etc.),
  // belonging to both overlapping partitions.
  for (const Topology::Overlap& ov : topo.partition_overlaps) {
    const Entity* ea = dsm->GetEntity(ov.a);
    if (ea == nullptr) continue;
    Node node;
    node.point = {ov.portal, ea->floor};
    node.partitions = {ov.a, ov.b};
    planner.nodes_.push_back(std::move(node));
  }
  // One node per vertical connector endpoint (its own partition).
  std::map<EntityId, int> vertical_node;
  for (const auto& [a, b] : topo.vertical_links) {
    for (EntityId vid : {a, b}) {
      if (vertical_node.count(vid)) continue;
      const Entity* v = dsm->GetEntity(vid);
      if (v == nullptr) continue;
      Node node;
      node.point = v->IndoorCenter();
      node.partitions = {vid};
      vertical_node[vid] = static_cast<int>(planner.nodes_.size());
      planner.nodes_.push_back(std::move(node));
    }
  }

  planner.adjacency_.resize(planner.nodes_.size());
  for (size_t i = 0; i < planner.nodes_.size(); ++i) {
    for (EntityId pid : planner.nodes_[i].partitions) {
      planner.partition_nodes_[pid].push_back(static_cast<int>(i));
    }
  }

  // Intra-partition edges: nodes sharing a partition connect with planar
  // distance (partitions are convex-ish rooms/hallways in floorplans).
  for (const auto& [pid, node_ids] : planner.partition_nodes_) {
    for (size_t i = 0; i < node_ids.size(); ++i) {
      for (size_t j = i + 1; j < node_ids.size(); ++j) {
        int a = node_ids[i];
        int b = node_ids[j];
        double w = planner.nodes_[a].point.PlanarDistanceTo(planner.nodes_[b].point);
        planner.AddEdge(a, b, w);
      }
    }
  }
  // Vertical edges between linked connector endpoints.
  for (const auto& [a, b] : topo.vertical_links) {
    auto ia = vertical_node.find(a);
    auto ib = vertical_node.find(b);
    if (ia == vertical_node.end() || ib == vertical_node.end()) continue;
    const Entity* ea = dsm->GetEntity(a);
    const Entity* eb = dsm->GetEntity(b);
    double w = options.vertical_cost_per_floor * std::abs(ea->floor - eb->floor);
    planner.AddEdge(ia->second, ib->second, w);
  }
  // A vertical connector is itself a walkable partition that may carry doors;
  // nothing further needed: door nodes listing it as a partition already link.

  return planner;
}

void RoutePlanner::AddEdge(int a, int b, double w) {
  adjacency_[a].push_back({b, w});
  adjacency_[b].push_back({a, w});
}

std::vector<std::pair<int, double>> RoutePlanner::LocalNodes(
    const geo::IndoorPoint& p) const {
  std::vector<std::pair<int, double>> out;
  EntityId pid = dsm_->PartitionAt(p);
  if (pid == kInvalidEntity) return out;
  auto it = partition_nodes_.find(pid);
  if (it == partition_nodes_.end()) return out;
  for (int node : it->second) {
    out.emplace_back(node, nodes_[node].point.PlanarDistanceTo(p));
  }
  return out;
}

Result<Route> RoutePlanner::FindRoute(const geo::IndoorPoint& from,
                                      const geo::IndoorPoint& to) const {
  EntityId from_part = dsm_->PartitionAt(from);
  EntityId to_part = dsm_->PartitionAt(to);
  if (from_part == kInvalidEntity) {
    return Status::NotFound("route origin is outside every walkable partition");
  }
  if (to_part == kInvalidEntity) {
    return Status::NotFound("route target is outside every walkable partition");
  }

  // Same partition: straight line.
  if (from_part == to_part) {
    Route route;
    route.waypoints = {from, to};
    route.distance = from.PlanarDistanceTo(to);
    return route;
  }

  // Dijkstra from virtual source (links to nodes in from's partition) to any
  // node in to's partition, then down to `to`.
  std::vector<double> dist(nodes_.size(), kInf);
  std::vector<int> prev(nodes_.size(), -1);
  using QItem = std::pair<double, int>;
  std::priority_queue<QItem, std::vector<QItem>, std::greater<>> queue;
  for (const auto& [node, w] : LocalNodes(from)) {
    if (w < dist[node]) {
      dist[node] = w;
      queue.push({w, node});
    }
  }
  while (!queue.empty()) {
    auto [d, u] = queue.top();
    queue.pop();
    if (d > dist[u]) continue;
    for (const Edge& e : adjacency_[u]) {
      double nd = d + e.weight;
      if (nd < dist[e.to]) {
        dist[e.to] = nd;
        prev[e.to] = u;
        queue.push({nd, e.to});
      }
    }
  }

  int best_exit = -1;
  double best_total = kInf;
  for (const auto& [node, w] : LocalNodes(to)) {
    if (dist[node] + w < best_total) {
      best_total = dist[node] + w;
      best_exit = node;
    }
  }
  if (best_exit < 0) {
    return Status::NotFound("no indoor path between the given points");
  }

  std::vector<int> chain;
  for (int n = best_exit; n != -1; n = prev[n]) chain.push_back(n);
  std::reverse(chain.begin(), chain.end());

  Route route;
  route.waypoints.push_back(from);
  for (int n : chain) route.waypoints.push_back(nodes_[n].point);
  route.waypoints.push_back(to);
  route.distance = best_total;
  return route;
}

double RoutePlanner::IndoorDistance(const geo::IndoorPoint& from,
                                    const geo::IndoorPoint& to) const {
  Result<Route> r = FindRoute(from, to);
  return r.ok() ? r->distance : kInf;
}

bool RoutePlanner::Reachable(const geo::IndoorPoint& from,
                             const geo::IndoorPoint& to) const {
  return FindRoute(from, to).ok();
}

}  // namespace trips::dsm
