#include "dsm/routing.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <list>
#include <mutex>
#include <queue>
#include <unordered_map>

namespace trips::dsm {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

geo::IndoorPoint Route::PointAtDistance(double d) const {
  if (waypoints.empty()) return {};
  if (d <= 0) return waypoints.front();
  double acc = 0;
  for (size_t i = 1; i < waypoints.size(); ++i) {
    const geo::IndoorPoint& a = waypoints[i - 1];
    const geo::IndoorPoint& b = waypoints[i];
    double leg;
    if (a.floor == b.floor) {
      leg = a.PlanarDistanceTo(b);
    } else {
      // Vertical transition: cost was charged by the planner; approximate its
      // walking length with the floor change. Position jumps at the midpoint.
      leg = 15.0 * std::abs(a.floor - b.floor);
      if (d <= acc + leg) {
        return (d - acc) < leg / 2 ? a : b;
      }
      acc += leg;
      continue;
    }
    if (d <= acc + leg && leg > 0) {
      double t = (d - acc) / leg;
      return {a.xy + (b.xy - a.xy) * t, a.floor};
    }
    acc += leg;
  }
  return waypoints.back();
}

// Bounded LRU of per-source-node shortest-path trees. Internally locked: the
// planner is shared by concurrent translation workers.
struct RoutePlanner::TreeCache {
  explicit TreeCache(size_t cap) : capacity(cap) {}

  const size_t capacity;
  std::mutex mu;
  std::list<int> order;  // front = most recently used
  std::unordered_map<int,
                     std::pair<std::list<int>::iterator,
                               std::shared_ptr<const SourceTree>>>
      entries;
  std::atomic<size_t> hits{0};
  std::atomic<size_t> misses{0};
};

Result<RoutePlanner> RoutePlanner::Build(const Dsm* dsm, RoutePlannerOptions options) {
  if (dsm == nullptr) return Status::InvalidArgument("dsm is null");
  if (!dsm->topology_computed()) {
    return Status::FailedPrecondition("DSM topology not computed");
  }
  RoutePlanner planner;
  planner.dsm_ = dsm;
  planner.options_ = options;
  planner.cache_ = std::make_shared<TreeCache>(options.route_cache_capacity);

  const Topology& topo = dsm->topology();

  // One node per door, belonging to all partitions the door connects.
  std::map<EntityId, int> door_node;
  for (const auto& [door_id, partitions] : topo.door_partitions) {
    const Entity* door = dsm->GetEntity(door_id);
    if (door == nullptr || partitions.empty()) continue;
    Node node;
    node.point = door->IndoorCenter();
    node.partitions = partitions;
    door_node[door_id] = static_cast<int>(planner.nodes_.size());
    planner.nodes_.push_back(std::move(node));
  }
  // One node per partition-overlap portal (crossing corridors etc.),
  // belonging to both overlapping partitions.
  for (const Topology::Overlap& ov : topo.partition_overlaps) {
    const Entity* ea = dsm->GetEntity(ov.a);
    if (ea == nullptr) continue;
    Node node;
    node.point = {ov.portal, ea->floor};
    node.partitions = {ov.a, ov.b};
    planner.nodes_.push_back(std::move(node));
  }
  // One node per vertical connector endpoint (its own partition).
  std::map<EntityId, int> vertical_node;
  for (const auto& [a, b] : topo.vertical_links) {
    for (EntityId vid : {a, b}) {
      if (vertical_node.count(vid)) continue;
      const Entity* v = dsm->GetEntity(vid);
      if (v == nullptr) continue;
      Node node;
      node.point = v->IndoorCenter();
      node.partitions = {vid};
      vertical_node[vid] = static_cast<int>(planner.nodes_.size());
      planner.nodes_.push_back(std::move(node));
    }
  }

  planner.adjacency_.resize(planner.nodes_.size());
  for (size_t i = 0; i < planner.nodes_.size(); ++i) {
    for (EntityId pid : planner.nodes_[i].partitions) {
      planner.partition_nodes_[pid].push_back(static_cast<int>(i));
    }
  }

  // Intra-partition edges: nodes sharing a partition connect with planar
  // distance (partitions are convex-ish rooms/hallways in floorplans).
  for (const auto& [pid, node_ids] : planner.partition_nodes_) {
    for (size_t i = 0; i < node_ids.size(); ++i) {
      for (size_t j = i + 1; j < node_ids.size(); ++j) {
        int a = node_ids[i];
        int b = node_ids[j];
        double w = planner.nodes_[a].point.PlanarDistanceTo(planner.nodes_[b].point);
        planner.AddEdge(a, b, w);
      }
    }
  }
  // Vertical edges between linked connector endpoints.
  for (const auto& [a, b] : topo.vertical_links) {
    auto ia = vertical_node.find(a);
    auto ib = vertical_node.find(b);
    if (ia == vertical_node.end() || ib == vertical_node.end()) continue;
    const Entity* ea = dsm->GetEntity(a);
    const Entity* eb = dsm->GetEntity(b);
    double w = options.vertical_cost_per_floor * std::abs(ea->floor - eb->floor);
    planner.AddEdge(ia->second, ib->second, w);
  }
  // A vertical connector is itself a walkable partition that may carry doors;
  // nothing further needed: door nodes listing it as a partition already link.

  return planner;
}

void RoutePlanner::AddEdge(int a, int b, double w) {
  adjacency_[a].push_back({b, w});
  adjacency_[b].push_back({a, w});
}

std::vector<std::pair<int, double>> RoutePlanner::LocalNodes(
    const geo::IndoorPoint& p) const {
  std::vector<std::pair<int, double>> out;
  EntityId pid = dsm_->PartitionAt(p);
  if (pid == kInvalidEntity) return out;
  auto it = partition_nodes_.find(pid);
  if (it == partition_nodes_.end()) return out;
  for (int node : it->second) {
    out.emplace_back(node, nodes_[node].point.PlanarDistanceTo(p));
  }
  return out;
}

RoutePlanner::SourceTree RoutePlanner::ComputeTree(int source) const {
  return ComputeMultiSeedTree({{source, 0.0}});
}

RoutePlanner::SourceTree RoutePlanner::ComputeMultiSeedTree(
    const std::vector<std::pair<int, double>>& seeds) const {
  SourceTree tree;
  tree.dist.assign(nodes_.size(), kInf);
  tree.prev.assign(nodes_.size(), -1);
  using QItem = std::pair<double, int>;
  std::priority_queue<QItem, std::vector<QItem>, std::greater<>> queue;
  for (const auto& [node, w] : seeds) {
    if (w < tree.dist[node]) {
      tree.dist[node] = w;
      queue.push({w, node});
    }
  }
  while (!queue.empty()) {
    auto [d, u] = queue.top();
    queue.pop();
    if (d > tree.dist[u]) continue;
    for (const Edge& e : adjacency_[u]) {
      double nd = d + e.weight;
      if (nd < tree.dist[e.to]) {
        tree.dist[e.to] = nd;
        tree.prev[e.to] = u;
        queue.push({nd, e.to});
      }
    }
  }
  return tree;
}

std::shared_ptr<const RoutePlanner::SourceTree> RoutePlanner::TreeFrom(
    int source) const {
  if (cache_ == nullptr || cache_->capacity == 0) {
    return std::make_shared<const SourceTree>(ComputeTree(source));
  }
  {
    std::lock_guard<std::mutex> lock(cache_->mu);
    auto it = cache_->entries.find(source);
    if (it != cache_->entries.end()) {
      cache_->order.splice(cache_->order.begin(), cache_->order, it->second.first);
      cache_->hits.fetch_add(1, std::memory_order_relaxed);
      return it->second.second;
    }
  }
  cache_->misses.fetch_add(1, std::memory_order_relaxed);
  auto tree = std::make_shared<const SourceTree>(ComputeTree(source));
  std::lock_guard<std::mutex> lock(cache_->mu);
  auto it = cache_->entries.find(source);
  if (it != cache_->entries.end()) {
    // Another worker computed the same tree while we did; keep theirs.
    cache_->order.splice(cache_->order.begin(), cache_->order, it->second.first);
    return it->second.second;
  }
  cache_->order.push_front(source);
  cache_->entries.emplace(source, std::make_pair(cache_->order.begin(), tree));
  while (cache_->entries.size() > cache_->capacity) {
    cache_->entries.erase(cache_->order.back());
    cache_->order.pop_back();
  }
  return tree;
}

bool RoutePlanner::BestCrossing(
    const std::vector<std::pair<int, double>>& from_nodes,
    const std::vector<std::pair<int, double>>& to_nodes, BestPair* out) const {
  bool found = false;
  if (from_nodes.size() > options_.max_memoized_sources) {
    // Hub-partition mode: one multi-seed Dijkstra for the whole query instead
    // of one tree per source node (a corridor can carry a node per shop).
    auto tree = std::make_shared<const SourceTree>(ComputeMultiSeedTree(from_nodes));
    for (const auto& [b, wb] : to_nodes) {
      double graph = tree->dist[b];
      if (graph == kInf) continue;
      double total = graph + wb;
      if (!found || total < out->total) {
        found = true;
        out->total = total;
        out->entry = -1;
        out->exit = b;
        out->tree = tree;
      }
    }
    return found;
  }
  // Memoized mode. Entry nodes ascending, exit nodes ascending, strict
  // improvement: the winning pair is the lexicographic minimum among equal
  // totals, independent of cache state.
  for (const auto& [a, wa] : from_nodes) {
    std::shared_ptr<const SourceTree> tree = TreeFrom(a);
    for (const auto& [b, wb] : to_nodes) {
      double graph = tree->dist[b];
      if (graph == kInf) continue;
      double total = wa + graph + wb;
      if (!found || total < out->total) {
        found = true;
        out->total = total;
        out->entry = a;
        out->exit = b;
        out->tree = tree;
      }
    }
  }
  return found;
}

Result<Route> RoutePlanner::FindRoute(const geo::IndoorPoint& from,
                                      const geo::IndoorPoint& to) const {
  EntityId from_part = dsm_->PartitionAt(from);
  EntityId to_part = dsm_->PartitionAt(to);
  if (from_part == kInvalidEntity) {
    return Status::NotFound("route origin is outside every walkable partition");
  }
  if (to_part == kInvalidEntity) {
    return Status::NotFound("route target is outside every walkable partition");
  }

  // Same partition: straight line.
  if (from_part == to_part) {
    Route route;
    route.waypoints = {from, to};
    route.distance = from.PlanarDistanceTo(to);
    return route;
  }

  BestPair best;
  if (!BestCrossing(LocalNodes(from), LocalNodes(to), &best)) {
    return Status::NotFound("no indoor path between the given points");
  }

  // Walk the tree back from the exit node to the entry node (the tree root,
  // whose prev is -1).
  std::vector<int> chain;
  for (int n = best.exit; n != -1; n = best.tree->prev[n]) chain.push_back(n);
  std::reverse(chain.begin(), chain.end());

  Route route;
  route.waypoints.reserve(chain.size() + 2);
  route.waypoints.push_back(from);
  for (int n : chain) route.waypoints.push_back(nodes_[n].point);
  route.waypoints.push_back(to);
  route.distance = best.total;
  return route;
}

double RoutePlanner::IndoorDistance(const geo::IndoorPoint& from,
                                    const geo::IndoorPoint& to) const {
  EntityId from_part = dsm_->PartitionAt(from);
  EntityId to_part = dsm_->PartitionAt(to);
  if (from_part == kInvalidEntity || to_part == kInvalidEntity) return kInf;
  if (from_part == to_part) return from.PlanarDistanceTo(to);
  BestPair best;
  if (!BestCrossing(LocalNodes(from), LocalNodes(to), &best)) return kInf;
  return best.total;
}

std::vector<double> RoutePlanner::IndoorDistances(
    const geo::IndoorPoint& from, std::span<const geo::IndoorPoint> tos) const {
  std::vector<double> out(tos.size(), kInf);
  EntityId from_part = dsm_->PartitionAt(from);
  if (from_part == kInvalidEntity) return out;

  // Resolve the source side once: its local nodes and their trees (or, for a
  // hub partition, one shared multi-seed tree — the same mode BestCrossing
  // would pick per query, so batch results equal the single-query ones).
  std::vector<std::pair<int, double>> from_nodes = LocalNodes(from);
  bool hub = from_nodes.size() > options_.max_memoized_sources;
  std::shared_ptr<const SourceTree> hub_tree;
  std::vector<std::shared_ptr<const SourceTree>> trees;
  if (hub) {
    hub_tree = std::make_shared<const SourceTree>(ComputeMultiSeedTree(from_nodes));
  } else {
    trees.reserve(from_nodes.size());
    for (const auto& [a, wa] : from_nodes) trees.push_back(TreeFrom(a));
  }

  for (size_t i = 0; i < tos.size(); ++i) {
    const geo::IndoorPoint& to = tos[i];
    EntityId to_part = dsm_->PartitionAt(to);
    if (to_part == kInvalidEntity) continue;
    if (to_part == from_part) {
      out[i] = from.PlanarDistanceTo(to);
      continue;
    }
    auto it = partition_nodes_.find(to_part);
    if (it == partition_nodes_.end()) continue;
    double best = kInf;
    if (hub) {
      for (int b : it->second) {
        double graph = hub_tree->dist[b];
        if (graph == kInf) continue;
        double total = graph + nodes_[b].point.PlanarDistanceTo(to);
        if (total < best) best = total;
      }
    } else {
      for (size_t ai = 0; ai < from_nodes.size(); ++ai) {
        const auto& [a, wa] = from_nodes[ai];
        const SourceTree& tree = *trees[ai];
        for (int b : it->second) {
          double graph = tree.dist[b];
          if (graph == kInf) continue;
          double wb = nodes_[b].point.PlanarDistanceTo(to);
          double total = wa + graph + wb;
          if (total < best) best = total;
        }
      }
    }
    out[i] = best;
  }
  return out;
}

bool RoutePlanner::Reachable(const geo::IndoorPoint& from,
                             const geo::IndoorPoint& to) const {
  return IndoorDistance(from, to) != kInf;
}

size_t RoutePlanner::cache_hits() const {
  return cache_ != nullptr ? cache_->hits.load(std::memory_order_relaxed) : 0;
}

size_t RoutePlanner::cache_misses() const {
  return cache_ != nullptr ? cache_->misses.load(std::memory_order_relaxed) : 0;
}

size_t RoutePlanner::cache_size() const {
  if (cache_ == nullptr) return 0;
  std::lock_guard<std::mutex> lock(cache_->mu);
  return cache_->entries.size();
}

}  // namespace trips::dsm
