#include "dsm/spatial_index.h"

#include <algorithm>
#include <cmath>

namespace trips::dsm {

namespace {

// Polygon::Contains treats points within 1e-7 of the boundary as inside, so a
// containing shape's true extent exceeds its vertex bounding box by up to that
// epsilon. Shape bounds (and the grid they are bucketed into) are padded by a
// strictly larger margin so no boundary-epsilon hit can fall outside its cell.
constexpr double kBoundsPad = 1e-6;

geo::BoundingBox PaddedBounds(const geo::Polygon& poly) {
  geo::BoundingBox box = poly.Bounds();
  if (!box.Empty()) {
    box.min.x -= kBoundsPad;
    box.min.y -= kBoundsPad;
    box.max.x += kBoundsPad;
    box.max.y += kBoundsPad;
  }
  return box;
}

}  // namespace

int SpatialIndex::FloorGrid::CellX(double x) const {
  int ix = static_cast<int>(std::floor((x - origin.x) * inv_cell));
  return std::clamp(ix, 0, nx - 1);
}

int SpatialIndex::FloorGrid::CellY(double y) const {
  int iy = static_cast<int>(std::floor((y - origin.y) * inv_cell));
  return std::clamp(iy, 0, ny - 1);
}

void SpatialIndex::Clear() {
  grids_.clear();
  partition_region_candidates_.clear();
  probes_.reset();
  built_ = false;
}

void SpatialIndex::Build(const std::vector<Entity>& entities,
                         const std::vector<SemanticRegion>& regions,
                         const SpatialIndexOptions& options) {
  Clear();

  // Group indexable shapes by floor, preserving id order within each floor.
  std::vector<geo::FloorId> floor_ids;
  auto note_floor = [&floor_ids](geo::FloorId f) {
    if (std::find(floor_ids.begin(), floor_ids.end(), f) == floor_ids.end()) {
      floor_ids.push_back(f);
    }
  };
  for (const Entity& e : entities) {
    if (IsWalkableKind(e.kind)) note_floor(e.floor);
  }
  for (const SemanticRegion& r : regions) note_floor(r.floor);
  std::sort(floor_ids.begin(), floor_ids.end());

  grids_.reserve(floor_ids.size());
  for (geo::FloorId floor : floor_ids) {
    FloorGrid grid;
    grid.floor = floor;

    geo::BoundingBox extent;
    for (const Entity& e : entities) {
      if (!IsWalkableKind(e.kind) || e.floor != floor) continue;
      Shape shape;
      shape.id = e.id;
      shape.area = e.shape.AbsArea();
      shape.bounds = PaddedBounds(e.shape);
      shape.polygon = e.shape;
      extent.Extend(shape.bounds);
      grid.partitions.push_back(std::move(shape));
    }
    for (const SemanticRegion& r : regions) {
      if (r.floor != floor) continue;
      Shape shape;
      shape.id = r.id;
      shape.area = r.shape.AbsArea();
      shape.bounds = PaddedBounds(r.shape);
      shape.polygon = r.shape;
      extent.Extend(shape.bounds);
      grid.regions.push_back(std::move(shape));
    }
    // Walkable boundary edges, in brute-force traversal order.
    for (const Shape& part : grid.partitions) {
      for (const geo::Segment& edge : part.polygon.Edges()) {
        grid.edges.push_back(edge);
      }
    }
    if (extent.Empty()) extent.Extend({0, 0});

    // Cell size targeting ~one shape per cell: the mean shape footprint,
    // clamped to the configured band and to the per-axis cell cap.
    size_t shapes = grid.partitions.size() + grid.regions.size();
    double floor_area =
        std::max(1.0, extent.Width() * extent.Height());
    double cell = std::sqrt(floor_area / static_cast<double>(std::max<size_t>(shapes, 1)));
    cell = std::clamp(cell, options.min_cell_size, options.max_cell_size);
    double min_cell_x = extent.Width() / options.max_cells_per_axis;
    double min_cell_y = extent.Height() / options.max_cells_per_axis;
    cell = std::max({cell, min_cell_x, min_cell_y});

    grid.origin = extent.min;
    grid.cell = cell;
    grid.inv_cell = 1.0 / cell;
    grid.nx = std::max(1, static_cast<int>(std::ceil(extent.Width() / cell)));
    grid.ny = std::max(1, static_cast<int>(std::ceil(extent.Height() / cell)));

    // Bucket builder: two-pass CSR fill over per-item cell ranges. Items are
    // appended in index order, so each cell's list stays ascending.
    size_t cells = static_cast<size_t>(grid.nx) * static_cast<size_t>(grid.ny);
    auto build_buckets = [&grid, cells](auto item_count, auto bounds_of) {
      Buckets buckets;
      buckets.offsets.assign(cells + 1, 0);
      auto cell_range = [&grid, &bounds_of](int32_t item, int* x0, int* x1,
                                            int* y0, int* y1) {
        geo::BoundingBox box = bounds_of(item);
        *x0 = grid.CellX(box.min.x);
        *x1 = grid.CellX(box.max.x);
        *y0 = grid.CellY(box.min.y);
        *y1 = grid.CellY(box.max.y);
      };
      for (int32_t item = 0; item < item_count; ++item) {
        int x0, x1, y0, y1;
        cell_range(item, &x0, &x1, &y0, &y1);
        for (int iy = y0; iy <= y1; ++iy) {
          for (int ix = x0; ix <= x1; ++ix) {
            ++buckets.offsets[grid.CellIndex(ix, iy) + 1];
          }
        }
      }
      for (size_t c = 1; c <= cells; ++c) buckets.offsets[c] += buckets.offsets[c - 1];
      buckets.items.resize(buckets.offsets[cells]);
      std::vector<uint32_t> cursor(buckets.offsets.begin(), buckets.offsets.end() - 1);
      for (int32_t item = 0; item < item_count; ++item) {
        int x0, x1, y0, y1;
        cell_range(item, &x0, &x1, &y0, &y1);
        for (int iy = y0; iy <= y1; ++iy) {
          for (int ix = x0; ix <= x1; ++ix) {
            buckets.items[cursor[grid.CellIndex(ix, iy)]++] = item;
          }
        }
      }
      return buckets;
    };

    grid.partition_cells = build_buckets(
        static_cast<int32_t>(grid.partitions.size()),
        [&grid](int32_t i) { return grid.partitions[i].bounds; });
    grid.region_cells = build_buckets(
        static_cast<int32_t>(grid.regions.size()),
        [&grid](int32_t i) { return grid.regions[i].bounds; });
    grid.edge_cells = build_buckets(
        static_cast<int32_t>(grid.edges.size()), [&grid](int32_t i) {
          geo::BoundingBox box;
          box.Extend(grid.edges[i].a);
          box.Extend(grid.edges[i].b);
          return box;
        });

    // first_edge_ring: exact chessboard distance transform to the nearest
    // non-empty edge-bucket cell (two-pass chamfer; the 8-neighbour unit mask
    // is exact for the Chebyshev metric). Seeds the batched snap's ring
    // searches past the rings that cannot contain a candidate.
    {
      constexpr int kFar = 0xFFFF;
      std::vector<int> dist(cells, kFar);
      for (size_t c = 0; c < cells; ++c) {
        if (grid.edge_cells.offsets[c + 1] > grid.edge_cells.offsets[c]) {
          dist[c] = 0;
        }
      }
      auto relax = [&dist, &grid](int ix, int iy, int from_x, int from_y) {
        if (from_x < 0 || from_x >= grid.nx || from_y < 0 || from_y >= grid.ny)
          return;
        int& d = dist[grid.CellIndex(ix, iy)];
        d = std::min(d, dist[grid.CellIndex(from_x, from_y)] + 1);
      };
      for (int iy = 0; iy < grid.ny; ++iy) {
        for (int ix = 0; ix < grid.nx; ++ix) {
          relax(ix, iy, ix - 1, iy);
          relax(ix, iy, ix - 1, iy - 1);
          relax(ix, iy, ix, iy - 1);
          relax(ix, iy, ix + 1, iy - 1);
        }
      }
      for (int iy = grid.ny - 1; iy >= 0; --iy) {
        for (int ix = grid.nx - 1; ix >= 0; --ix) {
          relax(ix, iy, ix + 1, iy);
          relax(ix, iy, ix + 1, iy + 1);
          relax(ix, iy, ix, iy + 1);
          relax(ix, iy, ix - 1, iy + 1);
        }
      }
      grid.first_edge_ring.resize(cells);
      for (size_t c = 0; c < cells; ++c) {
        grid.first_edge_ring[c] =
            static_cast<uint16_t>(std::min(dist[c], kFar));
      }
    }

    grids_.push_back(std::move(grid));
  }

  // Walkable partition -> candidate regions (bounding boxes intersect). Any
  // region containing a point of the partition must appear here: the point
  // lies in both padded boxes, so they intersect.
  partition_region_candidates_.assign(entities.size(), {});
  for (const FloorGrid& grid : grids_) {
    for (const Shape& part : grid.partitions) {
      std::vector<RegionId>& candidates =
          partition_region_candidates_[static_cast<size_t>(part.id)];
      for (const Shape& region : grid.regions) {
        if (part.bounds.Intersects(region.bounds)) candidates.push_back(region.id);
      }
    }
  }

  probes_ = std::make_shared<ProbeCounters>();
  built_ = true;
}

const SpatialIndex::FloorGrid* SpatialIndex::GridFor(geo::FloorId floor) const {
  auto it = std::lower_bound(
      grids_.begin(), grids_.end(), floor,
      [](const FloorGrid& g, geo::FloorId f) { return g.floor < f; });
  if (it == grids_.end() || it->floor != floor) return nullptr;
  return &*it;
}

SpatialProbeStats SpatialIndex::probes() const {
  SpatialProbeStats out;
  if (probes_ == nullptr) return out;
  out.partition_probes = probes_->partition_probes.Value();
  out.region_probes = probes_->region_probes.Value();
  out.snap_probes = probes_->snap_probes.Value();
  out.snapped_outside = probes_->snapped_outside.Value();
  return out;
}

void SpatialIndex::ResetProbes() const {
  if (probes_ == nullptr) return;
  probes_->partition_probes.Reset();
  probes_->region_probes.Reset();
  probes_->snap_probes.Reset();
  probes_->snapped_outside.Reset();
}

EntityId SpatialIndex::PartitionAt(const geo::IndoorPoint& p) const {
  if (probes_ != nullptr) probes_->partition_probes.Add(1);
  const FloorGrid* grid = GridFor(p.floor);
  if (grid == nullptr || grid->partitions.empty()) return kInvalidEntity;
  int cell = grid->CellIndex(grid->CellX(p.xy.x), grid->CellY(p.xy.y));
  EntityId best = kInvalidEntity;
  double best_area = 1e300;
  uint32_t begin = grid->partition_cells.offsets[cell];
  uint32_t end = grid->partition_cells.offsets[cell + 1];
  for (uint32_t i = begin; i < end; ++i) {
    const Shape& shape = grid->partitions[grid->partition_cells.items[i]];
    if (shape.area >= best_area) continue;
    if (shape.bounds.Contains(p.xy) && shape.polygon.Contains(p.xy)) {
      best_area = shape.area;
      best = shape.id;
    }
  }
  return best;
}

RegionId SpatialIndex::RegionAt(const geo::IndoorPoint& p) const {
  if (probes_ != nullptr) probes_->region_probes.Add(1);
  const FloorGrid* grid = GridFor(p.floor);
  if (grid == nullptr || grid->regions.empty()) return kInvalidRegion;
  int cell = grid->CellIndex(grid->CellX(p.xy.x), grid->CellY(p.xy.y));
  RegionId best = kInvalidRegion;
  double best_area = 1e300;
  uint32_t begin = grid->region_cells.offsets[cell];
  uint32_t end = grid->region_cells.offsets[cell + 1];
  for (uint32_t i = begin; i < end; ++i) {
    const Shape& shape = grid->regions[grid->region_cells.items[i]];
    if (shape.area >= best_area) continue;
    if (shape.bounds.Contains(p.xy) && shape.polygon.Contains(p.xy)) {
      best_area = shape.area;
      best = shape.id;
    }
  }
  return best;
}

geo::IndoorPoint SpatialIndex::SnapToWalkable(const geo::IndoorPoint& p) const {
  bool snapped = false;
  return SnapIfOutside(p, &snapped);
}

bool SpatialIndex::WalkableFirstHit(const FloorGrid& grid,
                                    const geo::Point2& p) {
  if (grid.partitions.empty()) return false;
  int cell = grid.CellIndex(grid.CellX(p.x), grid.CellY(p.y));
  uint32_t begin = grid.partition_cells.offsets[cell];
  uint32_t end = grid.partition_cells.offsets[cell + 1];
  for (uint32_t i = begin; i < end; ++i) {
    const Shape& shape = grid.partitions[grid.partition_cells.items[i]];
    if (shape.bounds.Contains(p) && shape.polygon.Contains(p)) return true;
  }
  return false;
}

geo::IndoorPoint SpatialIndex::SnapIfOutside(const geo::IndoorPoint& p,
                                             bool* snapped) const {
  if (probes_ != nullptr) probes_->snap_probes.Add(1);
  const FloorGrid* grid = GridFor(p.floor);

  // Walkability is existence of a containing partition, so the probe stops at
  // the first hit — it never needs PartitionAt's full smallest-area scan.
  if (grid != nullptr && WalkableFirstHit(*grid, p.xy)) {
    *snapped = false;
    return p;
  }
  *snapped = true;
  if (probes_ != nullptr) probes_->snapped_outside.Add(1);
  if (grid == nullptr) return p;
  return SnapViaRings(*grid, p);
}

geo::IndoorPoint SpatialIndex::SnapViaRings(const FloorGrid& grid_ref,
                                            const geo::IndoorPoint& p,
                                            int start_ring,
                                            bool batch_prune) const {
  const FloorGrid* grid = &grid_ref;
  if (grid->edges.empty()) return p;

  int cx = grid->CellX(p.xy.x);
  int cy = grid->CellY(p.xy.y);
  double best_dist = 1e300;
  geo::Point2 best = p.xy;
  int32_t best_rank = -1;

  auto consider_cell = [&](int ix, int iy) {
    if (batch_prune && best_rank >= 0) {
      // Skip cells strictly farther than the current best. Any edge bucketed
      // here whose closest point lies elsewhere is also bucketed in the cell
      // holding that closest point, and that cell's rectangle distance is at
      // most the edge's — so it is never pruned before the edge is scored.
      // Strict: a cell at exactly best_dist can hold an equal-distance edge
      // with a lower tie-break rank and must still be scanned.
      double cx0 = grid->origin.x + ix * grid->cell;
      double cy0 = grid->origin.y + iy * grid->cell;
      double dx = std::max({cx0 - p.xy.x, 0.0, p.xy.x - (cx0 + grid->cell)});
      double dy = std::max({cy0 - p.xy.y, 0.0, p.xy.y - (cy0 + grid->cell)});
      if (dx * dx + dy * dy > best_dist * best_dist) return;
    }
    int cell = grid->CellIndex(ix, iy);
    uint32_t begin = grid->edge_cells.offsets[cell];
    uint32_t end = grid->edge_cells.offsets[cell + 1];
    for (uint32_t i = begin; i < end; ++i) {
      int32_t rank = grid->edge_cells.items[i];
      geo::Point2 q = grid->edges[rank].ClosestPoint(p.xy);
      double d = q.DistanceTo(p.xy);
      // Lexicographic (distance, traversal rank): identical winner to the
      // brute-force scan, which keeps the first of equally-near edges.
      if (d < best_dist || (d == best_dist && rank < best_rank)) {
        best_dist = d;
        best = q;
        best_rank = rank;
      }
    }
  };

  // Expanding ring search. After ring k every unvisited edge lies wholly
  // outside the ring's covered rectangle, so once the best distance is within
  // the point's margin to that rectangle no farther ring can improve it.
  // Rings below start_ring are skipped outright: the caller guarantees they
  // contain no edge-bucket cells, so their iterations would be no-ops (no
  // candidates considered, early-exit unarmed while best_rank < 0).
  int ring_cap = std::max({cx, grid->nx - 1 - cx, cy, grid->ny - 1 - cy});
  for (int k = std::min(start_ring, ring_cap); k <= ring_cap; ++k) {
    int x0 = std::max(0, cx - k), x1 = std::min(grid->nx - 1, cx + k);
    int y0 = std::max(0, cy - k), y1 = std::min(grid->ny - 1, cy + k);
    for (int ix = x0; ix <= x1; ++ix) {
      if (cy - k >= 0) consider_cell(ix, cy - k);
      if (k > 0 && cy + k <= grid->ny - 1) consider_cell(ix, cy + k);
    }
    for (int iy = std::max(y0, cy - k + 1); iy <= std::min(y1, cy + k - 1); ++iy) {
      if (cx - k >= 0) consider_cell(cx - k, iy);
      if (cx + k <= grid->nx - 1) consider_cell(cx + k, iy);
    }
    if (best_rank >= 0) {
      double rx0 = grid->origin.x + (cx - k) * grid->cell;
      double rx1 = grid->origin.x + (cx + k + 1) * grid->cell;
      double ry0 = grid->origin.y + (cy - k) * grid->cell;
      double ry1 = grid->origin.y + (cy + k + 1) * grid->cell;
      double margin;
      if (batch_prune) {
        // Every unvisited edge lies inside the grid footprint G AND outside
        // the covered rectangle [rx0,rx1]x[ry0,ry1]: its bucket cells are all
        // unvisited, and cells exist only within G. The exit bound is the
        // distance from p to that clipped region — the four side slabs of G
        // left over after removing the rectangle.
        double gx1 = grid->origin.x + grid->nx * grid->cell;
        double gy1 = grid->origin.y + grid->ny * grid->cell;
        auto rect_dist = [&p](double x0, double y0, double x1, double y1) {
          double dx = std::max({x0 - p.xy.x, 0.0, p.xy.x - x1});
          double dy = std::max({y0 - p.xy.y, 0.0, p.xy.y - y1});
          return std::sqrt(dx * dx + dy * dy);
        };
        margin = 1e300;
        if (rx0 > grid->origin.x) {
          margin = std::min(margin, rect_dist(grid->origin.x, grid->origin.y,
                                              rx0, gy1));
        }
        if (rx1 < gx1) {
          margin = std::min(margin, rect_dist(rx1, grid->origin.y, gx1, gy1));
        }
        if (ry0 > grid->origin.y) {
          margin = std::min(margin, rect_dist(grid->origin.x, grid->origin.y,
                                              gx1, ry0));
        }
        if (ry1 < gy1) {
          margin = std::min(margin, rect_dist(grid->origin.x, ry1, gx1, gy1));
        }
      } else {
        margin = std::min(std::min(p.xy.x - rx0, rx1 - p.xy.x),
                          std::min(p.xy.y - ry0, ry1 - p.xy.y));
        if (margin <= 0) continue;
      }
      // Strict: an unvisited edge touching the pruned region's boundary can
      // lie at exactly `margin` with a lower tie-break rank.
      if (best_dist < margin) break;
    }
  }

  if (best_rank < 0) return p;
  // Same inward nudge as the brute-force snap.
  geo::Point2 inward = best + (best - p.xy).Normalized() * 1e-6;
  return {inward, p.floor};
}

void SpatialIndex::SnapIfOutsideBatch(std::span<const geo::IndoorPoint> points,
                                      std::span<geo::IndoorPoint> out,
                                      std::span<uint8_t> snapped) const {
  const size_t n = points.size();
  if (n == 0) return;
  if (probes_ != nullptr) probes_->snap_probes.Add(n);

  // Phase 1: walkability mask over the whole block. Cleaned trajectories are
  // floor-clustered, so the floor->grid lookup is memoized on the last floor.
  geo::FloorId memo_floor = 0;
  const FloorGrid* memo_grid = nullptr;
  bool memo_valid = false;
  auto grid_for = [&](geo::FloorId floor) {
    if (!memo_valid || floor != memo_floor) {
      memo_grid = GridFor(floor);
      memo_floor = floor;
      memo_valid = true;
    }
    return memo_grid;
  };
  // Outside points keyed by (floor, cell) for the sort; per-point results are
  // independent, so processing order affects only cache behaviour, never
  // output.
  std::vector<std::pair<uint64_t, uint32_t>> outside;
  for (size_t i = 0; i < n; ++i) {
    const geo::IndoorPoint p = points[i];
    const FloorGrid* grid = grid_for(p.floor);
    if (grid != nullptr && WalkableFirstHit(*grid, p.xy)) {
      out[i] = p;
      snapped[i] = 0;
      continue;
    }
    snapped[i] = 1;
    uint64_t key = grid == nullptr
                       ? ~uint64_t{0}
                       : (static_cast<uint64_t>(static_cast<uint32_t>(p.floor))
                              << 32) |
                             static_cast<uint32_t>(grid->CellIndex(
                                 grid->CellX(p.xy.x), grid->CellY(p.xy.y)));
    outside.emplace_back(key, static_cast<uint32_t>(i));
  }
  if (outside.empty()) return;
  if (probes_ != nullptr) probes_->snapped_outside.Add(outside.size());

  // Phase 2: cell-sorted ring searches, scattered back by original index.
  // Each search is seeded at its cell's first candidate ring — the batch
  // path's structural win over the per-point reference for far-out points.
  std::sort(outside.begin(), outside.end());
  for (const auto& [key, idx] : outside) {
    const geo::IndoorPoint p = points[idx];
    const FloorGrid* grid = grid_for(p.floor);
    if (grid == nullptr) {
      out[idx] = p;
      continue;
    }
    int cell = static_cast<int>(key & 0xFFFFFFFFu);
    out[idx] = SnapViaRings(*grid, p, grid->first_edge_ring[cell],
                            /*batch_prune=*/true);
  }
}

std::vector<RegionId> SpatialIndex::RegionsNear(const geo::Point2& p,
                                                geo::FloorId floor,
                                                double max_dist) const {
  std::vector<RegionId> out;
  const FloorGrid* grid = GridFor(floor);
  if (grid == nullptr || grid->regions.empty()) return out;

  // Any qualifying region's bounding box comes within max_dist of p, so its
  // cells intersect the cells of the box p ± max_dist: gathering those
  // buckets yields a correct candidate superset.
  int x0 = grid->CellX(p.x - max_dist);
  int x1 = grid->CellX(p.x + max_dist);
  int y0 = grid->CellY(p.y - max_dist);
  int y1 = grid->CellY(p.y + max_dist);
  std::vector<int32_t> candidates;
  for (int iy = y0; iy <= y1; ++iy) {
    for (int ix = x0; ix <= x1; ++ix) {
      int cell = grid->CellIndex(ix, iy);
      uint32_t begin = grid->region_cells.offsets[cell];
      uint32_t end = grid->region_cells.offsets[cell + 1];
      for (uint32_t i = begin; i < end; ++i) {
        candidates.push_back(grid->region_cells.items[i]);
      }
    }
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  // Ascending region-vector index == ascending region id: the exact tests run
  // in the same order as the linear scan this replaces.
  for (int32_t idx : candidates) {
    const Shape& shape = grid->regions[idx];
    if (shape.polygon.Contains(p) || shape.polygon.BoundaryDistanceTo(p) <= max_dist) {
      out.push_back(shape.id);
    }
  }
  return out;
}

void SpatialIndex::ForEachRegionBboxPair(
    const std::function<void(RegionId, RegionId)>& fn) const {
  std::vector<int32_t> candidates;
  for (const FloorGrid& grid : grids_) {
    for (size_t i = 0; i < grid.regions.size(); ++i) {
      const Shape& a = grid.regions[i];
      int x0 = grid.CellX(a.bounds.min.x);
      int x1 = grid.CellX(a.bounds.max.x);
      int y0 = grid.CellY(a.bounds.min.y);
      int y1 = grid.CellY(a.bounds.max.y);
      candidates.clear();
      for (int iy = y0; iy <= y1; ++iy) {
        for (int ix = x0; ix <= x1; ++ix) {
          int cell = grid.CellIndex(ix, iy);
          uint32_t begin = grid.region_cells.offsets[cell];
          uint32_t end = grid.region_cells.offsets[cell + 1];
          for (uint32_t k = begin; k < end; ++k) {
            int32_t j = grid.region_cells.items[k];
            if (j > static_cast<int32_t>(i)) candidates.push_back(j);
          }
        }
      }
      std::sort(candidates.begin(), candidates.end());
      candidates.erase(std::unique(candidates.begin(), candidates.end()),
                       candidates.end());
      for (int32_t j : candidates) {
        const Shape& b = grid.regions[static_cast<size_t>(j)];
        if (a.bounds.Intersects(b.bounds)) fn(a.id, b.id);
      }
    }
  }
}

const std::vector<RegionId>& SpatialIndex::RegionCandidatesOfPartition(
    EntityId pid) const {
  static const std::vector<RegionId> kEmpty;
  if (pid < 0 ||
      static_cast<size_t>(pid) >= partition_region_candidates_.size()) {
    return kEmpty;
  }
  return partition_region_candidates_[static_cast<size_t>(pid)];
}

size_t SpatialIndex::CellCount() const {
  size_t total = 0;
  for (const FloorGrid& grid : grids_) {
    total += static_cast<size_t>(grid.nx) * static_cast<size_t>(grid.ny);
  }
  return total;
}

double SpatialIndex::CellSize(geo::FloorId floor) const {
  const FloorGrid* grid = GridFor(floor);
  return grid != nullptr ? grid->cell : 0.0;
}

}  // namespace trips::dsm
