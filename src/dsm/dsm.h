// The Digital Space Model (DSM): geometry + topology of an indoor space plus
// its semantic regions. Central data structure of TRIPS (§3): it "enables the
// spatial computations for cleaning the positioning records" and "helps the
// Annotator make annotations and the Complementor infer the missing mobility
// semantics".
#pragma once

#include <map>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "dsm/entity.h"
#include "dsm/spatial_index.h"
#include "util/result.h"

namespace trips::dsm {

/// Topology computed over a DSM: which doors connect which walkable
/// partitions, which partitions connect across floors, and which semantic
/// regions are directly reachable from which.
struct Topology {
  /// door entity id -> the (usually two) partitions it connects.
  std::map<EntityId, std::vector<EntityId>> door_partitions;
  /// partition entity id -> doors on its boundary.
  std::map<EntityId, std::vector<EntityId>> partition_doors;
  /// Vertical links: pairs of partition ids on different floors connected by
  /// a same-named staircase/elevator.
  std::vector<std::pair<EntityId, EntityId>> vertical_links;
  /// Same-floor walkable partitions whose shapes overlap (e.g. crossing
  /// corridors); movement flows freely between them through the stored
  /// portal point, no door needed.
  struct Overlap {
    EntityId a = kInvalidEntity;
    EntityId b = kInvalidEntity;
    geo::Point2 portal;
  };
  std::vector<Overlap> partition_overlaps;
  /// region id -> directly connected region ids (shared door / vertical link
  /// / shared partition).
  std::map<RegionId, std::set<RegionId>> region_adjacency;
  /// partition entity id -> semantic regions overlapping it.
  std::map<EntityId, std::vector<RegionId>> partition_regions;
};

/// The Digital Space Model. Build it with AddFloor/AddEntity/AddRegion (or
/// through config::SpaceModeler, or from JSON via dsm_json.h), then call
/// ComputeTopology() once before issuing spatial queries.
class Dsm {
 public:
  /// Human-readable model name (e.g. "hangzhou-mall").
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  // ---- construction ----

  /// Adds a floor; fails if a floor with the same id exists.
  Status AddFloor(Floor floor);

  /// Adds an entity, assigning and returning its id. The entity's shape must
  /// have at least 3 vertices.
  Result<EntityId> AddEntity(Entity entity);

  /// Adds a semantic region, assigning and returning its id.
  Result<RegionId> AddRegion(SemanticRegion region);

  /// Maps an entity into a region (DSM's entity↔region mapping).
  Status MapEntityToRegion(EntityId entity, RegionId region);

  /// Computes door/partition/region topology. Must be called after all
  /// entities and regions are added (re-callable after edits). Also auto-maps
  /// every walkable partition whose centroid lies in a region's shape into
  /// that region, complementing explicit MapEntityToRegion calls.
  Status ComputeTopology();

  // ---- access ----

  const std::vector<Floor>& floors() const { return floors_; }
  const std::vector<Entity>& entities() const { return entities_; }
  const std::vector<SemanticRegion>& regions() const { return regions_; }
  const Topology& topology() const { return topology_; }
  bool topology_computed() const { return topology_computed_; }

  /// Returns the floor record with the given id, or nullptr.
  const Floor* GetFloor(geo::FloorId id) const;
  /// Returns the entity with the given id, or nullptr.
  const Entity* GetEntity(EntityId id) const;
  /// Returns the region with the given id, or nullptr.
  const SemanticRegion* GetRegion(RegionId id) const;
  /// Returns the first region with the given name, or nullptr.
  const SemanticRegion* FindRegionByName(const std::string& name) const;

  // ---- spatial queries ----
  //
  // The point queries below run on the grid index built by ComputeTopology()
  // (near-O(1) per query); before topology is computed — or with the index
  // disabled — they fall back to the brute-force linear scans, which return
  // identical results.

  /// The walkable partition (room/hallway/staircase/elevator) containing `p`,
  /// or kInvalidEntity. Smallest-area match wins when partitions nest.
  EntityId PartitionAt(const geo::IndoorPoint& p) const;

  /// True iff `p` lies in some walkable partition.
  bool IsWalkable(const geo::IndoorPoint& p) const;

  /// The semantic region containing `p`, or kInvalidRegion. Smallest-area
  /// match wins when regions overlap.
  RegionId RegionAt(const geo::IndoorPoint& p) const;

  /// All doors on the boundary of partition `pid` (empty if unknown).
  std::vector<EntityId> DoorsOfPartition(EntityId pid) const;

  /// The partitions a door connects (empty if unknown).
  std::vector<EntityId> PartitionsOfDoor(EntityId door) const;

  /// Regions directly connected to `rid` in the region adjacency graph.
  std::vector<RegionId> AdjacentRegions(RegionId rid) const;

  /// Nearest walkable point to `p` on the same floor (snaps out-of-bounds
  /// cleaned locations back into the space). Returns `p` itself if walkable.
  geo::IndoorPoint SnapToWalkable(const geo::IndoorPoint& p) const;

  /// Combined IsWalkable + SnapToWalkable: sets `*snapped` to false and
  /// returns `p` when `p` is walkable, else sets it to true and returns the
  /// snapped point — one point-location query instead of the two the pair
  /// costs. Bit-identical to calling IsWalkable then SnapToWalkable.
  geo::IndoorPoint SnapIfOutside(const geo::IndoorPoint& p, bool* snapped) const;

  /// Batched SnapIfOutside: each (out[i], snapped[i], with snapped[i] in
  /// {0,1}) is exactly the per-point call's result for points[i]. With the
  /// index built this dispatches to SpatialIndex::SnapIfOutsideBatch, which
  /// sorts the outside points by (floor, grid cell) so the ring searches are
  /// cache-coherent; otherwise it loops the brute-force per-point query. All
  /// spans must have equal length; `out` may alias `points`.
  void SnapIfOutsideBatch(std::span<const geo::IndoorPoint> points,
                          std::span<geo::IndoorPoint> out,
                          std::span<uint8_t> snapped) const;

  /// Bounding box of everything on `floor`.
  geo::BoundingBox FloorBounds(geo::FloorId floor) const;

  /// Number of distinct floors that carry at least one entity.
  size_t FloorCount() const { return floors_.size(); }

  // ---- spatial acceleration index ----

  /// The grid index over partitions/regions/edges (built by ComputeTopology,
  /// invalidated by any mutation).
  const SpatialIndex& spatial_index() const { return spatial_index_; }

  /// Regions whose bounding box intersects walkable partition `pid` —
  /// precomputed candidate superset for resolving region membership of points
  /// inside the partition without a polygon pass over all regions.
  const std::vector<RegionId>& RegionCandidatesOfPartition(EntityId pid) const {
    return spatial_index_.RegionCandidatesOfPartition(pid);
  }

  /// Disables (or re-enables) the index at runtime, forcing the point queries
  /// onto the brute-force scans. Parity testing and benchmarking only — never
  /// needed in production. Compile with -DTRIPS_DSM_NO_SPATIAL_INDEX to
  /// default it off.
  void set_spatial_index_enabled(bool enabled) { use_spatial_index_ = enabled; }
  bool spatial_index_enabled() const { return use_spatial_index_; }

  // Brute-force reference implementations of the point queries: linear scans
  // over all entities/regions with full point-in-polygon tests. Retained for
  // the parity suite and the before/after benchmarks; the hot path only
  // reaches them when the index is unbuilt or disabled.
  EntityId PartitionAtBruteForce(const geo::IndoorPoint& p) const;
  RegionId RegionAtBruteForce(const geo::IndoorPoint& p) const;
  geo::IndoorPoint SnapToWalkableBruteForce(const geo::IndoorPoint& p) const;
  geo::IndoorPoint SnapIfOutsideBruteForce(const geo::IndoorPoint& p,
                                           bool* snapped) const;

 private:
  std::string name_ = "dsm";
  std::vector<Floor> floors_;
  std::vector<Entity> entities_;
  std::vector<SemanticRegion> regions_;
  Topology topology_;
  SpatialIndex spatial_index_;
  bool topology_computed_ = false;
#ifdef TRIPS_DSM_NO_SPATIAL_INDEX
  bool use_spatial_index_ = false;
#else
  bool use_spatial_index_ = true;
#endif
  EntityId next_entity_id_ = 0;
  RegionId next_region_id_ = 0;
};

}  // namespace trips::dsm
