#include "dsm/dsm.h"

#include <algorithm>
#include <cmath>

namespace trips::dsm {

namespace {
// A door is attached to a partition when its centroid is inside the partition
// or within this many metres of the partition boundary.
constexpr double kDoorAttachDistance = 1.5;
}  // namespace

const char* EntityKindName(EntityKind kind) {
  switch (kind) {
    case EntityKind::kRoom:
      return "room";
    case EntityKind::kHallway:
      return "hallway";
    case EntityKind::kDoor:
      return "door";
    case EntityKind::kWall:
      return "wall";
    case EntityKind::kStaircase:
      return "staircase";
    case EntityKind::kElevator:
      return "elevator";
    case EntityKind::kObstacle:
      return "obstacle";
  }
  return "unknown";
}

bool ParseEntityKind(const std::string& name, EntityKind* out) {
  static const std::pair<const char*, EntityKind> kTable[] = {
      {"room", EntityKind::kRoom},           {"hallway", EntityKind::kHallway},
      {"door", EntityKind::kDoor},           {"wall", EntityKind::kWall},
      {"staircase", EntityKind::kStaircase}, {"elevator", EntityKind::kElevator},
      {"obstacle", EntityKind::kObstacle},
  };
  for (const auto& [n, k] : kTable) {
    if (name == n) {
      *out = k;
      return true;
    }
  }
  return false;
}

bool IsWalkableKind(EntityKind kind) {
  return kind == EntityKind::kRoom || kind == EntityKind::kHallway ||
         kind == EntityKind::kStaircase || kind == EntityKind::kElevator;
}

bool IsVerticalKind(EntityKind kind) {
  return kind == EntityKind::kStaircase || kind == EntityKind::kElevator;
}

Status Dsm::AddFloor(Floor floor) {
  for (const Floor& f : floors_) {
    if (f.id == floor.id) {
      return Status::AlreadyExists("floor " + std::to_string(floor.id));
    }
  }
  floors_.push_back(std::move(floor));
  std::sort(floors_.begin(), floors_.end(),
            [](const Floor& a, const Floor& b) { return a.id < b.id; });
  return Status::OK();
}

Result<EntityId> Dsm::AddEntity(Entity entity) {
  if (entity.shape.vertices.size() < 3) {
    return Status::InvalidArgument("entity '" + entity.name +
                                   "' needs a polygon with >= 3 vertices");
  }
  entity.id = next_entity_id_++;
  entities_.push_back(std::move(entity));
  topology_computed_ = false;
  spatial_index_.Clear();
  return entities_.back().id;
}

Result<RegionId> Dsm::AddRegion(SemanticRegion region) {
  if (region.shape.vertices.size() < 3) {
    return Status::InvalidArgument("region '" + region.name +
                                   "' needs a polygon with >= 3 vertices");
  }
  if (region.name.empty()) {
    return Status::InvalidArgument("semantic region needs a name");
  }
  region.id = next_region_id_++;
  regions_.push_back(std::move(region));
  topology_computed_ = false;
  spatial_index_.Clear();
  return regions_.back().id;
}

Status Dsm::MapEntityToRegion(EntityId entity, RegionId region) {
  const Entity* e = GetEntity(entity);
  if (e == nullptr) return Status::NotFound("entity " + std::to_string(entity));
  if (region < 0 || region >= static_cast<RegionId>(regions_.size())) {
    return Status::NotFound("region " + std::to_string(region));
  }
  auto& members = regions_[region].member_entities;
  if (std::find(members.begin(), members.end(), entity) == members.end()) {
    members.push_back(entity);
  }
  topology_computed_ = false;
  spatial_index_.Clear();
  return Status::OK();
}

Status Dsm::ComputeTopology() {
  topology_ = Topology{};

  // 1. Attach each door to the walkable partitions around it.
  for (const Entity& door : entities_) {
    if (door.kind != EntityKind::kDoor) continue;
    geo::Point2 c = door.Center();
    std::vector<std::pair<double, EntityId>> candidates;
    for (const Entity& part : entities_) {
      if (!IsWalkableKind(part.kind) || part.floor != door.floor) continue;
      double dist = part.shape.Contains(c) ? 0.0 : part.shape.BoundaryDistanceTo(c);
      // Also accept when any door vertex falls inside the partition.
      if (dist > kDoorAttachDistance) {
        for (const geo::Point2& v : door.shape.vertices) {
          if (part.shape.Contains(v)) {
            dist = 0.0;
            break;
          }
        }
      }
      if (dist <= kDoorAttachDistance) candidates.emplace_back(dist, part.id);
    }
    std::sort(candidates.begin(), candidates.end());
    std::vector<EntityId> attached;
    for (const auto& [dist, pid] : candidates) {
      attached.push_back(pid);
      if (attached.size() == 4) break;  // doors join at most a handful of partitions
    }
    topology_.door_partitions[door.id] = attached;
    for (EntityId pid : attached) {
      topology_.partition_doors[pid].push_back(door.id);
    }
  }

  // 2. Overlap links between same-floor walkable partitions: crossing
  //    corridors, connectors placed inside hallways, etc. The portal point is
  //    the centre of the bounding-box intersection when it lies in both
  //    shapes (exact for the axis-aligned partitions floorplans are traced
  //    with), else the contained centroid.
  for (size_t i = 0; i < entities_.size(); ++i) {
    const Entity& a = entities_[i];
    if (!IsWalkableKind(a.kind)) continue;
    for (size_t j = i + 1; j < entities_.size(); ++j) {
      const Entity& b = entities_[j];
      if (!IsWalkableKind(b.kind) || a.floor != b.floor) continue;
      geo::BoundingBox ba = a.shape.Bounds();
      geo::BoundingBox bb = b.shape.Bounds();
      if (!ba.Intersects(bb)) continue;
      geo::BoundingBox inter;
      inter.Extend({std::max(ba.min.x, bb.min.x), std::max(ba.min.y, bb.min.y)});
      inter.Extend({std::min(ba.max.x, bb.max.x), std::min(ba.max.y, bb.max.y)});
      geo::Point2 candidates[] = {inter.Center(), a.Center(), b.Center()};
      bool linked = false;
      for (const geo::Point2& c : candidates) {
        if (a.shape.Contains(c) && b.shape.Contains(c)) {
          topology_.partition_overlaps.push_back({a.id, b.id, c});
          linked = true;
          break;
        }
      }
      (void)linked;
    }
  }

  // 3. Vertical links: same-named staircases/elevators on different floors.
  std::vector<const Entity*> verticals;
  for (const Entity& e : entities_) {
    if (IsVerticalKind(e.kind)) verticals.push_back(&e);
  }
  for (size_t i = 0; i < verticals.size(); ++i) {
    for (size_t j = i + 1; j < verticals.size(); ++j) {
      const Entity* a = verticals[i];
      const Entity* b = verticals[j];
      if (a->name == b->name && !a->name.empty() &&
          std::abs(a->floor - b->floor) == 1) {
        topology_.vertical_links.emplace_back(a->id, b->id);
      }
    }
  }

  // The spatial acceleration index only needs the final entity/region
  // geometry, so it can be built here and drive the remaining steps; from now
  // on the point queries run on grid buckets instead of linear scans.
  spatial_index_.Build(entities_, regions_);

  // 4. Region membership: explicit mapping + geometric auto-mapping of
  //    partitions whose centroid lies in the region shape. The auto-map scans
  //    only the index's partition→region bbox candidates instead of the full
  //    regions × partitions cross product: a contained centroid lies in both
  //    bounding boxes, so every mapped pair is a candidate pair.
  std::vector<std::vector<EntityId>> region_partition_candidates(regions_.size());
  for (const Entity& part : entities_) {
    if (!IsWalkableKind(part.kind)) continue;
    for (RegionId rid : spatial_index_.RegionCandidatesOfPartition(part.id)) {
      region_partition_candidates[rid].push_back(part.id);
    }
  }
  for (const SemanticRegion& region : regions_) {
    for (EntityId eid : region.member_entities) {
      const Entity* e = GetEntity(eid);
      if (e != nullptr && IsWalkableKind(e->kind)) {
        topology_.partition_regions[eid].push_back(region.id);
      }
    }
    // Candidates ascend by entity id — the traversal order of the full scan
    // this replaces, so the mapped lists come out identical.
    for (EntityId pid : region_partition_candidates[region.id]) {
      const Entity* part = GetEntity(pid);
      if (part == nullptr || part->floor != region.floor) continue;
      auto& mapped = topology_.partition_regions[pid];
      if (std::find(mapped.begin(), mapped.end(), region.id) != mapped.end()) continue;
      if (region.shape.Contains(part->Center())) {
        mapped.push_back(region.id);
      }
    }
  }

  // 5. Region adjacency. Three geometric signals:
  //    (a) door-based: regions touching the same door connect through it;
  //    (b) contact-based: same-floor regions whose shapes overlap or share a
  //        boundary flow into each other;
  //    (c) vertical: regions covering the two ends of a staircase/elevator
  //        link connect across floors.
  auto link = [this](RegionId a, RegionId b) {
    if (a == b || a == kInvalidRegion || b == kInvalidRegion) return;
    topology_.region_adjacency[a].insert(b);
    topology_.region_adjacency[b].insert(a);
  };
  // Point-proximity region lookups run on the just-built index's region
  // buckets (same exact tests, candidate-filtered) instead of scanning every
  // region per door/connector.
  auto regions_near = [this](const geo::Point2& p, geo::FloorId floor,
                             double max_dist) {
    return spatial_index_.RegionsNear(p, floor, max_dist);
  };
  // (a) doors.
  for (const Entity& door : entities_) {
    if (door.kind != EntityKind::kDoor) continue;
    std::vector<RegionId> near =
        regions_near(door.Center(), door.floor, kDoorAttachDistance);
    for (size_t i = 0; i < near.size(); ++i) {
      for (size_t j = i + 1; j < near.size(); ++j) {
        link(near[i], near[j]);
      }
    }
  }
  // (b) shape contact. The index's region buckets enumerate the same-floor
  //     candidate pairs whose (padded) bounding boxes intersect; the original
  //     unpadded bbox test and contact probes then run unchanged on each
  //     candidate, so the links come out identical to the former
  //     O(regions²) cross product.
  spatial_index_.ForEachRegionBboxPair([&](RegionId ra, RegionId rb) {
    const SemanticRegion& a = regions_[static_cast<size_t>(ra)];
    const SemanticRegion& b = regions_[static_cast<size_t>(rb)];
    geo::BoundingBox ba = a.shape.Bounds();
    geo::BoundingBox bb = b.shape.Bounds();
    if (!ba.Intersects(bb)) return;
    geo::BoundingBox inter;
    inter.Extend({std::max(ba.min.x, bb.min.x), std::max(ba.min.y, bb.min.y)});
    inter.Extend({std::min(ba.max.x, bb.max.x), std::min(ba.max.y, bb.max.y)});
    for (const geo::Point2& c : {inter.Center(), a.Center(), b.Center()}) {
      if (a.shape.Contains(c) && b.shape.Contains(c)) {
        link(a.id, b.id);
        break;
      }
    }
  });
  // (c) vertical connectors.
  for (const auto& [va, vb] : topology_.vertical_links) {
    const Entity* ea = GetEntity(va);
    const Entity* eb = GetEntity(vb);
    if (ea == nullptr || eb == nullptr) continue;
    for (RegionId ra : regions_near(ea->Center(), ea->floor, kDoorAttachDistance)) {
      for (RegionId rb : regions_near(eb->Center(), eb->floor, kDoorAttachDistance)) {
        link(ra, rb);
      }
    }
  }

  topology_computed_ = true;
  return Status::OK();
}

const Floor* Dsm::GetFloor(geo::FloorId id) const {
  for (const Floor& f : floors_) {
    if (f.id == id) return &f;
  }
  return nullptr;
}

const Entity* Dsm::GetEntity(EntityId id) const {
  if (id < 0 || id >= static_cast<EntityId>(entities_.size())) return nullptr;
  // Entity ids are assigned densely in insertion order.
  return &entities_[id];
}

const SemanticRegion* Dsm::GetRegion(RegionId id) const {
  if (id < 0 || id >= static_cast<RegionId>(regions_.size())) return nullptr;
  return &regions_[id];
}

const SemanticRegion* Dsm::FindRegionByName(const std::string& name) const {
  for (const SemanticRegion& r : regions_) {
    if (r.name == name) return &r;
  }
  return nullptr;
}

EntityId Dsm::PartitionAt(const geo::IndoorPoint& p) const {
  if (use_spatial_index_ && spatial_index_.built()) {
    return spatial_index_.PartitionAt(p);
  }
  return PartitionAtBruteForce(p);
}

EntityId Dsm::PartitionAtBruteForce(const geo::IndoorPoint& p) const {
  EntityId best = kInvalidEntity;
  double best_area = 1e300;
  for (const Entity& e : entities_) {
    if (!IsWalkableKind(e.kind) || e.floor != p.floor) continue;
    if (e.shape.Contains(p.xy)) {
      double area = e.shape.AbsArea();
      if (area < best_area) {
        best_area = area;
        best = e.id;
      }
    }
  }
  return best;
}

bool Dsm::IsWalkable(const geo::IndoorPoint& p) const {
  return PartitionAt(p) != kInvalidEntity;
}

RegionId Dsm::RegionAt(const geo::IndoorPoint& p) const {
  if (use_spatial_index_ && spatial_index_.built()) {
    return spatial_index_.RegionAt(p);
  }
  return RegionAtBruteForce(p);
}

RegionId Dsm::RegionAtBruteForce(const geo::IndoorPoint& p) const {
  RegionId best = kInvalidRegion;
  double best_area = 1e300;
  for (const SemanticRegion& r : regions_) {
    if (r.floor != p.floor) continue;
    if (r.shape.Contains(p.xy)) {
      double area = r.shape.AbsArea();
      if (area < best_area) {
        best_area = area;
        best = r.id;
      }
    }
  }
  return best;
}

std::vector<EntityId> Dsm::DoorsOfPartition(EntityId pid) const {
  auto it = topology_.partition_doors.find(pid);
  return it != topology_.partition_doors.end() ? it->second : std::vector<EntityId>{};
}

std::vector<EntityId> Dsm::PartitionsOfDoor(EntityId door) const {
  auto it = topology_.door_partitions.find(door);
  return it != topology_.door_partitions.end() ? it->second : std::vector<EntityId>{};
}

std::vector<RegionId> Dsm::AdjacentRegions(RegionId rid) const {
  auto it = topology_.region_adjacency.find(rid);
  if (it == topology_.region_adjacency.end()) return {};
  return std::vector<RegionId>(it->second.begin(), it->second.end());
}

geo::IndoorPoint Dsm::SnapToWalkable(const geo::IndoorPoint& p) const {
  if (use_spatial_index_ && spatial_index_.built()) {
    return spatial_index_.SnapToWalkable(p);
  }
  return SnapToWalkableBruteForce(p);
}

geo::IndoorPoint Dsm::SnapIfOutside(const geo::IndoorPoint& p, bool* snapped) const {
  if (use_spatial_index_ && spatial_index_.built()) {
    return spatial_index_.SnapIfOutside(p, snapped);
  }
  return SnapIfOutsideBruteForce(p, snapped);
}

void Dsm::SnapIfOutsideBatch(std::span<const geo::IndoorPoint> points,
                             std::span<geo::IndoorPoint> out,
                             std::span<uint8_t> snapped) const {
  if (use_spatial_index_ && spatial_index_.built()) {
    spatial_index_.SnapIfOutsideBatch(points, out, snapped);
    return;
  }
  for (size_t i = 0; i < points.size(); ++i) {
    bool s = false;
    out[i] = SnapIfOutsideBruteForce(points[i], &s);
    snapped[i] = s ? 1 : 0;
  }
}

geo::IndoorPoint Dsm::SnapIfOutsideBruteForce(const geo::IndoorPoint& p,
                                              bool* snapped) const {
  if (PartitionAtBruteForce(p) != kInvalidEntity) {
    *snapped = false;
    return p;
  }
  *snapped = true;
  // Reference path: clarity over the saved lookup (SnapToWalkableBruteForce
  // re-runs the partition check the line above already answered).
  return SnapToWalkableBruteForce(p);
}

geo::IndoorPoint Dsm::SnapToWalkableBruteForce(const geo::IndoorPoint& p) const {
  if (PartitionAtBruteForce(p) != kInvalidEntity) return p;
  double best_dist = 1e300;
  geo::Point2 best = p.xy;
  for (const Entity& e : entities_) {
    if (!IsWalkableKind(e.kind) || e.floor != p.floor) continue;
    for (const geo::Segment& edge : e.shape.Edges()) {
      geo::Point2 q = edge.ClosestPoint(p.xy);
      double d = q.DistanceTo(p.xy);
      if (d < best_dist) {
        best_dist = d;
        best = q;
      }
    }
  }
  // Nudge the snapped point slightly inside the partition it borders.
  if (best_dist < 1e300) {
    geo::Point2 inward = best + (best - p.xy).Normalized() * 1e-6;
    return {inward, p.floor};
  }
  return p;
}

geo::BoundingBox Dsm::FloorBounds(geo::FloorId floor) const {
  geo::BoundingBox box;
  const Floor* f = GetFloor(floor);
  if (f != nullptr) box.Extend(f->outline.Bounds());
  for (const Entity& e : entities_) {
    if (e.floor == floor) box.Extend(e.shape.Bounds());
  }
  return box;
}

}  // namespace trips::dsm
