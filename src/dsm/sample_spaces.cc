#include "dsm/sample_spaces.h"

#include <algorithm>
#include <string>
#include <vector>

namespace trips::dsm {

namespace {

// Brand pool for shop regions; reused with a floor suffix when exhausted.
const char* kBrands[] = {
    "Adidas",    "Nike",       "Cashier",   "Starbucks", "Uniqlo",   "Zara",
    "H&M",       "Apple",      "Samsung",   "Lego",      "Sephora",  "MUJI",
    "Rolex",     "Swatch",     "Gucci",     "Prada",     "Decathlon", "Ikea",
    "BookTown",  "ToysRUs",    "FoodCourt", "Cinema",    "GameZone", "KidsPark",
    "TeaHouse",  "Bakery",     "Pharmacy",  "Optics",    "Jewelry",  "Florist",
    "PetShop",   "GadgetHub",  "SportsPro", "ShoeBox",   "HatStand", "Denim&Co",
    "Silkroad",  "Teavana",    "SushiGo",   "BurgerLab", "NoodleBar", "JuiceStop",
};
constexpr int kBrandCount = static_cast<int>(sizeof(kBrands) / sizeof(kBrands[0]));

// Adds a rectangular entity and returns its id.
Result<EntityId> AddRect(Dsm* dsm, EntityKind kind, const std::string& name,
                         geo::FloorId floor, double x0, double y0, double x1,
                         double y1, const std::string& tag = "") {
  Entity e;
  e.kind = kind;
  e.name = name;
  e.floor = floor;
  e.shape = geo::Polygon::Rectangle(x0, y0, x1, y1);
  e.semantic_tag = tag;
  return dsm->AddEntity(std::move(e));
}

// Adds a rectangular semantic region and returns its id.
Result<RegionId> AddRectRegion(Dsm* dsm, const std::string& name,
                               const std::string& category, geo::FloorId floor,
                               double x0, double y0, double x1, double y1) {
  SemanticRegion r;
  r.name = name;
  r.category = category;
  r.floor = floor;
  r.shape = geo::Polygon::Rectangle(x0, y0, x1, y1);
  return dsm->AddRegion(std::move(r));
}

}  // namespace

Result<Dsm> BuildMallDsm(const MallOptions& options) {
  if (options.floors < 1) return Status::InvalidArgument("mall needs >= 1 floor");
  if (options.shops_per_arm < 1) {
    return Status::InvalidArgument("shops_per_arm must be >= 1");
  }
  Dsm dsm;
  dsm.set_name("synthetic-mall");

  // Wings wider than the paper venue's 3 shops stretch the floor: everything
  // east of the west wing shifts right by `shift`, so shops_per_arm <= 3
  // reproduces the historical 100x60 layout exactly and larger venues scale
  // entity count linearly (the bench suite's 1x/4x/16x venue knob).
  double shift = 14.0 * std::max(0, options.shops_per_arm - 3);
  double width = 100 + 2 * shift;

  int brand_cursor = 0;
  for (geo::FloorId f = 0; f < options.floors; ++f) {
    Floor floor;
    floor.id = f;
    floor.name = std::to_string(f + 1) + "F";
    floor.outline = geo::Polygon::Rectangle(0, 0, width, 60);
    TRIPS_RETURN_NOT_OK(dsm.AddFloor(std::move(floor)));

    std::string suffix = "@" + std::to_string(f + 1) + "F";

    // Corridors (crossing hallways) and the open center hall over their
    // crossing.
    TRIPS_RETURN_NOT_OK(
        AddRect(&dsm, EntityKind::kHallway, "corridor-h" + suffix, f, 0, 24, width,
                36, "corridor")
            .status());
    TRIPS_RETURN_NOT_OK(AddRect(&dsm, EntityKind::kHallway, "corridor-v" + suffix,
                                f, 44 + shift, 0, 56 + shift, 60, "corridor")
                            .status());
    TRIPS_RETURN_NOT_OK(AddRect(&dsm, EntityKind::kHallway, "hall" + suffix, f,
                                40 + shift, 20, 60 + shift, 40, "hall")
                            .status());

    // Vertical connectors inside the vertical corridor (same name across
    // floors so topology links them).
    TRIPS_RETURN_NOT_OK(AddRect(&dsm, EntityKind::kStaircase, "stair-A", f,
                                45 + shift, 56, 55 + shift, 60)
                            .status());
    TRIPS_RETURN_NOT_OK(AddRect(&dsm, EntityKind::kElevator, "elev-A", f,
                                45 + shift, 0, 55 + shift, 3)
                            .status());

    // Shops: `shops_per_arm` on each side of the horizontal corridor on both
    // wings, 10 m wide, flush against the corridor. Wing x-starts.
    std::vector<double> xs;
    for (int i = 0; i < options.shops_per_arm; ++i) {
      xs.push_back(2 + 14 * i);           // west wing: 2, 16, 30, ...
      xs.push_back(60 + shift + 14 * i);  // east wing: last ends 2 m inside
    }
    for (double x : xs) {
      for (int side = 0; side < 2; ++side) {
        bool top = side == 0;
        double y0 = top ? 36 : 4;
        double y1 = top ? 56 : 24;
        std::string brand = kBrands[brand_cursor % kBrandCount];
        if (brand_cursor >= kBrandCount) brand += suffix;
        ++brand_cursor;

        auto shop = AddRect(&dsm, EntityKind::kRoom, brand, f, x, y0, x + 10, y1,
                            "shop");
        TRIPS_RETURN_NOT_OK(shop.status());
        // Door straddling the corridor-facing wall.
        double door_y = top ? 36 : 24;
        TRIPS_RETURN_NOT_OK(AddRect(&dsm, EntityKind::kDoor, brand + "-door", f,
                                    x + 4, door_y - 0.6, x + 6, door_y + 0.6)
                                .status());
        auto region = AddRectRegion(&dsm, brand, "shop", f, x, y0, x + 10, y1);
        TRIPS_RETURN_NOT_OK(region.status());
        TRIPS_RETURN_NOT_OK(
            dsm.MapEntityToRegion(shop.ValueOrDie(), region.ValueOrDie()));
      }
    }

    if (options.corridor_regions) {
      TRIPS_RETURN_NOT_OK(AddRectRegion(&dsm, "Center Hall" + suffix, "hall", f,
                                        40 + shift, 20, 60 + shift, 40)
                              .status());
      TRIPS_RETURN_NOT_OK(AddRectRegion(&dsm, "West Corridor" + suffix, "corridor",
                                        f, 0, 24, 40 + shift, 36)
                              .status());
      TRIPS_RETURN_NOT_OK(AddRectRegion(&dsm, "East Corridor" + suffix, "corridor",
                                        f, 60 + shift, 24, width, 36)
                              .status());
      TRIPS_RETURN_NOT_OK(AddRectRegion(&dsm, "North Corridor" + suffix, "corridor",
                                        f, 44 + shift, 40, 56 + shift, 60)
                              .status());
      TRIPS_RETURN_NOT_OK(AddRectRegion(&dsm, "South Corridor" + suffix, "corridor",
                                        f, 44 + shift, 0, 56 + shift, 20)
                              .status());
    }
  }

  TRIPS_RETURN_NOT_OK(dsm.ComputeTopology());
  return dsm;
}

Result<Dsm> BuildOfficeDsm() {
  Dsm dsm;
  dsm.set_name("sample-office");

  const char* kRooms[] = {"Office-101", "Office-102", "Office-103",
                          "Office-104", "Office-105", "Office-106"};
  for (geo::FloorId f = 0; f < 2; ++f) {
    Floor floor;
    floor.id = f;
    floor.name = std::to_string(f + 1) + "F";
    floor.outline = geo::Polygon::Rectangle(0, 0, 60, 24);
    TRIPS_RETURN_NOT_OK(dsm.AddFloor(std::move(floor)));

    std::string suffix = f == 0 ? "" : "-2F";

    // One central corridor.
    TRIPS_RETURN_NOT_OK(AddRect(&dsm, EntityKind::kHallway, "corridor" + suffix, f,
                                0, 10, 60, 14, "corridor")
                            .status());
    TRIPS_RETURN_NOT_OK(AddRectRegion(&dsm, "Corridor" + (f == 0 ? std::string("-1F")
                                                                 : std::string("-2F")),
                                      "corridor", f, 0, 10, 60, 14)
                            .status());

    // Offices: three above, three below the corridor.
    for (int i = 0; i < 3; ++i) {
      double x = 2 + 20 * i;
      for (int side = 0; side < 2; ++side) {
        bool top = side == 0;
        int idx = i + (top ? 0 : 3);
        std::string name = std::string(kRooms[idx]) + suffix;
        double y0 = top ? 14 : 2;
        double y1 = top ? 22 : 10;
        auto room =
            AddRect(&dsm, EntityKind::kRoom, name, f, x, y0, x + 16, y1, "office");
        TRIPS_RETURN_NOT_OK(room.status());
        double door_y = top ? 14 : 10;
        TRIPS_RETURN_NOT_OK(AddRect(&dsm, EntityKind::kDoor, name + "-door", f,
                                    x + 7, door_y - 0.5, x + 9, door_y + 0.5)
                                .status());
        auto region = AddRectRegion(&dsm, name, idx == 2 ? "meeting" : "office", f,
                                    x, y0, x + 16, y1);
        TRIPS_RETURN_NOT_OK(region.status());
        TRIPS_RETURN_NOT_OK(
            dsm.MapEntityToRegion(room.ValueOrDie(), region.ValueOrDie()));
      }
    }

    // Staircase at the east end of the corridor.
    TRIPS_RETURN_NOT_OK(
        AddRect(&dsm, EntityKind::kStaircase, "stair-1", f, 56, 10, 60, 14).status());
  }

  TRIPS_RETURN_NOT_OK(dsm.ComputeTopology());
  return dsm;
}

Result<Dsm> BuildTransitHubDsm(const TransitHubOptions& options) {
  if (options.platforms < 1) {
    return Status::InvalidArgument("transit hub needs >= 1 platform");
  }
  if (options.shops < 0) {
    return Status::InvalidArgument("shops must be >= 0");
  }
  Dsm dsm;
  dsm.set_name("synthetic-transit-hub");

  // Column grid shared by both levels: platforms (floor 0) and gates
  // (floor 1) occupy aligned 12 m slots every 14 m; the hub widens with
  // whichever of platforms/shops needs more columns.
  const int cols = std::max(options.platforms, options.shops);
  const double width = 8.0 + 14.0 * cols;

  for (geo::FloorId f = 0; f < 2; ++f) {
    Floor floor;
    floor.id = f;
    floor.name = f == 0 ? "platforms" : "concourse";
    floor.outline = geo::Polygon::Rectangle(0, 0, width, 60);
    TRIPS_RETURN_NOT_OK(dsm.AddFloor(std::move(floor)));
  }

  // ---- floor 0: platform level ---------------------------------------------
  TRIPS_RETURN_NOT_OK(AddRect(&dsm, EntityKind::kHallway, "access-corridor", 0,
                              0, 26, width, 34, "corridor")
                          .status());
  TRIPS_RETURN_NOT_OK(
      AddRectRegion(&dsm, "Access Corridor", "corridor", 0, 0, 26, width, 34)
          .status());
  for (int p = 0; p < options.platforms; ++p) {
    double x = 4 + 14.0 * p;
    std::string name = "Platform-" + std::to_string(p + 1);
    auto strip =
        AddRect(&dsm, EntityKind::kRoom, name, 0, x, 34, x + 12, 56, "platform");
    TRIPS_RETURN_NOT_OK(strip.status());
    TRIPS_RETURN_NOT_OK(AddRect(&dsm, EntityKind::kDoor, name + "-door", 0,
                                x + 5, 33.4, x + 7, 34.6)
                            .status());
    auto region = AddRectRegion(&dsm, name, "platform", 0, x, 34, x + 12, 56);
    TRIPS_RETURN_NOT_OK(region.status());
    TRIPS_RETURN_NOT_OK(
        dsm.MapEntityToRegion(strip.ValueOrDie(), region.ValueOrDie()));
  }

  // ---- floor 1: concourse ---------------------------------------------------
  TRIPS_RETURN_NOT_OK(AddRect(&dsm, EntityKind::kHallway, "concourse-hall", 1,
                              0, 20, width, 40, "hall")
                          .status());
  TRIPS_RETURN_NOT_OK(
      AddRectRegion(&dsm, "Concourse", "hall", 1, 0, 20, width, 40).status());
  for (int g = 0; g < options.platforms; ++g) {
    double x = 4 + 14.0 * g;
    std::string name = "Gate-" + std::to_string(g + 1);
    auto gate =
        AddRect(&dsm, EntityKind::kRoom, name, 1, x, 40, x + 12, 56, "gate");
    TRIPS_RETURN_NOT_OK(gate.status());
    TRIPS_RETURN_NOT_OK(AddRect(&dsm, EntityKind::kDoor, name + "-door", 1,
                                x + 5, 39.4, x + 7, 40.6)
                            .status());
    auto region = AddRectRegion(&dsm, name, "gate", 1, x, 40, x + 12, 56);
    TRIPS_RETURN_NOT_OK(region.status());
    TRIPS_RETURN_NOT_OK(
        dsm.MapEntityToRegion(gate.ValueOrDie(), region.ValueOrDie()));
  }
  for (int s = 0; s < options.shops; ++s) {
    double x = 4 + 14.0 * s;
    std::string brand = std::string(kBrands[s % kBrandCount]) + "-Hub";
    auto shop =
        AddRect(&dsm, EntityKind::kRoom, brand, 1, x, 4, x + 12, 20, "shop");
    TRIPS_RETURN_NOT_OK(shop.status());
    TRIPS_RETURN_NOT_OK(AddRect(&dsm, EntityKind::kDoor, brand + "-door", 1,
                                x + 5, 19.4, x + 7, 20.6)
                            .status());
    auto region = AddRectRegion(&dsm, brand, "shop", 1, x, 4, x + 12, 20);
    TRIPS_RETURN_NOT_OK(region.status());
    TRIPS_RETURN_NOT_OK(
        dsm.MapEntityToRegion(shop.ValueOrDie(), region.ValueOrDie()));
  }

  // Vertical connectors inside the corridor/hall bands (same name on both
  // floors so topology links them).
  for (geo::FloorId f = 0; f < 2; ++f) {
    TRIPS_RETURN_NOT_OK(
        AddRect(&dsm, EntityKind::kStaircase, "stair-H", f, 1, 27, 7, 33)
            .status());
    TRIPS_RETURN_NOT_OK(AddRect(&dsm, EntityKind::kElevator, "elev-H", f,
                                width - 7, 27, width - 1, 33)
                            .status());
  }

  TRIPS_RETURN_NOT_OK(dsm.ComputeTopology());
  return dsm;
}

Result<Dsm> BuildStadiumDsm(const StadiumOptions& options) {
  if (options.sections_per_side < 1) {
    return Status::InvalidArgument("stadium needs >= 1 section per side");
  }
  if (options.floors < 1) {
    return Status::InvalidArgument("stadium needs >= 1 floor");
  }
  Dsm dsm;
  dsm.set_name("synthetic-stadium");

  const double width = 32.0 + 14.0 * options.sections_per_side;
  const double height = 72.0;

  for (geo::FloorId f = 0; f < options.floors; ++f) {
    Floor floor;
    floor.id = f;
    floor.name = std::to_string(f + 1) + "F";
    floor.outline = geo::Polygon::Rectangle(0, 0, width, height);
    TRIPS_RETURN_NOT_OK(dsm.AddFloor(std::move(floor)));
    std::string suffix = "@" + std::to_string(f + 1) + "F";

    // Ring concourse: four overlapping hallways whose corner overlaps become
    // partition portals (the pitch in the middle stays unmodeled).
    struct Band {
      const char* name;
      double x0, y0, x1, y1;
    };
    const Band bands[] = {
        {"concourse-n", 0, 60, width, 72},
        {"concourse-s", 0, 0, width, 12},
        {"concourse-w", 0, 0, 12, 72},
        {"concourse-e", width - 12, 0, width, 72},
    };
    for (const Band& b : bands) {
      TRIPS_RETURN_NOT_OK(AddRect(&dsm, EntityKind::kHallway, b.name + suffix,
                                  f, b.x0, b.y0, b.x1, b.y1, "corridor")
                              .status());
      TRIPS_RETURN_NOT_OK(AddRectRegion(&dsm, b.name + suffix, "corridor", f,
                                        b.x0, b.y0, b.x1, b.y1)
                              .status());
    }

    // Seating sections opening onto the north and south concourses.
    for (int side = 0; side < 2; ++side) {
      bool north = side == 0;
      for (int s = 0; s < options.sections_per_side; ++s) {
        double x = 16 + 14.0 * s;
        double y0 = north ? 46 : 12;
        double y1 = north ? 60 : 26;
        double door_y = north ? 60 : 12;
        std::string name = std::string(north ? "Section-N" : "Section-S") +
                           std::to_string(s + 1) + suffix;
        auto stand =
            AddRect(&dsm, EntityKind::kRoom, name, f, x, y0, x + 12, y1, "stand");
        TRIPS_RETURN_NOT_OK(stand.status());
        TRIPS_RETURN_NOT_OK(AddRect(&dsm, EntityKind::kDoor, name + "-door", f,
                                    x + 5, door_y - 0.6, x + 7, door_y + 0.6)
                                .status());
        auto region = AddRectRegion(&dsm, name, "stand", f, x, y0, x + 12, y1);
        TRIPS_RETURN_NOT_OK(region.status());
        TRIPS_RETURN_NOT_OK(
            dsm.MapEntityToRegion(stand.ValueOrDie(), region.ValueOrDie()));
      }
    }

    // Food stalls opening onto the west and east concourses.
    for (int side = 0; side < 2; ++side) {
      bool west = side == 0;
      double x0 = west ? 12 : width - 26;
      double x1 = west ? 26 : width - 12;
      double door_x = west ? 12 : width - 12;
      for (int s = 0; s < 2; ++s) {
        double y = 30 + 14.0 * s;
        std::string brand = std::string(kBrands[(2 * side + s) % kBrandCount]) +
                            "-Stand" + suffix;
        auto stall = AddRect(&dsm, EntityKind::kRoom, brand, f, x0, y, x1,
                             y + 10, "shop");
        TRIPS_RETURN_NOT_OK(stall.status());
        TRIPS_RETURN_NOT_OK(AddRect(&dsm, EntityKind::kDoor, brand + "-door", f,
                                    door_x - 0.6, y + 4, door_x + 0.6, y + 6)
                                .status());
        auto region = AddRectRegion(&dsm, brand, "shop", f, x0, y, x1, y + 10);
        TRIPS_RETURN_NOT_OK(region.status());
        TRIPS_RETURN_NOT_OK(
            dsm.MapEntityToRegion(stall.ValueOrDie(), region.ValueOrDie()));
      }
    }

    // Staircase inside the west concourse (same name on every floor).
    if (options.floors > 1) {
      TRIPS_RETURN_NOT_OK(
          AddRect(&dsm, EntityKind::kStaircase, "stair-S", f, 2, 30, 10, 42)
              .status());
    }
  }

  TRIPS_RETURN_NOT_OK(dsm.ComputeTopology());
  return dsm;
}

}  // namespace trips::dsm
