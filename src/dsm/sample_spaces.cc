#include "dsm/sample_spaces.h"

#include <string>
#include <vector>

namespace trips::dsm {

namespace {

// Brand pool for shop regions; reused with a floor suffix when exhausted.
const char* kBrands[] = {
    "Adidas",    "Nike",       "Cashier",   "Starbucks", "Uniqlo",   "Zara",
    "H&M",       "Apple",      "Samsung",   "Lego",      "Sephora",  "MUJI",
    "Rolex",     "Swatch",     "Gucci",     "Prada",     "Decathlon", "Ikea",
    "BookTown",  "ToysRUs",    "FoodCourt", "Cinema",    "GameZone", "KidsPark",
    "TeaHouse",  "Bakery",     "Pharmacy",  "Optics",    "Jewelry",  "Florist",
    "PetShop",   "GadgetHub",  "SportsPro", "ShoeBox",   "HatStand", "Denim&Co",
    "Silkroad",  "Teavana",    "SushiGo",   "BurgerLab", "NoodleBar", "JuiceStop",
};
constexpr int kBrandCount = static_cast<int>(sizeof(kBrands) / sizeof(kBrands[0]));

// Adds a rectangular entity and returns its id.
Result<EntityId> AddRect(Dsm* dsm, EntityKind kind, const std::string& name,
                         geo::FloorId floor, double x0, double y0, double x1,
                         double y1, const std::string& tag = "") {
  Entity e;
  e.kind = kind;
  e.name = name;
  e.floor = floor;
  e.shape = geo::Polygon::Rectangle(x0, y0, x1, y1);
  e.semantic_tag = tag;
  return dsm->AddEntity(std::move(e));
}

// Adds a rectangular semantic region and returns its id.
Result<RegionId> AddRectRegion(Dsm* dsm, const std::string& name,
                               const std::string& category, geo::FloorId floor,
                               double x0, double y0, double x1, double y1) {
  SemanticRegion r;
  r.name = name;
  r.category = category;
  r.floor = floor;
  r.shape = geo::Polygon::Rectangle(x0, y0, x1, y1);
  return dsm->AddRegion(std::move(r));
}

}  // namespace

Result<Dsm> BuildMallDsm(const MallOptions& options) {
  if (options.floors < 1) return Status::InvalidArgument("mall needs >= 1 floor");
  if (options.shops_per_arm < 1) {
    return Status::InvalidArgument("shops_per_arm must be >= 1");
  }
  Dsm dsm;
  dsm.set_name("synthetic-mall");

  // Wings wider than the paper venue's 3 shops stretch the floor: everything
  // east of the west wing shifts right by `shift`, so shops_per_arm <= 3
  // reproduces the historical 100x60 layout exactly and larger venues scale
  // entity count linearly (the bench suite's 1x/4x/16x venue knob).
  double shift = 14.0 * std::max(0, options.shops_per_arm - 3);
  double width = 100 + 2 * shift;

  int brand_cursor = 0;
  for (geo::FloorId f = 0; f < options.floors; ++f) {
    Floor floor;
    floor.id = f;
    floor.name = std::to_string(f + 1) + "F";
    floor.outline = geo::Polygon::Rectangle(0, 0, width, 60);
    TRIPS_RETURN_NOT_OK(dsm.AddFloor(std::move(floor)));

    std::string suffix = "@" + std::to_string(f + 1) + "F";

    // Corridors (crossing hallways) and the open center hall over their
    // crossing.
    TRIPS_RETURN_NOT_OK(
        AddRect(&dsm, EntityKind::kHallway, "corridor-h" + suffix, f, 0, 24, width,
                36, "corridor")
            .status());
    TRIPS_RETURN_NOT_OK(AddRect(&dsm, EntityKind::kHallway, "corridor-v" + suffix,
                                f, 44 + shift, 0, 56 + shift, 60, "corridor")
                            .status());
    TRIPS_RETURN_NOT_OK(AddRect(&dsm, EntityKind::kHallway, "hall" + suffix, f,
                                40 + shift, 20, 60 + shift, 40, "hall")
                            .status());

    // Vertical connectors inside the vertical corridor (same name across
    // floors so topology links them).
    TRIPS_RETURN_NOT_OK(AddRect(&dsm, EntityKind::kStaircase, "stair-A", f,
                                45 + shift, 56, 55 + shift, 60)
                            .status());
    TRIPS_RETURN_NOT_OK(AddRect(&dsm, EntityKind::kElevator, "elev-A", f,
                                45 + shift, 0, 55 + shift, 3)
                            .status());

    // Shops: `shops_per_arm` on each side of the horizontal corridor on both
    // wings, 10 m wide, flush against the corridor. Wing x-starts.
    std::vector<double> xs;
    for (int i = 0; i < options.shops_per_arm; ++i) {
      xs.push_back(2 + 14 * i);           // west wing: 2, 16, 30, ...
      xs.push_back(60 + shift + 14 * i);  // east wing: last ends 2 m inside
    }
    for (double x : xs) {
      for (int side = 0; side < 2; ++side) {
        bool top = side == 0;
        double y0 = top ? 36 : 4;
        double y1 = top ? 56 : 24;
        std::string brand = kBrands[brand_cursor % kBrandCount];
        if (brand_cursor >= kBrandCount) brand += suffix;
        ++brand_cursor;

        auto shop = AddRect(&dsm, EntityKind::kRoom, brand, f, x, y0, x + 10, y1,
                            "shop");
        TRIPS_RETURN_NOT_OK(shop.status());
        // Door straddling the corridor-facing wall.
        double door_y = top ? 36 : 24;
        TRIPS_RETURN_NOT_OK(AddRect(&dsm, EntityKind::kDoor, brand + "-door", f,
                                    x + 4, door_y - 0.6, x + 6, door_y + 0.6)
                                .status());
        auto region = AddRectRegion(&dsm, brand, "shop", f, x, y0, x + 10, y1);
        TRIPS_RETURN_NOT_OK(region.status());
        TRIPS_RETURN_NOT_OK(
            dsm.MapEntityToRegion(shop.ValueOrDie(), region.ValueOrDie()));
      }
    }

    if (options.corridor_regions) {
      TRIPS_RETURN_NOT_OK(AddRectRegion(&dsm, "Center Hall" + suffix, "hall", f,
                                        40 + shift, 20, 60 + shift, 40)
                              .status());
      TRIPS_RETURN_NOT_OK(AddRectRegion(&dsm, "West Corridor" + suffix, "corridor",
                                        f, 0, 24, 40 + shift, 36)
                              .status());
      TRIPS_RETURN_NOT_OK(AddRectRegion(&dsm, "East Corridor" + suffix, "corridor",
                                        f, 60 + shift, 24, width, 36)
                              .status());
      TRIPS_RETURN_NOT_OK(AddRectRegion(&dsm, "North Corridor" + suffix, "corridor",
                                        f, 44 + shift, 40, 56 + shift, 60)
                              .status());
      TRIPS_RETURN_NOT_OK(AddRectRegion(&dsm, "South Corridor" + suffix, "corridor",
                                        f, 44 + shift, 0, 56 + shift, 20)
                              .status());
    }
  }

  TRIPS_RETURN_NOT_OK(dsm.ComputeTopology());
  return dsm;
}

Result<Dsm> BuildOfficeDsm() {
  Dsm dsm;
  dsm.set_name("sample-office");

  const char* kRooms[] = {"Office-101", "Office-102", "Office-103",
                          "Office-104", "Office-105", "Office-106"};
  for (geo::FloorId f = 0; f < 2; ++f) {
    Floor floor;
    floor.id = f;
    floor.name = std::to_string(f + 1) + "F";
    floor.outline = geo::Polygon::Rectangle(0, 0, 60, 24);
    TRIPS_RETURN_NOT_OK(dsm.AddFloor(std::move(floor)));

    std::string suffix = f == 0 ? "" : "-2F";

    // One central corridor.
    TRIPS_RETURN_NOT_OK(AddRect(&dsm, EntityKind::kHallway, "corridor" + suffix, f,
                                0, 10, 60, 14, "corridor")
                            .status());
    TRIPS_RETURN_NOT_OK(AddRectRegion(&dsm, "Corridor" + (f == 0 ? std::string("-1F")
                                                                 : std::string("-2F")),
                                      "corridor", f, 0, 10, 60, 14)
                            .status());

    // Offices: three above, three below the corridor.
    for (int i = 0; i < 3; ++i) {
      double x = 2 + 20 * i;
      for (int side = 0; side < 2; ++side) {
        bool top = side == 0;
        int idx = i + (top ? 0 : 3);
        std::string name = std::string(kRooms[idx]) + suffix;
        double y0 = top ? 14 : 2;
        double y1 = top ? 22 : 10;
        auto room =
            AddRect(&dsm, EntityKind::kRoom, name, f, x, y0, x + 16, y1, "office");
        TRIPS_RETURN_NOT_OK(room.status());
        double door_y = top ? 14 : 10;
        TRIPS_RETURN_NOT_OK(AddRect(&dsm, EntityKind::kDoor, name + "-door", f,
                                    x + 7, door_y - 0.5, x + 9, door_y + 0.5)
                                .status());
        auto region = AddRectRegion(&dsm, name, idx == 2 ? "meeting" : "office", f,
                                    x, y0, x + 16, y1);
        TRIPS_RETURN_NOT_OK(region.status());
        TRIPS_RETURN_NOT_OK(
            dsm.MapEntityToRegion(room.ValueOrDie(), region.ValueOrDie()));
      }
    }

    // Staircase at the east end of the corridor.
    TRIPS_RETURN_NOT_OK(
        AddRect(&dsm, EntityKind::kStaircase, "stair-1", f, 56, 10, 60, 14).status());
  }

  TRIPS_RETURN_NOT_OK(dsm.ComputeTopology());
  return dsm;
}

}  // namespace trips::dsm
