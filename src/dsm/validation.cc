#include "dsm/validation.h"

#include <map>
#include <set>

namespace trips::dsm {

namespace {

void Add(std::vector<ValidationIssue>* issues, IssueSeverity severity,
         std::string code, std::string message, EntityId entity = kInvalidEntity,
         RegionId region = kInvalidRegion) {
  issues->push_back(
      {severity, std::move(code), std::move(message), entity, region});
}

}  // namespace

Result<std::vector<ValidationIssue>> ValidateDsm(const Dsm& dsm,
                                                 const ValidationOptions& options) {
  if (!dsm.topology_computed()) {
    return Status::FailedPrecondition("compute topology before validating");
  }
  std::vector<ValidationIssue> issues;
  const Topology& topo = dsm.topology();

  // Doors must bridge at least two partitions.
  for (const Entity& e : dsm.entities()) {
    if (e.kind != EntityKind::kDoor) continue;
    size_t attached = dsm.PartitionsOfDoor(e.id).size();
    if (attached < 2) {
      Add(&issues, IssueSeverity::kError, "door-unattached",
          "door '" + e.name + "' connects " + std::to_string(attached) +
              " partition(s); expected >= 2",
          e.id);
    }
  }

  // Walkable partitions should be reachable: a door, an overlap, or a
  // vertical link must touch them.
  std::set<EntityId> connected;
  for (const auto& [door, parts] : topo.door_partitions) {
    for (EntityId p : parts) connected.insert(p);
  }
  for (const Topology::Overlap& ov : topo.partition_overlaps) {
    connected.insert(ov.a);
    connected.insert(ov.b);
  }
  for (const auto& [a, b] : topo.vertical_links) {
    connected.insert(a);
    connected.insert(b);
  }
  for (const Entity& e : dsm.entities()) {
    if (!IsWalkableKind(e.kind)) continue;
    if (!connected.count(e.id)) {
      Add(&issues, IssueSeverity::kWarning, "island-partition",
          "walkable partition '" + e.name +
              "' has no door, overlap or vertical link",
          e.id);
    }
    if (e.name.empty()) {
      Add(&issues, IssueSeverity::kWarning, "unnamed-entity",
          "walkable partition #" + std::to_string(e.id) + " has no name", e.id);
    }
  }

  // Vertical connectors should link somewhere.
  std::set<EntityId> vertically_linked;
  for (const auto& [a, b] : topo.vertical_links) {
    vertically_linked.insert(a);
    vertically_linked.insert(b);
  }
  for (const Entity& e : dsm.entities()) {
    if (!IsVerticalKind(e.kind)) continue;
    if (!vertically_linked.count(e.id)) {
      Add(&issues, IssueSeverity::kWarning, "vertical-unlinked",
          "connector '" + e.name + "' on floor " + std::to_string(e.floor) +
              " links to no other floor (same-named twin missing?)",
          e.id);
    }
  }

  // Regions: adjacency, walkable coverage, duplicate names.
  std::map<std::string, int> name_counts;
  for (const SemanticRegion& r : dsm.regions()) {
    ++name_counts[r.name];
    if (dsm.AdjacentRegions(r.id).empty() && dsm.regions().size() > 1) {
      Add(&issues, IssueSeverity::kWarning, "region-no-adjacency",
          "region '" + r.name + "' is disconnected in the region graph",
          kInvalidEntity, r.id);
    }
    // Coverage estimate on a grid over the region bbox.
    geo::BoundingBox box = r.shape.Bounds();
    int inside = 0, walkable = 0;
    int grid = std::max(options.coverage_grid, 2);
    for (int gy = 0; gy < grid; ++gy) {
      for (int gx = 0; gx < grid; ++gx) {
        geo::Point2 p{box.min.x + (gx + 0.5) / grid * box.Width(),
                      box.min.y + (gy + 0.5) / grid * box.Height()};
        if (!r.shape.Contains(p)) continue;
        ++inside;
        if (dsm.IsWalkable({p, r.floor})) ++walkable;
      }
    }
    if (inside > 0) {
      double fraction = static_cast<double>(walkable) / inside;
      if (fraction < options.min_region_walkable_fraction) {
        Add(&issues, IssueSeverity::kWarning, "region-not-walkable",
            "region '" + r.name + "' is only " +
                std::to_string(static_cast<int>(fraction * 100)) +
                "% covered by walkable partitions",
            kInvalidEntity, r.id);
      }
    }
  }
  for (const auto& [name, count] : name_counts) {
    if (count > 1) {
      Add(&issues, IssueSeverity::kWarning, "duplicate-region-name",
          "region name '" + name + "' used " + std::to_string(count) + " times");
    }
  }

  // Declared floors without entities.
  for (const Floor& f : dsm.floors()) {
    bool populated = false;
    for (const Entity& e : dsm.entities()) populated |= (e.floor == f.id);
    if (!populated) {
      Add(&issues, IssueSeverity::kWarning, "empty-floor",
          "floor '" + f.name + "' (id " + std::to_string(f.id) +
              ") carries no entities");
    }
  }

  return issues;
}

std::string FormatIssues(const std::vector<ValidationIssue>& issues) {
  std::string out;
  for (const ValidationIssue& issue : issues) {
    out += issue.severity == IssueSeverity::kError ? "[ERROR] " : "[WARN]  ";
    out += issue.code + ": " + issue.message + "\n";
  }
  return out;
}

}  // namespace trips::dsm
