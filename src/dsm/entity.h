// Indoor entities and semantic regions — the building blocks of the Digital
// Space Model (DSM). The paper's DSM "describes the geometric attributes and
// topological relations for indoor entities, those for semantic regions, and
// the mapping between indoor entities and semantic regions" (§2).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "geometry/shapes.h"

namespace trips::dsm {

/// Identifier of an indoor entity within one DSM.
using EntityId = int32_t;
/// Identifier of a semantic region within one DSM.
using RegionId = int32_t;
/// Sentinel for "no entity / no region".
constexpr EntityId kInvalidEntity = -1;
constexpr RegionId kInvalidRegion = -1;

/// The distinct kinds of indoor entities the DSM models. Rooms, hallways,
/// staircases and elevators are *walkable partitions*; doors connect
/// partitions; walls and obstacles block movement.
enum class EntityKind {
  kRoom,
  kHallway,
  kDoor,
  kWall,
  kStaircase,
  kElevator,
  kObstacle,
};

/// Short lower-case name for an entity kind ("room", "door", ...).
const char* EntityKindName(EntityKind kind);
/// Inverse of EntityKindName; returns false for unknown names.
bool ParseEntityKind(const std::string& name, EntityKind* out);

/// True for kinds an object can be located in (room/hallway/staircase/elevator).
bool IsWalkableKind(EntityKind kind);
/// True for kinds that connect floors (staircase/elevator).
bool IsVerticalKind(EntityKind kind);

/// One indoor entity: a named, typed shape on a floor.
///
/// Walls are typically traced as thin polygons (or polylines closed by the
/// Space Modeler); doors as small rectangles straddling the boundary between
/// the two partitions they connect. Vertical connectors (staircase/elevator)
/// that share the same `name` on different floors are linked by the topology
/// computation.
struct Entity {
  EntityId id = kInvalidEntity;
  EntityKind kind = EntityKind::kRoom;
  std::string name;
  geo::FloorId floor = 0;
  geo::Polygon shape;
  /// Free-form semantic tag assigned in the Space Modeler's semantic tab,
  /// e.g. "shop", "cashier", "corridor". May be empty.
  std::string semantic_tag;

  /// Centroid of the entity's shape.
  geo::Point2 Center() const { return shape.Centroid(); }
  /// The entity's indoor centroid (centroid + floor).
  geo::IndoorPoint IndoorCenter() const { return {shape.Centroid(), floor}; }
};

/// A semantic region: a region of the space carrying practical semantics
/// (e.g. "Nike Store", "Cashier", "Center Hall"). The Annotator's spatial
/// annotations and the Complementor's transition knowledge are expressed
/// over semantic regions.
struct SemanticRegion {
  RegionId id = kInvalidRegion;
  /// Display name used in mobility semantics, e.g. "Adidas".
  std::string name;
  /// Category tag, e.g. "shop", "cashier", "hall", "restroom".
  std::string category;
  geo::FloorId floor = 0;
  geo::Polygon shape;
  /// Entities mapped to this region (the DSM's entity↔region mapping).
  std::vector<EntityId> member_entities;

  geo::Point2 Center() const { return shape.Centroid(); }
  geo::IndoorPoint IndoorCenter() const { return {shape.Centroid(), floor}; }
};

/// One floor of the modeled indoor space.
struct Floor {
  geo::FloorId id = 0;
  std::string name;  ///< e.g. "1F", "G".
  /// Outer boundary of the floor (walkable envelope).
  geo::Polygon outline;
};

}  // namespace trips::dsm
