#include "dsm/dsm_json.h"

namespace trips::dsm {

namespace {

json::Value PolygonToJson(const geo::Polygon& poly) {
  json::Array arr;
  for (const geo::Point2& p : poly.vertices) {
    arr.push_back(json::Array{p.x, p.y});
  }
  return arr;
}

Result<geo::Polygon> PolygonFromJson(const json::Value& v, const std::string& what) {
  if (!v.is_array()) return Status::ParseError(what + ": shape must be an array");
  geo::Polygon poly;
  for (const json::Value& pt : v.AsArray()) {
    if (!pt.is_array() || pt.AsArray().size() != 2 || !pt.AsArray()[0].is_number() ||
        !pt.AsArray()[1].is_number()) {
      return Status::ParseError(what + ": vertex must be [x, y]");
    }
    poly.vertices.push_back({pt.AsArray()[0].AsDouble(), pt.AsArray()[1].AsDouble()});
  }
  return poly;
}

}  // namespace

json::Value ToJson(const Dsm& dsm) {
  json::Object root;
  root["name"] = dsm.name();

  json::Array floors;
  for (const Floor& f : dsm.floors()) {
    json::Object jf;
    jf["id"] = f.id;
    jf["name"] = f.name;
    jf["outline"] = PolygonToJson(f.outline);
    floors.push_back(std::move(jf));
  }
  root["floors"] = std::move(floors);

  json::Array entities;
  for (const Entity& e : dsm.entities()) {
    json::Object je;
    je["id"] = e.id;
    je["kind"] = EntityKindName(e.kind);
    je["name"] = e.name;
    je["floor"] = e.floor;
    if (!e.semantic_tag.empty()) je["tag"] = e.semantic_tag;
    je["shape"] = PolygonToJson(e.shape);
    entities.push_back(std::move(je));
  }
  root["entities"] = std::move(entities);

  json::Array regions;
  for (const SemanticRegion& r : dsm.regions()) {
    json::Object jr;
    jr["id"] = r.id;
    jr["name"] = r.name;
    jr["category"] = r.category;
    jr["floor"] = r.floor;
    jr["shape"] = PolygonToJson(r.shape);
    json::Array members;
    for (EntityId eid : r.member_entities) members.push_back(eid);
    jr["members"] = std::move(members);
    regions.push_back(std::move(jr));
  }
  root["regions"] = std::move(regions);

  return root;
}

Result<Dsm> FromJson(const json::Value& value) {
  if (!value.is_object()) return Status::ParseError("DSM document must be an object");
  Dsm dsm;
  dsm.set_name(value.GetString("name", "dsm"));

  if (const json::Value* floors = value.AsObject().Find("floors");
      floors != nullptr && floors->is_array()) {
    for (const json::Value& jf : floors->AsArray()) {
      Floor f;
      f.id = static_cast<geo::FloorId>(jf.GetInt("id"));
      f.name = jf.GetString("name");
      if (const json::Value* outline = jf.AsObject().Find("outline")) {
        TRIPS_ASSIGN_OR_RETURN(f.outline, PolygonFromJson(*outline, "floor outline"));
      }
      TRIPS_RETURN_NOT_OK(dsm.AddFloor(std::move(f)));
    }
  }

  if (const json::Value* entities = value.AsObject().Find("entities");
      entities != nullptr && entities->is_array()) {
    for (const json::Value& je : entities->AsArray()) {
      Entity e;
      std::string kind = je.GetString("kind", "room");
      if (!ParseEntityKind(kind, &e.kind)) {
        return Status::ParseError("unknown entity kind '" + kind + "'");
      }
      e.name = je.GetString("name");
      e.floor = static_cast<geo::FloorId>(je.GetInt("floor"));
      e.semantic_tag = je.GetString("tag");
      if (const json::Value* shape = je.AsObject().Find("shape")) {
        TRIPS_ASSIGN_OR_RETURN(e.shape, PolygonFromJson(*shape, "entity " + e.name));
      }
      auto added = dsm.AddEntity(std::move(e));
      if (!added.ok()) return added.status();
    }
  }

  if (const json::Value* regions = value.AsObject().Find("regions");
      regions != nullptr && regions->is_array()) {
    for (const json::Value& jr : regions->AsArray()) {
      SemanticRegion r;
      r.name = jr.GetString("name");
      r.category = jr.GetString("category");
      r.floor = static_cast<geo::FloorId>(jr.GetInt("floor"));
      if (const json::Value* shape = jr.AsObject().Find("shape")) {
        TRIPS_ASSIGN_OR_RETURN(r.shape, PolygonFromJson(*shape, "region " + r.name));
      }
      if (const json::Value* members = jr.AsObject().Find("members");
          members != nullptr && members->is_array()) {
        for (const json::Value& m : members->AsArray()) {
          if (m.is_number()) r.member_entities.push_back(static_cast<EntityId>(m.AsInt()));
        }
      }
      auto added = dsm.AddRegion(std::move(r));
      if (!added.ok()) return added.status();
    }
  }

  TRIPS_RETURN_NOT_OK(dsm.ComputeTopology());
  return dsm;
}

Status SaveToFile(const Dsm& dsm, const std::string& path) {
  return json::WriteFile(ToJson(dsm), path);
}

Result<Dsm> LoadFromFile(const std::string& path) {
  TRIPS_ASSIGN_OR_RETURN(json::Value doc, json::ParseFile(path));
  return FromJson(doc);
}

}  // namespace trips::dsm
