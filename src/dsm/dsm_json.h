// JSON (de)serialization of the Digital Space Model. The paper stores the
// DSM "in JSON format, which is flexible to parse and manipulate" (§3).
//
// Document shape:
//   { "name": ...,
//     "floors":   [{"id", "name", "outline": [[x,y],...]}, ...],
//     "entities": [{"id", "kind", "name", "floor", "tag", "shape": [[x,y],...]}, ...],
//     "regions":  [{"id", "name", "category", "floor",
//                   "shape": [[x,y],...], "members": [entityId,...]}, ...] }
#pragma once

#include <string>

#include "dsm/dsm.h"
#include "json/json.h"

namespace trips::dsm {

/// Serializes a DSM (geometry, tags, regions, mappings) to a JSON value.
/// Topology is derived data and is not stored; recompute after loading.
json::Value ToJson(const Dsm& dsm);

/// Reconstructs a DSM from JSON produced by ToJson (or hand-written in the
/// same schema) and recomputes its topology.
Result<Dsm> FromJson(const json::Value& value);

/// Writes a DSM to a .json file (pretty-printed).
Status SaveToFile(const Dsm& dsm, const std::string& path);

/// Loads a DSM from a .json file and recomputes its topology.
Result<Dsm> LoadFromFile(const std::string& path);

}  // namespace trips::dsm
