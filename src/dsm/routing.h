// Indoor shortest-path routing over the DSM's door/partition topology.
// Used by the Cleaning layer's location interpolation ("deriving the possible
// locations ... based on the indoor geometrical and topological information
// captured by the DSM", §3) and by the mobility generator substrate.
#pragma once

#include <map>
#include <vector>

#include "dsm/dsm.h"
#include "util/result.h"

namespace trips::dsm {

/// Options controlling the route planner.
struct RoutePlannerOptions {
  /// Cost in metres charged for moving one floor via a staircase/elevator.
  double vertical_cost_per_floor = 15.0;
};

/// A computed indoor route: the waypoints (start, door midpoints, vertical
/// transitions, end) and the total indoor walking distance.
struct Route {
  std::vector<geo::IndoorPoint> waypoints;
  double distance = 0;

  bool Empty() const { return waypoints.empty(); }

  /// The point reached after walking `d` metres along the route (clamped to
  /// the endpoints). Vertical transitions consume their per-floor cost but
  /// keep the planar position of the connector.
  geo::IndoorPoint PointAtDistance(double d) const;
};

/// Plans shortest walkable paths between indoor points. Builds a static node
/// graph (doors + vertical connectors) from the DSM once, then answers
/// queries with Dijkstra searches seeded at the query endpoints.
class RoutePlanner {
 public:
  /// Builds the routing graph. The DSM's topology must be computed first.
  static Result<RoutePlanner> Build(const Dsm* dsm, RoutePlannerOptions options = {});

  /// Computes the shortest route from `from` to `to`. Fails with NotFound
  /// when either endpoint lies outside every walkable partition or no
  /// connected path exists.
  Result<Route> FindRoute(const geo::IndoorPoint& from, const geo::IndoorPoint& to) const;

  /// Shortest indoor walking distance, or +inf if unreachable/outside.
  double IndoorDistance(const geo::IndoorPoint& from, const geo::IndoorPoint& to) const;

  /// True iff a walkable path exists between the two points.
  bool Reachable(const geo::IndoorPoint& from, const geo::IndoorPoint& to) const;

  /// Number of nodes in the static routing graph (doors + vertical pairs).
  size_t NodeCount() const { return nodes_.size(); }

 private:
  struct Node {
    geo::IndoorPoint point;
    // Partitions this node belongs to (a door node belongs to the partitions
    // it connects; a vertical node to its own partition).
    std::vector<EntityId> partitions;
  };
  struct Edge {
    int to;
    double weight;
  };

  RoutePlanner() = default;

  void AddEdge(int a, int b, double w);
  // Finds graph nodes directly reachable from `p` (sharing its partition).
  std::vector<std::pair<int, double>> LocalNodes(const geo::IndoorPoint& p) const;

  const Dsm* dsm_ = nullptr;
  RoutePlannerOptions options_;
  std::vector<Node> nodes_;
  std::vector<std::vector<Edge>> adjacency_;
  // partition id -> node indices inside it.
  std::map<EntityId, std::vector<int>> partition_nodes_;
};

}  // namespace trips::dsm
