// Indoor shortest-path routing over the DSM's door/partition topology.
// Used by the Cleaning layer's location interpolation ("deriving the possible
// locations ... based on the indoor geometrical and topological information
// captured by the DSM", §3) and by the mobility generator substrate.
//
// Queries decompose into point-dependent and graph-only parts: the shortest
// from->to distance is min over (a, b) of |from-a| + D(a, b) + |b-to|, where a
// ranges over the graph nodes of from's partition, b over to's partition, and
// D is the node-to-node shortest-path distance in the static graph. D depends
// only on the source node, so the planner memoizes one Dijkstra tree per
// source node in a bounded LRU shared by FindRoute / IndoorDistance /
// Reachable / IndoorDistances — repeat queries between the same partitions
// (the common case: cleaning gaps of a fleet moving between the same shops)
// skip Dijkstra entirely. Results are identical cached or uncached.
//
// Contraction (CH-lite). The flat graph carries one clique per partition, so
// a hub partition (a corridor lined with shops) contributes O(doors²) edges
// and every Dijkstra pays for them. At Build() the planner additionally
// contracts the graph: nodes that only ever start or end a journey — a
// dead-end shop's door, an overlap portal into a node-less partition — are
// collapsed away, and the surviving *portal* nodes (nodes joining two
// multi-node partitions, or carrying a vertical edge) keep precomputed
// portal-to-portal shortcut edges (the flat clique/vertical edges restricted
// to portals). Queries seed the portal graph from the endpoint partitions'
// local nodes, run Dijkstra over the ~10x smaller shortcut graph, and unpack
// exactly: distances, and the full node path, are identical to the flat
// reference (the per-path floating-point sums associate in the same order,
// and query-time tie-breaking replays the flat Dijkstra's first-writer pop
// order). The flat algorithms stay available as the *Flat methods and
// through RoutePlannerOptions::use_contraction /
// set_contraction_enabled(false) / -DTRIPS_DSM_NO_CONTRACTION — the same
// parity idiom as spatial_index.h — and tests/routing_contraction_test.cc
// enforces contracted == flat on randomized venues down to byte-identical
// Service output.
//
// Exactness caveat: when a shortest path runs along a wall of exactly
// collinear nodes, the flat Dijkstra may thread an interior (contracted)
// node; the detour's leg sums are exact ties, but they associate the running
// prefix differently, so the folded double can land one ulp away. Measured
// over 43k adversarial wall-hugging queries this affects ~1 in 10^4 of them
// (equal-cost waypoint differences, rarely a 1-ulp distance); every
// committed parity suite is bitwise-exact.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "dsm/dsm.h"
#include "util/result.h"

namespace trips::dsm {

/// Options controlling the route planner.
struct RoutePlannerOptions {
  /// Cost in metres charged for moving one floor via a staircase/elevator.
  double vertical_cost_per_floor = 15.0;
  /// Maximum number of per-source-node shortest-path trees kept per LRU
  /// shard (each tree costs ~12 bytes per graph node; the contracted and
  /// flat query paths memoize into separate shards, so a workload mixing
  /// both — parity suites, benchmarks — holds up to twice this many trees).
  /// 0 disables memoization entirely (every query re-runs Dijkstra) —
  /// parity testing only.
  size_t route_cache_capacity = 1024;
  /// Queries whose source partition carries more graph nodes than this skip
  /// the per-node trees and run one multi-seed Dijkstra instead (a hub
  /// partition like a long corridor would otherwise cost one Dijkstra per
  /// door). The chosen mode depends only on the query and the graph — never
  /// on cache state — so results stay deterministic.
  size_t max_memoized_sources = 8;
  /// Answers queries over the contracted portal graph instead of the flat
  /// clique graph. Results are identical (the parity suite enforces it);
  /// turning this off is for parity testing and before/after benchmarks
  /// only. Compile with -DTRIPS_DSM_NO_CONTRACTION to default it off.
#ifdef TRIPS_DSM_NO_CONTRACTION
  bool use_contraction = false;
#else
  bool use_contraction = true;
#endif
};

/// A computed indoor route: the waypoints (start, door midpoints, vertical
/// transitions, end) and the total indoor walking distance.
struct Route {
  std::vector<geo::IndoorPoint> waypoints;
  double distance = 0;
  /// Cost charged per floor crossed at each vertical transition, copied from
  /// the planner that produced the route so PointAtDistance walks the same
  /// metric FindRoute charged.
  double vertical_cost_per_floor = 15.0;

  bool Empty() const { return waypoints.empty(); }

  /// The point reached after walking `d` metres along the route (clamped to
  /// the endpoints). Vertical transitions consume their per-floor cost but
  /// keep the planar position of the connector.
  geo::IndoorPoint PointAtDistance(double d) const;
};

/// Plans shortest walkable paths between indoor points. Builds a static node
/// graph (doors + overlap portals + vertical connectors) from the DSM once,
/// contracts it to the portal-to-portal shortcut graph, then answers queries
/// from memoized per-source-node Dijkstra trees. All query methods are const
/// and thread-safe (the internal cache locks).
class RoutePlanner {
 public:
  /// Builds the routing graph. The DSM's topology must be computed first.
  static Result<RoutePlanner> Build(const Dsm* dsm, RoutePlannerOptions options = {});

  /// Computes the shortest route from `from` to `to`. Fails with NotFound
  /// when either endpoint lies outside every walkable partition or no
  /// connected path exists.
  Result<Route> FindRoute(const geo::IndoorPoint& from, const geo::IndoorPoint& to) const;

  /// Shortest indoor walking distance, or +inf if unreachable/outside.
  double IndoorDistance(const geo::IndoorPoint& from, const geo::IndoorPoint& to) const;

  /// Batch variant: distances from `from` to every point of `tos`, resolving
  /// the source partition and its shortest-path trees once instead of per
  /// target. Element i equals IndoorDistance(from, tos[i]) exactly.
  std::vector<double> IndoorDistances(const geo::IndoorPoint& from,
                                      std::span<const geo::IndoorPoint> tos) const;

  /// True iff a walkable path exists between the two points.
  bool Reachable(const geo::IndoorPoint& from, const geo::IndoorPoint& to) const;

  // ---- flat reference implementations ----
  //
  // The pre-contraction algorithms over the full clique graph. The parity
  // suite checks the contracted query path against these; production code
  // never needs them directly.

  Result<Route> FindRouteFlat(const geo::IndoorPoint& from,
                              const geo::IndoorPoint& to) const;
  double IndoorDistanceFlat(const geo::IndoorPoint& from,
                            const geo::IndoorPoint& to) const;
  std::vector<double> IndoorDistancesFlat(const geo::IndoorPoint& from,
                                          std::span<const geo::IndoorPoint> tos) const;
  bool ReachableFlat(const geo::IndoorPoint& from, const geo::IndoorPoint& to) const;

  /// Disables (or re-enables) the contracted query path at runtime, forcing
  /// queries onto the flat reference. Parity testing and benchmarking only.
  /// Also drops the memoized trees and resets the cache counters. Like any
  /// non-const method (and like Dsm::set_spatial_index_enabled), this
  /// requires external quiescence: don't toggle while other threads are
  /// inside the const query methods.
  void set_contraction_enabled(bool enabled);
  bool contraction_enabled() const { return use_contraction_; }

  /// Number of nodes in the static routing graph (doors + portals + vertical
  /// connector endpoints).
  size_t NodeCount() const { return nodes_.size(); }
  /// Number of portal nodes surviving contraction.
  size_t PortalCount() const { return portal_nodes_.size(); }
  /// Directed edge count of the flat clique graph.
  size_t FlatEdgeCount() const;
  /// Directed shortcut-edge count of the contracted portal graph.
  size_t ContractedEdgeCount() const { return portal_adjacency_.size(); }

  // Cache observability (tests / benches / obs callback gauges).
  size_t cache_hits() const;
  size_t cache_misses() const;
  /// Trees dropped by the LRU capacity bound since the last ClearCache.
  size_t cache_evictions() const;
  size_t cache_size() const;
  /// Drops every memoized tree and resets the hit/miss counters, so
  /// observability starts from a clean slate (benchmark phases, tests).
  void ClearCache() const;

 private:
  struct Node {
    geo::IndoorPoint point;
    // Partitions this node belongs to (a door node belongs to the partitions
    // it connects; a vertical node to its own partition).
    std::vector<EntityId> partitions;
  };
  struct Edge {
    int to;
    double weight;
  };
  // Shortest-path tree from one source node: distance and predecessor per
  // graph node. Immutable once computed; shared out of the cache by pointer.
  struct SourceTree {
    std::vector<double> dist;
    std::vector<int32_t> prev;
  };
  // Shortest-path tree over the contracted portal graph (indexed by portal
  // rank). `prev` is the predecessor portal, or -1 at a seeded root whose
  // entry node is then `seed_node`.
  struct PortalTree {
    std::vector<double> dist;
    std::vector<int32_t> prev;
    std::vector<int32_t> seed_node;
    // Settle sequence of each portal (INT32_MAX when unreached). Mirrors the
    // flat Dijkstra's pop order among portals — including the causal order of
    // zero-weight chains between coincident portals, which plain
    // (distance, id) ranks would mispredict — so exit-candidate tie-breaking
    // picks the same predecessor the flat tree records.
    std::vector<int32_t> settle;
  };
  // One seed of a portal Dijkstra: reach `portal` at cost `value` by stepping
  // from local node `via` (whose own offset from the query point is `rank_w`;
  // ties between seeds resolve by (value, rank_w, via) — the order the flat
  // Dijkstra's heap would pop the writers in).
  struct PortalSeed {
    int32_t portal;
    double value;
    double rank_w;
    int32_t via;
  };
  // A (portal, weight) hop between a graph node and the portal set.
  struct PortalLink {
    int32_t portal;
    double weight;
  };
  struct TreeCache;  // bounded LRUs over SourceTree/PortalTree, internally locked
  // Per-thread scratch arena for portal Dijkstras (the CleanerScratch idiom):
  // the seed list, the heap, the seed-rank tie-break columns, and — for hub
  // mode, whose trees are query-local rather than cached — the result tree
  // itself, all reused across queries so a steady-state hub query allocates
  // nothing. Defined in routing.cc.
  struct PortalScratch;

  // Resolution of one contracted exit at local node `b`: the bit-exact flat
  // tree distance (min over the direct single-edge crossings and the portal
  // exit hops) plus which candidate the flat Dijkstra's first-writer rule
  // records as b's predecessor. Shared by the single-query crossing search
  // and the batch distance path, so batch == single is structural.
  struct ExitResolution {
    double value = std::numeric_limits<double>::infinity();   // flat dist at b
    double rank_w = std::numeric_limits<double>::infinity();  // writer pop key
    int32_t rank_id = std::numeric_limits<int32_t>::max();    // writer node id
    int32_t settle = std::numeric_limits<int32_t>::max();     // portal settle seq
    bool direct = false;
    int direct_entry = -1;
    int exit_portal = -1;

    // First-writer-in-pop-order candidate selection (see routing.cc).
    void Offer(double value, double rank_w, int32_t rank_id, int32_t settle,
               bool direct, int direct_entry, int exit_portal);
  };
  // Local source nodes (node, offset) grouped by every partition they touch.
  using SourceByPartition = std::map<EntityId, std::vector<std::pair<int, double>>>;

  // How BestCrossing found the winning crossing, with deterministic
  // tie-breaking. `tree`/`portal_tree` is set for the mode that ran. For the
  // flat paths, `entry` is the tree root (memoized mode) or -1 (hub mode);
  // the exit's prev-chain ends at a -1 predecessor. For the contracted
  // paths, `entry`/`exit` are the local nodes and `direct` marks a
  // single-edge crossing (no portal involved); otherwise `exit_portal` roots
  // the unpack walk.
  struct BestPair {
    double total = 0;
    int entry = -1;
    int exit = -1;
    bool direct = false;
    int exit_portal = -1;
    std::shared_ptr<const SourceTree> tree;
    std::shared_ptr<const PortalTree> portal_tree;
  };

  RoutePlanner() = default;

  void AddEdge(int a, int b, double w);
  // Contracts the flat graph: classifies portal nodes and materializes the
  // portal adjacency + node->portal link CSRs. `has_vertical` flags nodes
  // carrying a vertical edge.
  void BuildPortalGraph(const std::vector<uint8_t>& has_vertical);
  // Finds graph nodes directly reachable from `p` (sharing its partition).
  std::vector<std::pair<int, double>> LocalNodes(const geo::IndoorPoint& p) const;
  // Dijkstra over the static graph from `source`.
  SourceTree ComputeTree(int source) const;
  // Cached tree lookup (computes + inserts on miss; bypasses the cache when
  // capacity is 0).
  std::shared_ptr<const SourceTree> TreeFrom(int source) const;

  // Multi-seed Dijkstra: distances/predecessors from a virtual source linked
  // to `seeds` (node, initial distance). Seeds carry prev -1.
  SourceTree ComputeMultiSeedTree(
      const std::vector<std::pair<int, double>>& seeds) const;

  // ---- contracted (portal graph) internals ----

  // The calling thread's scratch arena.
  static PortalScratch& LocalPortalScratch();
  // Dijkstra over the portal graph, written into `out` (capacity reused
  // across calls via the scratch's rank/heap buffers). Tie-breaking mirrors
  // the flat Dijkstra's first-writer-in-pop-order rule so unpacked paths
  // match it node for node.
  void ComputePortalTreeInto(PortalScratch* scratch, PortalTree* out) const;
  // Cached contracted tree rooted at local node `source` (seeds =
  // node_portal_links_ of the node, offsets relative to the node itself).
  std::shared_ptr<const PortalTree> PortalTreeFrom(int source) const;
  // node -> its portal links [link_offsets_[n], link_offsets_[n+1]).
  std::span<const PortalLink> LinksOf(int node) const;
  // True iff nodes `a` and `b` share a partition (a flat edge exists).
  bool NodesAdjacent(int a, int b) const;

  // Exit resolution for hub mode (multi-seed portal tree + grouped sources)
  // and memoized mode (per-source portal tree rooted at local node `a`).
  ExitResolution ResolveExitHub(int b, const PortalTree& tree,
                                const SourceByPartition& sources) const;
  ExitResolution ResolveExitMemoized(int a, int b, const PortalTree& tree) const;
  // Portal tree seeded from every local node of a hub source partition,
  // exactly as the flat multi-seed Dijkstra would first relax it. The tree
  // lives in the calling thread's scratch arena (hub trees are query-local,
  // never cached) and is returned non-owning: it stays valid until this
  // thread's next hub portal Dijkstra, which every caller finishes with the
  // tree before issuing.
  std::shared_ptr<const PortalTree> ComputeHubPortalTree(
      const std::vector<std::pair<int, double>>& from_nodes) const;
  SourceByPartition GroupSourcesByPartition(
      const std::vector<std::pair<int, double>>& from_nodes) const;

  bool BestCrossing(const std::vector<std::pair<int, double>>& from_nodes,
                    const std::vector<std::pair<int, double>>& to_nodes,
                    BestPair* out) const;
  bool BestCrossingContracted(const std::vector<std::pair<int, double>>& from_nodes,
                              const std::vector<std::pair<int, double>>& to_nodes,
                              BestPair* out) const;

  // Shared FindRoute/IndoorDistance bodies parameterized on the crossing
  // algorithm (contracted or flat reference).
  Result<Route> FindRouteImpl(const geo::IndoorPoint& from,
                              const geo::IndoorPoint& to, bool contracted) const;
  double IndoorDistanceImpl(const geo::IndoorPoint& from,
                            const geo::IndoorPoint& to, bool contracted) const;
  std::vector<double> IndoorDistancesImpl(const geo::IndoorPoint& from,
                                          std::span<const geo::IndoorPoint> tos,
                                          bool contracted) const;
  // Appends the full node chain of `best` (entry node through exit node) to
  // `chain`, unpacking the contracted crossing when `best.portal_tree` is set.
  void UnpackChain(const BestPair& best, std::vector<int>* chain) const;

  const Dsm* dsm_ = nullptr;
  RoutePlannerOptions options_;
  std::vector<Node> nodes_;
  std::vector<std::vector<Edge>> adjacency_;
  // partition id -> node indices inside it (ascending).
  std::map<EntityId, std::vector<int>> partition_nodes_;

  // Contracted portal graph. Portals in ascending node order, so portal rank
  // order == node id order and heap tie-breaks agree with the flat Dijkstra.
  std::vector<int32_t> portal_nodes_;  // portal rank -> node id
  std::vector<int32_t> node_portal_;   // node id -> portal rank, or -1
  // CSR shortcut adjacency over portal ranks (flat clique + vertical edges
  // restricted to portal endpoints; weights bit-identical to the flat graph).
  std::vector<uint32_t> portal_adj_offsets_;
  std::vector<Edge> portal_adjacency_;
  // CSR node -> portal hops: a portal node links to itself at weight 0, a
  // contracted node to every portal sharing one of its partitions.
  std::vector<uint32_t> link_offsets_;
  std::vector<PortalLink> node_portal_links_;

  bool use_contraction_ = true;
  // Shared (not unique) so RoutePlanner stays movable while the cache holds a
  // mutex; copies of a planner share one cache, which is sound because trees
  // depend only on the immutable graph.
  std::shared_ptr<TreeCache> cache_;
};

}  // namespace trips::dsm
