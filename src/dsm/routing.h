// Indoor shortest-path routing over the DSM's door/partition topology.
// Used by the Cleaning layer's location interpolation ("deriving the possible
// locations ... based on the indoor geometrical and topological information
// captured by the DSM", §3) and by the mobility generator substrate.
//
// Queries decompose into point-dependent and graph-only parts: the shortest
// from->to distance is min over (a, b) of |from-a| + D(a, b) + |b-to|, where a
// ranges over the graph nodes of from's partition, b over to's partition, and
// D is the node-to-node shortest-path distance in the static graph. D depends
// only on the source node, so the planner memoizes one Dijkstra tree per
// source node in a bounded LRU shared by FindRoute / IndoorDistance /
// Reachable / IndoorDistances — repeat queries between the same partitions
// (the common case: cleaning gaps of a fleet moving between the same shops)
// skip Dijkstra entirely. Results are identical cached or uncached.
#pragma once

#include <map>
#include <memory>
#include <span>
#include <vector>

#include "dsm/dsm.h"
#include "util/result.h"

namespace trips::dsm {

/// Options controlling the route planner.
struct RoutePlannerOptions {
  /// Cost in metres charged for moving one floor via a staircase/elevator.
  double vertical_cost_per_floor = 15.0;
  /// Maximum number of per-source-node shortest-path trees kept in the LRU
  /// cache (each tree costs ~12 bytes per graph node). 0 disables memoization
  /// entirely (every query re-runs Dijkstra) — parity testing only.
  size_t route_cache_capacity = 1024;
  /// Queries whose source partition carries more graph nodes than this skip
  /// the per-node trees and run one multi-seed Dijkstra instead (a hub
  /// partition like a long corridor would otherwise cost one Dijkstra per
  /// door). The chosen mode depends only on the query and the graph — never
  /// on cache state — so results stay deterministic.
  size_t max_memoized_sources = 8;
};

/// A computed indoor route: the waypoints (start, door midpoints, vertical
/// transitions, end) and the total indoor walking distance.
struct Route {
  std::vector<geo::IndoorPoint> waypoints;
  double distance = 0;

  bool Empty() const { return waypoints.empty(); }

  /// The point reached after walking `d` metres along the route (clamped to
  /// the endpoints). Vertical transitions consume their per-floor cost but
  /// keep the planar position of the connector.
  geo::IndoorPoint PointAtDistance(double d) const;
};

/// Plans shortest walkable paths between indoor points. Builds a static node
/// graph (doors + overlap portals + vertical connectors) from the DSM once,
/// then answers queries from memoized per-source-node Dijkstra trees. All
/// query methods are const and thread-safe (the internal cache locks).
class RoutePlanner {
 public:
  /// Builds the routing graph. The DSM's topology must be computed first.
  static Result<RoutePlanner> Build(const Dsm* dsm, RoutePlannerOptions options = {});

  /// Computes the shortest route from `from` to `to`. Fails with NotFound
  /// when either endpoint lies outside every walkable partition or no
  /// connected path exists.
  Result<Route> FindRoute(const geo::IndoorPoint& from, const geo::IndoorPoint& to) const;

  /// Shortest indoor walking distance, or +inf if unreachable/outside.
  double IndoorDistance(const geo::IndoorPoint& from, const geo::IndoorPoint& to) const;

  /// Batch variant: distances from `from` to every point of `tos`, resolving
  /// the source partition and its shortest-path trees once instead of per
  /// target. Element i equals IndoorDistance(from, tos[i]) exactly.
  std::vector<double> IndoorDistances(const geo::IndoorPoint& from,
                                      std::span<const geo::IndoorPoint> tos) const;

  /// True iff a walkable path exists between the two points.
  bool Reachable(const geo::IndoorPoint& from, const geo::IndoorPoint& to) const;

  /// Number of nodes in the static routing graph (doors + portals + vertical
  /// connector endpoints).
  size_t NodeCount() const { return nodes_.size(); }

  // Cache observability (tests / benches).
  size_t cache_hits() const;
  size_t cache_misses() const;
  size_t cache_size() const;

 private:
  struct Node {
    geo::IndoorPoint point;
    // Partitions this node belongs to (a door node belongs to the partitions
    // it connects; a vertical node to its own partition).
    std::vector<EntityId> partitions;
  };
  struct Edge {
    int to;
    double weight;
  };
  // Shortest-path tree from one source node: distance and predecessor per
  // graph node. Immutable once computed; shared out of the cache by pointer.
  struct SourceTree {
    std::vector<double> dist;
    std::vector<int32_t> prev;
  };
  struct TreeCache;  // bounded LRU over SourceTree, internally locked

  RoutePlanner() = default;

  void AddEdge(int a, int b, double w);
  // Finds graph nodes directly reachable from `p` (sharing its partition).
  std::vector<std::pair<int, double>> LocalNodes(const geo::IndoorPoint& p) const;
  // Dijkstra over the static graph from `source`.
  SourceTree ComputeTree(int source) const;
  // Cached tree lookup (computes + inserts on miss; bypasses the cache when
  // capacity is 0).
  std::shared_ptr<const SourceTree> TreeFrom(int source) const;

  // Multi-seed Dijkstra: distances/predecessors from a virtual source linked
  // to `seeds` (node, initial distance). Seeds carry prev -1.
  SourceTree ComputeMultiSeedTree(
      const std::vector<std::pair<int, double>>& seeds) const;

  // The best crossing for a cross-partition query, with deterministic
  // tie-breaking. Returns false when unreachable. `tree` is rooted at `entry`
  // (memoized mode) or at the virtual multi-seed source (`entry` == -1, hub
  // mode); either way the exit's prev-chain ends at a -1 predecessor.
  struct BestPair {
    double total = 0;
    int entry = -1;
    int exit = -1;
    std::shared_ptr<const SourceTree> tree;
  };
  bool BestCrossing(const std::vector<std::pair<int, double>>& from_nodes,
                    const std::vector<std::pair<int, double>>& to_nodes,
                    BestPair* out) const;

  const Dsm* dsm_ = nullptr;
  RoutePlannerOptions options_;
  std::vector<Node> nodes_;
  std::vector<std::vector<Edge>> adjacency_;
  // partition id -> node indices inside it (ascending).
  std::map<EntityId, std::vector<int>> partition_nodes_;
  // Shared (not unique) so RoutePlanner stays movable while the cache holds a
  // mutex; copies of a planner share one cache, which is sound because trees
  // depend only on the immutable graph.
  std::shared_ptr<TreeCache> cache_;
};

}  // namespace trips::dsm
