// Ready-made sample indoor spaces.
//
// BuildMallDsm reproduces the shape of the paper's demonstration venue: a
// 7-floor shopping mall (Hangzhou, §4) with shops along corridors, a center
// hall, staircases and an elevator. BuildOfficeDsm is a smaller two-floor
// office used by examples and tests. BuildTransitHubDsm and BuildStadiumDsm
// are parameterized sibling venues with distinct shapes (platform strips
// behind a concourse; a ring concourse around a pitch), so a multi-venue
// cluster demo exercises genuinely different door/portal graphs per shard.
#pragma once

#include "dsm/dsm.h"
#include "util/result.h"

namespace trips::dsm {

/// Options for the synthetic mall model.
struct MallOptions {
  /// Number of floors (the paper's venue has 7).
  int floors = 7;
  /// Shops per side per corridor arm; total shops/floor = 4 * shops_per_arm.
  /// Values above 3 widen the floor proportionally (venue-scaling knob for
  /// the spatial-index benchmarks).
  int shops_per_arm = 3;
  /// Whether to create semantic regions for corridors and the center hall.
  bool corridor_regions = true;
};

/// Builds the synthetic mall DSM with topology computed.
///
/// Per-floor layout (metres), floor f in [0, floors), with shops_per_arm <= 3
/// (larger wings shift everything east of the west wing right by
/// 14 * (shops_per_arm - 3)):
///   outline          (0,0)-(100,60)
///   corridor-h       (0,24)-(100,36)      hallway
///   corridor-v       (44,0)-(56,60)       hallway
///   center hall      (40,20)-(60,40)      semantic region over the crossing
///   shops            10x20 rooms flush against the horizontal corridor, with
///                    doors to it; branded semantic regions cover them
///   stair-A          (45,56)-(55,60)      staircase linking all floors
///   elev-A           (45,0)-(55,3)        elevator linking all floors
Result<Dsm> BuildMallDsm(const MallOptions& options = {});

/// Builds a small two-floor office: six offices and a meeting room per floor
/// along one corridor, one staircase. Topology computed.
Result<Dsm> BuildOfficeDsm();

/// Options for the synthetic transit hub.
struct TransitHubOptions {
  /// Platform strips on the platform level (floor 0), north of the access
  /// corridor. The venue-scale knob: the hub widens with the platform count.
  int platforms = 4;
  /// Retail kiosks along the south edge of the concourse (floor 1).
  int shops = 6;
};

/// Builds a two-level transit hub with topology computed.
///
/// Floor 0 (platform level): an east-west access corridor with `platforms`
/// platform strips north of it, each with a gate door onto the corridor.
/// Floor 1 (concourse): one large hall with boarding gates (north, aligned
/// with the platforms below) and `shops` kiosks (south). A staircase at the
/// west end and an elevator at the east end link the levels. Region
/// categories: "platform", "gate", "shop", "hall".
Result<Dsm> BuildTransitHubDsm(const TransitHubOptions& options = {});

/// Options for the synthetic stadium.
struct StadiumOptions {
  /// Seating sections along the north and the south concourse (each side).
  /// The venue-scale knob: the bowl widens with the section count.
  int sections_per_side = 3;
  /// Concourse levels (>= 1), linked by a staircase in the west concourse.
  int floors = 2;
};

/// Builds a stadium with topology computed: four overlapping concourse
/// hallways form a ring around the (unmodeled) pitch — their corner overlaps
/// become routing portals — with seating sections opening onto the north and
/// south concourses and food stalls onto the west and east ones. Region
/// categories: "stand", "shop", "corridor".
Result<Dsm> BuildStadiumDsm(const StadiumOptions& options = {});

}  // namespace trips::dsm
