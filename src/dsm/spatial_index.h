// Spatial acceleration index for the DSM's point queries. The brute-force
// implementations of PartitionAt/RegionAt/IsWalkable/SnapToWalkable scan every
// entity (or region) with a full point-in-polygon test, so per-record cost in
// the translation hot loops grows with venue size. This index buckets the
// walkable partitions, the semantic regions and the walkable boundary edges of
// each floor into a uniform grid built once (during Dsm::ComputeTopology), so
// each query touches only the handful of shapes whose bounding boxes cover the
// queried cell.
//
// The index is exact, not approximate: candidates are visited in id order with
// the same comparisons as the brute-force scans (smallest area wins, lowest id
// breaks ties; nearest edge wins, first-traced edge breaks ties), so every
// query returns bit-identical results to the linear scan it replaces. The
// parity suite in tests/spatial_index_test.cc enforces this.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "dsm/entity.h"
#include "obs/metrics.h"

namespace trips::dsm {

/// Point-query counts of a SpatialIndex since Build (or ResetProbes) — the
/// raw denominator data behind the per-record spatial cost numbers the obs
/// registry exports ("how many grid probes did this workload issue").
struct SpatialProbeStats {
  uint64_t partition_probes = 0;  ///< PartitionAt / IsWalkable calls
  uint64_t region_probes = 0;     ///< RegionAt calls
  uint64_t snap_probes = 0;       ///< SnapToWalkable / SnapIfOutside calls
  uint64_t snapped_outside = 0;   ///< snap probes whose point was NOT walkable
};

/// Grid construction knobs. The defaults target roughly one shape per cell on
/// floorplan-shaped inputs; see the README "Performance" notes on tuning.
struct SpatialIndexOptions {
  /// Lower bound for the cell edge length, metres. Smaller cells sharpen the
  /// candidate filter but cost memory (cells scale with 1/cell^2).
  double min_cell_size = 1.0;
  /// Upper bound for the cell edge length, metres.
  double max_cell_size = 64.0;
  /// Hard cap on grid cells per axis per floor (memory guard for venues with
  /// pathological aspect ratios).
  int max_cells_per_axis = 512;
};

/// Per-floor uniform-grid index over walkable partitions, semantic regions and
/// walkable boundary edges. Build() snapshots the shapes it indexes (ids,
/// bounding boxes, areas and polygons), so the index stays valid while the
/// source Dsm's vectors reallocate, and a Dsm copy/move carries it along.
/// All query methods are const and thread-safe after Build().
class SpatialIndex {
 public:
  /// (Re)builds the index over the given entities and regions. Entities and
  /// regions must be stored in ascending id order (as Dsm keeps them).
  void Build(const std::vector<Entity>& entities,
             const std::vector<SemanticRegion>& regions,
             const SpatialIndexOptions& options = {});

  /// Drops all indexed data; built() becomes false.
  void Clear();

  bool built() const { return built_; }

  // ---- point queries (exact brute-force parity) ----

  /// The smallest-area walkable partition containing `p`, or kInvalidEntity.
  EntityId PartitionAt(const geo::IndoorPoint& p) const;

  /// True iff `p` lies in some walkable partition.
  bool IsWalkable(const geo::IndoorPoint& p) const {
    return PartitionAt(p) != kInvalidEntity;
  }

  /// The smallest-area semantic region containing `p`, or kInvalidRegion.
  RegionId RegionAt(const geo::IndoorPoint& p) const;

  /// Nearest walkable point to `p` on its floor (p itself when walkable),
  /// found by an expanding ring search over the edge buckets.
  geo::IndoorPoint SnapToWalkable(const geo::IndoorPoint& p) const;

  /// Combined walkability + snap: one cell lookup answers both halves of the
  /// IsWalkable/SnapToWalkable pair the cleaning hot loop used to issue. Sets
  /// `*snapped` to false and returns `p` when `p` is walkable (the
  /// walkability probe early-exits at the first containing partition instead
  /// of finishing the smallest-area scan); otherwise sets `*snapped` to true
  /// and returns the ring-search snap (identical to SnapToWalkable).
  geo::IndoorPoint SnapIfOutside(const geo::IndoorPoint& p, bool* snapped) const;

  /// Batched SnapIfOutside over a whole block of points: each (out[i],
  /// snapped[i], with snapped[i] in {0,1}) is exactly what the per-point call
  /// returns for points[i]. The batch first mask-tests walkability over all
  /// points (one first-hit cell probe each), then sorts the outside points by
  /// (floor, grid cell) so the expanding-ring edge searches run
  /// cache-coherently through the buckets, scattering results back in the
  /// original order. Each ring search starts at the cell's precomputed
  /// first-candidate ring (see FloorGrid::first_edge_ring) instead of ring 0,
  /// which is what makes far-outside batches cheap. All three spans must have
  /// equal length; `out` may alias `points`.
  void SnapIfOutsideBatch(std::span<const geo::IndoorPoint> points,
                          std::span<geo::IndoorPoint> out,
                          std::span<uint8_t> snapped) const;

  /// Semantic regions on `floor` that contain `p` or whose boundary is within
  /// `max_dist` of it, ascending region id — the index-backed equivalent of
  /// the linear region scan Dsm::ComputeTopology's adjacency steps used.
  std::vector<RegionId> RegionsNear(const geo::Point2& p, geo::FloorId floor,
                                    double max_dist) const;

  /// Invokes fn(a, b), a < b, for every same-floor region pair whose padded
  /// bounding boxes intersect — the candidate superset of the contact-based
  /// adjacency scan, enumerated through the region cell buckets instead of
  /// the O(regions²) cross product.
  void ForEachRegionBboxPair(
      const std::function<void(RegionId, RegionId)>& fn) const;

  // ---- precomputed maps ----

  /// Regions whose bounding box intersects walkable partition `pid`'s
  /// bounding box, ascending — a correct candidate superset for resolving the
  /// region membership of any point inside the partition without re-scanning
  /// all region polygons. Empty for unknown/non-walkable ids.
  const std::vector<RegionId>& RegionCandidatesOfPartition(EntityId pid) const;

  // ---- introspection (tests / benches / obs) ----

  /// Number of per-floor grids.
  size_t FloorGridCount() const { return grids_.size(); }
  /// Total grid cells across all floors.
  size_t CellCount() const;
  /// Cell edge length of `floor`'s grid, or 0 when the floor is not indexed.
  double CellSize(geo::FloorId floor) const;

  /// Point-query counts since Build/ResetProbes. Copies of an index share one
  /// counter block (the counters live behind a shared_ptr so the class stays
  /// copyable); Build allocates a fresh block. Zeroes before Build.
  SpatialProbeStats probes() const;
  /// Zeroes the probe counters (benchmark phases, tests). Not linearizable
  /// against concurrent queries; call at quiescent points.
  void ResetProbes() const;

 private:
  // One indexed shape: the id it answers with plus the cached geometry the
  // query comparisons need.
  struct Shape {
    int32_t id = -1;
    double area = 0;
    geo::BoundingBox bounds;  // padded by the polygon boundary epsilon
    geo::Polygon polygon;
  };

  // CSR cell buckets: items of cell c are items[offsets[c] .. offsets[c+1]).
  struct Buckets {
    std::vector<uint32_t> offsets;
    std::vector<int32_t> items;
  };

  struct FloorGrid {
    geo::FloorId floor = 0;
    geo::Point2 origin;
    double cell = 1;
    double inv_cell = 1;
    int nx = 0, ny = 0;

    std::vector<Shape> partitions;  // ascending entity id
    std::vector<Shape> regions;     // ascending region id
    // Walkable boundary edges in brute-force traversal order (entities
    // ascending, polygon edge order within each); the index doubles as the
    // tie-break rank.
    std::vector<geo::Segment> edges;

    Buckets partition_cells;
    Buckets region_cells;
    Buckets edge_cells;
    // Per cell: chessboard (Chebyshev) distance to the nearest cell with a
    // non-empty edge bucket — i.e. the first expanding-search ring that can
    // contain an edge candidate. Rings below it are provably empty, so a
    // search seeded here visits exactly the same candidates as one seeded at
    // ring 0. 0xFFFF when the floor has no edges at all.
    std::vector<uint16_t> first_edge_ring;

    int CellX(double x) const;
    int CellY(double y) const;
    int CellIndex(int ix, int iy) const { return iy * nx + ix; }
  };

  const FloorGrid* GridFor(geo::FloorId floor) const;

  // First-hit walkability probe: true iff some partition in p's cell bucket
  // contains p (existence only — never PartitionAt's full smallest-area scan).
  static bool WalkableFirstHit(const FloorGrid& grid, const geo::Point2& p);
  // The expanding-ring edge search SnapIfOutside falls back to for an
  // unwalkable point; shared verbatim by the batched form so both produce
  // identical snaps. `grid` must be p's floor grid.
  //
  // The two extra knobs are the batch path's structural optimisations; both
  // are pure search-space prunes, so results stay byte-identical. The
  // per-point query always passes the defaults and so doubles as the
  // reference the prunes are tested against.
  //  - `start_ring` skips the leading rings; the caller must guarantee they
  //    hold no edge-bucket cells (first_edge_ring[cell] does).
  //  - `batch_prune` enables two bound tightenings. The early-exit margin
  //    becomes the distance from p to the part of the grid's footprint
  //    outside the covered rectangle — the region every unvisited edge
  //    actually lies in; for points beyond the grid (clamped to a border
  //    cell) the plain rectangle margin stays negative until the rectangle
  //    has grown past the point, which forces O((d/cell)^2) populated border
  //    cells to be scanned, while the clipped bound exits after a couple of
  //    rings. And each visited cell is skipped outright when its rectangle is
  //    strictly farther than the current best — strictly, so an equal-
  //    distance cell that could hold a lower-rank tie-break winner is always
  //    still scanned.
  geo::IndoorPoint SnapViaRings(const FloorGrid& grid, const geo::IndoorPoint& p,
                                int start_ring = 0,
                                bool batch_prune = false) const;

  // Always-on (ungated) lock-free counters; recording cost is one relaxed
  // fetch_add per query, negligible next to the grid probe itself.
  struct ProbeCounters {
    obs::Counter partition_probes;
    obs::Counter region_probes;
    obs::Counter snap_probes;
    obs::Counter snapped_outside;
  };

  std::vector<FloorGrid> grids_;  // ascending floor id
  // Indexed by EntityId (dense); empty vectors for non-walkable entities.
  std::vector<std::vector<RegionId>> partition_region_candidates_;
  std::shared_ptr<ProbeCounters> probes_;  // null until first Build
  bool built_ = false;
};

}  // namespace trips::dsm
