// DSM linting: structural checks the Space Modeler runs before a traced
// model is used for translation. Catching a door that connects nothing or an
// island partition at modeling time is far cheaper than debugging why the
// Cleaning layer interpolates through walls later.
#pragma once

#include <string>
#include <vector>

#include "dsm/dsm.h"

namespace trips::dsm {

/// Severity of a validation finding.
enum class IssueSeverity { kWarning, kError };

/// One validation finding.
struct ValidationIssue {
  IssueSeverity severity = IssueSeverity::kWarning;
  /// Stable machine-readable code, e.g. "door-unattached".
  std::string code;
  /// Human-readable description naming the offending entity/region.
  std::string message;
  /// The entity involved, or kInvalidEntity.
  EntityId entity = kInvalidEntity;
  /// The region involved, or kInvalidRegion.
  RegionId region = kInvalidRegion;
};

/// Options of the validator.
struct ValidationOptions {
  /// Regions whose walkable coverage (fraction of sampled interior points in
  /// some walkable partition) falls below this raise "region-not-walkable".
  double min_region_walkable_fraction = 0.5;
  /// Sampling grid used for the coverage estimate, points per axis.
  int coverage_grid = 8;
};

/// Checks performed (codes):
///   door-unattached       [error]   door connects fewer than 2 partitions
///   island-partition      [warning] walkable partition with no door/overlap/
///                                   vertical link (unreachable from outside)
///   region-no-adjacency   [warning] region disconnected in the region graph
///   region-not-walkable   [warning] region area mostly outside walkable space
///   duplicate-region-name [warning] two regions share a display name
///   unnamed-entity        [warning] walkable partition without a name
///   empty-floor           [warning] declared floor carrying no entities
///   vertical-unlinked     [warning] staircase/elevator with no vertical link
///
/// Topology must be computed; returns an error status otherwise. The issues
/// list is empty for a healthy model.
Result<std::vector<ValidationIssue>> ValidateDsm(const Dsm& dsm,
                                                 const ValidationOptions& options = {});

/// Renders issues one per line ("[ERROR] door-unattached: ...").
std::string FormatIssues(const std::vector<ValidationIssue>& issues);

}  // namespace trips::dsm
