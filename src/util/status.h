// Status: lightweight error propagation without exceptions, following the
// RocksDB/Arrow idiom. Fallible TRIPS APIs return Status (or Result<T>,
// see result.h) instead of throwing across library boundaries.
#pragma once

#include <string>
#include <utility>

namespace trips {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kParseError,
  kIOError,
  kInternal,
  kNotSupported,
};

/// Returns a short human-readable name for a status code, e.g. "InvalidArgument".
const char* StatusCodeToString(StatusCode code);

/// Outcome of a fallible operation: a code plus an optional message.
///
/// Usage follows the RocksDB pattern:
///
///     trips::Status s = dsm.AddEntity(entity);
///     if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  /// Returns an OK status.
  static Status OK() { return Status(); }
  /// Returns an InvalidArgument status with the given message.
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  /// Returns a NotFound status with the given message.
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  /// Returns an AlreadyExists status with the given message.
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  /// Returns an OutOfRange status with the given message.
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  /// Returns a FailedPrecondition status with the given message.
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  /// Returns a ParseError status with the given message.
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  /// Returns an IOError status with the given message.
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  /// Returns an Internal status with the given message.
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  /// Returns a NotSupported status with the given message.
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }

  /// True iff the operation succeeded.
  bool ok() const { return code_ == StatusCode::kOk; }
  /// The status code.
  StatusCode code() const { return code_; }
  /// The error message; empty for OK statuses.
  const std::string& message() const { return msg_; }

  /// Renders the status as "<Code>: <message>" (or "OK").
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && msg_ == other.msg_;
  }

 private:
  StatusCode code_;
  std::string msg_;
};

/// Propagates a non-OK status to the caller.
#define TRIPS_RETURN_NOT_OK(expr)              \
  do {                                         \
    ::trips::Status _st = (expr);              \
    if (!_st.ok()) return _st;                 \
  } while (0)

}  // namespace trips
