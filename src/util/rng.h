// Deterministic random number generation for simulation and benchmarks.
// All stochastic TRIPS components (error model, mobility generator, learning
// models) take an explicit Rng so runs are reproducible from a seed.
#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

namespace trips {

/// Seedable pseudo-random generator wrapping std::mt19937_64 with the
/// distributions TRIPS needs.
class Rng {
 public:
  /// Constructs a generator from a fixed seed (default: arbitrary constant,
  /// so default-constructed Rngs are reproducible too).
  explicit Rng(uint64_t seed = 0x5eedu) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    std::uniform_real_distribution<double> d(lo, hi);
    return d(engine_);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi) {
    std::uniform_int_distribution<int64_t> d(lo, hi);
    return d(engine_);
  }

  /// Normal (Gaussian) sample with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    std::normal_distribution<double> d(mean, stddev);
    return d(engine_);
  }

  /// Bernoulli trial: true with probability p (p clamped to [0,1]).
  bool Chance(double p) {
    if (p <= 0) return false;
    if (p >= 1) return true;
    std::bernoulli_distribution d(p);
    return d(engine_);
  }

  /// Exponential sample with the given rate (lambda).
  double Exponential(double lambda) {
    std::exponential_distribution<double> d(lambda);
    return d(engine_);
  }

  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// Non-positive weights are treated as zero; if all are zero, returns 0.
  size_t WeightedIndex(const std::vector<double>& weights);

  /// Shuffles a vector in place.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    std::shuffle(v->begin(), v->end(), engine_);
  }

  /// Access to the raw engine for std:: algorithms.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace trips
