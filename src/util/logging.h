// Minimal leveled logging to stderr. Off by default above kWarn so tests and
// benchmarks stay quiet; callers can raise verbosity via SetLogLevel.
#pragma once

#include <sstream>
#include <string>

namespace trips {

/// Log severity, ordered by increasing importance.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the global minimum level that is emitted (default kWarn).
void SetLogLevel(LogLevel level);
/// Returns the current global minimum level.
LogLevel GetLogLevel();

namespace internal {

/// Streams one log record and emits it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

#define TRIPS_LOG(level)                                                     \
  ::trips::internal::LogMessage(::trips::LogLevel::k##level, __FILE__, __LINE__)

}  // namespace trips
