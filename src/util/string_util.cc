#include "util/string_util.h"

#include <cctype>
#include <cstdio>

namespace trips {

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      break;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view Trim(std::string_view text) {
  size_t b = 0;
  size_t e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return text.substr(b, e - b);
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

bool GlobMatch(std::string_view pattern, std::string_view text) {
  // Iterative two-pointer matcher with star backtracking.
  size_t p = 0, t = 0;
  size_t star = std::string_view::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() && (pattern[p] == '?' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      star_t = t;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

}  // namespace trips
