#include "util/thread_pool.h"

#include <atomic>
#include <memory>

namespace trips::util {

ThreadPool::ThreadPool(size_t workers) {
  threads_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    if (metrics_.queue_depth != nullptr) metrics_.queue_depth->Sub(1);
    if (task.enqueue_ns != 0 && metrics_.task_wait_ns != nullptr) {
      metrics_.task_wait_ns->Record(obs::NowNanos() - task.enqueue_ns);
    }
    {
      obs::StageTimer run_timer(metrics_.task_run_ns);
      task.fn();
    }
    if (metrics_.tasks_run != nullptr) metrics_.tasks_run->Add(1);
  }
}

void ThreadPool::Submit(std::function<void()> fn) {
  if (threads_.empty()) {
    fn();
    return;
  }
  uint64_t enqueue_ns =
      (metrics_.task_wait_ns != nullptr && metrics_.task_wait_ns->recording())
          ? obs::NowNanos()
          : 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(Task{std::move(fn), enqueue_ns});
    if (metrics_.queue_depth != nullptr) metrics_.queue_depth->Add(1);
  }
  work_cv_.notify_one();
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (threads_.empty() || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // Per-call join state, shared with the helper tasks posted to the queue.
  struct JoinState {
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    std::mutex mu;
    std::condition_variable done_cv;
  };
  auto state = std::make_shared<JoinState>();

  auto drain = [state, n, &fn] {
    for (;;) {
      size_t i = state->next.fetch_add(1);
      if (i >= n) break;
      fn(i);
      if (state->done.fetch_add(1) + 1 == n) {
        std::lock_guard<std::mutex> lock(state->mu);
        state->done_cv.notify_all();
      }
    }
  };

  // One helper task per worker (bounded by n); the caller drains too, so
  // progress is guaranteed even when every worker is busy elsewhere.
  size_t helpers = std::min(threads_.size(), n - 1);
  uint64_t enqueue_ns =
      (metrics_.task_wait_ns != nullptr && metrics_.task_wait_ns->recording())
          ? obs::NowNanos()
          : 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < helpers; ++i) {
      queue_.push_back(Task{drain, enqueue_ns});
    }
    // Inside the lock so the gauge can never go transiently negative (a
    // worker cannot dequeue-and-Sub before this Add).
    if (metrics_.queue_depth != nullptr) {
      metrics_.queue_depth->Add(static_cast<int64_t>(helpers));
    }
  }
  for (size_t i = 0; i < helpers; ++i) work_cv_.notify_one();

  drain();
  std::unique_lock<std::mutex> lock(state->mu);
  state->done_cv.wait(lock, [&] { return state->done.load() == n; });
}

}  // namespace trips::util
