#include "util/rng.h"

namespace trips {

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  double total = 0;
  for (double w : weights) {
    if (w > 0) total += w;
  }
  if (total <= 0 || weights.empty()) return 0;
  double r = Uniform(0, total);
  double acc = 0;
  for (size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] > 0) acc += weights[i];
    if (r < acc) return i;
  }
  return weights.size() - 1;
}

}  // namespace trips
