// Result<T>: a value-or-Status union, the Arrow idiom for fallible functions
// that produce a value.
#pragma once

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace trips {

/// Holds either a successfully produced value of type T or an error Status.
///
///     trips::Result<Dsm> r = Dsm::FromJsonFile(path);
///     if (!r.ok()) return r.status();
///     Dsm dsm = std::move(r).ValueOrDie();
template <typename T>
class Result {
 public:
  /// Constructs a successful result holding `value`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs a failed result from a non-OK status.
  Result(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!status_.ok() && "Result constructed from OK status without a value");
  }

  /// True iff a value is present.
  bool ok() const { return value_.has_value(); }

  /// The status; OK when a value is present.
  const Status& status() const { return status_; }

  /// Returns the value; must only be called when ok().
  const T& ValueOrDie() const& {
    assert(ok());
    return *value_;
  }
  /// Moves the value out; must only be called when ok().
  T ValueOrDie() && {
    assert(ok());
    return std::move(*value_);
  }
  /// Returns the value or `fallback` when this result holds an error.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

  /// Pointer-style access to the value; must only be called when ok().
  const T* operator->() const {
    assert(ok());
    return &*value_;
  }
  /// Dereference access to the value; must only be called when ok().
  const T& operator*() const& { return ValueOrDie(); }

 private:
  std::optional<T> value_;
  Status status_;  // OK when value_ holds a value.
};

#define TRIPS_INTERNAL_CONCAT_IMPL(a, b) a##b
#define TRIPS_INTERNAL_CONCAT(a, b) TRIPS_INTERNAL_CONCAT_IMPL(a, b)

#define TRIPS_INTERNAL_ASSIGN_OR_RETURN(tmp, lhs, expr) \
  auto tmp = (expr);                                    \
  if (!tmp.ok()) return tmp.status();                   \
  lhs = std::move(tmp).ValueOrDie()

/// Assigns the value of a Result expression to `lhs`, or propagates its error.
#define TRIPS_ASSIGN_OR_RETURN(lhs, expr) \
  TRIPS_INTERNAL_ASSIGN_OR_RETURN(TRIPS_INTERNAL_CONCAT(_res_, __LINE__), lhs, expr)

}  // namespace trips
