#include "util/time_util.h"

#include <cstdio>
#include <ctime>

#include "util/string_util.h"

namespace trips {

namespace {

// Converts epoch milliseconds to a UTC calendar time plus leftover millis.
void SplitEpochMs(TimestampMs t, std::tm* tm_out, int* millis_out) {
  // Floor-divide so negative timestamps land in the previous second.
  int64_t secs = t / 1000;
  int64_t ms = t % 1000;
  if (ms < 0) {
    ms += 1000;
    secs -= 1;
  }
  std::time_t tt = static_cast<std::time_t>(secs);
  gmtime_r(&tt, tm_out);
  *millis_out = static_cast<int>(ms);
}

}  // namespace

std::string FormatTimestamp(TimestampMs t) {
  std::tm tm{};
  int ms = 0;
  SplitEpochMs(t, &tm, &ms);
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d %02d:%02d:%02d.%03d",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour, tm.tm_min,
                tm.tm_sec, ms);
  return buf;
}

std::string FormatClock(TimestampMs t) {
  std::tm tm{};
  int ms = 0;
  SplitEpochMs(t, &tm, &ms);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%02d:%02d:%02d", tm.tm_hour, tm.tm_min, tm.tm_sec);
  return buf;
}

Result<TimestampMs> ParseTimestamp(const std::string& text) {
  std::tm tm{};
  int millis = 0;
  int consumed = 0;
  int n = std::sscanf(text.c_str(), "%d-%d-%d %d:%d:%d%n", &tm.tm_year, &tm.tm_mon,
                      &tm.tm_mday, &tm.tm_hour, &tm.tm_min, &tm.tm_sec, &consumed);
  if (n != 6) {
    return Status::ParseError("bad timestamp: '" + text + "'");
  }
  if (tm.tm_mon < 1 || tm.tm_mon > 12 || tm.tm_mday < 1 || tm.tm_mday > 31 ||
      tm.tm_hour > 23 || tm.tm_min > 59 || tm.tm_sec > 60) {
    return Status::ParseError("timestamp field out of range: '" + text + "'");
  }
  const char* rest = text.c_str() + consumed;
  if (*rest == '.') {
    int frac = 0;
    if (std::sscanf(rest + 1, "%3d", &frac) == 1) millis = frac;
  }
  tm.tm_year -= 1900;
  tm.tm_mon -= 1;
  std::time_t secs = timegm(&tm);
  return static_cast<TimestampMs>(secs) * 1000 + millis;
}

DurationMs MillisOfDay(TimestampMs t) {
  DurationMs m = t % kMillisPerDay;
  if (m < 0) m += kMillisPerDay;
  return m;
}

}  // namespace trips
