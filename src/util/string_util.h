// Small string helpers shared across modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace trips {

/// Splits `text` on `sep`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> Split(std::string_view text, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view text);

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// True iff `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// True iff `text` ends with `suffix`.
bool EndsWith(std::string_view text, std::string_view suffix);

/// Case-sensitive glob match supporting '*' (any run) and '?' (any one char).
/// Used by the Data Selector's device-ID pattern rule, e.g. "3a.*.14".
bool GlobMatch(std::string_view pattern, std::string_view text);

/// Lower-cases ASCII letters.
std::string ToLower(std::string_view text);

/// Formats a double with `precision` digits after the decimal point.
std::string FormatDouble(double value, int precision = 3);

}  // namespace trips
