#include "util/logging.h"

#include <atomic>
#include <cstdio>

namespace trips {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >= g_level.load()), level_(level) {
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelName(level_) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
  }
}

}  // namespace internal

}  // namespace trips
