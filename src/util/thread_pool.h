// A small fixed-size worker pool shared by all sessions of a core::Service.
// Designed for fork/join fan-out over independent items: ParallelFor blocks
// the caller until every item is processed, and the calling thread itself
// participates in the work, so a pool with zero workers degrades to a plain
// serial loop (useful for deterministic single-threaded runs and for
// environments without threading headroom).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace trips::util {

/// Observability hooks of a ThreadPool. Every pointer may be null (that
/// metric is simply not recorded); the pointed-to metrics must outlive the
/// pool. Wired by core::Service / cluster::Cluster from their registries.
struct PoolMetrics {
  /// Helper tasks currently waiting in the shared FIFO queue.
  obs::Gauge* queue_depth = nullptr;
  /// Enqueue -> dequeue wall time of each helper task (how long work sat in
  /// the queue before a worker picked it up — the saturation signal).
  obs::Histogram* task_wait_ns = nullptr;
  /// Execution wall time of each helper task (one task drains many
  /// ParallelFor items, so this is per drain, not per item).
  obs::Histogram* task_run_ns = nullptr;
  /// Helper tasks executed by pool workers.
  obs::Counter* tasks_run = nullptr;
};

/// Fixed pool of worker threads with a shared FIFO task queue. All public
/// methods are thread-safe; ParallelFor may be called concurrently from many
/// threads (each call joins only its own items).
class ThreadPool {
 public:
  /// Spawns `workers` threads. 0 is valid: every ParallelFor then runs
  /// entirely on the calling thread.
  explicit ThreadPool(size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of pool worker threads (excluding callers that join in).
  size_t worker_count() const { return threads_.size(); }

  /// Installs the observability hooks. Call once, before the pool is shared
  /// with other threads (not synchronized against in-flight ParallelFor).
  /// The caller-drain path of ParallelFor is not queued and therefore not
  /// measured; only helper tasks executed by pool workers are.
  void SetMetrics(const PoolMetrics& metrics) { metrics_ = metrics; }

  /// Runs fn(i) once for every i in [0, n), spread over the pool workers and
  /// the calling thread, and returns when all n calls finished. `fn` must be
  /// safe to invoke concurrently with distinct arguments.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Enqueues one fire-and-forget task for a pool worker (background
  /// maintenance: store compaction, deferred rebuilds). With zero workers the
  /// task runs inline on the calling thread before Submit returns, so callers
  /// get the same completion guarantees in deterministic serial mode. Tasks
  /// still queued at destruction are drained by the exiting workers — a
  /// submitted task always runs exactly once.
  void Submit(std::function<void()> fn);

 private:
  /// One queued helper task plus its enqueue stamp (0 when wait timing is
  /// off, so the fast path never reads the clock).
  struct Task {
    std::function<void()> fn;
    uint64_t enqueue_ns = 0;
  };

  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<Task> queue_;
  bool stopping_ = false;
  std::vector<std::thread> threads_;
  PoolMetrics metrics_;
};

}  // namespace trips::util
