// A small fixed-size worker pool shared by all sessions of a core::Service.
// Designed for fork/join fan-out over independent items: ParallelFor blocks
// the caller until every item is processed, and the calling thread itself
// participates in the work, so a pool with zero workers degrades to a plain
// serial loop (useful for deterministic single-threaded runs and for
// environments without threading headroom).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace trips::util {

/// Fixed pool of worker threads with a shared FIFO task queue. All public
/// methods are thread-safe; ParallelFor may be called concurrently from many
/// threads (each call joins only its own items).
class ThreadPool {
 public:
  /// Spawns `workers` threads. 0 is valid: every ParallelFor then runs
  /// entirely on the calling thread.
  explicit ThreadPool(size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of pool worker threads (excluding callers that join in).
  size_t worker_count() const { return threads_.size(); }

  /// Runs fn(i) once for every i in [0, n), spread over the pool workers and
  /// the calling thread, and returns when all n calls finished. `fn` must be
  /// safe to invoke concurrently with distinct arguments.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace trips::util
