#include "util/status.h"

namespace trips {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNotSupported:
      return "NotSupported";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

}  // namespace trips
