// Time helpers. TRIPS timestamps are milliseconds since the Unix epoch
// (int64), matching the discrete timestamps of raw positioning records.
#pragma once

#include <cstdint>
#include <string>

#include "util/result.h"

namespace trips {

/// Milliseconds since the Unix epoch.
using TimestampMs = int64_t;
/// A duration in milliseconds.
using DurationMs = int64_t;

constexpr DurationMs kMillisPerSecond = 1000;
constexpr DurationMs kMillisPerMinute = 60 * kMillisPerSecond;
constexpr DurationMs kMillisPerHour = 60 * kMillisPerMinute;
constexpr DurationMs kMillisPerDay = 24 * kMillisPerHour;

/// A closed time interval [begin, end] in epoch milliseconds.
struct TimeRange {
  TimestampMs begin = 0;
  TimestampMs end = 0;

  /// Length of the range in milliseconds (0 for a degenerate instant).
  DurationMs Duration() const { return end - begin; }
  /// True iff `t` lies within [begin, end].
  bool Contains(TimestampMs t) const { return t >= begin && t <= end; }
  /// True iff the two ranges share at least one instant.
  bool Overlaps(const TimeRange& other) const {
    return begin <= other.end && other.begin <= end;
  }
  /// True iff the range is well-formed (begin <= end).
  bool Valid() const { return begin <= end; }

  bool operator==(const TimeRange& other) const = default;
};

/// Formats an epoch-millisecond timestamp as "YYYY-MM-DD hh:mm:ss.mmm" (UTC).
std::string FormatTimestamp(TimestampMs t);

/// Formats only the clock part, "hh:mm:ss" (UTC) — the form used in the
/// paper's Table 1.
std::string FormatClock(TimestampMs t);

/// Parses "YYYY-MM-DD hh:mm:ss" (UTC, optional ".mmm") to epoch milliseconds.
Result<TimestampMs> ParseTimestamp(const std::string& text);

/// Seconds-of-day helper: milliseconds elapsed since the UTC midnight of t's day.
DurationMs MillisOfDay(TimestampMs t);

}  // namespace trips
