#include "core/translator.h"

namespace trips::core {

Translator::Translator(const dsm::Dsm* dsm, TranslatorOptions options)
    : dsm_(dsm), options_(options), classifier_(options.classifier) {}

Status Translator::Init() {
  if (dsm_ == nullptr) return Status::InvalidArgument("dsm is null");
  if (!dsm_->topology_computed()) {
    return Status::FailedPrecondition("DSM topology not computed");
  }
  TRIPS_ASSIGN_OR_RETURN(dsm::RoutePlanner planner,
                         dsm::RoutePlanner::Build(dsm_, options_.routing));
  planner_.emplace(std::move(planner));
  knowledge_ = complement::MobilityKnowledge::Uniform(*dsm_);
  // Per-sequence layer state, hoisted: both objects are configuration-only
  // and const-thread-safe, so every translation reuses them.
  cleaner_.emplace(dsm_, &*planner_, options_.cleaner);
  annotator_.emplace(dsm_, &classifier_, options_.annotator);
  initialized_ = true;
  return Status::OK();
}

Status Translator::TrainEventModel(
    const std::vector<config::LabeledSegment>& training_data) {
  return classifier_.Train(training_data);
}

TranslationResult Translator::CleanAndAnnotate(
    const positioning::PositioningSequence& seq,
    const TranslationStageMetrics* stages) const {
  // Per-thread block, reused across sequences: each translation worker
  // reaches a steady state where the AoS->SoA conversion allocates nothing.
  static thread_local positioning::RecordBlock block;
  block.AssignFrom(seq);
  return CleanAndAnnotate(&block, nullptr, stages);
}

TranslationResult Translator::CleanAndAnnotate(
    positioning::RecordBlock* block, util::ThreadPool* pool,
    const TranslationStageMetrics* stages) const {
  TranslationResult result;
  block->SortByTime();
  block->MaterializeTo(&result.raw);
  if (stages != nullptr) {
    if (stages->sequences != nullptr) stages->sequences->Add(1);
    if (stages->records != nullptr) stages->records->Add(result.raw.records.size());
  }

  if (options_.enable_cleaning) {
    obs::StageTimer clean_timer(stages != nullptr ? stages->clean_ns : nullptr);
    const cleaning::CleaningStageMetrics* pass_stages =
        stages != nullptr ? &stages->cleaning : nullptr;
    if (cleaner_.has_value()) {
      cleaner_->CleanBlock(block, nullptr, &result.cleaning_report, pool,
                           pass_stages);
    } else {
      // Uninitialized translator (no planner yet): clean without routes.
      cleaning::RawDataCleaner cleaner(dsm_, nullptr, options_.cleaner);
      cleaner.CleanBlock(block, nullptr, &result.cleaning_report, pool,
                         pass_stages);
    }
    block->MaterializeTo(&result.cleaned);
  } else {
    result.cleaned = result.raw;
    result.cleaning_report.total_records = result.raw.records.size();
  }

  // The annotation layer consumes the cleaned columns directly. The split
  // phase is timed by the annotator itself (annotate_ns includes split_ns).
  annotation::AnnotateTimings timings;
  annotation::AnnotateTimings* timings_ptr =
      (stages != nullptr && stages->split_ns != nullptr &&
       stages->split_ns->recording())
          ? &timings
          : nullptr;
  {
    obs::StageTimer annotate_timer(stages != nullptr ? stages->annotate_ns
                                                     : nullptr);
    if (annotator_.has_value()) {
      result.original_semantics = annotator_->Annotate(*block, timings_ptr);
    } else {
      annotation::Annotator annotator(dsm_, &classifier_, options_.annotator);
      result.original_semantics = annotator.Annotate(*block, timings_ptr);
    }
  }
  if (timings_ptr != nullptr) stages->split_ns->Record(timings.split_ns);
  return result;
}

complement::MobilityKnowledge Translator::BuildKnowledgeFrom(
    const std::vector<TranslationResult>& results) const {
  complement::KnowledgeBuilder builder(dsm_);
  for (const TranslationResult& r : results) {
    builder.AddSequence(r.original_semantics);
  }
  return builder.Build(options_.knowledge_smoothing);
}

void Translator::ComplementResult(TranslationResult* result,
                                  const complement::MobilityKnowledge& knowledge,
                                  const TranslationStageMetrics* stages) const {
  obs::StageTimer complement_timer(stages != nullptr ? stages->complement_ns
                                                     : nullptr);
  if (options_.enable_complementing) {
    complement::Complementor complementor(dsm_, &knowledge, options_.complementor);
    result->semantics =
        complementor.Complement(result->original_semantics, &result->complement_report);
  } else {
    result->semantics = result->original_semantics;
  }
}

Result<std::vector<TranslationResult>> Translator::TranslateAll(
    const std::vector<positioning::PositioningSequence>& sequences) {
  if (!initialized_) return Status::FailedPrecondition("call Init() first");

  // Layers 1+2 on every sequence.
  std::vector<TranslationResult> results;
  results.reserve(sequences.size());
  for (const positioning::PositioningSequence& seq : sequences) {
    results.push_back(CleanAndAnnotate(seq));
  }

  // Knowledge construction aggregates all annotated sequences.
  complement::MobilityKnowledge learned = BuildKnowledgeFrom(results);
  if (learned.observed_transitions > 0) {
    knowledge_ = std::move(learned);
  }

  // Layer 3 on every sequence.
  for (TranslationResult& r : results) ComplementResult(&r, knowledge_);
  return results;
}

Result<TranslationResult> Translator::Translate(
    const positioning::PositioningSequence& seq) const {
  if (!initialized_) return Status::FailedPrecondition("call Init() first");
  TranslationResult result = CleanAndAnnotate(seq);
  ComplementResult(&result, knowledge_);
  return result;
}

}  // namespace trips::core
