#include "core/pipeline.h"

#include "core/result_io.h"
#include "dsm/dsm_json.h"

namespace trips::core {

Pipeline::Pipeline(TranslatorOptions options) : options_(options) {}

Status Pipeline::SetDsm(dsm::Dsm dsm) {
  if (!dsm.topology_computed()) {
    TRIPS_RETURN_NOT_OK(dsm.ComputeTopology());
  }
  dsm_ = std::make_unique<dsm::Dsm>(std::move(dsm));
  translator_ = std::make_unique<Translator>(dsm_.get(), options_);
  return translator_->Init();
}

Status Pipeline::LoadDsm(const std::string& path) {
  TRIPS_ASSIGN_OR_RETURN(dsm::Dsm loaded, dsm::LoadFromFile(path));
  return SetDsm(std::move(loaded));
}

Result<std::vector<TranslationResult>> Pipeline::Run() {
  if (translator_ == nullptr) {
    return Status::FailedPrecondition("no DSM installed; call SetDsm/LoadDsm first");
  }
  TRIPS_ASSIGN_OR_RETURN(std::vector<positioning::PositioningSequence> selected,
                         selector_.Select());
  if (!editor_.training_data().empty()) {
    // Training is best-effort: with segments for fewer than two patterns the
    // rule-based identifier stays in place.
    Status trained = translator_->TrainEventModel(editor_.training_data());
    if (!trained.ok() && trained.code() != StatusCode::kFailedPrecondition) {
      return trained;
    }
  }
  return translator_->TranslateAll(selected);
}

Result<size_t> Pipeline::ExportResults(const std::vector<TranslationResult>& results,
                                       const std::string& dir) const {
  size_t written = 0;
  for (const TranslationResult& r : results) {
    std::string name = r.semantics.device_id;
    for (char& c : name) {
      if (c == '/' || c == '\\' || c == ':') c = '_';
    }
    TRIPS_RETURN_NOT_OK(
        WriteResultFile(r.semantics, dir + "/" + name + ".result.json"));
    ++written;
  }
  return written;
}

}  // namespace trips::core
