#include "core/pipeline.h"

#include "core/result_io.h"
#include "dsm/dsm_json.h"

namespace trips::core {

Pipeline::Pipeline(TranslatorOptions options) : options_(options) {}

void Pipeline::Adopt(std::shared_ptr<const Engine> engine) {
  std::unique_ptr<Service> service = std::make_unique<Service>(engine);
  std::unique_ptr<BatchSession> fresh = service->NewBatchSession();
  if (session_ != nullptr) {
    // Carry the batch-learned knowledge across engine rebuilds, mirroring the
    // old stateful Translator whose knowledge survived retraining.
    fresh->ResetKnowledge(session_->knowledge());
  }
  // Replacement order matters: the old session must die before the old
  // service whose pool it points into.
  session_ = std::move(fresh);
  service_ = std::move(service);
  engine_ = std::move(engine);
}

Status Pipeline::SetDsm(dsm::Dsm dsm) {
  if (!dsm.topology_computed()) {
    TRIPS_RETURN_NOT_OK(dsm.ComputeTopology());
  }
  std::shared_ptr<const dsm::Dsm> installed =
      std::make_shared<const dsm::Dsm>(std::move(dsm));
  TRIPS_ASSIGN_OR_RETURN(
      std::shared_ptr<const Engine> engine,
      Engine::Builder().ShareDsm(installed).SetOptions(options_).Build());
  dsm_ = std::move(installed);
  session_.reset();  // a new space invalidates previously learned knowledge
  trained_revision_ = static_cast<size_t>(-1);
  Adopt(std::move(engine));
  return Status::OK();
}

Status Pipeline::LoadDsm(const std::string& path) {
  TRIPS_ASSIGN_OR_RETURN(dsm::Dsm loaded, dsm::LoadFromFile(path));
  return SetDsm(std::move(loaded));
}

Result<std::vector<TranslationResult>> Pipeline::Run() {
  if (engine_ == nullptr) {
    return Status::FailedPrecondition("no DSM installed; call SetDsm/LoadDsm first");
  }
  TRIPS_ASSIGN_OR_RETURN(std::vector<positioning::PositioningSequence> selected,
                         selector_.Select());
  if (!editor_.training_data().empty() && trained_revision_ != editor_.revision()) {
    // The corpus changed since the engine was built: rebuild with training.
    // Training is best-effort inside the builder: with segments for fewer
    // than two patterns the rule-based identifier stays in place.
    TRIPS_ASSIGN_OR_RETURN(std::shared_ptr<const Engine> retrained,
                           Engine::Builder()
                               .ShareDsm(dsm_)
                               .SetOptions(options_)
                               .SetTrainingData(editor_.training_data())
                               .Build());
    trained_revision_ = editor_.revision();
    Adopt(std::move(retrained));
  }
  TranslationRequest request;
  request.sequences = std::move(selected);
  TRIPS_ASSIGN_OR_RETURN(TranslationResponse response, session_->Submit(request));
  return std::move(response.results);
}

Result<size_t> Pipeline::ExportResults(const std::vector<TranslationResult>& results,
                                       const std::string& dir) const {
  return ExportResultFiles(results, dir);
}

}  // namespace trips::core
