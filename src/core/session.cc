#include "core/session.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

namespace trips::core {

namespace {

// Resolves the shared per-stage translation metrics out of `registry` (all
// sessions of one registry aggregate into the same names). Null registry ->
// all-null struct (recording disabled).
TranslationStageMetrics ResolveStageMetrics(obs::MetricsRegistry* registry) {
  TranslationStageMetrics stages;
  if (registry == nullptr) return stages;
  stages.clean_ns = registry->histogram("translate.clean_ns");
  stages.split_ns = registry->histogram("translate.split_ns");
  stages.annotate_ns = registry->histogram("translate.annotate_ns");
  stages.complement_ns = registry->histogram("translate.complement_ns");
  stages.sequences = registry->counter("translate.sequences");
  stages.records = registry->counter("translate.records");
  // Per-pass breakdown inside the cleaning layer (/statsz shows where
  // cleaning time goes: scan vs interpolate vs smooth vs snap).
  stages.cleaning.scan_ns = registry->histogram("clean.scan_ns");
  stages.cleaning.interpolate_ns = registry->histogram("clean.interpolate_ns");
  stages.cleaning.smooth_ns = registry->histogram("clean.smooth_ns");
  stages.cleaning.snap_ns = registry->histogram("clean.snap_ns");
  return stages;
}

}  // namespace

// ---- BatchSession -----------------------------------------------------------

BatchSession::BatchSession(std::shared_ptr<const Engine> engine,
                           util::ThreadPool* pool,
                           std::shared_ptr<obs::MetricsRegistry> metrics)
    : engine_(std::move(engine)),
      pool_(pool),
      metrics_(std::move(metrics)),
      stages_(ResolveStageMetrics(metrics_.get())),
      knowledge_(engine_->knowledge()) {
  if (metrics_ != nullptr) {
    submit_ns_ = metrics_->histogram("translate.batch_submit_ns");
  }
}

void BatchSession::ResetKnowledge(complement::MobilityKnowledge knowledge) {
  std::lock_guard<std::mutex> lock(mu_);
  knowledge_ = std::move(knowledge);
}

Result<TranslationResponse> BatchSession::Submit(const TranslationRequest& request) {
  std::lock_guard<std::mutex> lock(mu_);
  obs::StageTimer submit_timer(submit_ns_);
  using Clock = std::chrono::steady_clock;
  Clock::time_point start = Clock::now();

  const std::vector<positioning::PositioningSequence>& seqs = request.sequences;
  TranslationResponse response;
  response.workers_used = pool_->worker_count() + 1;
  response.results.resize(seqs.size());
  for (const positioning::PositioningSequence& seq : seqs) {
    response.total_records += seq.records.size();
  }

  // Layers 1+2 on every sequence, fanned out; results land at their input
  // index, so the outcome is independent of scheduling. Each worker converts
  // into its own reused RecordBlock (per-thread, reserve-once) and runs the
  // columnar pipeline; the pool is threaded through so very long sequences
  // additionally parallelize their cleaning passes across idle workers.
  std::vector<TranslationResult>& results = response.results;
  util::ThreadPool* pool = pool_;
  const TranslationStageMetrics* stages = &stages_;
  pool_->ParallelFor(seqs.size(), [&, pool, stages](size_t i) {
    static thread_local positioning::RecordBlock block;
    block.AssignFrom(seqs[i]);
    results[i] = engine_->CleanAndAnnotate(&block, pool, stages);
  });

  // Knowledge construction aggregates all annotated sequences (integer-count
  // aggregation: the result is independent of sequence order).
  if (request.learn_knowledge) {
    complement::MobilityKnowledge learned = engine_->BuildKnowledge(results);
    if (learned.observed_transitions > 0) {
      knowledge_ = std::move(learned);
    }
  }

  // Layer 3 on every sequence, fanned out.
  pool_->ParallelFor(results.size(), [&](size_t i) {
    engine_->Complement(&results[i], knowledge_, &stages_);
  });

  // Deterministic output order: by device id, input order breaking ties.
  std::stable_sort(results.begin(), results.end(),
                   [](const TranslationResult& a, const TranslationResult& b) {
                     return a.semantics.device_id < b.semantics.device_id;
                   });

  translated_.fetch_add(results.size(), std::memory_order_relaxed);
  response.elapsed_ms =
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - start)
          .count() /
      1000.0;
  return response;
}

// ---- StreamSession ----------------------------------------------------------

StreamSession::StreamSession(std::shared_ptr<const Engine> engine,
                             StreamOptions options, util::ThreadPool* pool,
                             std::shared_ptr<obs::MetricsRegistry> metrics)
    : engine_(std::move(engine)),
      options_(options),
      pool_(pool),
      metrics_(std::move(metrics)),
      shards_(std::max<size_t>(1, options.buffer_shards)) {
  WireMetrics();
}

StreamSession::StreamSession(TranslateFn translate, StreamOptions options)
    : translate_(std::move(translate)),
      options_(options),
      shards_(std::max<size_t>(1, options.buffer_shards)) {}

void StreamSession::WireMetrics() {
  if (metrics_ == nullptr) return;
  stages_ = ResolveStageMetrics(metrics_.get());
  stream_metrics_.records_ingested = metrics_->counter("stream.records_ingested");
  stream_metrics_.buffered_records = metrics_->gauge("stream.buffered_records");
  stream_metrics_.flushes = metrics_->counter("stream.flushes");
  stream_metrics_.flush_records = metrics_->counter("stream.flush_records");
  stream_metrics_.dropped_small_buffers =
      metrics_->counter("stream.dropped_small_buffers");
  stream_metrics_.ingest_to_result_ns =
      metrics_->histogram("stream.ingest_to_result_ns");
  for (size_t i = 0; i < shards_.size(); ++i) {
    char name[48];
    std::snprintf(name, sizeof(name), "stream.shard%02zu.buffered_records", i);
    shards_[i].buffered_records = metrics_->gauge(name);
  }
}

void StreamSession::SetSink(Sink sink) {
  std::lock_guard<std::mutex> lock(mu_);
  sink_ = std::move(sink);
}

uint64_t StreamSession::TraceNowNs() const {
  return options_.trace_clock ? options_.trace_clock() : obs::NowNanos();
}

StreamSession::BufferShard& StreamSession::ShardFor(const std::string& device) {
  return shards_[std::hash<std::string>{}(device) % shards_.size()];
}

size_t StreamSession::PendingDevices() const {
  size_t total = 0;
  for (const BufferShard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.buffers.size();
  }
  return total;
}

size_t StreamSession::PendingRecords() const {
  size_t total = 0;
  for (const BufferShard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [device, buffer] : shard.buffers) {
      total += buffer.block.Size();
    }
  }
  return total;
}

size_t StreamSession::EmittedCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return emitted_;
}

void StreamSession::TrackBuffered(BufferShard& shard, int64_t delta) {
  if (stream_metrics_.buffered_records != nullptr) {
    stream_metrics_.buffered_records->Add(delta);
  }
  if (shard.buffered_records != nullptr) shard.buffered_records->Add(delta);
}

void StreamSession::PopDeviceLocked(BufferShard& shard, const std::string& device,
                                    std::vector<PoppedBuffer>* out) {
  auto it = shard.buffers.find(device);
  if (it == shard.buffers.end()) return;
  Buffer buffer = std::move(it->second);
  shard.buffers.erase(it);
  TrackBuffered(shard, -static_cast<int64_t>(buffer.block.Size()));
  if (buffer.block.Size() < options_.min_flush_records) {
    if (stream_metrics_.dropped_small_buffers != nullptr) {
      stream_metrics_.dropped_small_buffers->Add(1);
    }
    return;  // stray fixes, no semantics to extract
  }
  out->push_back(PoppedBuffer{std::move(buffer.block), buffer.ingest_ns});
}

void StreamSession::SortPoppedByDevice(std::vector<PoppedBuffer>* popped) {
  std::sort(popped->begin(), popped->end(),
            [](const PoppedBuffer& a, const PoppedBuffer& b) {
              return a.block.device_id < b.block.device_id;
            });
}

Result<std::vector<TranslationResult>> StreamSession::TranslateAndDeliver(
    std::vector<PoppedBuffer> popped) {
  // Fast path for the overwhelmingly common no-flush case (every Ingest that
  // doesn't hit the cap, every Poll with no idle device).
  if (popped.empty()) return std::vector<TranslationResult>{};
  // `popped` arrives in device-id order (callers re-sort after gathering from
  // several buffer shards), so emission order is independent of the shard
  // layout; the translation (the expensive part) runs without any lock held.
  // Engine-backed sessions feed the buffered columns straight into the block
  // pipeline; hook-backed sessions (the deprecated OnlineTranslator adapter)
  // materialize the AoS sequence their callback expects.
  std::vector<TranslationResult> out;
  out.reserve(popped.size());
  for (PoppedBuffer& popped_buffer : popped) {
    positioning::RecordBlock& block = popped_buffer.block;
    size_t flushed_records = block.Size();
    TranslationResult result;
    if (engine_ != nullptr) {
      result = engine_->TranslateBlockWith(&block, engine_->knowledge(), pool_,
                                           &stages_);
    } else {
      TRIPS_ASSIGN_OR_RETURN(result, translate_(block.ToSequence()));
    }
    result.trace.ingest_steady_ns = popped_buffer.ingest_ns;
    if (stream_metrics_.flushes != nullptr) stream_metrics_.flushes->Add(1);
    if (stream_metrics_.flush_records != nullptr) {
      stream_metrics_.flush_records->Add(flushed_records);
    }
    // True ingest-to-result latency: first raw record of the buffer arrived ->
    // its translation is about to be delivered.
    if (popped_buffer.ingest_ns != 0 &&
        stream_metrics_.ingest_to_result_ns != nullptr) {
      stream_metrics_.ingest_to_result_ns->Record(TraceNowNs() -
                                                  popped_buffer.ingest_ns);
    }
    out.push_back(std::move(result));
  }
  Sink sink;
  {
    std::lock_guard<std::mutex> lock(mu_);
    emitted_ += out.size();
    sink = sink_;
  }
  if (!sink) return out;
  for (TranslationResult& result : out) sink(std::move(result));
  return std::vector<TranslationResult>{};
}

Result<std::vector<TranslationResult>> StreamSession::Ingest(
    const std::string& device, const positioning::RawRecord& record) {
  std::vector<PoppedBuffer> popped;
  {
    BufferShard& shard = ShardFor(device);
    std::lock_guard<std::mutex> lock(shard.mu);
    Buffer& buffer = shard.buffers[device];
    if (buffer.block.Empty()) {
      buffer.block.device_id = device;
      // Trace stamp: one clock read per device buffer (not per record), and
      // only while the latency histogram is live.
      if (stream_metrics_.ingest_to_result_ns != nullptr &&
          stream_metrics_.ingest_to_result_ns->recording()) {
        buffer.ingest_ns = TraceNowNs();
      }
    }
    buffer.block.Append(record);
    if (stream_metrics_.records_ingested != nullptr) {
      stream_metrics_.records_ingested->Add(1);
    }
    TrackBuffered(shard, 1);
    if (record.timestamp > buffer.newest) buffer.newest = record.timestamp;
    if (buffer.block.Size() >= options_.max_buffer_records) {
      PopDeviceLocked(shard, device, &popped);
    }
  }
  return TranslateAndDeliver(std::move(popped));
}

Result<std::vector<TranslationResult>> StreamSession::Poll(TimestampMs now) {
  std::vector<PoppedBuffer> popped;
  for (BufferShard& shard : shards_) {
    // In-place sweep per shard; global device order is restored below.
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto it = shard.buffers.begin(); it != shard.buffers.end();) {
      if (now - it->second.newest >= options_.flush_after) {
        TrackBuffered(shard, -static_cast<int64_t>(it->second.block.Size()));
        if (it->second.block.Size() >= options_.min_flush_records) {
          popped.push_back(PoppedBuffer{std::move(it->second.block),
                                        it->second.ingest_ns});
        } else if (stream_metrics_.dropped_small_buffers != nullptr) {
          stream_metrics_.dropped_small_buffers->Add(1);
        }
        it = shard.buffers.erase(it);
      } else {
        ++it;
      }
    }
  }
  SortPoppedByDevice(&popped);
  return TranslateAndDeliver(std::move(popped));
}

Result<std::vector<TranslationResult>> StreamSession::FlushAll() {
  // End-of-stream drain: unlike the age-based Poll flush, every remainder is
  // translated, however short — dropping here would silently lose the tail of
  // any sequence shorter than min_flush_records (stream output must stay
  // byte-identical to translating the same sequences as a batch). The old
  // dropping behaviour stays available behind drop_small_on_final_flush.
  const size_t min_records =
      options_.drop_small_on_final_flush ? options_.min_flush_records : 1;
  std::vector<PoppedBuffer> popped;
  for (BufferShard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto& [device, buffer] : shard.buffers) {
      TrackBuffered(shard, -static_cast<int64_t>(buffer.block.Size()));
      if (buffer.block.Size() >= min_records) {
        popped.push_back(PoppedBuffer{std::move(buffer.block), buffer.ingest_ns});
      } else if (stream_metrics_.dropped_small_buffers != nullptr) {
        stream_metrics_.dropped_small_buffers->Add(1);
      }
    }
    shard.buffers.clear();
  }
  SortPoppedByDevice(&popped);
  return TranslateAndDeliver(std::move(popped));
}

}  // namespace trips::core
