#include "core/session.h"

#include <algorithm>
#include <chrono>

namespace trips::core {

// ---- BatchSession -----------------------------------------------------------

BatchSession::BatchSession(std::shared_ptr<const Engine> engine,
                           util::ThreadPool* pool)
    : engine_(std::move(engine)), pool_(pool), knowledge_(engine_->knowledge()) {}

void BatchSession::ResetKnowledge(complement::MobilityKnowledge knowledge) {
  std::lock_guard<std::mutex> lock(mu_);
  knowledge_ = std::move(knowledge);
}

Result<TranslationResponse> BatchSession::Submit(const TranslationRequest& request) {
  std::lock_guard<std::mutex> lock(mu_);
  using Clock = std::chrono::steady_clock;
  Clock::time_point start = Clock::now();

  const std::vector<positioning::PositioningSequence>& seqs = request.sequences;
  TranslationResponse response;
  response.workers_used = pool_->worker_count() + 1;
  response.results.resize(seqs.size());
  for (const positioning::PositioningSequence& seq : seqs) {
    response.total_records += seq.records.size();
  }

  // Layers 1+2 on every sequence, fanned out; results land at their input
  // index, so the outcome is independent of scheduling. Each worker converts
  // into its own reused RecordBlock (per-thread, reserve-once) and runs the
  // columnar pipeline; the pool is threaded through so very long sequences
  // additionally parallelize their cleaning passes across idle workers.
  std::vector<TranslationResult>& results = response.results;
  util::ThreadPool* pool = pool_;
  pool_->ParallelFor(seqs.size(), [&, pool](size_t i) {
    static thread_local positioning::RecordBlock block;
    block.AssignFrom(seqs[i]);
    results[i] = engine_->CleanAndAnnotate(&block, pool);
  });

  // Knowledge construction aggregates all annotated sequences (integer-count
  // aggregation: the result is independent of sequence order).
  if (request.learn_knowledge) {
    complement::MobilityKnowledge learned = engine_->BuildKnowledge(results);
    if (learned.observed_transitions > 0) {
      knowledge_ = std::move(learned);
    }
  }

  // Layer 3 on every sequence, fanned out.
  pool_->ParallelFor(results.size(), [&](size_t i) {
    engine_->Complement(&results[i], knowledge_);
  });

  // Deterministic output order: by device id, input order breaking ties.
  std::stable_sort(results.begin(), results.end(),
                   [](const TranslationResult& a, const TranslationResult& b) {
                     return a.semantics.device_id < b.semantics.device_id;
                   });

  translated_.fetch_add(results.size(), std::memory_order_relaxed);
  response.elapsed_ms =
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - start)
          .count() /
      1000.0;
  return response;
}

// ---- StreamSession ----------------------------------------------------------

StreamSession::StreamSession(std::shared_ptr<const Engine> engine,
                             StreamOptions options, util::ThreadPool* pool)
    : engine_(std::move(engine)),
      options_(options),
      pool_(pool),
      shards_(std::max<size_t>(1, options.buffer_shards)) {}

StreamSession::StreamSession(TranslateFn translate, StreamOptions options)
    : translate_(std::move(translate)),
      options_(options),
      shards_(std::max<size_t>(1, options.buffer_shards)) {}

void StreamSession::SetSink(Sink sink) {
  std::lock_guard<std::mutex> lock(mu_);
  sink_ = std::move(sink);
}

StreamSession::BufferShard& StreamSession::ShardFor(const std::string& device) {
  return shards_[std::hash<std::string>{}(device) % shards_.size()];
}

size_t StreamSession::PendingDevices() const {
  size_t total = 0;
  for (const BufferShard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.buffers.size();
  }
  return total;
}

size_t StreamSession::PendingRecords() const {
  size_t total = 0;
  for (const BufferShard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [device, buffer] : shard.buffers) {
      total += buffer.block.Size();
    }
  }
  return total;
}

size_t StreamSession::EmittedCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return emitted_;
}

void StreamSession::PopDeviceLocked(BufferShard& shard, const std::string& device,
                                    std::vector<positioning::RecordBlock>* out) {
  auto it = shard.buffers.find(device);
  if (it == shard.buffers.end()) return;
  Buffer buffer = std::move(it->second);
  shard.buffers.erase(it);
  if (buffer.block.Size() < options_.min_flush_records) {
    return;  // stray fixes, no semantics to extract
  }
  out->push_back(std::move(buffer.block));
}

void StreamSession::SortPoppedByDevice(
    std::vector<positioning::RecordBlock>* popped) {
  std::sort(popped->begin(), popped->end(),
            [](const positioning::RecordBlock& a,
               const positioning::RecordBlock& b) {
              return a.device_id < b.device_id;
            });
}

Result<std::vector<TranslationResult>> StreamSession::TranslateAndDeliver(
    std::vector<positioning::RecordBlock> popped) {
  // Fast path for the overwhelmingly common no-flush case (every Ingest that
  // doesn't hit the cap, every Poll with no idle device).
  if (popped.empty()) return std::vector<TranslationResult>{};
  // `popped` arrives in device-id order (callers re-sort after gathering from
  // several buffer shards), so emission order is independent of the shard
  // layout; the translation (the expensive part) runs without any lock held.
  // Engine-backed sessions feed the buffered columns straight into the block
  // pipeline; hook-backed sessions (the deprecated OnlineTranslator adapter)
  // materialize the AoS sequence their callback expects.
  std::vector<TranslationResult> out;
  out.reserve(popped.size());
  for (positioning::RecordBlock& block : popped) {
    if (engine_ != nullptr) {
      out.push_back(
          engine_->TranslateBlockWith(&block, engine_->knowledge(), pool_));
    } else {
      TRIPS_ASSIGN_OR_RETURN(TranslationResult result,
                             translate_(block.ToSequence()));
      out.push_back(std::move(result));
    }
  }
  Sink sink;
  {
    std::lock_guard<std::mutex> lock(mu_);
    emitted_ += out.size();
    sink = sink_;
  }
  if (!sink) return out;
  for (TranslationResult& result : out) sink(std::move(result));
  return std::vector<TranslationResult>{};
}

Result<std::vector<TranslationResult>> StreamSession::Ingest(
    const std::string& device, const positioning::RawRecord& record) {
  std::vector<positioning::RecordBlock> popped;
  {
    BufferShard& shard = ShardFor(device);
    std::lock_guard<std::mutex> lock(shard.mu);
    Buffer& buffer = shard.buffers[device];
    if (buffer.block.Empty()) {
      buffer.block.device_id = device;
    }
    buffer.block.Append(record);
    if (record.timestamp > buffer.newest) buffer.newest = record.timestamp;
    if (buffer.block.Size() >= options_.max_buffer_records) {
      PopDeviceLocked(shard, device, &popped);
    }
  }
  return TranslateAndDeliver(std::move(popped));
}

Result<std::vector<TranslationResult>> StreamSession::Poll(TimestampMs now) {
  std::vector<positioning::RecordBlock> popped;
  for (BufferShard& shard : shards_) {
    // In-place sweep per shard; global device order is restored below.
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto it = shard.buffers.begin(); it != shard.buffers.end();) {
      if (now - it->second.newest >= options_.flush_after) {
        if (it->second.block.Size() >= options_.min_flush_records) {
          popped.push_back(std::move(it->second.block));
        }
        it = shard.buffers.erase(it);
      } else {
        ++it;
      }
    }
  }
  SortPoppedByDevice(&popped);
  return TranslateAndDeliver(std::move(popped));
}

Result<std::vector<TranslationResult>> StreamSession::FlushAll() {
  std::vector<positioning::RecordBlock> popped;
  for (BufferShard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto& [device, buffer] : shard.buffers) {
      if (buffer.block.Size() >= options_.min_flush_records) {
        popped.push_back(std::move(buffer.block));
      }
    }
    shard.buffers.clear();
  }
  SortPoppedByDevice(&popped);
  return TranslateAndDeliver(std::move(popped));
}

}  // namespace trips::core
