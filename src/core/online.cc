#include "core/online.h"

namespace trips::core {

OnlineTranslator::OnlineTranslator(const Translator* translator,
                                   OnlineOptions options)
    : translator_(translator), options_(options) {}

size_t OnlineTranslator::PendingRecords() const {
  size_t total = 0;
  for (const auto& [device, buffer] : buffers_) {
    total += buffer.sequence.records.size();
  }
  return total;
}

Status OnlineTranslator::FlushDevice(const std::string& device,
                                     std::vector<TranslationResult>* out) {
  auto it = buffers_.find(device);
  if (it == buffers_.end()) return Status::OK();
  Buffer buffer = std::move(it->second);
  buffers_.erase(it);
  if (buffer.sequence.records.size() < options_.min_flush_records) {
    return Status::OK();  // stray fixes, no semantics to extract
  }
  TRIPS_ASSIGN_OR_RETURN(TranslationResult result,
                         translator_->Translate(buffer.sequence));
  ++emitted_;
  out->push_back(std::move(result));
  return Status::OK();
}

Result<std::vector<TranslationResult>> OnlineTranslator::Ingest(
    const std::string& device, const positioning::RawRecord& record) {
  Buffer& buffer = buffers_[device];
  if (buffer.sequence.records.empty()) {
    buffer.sequence.device_id = device;
  }
  buffer.sequence.records.push_back(record);
  if (record.timestamp > buffer.newest) buffer.newest = record.timestamp;

  std::vector<TranslationResult> out;
  if (buffer.sequence.records.size() >= options_.max_buffer_records) {
    TRIPS_RETURN_NOT_OK(FlushDevice(device, &out));
  }
  return out;
}

Result<std::vector<TranslationResult>> OnlineTranslator::Poll(TimestampMs now) {
  std::vector<std::string> idle;
  for (const auto& [device, buffer] : buffers_) {
    if (now - buffer.newest >= options_.flush_after) idle.push_back(device);
  }
  std::vector<TranslationResult> out;
  for (const std::string& device : idle) {
    TRIPS_RETURN_NOT_OK(FlushDevice(device, &out));
  }
  return out;
}

Result<std::vector<TranslationResult>> OnlineTranslator::FlushAll() {
  std::vector<std::string> all;
  for (const auto& [device, buffer] : buffers_) all.push_back(device);
  std::vector<TranslationResult> out;
  for (const std::string& device : all) {
    TRIPS_RETURN_NOT_OK(FlushDevice(device, &out));
  }
  return out;
}

}  // namespace trips::core
