#include "core/online.h"

namespace trips::core {

OnlineTranslator::OnlineTranslator(const Translator* translator,
                                   OnlineOptions options)
    : session_(
          [translator](const positioning::PositioningSequence& seq) {
            return translator->Translate(seq);
          },
          options) {}

Result<std::vector<TranslationResult>> OnlineTranslator::Ingest(
    const std::string& device, const positioning::RawRecord& record) {
  return session_.Ingest(device, record);
}

Result<std::vector<TranslationResult>> OnlineTranslator::Poll(TimestampMs now) {
  return session_.Poll(now);
}

Result<std::vector<TranslationResult>> OnlineTranslator::FlushAll() {
  return session_.FlushAll();
}

}  // namespace trips::core
