// Translation-result files: the exportable artifact of step (4) of the
// workflow (Fig. 5(4) shows "the exported translation result file" of device
// 3a.*.14). JSON schema:
//   { "device": "...",
//     "semantics": [ {"event", "region", "region_name",
//                     "begin", "end", "inferred"}, ... ] }
#pragma once

#include <string>
#include <vector>

#include "core/semantics.h"
#include "json/json.h"
#include "positioning/record.h"

namespace trips::core {

struct TranslationResult;

/// Serializes a semantics sequence to the result-file JSON value.
json::Value SemanticsToJson(const MobilitySemanticsSequence& seq);

/// Parses a result-file JSON value back into a semantics sequence.
Result<MobilitySemanticsSequence> SemanticsFromJson(const json::Value& value);

/// Writes a result file for one device.
Status WriteResultFile(const MobilitySemanticsSequence& seq, const std::string& path);

/// Reads a result file.
Result<MobilitySemanticsSequence> ReadResultFile(const std::string& path);

/// Writes, for every result, a result file "<dir>/<device>.result.json"
/// ('/', '\' and ':' in device ids become '_'). Returns the number of files
/// written.
Result<size_t> ExportResultFiles(const std::vector<TranslationResult>& results,
                                 const std::string& dir);

/// Renders the side-by-side raw-vs-semantics comparison of the paper's
/// Table 1 for one device (first `max_raw_rows` raw records shown).
std::string RenderTable1(const positioning::PositioningSequence& raw,
                         const MobilitySemanticsSequence& semantics,
                         size_t max_raw_rows = 8);

}  // namespace trips::core
