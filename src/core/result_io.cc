#include "core/result_io.h"

#include <cstdio>

#include "core/translator.h"

namespace trips::core {

json::Value SemanticsToJson(const MobilitySemanticsSequence& seq) {
  json::Object root;
  root["device"] = seq.device_id;
  json::Array arr;
  for (const MobilitySemantic& s : seq.semantics) {
    json::Object js;
    js["event"] = s.event;
    js["region"] = s.region;
    js["region_name"] = s.region_name;
    js["begin"] = static_cast<int64_t>(s.range.begin);
    js["end"] = static_cast<int64_t>(s.range.end);
    js["inferred"] = s.inferred;
    arr.push_back(std::move(js));
  }
  root["semantics"] = std::move(arr);
  return root;
}

Result<MobilitySemanticsSequence> SemanticsFromJson(const json::Value& value) {
  if (!value.is_object()) {
    return Status::ParseError("result document must be an object");
  }
  MobilitySemanticsSequence seq;
  seq.device_id = value.GetString("device");
  const json::Value* arr = value.AsObject().Find("semantics");
  if (arr == nullptr || !arr->is_array()) {
    return Status::ParseError("missing 'semantics' array");
  }
  for (const json::Value& js : arr->AsArray()) {
    if (!js.is_object()) return Status::ParseError("semantics entry must be object");
    MobilitySemantic s;
    s.event = js.GetString("event");
    s.region = static_cast<dsm::RegionId>(js.GetInt("region", dsm::kInvalidRegion));
    s.region_name = js.GetString("region_name");
    s.range.begin = js.GetInt("begin");
    s.range.end = js.GetInt("end");
    s.inferred = js.GetBool("inferred");
    if (!s.range.Valid()) return Status::ParseError("invalid time range in entry");
    seq.semantics.push_back(std::move(s));
  }
  return seq;
}

Status WriteResultFile(const MobilitySemanticsSequence& seq, const std::string& path) {
  return json::WriteFile(SemanticsToJson(seq), path);
}

Result<MobilitySemanticsSequence> ReadResultFile(const std::string& path) {
  TRIPS_ASSIGN_OR_RETURN(json::Value doc, json::ParseFile(path));
  return SemanticsFromJson(doc);
}

std::string RenderTable1(const positioning::PositioningSequence& raw,
                         const MobilitySemanticsSequence& semantics,
                         size_t max_raw_rows) {
  std::string out;
  out += "Raw Positioning Records                 | Mobility Semantics\n";
  out += "----------------------------------------+------------------------------------------\n";
  size_t left_rows = std::min(raw.records.size(), max_raw_rows);
  if (raw.records.size() > max_raw_rows) ++left_rows;  // elision row
  size_t rows = std::max(left_rows, semantics.semantics.size());
  char buf[128];
  for (size_t i = 0; i < rows; ++i) {
    std::string left;
    if (i < raw.records.size() && i < max_raw_rows) {
      const positioning::RawRecord& r = raw.records[i];
      std::snprintf(buf, sizeof(buf), "%s, (%.1f, %.1f, %dF), %s",
                    raw.device_id.c_str(), r.location.xy.x, r.location.xy.y,
                    r.location.floor + 1, FormatClock(r.timestamp).c_str());
      left = buf;
    } else if (i == max_raw_rows && raw.records.size() > max_raw_rows) {
      left = "  ... (" + std::to_string(raw.records.size() - max_raw_rows) +
             " more records)";
    }
    left.resize(40, ' ');
    std::string right =
        i < semantics.semantics.size() ? semantics.semantics[i].ToString() : "";
    out += left + "| " + right + "\n";
  }
  return out;
}

Result<size_t> ExportResultFiles(const std::vector<TranslationResult>& results,
                                 const std::string& dir) {
  size_t written = 0;
  for (const TranslationResult& r : results) {
    std::string name = r.semantics.device_id;
    for (char& c : name) {
      if (c == '/' || c == '\\' || c == ':') c = '_';
    }
    TRIPS_RETURN_NOT_OK(
        WriteResultFile(r.semantics, dir + "/" + name + ".result.json"));
    ++written;
  }
  return written;
}

}  // namespace trips::core
