#include "core/analytics.h"

#include <algorithm>
#include <cstdio>

namespace trips::core {

void MobilityAnalytics::AddSequence(const MobilitySemanticsSequence& seq) {
  ++sequences_;
  dsm::RegionId prev = dsm::kInvalidRegion;
  for (const MobilitySemantic& s : seq.semantics) {
    if (s.region == dsm::kInvalidRegion) continue;
    Accum& accum = regions_[s.region];
    if (accum.name.empty()) {
      accum.name = s.region_name;
      if (accum.name.empty() && dsm_ != nullptr) {
        if (const dsm::SemanticRegion* r = dsm_->GetRegion(s.region)) {
          accum.name = r->name;
        }
      }
    }
    ++accum.visits;
    if (s.event == kEventStay) {
      ++accum.stays;
      accum.device_stayed[seq.device_id] = true;
    } else {
      if (s.event == kEventPassBy) ++accum.pass_bys;
      accum.device_stayed.try_emplace(seq.device_id, false);
    }
    accum.total_time += s.range.Duration();

    if (prev != dsm::kInvalidRegion && prev != s.region) ++flow_[prev][s.region];
    prev = s.region;

    // Walk the triplet hour by hour so ranges crossing hour boundaries are
    // apportioned correctly.
    std::array<DurationMs, 24>& hours = hours_.try_emplace(s.region).first->second;
    TimestampMs t = s.range.begin;
    while (t < s.range.end) {
      DurationMs into_hour = t % kMillisPerHour;
      TimestampMs hour_end = t - into_hour + kMillisPerHour;
      TimestampMs slice_end = std::min<TimestampMs>(hour_end, s.range.end);
      size_t hour = static_cast<size_t>(MillisOfDay(t) / kMillisPerHour) % 24;
      hours[hour] += slice_end - t;
      t = slice_end;
    }
  }
}

void MobilityAnalytics::Merge(const MobilityAnalytics& other) {
  sequences_ += other.sequences_;
  for (const auto& [region, theirs] : other.regions_) {
    Accum& accum = regions_[region];
    if (accum.name.empty()) accum.name = theirs.name;
    accum.visits += theirs.visits;
    accum.stays += theirs.stays;
    accum.pass_bys += theirs.pass_bys;
    accum.total_time += theirs.total_time;
    for (const auto& [device, did_stay] : theirs.device_stayed) {
      if (did_stay) {
        accum.device_stayed[device] = true;
      } else {
        accum.device_stayed.try_emplace(device, false);
      }
    }
  }
  for (const auto& [from, row] : other.flow_) {
    for (const auto& [to, n] : row) flow_[from][to] += n;
  }
  for (const auto& [region, theirs] : other.hours_) {
    std::array<DurationMs, 24>& hours = hours_.try_emplace(region).first->second;
    for (size_t h = 0; h < hours.size(); ++h) hours[h] += theirs[h];
  }
}

RegionStats MobilityAnalytics::Finalize(dsm::RegionId region,
                                        const Accum& accum) const {
  RegionStats stats;
  stats.region = region;
  stats.region_name = accum.name;
  stats.visits = accum.visits;
  stats.stays = accum.stays;
  stats.pass_bys = accum.pass_bys;
  stats.total_time = accum.total_time;
  stats.unique_devices = accum.device_stayed.size();
  stats.mean_visit =
      accum.visits > 0 ? accum.total_time / static_cast<DurationMs>(accum.visits) : 0;
  size_t stayed = 0;
  for (const auto& [device, did_stay] : accum.device_stayed) {
    if (did_stay) ++stayed;
  }
  stats.conversion_rate =
      stats.unique_devices > 0
          ? static_cast<double>(stayed) / static_cast<double>(stats.unique_devices)
          : 0;
  return stats;
}

std::vector<RegionStats> MobilityAnalytics::RegionReport() const {
  std::vector<RegionStats> out;
  out.reserve(regions_.size());
  for (const auto& [region, accum] : regions_) {
    out.push_back(Finalize(region, accum));
  }
  return out;
}

namespace {
std::vector<RegionStats> TakeTop(std::vector<RegionStats> stats, size_t k,
                                 bool by_time) {
  std::sort(stats.begin(), stats.end(),
            [by_time](const RegionStats& a, const RegionStats& b) {
              if (by_time) {
                if (a.total_time != b.total_time) return a.total_time > b.total_time;
                return a.visits > b.visits;
              }
              if (a.visits != b.visits) return a.visits > b.visits;
              return a.total_time > b.total_time;
            });
  if (stats.size() > k) stats.resize(k);
  return stats;
}
}  // namespace

std::vector<RegionStats> MobilityAnalytics::TopRegionsByVisits(size_t k) const {
  return TakeTop(RegionReport(), k, /*by_time=*/false);
}

std::vector<RegionStats> MobilityAnalytics::TopRegionsByTime(size_t k) const {
  return TakeTop(RegionReport(), k, /*by_time=*/true);
}

std::map<dsm::RegionId, std::map<dsm::RegionId, size_t>>
MobilityAnalytics::FlowMatrix() const {
  return flow_;
}

std::vector<DurationMs> MobilityAnalytics::HourlyOccupancy(
    dsm::RegionId region) const {
  std::vector<DurationMs> hours(24, 0);
  auto it = hours_.find(region);
  if (it != hours_.end()) hours.assign(it->second.begin(), it->second.end());
  return hours;
}

std::string MobilityAnalytics::FormatReport(size_t k) const {
  std::vector<RegionStats> top = TopRegionsByVisits(k);
  std::string out;
  char buf[192];
  std::snprintf(buf, sizeof(buf), "%-22s %7s %8s %6s %8s %10s %9s %6s\n", "region",
                "visits", "devices", "stays", "pass-bys", "total_min", "mean_min",
                "conv%");
  out += buf;
  for (const RegionStats& s : top) {
    std::snprintf(buf, sizeof(buf), "%-22s %7zu %8zu %6zu %8zu %10.1f %9.1f %5.0f%%\n",
                  s.region_name.c_str(), s.visits, s.unique_devices, s.stays,
                  s.pass_bys,
                  static_cast<double>(s.total_time) / kMillisPerMinute,
                  static_cast<double>(s.mean_visit) / kMillisPerMinute,
                  s.conversion_rate * 100);
    out += buf;
  }
  return out;
}

}  // namespace trips::core
