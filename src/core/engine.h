// The immutable translation engine — everything a translation needs that does
// NOT change per request: the DSM, its routing topology, the trained event
// identification model, and the baseline mobility knowledge. An Engine is
// assembled once through Engine::Builder and then never mutated, so a single
// instance can be shared (via shared_ptr<const Engine>) by any number of
// concurrent sessions and threads. Per-request state (batch-learned mobility
// knowledge, streaming buffers) lives in the sessions handed out by
// core::Service.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "config/event_editor.h"
#include "core/translator.h"
#include "dsm/dsm.h"

namespace trips::core {

/// One coherent view of the route planner's memoization cache plus the static
/// graph sizes — Engine::routing_cache_stats() is the single observability
/// surface for routing; the raw RoutePlanner accessors remain as shims
/// underneath it.
struct RoutingCacheStats {
  size_t hits = 0;
  size_t misses = 0;
  size_t evictions = 0;
  size_t size = 0;      ///< memoized trees currently held
  size_t nodes = 0;     ///< static routing graph nodes
  size_t portals = 0;   ///< portal nodes surviving contraction
};

/// Immutable, shareable translation model. Every const method is thread-safe.
class Engine {
 public:
  /// Assembles an Engine: DSM + options + optional training corpus.
  ///
  ///     auto engine = core::Engine::Builder()
  ///                       .SetDsm(std::move(mall))
  ///                       .SetTrainingData(editor.training_data())
  ///                       .Build();
  class Builder {
   public:
    /// Takes ownership of `dsm`. Topology is computed at Build() if missing.
    Builder& SetDsm(dsm::Dsm dsm);
    /// Co-owns `dsm` (no copy; the engine keeps it alive). Must already have
    /// topology computed.
    Builder& ShareDsm(std::shared_ptr<const dsm::Dsm> dsm);
    /// Borrows `dsm` (caller keeps ownership; must outlive the Engine and
    /// already have topology computed).
    Builder& BorrowDsm(const dsm::Dsm* dsm);
    /// Loads the DSM from a JSON file at Build() time.
    Builder& LoadDsmFile(std::string path);
    /// Translation options for all three layers.
    Builder& SetOptions(TranslatorOptions options);
    /// Event Editor segments to train the event identification model with.
    /// Training is best-effort: with segments for fewer than two patterns the
    /// rule-based identifier stays in place and Engine::training_status()
    /// reports kFailedPrecondition.
    Builder& SetTrainingData(std::vector<config::LabeledSegment> training_data);

    /// Builds the engine: resolves the DSM, computes topology when owned and
    /// missing, builds the route planner, and trains the event model.
    Result<std::shared_ptr<const Engine>> Build();

   private:
    std::unique_ptr<dsm::Dsm> owned_dsm_;
    std::shared_ptr<const dsm::Dsm> shared_dsm_;
    const dsm::Dsm* borrowed_dsm_ = nullptr;
    std::string dsm_path_;
    TranslatorOptions options_;
    std::vector<config::LabeledSegment> training_data_;
  };

  // ---- model accessors ------------------------------------------------------

  const dsm::Dsm& dsm() const { return *dsm_; }
  const TranslatorOptions& options() const { return translator_->options(); }
  const dsm::RoutePlanner& planner() const { return *translator_->planner(); }
  const annotation::EventClassifier& classifier() const {
    return translator_->classifier();
  }
  /// Baseline mobility knowledge (uniform prior over the DSM adjacency).
  const complement::MobilityKnowledge& knowledge() const {
    return translator_->knowledge();
  }
  /// Outcome of event-model training at Build() time: OK when training was
  /// not requested or succeeded; kFailedPrecondition when the corpus covered
  /// fewer than two patterns (the rule-based identifier is used then).
  const Status& training_status() const { return training_status_; }
  /// The underlying (initialized, const-only) translator.
  const Translator* translator() const { return translator_.get(); }

  // ---- observability --------------------------------------------------------

  /// Snapshot of the route planner's cache counters and graph sizes. Each
  /// counter is read atomically but the struct as a whole is not one atomic
  /// snapshot (concurrent queries may land between reads) — fine for
  /// monitoring, and exact at quiescence.
  RoutingCacheStats routing_cache_stats() const {
    const dsm::RoutePlanner& p = planner();
    RoutingCacheStats stats;
    stats.hits = p.cache_hits();
    stats.misses = p.cache_misses();
    stats.evictions = p.cache_evictions();
    stats.size = p.cache_size();
    stats.nodes = p.NodeCount();
    stats.portals = p.PortalCount();
    return stats;
  }

  /// Point-query counts of the DSM's spatial index (zeroes when the index is
  /// not built).
  dsm::SpatialProbeStats spatial_probe_stats() const {
    return dsm().spatial_index().probes();
  }

  /// Drops the memoized routing trees and zeroes the cache counters. The
  /// engine stays logically immutable: the cache is pure memoization, so
  /// translation results are unaffected.
  void ClearRoutingCache() const { planner().ClearCache(); }

  /// Zeroes the spatial probe counters (benchmark phases, tests).
  void ResetSpatialProbes() const { dsm().spatial_index().ResetProbes(); }

  // ---- stateless translation primitives (all thread-safe) -------------------

  /// Cleaning + Annotation layers for one sequence. `stages` (may be null)
  /// receives per-stage timings/counts without affecting the output.
  TranslationResult CleanAndAnnotate(
      const positioning::PositioningSequence& seq,
      const TranslationStageMetrics* stages = nullptr) const {
    return translator_->CleanAndAnnotate(seq, stages);
  }
  /// Columnar Cleaning + Annotation: consumes `block` in place (no AoS
  /// rematerialization between the stages). `pool` (may be null) parallelizes
  /// cleaning inside long sequences with worker-count-independent output.
  TranslationResult CleanAndAnnotate(
      positioning::RecordBlock* block, util::ThreadPool* pool = nullptr,
      const TranslationStageMetrics* stages = nullptr) const {
    return translator_->CleanAndAnnotate(block, pool, stages);
  }
  /// Aggregates annotated results into mobility knowledge.
  complement::MobilityKnowledge BuildKnowledge(
      const std::vector<TranslationResult>& results) const {
    return translator_->BuildKnowledgeFrom(results);
  }
  /// Complementing layer for one result against the given knowledge.
  void Complement(TranslationResult* result,
                  const complement::MobilityKnowledge& knowledge,
                  const TranslationStageMetrics* stages = nullptr) const {
    translator_->ComplementResult(result, knowledge, stages);
  }
  /// Full three-layer translation of one sequence with the baseline knowledge.
  TranslationResult Translate(const positioning::PositioningSequence& seq) const {
    return TranslateWith(seq, knowledge());
  }
  /// Full three-layer translation against caller-supplied knowledge.
  TranslationResult TranslateWith(const positioning::PositioningSequence& seq,
                                  const complement::MobilityKnowledge& knowledge) const {
    TranslationResult result = CleanAndAnnotate(seq);
    Complement(&result, knowledge);
    return result;
  }
  /// Columnar full translation: consumes `block` in place (the streaming
  /// path — buffers translate without ever materializing an input AoS copy).
  TranslationResult TranslateBlockWith(
      positioning::RecordBlock* block,
      const complement::MobilityKnowledge& knowledge,
      util::ThreadPool* pool = nullptr,
      const TranslationStageMetrics* stages = nullptr) const {
    TranslationResult result = CleanAndAnnotate(block, pool, stages);
    Complement(&result, knowledge, stages);
    return result;
  }

 private:
  Engine() = default;

  std::shared_ptr<const dsm::Dsm> dsm_holder_;  // set when the engine (co)owns it
  const dsm::Dsm* dsm_ = nullptr;               // always valid after Build
  std::unique_ptr<Translator> translator_;      // initialized; used const-only
  Status training_status_;
};

}  // namespace trips::core
