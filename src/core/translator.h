// The Translator — backend component of TRIPS (§2): "constructs a sequence
// of mobility semantics for each individual positioning sequence" by running
// the three-layer framework (Fig. 3): Cleaning -> Annotation -> Complementing,
// "without manual interventions".
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "annotation/annotator.h"
#include "annotation/event_classifier.h"
#include "cleaning/cleaner.h"
#include "complement/complementor.h"
#include "complement/knowledge.h"
#include "config/event_editor.h"
#include "core/semantics.h"
#include "dsm/dsm.h"
#include "dsm/routing.h"
#include "obs/metrics.h"
#include "positioning/record_block.h"
#include "util/thread_pool.h"

namespace trips::core {

/// Cleaner defaults for the full pipeline: light smoothing suppresses the
/// per-fix positioning jitter that would otherwise inflate the motion
/// features the Annotation layer classifies on.
inline cleaning::CleanerOptions DefaultPipelineCleanerOptions() {
  cleaning::CleanerOptions opt;
  opt.smoothing_window = 3;
  return opt;
}

/// End-to-end translation options (one knob struct per layer).
struct TranslatorOptions {
  cleaning::CleanerOptions cleaner = DefaultPipelineCleanerOptions();
  annotation::AnnotatorOptions annotator;
  annotation::EventClassifierOptions classifier;
  complement::ComplementorOptions complementor;
  /// Route planner knobs (memoization, contraction, vertical cost) for the
  /// planner Init() builds; the cleaning layer's gap interpolation and every
  /// Engine session route through it.
  dsm::RoutePlannerOptions routing;
  /// Layer switches (ablations / baselines).
  bool enable_cleaning = true;
  bool enable_complementing = true;
  /// Laplace smoothing used when building mobility knowledge.
  double knowledge_smoothing = 0.5;
};

/// Per-stage observability hooks of the translation pipeline. Every pointer
/// may be null (that stage is simply not recorded); sessions resolve one of
/// these from their Service's obs::MetricsRegistry and pass it into the
/// stateless layer primitives below. Recording never changes translation
/// output — results are byte-identical metrics on or off.
struct TranslationStageMetrics {
  obs::Histogram* clean_ns = nullptr;       ///< cleaning layer, per sequence
  obs::Histogram* split_ns = nullptr;       ///< SplitSequence inside annotation
  obs::Histogram* annotate_ns = nullptr;    ///< annotation layer (includes split)
  obs::Histogram* complement_ns = nullptr;  ///< complementing layer, per sequence
  obs::Counter* sequences = nullptr;        ///< sequences clean+annotated
  obs::Counter* records = nullptr;          ///< raw records clean+annotated
  /// Per-pass breakdown inside the cleaning layer (clean.scan_ns etc.),
  /// forwarded into RawDataCleaner::CleanBlock; clean_ns is their sum plus
  /// the block sort.
  cleaning::CleaningStageMetrics cleaning;
};

/// Everything the Translator produced for one device — the material the
/// Viewer traces ("the input, output and intermediate data involved in the
/// translation", §1).
struct TranslationResult {
  positioning::PositioningSequence raw;
  positioning::PositioningSequence cleaned;
  /// Annotation-layer output (before complementing).
  MobilitySemanticsSequence original_semantics;
  /// Final output (after complementing).
  MobilitySemanticsSequence semantics;
  cleaning::CleaningReport cleaning_report;
  complement::ComplementReport complement_report;
  /// When the record batch was traced (stream ingest), the ingest stamp rides
  /// along so the session can report true ingest-to-emit latency.
  obs::TraceContext trace;
};

/// The three-layer translator. Typical use:
///
///     core::Translator translator(&dsm, options);
///     TRIPS_RETURN_NOT_OK(translator.Init());
///     translator.TrainEventModel(editor.training_data());       // optional
///     auto results = translator.TranslateAll(selected_sequences);
class Translator {
 public:
  /// `dsm` must outlive the translator and have topology computed.
  explicit Translator(const dsm::Dsm* dsm, TranslatorOptions options = {});

  // The hoisted layer instances below hold pointers into this object, so a
  // translator is pinned to its address once constructed.
  Translator(const Translator&) = delete;
  Translator& operator=(const Translator&) = delete;

  /// Builds the route planner over the DSM. Must be called once before
  /// translating.
  Status Init();

  /// Trains the learning-based event identification model from Event Editor
  /// segments. Without training, the rule-based identifier is used.
  Status TrainEventModel(const std::vector<config::LabeledSegment>& training_data);

  /// Translates a batch: cleans and annotates every sequence, builds the
  /// mobility knowledge from all annotated sequences ("referring to other
  /// generated mobility semantics sequences", §2), then complements each.
  Result<std::vector<TranslationResult>> TranslateAll(
      const std::vector<positioning::PositioningSequence>& sequences);

  /// Translates one sequence using the current knowledge (from a previous
  /// TranslateAll, or the uniform prior when none exists yet).
  Result<TranslationResult> Translate(const positioning::PositioningSequence& seq) const;

  // ---- stateless layer primitives -----------------------------------------
  // The three batch phases of TranslateAll, exposed individually so callers
  // that manage knowledge themselves (core::Engine and its sessions) can fan
  // the per-sequence phases out over threads. All three are const and safe to
  // call concurrently once Init() has succeeded.

  /// Cleaning + Annotation layers for one sequence (no complementing). AoS
  /// shim: copies the sequence into a per-thread RecordBlock and delegates to
  /// the columnar form below, so both entry points produce byte-identical
  /// results. `stages` (may be null) receives per-stage timings/counts.
  TranslationResult CleanAndAnnotate(
      const positioning::PositioningSequence& seq,
      const TranslationStageMetrics* stages = nullptr) const;

  /// Columnar Cleaning + Annotation: sorts and cleans `block` in place and
  /// annotates the cleaned columns directly — the stages never rematerialize
  /// AoS records between each other (the result's raw/cleaned sequences are
  /// materialized once, at the stage boundaries the TranslationResult
  /// contract requires). On return the block holds the cleaned columns.
  /// `pool` (may be null) parallelizes cleaning passes 2/4 inside long
  /// sequences; output is identical for every worker count and with `stages`
  /// (may be null) recording or not.
  TranslationResult CleanAndAnnotate(
      positioning::RecordBlock* block, util::ThreadPool* pool = nullptr,
      const TranslationStageMetrics* stages = nullptr) const;

  /// Builds mobility knowledge by aggregating the annotation-layer output of
  /// `results` (integer-count aggregation: independent of result order).
  complement::MobilityKnowledge BuildKnowledgeFrom(
      const std::vector<TranslationResult>& results) const;

  /// Complementing layer for one result: fills result->semantics from
  /// result->original_semantics using `knowledge` (or copies it verbatim when
  /// complementing is disabled in the options). `stages` (may be null)
  /// receives the complement-stage timing.
  void ComplementResult(TranslationResult* result,
                        const complement::MobilityKnowledge& knowledge,
                        const TranslationStageMetrics* stages = nullptr) const;

  /// The current mobility knowledge (uniform prior before any batch run).
  const complement::MobilityKnowledge& knowledge() const { return knowledge_; }
  /// The event classifier (untrained => rule-based identification).
  const annotation::EventClassifier& classifier() const { return classifier_; }
  const TranslatorOptions& options() const { return options_; }
  /// The route planner (valid after Init).
  const dsm::RoutePlanner* planner() const {
    return planner_.has_value() ? &*planner_ : nullptr;
  }

 private:
  const dsm::Dsm* dsm_;
  TranslatorOptions options_;
  std::optional<dsm::RoutePlanner> planner_;
  annotation::EventClassifier classifier_;
  complement::MobilityKnowledge knowledge_;
  // Layer instances hoisted out of the per-sequence path: constructed once at
  // Init() and shared by every CleanAndAnnotate call (all their methods are
  // const and thread-safe), instead of being rebuilt per sequence.
  std::optional<cleaning::RawDataCleaner> cleaner_;
  std::optional<annotation::Annotator> annotator_;
  bool initialized_ = false;
};

}  // namespace trips::core
