// Mobility semantics — the output representation of TRIPS (§1, Table 1):
// a sequence of triplets (event annotation, spatial annotation, temporal
// annotation), e.g. (stay, Adidas, 1:02:05-1:18:15pm).
#pragma once

#include <string>
#include <vector>

#include "dsm/entity.h"
#include "util/time_util.h"

namespace trips::core {

/// Built-in mobility event names. Events are user-defined patterns (§2 Event
/// Editor); these are the ones the paper's walk-through uses. Custom patterns
/// are plain strings alongside these.
inline constexpr const char* kEventStay = "stay";
inline constexpr const char* kEventPassBy = "pass-by";
inline constexpr const char* kEventWander = "wander";
inline constexpr const char* kEventUnknown = "unknown";

/// One mobility semantics triplet.
struct MobilitySemantic {
  /// Event annotation: a mobility event pattern name ("stay", "pass-by", ...).
  std::string event;
  /// Spatial annotation: the semantic region, by id and display name.
  dsm::RegionId region = dsm::kInvalidRegion;
  std::string region_name;
  /// Temporal annotation.
  TimeRange range;
  /// True when this triplet was inferred by the Complementing layer rather
  /// than annotated from observed records.
  bool inferred = false;

  bool operator==(const MobilitySemantic& other) const = default;

  /// Renders "(stay, Adidas, 13:02:05-13:18:15)" as in Table 1.
  std::string ToString() const;
};

/// The mobility semantics of one device: an ordered sequence of triplets.
struct MobilitySemanticsSequence {
  std::string device_id;
  std::vector<MobilitySemantic> semantics;

  bool Empty() const { return semantics.empty(); }
  size_t Size() const { return semantics.size(); }

  /// Time span from the first triplet's begin to the last triplet's end.
  TimeRange Span() const;

  /// The triplet covering time `t`, or nullptr.
  const MobilitySemantic* At(TimestampMs t) const;

  /// Total time covered by triplets (gaps excluded).
  DurationMs CoveredDuration() const;

  /// Sorts triplets by begin time.
  void SortByTime();

  /// Renders the sequence as in Table 1's right column (one triplet per line).
  std::string ToString() const;
};

/// Agreement metrics between two semantics sequences over a common span,
/// measured by time-weighted overlap (the natural metric when triplet
/// boundaries differ slightly). Used to score annotation and complementing
/// quality against generator ground truth.
struct SemanticsAgreement {
  /// Fraction of evaluated time where both region and event match.
  double full_match = 0;
  /// Fraction of evaluated time where the region matches.
  double region_match = 0;
  /// Fraction of evaluated time where the event matches.
  double event_match = 0;
  /// Total milliseconds evaluated.
  DurationMs evaluated = 0;
};

/// Computes time-weighted agreement of `predicted` against `truth`, sampled
/// every `step` milliseconds over truth's span. Instants where truth has no
/// triplet are skipped.
SemanticsAgreement CompareSemantics(const MobilitySemanticsSequence& truth,
                                    const MobilitySemanticsSequence& predicted,
                                    DurationMs step = 1000);

}  // namespace trips::core
