// Sessions: the per-request mutable state of a translation service. A session
// borrows an immutable core::Engine (shared with any number of sibling
// sessions) and adds what one client conversation needs on top of it —
// batch-learned mobility knowledge for BatchSession, per-device stream
// buffers for StreamSession. Sessions are created by core::Service and must
// not outlive it (BatchSession fans work out over the service's thread pool).
//
// Both session types are internally synchronized: a BatchSession serializes
// its Submit calls (each Submit is parallel inside), a StreamSession may be
// fed records from several ingest threads at once.
#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/engine.h"
#include "obs/metrics.h"
#include "util/thread_pool.h"

namespace trips::core {

/// One batch translation request: the positioning sequences of the devices to
/// translate (one sequence per device, as produced by config::DataSelector).
struct TranslationRequest {
  std::vector<positioning::PositioningSequence> sequences;
  /// Build request-local mobility knowledge from this batch before
  /// complementing ("referring to other generated mobility semantics
  /// sequences", §2) and keep it as the session's knowledge for later
  /// requests. When false — or when the batch exhibits no transitions — the
  /// session's current knowledge is used unchanged.
  bool learn_knowledge = true;
};

/// What one batch request produced.
struct TranslationResponse {
  /// Per-device results, sorted by device id (deterministic regardless of
  /// input order and worker count).
  std::vector<TranslationResult> results;
  /// Total raw records across all input sequences.
  size_t total_records = 0;
  /// Wall-clock time spent inside Submit, in milliseconds.
  double elapsed_ms = 0;
  /// Threads that cooperated on the request (pool workers + the caller).
  size_t workers_used = 1;
};

/// Batch translation over a shared engine. Equivalent to
/// Translator::TranslateAll, with the per-sequence phases (clean+annotate,
/// complement) fanned out over the service's thread pool and the session
/// holding the learned knowledge between requests.
class BatchSession {
 public:
  /// `pool` must outlive the session (both normally owned by the Service).
  /// `metrics` (may be null) receives the per-stage translation metrics;
  /// sessions sharing a registry aggregate into the same named metrics.
  BatchSession(std::shared_ptr<const Engine> engine, util::ThreadPool* pool,
               std::shared_ptr<obs::MetricsRegistry> metrics = nullptr);

  /// Translates every sequence of the request. Thread-safe; concurrent
  /// Submit calls on the same session are serialized.
  Result<TranslationResponse> Submit(const TranslationRequest& request);

  /// The engine this session translates with.
  const Engine& engine() const { return *engine_; }
  /// Knowledge the session currently complements with (baseline before the
  /// first learning request). Not synchronized with a running Submit.
  const complement::MobilityKnowledge& knowledge() const { return knowledge_; }
  /// Replaces the session's knowledge — e.g. to warm-start from persisted
  /// knowledge or to carry state onto a session over a retrained engine.
  void ResetKnowledge(complement::MobilityKnowledge knowledge);
  /// Sequences translated by this session so far (safe to read while another
  /// thread is inside Submit).
  size_t translated_count() const { return translated_.load(std::memory_order_relaxed); }

 private:
  std::shared_ptr<const Engine> engine_;
  util::ThreadPool* pool_;
  std::shared_ptr<obs::MetricsRegistry> metrics_;  // may be null
  TranslationStageMetrics stages_;   // resolved pointers; zeros when no registry
  obs::Histogram* submit_ns_ = nullptr;  // whole-Submit wall time
  std::mutex mu_;  // serializes Submit
  complement::MobilityKnowledge knowledge_;
  std::atomic<size_t> translated_{0};
};

/// Streaming options (flush policy of a StreamSession).
struct StreamOptions {
  /// A device whose newest record is older than this at Poll time is
  /// considered departed; its buffer is translated and emitted.
  DurationMs flush_after = 10 * kMillisPerMinute;
  /// A device buffer reaching this many records is translated immediately
  /// (bounded memory for devices that never leave).
  size_t max_buffer_records = 20'000;
  /// Buffers smaller than this are dropped, not translated, when an age-based
  /// flush pops them (Poll deciding a device has departed — a couple of stray
  /// fixes carry no semantics). A final/explicit FlushAll translates every
  /// remainder regardless, unless drop_small_on_final_flush opts back in.
  size_t min_flush_records = 4;
  /// Apply the min_flush_records drop at FlushAll time too. Off by default:
  /// FlushAll is the end-of-stream drain, and dropping there silently loses
  /// the tail records of every short trailing sequence (stream output would
  /// no longer match translating the same sequences as a batch).
  bool drop_small_on_final_flush = false;
  /// Device-hash sub-maps the ingest buffers are split into, each with its
  /// own mutex, so concurrent ingest threads touching different devices never
  /// contend on one lock. 0 behaves as 1 (a single map). Flush output is
  /// byte-identical across any shard count: flushes gather from every shard
  /// and re-establish global device-id order before translating.
  size_t buffer_shards = 8;
  /// Clock behind the stream.ingest_to_result_ns trace stamps, nanoseconds.
  /// Null (the default) reads obs::NowNanos() — wall latency on a live feed.
  /// A load/replay harness driving the session from a simulated schedule
  /// installs its own clock here so the recorded ingest-to-result latency is
  /// measured on the simulated timeline instead of being polluted by replay
  /// speed. Both the first-record stamp and the delivery reading use this
  /// clock; it must be monotone and thread-safe. Translation output is
  /// byte-identical whatever clock is installed.
  std::function<uint64_t()> trace_clock;
};

/// Incremental translation over a shared engine: records arrive one at a time
/// from a live positioning feed; per-device buffers are translated and
/// emitted once the device goes quiet or its buffer grows too large. Buffers
/// are columnar (positioning::RecordBlock): ingestion appends to the columns
/// and a flushed buffer feeds the engine's block pipeline directly, so a
/// streamed sequence is never materialized as AoS records on its way in.
///
///     auto stream = service.NewStreamSession();
///     for (const auto& [device, record] : feed) {
///       stream->Ingest(device, record);
///       for (auto& result : *stream->Poll(record.timestamp)) Emit(result);
///     }
///     for (auto& result : *stream->FlushAll()) Emit(result);
///
/// Alternatively install a sink with SetSink to receive every flushed result
/// through a callback; Ingest/Poll/FlushAll then return empty vectors.
class StreamSession {
 public:
  /// Receives flushed results when installed via SetSink.
  using Sink = std::function<void(TranslationResult)>;
  /// Pluggable per-buffer translation (used by the OnlineTranslator shim to
  /// keep translating through a caller-owned stateful Translator).
  using TranslateFn =
      std::function<Result<TranslationResult>(const positioning::PositioningSequence&)>;

  /// Engine-backed session: buffers are translated with the engine's baseline
  /// knowledge. `pool` (may be null; normally the owning Service's pool)
  /// parallelizes cleaning inside long flushed buffers. `metrics` (may be
  /// null) receives the stream ingest metrics — including the true
  /// ingest-to-result latency: each device buffer is stamped when its FIRST
  /// record arrives, and the stamp-to-delivery time of every flushed buffer
  /// lands in stream.ingest_to_result_ns.
  explicit StreamSession(std::shared_ptr<const Engine> engine,
                         StreamOptions options = {},
                         util::ThreadPool* pool = nullptr,
                         std::shared_ptr<obs::MetricsRegistry> metrics = nullptr);
  /// Hook-backed session: buffers are translated by `translate`.
  explicit StreamSession(TranslateFn translate, StreamOptions options = {});

  /// Installs (or, with nullptr, removes) the delivery callback. The sink is
  /// invoked from whichever thread triggered the flush, one result at a time,
  /// in device-id order per flush, with the session lock released.
  void SetSink(Sink sink);

  /// Buffers one record. Returns the translation of the device's buffer when
  /// ingestion itself forced a flush (buffer cap reached), else no value.
  Result<std::vector<TranslationResult>> Ingest(const std::string& device,
                                                const positioning::RawRecord& record);

  /// Flushes every device idle at `now` and returns their translations in
  /// device-id order.
  Result<std::vector<TranslationResult>> Poll(TimestampMs now);

  /// Flushes everything regardless of idleness (end of stream), in device-id
  /// order. Translates every remainder, even buffers shorter than
  /// min_flush_records (see StreamOptions::drop_small_on_final_flush).
  Result<std::vector<TranslationResult>> FlushAll();

  /// Devices currently buffered.
  size_t PendingDevices() const;
  /// Total buffered records.
  size_t PendingRecords() const;
  /// Sequences emitted so far (flushed and translated).
  size_t EmittedCount() const;

 private:
  struct Buffer {
    positioning::RecordBlock block;
    TimestampMs newest = 0;
    /// Trace-clock stamp of the FIRST record's arrival (0 = not traced) —
    /// steady clock by default, StreamOptions::trace_clock when installed.
    uint64_t ingest_ns = 0;
  };
  /// One device-hash shard of the ingest buffers. Ingest locks only the
  /// owning device's shard, so concurrent feeds on different devices proceed
  /// in parallel; flush paths sweep the shards one at a time.
  struct BufferShard {
    mutable std::mutex mu;
    std::map<std::string, Buffer> buffers;
    /// Records currently buffered in this shard (maintained by ingest/flush;
    /// exported as stream.shardNN.buffered_records). Null without a registry.
    obs::Gauge* buffered_records = nullptr;
  };
  /// A buffer popped for translation: the columnar records plus the trace
  /// stamp that rides along to the latency histogram.
  struct PoppedBuffer {
    positioning::RecordBlock block;
    uint64_t ingest_ns = 0;
  };
  /// Resolved stream metric pointers (all null without a registry).
  struct StreamMetrics {
    obs::Counter* records_ingested = nullptr;
    obs::Gauge* buffered_records = nullptr;  // across all shards
    obs::Counter* flushes = nullptr;         // buffers translated+delivered
    obs::Counter* flush_records = nullptr;   // records in those buffers
    obs::Counter* dropped_small_buffers = nullptr;
    obs::Histogram* ingest_to_result_ns = nullptr;
  };

  // Shared ctor tail: resolves metric pointers out of metrics_.
  void WireMetrics();
  // Now on the trace-stamp clock: options_.trace_clock when installed, else
  // obs::NowNanos(). Every ingest stamp and delivery reading goes through
  // this, so stamp and reading always share one time base.
  uint64_t TraceNowNs() const;
  // The shard owning `device`'s buffer.
  BufferShard& ShardFor(const std::string& device);
  // Updates the occupancy gauges for `delta` records entering (positive) or
  // leaving (negative) `shard`.
  void TrackBuffered(BufferShard& shard, int64_t delta);
  // Removes `device`'s buffer from `shard` and, unless too small, moves it
  // onto `out` for translation. Requires shard.mu held.
  void PopDeviceLocked(BufferShard& shard, const std::string& device,
                       std::vector<PoppedBuffer>* out);
  // Restores global device-id order over buffers gathered from several shards
  // (within one shard the map already yields device order).
  static void SortPoppedByDevice(std::vector<PoppedBuffer>* popped);
  // Translates popped buffers (no shard lock held) and routes the results to
  // the sink when one is installed, else back to the caller. `popped` must be
  // in device-id order.
  Result<std::vector<TranslationResult>> TranslateAndDeliver(
      std::vector<PoppedBuffer> popped);

  std::shared_ptr<const Engine> engine_;  // null for hook-backed sessions
  TranslateFn translate_;                 // set for hook-backed sessions only
  StreamOptions options_;
  util::ThreadPool* pool_ = nullptr;      // may be null (serial cleaning)
  std::shared_ptr<obs::MetricsRegistry> metrics_;  // may be null
  StreamMetrics stream_metrics_;
  TranslationStageMetrics stages_;        // per-stage translation metrics
  std::vector<BufferShard> shards_;       // fixed size >= 1 after construction
  mutable std::mutex mu_;                 // guards sink_ and emitted_
  Sink sink_;
  size_t emitted_ = 0;
};

}  // namespace trips::core
