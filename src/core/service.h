// The translation service: owns one immutable core::Engine plus a small
// shared worker pool, and hands out per-client sessions. This is the single
// front door for both batch and streaming translation; core::Pipeline and
// core::OnlineTranslator remain as thin deprecated adapters over it.
//
//     auto engine = core::Engine::Builder().SetDsm(std::move(mall)).Build();
//     core::Service service(engine.ValueOrDie(), {.worker_threads = 4});
//
//     auto batch = service.NewBatchSession();
//     auto response = batch->Submit({.sequences = selected});
//
//     auto stream = service.NewStreamSession();
//     stream->Ingest(device, record); ... stream->FlushAll();
//
// Thread-safety: the engine is immutable, the pool is internally
// synchronized, and every session is internally synchronized, so any number
// of sessions can be created and driven from any threads concurrently.
// Sessions must not outlive the service that created them.
#pragma once

#include <memory>
#include <ostream>

#include "core/engine.h"
#include "core/session.h"
#include "obs/metrics.h"
#include "util/thread_pool.h"

namespace trips::core {

/// Service-level options.
struct ServiceOptions {
  /// Worker threads in the shared pool. kAutoWorkerThreads sizes the pool to
  /// the hardware (hardware_concurrency - 1, capped at 8); 0 makes every
  /// batch request run fully on its calling thread.
  static constexpr size_t kAutoWorkerThreads = static_cast<size_t>(-1);
  size_t worker_threads = kAutoWorkerThreads;
  /// Default flush policy for stream sessions created without explicit
  /// options.
  StreamOptions stream = {};
  /// Metrics registry the service and its sessions record into. Null (the
  /// default) makes the service create its own; pass one to share a registry
  /// across services or to start with recording disabled
  /// (std::make_shared<obs::MetricsRegistry>(false)). Recording never alters
  /// translation output.
  std::shared_ptr<obs::MetricsRegistry> metrics;
};

/// Facade over one engine: creates batch and stream sessions that share it.
class Service {
 public:
  explicit Service(std::shared_ptr<const Engine> engine, ServiceOptions options = {});

  /// The shared immutable engine.
  const Engine& engine() const { return *engine_; }
  std::shared_ptr<const Engine> engine_ptr() const { return engine_; }
  /// Worker threads in the shared pool (0 = synchronous batches).
  size_t worker_count() const { return pool_.worker_count(); }

  /// Creates a batch session (its own adaptive knowledge, shared pool).
  std::unique_ptr<BatchSession> NewBatchSession();
  /// Creates a stream session with the service's default flush policy.
  std::unique_ptr<StreamSession> NewStreamSession();
  /// Creates a stream session with an explicit flush policy.
  std::unique_ptr<StreamSession> NewStreamSession(StreamOptions options);

  /// One-shot convenience: a fresh batch session, one Submit.
  Result<TranslationResponse> Translate(const TranslationRequest& request);

  /// The registry this service and its sessions record into (never null).
  /// Callback gauges for the engine's routing cache and spatial index are
  /// registered here at construction.
  const std::shared_ptr<obs::MetricsRegistry>& stats_registry() const {
    return metrics_;
  }

  /// Writes the /statsz JSON snapshot of stats_registry() to `out`.
  void DumpStatsz(std::ostream& out) const;

 private:
  std::shared_ptr<const Engine> engine_;
  ServiceOptions options_;
  std::shared_ptr<obs::MetricsRegistry> metrics_;  // never null
  util::ThreadPool pool_;
};

}  // namespace trips::core
