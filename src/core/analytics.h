// Mobility analytics over translated semantics — the downstream analyses the
// paper's introduction motivates: popular indoor location discovery [8],
// in-store marketing [2], and behaviour analysis. All computations consume
// mobility semantics sequences (not raw records), demonstrating the point of
// the translation: the condensed form is what analyses want to run on.
#pragma once

#include <array>
#include <map>
#include <string>
#include <vector>

#include "core/semantics.h"
#include "dsm/dsm.h"

namespace trips::core {

/// Aggregated statistics of one semantic region across a corpus.
struct RegionStats {
  dsm::RegionId region = dsm::kInvalidRegion;
  std::string region_name;
  /// Triplets of any event touching the region.
  size_t visits = 0;
  /// Distinct devices that touched the region.
  size_t unique_devices = 0;
  /// Triplets by event kind.
  size_t stays = 0;
  size_t pass_bys = 0;
  /// Total and mean time spent in the region (all events).
  DurationMs total_time = 0;
  DurationMs mean_visit = 0;
  /// Devices with a stay / devices with any visit — the "did the passer-by
  /// convert into a shopper" metric of in-store marketing.
  double conversion_rate = 0;
};

/// Region-level aggregation of a corpus of semantics sequences. Fully
/// incremental: every statistic (counts, dwell, flows, hourly occupancy) is
/// folded in at AddSequence time, so the analytics never retain the corpus
/// itself and can be fed live from a stream sink or a store scan.
class MobilityAnalytics {
 public:
  /// `dsm` provides region names for ids missing them; may be null.
  explicit MobilityAnalytics(const dsm::Dsm* dsm = nullptr) : dsm_(dsm) {}

  /// Adds one device's semantics to the corpus.
  void AddSequence(const MobilitySemanticsSequence& seq);

  /// Folds another analytics instance into this one. Equivalent to having
  /// added all of `other`'s sequences here (device sets are unioned, so a
  /// device seen by both sides is counted once per region). The substrate of
  /// segment-parallel aggregation: build partials per shard, then merge.
  void Merge(const MobilityAnalytics& other);

  /// Number of sequences added.
  size_t SequenceCount() const { return sequences_; }

  /// Per-region statistics, unordered.
  std::vector<RegionStats> RegionReport() const;

  /// The `k` regions with the most visits (the frequently visited indoor
  /// POIs of [8]). Ties broken by total time.
  std::vector<RegionStats> TopRegionsByVisits(size_t k) const;

  /// The `k` regions with the largest total dwell time.
  std::vector<RegionStats> TopRegionsByTime(size_t k) const;

  /// Transition counts between regions (row = from, col = to), over
  /// consecutive triplets of each sequence. The user-facing sibling of the
  /// Complementor's knowledge construction.
  std::map<dsm::RegionId, std::map<dsm::RegionId, size_t>> FlowMatrix() const;

  /// Occupancy histogram for `region`: triplet-time falling into each UTC
  /// hour of day, in milliseconds (index 0..23).
  std::vector<DurationMs> HourlyOccupancy(dsm::RegionId region) const;

  /// Renders the visit report as an aligned text table (top `k` regions).
  std::string FormatReport(size_t k = 10) const;

 private:
  struct Accum {
    std::string name;
    size_t visits = 0;
    size_t stays = 0;
    size_t pass_bys = 0;
    DurationMs total_time = 0;
    std::map<std::string, bool> device_stayed;  // device -> had a stay
  };

  RegionStats Finalize(dsm::RegionId region, const Accum& accum) const;

  const dsm::Dsm* dsm_;
  size_t sequences_ = 0;
  std::map<dsm::RegionId, Accum> regions_;
  std::map<dsm::RegionId, std::map<dsm::RegionId, size_t>> flow_;
  std::map<dsm::RegionId, std::array<DurationMs, 24>> hours_;
};

}  // namespace trips::core
