// DEPRECATED batch front-end, kept so existing callers compile. New code
// should build a core::Engine and drive a core::Service directly:
//
//     auto engine = core::Engine::Builder()
//                       .SetDsm(std::move(dsm))
//                       .SetTrainingData(editor.training_data())
//                       .Build();
//     core::Service service(engine.ValueOrDie());
//     auto response = service.Translate({.sequences = selected});
//
// Pipeline remains the five-step TRIPS workflow object (§4, Fig. 6): (1) set
// up the positioning data with the Data Selector, (2) import or create the
// DSM, (3) define event patterns and collect training data, (4) submit the
// translation task, (5) browse the result in the Viewer. It is now a thin
// adapter: SetDsm builds an Engine, Run() routes the request through a
// Service batch session (retraining the engine when the Event Editor holds
// training data), and results come back in deterministic device-id order.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "config/data_selector.h"
#include "config/event_editor.h"
#include "core/service.h"

namespace trips::core {

/// One full TRIPS session. Deprecated: prefer Engine::Builder + Service.
class [[deprecated(
    "Pipeline is a legacy shim; build a core::Engine and drive a core::Service "
    "instead")]] Pipeline {
 public:
  explicit Pipeline(TranslatorOptions options = {});

  // ---- step (1): positioning data ----

  /// The Data Selector to configure (sources + rules).
  config::DataSelector& selector() { return selector_; }

  // ---- step (2): indoor space ----

  /// Installs the DSM (built by a SpaceModeler, loaded from JSON, or one of
  /// the sample spaces). Recomputes topology when needed and (re)builds the
  /// engine + service.
  Status SetDsm(dsm::Dsm dsm);
  /// Loads the DSM from a JSON file.
  Status LoadDsm(const std::string& path);
  const dsm::Dsm* dsm() const { return dsm_.get(); }

  // ---- step (3): event patterns & training data ----

  /// The Event Editor to configure. The data "will be stored in the backend
  /// for the reuse in other translation tasks" — the editor persists across
  /// Run calls.
  config::EventEditor& event_editor() { return editor_; }

  // ---- step (4): translation ----

  /// Executes selection, optional model training and batch translation via
  /// the underlying Service. Fails when no DSM is installed or selection
  /// fails. Results are sorted by device id.
  Result<std::vector<TranslationResult>> Run();

  /// The engine's translator (valid after SetDsm/LoadDsm). Const: the engine
  /// is immutable; training happens by rebuilding it inside Run().
  const Translator* translator() const {
    return engine_ ? engine_->translator() : nullptr;
  }
  /// The underlying service (valid after SetDsm/LoadDsm).
  Service* service() { return service_.get(); }
  /// The underlying immutable engine (valid after SetDsm/LoadDsm).
  std::shared_ptr<const Engine> engine() const { return engine_; }

  // ---- step (5): browsing / export ----

  /// Writes, for every result, a JSON result file
  /// "<dir>/<device>.result.json". Returns the number of files written.
  Result<size_t> ExportResults(const std::vector<TranslationResult>& results,
                               const std::string& dir) const;

 private:
  // (Re)creates service + session over `engine`, carrying session knowledge.
  void Adopt(std::shared_ptr<const Engine> engine);

  TranslatorOptions options_;
  config::DataSelector selector_;
  config::EventEditor editor_;
  // The installed space, co-owned by every engine built over it, so pointers
  // returned by dsm() stay valid across retraining rebuilds.
  std::shared_ptr<const dsm::Dsm> dsm_;
  std::shared_ptr<const Engine> engine_;
  std::unique_ptr<Service> service_;
  std::unique_ptr<BatchSession> session_;
  // Editor revision the current engine was trained with (SIZE_MAX: never).
  size_t trained_revision_ = static_cast<size_t>(-1);
};

}  // namespace trips::core
