// The five-step TRIPS workflow (§4, Fig. 6): (1) set up the positioning data
// with the Data Selector, (2) import or create the DSM, (3) define event
// patterns and collect training data, (4) submit the translation task, (5)
// browse the result in the Viewer. Pipeline wires the components so an
// application drives the whole session through one object; each step remains
// individually accessible for finer control.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "config/data_selector.h"
#include "config/event_editor.h"
#include "core/translator.h"
#include "dsm/dsm.h"

namespace trips::core {

/// One full TRIPS session.
class Pipeline {
 public:
  explicit Pipeline(TranslatorOptions options = {});

  // ---- step (1): positioning data ----

  /// The Data Selector to configure (sources + rules).
  config::DataSelector& selector() { return selector_; }

  // ---- step (2): indoor space ----

  /// Installs the DSM (built by a SpaceModeler, loaded from JSON, or one of
  /// the sample spaces). Recomputes topology when needed and (re)creates the
  /// Translator.
  Status SetDsm(dsm::Dsm dsm);
  /// Loads the DSM from a JSON file.
  Status LoadDsm(const std::string& path);
  const dsm::Dsm* dsm() const { return dsm_ ? dsm_.get() : nullptr; }

  // ---- step (3): event patterns & training data ----

  /// The Event Editor to configure. The data "will be stored in the backend
  /// for the reuse in other translation tasks" — the editor persists across
  /// Run calls.
  config::EventEditor& event_editor() { return editor_; }

  // ---- step (4): translation ----

  /// Executes selection, optional model training and batch translation.
  /// Fails when no DSM is installed or selection fails.
  Result<std::vector<TranslationResult>> Run();

  /// The Translator (valid after SetDsm/LoadDsm).
  Translator* translator() { return translator_ ? translator_.get() : nullptr; }

  // ---- step (5): browsing / export ----

  /// Writes, for every result, a JSON result file
  /// "<dir>/<device>.result.json". Returns the number of files written.
  Result<size_t> ExportResults(const std::vector<TranslationResult>& results,
                               const std::string& dir) const;

 private:
  TranslatorOptions options_;
  config::DataSelector selector_;
  config::EventEditor editor_;
  std::unique_ptr<dsm::Dsm> dsm_;
  std::unique_ptr<Translator> translator_;
};

}  // namespace trips::core
