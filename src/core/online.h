// Online (streaming) translation: the Data Selector's "streams APIs" input
// taken to its conclusion. Records arrive one at a time from a live
// positioning feed; per-device buffers are translated and emitted once the
// device goes quiet (left the venue / lost coverage) or its buffer grows too
// large. Built on the batch Translator, so online results use whatever
// mobility knowledge and event model the translator currently holds.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/translator.h"

namespace trips::core {

/// Streaming options.
struct OnlineOptions {
  /// A device whose newest record is older than this at Poll time is
  /// considered departed; its buffer is translated and emitted.
  DurationMs flush_after = 10 * kMillisPerMinute;
  /// A device buffer reaching this many records is translated immediately
  /// (bounded memory for devices that never leave).
  size_t max_buffer_records = 20'000;
  /// Buffers smaller than this are dropped, not translated, at flush time
  /// (a couple of stray fixes carry no semantics).
  size_t min_flush_records = 4;
};

/// Incremental front-end over a Translator.
///
///     core::OnlineTranslator online(&translator);
///     for (const auto& [device, record] : feed) {
///       online.Ingest(device, record);
///       for (auto& result : online.Poll(record.timestamp)) Emit(result);
///     }
///     for (auto& result : online.FlushAll()) Emit(result);
class OnlineTranslator {
 public:
  /// `translator` must be initialized and outlive this object.
  explicit OnlineTranslator(const Translator* translator, OnlineOptions options = {});

  /// Buffers one record. Returns the translation of the device's buffer when
  /// ingestion itself forced a flush (buffer cap reached), else no value.
  Result<std::vector<TranslationResult>> Ingest(const std::string& device,
                                                const positioning::RawRecord& record);

  /// Flushes every device idle at `now` and returns their translations.
  Result<std::vector<TranslationResult>> Poll(TimestampMs now);

  /// Flushes everything regardless of idleness (end of stream).
  Result<std::vector<TranslationResult>> FlushAll();

  /// Devices currently buffered.
  size_t PendingDevices() const { return buffers_.size(); }
  /// Total buffered records.
  size_t PendingRecords() const;
  /// Sequences emitted so far (flushed and translated).
  size_t EmittedCount() const { return emitted_; }

 private:
  struct Buffer {
    positioning::PositioningSequence sequence;
    TimestampMs newest = 0;
  };

  // Translates and removes one buffer; appends to `out` unless too small.
  Status FlushDevice(const std::string& device, std::vector<TranslationResult>* out);

  const Translator* translator_;
  OnlineOptions options_;
  std::map<std::string, Buffer> buffers_;
  size_t emitted_ = 0;
};

}  // namespace trips::core
