// DEPRECATED streaming front-end, kept so existing callers compile. New code
// should create stream sessions through core::Service:
//
//     core::Service service(engine);
//     auto stream = service.NewStreamSession();
//
// OnlineTranslator is now a thin adapter over core::StreamSession that keeps
// translating through a caller-owned stateful Translator (so online results
// use whatever mobility knowledge and event model the translator currently
// holds, exactly as before).
#pragma once

#include <string>
#include <vector>

#include "core/session.h"
#include "core/translator.h"

namespace trips::core {

/// Streaming options. (Alias of the StreamSession flush policy.)
using OnlineOptions = StreamOptions;

/// Incremental front-end over a Translator.
///
///     core::OnlineTranslator online(&translator);
///     for (const auto& [device, record] : feed) {
///       online.Ingest(device, record);
///       for (auto& result : online.Poll(record.timestamp)) Emit(result);
///     }
///     for (auto& result : online.FlushAll()) Emit(result);
///
/// Deprecated: prefer Service::NewStreamSession (shared immutable engine,
/// sink-callback delivery, same flush policy).
class [[deprecated(
    "OnlineTranslator is a legacy shim; use core::Service::NewStreamSession "
    "instead")]] OnlineTranslator {
 public:
  /// `translator` must be initialized and outlive this object.
  explicit OnlineTranslator(const Translator* translator, OnlineOptions options = {});

  /// Buffers one record. Returns the translation of the device's buffer when
  /// ingestion itself forced a flush (buffer cap reached), else no value.
  Result<std::vector<TranslationResult>> Ingest(const std::string& device,
                                                const positioning::RawRecord& record);

  /// Flushes every device idle at `now` and returns their translations in
  /// device-id order.
  Result<std::vector<TranslationResult>> Poll(TimestampMs now);

  /// Flushes everything regardless of idleness (end of stream), in device-id
  /// order.
  Result<std::vector<TranslationResult>> FlushAll();

  /// Devices currently buffered.
  size_t PendingDevices() const { return session_.PendingDevices(); }
  /// Total buffered records.
  size_t PendingRecords() const { return session_.PendingRecords(); }
  /// Sequences emitted so far (flushed and translated).
  size_t EmittedCount() const { return session_.EmittedCount(); }

 private:
  StreamSession session_;
};

}  // namespace trips::core
