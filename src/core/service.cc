#include "core/service.h"

#include <algorithm>
#include <thread>

#include "obs/statsz.h"

namespace trips::core {

namespace {

size_t ResolveWorkers(size_t requested) {
  if (requested != ServiceOptions::kAutoWorkerThreads) return requested;
  unsigned hw = std::thread::hardware_concurrency();
  if (hw <= 1) return 0;
  return std::min<size_t>(hw - 1, 8);
}

}  // namespace

Service::Service(std::shared_ptr<const Engine> engine, ServiceOptions options)
    : engine_(std::move(engine)),
      options_(options),
      metrics_(options.metrics != nullptr
                   ? options.metrics
                   : std::make_shared<obs::MetricsRegistry>()),
      pool_(ResolveWorkers(options.worker_threads)) {
  pool_.SetMetrics(util::PoolMetrics{
      metrics_->gauge("pool.queue_depth"),
      metrics_->histogram("pool.task_wait_ns"),
      metrics_->histogram("pool.task_run_ns"),
      metrics_->counter("pool.tasks_run"),
  });
  metrics_->gauge("pool.workers")->Set(static_cast<int64_t>(pool_.worker_count()));
  // Pull-style gauges over state the engine already maintains; the callbacks
  // co-own the engine, so they stay valid as long as the registry lives.
  std::shared_ptr<const Engine> eng = engine_;
  metrics_->SetCallback("routing.cache_hits", [eng] {
    return static_cast<int64_t>(eng->routing_cache_stats().hits);
  });
  metrics_->SetCallback("routing.cache_misses", [eng] {
    return static_cast<int64_t>(eng->routing_cache_stats().misses);
  });
  metrics_->SetCallback("routing.cache_evictions", [eng] {
    return static_cast<int64_t>(eng->routing_cache_stats().evictions);
  });
  metrics_->SetCallback("routing.cache_size", [eng] {
    return static_cast<int64_t>(eng->routing_cache_stats().size);
  });
  metrics_->SetCallback("spatial.partition_probes", [eng] {
    return static_cast<int64_t>(eng->spatial_probe_stats().partition_probes);
  });
  metrics_->SetCallback("spatial.region_probes", [eng] {
    return static_cast<int64_t>(eng->spatial_probe_stats().region_probes);
  });
  metrics_->SetCallback("spatial.snap_probes", [eng] {
    return static_cast<int64_t>(eng->spatial_probe_stats().snap_probes);
  });
  metrics_->SetCallback("spatial.snapped_outside", [eng] {
    return static_cast<int64_t>(eng->spatial_probe_stats().snapped_outside);
  });
}

std::unique_ptr<BatchSession> Service::NewBatchSession() {
  return std::make_unique<BatchSession>(engine_, &pool_, metrics_);
}

std::unique_ptr<StreamSession> Service::NewStreamSession() {
  return NewStreamSession(options_.stream);
}

std::unique_ptr<StreamSession> Service::NewStreamSession(StreamOptions options) {
  return std::make_unique<StreamSession>(engine_, options, &pool_, metrics_);
}

void Service::DumpStatsz(std::ostream& out) const {
  obs::DumpStatsz(*metrics_, out);
}

Result<TranslationResponse> Service::Translate(const TranslationRequest& request) {
  return NewBatchSession()->Submit(request);
}

}  // namespace trips::core
