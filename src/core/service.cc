#include "core/service.h"

#include <algorithm>
#include <thread>

namespace trips::core {

namespace {

size_t ResolveWorkers(size_t requested) {
  if (requested != ServiceOptions::kAutoWorkerThreads) return requested;
  unsigned hw = std::thread::hardware_concurrency();
  if (hw <= 1) return 0;
  return std::min<size_t>(hw - 1, 8);
}

}  // namespace

Service::Service(std::shared_ptr<const Engine> engine, ServiceOptions options)
    : engine_(std::move(engine)),
      options_(options),
      pool_(ResolveWorkers(options.worker_threads)) {}

std::unique_ptr<BatchSession> Service::NewBatchSession() {
  return std::make_unique<BatchSession>(engine_, &pool_);
}

std::unique_ptr<StreamSession> Service::NewStreamSession() {
  return NewStreamSession(options_.stream);
}

std::unique_ptr<StreamSession> Service::NewStreamSession(StreamOptions options) {
  return std::make_unique<StreamSession>(engine_, options, &pool_);
}

Result<TranslationResponse> Service::Translate(const TranslationRequest& request) {
  return NewBatchSession()->Submit(request);
}

}  // namespace trips::core
