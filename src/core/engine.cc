#include "core/engine.h"

#include "dsm/dsm_json.h"

namespace trips::core {

Engine::Builder& Engine::Builder::SetDsm(dsm::Dsm dsm) {
  owned_dsm_ = std::make_unique<dsm::Dsm>(std::move(dsm));
  shared_dsm_.reset();
  borrowed_dsm_ = nullptr;
  dsm_path_.clear();
  return *this;
}

Engine::Builder& Engine::Builder::ShareDsm(std::shared_ptr<const dsm::Dsm> dsm) {
  shared_dsm_ = std::move(dsm);
  owned_dsm_.reset();
  borrowed_dsm_ = nullptr;
  dsm_path_.clear();
  return *this;
}

Engine::Builder& Engine::Builder::BorrowDsm(const dsm::Dsm* dsm) {
  borrowed_dsm_ = dsm;
  owned_dsm_.reset();
  shared_dsm_.reset();
  dsm_path_.clear();
  return *this;
}

Engine::Builder& Engine::Builder::LoadDsmFile(std::string path) {
  dsm_path_ = std::move(path);
  owned_dsm_.reset();
  shared_dsm_.reset();
  borrowed_dsm_ = nullptr;
  return *this;
}

Engine::Builder& Engine::Builder::SetOptions(TranslatorOptions options) {
  options_ = options;
  return *this;
}

Engine::Builder& Engine::Builder::SetTrainingData(
    std::vector<config::LabeledSegment> training_data) {
  training_data_ = std::move(training_data);
  return *this;
}

Result<std::shared_ptr<const Engine>> Engine::Builder::Build() {
  if (!dsm_path_.empty()) {
    TRIPS_ASSIGN_OR_RETURN(dsm::Dsm loaded, dsm::LoadFromFile(dsm_path_));
    owned_dsm_ = std::make_unique<dsm::Dsm>(std::move(loaded));
  }
  if (owned_dsm_ == nullptr && shared_dsm_ == nullptr && borrowed_dsm_ == nullptr) {
    return Status::InvalidArgument("Engine::Builder: no DSM configured");
  }
  if (owned_dsm_ != nullptr && !owned_dsm_->topology_computed()) {
    TRIPS_RETURN_NOT_OK(owned_dsm_->ComputeTopology());
  }

  // Engine() is private; construct via new under a shared_ptr.
  std::shared_ptr<Engine> engine(new Engine());
  if (owned_dsm_ != nullptr) {
    engine->dsm_holder_ = std::shared_ptr<const dsm::Dsm>(owned_dsm_.release());
  } else {
    engine->dsm_holder_ = std::move(shared_dsm_);  // null for raw borrows
  }
  engine->dsm_ = engine->dsm_holder_ ? engine->dsm_holder_.get() : borrowed_dsm_;
  engine->translator_ =
      std::make_unique<Translator>(engine->dsm_, options_);
  TRIPS_RETURN_NOT_OK(engine->translator_->Init());
  if (!training_data_.empty()) {
    Status trained = engine->translator_->TrainEventModel(training_data_);
    if (!trained.ok() && trained.code() != StatusCode::kFailedPrecondition) {
      return trained;
    }
    engine->training_status_ = trained;
  }
  return std::shared_ptr<const Engine>(std::move(engine));
}

}  // namespace trips::core
