#include "core/semantics.h"

#include <algorithm>

namespace trips::core {

std::string MobilitySemantic::ToString() const {
  std::string out = "(";
  out += event;
  out += ", ";
  out += region_name.empty() ? ("region#" + std::to_string(region)) : region_name;
  out += ", ";
  out += FormatClock(range.begin);
  out += "-";
  out += FormatClock(range.end);
  if (inferred) out += ", inferred";
  out += ")";
  return out;
}

TimeRange MobilitySemanticsSequence::Span() const {
  if (semantics.empty()) return {};
  return {semantics.front().range.begin, semantics.back().range.end};
}

const MobilitySemantic* MobilitySemanticsSequence::At(TimestampMs t) const {
  for (const MobilitySemantic& s : semantics) {
    if (s.range.Contains(t)) return &s;
  }
  return nullptr;
}

DurationMs MobilitySemanticsSequence::CoveredDuration() const {
  DurationMs total = 0;
  for (const MobilitySemantic& s : semantics) total += s.range.Duration();
  return total;
}

void MobilitySemanticsSequence::SortByTime() {
  std::stable_sort(semantics.begin(), semantics.end(),
                   [](const MobilitySemantic& a, const MobilitySemantic& b) {
                     return a.range.begin < b.range.begin;
                   });
}

std::string MobilitySemanticsSequence::ToString() const {
  std::string out = device_id + ":\n";
  for (const MobilitySemantic& s : semantics) {
    out += "  " + s.ToString() + "\n";
  }
  return out;
}

SemanticsAgreement CompareSemantics(const MobilitySemanticsSequence& truth,
                                    const MobilitySemanticsSequence& predicted,
                                    DurationMs step) {
  SemanticsAgreement out;
  if (truth.Empty() || step <= 0) return out;
  TimeRange span = truth.Span();
  DurationMs full = 0, region = 0, event = 0, evaluated = 0;
  for (TimestampMs t = span.begin; t <= span.end; t += step) {
    const MobilitySemantic* gt = truth.At(t);
    if (gt == nullptr) continue;
    evaluated += step;
    const MobilitySemantic* pr = predicted.At(t);
    if (pr == nullptr) continue;
    bool region_ok = pr->region == gt->region;
    bool event_ok = pr->event == gt->event;
    if (region_ok) region += step;
    if (event_ok) event += step;
    if (region_ok && event_ok) full += step;
  }
  out.evaluated = evaluated;
  if (evaluated > 0) {
    out.full_match = static_cast<double>(full) / static_cast<double>(evaluated);
    out.region_match = static_cast<double>(region) / static_cast<double>(evaluated);
    out.event_match = static_cast<double>(event) / static_cast<double>(evaluated);
  }
  return out;
}

}  // namespace trips::core
