// Umbrella header: include this to get the whole TRIPS public API.
//
// TRIPS translates raw indoor positioning data into visual mobility
// semantics (Li, Lu, Shi, Chen, Chen, Shou — PVLDB 11(12), 2018).
//
// Component map:
//   Serving       — core::Engine (immutable model: DSM + topology + trained
//                   event identifier + baseline mobility knowledge, built
//                   once via Engine::Builder, shared across threads) and
//                   core::Service (owns an Engine + worker pool, hands out
//                   core::BatchSession / core::StreamSession per client).
//                   cluster::Cluster scales this to many venues in one
//                   process: per-venue shards (engine + stream session +
//                   trip store) behind a single venue-id-routed ingest
//                   front door, sharing one worker pool, with cross-venue
//                   device history and merged city-wide analytics
//   Configurator  — config::DataSelector, config::SpaceModeler,
//                   config::EventEditor
//   Translator    — core::Translator, the three-layer algorithm core
//                   (cleaning::RawDataCleaner, annotation::Annotator,
//                   complement::Complementor). The hot path is columnar:
//                   positioning::RecordBlock (SoA columns + validity bitmap)
//                   flows from the stream buffers through cleaning (reusable
//                   per-worker CleanerScratch, SIMD mask/sweep kernels with a
//                   CleanerOptions::vectorize scalar fallback, batched
//                   snapping via Dsm::SnapIfOutsideBatch, parallel passes on
//                   long sequences) and annotation without AoS
//                   rematerialization; the AoS entry points remain as
//                   byte-identical shims
//   Store         — store::TripStore, the persistent, indexed semantic-
//                   trajectory store between translation and analytics:
//                   append-only binary segments (store/segment_codec.h, v2:
//                   footer-indexed, mmap'd zero-copy with lazy per-segment
//                   materialization and deferred index hydration) laid out
//                   in time-partitioned directories (part-<bucket>/) that
//                   window scans prune wholesale, background compaction of
//                   adjacent small segments on the shared pool behind a
//                   MANIFEST.json checkpoint (crash recovery: torn segments
//                   dropped, strays cleaned, scan fallback), device/region/
//                   time indexes, live ingestion via a StreamSession sink,
//                   queries (DeviceHistory, RegionVisitors, FlowBetween,
//                   time-range scans) and segment-parallel analytics
//   Adapters      — core::Pipeline and core::OnlineTranslator, the legacy
//                   batch/streaming front-ends, now [[deprecated]] shims
//                   over Service
//   Observability — obs::MetricsRegistry, the unified metrics & stage-
//                   tracing subsystem: lock-free thread-sharded counters/
//                   gauges/log-bucketed latency histograms recorded by every
//                   layer above (pool queues, translate stages, stream
//                   ingest-to-result, store append/query, routing & spatial
//                   caches, cluster rollups), exported as one deterministic
//                   /statsz JSON snapshot (obs/statsz.h) via
//                   Service::DumpStatsz / Cluster::DumpStatsz
//   Viewer        — viewer::Timeline, viewer::MapRenderer, viewer::RenderHtml,
//                   plus store-backed views (viewer/store_view.h)
//   Load & SLO    — loadgen::EventList (discrete-event clock + heap of
//                   self-rescheduling sources) driving loadgen::RunScenario:
//                   Poisson/diurnal/heavy-tail session arrivals replayed
//                   open-loop into a Service or Cluster ingest target, exact
//                   ingest-to-result latency quantiles, queue-depth/drop
//                   sampling from the metrics registry, and SLO gating with
//                   JSON reports (loadgen/harness.h, loadgen/scenario.h,
//                   loadgen_slo CLI)
//   Substrates    — dsm::Dsm (+ routing, JSON, sample spaces),
//                   positioning::* (records, CSV, error model),
//                   mobility::MobilityGenerator (ground-truth data).
//                   Indoor routing runs on a contracted (CH-lite)
//                   portal-to-portal shortcut graph with memoized Dijkstra
//                   trees; the flat clique graph stays as the bit-identical
//                   parity reference (dsm/routing.h). Point queries run on
//                   the grid spatial index, including the cell-sorted
//                   SnapIfOutsideBatch the cleaner's vectorized pass 4 uses
//
// Persist + query quickstart:
//
//     auto stored = store::TripStore::Open({.directory = "mall_store"});
//     auto stream = service.NewStreamSession();
//     stream->SetSink(stored.ValueOrDie()->MakeSink());  // live ingestion
//     ... feed records ...; stream->FlushAll();
//     stored.ValueOrDie()->Flush();                      // seal + persist
//     auto visitors = stored.ValueOrDie()->RegionVisitors(region, t0, t1);
#pragma once

#include "annotation/annotator.h"
#include "annotation/event_classifier.h"
#include "cleaning/cleaner.h"
#include "cluster/cluster.h"
#include "complement/complementor.h"
#include "complement/knowledge.h"
#include "config/data_selector.h"
#include "config/event_editor.h"
#include "config/space_modeler.h"
#include "core/analytics.h"
#include "core/engine.h"
#include "core/online.h"
#include "core/pipeline.h"
#include "core/result_io.h"
#include "core/semantics.h"
#include "core/service.h"
#include "core/session.h"
#include "core/translator.h"
#include "dsm/dsm.h"
#include "dsm/dsm_json.h"
#include "dsm/routing.h"
#include "dsm/sample_spaces.h"
#include "dsm/validation.h"
#include "loadgen/event_list.h"
#include "loadgen/harness.h"
#include "loadgen/scenario.h"
#include "mobility/generator.h"
#include "obs/metrics.h"
#include "obs/statsz.h"
#include "positioning/csv_io.h"
#include "positioning/error_model.h"
#include "positioning/record.h"
#include "positioning/record_block.h"
#include "store/segment_codec.h"
#include "store/trip_store.h"
#include "viewer/ascii_renderer.h"
#include "viewer/heatmap.h"
#include "viewer/html_export.h"
#include "viewer/map_renderer.h"
#include "viewer/store_view.h"
#include "viewer/timeline.h"
