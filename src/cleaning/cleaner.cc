#include "cleaning/cleaner.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace trips::cleaning {

using positioning::PositioningSequence;
using positioning::RawRecord;

RawDataCleaner::RawDataCleaner(const dsm::Dsm* dsm, const dsm::RoutePlanner* planner,
                               CleanerOptions options)
    : dsm_(dsm), planner_(planner), options_(options) {}

double RawDataCleaner::MinIndoorDistance(const geo::IndoorPoint& a,
                                         const geo::IndoorPoint& b) const {
  double planar = a.PlanarDistanceTo(b);
  double vertical =
      options_.floor_change_penalty * std::abs(a.floor - b.floor);
  return planar + vertical;
}

bool RawDataCleaner::NearVerticalConnector(const geo::Point2& p) const {
  for (const dsm::Entity& e : dsm_->entities()) {
    if (!dsm::IsVerticalKind(e.kind)) continue;
    if (e.shape.Contains(p) ||
        e.shape.BoundaryDistanceTo(p) <= options_.vertical_connector_slack) {
      return true;
    }
  }
  return false;
}

bool RawDataCleaner::ViolatesSpeed(const geo::IndoorPoint& a, const geo::IndoorPoint& b,
                                   DurationMs dt_ms) const {
  if (dt_ms <= 0) return false;  // co-timestamped records carry no speed signal
  double dist = a.PlanarDistanceTo(b);
  if (a.floor != b.floor) {
    // Floor changes at a staircase/elevator are legitimate transitions and
    // cost only the planar approach; anywhere else they are charged the full
    // per-floor penalty, which makes them violate the speed constraint at
    // common sampling rates (the DSM-captured mobility constraint).
    bool at_connector =
        NearVerticalConnector(a.xy) && NearVerticalConnector(b.xy);
    if (!at_connector) {
      dist += options_.floor_change_penalty * std::abs(a.floor - b.floor);
    }
  }
  double speed = dist / (static_cast<double>(dt_ms) / 1000.0);
  return speed > options_.max_walking_speed;
}

PositioningSequence RawDataCleaner::Clean(const PositioningSequence& raw,
                                          CleaningReport* report) const {
  CleaningReport local;
  CleaningReport* rep = report != nullptr ? report : &local;
  *rep = CleaningReport{};
  rep->total_records = raw.records.size();

  PositioningSequence out;
  out.device_id = raw.device_id;
  out.records = raw.records;
  out.SortByTime();
  if (out.records.size() < 2) return out;

  const size_t n = out.records.size();

  // Pass 1: speed-constraint scan against the last accepted record. A floor
  // change is only accepted as a legitimate transition when it happens at a
  // vertical connector AND the new floor is corroborated by the next few
  // records; otherwise floor value correction adopts the anchor floor when
  // the local consensus supports it, and remaining violators are marked
  // invalid for interpolation.
  //
  // Majority floor of the (up to) three records following i; falls back to
  // record i's own floor when no successors exist.
  auto local_floor_consensus = [&](size_t i) {
    std::map<geo::FloorId, int> votes;
    for (size_t j = i + 1; j < std::min(n, i + 4); ++j) {
      ++votes[out.records[j].location.floor];
    }
    geo::FloorId best = out.records[i].location.floor;
    int best_votes = 0;
    for (const auto& [floor, v] : votes) {
      if (v > best_votes) {
        best_votes = v;
        best = floor;
      }
    }
    return best;
  };
  std::vector<bool> invalid(n, false);
  // Seed the anchor at the first record that is speed-consistent with its
  // successor; everything before it (e.g. a bad first fix) is invalid.
  size_t first_anchor = 0;
  for (size_t s = 0; s + 1 < n && s < 8; ++s) {
    const RawRecord& a = out.records[s];
    const RawRecord& b = out.records[s + 1];
    if (!ViolatesSpeed(a.location, b.location, b.timestamp - a.timestamp)) {
      first_anchor = s;
      break;
    }
    first_anchor = s + 1;
  }
  for (size_t i = 0; i < first_anchor; ++i) {
    invalid[i] = true;
    ++rep->speed_violations;
  }
  size_t last_ok = first_anchor;
  for (size_t i = first_anchor + 1; i < n; ++i) {
    const RawRecord& prev = out.records[last_ok];
    RawRecord& cur = out.records[i];
    DurationMs dt = cur.timestamp - prev.timestamp;
    double planar_speed =
        dt > 0 ? prev.location.PlanarDistanceTo(cur.location) /
                     (static_cast<double>(dt) / 1000.0)
               : 0;
    bool planar_ok = planar_speed <= options_.max_walking_speed;

    if (cur.location.floor == prev.location.floor) {
      if (planar_ok) {
        last_ok = i;
      } else {
        ++rep->speed_violations;
        invalid[i] = true;
      }
      continue;
    }

    // Floor change against the anchor.
    geo::FloorId consensus = local_floor_consensus(i);
    bool at_connector = NearVerticalConnector(prev.location.xy) &&
                        NearVerticalConnector(cur.location.xy);
    if (at_connector && planar_ok && cur.location.floor == consensus) {
      last_ok = i;  // legitimate, corroborated transition
      continue;
    }
    ++rep->speed_violations;
    if (planar_ok && consensus == prev.location.floor) {
      // The anchor and upcoming records agree: this record's floor is wrong.
      cur.location.floor = prev.location.floor;
      ++rep->floor_corrected;
      last_ok = i;
    } else if (planar_ok && cur.location.floor == consensus) {
      // Upcoming records side with this record: the anchor's floor was the
      // odd one out; accept and resume from here.
      last_ok = i;
    } else {
      invalid[i] = true;
    }
  }

  // Pass 2: location interpolation for invalid runs between accepted anchors,
  // along the indoor route between the anchors when available. An anchor
  // record can border two runs (and SnapToWalkable is the priciest query this
  // pass issues), so each record is snapped at most once and the result
  // cached — allocated lazily, only for sequences that hit a gap.
  std::vector<geo::IndoorPoint> snapped;
  std::vector<char> snap_known;
  auto snapped_location = [&](size_t idx) {
    if (snap_known.empty()) {
      snapped.resize(n);
      snap_known.assign(n, 0);
    }
    if (!snap_known[idx]) {
      snapped[idx] = dsm_->SnapToWalkable(out.records[idx].location);
      snap_known[idx] = 1;
    }
    return snapped[idx];
  };
  size_t i = 0;
  while (i < n) {
    if (!invalid[i]) {
      ++i;
      continue;
    }
    size_t run_begin = i;
    size_t run_end = i;
    while (run_end + 1 < n && invalid[run_end + 1]) ++run_end;

    bool has_prev = run_begin > 0;
    bool has_next = run_end + 1 < n;
    if (has_prev && has_next) {
      const RawRecord& a = out.records[run_begin - 1];
      const RawRecord& b = out.records[run_end + 1];
      dsm::Route route;
      bool have_route = false;
      if (options_.interpolate_along_routes && planner_ != nullptr) {
        geo::IndoorPoint src = options_.snap_to_walkable
                                   ? snapped_location(run_begin - 1)
                                   : a.location;
        geo::IndoorPoint dst = options_.snap_to_walkable
                                   ? snapped_location(run_end + 1)
                                   : b.location;
        Result<dsm::Route> r = planner_->FindRoute(src, dst);
        if (r.ok()) {
          route = std::move(r).ValueOrDie();
          have_route = true;
        }
      }
      DurationMs span = b.timestamp - a.timestamp;
      for (size_t k = run_begin; k <= run_end; ++k) {
        RawRecord& rec = out.records[k];
        double t = span > 0 ? static_cast<double>(rec.timestamp - a.timestamp) /
                                  static_cast<double>(span)
                            : 0.5;
        if (have_route) {
          rec.location = route.PointAtDistance(route.distance * t);
        } else {
          rec.location.xy = a.location.xy + (b.location.xy - a.location.xy) * t;
          rec.location.floor = t < 0.5 ? a.location.floor : b.location.floor;
        }
        ++rep->interpolated;
      }
    } else {
      // Leading/trailing run without both anchors: clamp to the one anchor.
      const RawRecord& anchor =
          has_prev ? out.records[run_begin - 1] : out.records[run_end + 1];
      for (size_t k = run_begin; k <= run_end; ++k) {
        out.records[k].location = anchor.location;
        ++rep->interpolated;
      }
    }
    i = run_end + 1;
  }

  // Pass 3: optional planar smoothing (centred moving average per floor run).
  if (options_.smoothing_window > 1) {
    std::vector<geo::Point2> smoothed(n);
    size_t half = options_.smoothing_window / 2;
    for (size_t k = 0; k < n; ++k) {
      size_t lo = k >= half ? k - half : 0;
      size_t hi = std::min(n - 1, k + half);
      geo::Point2 sum;
      int count = 0;
      for (size_t j = lo; j <= hi; ++j) {
        if (out.records[j].location.floor != out.records[k].location.floor) continue;
        sum = sum + out.records[j].location.xy;
        ++count;
      }
      smoothed[k] = count > 0 ? sum / count : out.records[k].location.xy;
      if (count > 1) ++rep->smoothed;
    }
    for (size_t k = 0; k < n; ++k) out.records[k].location.xy = smoothed[k];
  }

  // Pass 4: snap anything left outside walkable space back in.
  if (options_.snap_to_walkable) {
    for (RawRecord& rec : out.records) {
      if (!dsm_->IsWalkable(rec.location)) {
        rec.location = dsm_->SnapToWalkable(rec.location);
        ++rep->snapped;
      }
    }
  }

  return out;
}

}  // namespace trips::cleaning
