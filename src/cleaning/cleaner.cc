#include "cleaning/cleaner.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>
#include <span>
#include <string_view>

namespace trips::cleaning {

using positioning::PositioningSequence;
using positioning::RawRecord;
using positioning::RecordBlock;

namespace {
// Pass-4 records per parallel work item: coarse enough that the fork/join
// bookkeeping stays negligible next to the per-record walkability query.
constexpr size_t kSnapChunk = 1024;

// Majority floor of the (up to) three records following i; falls back to
// record i's own floor when no successors exist. Shared by both scan-pass
// forms so floor correction ties break identically.
geo::FloorId LocalFloorConsensus(const std::vector<geo::FloorId>& floors,
                                 size_t n, size_t i) {
  std::map<geo::FloorId, int> votes;
  for (size_t j = i + 1; j < std::min(n, i + 4); ++j) {
    ++votes[floors[j]];
  }
  geo::FloorId best = floors[i];
  int best_votes = 0;
  for (const auto& [floor, v] : votes) {
    if (v > best_votes) {
      best_votes = v;
      best = floor;
    }
  }
  return best;
}
}  // namespace

RawDataCleaner::RawDataCleaner(const dsm::Dsm* dsm, const dsm::RoutePlanner* planner,
                               CleanerOptions options)
    : dsm_(dsm), planner_(planner), options_(options) {
  // Hoist the vertical-connector footprints once: the speed-constraint scan
  // probes them for every floor-change record, and venues carry thousands of
  // entities but only a handful of staircases/elevators. The padding exceeds
  // the polygon boundary-containment epsilon, so the bbox prefilter can never
  // reject a point the polygon tests would accept.
  for (const dsm::Entity& e : dsm_->entities()) {
    if (!dsm::IsVerticalKind(e.kind)) continue;
    ConnectorShape c;
    c.shape = e.shape;
    c.padded = e.shape.Bounds();
    if (!c.padded.Empty()) {
      double pad = options_.vertical_connector_slack + 1e-6;
      c.padded.min.x -= pad;
      c.padded.min.y -= pad;
      c.padded.max.x += pad;
      c.padded.max.y += pad;
    }
    connectors_.push_back(c);
  }
  // Runtime kill switch for the vectorized kernels (parity triage, scalar
  // baselines) — same idiom as TRIPS_OBS_DISABLED.
  const char* no_vector = std::getenv("TRIPS_CLEAN_NO_VECTOR");
  if (no_vector != nullptr && *no_vector != '\0' &&
      std::string_view(no_vector) != "0") {
    options_.vectorize = false;
  }
}

double RawDataCleaner::MinIndoorDistance(const geo::IndoorPoint& a,
                                         const geo::IndoorPoint& b) const {
  double planar = a.PlanarDistanceTo(b);
  double vertical =
      options_.floor_change_penalty * std::abs(a.floor - b.floor);
  return planar + vertical;
}

bool RawDataCleaner::NearVerticalConnector(const geo::Point2& p) const {
  for (const ConnectorShape& c : connectors_) {
    if (!c.padded.Contains(p)) continue;
    if (c.shape.Contains(p) ||
        c.shape.BoundaryDistanceTo(p) <= options_.vertical_connector_slack) {
      return true;
    }
  }
  return false;
}

bool RawDataCleaner::NearVerticalConnectorReference(const geo::Point2& p) const {
  for (const dsm::Entity& e : dsm_->entities()) {
    if (!dsm::IsVerticalKind(e.kind)) continue;
    if (e.shape.Contains(p) ||
        e.shape.BoundaryDistanceTo(p) <= options_.vertical_connector_slack) {
      return true;
    }
  }
  return false;
}

bool RawDataCleaner::ViolatesSpeed(const geo::IndoorPoint& a, const geo::IndoorPoint& b,
                                   DurationMs dt_ms) const {
  if (dt_ms <= 0) return false;  // co-timestamped records carry no speed signal
  double dist = a.PlanarDistanceTo(b);
  if (a.floor != b.floor) {
    // Floor changes at a staircase/elevator are legitimate transitions and
    // cost only the planar approach; anywhere else they are charged the full
    // per-floor penalty, which makes them violate the speed constraint at
    // common sampling rates (the DSM-captured mobility constraint).
    bool at_connector =
        NearVerticalConnector(a.xy) && NearVerticalConnector(b.xy);
    if (!at_connector) {
      dist += options_.floor_change_penalty * std::abs(a.floor - b.floor);
    }
  }
  double speed = dist / (static_cast<double>(dt_ms) / 1000.0);
  return speed > options_.max_walking_speed;
}

bool RawDataCleaner::ViolatesSpeedReference(const geo::IndoorPoint& a,
                                            const geo::IndoorPoint& b,
                                            DurationMs dt_ms) const {
  if (dt_ms <= 0) return false;
  double dist = a.PlanarDistanceTo(b);
  if (a.floor != b.floor) {
    bool at_connector = NearVerticalConnectorReference(a.xy) &&
                        NearVerticalConnectorReference(b.xy);
    if (!at_connector) {
      dist += options_.floor_change_penalty * std::abs(a.floor - b.floor);
    }
  }
  double speed = dist / (static_cast<double>(dt_ms) / 1000.0);
  return speed > options_.max_walking_speed;
}

void RawDataCleaner::ForItems(util::ThreadPool* pool, size_t record_count,
                              size_t items,
                              const std::function<void(size_t)>& fn) const {
  if (pool != nullptr && pool->worker_count() > 0 && items > 1 &&
      record_count >= options_.parallel_min_records) {
    pool->ParallelFor(items, fn);
    return;
  }
  for (size_t i = 0; i < items; ++i) fn(i);
}

// Pass 1: speed-constraint scan against the last accepted record. A floor
// change is only accepted as a legitimate transition when it happens at a
// vertical connector AND the new floor is corroborated by the next few
// records; otherwise floor value correction adopts the anchor floor when
// the local consensus supports it, and remaining violators lose their
// validity bit for interpolation. The anchor walk is inherently sequential
// (each decision depends on the last accepted anchor), so this pass always
// runs serial — what the vectorized form changes is that the per-pair
// geometry and the connector probes are precomputed as columns the walk then
// consumes.
void RawDataCleaner::ScanPass(RecordBlock* block, CleanerScratch* scratch,
                              CleaningReport* rep) const {
  if (options_.vectorize) {
    ScanPassVector(block, scratch, rep);
  } else {
    ScanPassScalar(block, rep);
  }
}

// The original per-record scan, retained as the vectorize=false baseline.
void RawDataCleaner::ScanPassScalar(RecordBlock* block,
                                    CleaningReport* rep) const {
  const size_t n = block->Size();
  const std::vector<TimestampMs>& ts = block->timestamps;
  std::vector<geo::FloorId>& floors = block->floors;

  auto local_floor_consensus = [&](size_t i) {
    return LocalFloorConsensus(floors, n, i);
  };

  // Seed the anchor at the first record that is speed-consistent with its
  // successor; everything before it (e.g. a bad first fix) is invalid.
  size_t first_anchor = 0;
  for (size_t s = 0; s + 1 < n && s < 8; ++s) {
    if (!ViolatesSpeed(block->Location(s), block->Location(s + 1),
                       ts[s + 1] - ts[s])) {
      first_anchor = s;
      break;
    }
    first_anchor = s + 1;
  }
  for (size_t i = 0; i < first_anchor; ++i) {
    block->SetValid(i, false);
    ++rep->speed_violations;
  }
  size_t last_ok = first_anchor;
  for (size_t i = first_anchor + 1; i < n; ++i) {
    DurationMs dt = ts[i] - ts[last_ok];
    geo::Point2 prev_xy = block->XY(last_ok);
    geo::Point2 cur_xy = block->XY(i);
    double planar_speed =
        dt > 0 ? prev_xy.DistanceTo(cur_xy) / (static_cast<double>(dt) / 1000.0)
               : 0;
    bool planar_ok = planar_speed <= options_.max_walking_speed;

    if (floors[i] == floors[last_ok]) {
      if (planar_ok) {
        last_ok = i;
      } else {
        ++rep->speed_violations;
        block->SetValid(i, false);
      }
      continue;
    }

    // Floor change against the anchor.
    geo::FloorId consensus = local_floor_consensus(i);
    bool at_connector =
        NearVerticalConnector(prev_xy) && NearVerticalConnector(cur_xy);
    if (at_connector && planar_ok && floors[i] == consensus) {
      last_ok = i;  // legitimate, corroborated transition
      continue;
    }
    ++rep->speed_violations;
    if (planar_ok && consensus == floors[last_ok]) {
      // The anchor and upcoming records agree: this record's floor is wrong.
      floors[i] = floors[last_ok];
      ++rep->floor_corrected;
      last_ok = i;
    } else if (planar_ok && floors[i] == consensus) {
      // Upcoming records side with this record: the anchor's floor was the
      // odd one out; accept and resume from here.
      last_ok = i;
    } else {
      block->SetValid(i, false);
    }
  }
}

// Mask-column form of pass 1. The per-pair planar geometry (dx/dy/dt/speed vs
// max_walking_speed) is evaluated branch-free over the contiguous x/y/
// timestamp columns — the loops the CI vectorization report gates on — and
// the connector-footprint probes are hoisted into a pre-pass over the
// floor-change candidates. The anchor walk then consumes the precomputed
// masks: a pair mask answers the (overwhelmingly common) anchor==i-1 case,
// and only a re-check against an older anchor recomputes geometry, with the
// exact scalar expression. Kernel caveats that shaped the code: doubles are
// the only mask element type the baseline x86-64 auto-vectorizer handles for
// double compares (byte stores fall back to scalar), and int64->double has no
// packed conversion, so the dt column is filled by its own scalar sweep.
void RawDataCleaner::ScanPassVector(RecordBlock* block, CleanerScratch* scratch,
                                    CleaningReport* rep) const {
  const size_t n = block->Size();
  const std::vector<TimestampMs>& ts = block->timestamps;
  std::vector<geo::FloorId>& floors = block->floors;
  const size_t pairs = n - 1;  // CleanBlock guarantees n >= 2

  scratch->adj_dt_ms.resize(pairs);
  scratch->adj_speed_ok.resize(pairs);
  scratch->adj_floor_diff.resize(pairs);
  double* dt_ms = scratch->adj_dt_ms.data();
  double* speed_ok = scratch->adj_speed_ok.data();
  uint8_t* floor_diff = scratch->adj_floor_diff.data();
  const double* xs = block->xs.data();
  const double* ys = block->ys.data();
  const TimestampMs* tsd = ts.data();
  const geo::FloorId* fl = floors.data();
  const double max_speed = options_.max_walking_speed;

  for (size_t i = 0; i < pairs; ++i) {
    dt_ms[i] = static_cast<double>(tsd[i + 1] - tsd[i]);
  }
  // Co-timestamped pairs compare a zero speed against the limit in the
  // scalar pass (not an unconditional accept) — that compare is loop-
  // invariant, so it hoists and the kernel below is selects over computed
  // doubles, which is what the if-converter handles.
  const double zero_ok = 0.0 <= max_speed ? 1.0 : 0.0;
  // VEC-KERNEL speed-mask (gated by tools/check_vectorization.sh)
  for (size_t i = 0; i < pairs; ++i) {
    double dx = xs[i] - xs[i + 1];
    double dy = ys[i] - ys[i + 1];
    double speed = std::sqrt(dx * dx + dy * dy) / (dt_ms[i] / 1000.0);
    double pos_ok = speed <= max_speed ? 1.0 : 0.0;
    speed_ok[i] = dt_ms[i] <= 0.0 ? zero_ok : pos_ok;
  }
  // VEC-KERNEL floor-mask (gated by tools/check_vectorization.sh)
  for (size_t i = 0; i < pairs; ++i) {
    floor_diff[i] = fl[i] != fl[i + 1];
  }

  // Connector pre-pass: probe the endpoints of every floor-change pair once.
  // NearVerticalConnector depends only on xy, which pass 1 never mutates, so
  // the memo stays valid while the anchor walk corrects floors[].
  scratch->connector_near.assign(n, 0);
  uint8_t* conn = scratch->connector_near.data();
  for (size_t i = 0; i < pairs; ++i) {
    if (!floor_diff[i]) continue;
    if (conn[i] == 0) {
      conn[i] = NearVerticalConnector({xs[i], ys[i]}) ? 2 : 1;
    }
    if (conn[i + 1] == 0) {
      conn[i + 1] = NearVerticalConnector({xs[i + 1], ys[i + 1]}) ? 2 : 1;
    }
  }
  // Lazy fill for anchors the pre-pass missed (a floor change checked against
  // an anchor farther back than i-1).
  auto near_connector = [&](size_t i) {
    if (conn[i] == 0) conn[i] = NearVerticalConnector(block->XY(i)) ? 2 : 1;
    return conn[i] == 2;
  };
  // Planar speed constraint of record i against an arbitrary anchor: the
  // precomputed mask answers the adjacent case; the general case recomputes
  // the scalar expression verbatim.
  auto planar_ok_from = [&](size_t anchor, size_t i) {
    if (anchor + 1 == i) return speed_ok[anchor] != 0.0;
    DurationMs dt = ts[i] - ts[anchor];
    double planar_speed = dt > 0 ? block->XY(anchor).DistanceTo(block->XY(i)) /
                                       (static_cast<double>(dt) / 1000.0)
                                 : 0;
    return planar_speed <= max_speed;
  };

  // Anchor seeding, as in the scalar pass (ViolatesSpeed already runs the
  // hoisted connector list; at most 8 records are involved).
  size_t first_anchor = 0;
  for (size_t s = 0; s + 1 < n && s < 8; ++s) {
    if (!ViolatesSpeed(block->Location(s), block->Location(s + 1),
                       ts[s + 1] - ts[s])) {
      first_anchor = s;
      break;
    }
    first_anchor = s + 1;
  }
  for (size_t i = 0; i < first_anchor; ++i) {
    block->SetValid(i, false);
    ++rep->speed_violations;
  }
  size_t last_ok = first_anchor;
  for (size_t i = first_anchor + 1; i < n; ++i) {
    bool planar_ok = planar_ok_from(last_ok, i);

    if (floors[i] == floors[last_ok]) {
      if (planar_ok) {
        last_ok = i;
      } else {
        ++rep->speed_violations;
        block->SetValid(i, false);
      }
      continue;
    }

    // Floor change against the anchor.
    geo::FloorId consensus = LocalFloorConsensus(floors, n, i);
    bool at_connector = near_connector(last_ok) && near_connector(i);
    if (at_connector && planar_ok && floors[i] == consensus) {
      last_ok = i;  // legitimate, corroborated transition
      continue;
    }
    ++rep->speed_violations;
    if (planar_ok && consensus == floors[last_ok]) {
      // The anchor and upcoming records agree: this record's floor is wrong.
      floors[i] = floors[last_ok];
      ++rep->floor_corrected;
      last_ok = i;
    } else if (planar_ok && floors[i] == consensus) {
      // Upcoming records side with this record: the anchor's floor was the
      // odd one out; accept and resume from here.
      last_ok = i;
    } else {
      block->SetValid(i, false);
    }
  }
}

// Pass 2: location interpolation for invalid runs between accepted anchors,
// along the indoor route between the anchors when available. The runs are
// disjoint and only read their (valid, untouched) boundary anchors, so they
// interpolate in parallel; the anchor snaps they share are precomputed into
// the scratch so no two runs ever write the same cache slot.
void RawDataCleaner::InterpolatePass(RecordBlock* block, CleanerScratch* scratch,
                                     CleaningReport* rep,
                                     util::ThreadPool* pool) const {
  const size_t n = block->Size();
  scratch->runs.clear();
  size_t i = 0;
  while (i < n) {
    if (block->IsValid(i)) {
      ++i;
      continue;
    }
    size_t run_begin = i;
    size_t run_end = i;
    while (run_end + 1 < n && !block->IsValid(run_end + 1)) ++run_end;
    scratch->runs.emplace_back(static_cast<uint32_t>(run_begin),
                               static_cast<uint32_t>(run_end));
    rep->interpolated += run_end - run_begin + 1;
    i = run_end + 1;
  }
  if (scratch->runs.empty()) return;

  // Anchor snaps, hoisted: an anchor record can border two runs (and
  // SnapToWalkable is the priciest query this pass issues), so each anchor is
  // snapped exactly once, in parallel over the deduplicated anchor list.
  const bool use_routes = options_.interpolate_along_routes && planner_ != nullptr;
  scratch->anchors.clear();
  if (use_routes && options_.snap_to_walkable) {
    for (const auto& [rb, re] : scratch->runs) {
      if (rb > 0 && re + 1 < n) {
        scratch->anchors.push_back(rb - 1);
        scratch->anchors.push_back(re + 1);
      }
    }
    std::sort(scratch->anchors.begin(), scratch->anchors.end());
    scratch->anchors.erase(
        std::unique(scratch->anchors.begin(), scratch->anchors.end()),
        scratch->anchors.end());
    scratch->anchor_snaps.resize(scratch->anchors.size());
    ForItems(pool, n, scratch->anchors.size(), [&](size_t a) {
      scratch->anchor_snaps[a] =
          dsm_->SnapToWalkable(block->Location(scratch->anchors[a]));
    });
  }
  auto snapped_anchor = [&](uint32_t idx) {
    size_t pos = static_cast<size_t>(
        std::lower_bound(scratch->anchors.begin(), scratch->anchors.end(), idx) -
        scratch->anchors.begin());
    return scratch->anchor_snaps[pos];
  };

  const std::vector<TimestampMs>& ts = block->timestamps;
  ForItems(pool, n, scratch->runs.size(), [&](size_t r) {
    const auto [run_begin, run_end] = scratch->runs[r];
    bool has_prev = run_begin > 0;
    bool has_next = run_end + 1 < n;
    if (has_prev && has_next) {
      const uint32_t a = run_begin - 1;
      const uint32_t b = run_end + 1;
      dsm::Route route;
      bool have_route = false;
      if (use_routes) {
        geo::IndoorPoint src = options_.snap_to_walkable ? snapped_anchor(a)
                                                         : block->Location(a);
        geo::IndoorPoint dst = options_.snap_to_walkable ? snapped_anchor(b)
                                                         : block->Location(b);
        Result<dsm::Route> found = planner_->FindRoute(src, dst);
        if (found.ok()) {
          route = std::move(found).ValueOrDie();
          have_route = true;
        }
      }
      DurationMs span = ts[b] - ts[a];
      geo::Point2 a_xy = block->XY(a);
      geo::Point2 b_xy = block->XY(b);
      for (uint32_t k = run_begin; k <= run_end; ++k) {
        double t = span > 0 ? static_cast<double>(ts[k] - ts[a]) /
                                  static_cast<double>(span)
                            : 0.5;
        if (have_route) {
          block->SetLocation(k, route.PointAtDistance(route.distance * t));
        } else {
          geo::Point2 xy = a_xy + (b_xy - a_xy) * t;
          block->xs[k] = xy.x;
          block->ys[k] = xy.y;
          block->floors[k] = t < 0.5 ? block->floors[a] : block->floors[b];
        }
      }
    } else {
      // Leading/trailing run without both anchors: clamp to the one anchor.
      geo::IndoorPoint anchor = has_prev ? block->Location(run_begin - 1)
                                         : block->Location(run_end + 1);
      for (uint32_t k = run_begin; k <= run_end; ++k) {
        block->SetLocation(k, anchor);
      }
    }
  });
}

// Pass 3: optional planar smoothing (centred moving average per floor run).
// Columnar and serial. The vectorized form finds the maximal same-floor runs
// and, for every record whose whole window fits inside its run (count is then
// exactly the window width — no floor filtering, no edge clipping), computes
// the averages as `window` shifted-column accumulation sweeps plus one divide
// sweep. Each sweep adds the same values in the same ascending-j per-element
// order as the scalar window loop, starting from the same 0.0 accumulator, so
// the result is byte-identical — unlike a prefix-sum formulation, whose
// subtraction re-associates the adds and drifts in the last ulp. Run
// boundaries (clipped or floor-mixed windows) fall back to the scalar
// per-record window.
void RawDataCleaner::SmoothPass(RecordBlock* block, CleanerScratch* scratch,
                                CleaningReport* rep) const {
  if (options_.smoothing_window <= 1) return;
  const size_t n = block->Size();
  scratch->smooth_x.resize(n);
  scratch->smooth_y.resize(n);
  size_t half = options_.smoothing_window / 2;

  auto smooth_one = [&](size_t k) {
    size_t lo = k >= half ? k - half : 0;
    size_t hi = std::min(n - 1, k + half);
    geo::Point2 sum;
    int count = 0;
    for (size_t j = lo; j <= hi; ++j) {
      if (block->floors[j] != block->floors[k]) continue;
      sum = sum + block->XY(j);
      ++count;
    }
    geo::Point2 smoothed = count > 0 ? sum / count : block->XY(k);
    scratch->smooth_x[k] = smoothed.x;
    scratch->smooth_y[k] = smoothed.y;
    if (count > 1) ++rep->smoothed;
  };

  if (!options_.vectorize) {
    for (size_t k = 0; k < n; ++k) smooth_one(k);
  } else {
    const geo::FloorId* fl = block->floors.data();
    const double* xs = block->xs.data();
    const double* ys = block->ys.data();
    double* sx = scratch->smooth_x.data();
    double* sy = scratch->smooth_y.data();
    const size_t w = 2 * half + 1;
    const double divisor = static_cast<double>(static_cast<int>(w));

    size_t run_begin = 0;
    while (run_begin < n) {
      size_t run_end = run_begin;
      while (run_end + 1 < n && fl[run_end + 1] == fl[run_begin]) ++run_end;
      size_t run_len = run_end - run_begin + 1;
      if (run_len >= w) {
        size_t lo = run_begin + half;  // first fully-interior window centre
        size_t hi = run_end - half;    // last one
        for (size_t k = run_begin; k < lo; ++k) smooth_one(k);
        size_t m = hi - lo + 1;
        for (size_t t = 0; t < m; ++t) {
          sx[lo + t] = 0.0;
          sy[lo + t] = 0.0;
        }
        for (size_t off = 0; off < w; ++off) {
          const double* px = xs + (lo - half + off);
          const double* py = ys + (lo - half + off);
          double* ax = sx + lo;
          double* ay = sy + lo;
          // VEC-KERNEL smooth-sweep (gated by tools/check_vectorization.sh)
          for (size_t t = 0; t < m; ++t) ax[t] += px[t];
          for (size_t t = 0; t < m; ++t) ay[t] += py[t];
        }
        for (size_t t = 0; t < m; ++t) {
          sx[lo + t] /= divisor;
          sy[lo + t] /= divisor;
        }
        rep->smoothed += m;  // interior windows always average w > 1 records
        for (size_t k = hi + 1; k <= run_end; ++k) smooth_one(k);
      } else {
        for (size_t k = run_begin; k <= run_end; ++k) smooth_one(k);
      }
      run_begin = run_end + 1;
    }
  }
  std::copy(scratch->smooth_x.begin(), scratch->smooth_x.end(), block->xs.begin());
  std::copy(scratch->smooth_y.begin(), scratch->smooth_y.end(), block->ys.begin());
}

// Pass 4: snap anything left outside walkable space back in. Per-record
// independent, so the records fan out in fixed chunks. The vectorized form
// gathers each chunk's locations into contiguous staging and issues one
// Dsm::SnapIfOutsideBatch per chunk — the batch mask-tests walkability over
// the whole chunk and cell-sorts the outside points so the ring searches walk
// the edge buckets cache-coherently; per-point results are identical to the
// per-record SnapIfOutside loop the scalar form runs.
void RawDataCleaner::SnapPass(RecordBlock* block, CleanerScratch* scratch,
                              CleaningReport* rep, util::ThreadPool* pool) const {
  if (!options_.snap_to_walkable) return;
  const size_t n = block->Size();
  scratch->snap_flags.assign(n, 0);
  size_t chunks = (n + kSnapChunk - 1) / kSnapChunk;
  if (options_.vectorize) {
    scratch->snap_points.resize(n);
    scratch->snap_results.resize(n);
    geo::IndoorPoint* pts = scratch->snap_points.data();
    geo::IndoorPoint* res = scratch->snap_results.data();
    uint8_t* flags = scratch->snap_flags.data();
    ForItems(pool, n, chunks, [&](size_t c) {
      size_t begin = c * kSnapChunk;
      size_t end = std::min(n, begin + kSnapChunk);
      size_t len = end - begin;
      block->GatherLocations(begin, end, pts + begin);
      dsm_->SnapIfOutsideBatch({pts + begin, len}, {res + begin, len},
                               {flags + begin, len});
      for (size_t k = begin; k < end; ++k) {
        if (flags[k]) block->SetLocation(k, res[k]);
      }
    });
  } else {
    ForItems(pool, n, chunks, [&](size_t c) {
      size_t begin = c * kSnapChunk;
      size_t end = std::min(n, begin + kSnapChunk);
      for (size_t k = begin; k < end; ++k) {
        bool snapped = false;
        geo::IndoorPoint q = dsm_->SnapIfOutside(block->Location(k), &snapped);
        if (snapped) {
          block->SetLocation(k, q);
          scratch->snap_flags[k] = 1;
        }
      }
    });
  }
  for (size_t k = 0; k < n; ++k) rep->snapped += scratch->snap_flags[k];
}

void RawDataCleaner::CleanBlock(RecordBlock* block, CleanerScratch* scratch,
                                CleaningReport* report, util::ThreadPool* pool,
                                const CleaningStageMetrics* stages) const {
  CleaningReport local;
  CleaningReport* rep = report != nullptr ? report : &local;
  *rep = CleaningReport{};
  rep->total_records = block->Size();

  block->SortByTime();
  block->MarkAllValid();
  if (block->Size() < 2) return;

  static thread_local CleanerScratch tls_scratch;
  CleanerScratch* s = scratch != nullptr ? scratch : &tls_scratch;

  {
    obs::StageTimer timer(stages != nullptr ? stages->scan_ns : nullptr);
    ScanPass(block, s, rep);
  }
  {
    obs::StageTimer timer(stages != nullptr ? stages->interpolate_ns : nullptr);
    InterpolatePass(block, s, rep, pool);
  }
  {
    obs::StageTimer timer(stages != nullptr ? stages->smooth_ns : nullptr);
    SmoothPass(block, s, rep);
  }
  {
    obs::StageTimer timer(stages != nullptr ? stages->snap_ns : nullptr);
    SnapPass(block, s, rep, pool);
  }
}

PositioningSequence RawDataCleaner::Clean(const PositioningSequence& raw,
                                          CleaningReport* report,
                                          util::ThreadPool* pool) const {
  static thread_local RecordBlock block;
  block.AssignFrom(raw);
  CleanBlock(&block, nullptr, report, pool);
  return block.ToSequence();
}

PositioningSequence RawDataCleaner::CleanReference(const PositioningSequence& raw,
                                                   CleaningReport* report) const {
  CleaningReport local;
  CleaningReport* rep = report != nullptr ? report : &local;
  *rep = CleaningReport{};
  rep->total_records = raw.records.size();

  PositioningSequence out;
  out.device_id = raw.device_id;
  out.records = raw.records;
  out.SortByTime();
  if (out.records.size() < 2) return out;

  const size_t n = out.records.size();

  // Pass 1 (reference): anchor scan, as in ScanPass but over AoS records.
  auto local_floor_consensus = [&](size_t i) {
    std::map<geo::FloorId, int> votes;
    for (size_t j = i + 1; j < std::min(n, i + 4); ++j) {
      ++votes[out.records[j].location.floor];
    }
    geo::FloorId best = out.records[i].location.floor;
    int best_votes = 0;
    for (const auto& [floor, v] : votes) {
      if (v > best_votes) {
        best_votes = v;
        best = floor;
      }
    }
    return best;
  };
  std::vector<bool> invalid(n, false);
  size_t first_anchor = 0;
  for (size_t s = 0; s + 1 < n && s < 8; ++s) {
    const RawRecord& a = out.records[s];
    const RawRecord& b = out.records[s + 1];
    if (!ViolatesSpeedReference(a.location, b.location, b.timestamp - a.timestamp)) {
      first_anchor = s;
      break;
    }
    first_anchor = s + 1;
  }
  for (size_t i = 0; i < first_anchor; ++i) {
    invalid[i] = true;
    ++rep->speed_violations;
  }
  size_t last_ok = first_anchor;
  for (size_t i = first_anchor + 1; i < n; ++i) {
    const RawRecord& prev = out.records[last_ok];
    RawRecord& cur = out.records[i];
    DurationMs dt = cur.timestamp - prev.timestamp;
    double planar_speed =
        dt > 0 ? prev.location.PlanarDistanceTo(cur.location) /
                     (static_cast<double>(dt) / 1000.0)
               : 0;
    bool planar_ok = planar_speed <= options_.max_walking_speed;

    if (cur.location.floor == prev.location.floor) {
      if (planar_ok) {
        last_ok = i;
      } else {
        ++rep->speed_violations;
        invalid[i] = true;
      }
      continue;
    }

    geo::FloorId consensus = local_floor_consensus(i);
    bool at_connector = NearVerticalConnectorReference(prev.location.xy) &&
                        NearVerticalConnectorReference(cur.location.xy);
    if (at_connector && planar_ok && cur.location.floor == consensus) {
      last_ok = i;
      continue;
    }
    ++rep->speed_violations;
    if (planar_ok && consensus == prev.location.floor) {
      cur.location.floor = prev.location.floor;
      ++rep->floor_corrected;
      last_ok = i;
    } else if (planar_ok && cur.location.floor == consensus) {
      last_ok = i;
    } else {
      invalid[i] = true;
    }
  }

  // Pass 2 (reference): interpolation with the lazy per-record snap cache.
  std::vector<geo::IndoorPoint> snapped;
  std::vector<char> snap_known;
  auto snapped_location = [&](size_t idx) {
    if (snap_known.empty()) {
      snapped.resize(n);
      snap_known.assign(n, 0);
    }
    if (!snap_known[idx]) {
      snapped[idx] = dsm_->SnapToWalkable(out.records[idx].location);
      snap_known[idx] = 1;
    }
    return snapped[idx];
  };
  size_t i = 0;
  while (i < n) {
    if (!invalid[i]) {
      ++i;
      continue;
    }
    size_t run_begin = i;
    size_t run_end = i;
    while (run_end + 1 < n && invalid[run_end + 1]) ++run_end;

    bool has_prev = run_begin > 0;
    bool has_next = run_end + 1 < n;
    if (has_prev && has_next) {
      const RawRecord& a = out.records[run_begin - 1];
      const RawRecord& b = out.records[run_end + 1];
      dsm::Route route;
      bool have_route = false;
      if (options_.interpolate_along_routes && planner_ != nullptr) {
        geo::IndoorPoint src = options_.snap_to_walkable
                                   ? snapped_location(run_begin - 1)
                                   : a.location;
        geo::IndoorPoint dst = options_.snap_to_walkable
                                   ? snapped_location(run_end + 1)
                                   : b.location;
        Result<dsm::Route> r = planner_->FindRoute(src, dst);
        if (r.ok()) {
          route = std::move(r).ValueOrDie();
          have_route = true;
        }
      }
      DurationMs span = b.timestamp - a.timestamp;
      for (size_t k = run_begin; k <= run_end; ++k) {
        RawRecord& rec = out.records[k];
        double t = span > 0 ? static_cast<double>(rec.timestamp - a.timestamp) /
                                  static_cast<double>(span)
                            : 0.5;
        if (have_route) {
          rec.location = route.PointAtDistance(route.distance * t);
        } else {
          rec.location.xy = a.location.xy + (b.location.xy - a.location.xy) * t;
          rec.location.floor = t < 0.5 ? a.location.floor : b.location.floor;
        }
        ++rep->interpolated;
      }
    } else {
      const RawRecord& anchor =
          has_prev ? out.records[run_begin - 1] : out.records[run_end + 1];
      for (size_t k = run_begin; k <= run_end; ++k) {
        out.records[k].location = anchor.location;
        ++rep->interpolated;
      }
    }
    i = run_end + 1;
  }

  // Pass 3 (reference): planar smoothing.
  if (options_.smoothing_window > 1) {
    std::vector<geo::Point2> smoothed(n);
    size_t half = options_.smoothing_window / 2;
    for (size_t k = 0; k < n; ++k) {
      size_t lo = k >= half ? k - half : 0;
      size_t hi = std::min(n - 1, k + half);
      geo::Point2 sum;
      int count = 0;
      for (size_t j = lo; j <= hi; ++j) {
        if (out.records[j].location.floor != out.records[k].location.floor) continue;
        sum = sum + out.records[j].location.xy;
        ++count;
      }
      smoothed[k] = count > 0 ? sum / count : out.records[k].location.xy;
      if (count > 1) ++rep->smoothed;
    }
    for (size_t k = 0; k < n; ++k) out.records[k].location.xy = smoothed[k];
  }

  // Pass 4 (reference): the two-call walkability + snap sequence.
  if (options_.snap_to_walkable) {
    for (RawRecord& rec : out.records) {
      if (!dsm_->IsWalkable(rec.location)) {
        rec.location = dsm_->SnapToWalkable(rec.location);
        ++rep->snapped;
      }
    }
  }

  return out;
}

}  // namespace trips::cleaning
