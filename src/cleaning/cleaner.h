// Raw Data Cleaner — the Cleaning layer of the three-layer translation
// framework (§3): "the invalid positioning records are identified by checking
// the speeds between consecutive positioning records based on the minimum
// indoor walking distance [13]. An invalid positioning record is repaired in
// two steps. A floor value correction fixes an error in that record's floor
// value. If the speed constraint violation still occurs after the correction,
// a location interpolation is performed by deriving the possible locations at
// the time of that record based on the indoor geometrical and topological
// information captured by the DSM."
#pragma once

#include <cstddef>
#include <vector>

#include "dsm/dsm.h"
#include "dsm/routing.h"
#include "positioning/record.h"
#include "util/result.h"

namespace trips::cleaning {

/// Tuning knobs of the cleaner.
struct CleanerOptions {
  /// Maximum plausible indoor walking speed (m/s). Consecutive records whose
  /// implied speed exceeds this violate the speed constraint.
  double max_walking_speed = 3.0;
  /// Metres charged per floor difference when computing the minimum indoor
  /// walking distance between records on different floors.
  double floor_change_penalty = 15.0;
  /// Floor changes within this distance of a staircase/elevator footprint are
  /// legitimate transitions: the floor penalty is waived there. Changes away
  /// from every vertical connector are physically impossible and flag the
  /// record as invalid (the DSM-captured indoor mobility constraint).
  double vertical_connector_slack = 4.0;
  /// Use the DSM route distance between repair anchors so interpolated
  /// locations follow walkable paths; falls back to straight lines when no
  /// route exists.
  bool interpolate_along_routes = true;
  /// Snap repaired/cleaned locations that fall outside every walkable
  /// partition back onto the nearest walkable boundary.
  bool snap_to_walkable = true;
  /// Optional planar smoothing: centred moving average over this many
  /// records (0 or 1 disables). Reduces isotropic positioning noise without
  /// displacing dwell clusters.
  size_t smoothing_window = 0;
};

/// Counters describing what the cleaner did to one sequence.
struct CleaningReport {
  size_t total_records = 0;
  size_t speed_violations = 0;   ///< records that violated the speed constraint
  size_t floor_corrected = 0;    ///< repaired by floor value correction alone
  size_t interpolated = 0;       ///< repaired by DSM-guided location interpolation
  size_t snapped = 0;            ///< nudged back into walkable space
  size_t smoothed = 0;           ///< records touched by the smoothing filter
};

/// Cleans raw positioning sequences against a DSM.
class RawDataCleaner {
 public:
  /// `dsm` must have topology computed; `planner` may be null when
  /// interpolate_along_routes is false. Both must outlive the cleaner.
  RawDataCleaner(const dsm::Dsm* dsm, const dsm::RoutePlanner* planner,
                 CleanerOptions options = {});

  /// Returns the cleaned copy of `raw` (same record count and timestamps;
  /// locations repaired). `report` may be null.
  positioning::PositioningSequence Clean(const positioning::PositioningSequence& raw,
                                         CleaningReport* report = nullptr) const;

  /// The minimum indoor walking distance between two located records,
  /// including the floor-change penalty — the quantity the speed constraint
  /// checks.
  double MinIndoorDistance(const geo::IndoorPoint& a, const geo::IndoorPoint& b) const;

  const CleanerOptions& options() const { return options_; }

 private:
  // True iff moving a->b within `dt_ms` violates the speed constraint.
  bool ViolatesSpeed(const geo::IndoorPoint& a, const geo::IndoorPoint& b,
                     DurationMs dt_ms) const;
  // True iff the planar point sits on/near a vertical connector footprint.
  bool NearVerticalConnector(const geo::Point2& p) const;

  const dsm::Dsm* dsm_;
  const dsm::RoutePlanner* planner_;
  CleanerOptions options_;
};

}  // namespace trips::cleaning
