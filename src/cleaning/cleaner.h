// Raw Data Cleaner — the Cleaning layer of the three-layer translation
// framework (§3): "the invalid positioning records are identified by checking
// the speeds between consecutive positioning records based on the minimum
// indoor walking distance [13]. An invalid positioning record is repaired in
// two steps. A floor value correction fixes an error in that record's floor
// value. If the speed constraint violation still occurs after the correction,
// a location interpolation is performed by deriving the possible locations at
// the time of that record based on the indoor geometrical and topological
// information captured by the DSM."
//
// The cleaner runs columnar: CleanBlock repairs a positioning::RecordBlock in
// place with four passes over its columns — (1) sequential speed-constraint
// anchor scan, (2) DSM-guided interpolation of the invalid runs, (3) optional
// planar smoothing, (4) snap-back into walkable space. Passes 2 and 4 operate
// on disjoint records, so for long sequences they fan out over an optional
// util::ThreadPool with bit-identical, worker-count-independent results. With
// CleanerOptions::vectorize (the default) passes 1, 3 and 4 run through
// SIMD-friendly kernels — branch-free mask columns, per-run window sweeps and
// the cell-sorted batched snap — that evaluate the same arithmetic in the
// same per-element order as the scalar loops, so their output stays
// byte-identical (tests/cleaning_vector_test.cc enforces this; ci.yml checks
// the kernels actually vectorize). The AoS Clean(PositioningSequence) entry
// point is a shim that delegates through a per-thread block; CleanReference
// retains the original AoS implementation for parity tests and before/after
// benchmarks.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "dsm/dsm.h"
#include "dsm/routing.h"
#include "obs/metrics.h"
#include "positioning/record.h"
#include "positioning/record_block.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace trips::cleaning {

/// Tuning knobs of the cleaner.
struct CleanerOptions {
  /// Maximum plausible indoor walking speed (m/s). Consecutive records whose
  /// implied speed exceeds this violate the speed constraint.
  double max_walking_speed = 3.0;
  /// Metres charged per floor difference when computing the minimum indoor
  /// walking distance between records on different floors.
  double floor_change_penalty = 15.0;
  /// Floor changes within this distance of a staircase/elevator footprint are
  /// legitimate transitions: the floor penalty is waived there. Changes away
  /// from every vertical connector are physically impossible and flag the
  /// record as invalid (the DSM-captured indoor mobility constraint).
  double vertical_connector_slack = 4.0;
  /// Use the DSM route distance between repair anchors so interpolated
  /// locations follow walkable paths; falls back to straight lines when no
  /// route exists.
  bool interpolate_along_routes = true;
  /// Snap repaired/cleaned locations that fall outside every walkable
  /// partition back onto the nearest walkable boundary.
  bool snap_to_walkable = true;
  /// Optional planar smoothing: centred moving average over this many
  /// records (0 or 1 disables). Reduces isotropic positioning noise without
  /// displacing dwell clusters.
  size_t smoothing_window = 0;
  /// Sequences with at least this many records run cleaning passes 2
  /// (interpolation) and 4 (snapping) in parallel when a thread pool is
  /// passed to Clean/CleanBlock; shorter sequences always clean serially.
  size_t parallel_min_records = 4096;
  /// Run the passes through the vectorized kernels: pass 1's branch-free
  /// speed/floor mask columns with the connector probes hoisted into a
  /// pre-pass, pass 3's per-floor-run shifted-column window sweeps, and pass
  /// 4's cell-sorted Dsm::SnapIfOutsideBatch. Byte-identical to the scalar
  /// per-record path (the kernels evaluate the same arithmetic in the same
  /// per-element order) — the toggle exists for the parity suites and the
  /// before/after benchmarks. The TRIPS_CLEAN_NO_VECTOR environment variable
  /// (any value except "" / "0") forces it off at cleaner construction.
  bool vectorize = true;
};

/// Per-pass observability of CleanBlock (clean.scan_ns / clean.interpolate_ns
/// / clean.smooth_ns / clean.snap_ns in the /statsz export). Every pointer may
/// be null — that pass is simply not recorded — mirroring
/// core::TranslationStageMetrics, which embeds one of these resolved from the
/// service registry. Recording never changes cleaning output.
struct CleaningStageMetrics {
  obs::Histogram* scan_ns = nullptr;
  obs::Histogram* interpolate_ns = nullptr;
  obs::Histogram* smooth_ns = nullptr;
  obs::Histogram* snap_ns = nullptr;
};

/// Counters describing what the cleaner did to one sequence.
struct CleaningReport {
  size_t total_records = 0;
  size_t speed_violations = 0;   ///< records that violated the speed constraint
  size_t floor_corrected = 0;    ///< repaired by floor value correction alone
  size_t interpolated = 0;       ///< repaired by DSM-guided location interpolation
  size_t snapped = 0;            ///< nudged back into walkable space
  size_t smoothed = 0;           ///< records touched by the smoothing filter
};

/// Reusable per-worker scratch arena of the cleaning passes. All buffers are
/// reserve-once: a worker that keeps one scratch across sequences reaches a
/// steady state where CleanBlock allocates nothing. Pass nullptr to
/// CleanBlock to use an internal per-thread arena (the common case).
struct CleanerScratch {
  /// Invalid runs found by pass 1, inclusive [begin, end] index pairs.
  std::vector<std::pair<uint32_t, uint32_t>> runs;
  /// Anchor record indices pass 2 snaps before routing, ascending unique.
  std::vector<uint32_t> anchors;
  /// Snapped anchor locations, parallel to `anchors`.
  std::vector<geo::IndoorPoint> anchor_snaps;
  /// Pass-4 per-record snapped flags (reduced into the report serially).
  std::vector<uint8_t> snap_flags;
  /// Pass-3 smoothing output columns.
  std::vector<double> smooth_x;
  std::vector<double> smooth_y;
  // ---- vectorized-kernel columns (options.vectorize; one slot per adjacent
  // record pair unless noted) ----
  /// Pair timestamp deltas, milliseconds as doubles.
  std::vector<double> adj_dt_ms;
  /// 1.0 where pair (i, i+1) satisfies the planar speed constraint, else 0.0
  /// (a double column because double-compare -> double-select is what the
  /// baseline x86-64 auto-vectorizer handles; byte masks fall back to scalar).
  std::vector<double> adj_speed_ok;
  /// 1 where the pair changes floor — pass 1's connector pre-pass candidates.
  std::vector<uint8_t> adj_floor_diff;
  /// Per-record memoized connector probes: 0 unknown, 1 clear, 2 near.
  std::vector<uint8_t> connector_near;
  /// Pass-4 batched snap staging (per record).
  std::vector<geo::IndoorPoint> snap_points;
  std::vector<geo::IndoorPoint> snap_results;
};

/// Cleans raw positioning sequences against a DSM.
class RawDataCleaner {
 public:
  /// `dsm` must have topology computed; `planner` may be null when
  /// interpolate_along_routes is false. Both must outlive the cleaner.
  RawDataCleaner(const dsm::Dsm* dsm, const dsm::RoutePlanner* planner,
                 CleanerOptions options = {});

  /// Cleans `block` in place (records sorted by time, locations repaired,
  /// validity bits of speed-constraint violators cleared by pass 1). `scratch`
  /// may be null (per-thread arena used); `report` may be null. `pool` (may be
  /// null) parallelizes passes 2 and 4 for sequences of at least
  /// options().parallel_min_records records; the cleaned columns are
  /// bit-identical for every worker count. `stages` (may be null) receives
  /// per-pass wall times.
  void CleanBlock(positioning::RecordBlock* block, CleanerScratch* scratch,
                  CleaningReport* report = nullptr,
                  util::ThreadPool* pool = nullptr,
                  const CleaningStageMetrics* stages = nullptr) const;

  /// Returns the cleaned copy of `raw` (same record count and timestamps;
  /// locations repaired). `report` may be null. AoS shim over CleanBlock; the
  /// intermediate block and scratch are per-thread and reused across calls.
  positioning::PositioningSequence Clean(const positioning::PositioningSequence& raw,
                                         CleaningReport* report = nullptr,
                                         util::ThreadPool* pool = nullptr) const;

  /// Reference AoS implementation of Clean (the pre-columnar code path),
  /// retained for the SoA==AoS parity suite and the before/after cleaning
  /// benchmarks. Always serial.
  positioning::PositioningSequence CleanReference(
      const positioning::PositioningSequence& raw,
      CleaningReport* report = nullptr) const;

  /// The minimum indoor walking distance between two located records,
  /// including the floor-change penalty — the quantity the speed constraint
  /// checks.
  double MinIndoorDistance(const geo::IndoorPoint& a, const geo::IndoorPoint& b) const;

  const CleanerOptions& options() const { return options_; }

 private:
  // One vertical-connector footprint, snapshotted at construction (polygon
  // copied — like RoutePlanner, the cleaner holds a build-time snapshot, so
  // later Dsm edits require a new cleaner) plus its bounds padded by the
  // connector slack: a query point outside the padded box skips the polygon
  // tests entirely.
  struct ConnectorShape {
    geo::Polygon shape;
    geo::BoundingBox padded;
  };

  // True iff moving a->b within `dt_ms` violates the speed constraint.
  bool ViolatesSpeed(const geo::IndoorPoint& a, const geo::IndoorPoint& b,
                     DurationMs dt_ms) const;
  // True iff the planar point sits on/near a vertical connector footprint.
  // Checks the hoisted connector list (bbox prefilter + the original polygon
  // tests) — identical answers to the full entity scan it replaces.
  bool NearVerticalConnector(const geo::Point2& p) const;
  // Frozen legacy helpers for CleanReference: the original per-query scan
  // over every DSM entity, kept as the before/after benchmark baseline.
  bool NearVerticalConnectorReference(const geo::Point2& p) const;
  bool ViolatesSpeedReference(const geo::IndoorPoint& a, const geo::IndoorPoint& b,
                              DurationMs dt_ms) const;

  // Pass 1: sequential speed-constraint anchor scan with floor correction;
  // clears validity bits of the violators left for interpolation. Dispatches
  // on options().vectorize between the original per-record scan and the
  // mask-column form (precomputed pair masks + hoisted connector probes).
  void ScanPass(positioning::RecordBlock* block, CleanerScratch* scratch,
                CleaningReport* report) const;
  void ScanPassScalar(positioning::RecordBlock* block,
                      CleaningReport* report) const;
  void ScanPassVector(positioning::RecordBlock* block, CleanerScratch* scratch,
                      CleaningReport* report) const;
  // Pass 2: DSM-guided interpolation of the invalid runs (parallel over runs).
  void InterpolatePass(positioning::RecordBlock* block, CleanerScratch* scratch,
                       CleaningReport* report, util::ThreadPool* pool) const;
  // Pass 3: centred per-floor moving average (columnar, serial). The
  // vectorized form sweeps shifted columns over each floor run's interior
  // (same adds in the same per-element order as the scalar window loop).
  void SmoothPass(positioning::RecordBlock* block, CleanerScratch* scratch,
                  CleaningReport* report) const;
  // Pass 4: snap records outside walkable space (parallel over chunks; the
  // vectorized form feeds each chunk through Dsm::SnapIfOutsideBatch).
  void SnapPass(positioning::RecordBlock* block, CleanerScratch* scratch,
                CleaningReport* report, util::ThreadPool* pool) const;

  // Runs fn(0..items) on the pool when the sequence is long enough, else
  // serially; item work must write disjoint state so results are identical.
  void ForItems(util::ThreadPool* pool, size_t record_count, size_t items,
                const std::function<void(size_t)>& fn) const;

  const dsm::Dsm* dsm_;
  const dsm::RoutePlanner* planner_;
  CleanerOptions options_;
  // Vertical connector footprints (points into dsm_'s entities).
  std::vector<ConnectorShape> connectors_;
};

}  // namespace trips::cleaning
