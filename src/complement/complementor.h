// Mobility Semantics Complementor — second half of the Complementing layer
// (§2, §3): "recovers the missing mobility semantics between two consecutive
// yet temporally far apart mobility semantics ... by a maximum a posteriori
// estimation, a mobility semantics inference utilizes the mobility knowledge
// to infer the most-likely mobility semantics between two semantic regions
// involved in the intermediate result."
#pragma once

#include <vector>

#include "complement/knowledge.h"
#include "core/semantics.h"
#include "dsm/dsm.h"

namespace trips::complement {

/// Options of the complementor.
struct ComplementorOptions {
  /// Gaps shorter than this are boundary slack, not missing semantics.
  DurationMs min_gap = 45 * kMillisPerSecond;
  /// Upper bound on the number of inferred intermediate regions per gap.
  int max_inferred_steps = 4;
  /// Inferred triplets allocated at least this long are labeled "stay";
  /// shorter ones "pass-by".
  DurationMs stay_threshold = 90 * kMillisPerSecond;
};

/// What the complementor did to one sequence.
struct ComplementReport {
  size_t gaps_found = 0;
  size_t gaps_filled = 0;
  size_t triplets_inferred = 0;
};

/// Fills semantic gaps using MAP inference over the mobility knowledge.
class Complementor {
 public:
  /// `dsm` and `knowledge` must outlive the complementor.
  Complementor(const dsm::Dsm* dsm, const MobilityKnowledge* knowledge,
               ComplementorOptions options = {});

  /// Returns `original` with inferred triplets (marked `inferred = true`)
  /// inserted into qualifying gaps. `report` may be null.
  core::MobilitySemanticsSequence Complement(
      const core::MobilitySemanticsSequence& original,
      ComplementReport* report = nullptr) const;

  /// MAP-most-likely region path from `from` to `to` (exclusive of both
  /// endpoints), at most max_inferred_steps long; empty when no path exists
  /// within the limit or the endpoints coincide.
  std::vector<dsm::RegionId> InferPath(dsm::RegionId from, dsm::RegionId to) const;

 private:
  const dsm::Dsm* dsm_;
  const MobilityKnowledge* knowledge_;
  ComplementorOptions options_;
};

}  // namespace trips::complement
