// Mobility-knowledge construction — first half of the Complementing layer
// (§3): "a knowledge construction aggregates the mobility semantics already
// annotated to build the prior mobility knowledge that captures the
// transition probabilities between semantic regions."
#pragma once

#include <map>

#include "core/semantics.h"
#include "dsm/dsm.h"

namespace trips::complement {

/// The prior mobility knowledge: a first-order Markov model over semantic
/// regions plus per-region dwell statistics.
struct MobilityKnowledge {
  /// P(next = b | current = a); rows sum to 1 over a's support.
  std::map<dsm::RegionId, std::map<dsm::RegionId, double>> transition_prob;
  /// Visit frequency of each region across the corpus (sums to 1).
  std::map<dsm::RegionId, double> popularity;
  /// Mean observed triplet duration per region.
  std::map<dsm::RegionId, DurationMs> mean_dwell;
  /// Number of transitions the model was estimated from.
  size_t observed_transitions = 0;

  /// P(b | a), 0 when unknown.
  double TransitionProb(dsm::RegionId a, dsm::RegionId b) const;

  /// A knowledge object with uniform transitions over the DSM's region
  /// adjacency graph — the no-learning baseline the benches compare against.
  static MobilityKnowledge Uniform(const dsm::Dsm& dsm);
};

/// Accumulates annotated sequences into mobility knowledge.
class KnowledgeBuilder {
 public:
  /// `dsm` supplies the region adjacency used for smoothing; must outlive
  /// the builder.
  explicit KnowledgeBuilder(const dsm::Dsm* dsm) : dsm_(dsm) {}

  /// Adds one annotated semantics sequence to the corpus.
  void AddSequence(const core::MobilitySemanticsSequence& seq);

  /// Number of sequences added so far.
  size_t SequenceCount() const { return sequences_; }

  /// Estimates the knowledge. `smoothing` is a Laplace pseudo-count spread
  /// over each region's DSM-adjacent successors, so topologically possible
  /// but unobserved transitions keep non-zero probability.
  MobilityKnowledge Build(double smoothing = 0.5) const;

 private:
  const dsm::Dsm* dsm_;
  size_t sequences_ = 0;
  std::map<dsm::RegionId, std::map<dsm::RegionId, size_t>> counts_;
  std::map<dsm::RegionId, size_t> visits_;
  std::map<dsm::RegionId, DurationMs> dwell_sum_;
};

}  // namespace trips::complement
