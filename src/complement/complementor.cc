#include "complement/complementor.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <queue>

namespace trips::complement {

Complementor::Complementor(const dsm::Dsm* dsm, const MobilityKnowledge* knowledge,
                           ComplementorOptions options)
    : dsm_(dsm), knowledge_(knowledge), options_(options) {}

std::vector<dsm::RegionId> Complementor::InferPath(dsm::RegionId from,
                                                   dsm::RegionId to) const {
  std::vector<dsm::RegionId> empty;
  if (from == to || from == dsm::kInvalidRegion || to == dsm::kInvalidRegion) {
    return empty;
  }

  // MAP path = min-cost path under -log transition probabilities, bounded by
  // max_inferred_steps intermediate hops. Layered Dijkstra over (region, hops).
  const int max_hops = options_.max_inferred_steps + 1;  // edges allowed
  constexpr double kInf = std::numeric_limits<double>::infinity();
  // cost[(region, hops-used)]
  std::map<std::pair<dsm::RegionId, int>, double> cost;
  std::map<std::pair<dsm::RegionId, int>, std::pair<dsm::RegionId, int>> prev;
  using QItem = std::pair<double, std::pair<dsm::RegionId, int>>;
  std::priority_queue<QItem, std::vector<QItem>, std::greater<>> queue;
  cost[{from, 0}] = 0;
  queue.push({0, {from, 0}});

  std::pair<dsm::RegionId, int> goal{dsm::kInvalidRegion, -1};
  double goal_cost = kInf;

  while (!queue.empty()) {
    auto [c, state] = queue.top();
    queue.pop();
    auto it = cost.find(state);
    if (it == cost.end() || c > it->second) continue;
    auto [region, hops] = state;
    if (region == to) {
      if (c < goal_cost) {
        goal_cost = c;
        goal = state;
      }
      continue;
    }
    if (hops >= max_hops) continue;
    auto row = knowledge_->transition_prob.find(region);
    if (row == knowledge_->transition_prob.end()) continue;
    for (const auto& [next, p] : row->second) {
      if (p <= 0) continue;
      double nc = c - std::log(p);
      std::pair<dsm::RegionId, int> ns{next, hops + 1};
      auto found = cost.find(ns);
      if (found == cost.end() || nc < found->second) {
        cost[ns] = nc;
        prev[ns] = state;
        queue.push({nc, ns});
      }
    }
  }

  if (goal.second < 0) return empty;
  // Reconstruct, excluding the endpoints.
  std::vector<dsm::RegionId> path;
  std::pair<dsm::RegionId, int> cur = goal;
  while (!(cur.first == from && cur.second == 0)) {
    path.push_back(cur.first);
    auto it = prev.find(cur);
    if (it == prev.end()) break;
    cur = it->second;
  }
  std::reverse(path.begin(), path.end());
  if (!path.empty() && path.back() == to) path.pop_back();
  return path;
}

core::MobilitySemanticsSequence Complementor::Complement(
    const core::MobilitySemanticsSequence& original, ComplementReport* report) const {
  ComplementReport local;
  ComplementReport* rep = report != nullptr ? report : &local;
  *rep = ComplementReport{};

  core::MobilitySemanticsSequence out;
  out.device_id = original.device_id;
  const auto& in = original.semantics;
  for (size_t i = 0; i < in.size(); ++i) {
    out.semantics.push_back(in[i]);
    if (i + 1 >= in.size()) break;
    const core::MobilitySemantic& cur = in[i];
    const core::MobilitySemantic& next = in[i + 1];
    DurationMs gap = next.range.begin - cur.range.end;
    if (gap < options_.min_gap) continue;
    ++rep->gaps_found;

    TimeRange window{cur.range.end + 1, next.range.begin - 1};
    std::vector<core::MobilitySemantic> inferred;

    if (cur.region == next.region && cur.region != dsm::kInvalidRegion) {
      // The device likely never left the region: one inferred stay/pass-by.
      core::MobilitySemantic s;
      s.region = cur.region;
      s.region_name = cur.region_name;
      s.range = window;
      s.event = window.Duration() >= options_.stay_threshold ? core::kEventStay
                                                             : core::kEventPassBy;
      s.inferred = true;
      inferred.push_back(std::move(s));
    } else {
      std::vector<dsm::RegionId> path = InferPath(cur.region, next.region);
      if (!path.empty()) {
        // Allocate the window proportionally to each region's mean dwell.
        std::vector<double> weights;
        double total = 0;
        for (dsm::RegionId rid : path) {
          auto it = knowledge_->mean_dwell.find(rid);
          double w = it != knowledge_->mean_dwell.end() && it->second > 0
                         ? static_cast<double>(it->second)
                         : static_cast<double>(kMillisPerMinute);
          weights.push_back(w);
          total += w;
        }
        TimestampMs t = window.begin;
        for (size_t k = 0; k < path.size(); ++k) {
          DurationMs slice =
              k + 1 == path.size()
                  ? window.end - t
                  : static_cast<DurationMs>(window.Duration() * weights[k] / total);
          if (slice <= 0) continue;
          core::MobilitySemantic s;
          s.region = path[k];
          if (const dsm::SemanticRegion* r = dsm_->GetRegion(path[k])) {
            s.region_name = r->name;
          }
          s.range = {t, std::min<TimestampMs>(t + slice, window.end)};
          s.event = s.range.Duration() >= options_.stay_threshold
                        ? core::kEventStay
                        : core::kEventPassBy;
          s.inferred = true;
          inferred.push_back(std::move(s));
          t += slice;
        }
      }
    }

    if (!inferred.empty()) {
      ++rep->gaps_filled;
      rep->triplets_inferred += inferred.size();
      for (core::MobilitySemantic& s : inferred) out.semantics.push_back(std::move(s));
    }
  }
  return out;
}

}  // namespace trips::complement
