#include "complement/knowledge.h"

namespace trips::complement {

double MobilityKnowledge::TransitionProb(dsm::RegionId a, dsm::RegionId b) const {
  auto row = transition_prob.find(a);
  if (row == transition_prob.end()) return 0;
  auto cell = row->second.find(b);
  return cell != row->second.end() ? cell->second : 0;
}

MobilityKnowledge MobilityKnowledge::Uniform(const dsm::Dsm& dsm) {
  MobilityKnowledge k;
  const size_t n = dsm.regions().size();
  for (const dsm::SemanticRegion& r : dsm.regions()) {
    std::vector<dsm::RegionId> adj = dsm.AdjacentRegions(r.id);
    if (!adj.empty()) {
      double p = 1.0 / static_cast<double>(adj.size());
      for (dsm::RegionId b : adj) k.transition_prob[r.id][b] = p;
    }
    if (n > 0) k.popularity[r.id] = 1.0 / static_cast<double>(n);
    k.mean_dwell[r.id] = 2 * kMillisPerMinute;
  }
  return k;
}

void KnowledgeBuilder::AddSequence(const core::MobilitySemanticsSequence& seq) {
  ++sequences_;
  dsm::RegionId prev = dsm::kInvalidRegion;
  for (const core::MobilitySemantic& s : seq.semantics) {
    if (s.region == dsm::kInvalidRegion) continue;
    ++visits_[s.region];
    dwell_sum_[s.region] += s.range.Duration();
    if (prev != dsm::kInvalidRegion && prev != s.region) {
      ++counts_[prev][s.region];
    }
    prev = s.region;
  }
}

MobilityKnowledge KnowledgeBuilder::Build(double smoothing) const {
  MobilityKnowledge k;

  // Transition rows: observed counts + smoothing mass over DSM-adjacent
  // successors.
  std::map<dsm::RegionId, std::map<dsm::RegionId, double>> mass;
  for (const auto& [a, row] : counts_) {
    for (const auto& [b, c] : row) {
      mass[a][b] += static_cast<double>(c);
      k.observed_transitions += c;
    }
  }
  if (smoothing > 0 && dsm_ != nullptr) {
    for (const dsm::SemanticRegion& r : dsm_->regions()) {
      for (dsm::RegionId b : dsm_->AdjacentRegions(r.id)) {
        mass[r.id][b] += smoothing;
      }
    }
  }
  for (const auto& [a, row] : mass) {
    double total = 0;
    for (const auto& [b, m] : row) total += m;
    if (total <= 0) continue;
    for (const auto& [b, m] : row) k.transition_prob[a][b] = m / total;
  }

  // Popularity.
  size_t total_visits = 0;
  for (const auto& [r, v] : visits_) total_visits += v;
  if (total_visits > 0) {
    for (const auto& [r, v] : visits_) {
      k.popularity[r] =
          static_cast<double>(v) / static_cast<double>(total_visits);
    }
  }

  // Mean dwell.
  for (const auto& [r, sum] : dwell_sum_) {
    size_t v = visits_.count(r) ? visits_.at(r) : 0;
    k.mean_dwell[r] = v > 0 ? sum / static_cast<DurationMs>(v) : 0;
  }
  return k;
}

}  // namespace trips::complement
