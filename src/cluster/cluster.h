// trips::cluster — one process serving a city. A Cluster hosts many
// independent venues (each its own immutable core::Engine: a mall, an office
// tower, a transit hub, a stadium...) behind a single ingest front door. Each
// venue is a shard with its own stream session and trip store; all shards
// share one worker pool, so a flush burst on one venue steals idle capacity
// from the others, and cross-venue queries fan out shard-parallel.
//
//     cluster::Cluster city({.worker_threads = 4});
//     city.AddVenue({.venue_id = "mall-east", .engine = mall_engine});
//     city.AddVenue({.venue_id = "hub-central", .engine = hub_engine,
//                    .store_directory = "stores/hub-central"});
//
//     city.Ingest("mall-east", device, record);       // routed to its shard
//     city.Poll(now);                                 // all venues, parallel
//     city.FlushAll();
//
//     auto history = city.DeviceHistoryAcrossVenues(device);
//     core::MobilityAnalytics a = city.BuildAnalytics();   // merged city-wide
//
// Determinism: every per-venue output (flush order, stored sequences,
// analytics) is byte-identical to running that venue as a standalone
// core::Service, regardless of the cluster's worker count or the sessions'
// buffer shard count; cross-venue results merge in venue-id order.
//
// Thread-safety: Ingest/IngestBatch/Poll/queries may run concurrently from
// any threads once the venue set is built. AddVenue is also safe concurrently
// with ingestion (shared-mutex guarded), though typical use registers venues
// up front.
#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <shared_mutex>
#include <span>
#include <string>
#include <vector>

#include "core/analytics.h"
#include "core/engine.h"
#include "core/session.h"
#include "obs/metrics.h"
#include "store/trip_store.h"
#include "util/thread_pool.h"

namespace trips::cluster {

/// One venue's registration: the engine that translates it plus its stream
/// flush policy and persistence location.
struct VenueConfig {
  /// Cluster-unique venue key; routing and merge order both follow it.
  std::string venue_id;
  /// The venue's immutable translation model (dsm + planner + pipeline).
  std::shared_ptr<const core::Engine> engine;
  /// Flush policy of the venue's stream session.
  core::StreamOptions stream = {};
  /// Segment directory of the venue's trip store. Empty: memory-only (the
  /// venue still answers history/analytics queries, nothing hits disk).
  std::string store_directory;
  /// Sequences per store segment before sealing.
  size_t segment_max_sequences = 256;
  /// Width of the store's time-partition directories (<= 0: flat layout).
  DurationMs store_partition_ms = kMillisPerDay;
  /// Memory-map sealed segments and decode lazily on reopen (see
  /// store::StoreOptions::mmap).
  bool store_mmap = true;
  /// Merge small sealed segments in the background after PersistAll (runs on
  /// the cluster's shared pool).
  bool store_compaction = true;
};

/// Cluster-level options.
struct ClusterOptions {
  /// Workers in the pool shared by every shard (flush translation fan-out and
  /// query fan-out). kAutoWorkerThreads sizes to the hardware; 0 runs
  /// everything on calling threads (deterministic serial mode).
  static constexpr size_t kAutoWorkerThreads = static_cast<size_t>(-1);
  size_t worker_threads = kAutoWorkerThreads;
  /// Metrics registry the cluster, its pool, and every venue's session and
  /// store record into. Null (the default) makes the cluster create its own.
  /// Venue shards share the registry, so "stream."/"store."/"translate."
  /// metrics aggregate cluster-wide; per-venue counts are exported as
  /// "venue.<id>." callback gauges. Recording never alters output.
  std::shared_ptr<obs::MetricsRegistry> metrics;
};

/// One positioning record addressed to a venue — the cluster's wire unit.
struct ClusterRecord {
  std::string venue_id;
  std::string device_id;
  positioning::RawRecord record;
};

/// One venue's slice of a cross-venue device history.
struct VenueHistory {
  std::string venue_id;
  core::MobilitySemanticsSequence history;
};

/// Aggregate cluster counters.
///
/// Consistency contract: every field is read from lock-free per-shard atomics
/// maintained on the ingest/flush paths — Stats() never takes a venue store's
/// lock, so it cannot stall (or be stalled by) a concurrent flush. Each
/// counter is individually accurate, but the struct is NOT one atomic
/// cross-shard snapshot: a record being ingested while Stats() runs may be
/// counted in `ingested` and not yet in `stored_sequences` (never the
/// reverse for one record's lifecycle: stored_sequences only grows after the
/// store append succeeded). At quiescence — no in-flight Ingest/Poll/Flush —
/// every field is exact, and stored_sequences equals the sum of the venue
/// stores' Stats().sequences (including sequences reloaded from disk when a
/// venue store reopened an existing directory).
struct ClusterStats {
  size_t venues = 0;
  /// Records accepted across all venues.
  size_t ingested = 0;
  /// Records dropped because their venue id was unknown (batch/sink paths).
  size_t dropped_unknown_venue = 0;
  /// Sequences flushed and stored across all venues.
  size_t stored_sequences = 0;
  /// Per-venue ingested record counts, in venue-id order.
  std::vector<std::pair<std::string, size_t>> per_venue_ingested;
};

/// A multi-venue sharded ingest service: one engine+session+store shard per
/// venue, one shared worker pool, one front door.
class Cluster {
 public:
  /// Receives every flushed result cluster-wide, tagged with its venue.
  /// Invoked from whichever thread triggered the flush, results in device-id
  /// order within one venue flush.
  using Sink = std::function<void(const std::string& venue_id,
                                  core::TranslationResult result)>;

  explicit Cluster(ClusterOptions options = {});
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  // ---- topology -------------------------------------------------------------

  /// Registers a venue shard. Fails on an empty/duplicate venue id, a null
  /// engine, or a store directory that cannot be opened.
  Status AddVenue(VenueConfig config);

  /// Registered venue ids, sorted.
  std::vector<std::string> VenueIds() const;

  /// The venue's trip store (nullptr for an unknown venue id). Stays valid
  /// for the cluster's lifetime.
  const store::TripStore* venue_store(const std::string& venue_id) const;

  /// The venue's engine (nullptr for an unknown venue id).
  std::shared_ptr<const core::Engine> venue_engine(const std::string& venue_id) const;

  /// Workers in the shared pool (0 = serial).
  size_t worker_count() const { return pool_.worker_count(); }

  // ---- ingestion ------------------------------------------------------------

  /// Buffers one record into its venue's shard. NotFound on an unknown venue
  /// id. A record that fills the device's buffer triggers an inline flush
  /// (translated + stored + delivered to the sink).
  Status Ingest(const std::string& venue_id, const std::string& device,
                const positioning::RawRecord& record);

  /// Buffers a batch, routing each record to its venue. Unknown-venue records
  /// are skipped and counted (Stats().dropped_unknown_venue); returns the
  /// number accepted.
  Result<size_t> IngestBatch(std::span<const ClusterRecord> records);

  /// A self-contained ingest callable for feed pumps — the cluster analogue
  /// of store::TripStore::MakeSink. Unknown-venue records are dropped and
  /// counted. The cluster must outlive the callable.
  std::function<void(const ClusterRecord&)> MakeSink();

  /// Installs (or, with nullptr, removes) the cluster-wide delivery callback.
  /// Flushed results are always appended to the venue's store regardless.
  void SetSink(Sink sink);

  /// Flushes idle devices of every venue (shard-parallel; venues complete
  /// independently, each venue's results in device-id order).
  Status Poll(TimestampMs now);

  /// Flushes every buffered device of every venue (end of stream). Like
  /// StreamSession::FlushAll, remainders shorter than min_flush_records are
  /// translated too unless the venue's stream options opt back into dropping.
  Status FlushAll();

  /// Records currently buffered across every venue's stream session — the
  /// cluster-wide ingest queue depth the load/SLO harness samples.
  size_t PendingRecords() const;
  /// Devices currently buffered across every venue's stream session.
  size_t PendingDevices() const;

  /// Seals, persists and checkpoints every venue store that has a directory
  /// (each store's manifest is rewritten, so this is the cluster's durable
  /// checkpoint), then lets the stores merge small segments on the shared
  /// pool in the background.
  Status PersistAll();

  // ---- cross-venue queries --------------------------------------------------

  /// The device's stored history in every venue it visited, gathered
  /// shard-parallel, returned in venue-id order (venues without any triplet
  /// for the device are omitted).
  std::vector<VenueHistory> DeviceHistoryAcrossVenues(const std::string& device) const;

  /// City-wide analytics: per-venue analytics (each over that venue's dsm)
  /// built shard-parallel, merged in venue-id order — deterministic for any
  /// worker count, identical to feeding every venue's store to one
  /// MobilityAnalytics in the same order.
  core::MobilityAnalytics BuildAnalytics() const;

  /// One venue's analytics over its own dsm (empty analytics for an unknown
  /// venue id).
  core::MobilityAnalytics VenueAnalytics(const std::string& venue_id) const;

  /// Aggregate counters. Lock-free snapshot; see the ClusterStats
  /// consistency contract.
  ClusterStats Stats() const;

  /// The registry the cluster and all its venue shards record into (never
  /// null). Exposes per-venue "venue.<id>." gauges, cluster-wide rollups
  /// ("cluster.*"), and routing/spatial cache gauges summed over every
  /// venue's engine.
  const std::shared_ptr<obs::MetricsRegistry>& stats_registry() const {
    return metrics_;
  }

  /// Writes the /statsz JSON snapshot of stats_registry() to `out`.
  void DumpStatsz(std::ostream& out) const;

 private:
  /// One venue: engine + stream session + store, all sharing the cluster
  /// pool. The session's sink appends into the store and forwards to the
  /// cluster sink.
  struct VenueShard {
    std::string venue_id;
    std::shared_ptr<const core::Engine> engine;
    std::unique_ptr<store::TripStore> store;     // always present (memory-only
                                                 // when no directory)
    std::unique_ptr<core::StreamSession> session;
    std::atomic<size_t> ingested{0};
    /// Sequences successfully appended to the store, seeded at AddVenue from
    /// the reopened store's contents — the lock-free source of
    /// ClusterStats::stored_sequences (satisfying the contract above).
    std::atomic<size_t> stored{0};
  };

  // The shard registered under `venue_id`, or nullptr. Requires venues_mu_
  // held (any mode).
  VenueShard* FindShardLocked(const std::string& venue_id) const;
  // Snapshot of the shard list in venue-id order, for lock-free fan-out
  // (shards are never removed, so the pointers stay valid).
  std::vector<VenueShard*> SnapshotShards() const;

  ClusterOptions options_;
  std::shared_ptr<obs::MetricsRegistry> metrics_;  // never null
  mutable util::ThreadPool pool_;  // const queries fan out over it too

  mutable std::shared_mutex venues_mu_;  // guards the maps, not the shards
  std::map<std::string, std::unique_ptr<VenueShard>> venues_;  // venue-id order
  /// Callback-gauge names this cluster registered (removed in the destructor
  /// because the callbacks capture `this`; a caller-supplied registry may
  /// outlive the cluster). Mutated under venues_mu_ (unique).
  std::vector<std::string> callback_names_;

  mutable std::mutex sink_mu_;  // guards sink_ only
  Sink sink_;

  std::atomic<size_t> dropped_unknown_{0};
};

}  // namespace trips::cluster
