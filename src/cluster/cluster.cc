#include "cluster/cluster.h"

#include <algorithm>
#include <thread>

#include "obs/statsz.h"

namespace trips::cluster {

namespace {

size_t ResolveWorkers(size_t requested) {
  if (requested != ClusterOptions::kAutoWorkerThreads) return requested;
  unsigned hw = std::thread::hardware_concurrency();
  if (hw <= 1) return 0;
  return std::min<size_t>(hw - 1, 8);
}

}  // namespace

Cluster::Cluster(ClusterOptions options)
    : options_(options),
      metrics_(options.metrics != nullptr
                   ? options.metrics
                   : std::make_shared<obs::MetricsRegistry>()),
      pool_(ResolveWorkers(options.worker_threads)) {
  pool_.SetMetrics(util::PoolMetrics{
      metrics_->gauge("pool.queue_depth"),
      metrics_->histogram("pool.task_wait_ns"),
      metrics_->histogram("pool.task_run_ns"),
      metrics_->counter("pool.tasks_run"),
  });
  metrics_->gauge("pool.workers")->Set(static_cast<int64_t>(pool_.worker_count()));

  // Cluster-wide rollups plus routing/spatial cache gauges summed over every
  // venue engine. The callbacks capture `this`, so the destructor removes
  // them (a caller-supplied registry may outlive the cluster).
  auto add = [this](const std::string& name, std::function<int64_t()> fn) {
    metrics_->SetCallback(name, std::move(fn));
    callback_names_.push_back(name);
  };
  add("cluster.venues", [this] {
    std::shared_lock<std::shared_mutex> lock(venues_mu_);
    return static_cast<int64_t>(venues_.size());
  });
  add("cluster.ingested", [this] {
    int64_t total = 0;
    for (VenueShard* shard : SnapshotShards()) {
      total += static_cast<int64_t>(
          shard->ingested.load(std::memory_order_relaxed));
    }
    return total;
  });
  add("cluster.stored_sequences", [this] {
    int64_t total = 0;
    for (VenueShard* shard : SnapshotShards()) {
      total +=
          static_cast<int64_t>(shard->stored.load(std::memory_order_relaxed));
    }
    return total;
  });
  add("cluster.dropped_unknown_venue", [this] {
    return static_cast<int64_t>(
        dropped_unknown_.load(std::memory_order_relaxed));
  });
  add("routing.cache_hits", [this] {
    int64_t total = 0;
    for (VenueShard* shard : SnapshotShards()) {
      total += static_cast<int64_t>(shard->engine->routing_cache_stats().hits);
    }
    return total;
  });
  add("routing.cache_misses", [this] {
    int64_t total = 0;
    for (VenueShard* shard : SnapshotShards()) {
      total +=
          static_cast<int64_t>(shard->engine->routing_cache_stats().misses);
    }
    return total;
  });
  add("routing.cache_evictions", [this] {
    int64_t total = 0;
    for (VenueShard* shard : SnapshotShards()) {
      total +=
          static_cast<int64_t>(shard->engine->routing_cache_stats().evictions);
    }
    return total;
  });
  add("routing.cache_size", [this] {
    int64_t total = 0;
    for (VenueShard* shard : SnapshotShards()) {
      total += static_cast<int64_t>(shard->engine->routing_cache_stats().size);
    }
    return total;
  });
  add("spatial.partition_probes", [this] {
    int64_t total = 0;
    for (VenueShard* shard : SnapshotShards()) {
      total += static_cast<int64_t>(
          shard->engine->spatial_probe_stats().partition_probes);
    }
    return total;
  });
  add("spatial.snap_probes", [this] {
    int64_t total = 0;
    for (VenueShard* shard : SnapshotShards()) {
      total += static_cast<int64_t>(
          shard->engine->spatial_probe_stats().snap_probes);
    }
    return total;
  });
}

Cluster::~Cluster() {
  for (const std::string& name : callback_names_) {
    metrics_->RemoveCallback(name);
  }
}

// ---- topology ---------------------------------------------------------------

Status Cluster::AddVenue(VenueConfig config) {
  if (config.venue_id.empty()) {
    return Status::InvalidArgument("venue id must not be empty");
  }
  if (config.engine == nullptr) {
    return Status::InvalidArgument("venue engine must not be null: " +
                                   config.venue_id);
  }
  // Build the shard outside the lock (store Open may touch disk).
  auto shard = std::make_unique<VenueShard>();
  shard->venue_id = config.venue_id;
  shard->engine = config.engine;
  // Shards lean on the cluster's shared pool for scans and background
  // compaction instead of spawning per-venue workers (venues_ is destroyed
  // before pool_, so the pool outlives every store).
  auto store = store::TripStore::Open(
      {.directory = config.store_directory,
       .segment_max_sequences = config.segment_max_sequences,
       .worker_threads = 0,
       .mmap = config.store_mmap,
       .partition_ms = config.store_partition_ms,
       .compaction = config.store_compaction,
       .shared_pool = &pool_,
       .metrics = metrics_});
  TRIPS_RETURN_NOT_OK(store.status());
  shard->store = std::move(store).ValueOrDie();
  // Seed the lock-free stored counter with what the reopened store already
  // holds, so ClusterStats::stored_sequences keeps matching the store at
  // quiescence after a restart.
  shard->stored.store(shard->store->Stats().sequences,
                      std::memory_order_relaxed);
  shard->session = std::make_unique<core::StreamSession>(
      config.engine, config.stream, &pool_, metrics_);
  // Every flushed result lands in the venue's store; a cluster sink (looked
  // up at delivery time, so installation order doesn't matter) additionally
  // receives it tagged with the venue. The append is issued directly (not via
  // TripStore::MakeSink) so the shard's stored counter can track success.
  VenueShard* shard_ptr = shard.get();
  shard->session->SetSink([this, shard_ptr](core::TranslationResult result) {
    Sink cluster_sink;
    {
      std::lock_guard<std::mutex> lock(sink_mu_);
      cluster_sink = sink_;
    }
    bool appended;
    if (cluster_sink) {
      appended = shard_ptr->store->Append(result.semantics).ok();  // keep a copy
    } else {
      appended = shard_ptr->store->Append(std::move(result.semantics)).ok();
    }
    if (appended) {
      shard_ptr->stored.fetch_add(1, std::memory_order_relaxed);
    }
    if (cluster_sink) {
      cluster_sink(shard_ptr->venue_id, std::move(result));
    }
  });

  {
    std::unique_lock<std::shared_mutex> lock(venues_mu_);
    auto [it, inserted] = venues_.emplace(config.venue_id, std::move(shard));
    if (!inserted) {
      return Status::AlreadyExists("venue already registered: " +
                                   config.venue_id);
    }
    callback_names_.push_back("venue." + shard_ptr->venue_id + ".ingested");
    callback_names_.push_back("venue." + shard_ptr->venue_id +
                              ".stored_sequences");
  }
  // Per-venue pull gauges, registered outside venues_mu_ (the registry has
  // its own lock). shard_ptr stays valid: shards are never removed.
  metrics_->SetCallback("venue." + shard_ptr->venue_id + ".ingested",
                        [shard_ptr] {
                          return static_cast<int64_t>(shard_ptr->ingested.load(
                              std::memory_order_relaxed));
                        });
  metrics_->SetCallback("venue." + shard_ptr->venue_id + ".stored_sequences",
                        [shard_ptr] {
                          return static_cast<int64_t>(shard_ptr->stored.load(
                              std::memory_order_relaxed));
                        });
  return Status::OK();
}

Cluster::VenueShard* Cluster::FindShardLocked(const std::string& venue_id) const {
  auto it = venues_.find(venue_id);
  return it == venues_.end() ? nullptr : it->second.get();
}

std::vector<Cluster::VenueShard*> Cluster::SnapshotShards() const {
  std::shared_lock<std::shared_mutex> lock(venues_mu_);
  std::vector<VenueShard*> shards;
  shards.reserve(venues_.size());
  for (const auto& [id, shard] : venues_) shards.push_back(shard.get());
  return shards;  // venue-id order (map iteration)
}

std::vector<std::string> Cluster::VenueIds() const {
  std::shared_lock<std::shared_mutex> lock(venues_mu_);
  std::vector<std::string> ids;
  ids.reserve(venues_.size());
  for (const auto& [id, shard] : venues_) ids.push_back(id);
  return ids;
}

const store::TripStore* Cluster::venue_store(const std::string& venue_id) const {
  std::shared_lock<std::shared_mutex> lock(venues_mu_);
  VenueShard* shard = FindShardLocked(venue_id);
  return shard == nullptr ? nullptr : shard->store.get();
}

std::shared_ptr<const core::Engine> Cluster::venue_engine(
    const std::string& venue_id) const {
  std::shared_lock<std::shared_mutex> lock(venues_mu_);
  VenueShard* shard = FindShardLocked(venue_id);
  return shard == nullptr ? nullptr : shard->engine;
}

// ---- ingestion --------------------------------------------------------------

Status Cluster::Ingest(const std::string& venue_id, const std::string& device,
                       const positioning::RawRecord& record) {
  VenueShard* shard;
  {
    std::shared_lock<std::shared_mutex> lock(venues_mu_);
    shard = FindShardLocked(venue_id);
  }
  if (shard == nullptr) {
    return Status::NotFound("unknown venue: " + venue_id);
  }
  shard->ingested.fetch_add(1, std::memory_order_relaxed);
  // The session sink is always installed, so a cap-triggered inline flush is
  // delivered (store + cluster sink) and the returned vector is empty.
  return shard->session->Ingest(device, record).status();
}

Result<size_t> Cluster::IngestBatch(std::span<const ClusterRecord> records) {
  size_t accepted = 0;
  for (const ClusterRecord& r : records) {
    Status s = Ingest(r.venue_id, r.device_id, r.record);
    if (s.code() == StatusCode::kNotFound) {
      dropped_unknown_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    TRIPS_RETURN_NOT_OK(s);
    ++accepted;
  }
  return accepted;
}

std::function<void(const ClusterRecord&)> Cluster::MakeSink() {
  return [this](const ClusterRecord& r) {
    Status s = Ingest(r.venue_id, r.device_id, r.record);
    if (s.code() == StatusCode::kNotFound) {
      dropped_unknown_.fetch_add(1, std::memory_order_relaxed);
    }
  };
}

void Cluster::SetSink(Sink sink) {
  std::lock_guard<std::mutex> lock(sink_mu_);
  sink_ = std::move(sink);
}

Status Cluster::Poll(TimestampMs now) {
  std::vector<VenueShard*> shards = SnapshotShards();
  std::vector<Status> statuses(shards.size());
  pool_.ParallelFor(shards.size(), [&](size_t i) {
    statuses[i] = shards[i]->session->Poll(now).status();
  });
  for (Status& s : statuses) TRIPS_RETURN_NOT_OK(s);
  return Status::OK();
}

Status Cluster::FlushAll() {
  std::vector<VenueShard*> shards = SnapshotShards();
  std::vector<Status> statuses(shards.size());
  pool_.ParallelFor(shards.size(), [&](size_t i) {
    statuses[i] = shards[i]->session->FlushAll().status();
  });
  for (Status& s : statuses) TRIPS_RETURN_NOT_OK(s);
  return Status::OK();
}

size_t Cluster::PendingRecords() const {
  size_t total = 0;
  for (VenueShard* shard : SnapshotShards()) {
    total += shard->session->PendingRecords();
  }
  return total;
}

size_t Cluster::PendingDevices() const {
  size_t total = 0;
  for (VenueShard* shard : SnapshotShards()) {
    total += shard->session->PendingDevices();
  }
  return total;
}

Status Cluster::PersistAll() {
  std::vector<VenueShard*> shards = SnapshotShards();
  std::vector<Status> statuses(shards.size());
  pool_.ParallelFor(shards.size(), [&](size_t i) {
    statuses[i] = shards[i]->store->Flush();
  });
  for (Status& s : statuses) TRIPS_RETURN_NOT_OK(s);
  return Status::OK();
}

// ---- cross-venue queries ----------------------------------------------------

std::vector<VenueHistory> Cluster::DeviceHistoryAcrossVenues(
    const std::string& device) const {
  std::vector<VenueShard*> shards = SnapshotShards();
  std::vector<core::MobilitySemanticsSequence> histories(shards.size());
  pool_.ParallelFor(shards.size(), [&](size_t i) {
    histories[i] = shards[i]->store->DeviceHistory(device);
  });
  // Gathered shard-parallel, assembled in venue-id order (the shard snapshot
  // order), so the result is independent of completion order.
  std::vector<VenueHistory> out;
  for (size_t i = 0; i < shards.size(); ++i) {
    if (histories[i].Empty()) continue;
    out.push_back({shards[i]->venue_id, std::move(histories[i])});
  }
  return out;
}

core::MobilityAnalytics Cluster::BuildAnalytics() const {
  std::vector<VenueShard*> shards = SnapshotShards();
  std::vector<core::MobilityAnalytics> partials(shards.size());
  pool_.ParallelFor(shards.size(), [&](size_t i) {
    partials[i] = shards[i]->store->BuildAnalytics(&shards[i]->engine->dsm());
  });
  // Merge in venue-id order: deterministic for any worker count, identical to
  // sequentially folding every venue's store into one analytics instance.
  core::MobilityAnalytics merged;
  for (const core::MobilityAnalytics& partial : partials) merged.Merge(partial);
  return merged;
}

core::MobilityAnalytics Cluster::VenueAnalytics(const std::string& venue_id) const {
  std::shared_lock<std::shared_mutex> lock(venues_mu_);
  VenueShard* shard = FindShardLocked(venue_id);
  if (shard == nullptr) return core::MobilityAnalytics();
  return shard->store->BuildAnalytics(&shard->engine->dsm());
}

// ---- stats ------------------------------------------------------------------

ClusterStats Cluster::Stats() const {
  std::vector<VenueShard*> shards = SnapshotShards();
  ClusterStats stats;
  stats.venues = shards.size();
  stats.dropped_unknown_venue = dropped_unknown_.load(std::memory_order_relaxed);
  for (VenueShard* shard : shards) {
    size_t n = shard->ingested.load(std::memory_order_relaxed);
    stats.ingested += n;
    // Lock-free: the shard's stored counter, not the store's locked Stats()
    // (see the ClusterStats consistency contract in cluster.h).
    stats.stored_sequences += shard->stored.load(std::memory_order_relaxed);
    stats.per_venue_ingested.emplace_back(shard->venue_id, n);
  }
  return stats;
}

void Cluster::DumpStatsz(std::ostream& out) const {
  obs::DumpStatsz(*metrics_, out);
}

}  // namespace trips::cluster
