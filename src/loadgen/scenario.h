// loadgen scenarios — the parameter space of one load run: how device
// sessions arrive (Poisson base rate, diurnal curve, heavy-tail bursts), what
// the sessions look like (mobility::GeneratorOptions templates), how the
// target is driven (poll cadence, flush policy, optional wall-clock pacing),
// and what counts as passing (SloThresholds).
//
// Three named scenarios ship as the standing SLO gate — steady-state, a
// diurnal ramp, and a heavy-tail burst storm — each sized to run in well
// under a second unpaced so CI can afford all of them against both a single
// Service and a multi-venue Cluster.
#pragma once

#include <string>
#include <vector>

#include "core/session.h"
#include "json/json.h"
#include "mobility/generator.h"
#include "positioning/error_model.h"
#include "util/result.h"
#include "util/time_util.h"

namespace trips::loadgen {

/// What a scenario must hold for its SLO gate to pass. Latency thresholds
/// apply to the ingest-to-result quantiles the harness measures exactly from
/// the delivery stream; a threshold <= 0 is unchecked. Counts of -1 are
/// unchecked.
struct SloThresholds {
  double p50_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;
  /// Buffers dropped for being under min_flush_records. Default 0: any
  /// age-dropped data is an SLO violation (the final flush never drops).
  int64_t max_dropped_buffers = 0;
  /// Records still buffered after the final FlushAll. Default 0: the drain
  /// must be complete — this is the regression gate on flush data loss.
  int64_t max_pending_after_flush = 0;
};

/// One load scenario. Defaults describe a small steady-state run; the named
/// factories below adjust them.
struct ScenarioConfig {
  std::string name = "steady";
  uint64_t seed = 1;

  // ---- offered load: the arrival process ----------------------------------
  /// Sessions to start, total (arrival process stops at the cap or at the end
  /// of the window, whichever first).
  size_t max_sessions = 200;
  /// Base Poisson arrival rate, session starts per simulated minute.
  double arrivals_per_min = 240;
  /// Arrival window in simulated time (sessions run past its end; the run
  /// continues until every buffer drains).
  DurationMs duration = 20 * kMillisPerMinute;
  /// Diurnal rate curve: rate(t) = base * max(0, 1 + A sin(2pi t/period +
  /// phase)). Amplitude 0 = homogeneous Poisson.
  double diurnal_amplitude = 0;
  DurationMs diurnal_period = kMillisPerDay;
  double diurnal_phase = 0;  ///< radians at t = 0
  /// Heavy-tail bursts (the cascade heavy_tail_prob/heavy_tail_mult knobs):
  /// with probability `prob`, an arrival is a burst starting `mult` sessions
  /// at the same instant instead of one.
  double heavy_tail_prob = 0;
  double heavy_tail_mult = 1;

  // ---- session shape -------------------------------------------------------
  /// Distinct mobility itineraries generated up front; every session re-stamps
  /// one of them (routing is paid per template, not per session).
  size_t session_templates = 16;
  /// Degrade templates with the Wi-Fi error model (positioning::) so the
  /// cleaning layer does real work during replay.
  bool apply_noise = true;
  /// Error-model parameters for apply_noise. The default differs from the
  /// model's own default in one way: no long coverage gaps (a mid-session
  /// gap longer than flush_after would age-flush a fragment, and a sub-
  /// min_flush_records fragment would then be age-dropped — making the
  /// zero-data-loss SLO gate depend on the noise draw instead of on the
  /// flush logic under test).
  positioning::ErrorModelOptions noise = DefaultNoise();
  /// Template itinerary knobs (defaults here give short mall visits, so
  /// flush windows and session lifetimes stay in the same order of
  /// magnitude).
  mobility::GeneratorOptions mobility = ShortSessionMobility();

  // ---- driving the target --------------------------------------------------
  /// Cadence of Poll(now) sweeps over the target (simulated time).
  DurationMs poll_interval = 15 * kMillisPerSecond;
  /// Cadence of SLO-logger queue-depth samples (simulated time).
  DurationMs sample_interval = kMillisPerMinute;
  /// Flush policy of the target's stream sessions. The harness injects its
  /// simulated clock into this struct's trace_clock for unpaced runs.
  core::StreamOptions stream = ShortSessionStream();
  /// > 0: pace the replay against the wall clock at this offered record rate
  /// (open loop — records arrive on schedule whether or not the target keeps
  /// up) and measure ingest-to-result latency on the wall clock. 0: replay
  /// unpaced, as fast as the dispatcher can go, measuring latency on the
  /// simulated clock (fully deterministic).
  double target_records_per_sec = 0;

  SloThresholds slo = DefaultSlo();

  /// The mobility/stream/noise/SLO defaults above, exposed for composition.
  static mobility::GeneratorOptions ShortSessionMobility();
  static core::StreamOptions ShortSessionStream();
  static positioning::ErrorModelOptions DefaultNoise();
  static SloThresholds DefaultSlo();
};

/// Homogeneous Poisson arrivals at a steady rate — the baseline curve point.
ScenarioConfig SteadyScenario();
/// Arrival rate sweeps through a full diurnal wave (trough -> peak -> trough)
/// compressed into the window — the ramp scenario.
ScenarioConfig DiurnalRampScenario();
/// Steady base load plus heavy-tail bursts: a few percent of arrivals start
/// tens of sessions at once (stadium letting out).
ScenarioConfig HeavyTailBurstScenario();

/// All named scenarios, in gate order.
std::vector<std::string> ScenarioNames();
/// Looks a named scenario up ("steady", "diurnal", "burst"); NotFound
/// otherwise.
Result<ScenarioConfig> ScenarioByName(const std::string& name);

/// The scenario's parameters as JSON (echoed into SLO reports so a report is
/// self-describing).
json::Value ScenarioJson(const ScenarioConfig& config);

}  // namespace trips::loadgen
