#include "loadgen/event_list.h"

#include <algorithm>

namespace trips::loadgen {

void EventList::Schedule(EventSource* source, TimestampMs at) {
  heap_.push(Entry{std::max(at, now()), next_seq_++, source});
}

TimestampMs EventList::NextTime() const {
  return heap_.empty() ? kNone : heap_.top().at;
}

bool EventList::DoNextEvent() {
  if (heap_.empty()) return false;
  Entry entry = heap_.top();
  heap_.pop();
  now_.store(entry.at, std::memory_order_relaxed);
  ++dispatched_;
  entry.source->DoNextEvent(this, entry.at);
  return true;
}

uint64_t EventList::RunUntil(TimestampMs until) {
  uint64_t n = 0;
  while (!heap_.empty() && heap_.top().at <= until) {
    DoNextEvent();
    ++n;
  }
  return n;
}

}  // namespace trips::loadgen
