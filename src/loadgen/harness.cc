#include "loadgen/harness.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <mutex>
#include <numeric>
#include <thread>
#include <utility>

#include "loadgen/event_list.h"
#include "positioning/error_model.h"
#include "util/rng.h"

namespace trips::loadgen {

namespace {

constexpr double kPi = 3.14159265358979323846;

// ---- schedule fingerprint ---------------------------------------------------

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

// FNV-1a over the 8 bytes of `v`, little-endian.
void HashMix(uint64_t* h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    *h ^= (v >> (i * 8)) & 0xffu;
    *h *= kFnvPrime;
  }
}

// ---- targets ----------------------------------------------------------------

// A single Service stream session behind the uniform ingest surface.
class ServiceTarget : public IngestTarget {
 public:
  ServiceTarget(std::shared_ptr<const core::Engine> engine,
                size_t worker_threads, const core::StreamOptions& stream)
      : service_(std::move(engine),
                 core::ServiceOptions{.worker_threads = worker_threads}),
        session_(service_.NewStreamSession(stream)) {}

  std::string Describe() const override { return "service"; }
  size_t venue_count() const override { return 1; }

  Status Ingest(size_t /*venue_index*/, const std::string& device,
                const positioning::RawRecord& record) override {
    return session_->Ingest(device, record).status();
  }
  Status Poll(TimestampMs now) override { return session_->Poll(now).status(); }
  Status FlushAll() override { return session_->FlushAll().status(); }
  size_t PendingRecords() const override { return session_->PendingRecords(); }
  obs::MetricsRegistry& registry() const override {
    return *service_.stats_registry();
  }
  void SetResultObserver(
      std::function<void(const core::TranslationResult&)> observer) override {
    session_->SetSink(
        [observer = std::move(observer)](core::TranslationResult result) {
          observer(result);
        });
  }

 private:
  core::Service service_;
  std::unique_ptr<core::StreamSession> session_;
};

// A multi-venue Cluster behind the uniform ingest surface. Venue ids are
// "venue-00".."venue-NN"; every venue runs the same engine with a memory-only
// store.
class ClusterTarget : public IngestTarget {
 public:
  ClusterTarget(std::shared_ptr<const core::Engine> engine, size_t venues,
                size_t worker_threads, const core::StreamOptions& stream)
      : cluster_(cluster::ClusterOptions{.worker_threads = worker_threads}) {
    for (size_t i = 0; i < venues; ++i) {
      char id[24];
      std::snprintf(id, sizeof id, "venue-%02zu", i);
      cluster::VenueConfig venue;
      venue.venue_id = id;
      venue.engine = engine;
      venue.stream = stream;
      Status status = cluster_.AddVenue(std::move(venue));
      if (!status.ok() && init_.ok()) init_ = status;  // surfaced at Ingest
      venue_ids_.push_back(id);
    }
  }

  std::string Describe() const override {
    return "cluster[" + std::to_string(venue_ids_.size()) + "]";
  }
  size_t venue_count() const override {
    return venue_ids_.empty() ? 1 : venue_ids_.size();
  }

  Status Ingest(size_t venue_index, const std::string& device,
                const positioning::RawRecord& record) override {
    TRIPS_RETURN_NOT_OK(init_);
    return cluster_.Ingest(venue_ids_[venue_index % venue_ids_.size()], device,
                           record);
  }
  Status Poll(TimestampMs now) override { return cluster_.Poll(now); }
  Status FlushAll() override { return cluster_.FlushAll(); }
  size_t PendingRecords() const override { return cluster_.PendingRecords(); }
  obs::MetricsRegistry& registry() const override {
    return *cluster_.stats_registry();
  }
  void SetResultObserver(
      std::function<void(const core::TranslationResult&)> observer) override {
    cluster_.SetSink([observer = std::move(observer)](
                         const std::string& /*venue_id*/,
                         core::TranslationResult result) { observer(result); });
  }

 private:
  cluster::Cluster cluster_;
  std::vector<std::string> venue_ids_;
  Status init_;  // first AddVenue failure, if any
};

// ---- the replay state machine ----------------------------------------------

struct Replay;

// One simulated device session replaying a re-stamped template: each ingest is
// one event, scheduled at the record's template offset from the session start.
class SessionSource : public EventSource {
 public:
  Replay* replay = nullptr;
  const mobility::SessionTemplate* tpl = nullptr;
  std::string device;
  uint64_t serial = 0;
  size_t venue = 0;
  TimestampMs start = 0;
  size_t next_record = 0;

  void DoNextEvent(EventList* list, TimestampMs now) override;
};

// The arrival process: a non-homogeneous Poisson stream realized by thinning
// against the rate curve's ceiling, with heavy-tail bursts starting several
// sessions at one instant.
class ArrivalSource : public EventSource {
 public:
  Replay* replay = nullptr;
  void DoNextEvent(EventList* list, TimestampMs now) override;
};

// Everything one RunScenario invocation shares between its event sources.
// Mutated only from the single-threaded dispatch loop, so no locking — the
// delivery observer (which may run on pool workers) lives outside, with its
// own mutex.
struct Replay {
  const ScenarioConfig* config = nullptr;
  IngestTarget* target = nullptr;
  EventList events;
  Rng rng;
  std::vector<mobility::SessionTemplate> templates;

  ArrivalSource arrivals;

  bool arrivals_done = false;
  uint64_t sessions_started = 0;
  uint64_t sessions_completed = 0;
  size_t active_sessions = 0;
  // Session sources are pooled: a completed session's source is reused for a
  // later arrival, so heap and pool occupancy stay O(concurrent sessions).
  std::vector<std::unique_ptr<SessionSource>> session_pool;
  std::vector<SessionSource*> free_sessions;

  uint64_t records_offered = 0;
  uint64_t schedule_hash = kFnvOffset;
  bool any_ingest = false;
  TimestampMs first_ingest = 0;
  TimestampMs last_ingest = 0;

  Status failure;  // first ingest/poll failure; stops the replay

  // The run's two triggers, wired after construction so the poll callback can
  // stop them both.
  PeriodicTrigger* poll_trigger = nullptr;
  PeriodicTrigger* sampler_trigger = nullptr;

  // SLO-logger samples.
  uint64_t samples = 0;
  int64_t max_queue_depth = 0;
  double sum_queue_depth = 0;
  int64_t max_pool_queue_depth = 0;
  obs::Gauge* pool_queue_depth = nullptr;

  // Arrival rate at simulated time t, sessions per millisecond:
  // base * max(0, 1 + A sin(2 pi t / period + phase)).
  double RateAt(TimestampMs t) const {
    const double base = config->arrivals_per_min / kMillisPerMinute;
    if (config->diurnal_amplitude == 0 || config->diurnal_period <= 0) {
      return base;
    }
    const double angle =
        2 * kPi * static_cast<double>(t) / static_cast<double>(config->diurnal_period) +
        config->diurnal_phase;
    return base * std::max(0.0, 1 + config->diurnal_amplitude * std::sin(angle));
  }

  // Ceiling of the rate curve — the homogeneous rate the thinning sampler
  // draws candidate gaps at.
  double MaxRate() const {
    const double base = config->arrivals_per_min / kMillisPerMinute;
    return base * (1 + std::max(0.0, config->diurnal_amplitude));
  }

  void ScheduleNextArrival(TimestampMs from) {
    const double max_rate = MaxRate();
    if (max_rate <= 0 || sessions_started >= config->max_sessions) {
      arrivals_done = true;
      return;
    }
    // Thinning: candidates arrive at the ceiling rate; each is accepted with
    // probability rate(t)/ceiling. Rejected candidates advance time without
    // producing an event, so the accepted stream follows the curve exactly.
    double t = static_cast<double>(from);
    while (true) {
      t += rng.Exponential(max_rate);
      if (t > static_cast<double>(config->duration)) {
        arrivals_done = true;
        return;
      }
      const TimestampMs at = static_cast<TimestampMs>(std::llround(t));
      if (rng.Uniform(0, 1) * max_rate <= RateAt(at)) {
        events.Schedule(&arrivals, at);
        return;
      }
    }
  }

  void StartSession(TimestampMs now) {
    const mobility::SessionTemplate* tpl =
        &templates[static_cast<size_t>(rng.UniformInt(
            0, static_cast<int64_t>(templates.size()) - 1))];
    SessionSource* session;
    if (!free_sessions.empty()) {
      session = free_sessions.back();
      free_sessions.pop_back();
    } else {
      session_pool.push_back(std::make_unique<SessionSource>());
      session = session_pool.back().get();
      session->replay = this;
    }
    char name[24];
    std::snprintf(name, sizeof name, "ld-%06llu",
                  static_cast<unsigned long long>(sessions_started));
    session->tpl = tpl;
    session->device = name;
    session->serial = sessions_started;
    session->venue = static_cast<size_t>(sessions_started % target->venue_count());
    session->start = now;
    session->next_record = 0;
    ++sessions_started;
    if (tpl->records.empty()) {  // noise can empty a template
      ++sessions_completed;
      free_sessions.push_back(session);
      return;
    }
    ++active_sessions;
    events.Schedule(session, now + tpl->records.front().timestamp);
  }
};

void SessionSource::DoNextEvent(EventList* list, TimestampMs now) {
  Replay* r = replay;
  if (!r->failure.ok()) return;  // drain without side effects after a failure
  positioning::RawRecord record = tpl->records[next_record];
  record.timestamp += start;
  HashMix(&r->schedule_hash, static_cast<uint64_t>(now));
  HashMix(&r->schedule_hash, serial);
  HashMix(&r->schedule_hash, static_cast<uint64_t>(next_record));
  HashMix(&r->schedule_hash, static_cast<uint64_t>(venue));
  Status status = r->target->Ingest(venue, device, record);
  if (!status.ok()) {
    r->failure = status;
    return;
  }
  ++r->records_offered;
  if (!r->any_ingest) {
    r->any_ingest = true;
    r->first_ingest = now;
  }
  r->last_ingest = std::max(r->last_ingest, now);
  ++next_record;
  if (next_record < tpl->records.size()) {
    list->Schedule(this, start + tpl->records[next_record].timestamp);
  } else {
    --r->active_sessions;
    ++r->sessions_completed;
    r->free_sessions.push_back(this);
  }
}

void ArrivalSource::DoNextEvent(EventList* /*list*/, TimestampMs now) {
  Replay* r = replay;
  if (!r->failure.ok()) {
    r->arrivals_done = true;
    return;
  }
  size_t burst = 1;
  if (r->config->heavy_tail_prob > 0 && r->rng.Chance(r->config->heavy_tail_prob)) {
    burst = static_cast<size_t>(
        std::max<long long>(1, std::llround(r->config->heavy_tail_mult)));
  }
  for (size_t i = 0; i < burst && r->sessions_started < r->config->max_sessions;
       ++i) {
    r->StartSession(now);
  }
  if (r->sessions_started >= r->config->max_sessions) {
    r->arrivals_done = true;
    return;
  }
  r->ScheduleNextArrival(now);
}

}  // namespace

// ---- latency ----------------------------------------------------------------

LatencySummary SummarizeLatencyNs(std::vector<uint64_t> samples_ns) {
  LatencySummary summary;
  if (samples_ns.empty()) return summary;
  std::sort(samples_ns.begin(), samples_ns.end());
  summary.count = samples_ns.size();
  const double sum = std::accumulate(samples_ns.begin(), samples_ns.end(), 0.0);
  summary.mean_ms = sum / static_cast<double>(samples_ns.size()) / 1e6;
  auto quantile = [&samples_ns](double q) {
    // Nearest-rank: the smallest sample with at least q of the mass at or
    // below it.
    size_t rank = static_cast<size_t>(
        std::ceil(q * static_cast<double>(samples_ns.size())));
    rank = std::clamp<size_t>(rank, 1, samples_ns.size());
    return static_cast<double>(samples_ns[rank - 1]) / 1e6;
  };
  summary.p50_ms = quantile(0.50);
  summary.p95_ms = quantile(0.95);
  summary.p99_ms = quantile(0.99);
  summary.max_ms = static_cast<double>(samples_ns.back()) / 1e6;
  return summary;
}

// ---- target factories -------------------------------------------------------

std::unique_ptr<IngestTarget> MakeServiceTarget(
    std::shared_ptr<const core::Engine> engine, size_t worker_threads,
    const core::StreamOptions& stream) {
  return std::make_unique<ServiceTarget>(std::move(engine), worker_threads,
                                         stream);
}

std::unique_ptr<IngestTarget> MakeClusterTarget(
    std::shared_ptr<const core::Engine> engine, size_t venues,
    size_t worker_threads, const core::StreamOptions& stream) {
  return std::make_unique<ClusterTarget>(std::move(engine),
                                         std::max<size_t>(1, venues),
                                         worker_threads, stream);
}

// ---- the run ----------------------------------------------------------------

Result<ScenarioResult> RunScenario(const ScenarioConfig& config,
                                   const mobility::MobilityGenerator& generator,
                                   const TargetFactory& make_target) {
  if (config.poll_interval <= 0) {
    return Status::InvalidArgument("loadgen: poll_interval must be positive");
  }
  if (config.sample_interval <= 0) {
    return Status::InvalidArgument("loadgen: sample_interval must be positive");
  }
  if (config.duration < 0) {
    return Status::InvalidArgument("loadgen: duration must be non-negative");
  }
  if (config.max_sessions > 0 && config.session_templates == 0) {
    return Status::InvalidArgument(
        "loadgen: session_templates must be positive when max_sessions > 0");
  }

  Replay replay;
  replay.config = &config;
  replay.rng = Rng(config.seed);
  replay.arrivals.replay = &replay;

  if (config.max_sessions > 0) {
    TRIPS_ASSIGN_OR_RETURN(
        replay.templates,
        generator.GenerateSessionTemplates(
            static_cast<int>(config.session_templates), &replay.rng));
    if (config.apply_noise) {
      for (mobility::SessionTemplate& tpl : replay.templates) {
        positioning::PositioningSequence truth;
        truth.device_id = "tpl";
        truth.records = tpl.records;
        positioning::PositioningSequence noisy =
            positioning::ApplyErrorModel(truth, config.noise, &replay.rng);
        if (noisy.records.empty()) continue;  // keep the clean itinerary
        const TimestampMs base = noisy.records.front().timestamp;
        for (positioning::RawRecord& record : noisy.records) {
          record.timestamp -= base;
        }
        tpl.records = std::move(noisy.records);
        tpl.duration = tpl.records.back().timestamp;
      }
    }
  }

  const bool paced = config.target_records_per_sec > 0;
  core::StreamOptions stream = config.stream;
  if (!paced) {
    // Unpaced: latency is measured on the simulated timeline, so inject the
    // event clock as the sessions' trace clock. (Paced runs keep the default
    // steady clock — there the wall is the timeline of interest.)
    Replay* r = &replay;
    stream.trace_clock = [r] { return r->events.now_nanos(); };
  }

  std::unique_ptr<IngestTarget> target = make_target(stream);
  if (target == nullptr) {
    return Status::InvalidArgument("loadgen: target factory returned null");
  }
  replay.target = target.get();
  replay.pool_queue_depth = target->registry().gauge("pool.queue_depth");

  // Exact delivery samples. The observer runs on whichever thread flushed
  // (pool workers during cluster polls), hence the mutex; the clock read
  // matches the trace-stamp clock, so stamp and reading share one time base.
  std::mutex delivery_mu;
  std::vector<uint64_t> latencies_ns;
  uint64_t results_delivered = 0;
  std::function<uint64_t()> delivery_clock;
  if (paced) {
    delivery_clock = [] { return obs::NowNanos(); };
  } else {
    Replay* r = &replay;
    delivery_clock = [r] { return r->events.now_nanos(); };
  }
  target->SetResultObserver([&](const core::TranslationResult& result) {
    const uint64_t now_ns = delivery_clock();
    std::lock_guard<std::mutex> lock(delivery_mu);
    ++results_delivered;
    if (result.trace.active()) {
      latencies_ns.push_back(now_ns >= result.trace.ingest_steady_ns
                                 ? now_ns - result.trace.ingest_steady_ns
                                 : 0);
    }
  });

  PeriodicTrigger sampler(
      [&replay](TimestampMs) {
        ++replay.samples;
        const int64_t depth =
            static_cast<int64_t>(replay.target->PendingRecords());
        replay.max_queue_depth = std::max(replay.max_queue_depth, depth);
        replay.sum_queue_depth += static_cast<double>(depth);
        if (replay.pool_queue_depth != nullptr) {
          replay.max_pool_queue_depth = std::max(
              replay.max_pool_queue_depth, replay.pool_queue_depth->Value());
        }
      },
      config.sample_interval);
  PeriodicTrigger poll(
      [&replay](TimestampMs now) {
        Status status = replay.target->Poll(now);
        if (!status.ok() && replay.failure.ok()) replay.failure = status;
        // The run is over once arrivals ended, every session replayed out and
        // every buffer drained (or a failure aborted the replay): stop both
        // triggers so the heap drains and the dispatch loop exits.
        if (!replay.failure.ok() ||
            (replay.arrivals_done && replay.active_sessions == 0 &&
             replay.target->PendingRecords() == 0)) {
          replay.poll_trigger->Stop();
          replay.sampler_trigger->Stop();
        }
      },
      config.poll_interval);
  replay.poll_trigger = &poll;
  replay.sampler_trigger = &sampler;

  if (config.max_sessions > 0 && !replay.templates.empty()) {
    replay.ScheduleNextArrival(0);
  } else {
    replay.arrivals_done = true;
  }
  poll.Start(&replay.events, config.poll_interval);
  sampler.Start(&replay.events, config.sample_interval);

  const auto wall_start = std::chrono::steady_clock::now();
  while (replay.events.DoNextEvent()) {
    if (paced) {
      // Open loop: the next event may not fire before the wall-clock deadline
      // of the records offered so far. Arrivals never wait for the target —
      // if it falls behind, latency grows; the schedule does not stretch.
      const auto deadline =
          wall_start + std::chrono::duration_cast<
                           std::chrono::steady_clock::duration>(
                           std::chrono::duration<double>(
                               static_cast<double>(replay.records_offered) /
                               config.target_records_per_sec));
      std::this_thread::sleep_until(deadline);
    }
  }
  TRIPS_RETURN_NOT_OK(replay.failure);
  TRIPS_RETURN_NOT_OK(target->FlushAll());
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  ScenarioResult out;
  out.scenario = config.name;
  out.target = target->Describe();
  out.sessions_started = replay.sessions_started;
  out.sessions_completed = replay.sessions_completed;
  out.records_offered = replay.records_offered;
  out.events_dispatched = replay.events.dispatched();
  out.schedule_hash = replay.schedule_hash;
  out.sim_seconds = static_cast<double>(replay.events.now()) / 1e3;
  out.wall_seconds = wall_seconds;
  if (replay.any_ingest && replay.last_ingest > replay.first_ingest) {
    out.offered_records_per_sec =
        static_cast<double>(replay.records_offered) /
        (static_cast<double>(replay.last_ingest - replay.first_ingest) / 1e3);
  }
  if (wall_seconds > 0) {
    out.achieved_records_per_sec =
        static_cast<double>(replay.records_offered) / wall_seconds;
  }

  const obs::MetricsSnapshot snap = target->registry().Snap();
  out.records_ingested = snap.counter_or("stream.records_ingested");
  out.flushes = snap.counter_or("stream.flushes");
  out.dropped_small_buffers = snap.counter_or("stream.dropped_small_buffers");
  out.pending_after_flush = target->PendingRecords();
  {
    std::lock_guard<std::mutex> lock(delivery_mu);
    out.results_delivered = results_delivered;
    out.latency = SummarizeLatencyNs(std::move(latencies_ns));
  }
  out.samples = replay.samples;
  out.max_queue_depth = replay.max_queue_depth;
  out.mean_queue_depth =
      replay.samples > 0
          ? replay.sum_queue_depth / static_cast<double>(replay.samples)
          : 0;
  out.max_pool_queue_depth = replay.max_pool_queue_depth;

  ApplySlo(&out, config.slo);
  // The target (and with it the trace_clock closures pointing into `replay`)
  // dies here, before `replay` does.
  target.reset();
  return out;
}

// ---- SLO gating -------------------------------------------------------------

std::vector<SloViolation> CheckSlo(const ScenarioResult& result,
                                   const SloThresholds& slo) {
  std::vector<SloViolation> violations;
  auto check_latency = [&violations](const char* what, double limit,
                                     double actual) {
    if (limit > 0 && actual > limit) violations.push_back({what, limit, actual});
  };
  check_latency("p50_ms", slo.p50_ms, result.latency.p50_ms);
  check_latency("p95_ms", slo.p95_ms, result.latency.p95_ms);
  check_latency("p99_ms", slo.p99_ms, result.latency.p99_ms);
  if (slo.max_dropped_buffers >= 0 &&
      static_cast<int64_t>(result.dropped_small_buffers) >
          slo.max_dropped_buffers) {
    violations.push_back({"dropped_small_buffers",
                          static_cast<double>(slo.max_dropped_buffers),
                          static_cast<double>(result.dropped_small_buffers)});
  }
  if (slo.max_pending_after_flush >= 0 &&
      static_cast<int64_t>(result.pending_after_flush) >
          slo.max_pending_after_flush) {
    violations.push_back({"pending_after_flush",
                          static_cast<double>(slo.max_pending_after_flush),
                          static_cast<double>(result.pending_after_flush)});
  }
  return violations;
}

void ApplySlo(ScenarioResult* result, const SloThresholds& slo) {
  result->violations = CheckSlo(*result, slo);
  result->slo_pass = result->violations.empty();
}

// ---- reports ----------------------------------------------------------------

json::Value ScenarioResultJson(const ScenarioResult& result) {
  json::Object o;
  o["scenario"] = result.scenario;
  o["target"] = result.target;
  o["sessions_started"] = static_cast<int64_t>(result.sessions_started);
  o["sessions_completed"] = static_cast<int64_t>(result.sessions_completed);
  o["records_offered"] = static_cast<int64_t>(result.records_offered);
  o["events_dispatched"] = static_cast<int64_t>(result.events_dispatched);
  char hash[24];
  std::snprintf(hash, sizeof hash, "%016llx",
                static_cast<unsigned long long>(result.schedule_hash));
  o["schedule_hash"] = hash;
  o["sim_seconds"] = result.sim_seconds;
  o["wall_seconds"] = result.wall_seconds;
  o["offered_records_per_sec"] = result.offered_records_per_sec;
  o["achieved_records_per_sec"] = result.achieved_records_per_sec;
  o["records_ingested"] = static_cast<int64_t>(result.records_ingested);
  o["results_delivered"] = static_cast<int64_t>(result.results_delivered);
  o["flushes"] = static_cast<int64_t>(result.flushes);
  o["dropped_small_buffers"] = static_cast<int64_t>(result.dropped_small_buffers);
  o["pending_after_flush"] = static_cast<int64_t>(result.pending_after_flush);
  json::Object latency;
  latency["count"] = static_cast<int64_t>(result.latency.count);
  latency["mean_ms"] = result.latency.mean_ms;
  latency["p50_ms"] = result.latency.p50_ms;
  latency["p95_ms"] = result.latency.p95_ms;
  latency["p99_ms"] = result.latency.p99_ms;
  latency["max_ms"] = result.latency.max_ms;
  o["latency"] = std::move(latency);
  o["queue_depth_samples"] = static_cast<int64_t>(result.samples);
  o["max_queue_depth"] = result.max_queue_depth;
  o["mean_queue_depth"] = result.mean_queue_depth;
  o["max_pool_queue_depth"] = result.max_pool_queue_depth;
  json::Array violations;
  for (const SloViolation& v : result.violations) {
    json::Object violation;
    violation["what"] = v.what;
    violation["limit"] = v.limit;
    violation["actual"] = v.actual;
    violations.push_back(json::Value(std::move(violation)));
  }
  o["violations"] = std::move(violations);
  o["slo_pass"] = result.slo_pass;
  return json::Value(std::move(o));
}

json::Value SloReportJson(const std::vector<ScenarioResult>& results) {
  json::Object o;
  o["report"] = "loadgen_slo";
  bool all_pass = true;
  json::Array rows;
  for (const ScenarioResult& result : results) {
    all_pass = all_pass && result.slo_pass;
    rows.push_back(ScenarioResultJson(result));
  }
  o["runs"] = static_cast<int64_t>(results.size());
  o["slo_pass"] = all_pass;
  o["results"] = std::move(rows);
  return json::Value(std::move(o));
}

}  // namespace trips::loadgen
