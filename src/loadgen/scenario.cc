#include "loadgen/scenario.h"

#include <cmath>

namespace trips::loadgen {

namespace {
constexpr double kPi = 3.14159265358979323846;
}

mobility::GeneratorOptions ScenarioConfig::ShortSessionMobility() {
  mobility::GeneratorOptions options;
  // Short mall visits: a couple of episodes, sub-minute stays. Session
  // lifetimes land in the single-digit minutes, the same order of magnitude
  // as the flush windows below, so the harness exercises age-based flushes,
  // cap flushes and final-drain remainders in every run.
  options.episodes_min = 2;
  options.episodes_max = 4;
  options.stay_min = 30 * kMillisPerSecond;
  options.stay_max = 2 * kMillisPerMinute;
  options.wander_min = 20 * kMillisPerSecond;
  options.wander_max = kMillisPerMinute;
  return options;
}

core::StreamOptions ScenarioConfig::ShortSessionStream() {
  core::StreamOptions stream;
  stream.flush_after = 45 * kMillisPerSecond;
  stream.max_buffer_records = 512;
  return stream;
}

positioning::ErrorModelOptions ScenarioConfig::DefaultNoise() {
  positioning::ErrorModelOptions noise;
  // No long coverage gaps (see the field comment in ScenarioConfig): a gap
  // wider than flush_after would age-flush mid-session fragments and make the
  // zero-drop SLO gate depend on the noise draw. Every other error process
  // keeps its model default.
  noise.gaps_per_hour = 0;
  noise.floor_count = 2;  // the harness venues are small; callers override
  return noise;
}

SloThresholds ScenarioConfig::DefaultSlo() {
  SloThresholds slo;
  // Unpaced runs measure latency on the simulated clock, where
  // ingest-to-result is dominated by the session lifetime plus the flush
  // window — minutes, not milliseconds. The default gate catches buffers
  // that sit an order of magnitude past that (a stuck flush path), holds
  // trivially for wall-clock paced runs, and tolerates zero data loss.
  slo.p50_ms = 15.0 * 60 * 1000;
  slo.p95_ms = 20.0 * 60 * 1000;
  slo.p99_ms = 25.0 * 60 * 1000;
  slo.max_dropped_buffers = 0;
  slo.max_pending_after_flush = 0;
  return slo;
}

ScenarioConfig SteadyScenario() {
  ScenarioConfig config;
  config.name = "steady";
  return config;
}

ScenarioConfig DiurnalRampScenario() {
  ScenarioConfig config;
  config.name = "diurnal";
  // One full diurnal wave compressed into the arrival window: the rate
  // starts at the trough (phase -pi/2), ramps to ~2x base at the peak and
  // falls back. The thinning sampler in the arrival process handles the
  // time-varying rate exactly.
  config.diurnal_amplitude = 0.9;
  config.diurnal_period = config.duration;
  config.diurnal_phase = -kPi / 2;
  return config;
}

ScenarioConfig HeavyTailBurstScenario() {
  ScenarioConfig config;
  config.name = "burst";
  // Mostly steady arrivals, but one in twenty is a stadium-gate moment: 25
  // sessions starting at the same instant. Tail latency under these spikes
  // is what the p99 gate is for.
  config.arrivals_per_min = 120;
  config.heavy_tail_prob = 0.05;
  config.heavy_tail_mult = 25;
  return config;
}

std::vector<std::string> ScenarioNames() { return {"steady", "diurnal", "burst"}; }

Result<ScenarioConfig> ScenarioByName(const std::string& name) {
  if (name == "steady") return SteadyScenario();
  if (name == "diurnal") return DiurnalRampScenario();
  if (name == "burst") return HeavyTailBurstScenario();
  return Status::NotFound("unknown scenario \"" + name +
                          "\" (known: steady, diurnal, burst)");
}

json::Value ScenarioJson(const ScenarioConfig& config) {
  json::Object o;
  o["name"] = config.name;
  o["seed"] = static_cast<int64_t>(config.seed);
  o["max_sessions"] = static_cast<int64_t>(config.max_sessions);
  o["arrivals_per_min"] = config.arrivals_per_min;
  o["duration_ms"] = config.duration;
  o["diurnal_amplitude"] = config.diurnal_amplitude;
  o["diurnal_period_ms"] = config.diurnal_period;
  o["heavy_tail_prob"] = config.heavy_tail_prob;
  o["heavy_tail_mult"] = config.heavy_tail_mult;
  o["session_templates"] = static_cast<int64_t>(config.session_templates);
  o["apply_noise"] = config.apply_noise;
  o["poll_interval_ms"] = config.poll_interval;
  o["sample_interval_ms"] = config.sample_interval;
  o["flush_after_ms"] = config.stream.flush_after;
  o["max_buffer_records"] = static_cast<int64_t>(config.stream.max_buffer_records);
  o["min_flush_records"] = static_cast<int64_t>(config.stream.min_flush_records);
  o["target_records_per_sec"] = config.target_records_per_sec;
  json::Object slo;
  slo["p50_ms"] = config.slo.p50_ms;
  slo["p95_ms"] = config.slo.p95_ms;
  slo["p99_ms"] = config.slo.p99_ms;
  slo["max_dropped_buffers"] = config.slo.max_dropped_buffers;
  slo["max_pending_after_flush"] = config.slo.max_pending_after_flush;
  o["slo"] = std::move(slo);
  return json::Value(std::move(o));
}

}  // namespace trips::loadgen
