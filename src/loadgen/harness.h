// loadgen harness — replays a scenario's event schedule into an ingest target
// and measures the SLO-relevant response: exact ingest-to-result latency
// quantiles, queue depths, drop counters, achieved records/sec.
//
//     auto generator = mobility::MobilityGenerator(&dsm, &planner);
//     auto result = loadgen::RunScenario(
//         loadgen::SteadyScenario(), generator,
//         [&](const core::StreamOptions& stream) {
//           return loadgen::MakeServiceTarget(engine, /*workers=*/4, stream);
//         });
//     if (!result.ValueOrDie().slo_pass) ...  // config.slo already applied
//
// Two replay modes (ScenarioConfig::target_records_per_sec):
//   unpaced (0)  — the dispatcher runs flat out; the harness injects the
//                  simulated clock into the sessions' trace stamps, so the
//                  measured latency is the buffering/flush delay on the
//                  SIMULATED timeline. Fully deterministic: one seed, one
//                  schedule hash, one set of counters — at any worker count.
//   paced (> 0)  — records are offered open-loop at the target wall rate
//                  (arrivals never wait for the system); trace stamps stay on
//                  the wall clock, so the measured latency includes real
//                  queueing and translation time. This is the mode behind the
//                  records/sec-vs-tail-latency curves in BENCH_loadgen.json.
//
// Determinism contract (tests/loadgen_test.cc): an unpaced run's
// schedule_hash, records_offered, records_ingested, results_delivered,
// dropped_small_buffers and latency summary are identical for one
// (config, seed) at 0, 1 or N pool workers.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "core/engine.h"
#include "core/service.h"
#include "json/json.h"
#include "loadgen/scenario.h"
#include "obs/metrics.h"
#include "util/result.h"

namespace trips::loadgen {

/// Exact latency quantiles over a set of samples (sorted, not bucketed — the
/// report's tail numbers have full resolution even past the obs histogram's
/// 80 s ladder).
struct LatencySummary {
  uint64_t count = 0;
  double mean_ms = 0;
  double p50_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;
  double max_ms = 0;
};

/// Computes a LatencySummary from raw nanosecond samples (takes a copy to
/// sort; quantiles by the nearest-rank method).
LatencySummary SummarizeLatencyNs(std::vector<uint64_t> samples_ns);

/// One SLO threshold the run broke.
struct SloViolation {
  std::string what;  ///< e.g. "p99_ms"
  double limit = 0;
  double actual = 0;
};

/// Everything one scenario run produced.
struct ScenarioResult {
  std::string scenario;
  std::string target;

  // Offered load.
  uint64_t sessions_started = 0;
  uint64_t sessions_completed = 0;
  uint64_t records_offered = 0;   ///< ingest events dispatched
  uint64_t events_dispatched = 0; ///< all events (ingest + polls + samples)
  /// FNV-1a digest over every ingest event's (time, session, record, venue) —
  /// the determinism fingerprint of the schedule.
  uint64_t schedule_hash = 0;
  double sim_seconds = 0;   ///< simulated span from first to last event
  double wall_seconds = 0;  ///< wall time the replay took
  double offered_records_per_sec = 0;   ///< records per SIMULATED second
  double achieved_records_per_sec = 0;  ///< records per WALL second

  // System response (target registry + exact delivery samples).
  uint64_t records_ingested = 0;
  uint64_t results_delivered = 0;
  uint64_t flushes = 0;
  uint64_t dropped_small_buffers = 0;
  uint64_t pending_after_flush = 0;  ///< records left buffered after FlushAll
  LatencySummary latency;            ///< ingest-to-result, exact quantiles

  // Queue-depth samples (SLO logger, every sample_interval).
  uint64_t samples = 0;
  int64_t max_queue_depth = 0;       ///< max buffered records seen
  double mean_queue_depth = 0;
  int64_t max_pool_queue_depth = 0;  ///< max worker-pool backlog seen

  // Filled by ApplySlo.
  std::vector<SloViolation> violations;
  bool slo_pass = true;
};

/// What the harness drives: a single Service stream session or a multi-venue
/// Cluster behind one uniform ingest surface. Implementations install the
/// result observer as their delivery sink.
class IngestTarget {
 public:
  virtual ~IngestTarget() = default;
  /// Human-readable target label for reports ("service", "cluster[4]").
  virtual std::string Describe() const = 0;
  /// Venues records can be addressed to (1 for a Service target).
  virtual size_t venue_count() const = 0;
  /// Buffers one record into venue `venue_index % venue_count()`.
  virtual Status Ingest(size_t venue_index, const std::string& device,
                        const positioning::RawRecord& record) = 0;
  virtual Status Poll(TimestampMs now) = 0;
  virtual Status FlushAll() = 0;
  /// Records currently buffered (the harness's queue-depth probe).
  virtual size_t PendingRecords() const = 0;
  /// The registry the target's sessions record into.
  virtual obs::MetricsRegistry& registry() const = 0;
  /// Installs the harness's delivery observer (invoked once per flushed
  /// result, possibly from several worker threads at once).
  virtual void SetResultObserver(
      std::function<void(const core::TranslationResult&)> observer) = 0;
};

/// Builds the target for one run. Invoked by RunScenario with the scenario's
/// stream options after the harness has injected its trace clock — targets
/// must create their sessions with exactly these options.
using TargetFactory =
    std::function<std::unique_ptr<IngestTarget>(const core::StreamOptions&)>;

/// A target over one core::Service stream session.
std::unique_ptr<IngestTarget> MakeServiceTarget(
    std::shared_ptr<const core::Engine> engine, size_t worker_threads,
    const core::StreamOptions& stream);

/// A target over a cluster::Cluster with the given venues (memory-only
/// stores). Venue ids are "venue-00".."venue-NN"; every venue runs `engine`.
std::unique_ptr<IngestTarget> MakeClusterTarget(
    std::shared_ptr<const core::Engine> engine, size_t venues,
    size_t worker_threads, const core::StreamOptions& stream);

/// Replays `config` into a target built by `make_target`, using `generator`
/// (whose DSM should match the target's engine) for session templates. The
/// returned result already has config.slo applied; ApplySlo re-gates it
/// against different thresholds.
Result<ScenarioResult> RunScenario(const ScenarioConfig& config,
                                   const mobility::MobilityGenerator& generator,
                                   const TargetFactory& make_target);

/// Checks `result` against `slo`; returns the violations (empty = pass).
std::vector<SloViolation> CheckSlo(const ScenarioResult& result,
                                   const SloThresholds& slo);

/// CheckSlo + records the outcome on the result itself.
void ApplySlo(ScenarioResult* result, const SloThresholds& slo);

/// One scenario result as JSON.
json::Value ScenarioResultJson(const ScenarioResult& result);

/// The full SLO report: every (scenario, target) result plus the overall
/// verdict — what the CLI writes and CI parses.
json::Value SloReportJson(const std::vector<ScenarioResult>& results);

}  // namespace trips::loadgen
