// loadgen::EventList — the discrete-event heart of the load generator, in the
// htsim idiom: one simulated clock, one binary heap of timed events, and
// event sources that re-schedule themselves. A single EventList drives
// thousands-to-millions of simulated device sessions with O(active sources)
// heap occupancy: each source holds only its NEXT event in the heap, never
// its whole future.
//
// Determinism: events at equal simulated times dispatch in scheduling order
// (the heap orders by (time, sequence number)), and dispatch is
// single-threaded — so one seed always produces one event schedule,
// regardless of what the dispatched events do on worker pools.
//
// Simulated time: TimestampMs, the same epoch-milliseconds unit as raw
// positioning records, so record timestamps, flush windows (Poll(now)) and
// the event clock all share one timeline. now_nanos() exposes the clock in
// nanoseconds for injection as core::StreamOptions::trace_clock — the read is
// a single atomic load, safe from any thread (flush workers reading the clock
// race only against the dispatcher's monotone advance).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/time_util.h"

namespace trips::loadgen {

class EventList;

/// Something that happens at simulated times. A source is scheduled for one
/// moment at a time; its DoNextEvent typically does work and re-schedules
/// itself (or doesn't, ending its participation). Sources are borrowed — the
/// caller keeps them alive until the list drains.
class EventSource {
 public:
  virtual ~EventSource() = default;
  /// Invoked when the simulated clock reaches this source's scheduled time.
  virtual void DoNextEvent(EventList* list, TimestampMs now) = 0;
};

/// The simulated clock plus the pending-event heap.
class EventList {
 public:
  /// No pending event (NextTime's sentinel).
  static constexpr TimestampMs kNone = INT64_MIN;

  explicit EventList(TimestampMs start = 0) : now_(start), start_(start) {}

  EventList(const EventList&) = delete;
  EventList& operator=(const EventList&) = delete;

  /// Current simulated time. Thread-safe (atomic read); advances only inside
  /// DoNextEvent on the dispatching thread.
  TimestampMs now() const { return now_.load(std::memory_order_relaxed); }

  /// The simulated clock as nanoseconds — the shape
  /// core::StreamOptions::trace_clock expects. Offset by 1 ms so the stamp of
  /// an event at the very start time is nonzero (zero means "not traced").
  uint64_t now_nanos() const {
    return static_cast<uint64_t>(now() - start_ + 1) * 1'000'000u;
  }

  /// Schedules `source` to run at simulated time `at` (clamped to now: the
  /// past is not schedulable). One source may hold several pending entries;
  /// it is dispatched once per entry.
  void Schedule(EventSource* source, TimestampMs at);
  void ScheduleIn(EventSource* source, DurationMs delay) {
    Schedule(source, now() + delay);
  }

  /// Simulated time of the earliest pending event, or kNone when drained.
  TimestampMs NextTime() const;

  /// Advances the clock to the earliest pending event and dispatches it.
  /// Returns false (clock untouched) when no event is pending.
  bool DoNextEvent();

  /// Dispatches until the heap drains or the next event would be later than
  /// `until`. Returns the number of events dispatched.
  uint64_t RunUntil(TimestampMs until);

  size_t pending() const { return heap_.size(); }
  uint64_t dispatched() const { return dispatched_; }

 private:
  struct Entry {
    TimestampMs at;
    uint64_t seq;  // tie-break: equal-time events dispatch in schedule order
    EventSource* source;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::atomic<TimestampMs> now_;
  TimestampMs start_;
  uint64_t next_seq_ = 0;
  uint64_t dispatched_ = 0;
};

/// A self-rescheduling periodic event (the htsim "trigger"): invokes its
/// callback every `period` until Stop(). Used for Poll sweeps and SLO
/// sampling.
class PeriodicTrigger : public EventSource {
 public:
  PeriodicTrigger(std::function<void(TimestampMs)> fn, DurationMs period)
      : fn_(std::move(fn)), period_(period) {}

  /// Schedules the first firing at `first` and keeps firing every period.
  void Start(EventList* list, TimestampMs first) {
    running_ = true;
    list->Schedule(this, first);
  }
  /// The trigger stops re-scheduling; an already-pending firing is ignored.
  void Stop() { running_ = false; }

  void DoNextEvent(EventList* list, TimestampMs now) override {
    if (!running_) return;
    fn_(now);
    list->Schedule(this, now + period_);
  }

 private:
  std::function<void(TimestampMs)> fn_;
  DurationMs period_;
  bool running_ = false;
};

}  // namespace trips::loadgen
