// Ground-truth indoor mobility generator.
//
// SUBSTITUTION (see DESIGN.md §1): stands in for the paper's proprietary
// mall dataset, modeled after the authors' own Vita toolkit [7] ("generating
// indoor mobility data for real-world buildings"). Agents follow itineraries
// of stay / pass-by / wander episodes over DSM routes; the generator emits
// both a noiseless sampled positioning sequence and the ground-truth mobility
// semantics implied by the agent's motion — the label source for the Event
// Editor's training data and for all quantitative benches.
#pragma once

#include <string>
#include <vector>

#include "core/semantics.h"
#include "dsm/dsm.h"
#include "dsm/routing.h"
#include "positioning/record.h"
#include "util/result.h"
#include "util/rng.h"

namespace trips::mobility {

/// Tuning knobs for agent behaviour and sampling.
struct GeneratorOptions {
  /// Positioning sampling period (Wi-Fi scans arrive every few seconds).
  DurationMs sample_interval = 3000;
  /// Walking speed range (m/s) while traveling between episode targets.
  double walk_speed_min = 0.9;
  double walk_speed_max = 1.6;
  /// Browsing (in-region random walk) speed while staying, m/s.
  double browse_speed = 0.35;
  /// Number of itinerary episodes per device session.
  int episodes_min = 4;
  int episodes_max = 10;
  /// Stay duration range.
  DurationMs stay_min = 3 * kMillisPerMinute;
  DurationMs stay_max = 20 * kMillisPerMinute;
  /// Wander duration range (aimless drifting in halls/corridors).
  DurationMs wander_min = 1 * kMillisPerMinute;
  DurationMs wander_max = 4 * kMillisPerMinute;
  /// Episode type mix: probability that a visited region is merely passed
  /// through, and that an episode is a wander in a hall/corridor.
  double pass_by_prob = 0.35;
  double wander_prob = 0.12;
  /// Minimum duration for a traversal run to appear in the ground-truth
  /// semantics (shorter crossings are noise).
  DurationMs min_run = 10 * kMillisPerSecond;
  /// Region categories eligible as stay/pass-by targets (empty = all).
  std::vector<std::string> target_categories = {"shop", "hall"};
  /// Zipf skew of region popularity: 0 = uniform visiting; larger values
  /// concentrate traffic on a few popular regions (real mall traffic is
  /// heavily skewed, which is what makes learned mobility knowledge useful).
  double popularity_skew = 0.0;
  /// Region categories eligible for wander episodes.
  std::vector<std::string> wander_categories = {"hall", "corridor"};
};

/// One generated device: noiseless positioning samples plus the ground-truth
/// semantics of the agent's behaviour.
struct GeneratedDevice {
  positioning::PositioningSequence truth;
  core::MobilitySemanticsSequence semantics;
};

/// A reusable session blueprint for load generation: one agent's noiseless
/// positioning samples re-based to start at t = 0. The event-driven load
/// generator (loadgen::) stamps thousands-to-millions of simulated device
/// sessions from a small pool of templates — the routing work behind an
/// itinerary is paid once per template, not once per simulated session.
struct SessionTemplate {
  /// Samples with timestamps relative to the session start (first at 0).
  std::vector<positioning::RawRecord> records;
  /// Timestamp of the last record — the session's active duration.
  DurationMs duration = 0;
};

/// Generates agent trajectories over a DSM.
class MobilityGenerator {
 public:
  /// `dsm` and `planner` must outlive the generator; topology must be ready.
  MobilityGenerator(const dsm::Dsm* dsm, const dsm::RoutePlanner* planner,
                    GeneratorOptions options = {});

  /// Generates one device session starting around `start_time`.
  Result<GeneratedDevice> GenerateDevice(const std::string& device_id,
                                         TimestampMs start_time, Rng* rng) const;

  /// Generates `count` devices with session starts uniformly spread over
  /// [window.begin, window.end]. Device ids are "<prefix><index>".
  Result<std::vector<GeneratedDevice>> GenerateFleet(int count,
                                                     const TimeRange& window,
                                                     Rng* rng,
                                                     const std::string& prefix = "dev-") const;

  /// Generates `count` session templates (distinct itineraries, t = 0 based)
  /// for the load generator to re-stamp. Deterministic for a given rng state.
  Result<std::vector<SessionTemplate>> GenerateSessionTemplates(int count,
                                                                Rng* rng) const;

 private:
  // Samples a uniformly random point inside a region's shape (rejection).
  geo::IndoorPoint RandomPointIn(const dsm::SemanticRegion& region, Rng* rng) const;
  // Picks a random region whose category is in `cats` (empty = any region).
  const dsm::SemanticRegion* PickRegion(const std::vector<std::string>& cats,
                                        dsm::RegionId exclude, Rng* rng) const;

  const dsm::Dsm* dsm_;
  const dsm::RoutePlanner* planner_;
  GeneratorOptions options_;
};

}  // namespace trips::mobility
