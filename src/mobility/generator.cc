#include "mobility/generator.h"

#include <algorithm>
#include <cmath>

namespace trips::mobility {

namespace {
constexpr double kPi = 3.14159265358979323846;
}

MobilityGenerator::MobilityGenerator(const dsm::Dsm* dsm,
                                     const dsm::RoutePlanner* planner,
                                     GeneratorOptions options)
    : dsm_(dsm), planner_(planner), options_(std::move(options)) {}

geo::IndoorPoint MobilityGenerator::RandomPointIn(const dsm::SemanticRegion& region,
                                                  Rng* rng) const {
  geo::BoundingBox box = region.shape.Bounds();
  for (int attempt = 0; attempt < 64; ++attempt) {
    geo::Point2 p{rng->Uniform(box.min.x, box.max.x),
                  rng->Uniform(box.min.y, box.max.y)};
    geo::IndoorPoint ip{p, region.floor};
    if (region.shape.Contains(p) && dsm_->IsWalkable(ip)) return ip;
  }
  return region.IndoorCenter();
}

const dsm::SemanticRegion* MobilityGenerator::PickRegion(
    const std::vector<std::string>& cats, dsm::RegionId exclude, Rng* rng) const {
  std::vector<const dsm::SemanticRegion*> pool;
  for (const dsm::SemanticRegion& r : dsm_->regions()) {
    if (r.id == exclude) continue;
    if (!cats.empty() &&
        std::find(cats.begin(), cats.end(), r.category) == cats.end()) {
      continue;
    }
    pool.push_back(&r);
  }
  if (pool.empty()) return nullptr;
  if (options_.popularity_skew <= 0) {
    return pool[static_cast<size_t>(
        rng->UniformInt(0, static_cast<int64_t>(pool.size()) - 1))];
  }
  // Zipf-weighted pick over the (stable) pool order.
  std::vector<double> weights(pool.size());
  for (size_t i = 0; i < pool.size(); ++i) {
    weights[i] = 1.0 / std::pow(static_cast<double>(i + 1), options_.popularity_skew);
  }
  return pool[rng->WeightedIndex(weights)];
}

Result<GeneratedDevice> MobilityGenerator::GenerateDevice(const std::string& device_id,
                                                          TimestampMs start_time,
                                                          Rng* rng) const {
  if (dsm_->regions().empty()) {
    return Status::FailedPrecondition("DSM has no semantic regions");
  }

  GeneratedDevice out;
  out.truth.device_id = device_id;
  out.semantics.device_id = device_id;

  const dsm::SemanticRegion* start_region =
      PickRegion(options_.target_categories, dsm::kInvalidRegion, rng);
  if (start_region == nullptr) {
    return Status::FailedPrecondition("no region matches target_categories");
  }

  geo::IndoorPoint pos = RandomPointIn(*start_region, rng);
  TimestampMs now = start_time;
  // Travel runs (region visited while walking) are derived from samples below;
  // episode labels are recorded here directly.
  struct EpisodeLabel {
    std::string event;
    dsm::RegionId region;
    std::string region_name;
    TimeRange range;
  };
  std::vector<EpisodeLabel> episodes;
  // Sample stream with a parallel "in-episode" flag so traversal-run
  // derivation only looks at travel samples.
  std::vector<std::pair<positioning::RawRecord, bool>> samples;

  auto emit = [&](const geo::IndoorPoint& p, TimestampMs t, bool in_episode) {
    samples.push_back({positioning::RawRecord(p, t), in_episode});
  };

  // Random walk inside a region shape for `duration`, sampling along the way.
  auto dwell = [&](const dsm::SemanticRegion& region, DurationMs duration,
                   double speed) {
    TimestampMs end = now + duration;
    geo::IndoorPoint p = pos;
    while (now < end) {
      emit(p, now, true);
      DurationMs dt = std::min<DurationMs>(options_.sample_interval, end - now);
      double step = speed * static_cast<double>(dt) / 1000.0;
      for (int attempt = 0; attempt < 8; ++attempt) {
        double angle = rng->Uniform(0, 2 * kPi);
        geo::Point2 cand = p.xy + geo::Point2{std::cos(angle), std::sin(angle)} * step;
        if (region.shape.Contains(cand) && dsm_->IsWalkable({cand, p.floor})) {
          p.xy = cand;
          break;
        }
      }
      now += dt;
    }
    emit(p, now, true);
    pos = p;
  };

  // Walks a planned route at `speed`, sampling every sample_interval.
  auto walk_route = [&](const dsm::Route& route, double speed, bool in_episode) {
    double total = route.distance;
    if (total <= 0 || speed <= 0) {
      pos = route.waypoints.empty() ? pos : route.waypoints.back();
      return;
    }
    DurationMs duration =
        static_cast<DurationMs>(std::llround(total / speed * 1000.0));
    TimestampMs end = now + std::max<DurationMs>(duration, 1);
    TimestampMs t0 = now;
    while (now < end) {
      double d = total * static_cast<double>(now - t0) / static_cast<double>(end - t0);
      emit(route.PointAtDistance(d), now, in_episode);
      now += std::min<DurationMs>(options_.sample_interval, end - now);
    }
    pos = route.waypoints.back();
    emit(pos, now, in_episode);
  };

  int episode_count = static_cast<int>(
      rng->UniformInt(options_.episodes_min, options_.episodes_max));
  dsm::RegionId last_region = start_region->id;

  for (int ep = 0; ep < episode_count; ++ep) {
    bool wander = rng->Chance(options_.wander_prob);
    const dsm::SemanticRegion* target =
        wander ? PickRegion(options_.wander_categories, last_region, rng)
               : PickRegion(options_.target_categories, last_region, rng);
    if (target == nullptr) continue;

    // Travel to the episode's entry point; retry with another target when the
    // planner cannot connect (should not happen in the sample spaces).
    geo::IndoorPoint entry = RandomPointIn(*target, rng);
    Result<dsm::Route> route = planner_->FindRoute(pos, entry);
    if (!route.ok()) {
      const dsm::SemanticRegion* retry =
          PickRegion(options_.target_categories, last_region, rng);
      if (retry == nullptr) continue;
      target = retry;
      entry = RandomPointIn(*target, rng);
      route = planner_->FindRoute(pos, entry);
      if (!route.ok()) continue;
    }
    double speed = rng->Uniform(options_.walk_speed_min, options_.walk_speed_max);
    walk_route(route.ValueOrDie(), speed, false);

    EpisodeLabel label;
    label.region = target->id;
    label.region_name = target->name;
    label.range.begin = now;
    if (wander) {
      label.event = core::kEventWander;
      dwell(*target, rng->UniformInt(options_.wander_min, options_.wander_max),
            options_.browse_speed * 1.6);
    } else if (rng->Chance(options_.pass_by_prob)) {
      // Pass through: cross the region to another interior point at walking
      // speed without stopping.
      label.event = core::kEventPassBy;
      geo::IndoorPoint exit_point = RandomPointIn(*target, rng);
      Result<dsm::Route> cross = planner_->FindRoute(pos, exit_point);
      if (cross.ok()) {
        walk_route(cross.ValueOrDie(), speed, true);
      }
    } else {
      label.event = core::kEventStay;
      dwell(*target, rng->UniformInt(options_.stay_min, options_.stay_max),
            options_.browse_speed);
    }
    label.range.end = now;
    if (label.range.Duration() > 0) episodes.push_back(std::move(label));
    last_region = target->id;
  }

  // Assemble the truth positioning sequence.
  out.truth.records.reserve(samples.size());
  for (const auto& [rec, in_ep] : samples) out.truth.records.push_back(rec);
  out.truth.SortByTime();

  // Derive traversal runs (pass-by of regions crossed while traveling) from
  // the non-episode samples.
  std::vector<EpisodeLabel> runs;
  dsm::RegionId run_region = dsm::kInvalidRegion;
  TimestampMs run_begin = 0, run_end = 0;
  auto flush_run = [&]() {
    if (run_region != dsm::kInvalidRegion && run_end - run_begin >= options_.min_run) {
      const dsm::SemanticRegion* r = dsm_->GetRegion(run_region);
      runs.push_back({core::kEventPassBy, run_region, r ? r->name : "", {run_begin, run_end}});
    }
    run_region = dsm::kInvalidRegion;
  };
  for (const auto& [rec, in_ep] : samples) {
    dsm::RegionId rid =
        in_ep ? dsm::kInvalidRegion : dsm_->RegionAt(rec.location);
    if (rid != run_region) {
      flush_run();
      run_region = rid;
      run_begin = rec.timestamp;
    }
    run_end = rec.timestamp;
  }
  flush_run();

  // Merge episode labels and traversal runs into the semantics sequence.
  for (const EpisodeLabel& e : episodes) {
    out.semantics.semantics.push_back(
        {e.event, e.region, e.region_name, e.range, false});
  }
  for (const EpisodeLabel& r : runs) {
    out.semantics.semantics.push_back(
        {r.event, r.region, r.region_name, r.range, false});
  }
  out.semantics.SortByTime();

  if (out.truth.records.empty()) {
    return Status::Internal("generated an empty trajectory for " + device_id);
  }
  return out;
}

Result<std::vector<GeneratedDevice>> MobilityGenerator::GenerateFleet(
    int count, const TimeRange& window, Rng* rng, const std::string& prefix) const {
  if (count <= 0) return Status::InvalidArgument("fleet count must be positive");
  if (!window.Valid()) return Status::InvalidArgument("invalid fleet time window");
  std::vector<GeneratedDevice> fleet;
  fleet.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    TimestampMs start = window.begin;
    if (window.Duration() > 0) {
      start += rng->UniformInt(0, window.Duration());
    }
    TRIPS_ASSIGN_OR_RETURN(GeneratedDevice dev,
                           GenerateDevice(prefix + std::to_string(i), start, rng));
    fleet.push_back(std::move(dev));
  }
  return fleet;
}

Result<std::vector<SessionTemplate>> MobilityGenerator::GenerateSessionTemplates(
    int count, Rng* rng) const {
  if (count <= 0) return Status::InvalidArgument("template count must be positive");
  std::vector<SessionTemplate> templates;
  templates.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    TRIPS_ASSIGN_OR_RETURN(
        GeneratedDevice dev,
        GenerateDevice("tpl-" + std::to_string(i), /*start_time=*/0, rng));
    SessionTemplate tpl;
    tpl.records = std::move(dev.truth.records);
    if (!tpl.records.empty()) {
      // Re-base to t = 0 (GenerateDevice already starts at start_time, but
      // the contract here is "first record at exactly 0").
      const TimestampMs base = tpl.records.front().timestamp;
      for (positioning::RawRecord& r : tpl.records) r.timestamp -= base;
      tpl.duration = tpl.records.back().timestamp;
    }
    templates.push_back(std::move(tpl));
  }
  return templates;
}

}  // namespace trips::mobility
