#include "store/mmap_file.h"

#include <fstream>
#include <sstream>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define TRIPS_STORE_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace trips::store {

namespace {

Status ReadWholeFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot read " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = std::move(buffer).str();
  return Status::OK();
}

}  // namespace

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this == &other) return *this;
#if TRIPS_STORE_HAVE_MMAP
  if (data_ != nullptr) {
    ::munmap(const_cast<char*>(data_), size_);
  }
#endif
  data_ = std::exchange(other.data_, nullptr);
  size_ = std::exchange(other.size_, 0);
  fallback_ = std::move(other.fallback_);
  other.fallback_.clear();
  return *this;
}

MappedFile::~MappedFile() {
#if TRIPS_STORE_HAVE_MMAP
  if (data_ != nullptr) {
    ::munmap(const_cast<char*>(data_), size_);
  }
#endif
}

Result<MappedFile> MappedFile::Map(const std::string& path) {
  MappedFile file;
#if TRIPS_STORE_HAVE_MMAP
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return Status::IOError("cannot open " + path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IOError("cannot stat " + path);
  }
  size_t size = static_cast<size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    return file;  // empty view, nothing to map
  }
  void* base = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (base != MAP_FAILED) {
    file.data_ = static_cast<const char*>(base);
    file.size_ = size;
    return file;
  }
  // Mapping refused (filesystem without mmap support, resource limits):
  // fall through to the owned-buffer read below.
#endif
  TRIPS_RETURN_NOT_OK(ReadWholeFile(path, &file.fallback_));
  return file;
}

}  // namespace trips::store
