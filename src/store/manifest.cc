#include "store/manifest.h"

#include <cstdio>
#include <fstream>

#include "json/json.h"

namespace trips::store {

namespace {

std::string HexU64(uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

bool ParseHexU64(const std::string& s, uint64_t* out) {
  if (s.empty() || s.size() > 16) return false;
  uint64_t v = 0;
  for (char c : s) {
    uint64_t digit;
    if (c >= '0' && c <= '9') {
      digit = static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<uint64_t>(c - 'a') + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = static_cast<uint64_t>(c - 'A') + 10;
    } else {
      return false;
    }
    v = (v << 4) | digit;
  }
  *out = v;
  return true;
}

}  // namespace

Result<Manifest> ReadManifest(const std::string& directory) {
  const std::string path = directory + "/" + kManifestFileName;
  {
    std::ifstream probe(path);
    if (!probe) return Status::NotFound("no manifest at " + path);
  }
  TRIPS_ASSIGN_OR_RETURN(json::Value doc, json::ParseFile(path));
  if (!doc.is_object() || doc.GetInt("format", 0) != 1) {
    return Status::ParseError("unsupported manifest format in " + path);
  }
  const json::Value* segments = doc.AsObject().Find("segments");
  if (segments == nullptr || !segments->is_array()) {
    return Status::ParseError("manifest missing segments array in " + path);
  }
  Manifest manifest;
  manifest.segments.reserve(segments->AsArray().size());
  for (const json::Value& entry : segments->AsArray()) {
    if (!entry.is_object()) {
      return Status::ParseError("malformed manifest segment entry in " + path);
    }
    ManifestSegment seg;
    seg.file = entry.GetString("file");
    seg.base_ordinal = static_cast<uint64_t>(entry.GetInt("base_ordinal", 0));
    seg.sequences = static_cast<uint64_t>(entry.GetInt("sequences", 0));
    seg.partition = entry.GetInt("partition", 0);
    std::string checksum = entry.GetString("checksum");
    if (seg.file.empty() || seg.file.front() == '/' ||
        seg.file.find("..") != std::string::npos ||
        (!checksum.empty() && !ParseHexU64(checksum, &seg.checksum))) {
      return Status::ParseError("malformed manifest segment entry in " + path);
    }
    manifest.segments.push_back(std::move(seg));
  }
  return manifest;
}

Status WriteManifest(const std::string& directory, const Manifest& manifest) {
  json::Object doc;
  doc["format"] = 1;
  json::Array segments;
  segments.reserve(manifest.segments.size());
  for (const ManifestSegment& seg : manifest.segments) {
    json::Object entry;
    entry["file"] = seg.file;
    entry["base_ordinal"] = static_cast<int64_t>(seg.base_ordinal);
    entry["sequences"] = static_cast<int64_t>(seg.sequences);
    entry["partition"] = seg.partition;
    entry["checksum"] = HexU64(seg.checksum);
    segments.push_back(json::Value(std::move(entry)));
  }
  doc["segments"] = json::Value(std::move(segments));

  const std::string path = directory + "/" + kManifestFileName;
  const std::string tmp = path + ".tmp";
  TRIPS_RETURN_NOT_OK(json::WriteFile(json::Value(std::move(doc)), tmp));
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("cannot rename " + tmp + " to " + path);
  }
  return Status::OK();
}

}  // namespace trips::store
