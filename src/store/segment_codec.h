// Binary segment codec for the TripStore: encodes a batch of mobility
// semantics sequences into one compact, self-contained blob. Device ids,
// event names and region names are interned into a per-segment string table;
// timestamps are delta-encoded (begin as a zigzag delta from the previous
// triplet's end, end as a plain duration), so the dominant cost per triplet
// is a handful of small varints instead of two 8-byte timestamps and three
// strings. The encoding is deterministic (first-appearance interning order),
// so decode(encode(x)) == x structurally and encode(decode(b)) == b
// byte-for-byte on codec-produced blobs.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "core/semantics.h"
#include "util/result.h"

namespace trips::store {

/// Leading bytes of every encoded segment: magic + format version.
inline constexpr char kSegmentMagic[4] = {'T', 'S', 'G', '1'};

/// Encodes `sequences` into one segment blob.
std::string EncodeSegment(const std::vector<core::MobilitySemanticsSequence>& sequences);

/// Decodes a segment blob. Fails with ParseError on a foreign magic, an
/// unknown version, or a truncated/corrupt body.
Result<std::vector<core::MobilitySemanticsSequence>> DecodeSegment(
    std::string_view bytes);

}  // namespace trips::store
