// Binary segment codecs for the TripStore.
//
// v1 ("TSG1") encodes a batch of mobility semantics sequences into one
// compact, self-contained blob. Device ids, event names and region names are
// interned into a per-segment string table; timestamps are delta-encoded
// (begin as a zigzag delta from the previous triplet's end, end as a plain
// duration), so the dominant cost per triplet is a handful of small varints
// instead of two 8-byte timestamps and three strings. The encoding is
// deterministic (first-appearance interning order), so decode(encode(x)) == x
// structurally and encode(decode(b)) == b byte-for-byte on codec-produced
// blobs. v1 must be decoded front to back — reading anything touches
// everything.
//
// v2 ("TSG2") keeps the same interning/delta coding but lays the blob out for
// memory-mapped, lazy reads:
//
//   [magic "TSG2"][version=2]
//   [string table]            varint count, then (varint len, bytes)*
//   [body]                    per-sequence blocks; inside each block the
//                             triplet fields are columnar (all event ids,
//                             then all regions, names, begin deltas,
//                             durations), each column a varint run
//   [sequence offset table]   fixed-width u32 per sequence: block offset
//                             relative to body start (random access /
//                             parallel decode without scanning)
//   [index block]             everything TripStore::Open needs to rebuild
//                             its indexes WITHOUT touching the body: per-
//                             sequence device id + triplet count + span,
//                             region postings with time fences, flow deltas
//   [footer]                  fixed-size trailer: section offsets, counts,
//                             segment time fence, body checksum, base-ordinal
//                             hint, trailing magic "F2ST"
//
// A cold open therefore reads only the footer and index block (the tail
// pages of the mapping); triplet columns are paged in on the first query
// that actually materializes the segment. The two formats are query-
// equivalent: DecodeSegment dispatches on the leading magic and yields the
// same sequences for a v1 blob and its v2 re-encoding.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/semantics.h"
#include "dsm/entity.h"
#include "util/result.h"

namespace trips::store {

/// Leading bytes of every v1 encoded segment: magic + format version.
inline constexpr char kSegmentMagic[4] = {'T', 'S', 'G', '1'};
/// Leading bytes of every v2 encoded segment.
inline constexpr char kSegmentMagicV2[4] = {'T', 'S', 'G', '2'};
/// Trailing bytes of every v2 encoded segment (footer integrity mark).
inline constexpr char kSegmentFooterMagic[4] = {'F', '2', 'S', 'T'};

/// Encodes `sequences` into one v1 segment blob.
std::string EncodeSegment(const std::vector<core::MobilitySemanticsSequence>& sequences);

/// Encodes `sequences` into one v2 (mmap-readable) segment blob.
/// `base_ordinal` is the store-global append ordinal of sequences.front() at
/// write time — a recovery hint that lets a manifest-less directory scan
/// restore append order even after compaction renumbered the files.
std::string EncodeSegmentV2(
    const std::vector<core::MobilitySemanticsSequence>& sequences,
    uint64_t base_ordinal);

/// Decodes a v1 or v2 segment blob in full (dispatches on the magic). Fails
/// with ParseError on a foreign magic, an unknown version, a checksum
/// mismatch (v2), or a truncated/corrupt body.
Result<std::vector<core::MobilitySemanticsSequence>> DecodeSegment(
    std::string_view bytes);

/// The parsed footer + index block of a v2 segment — everything the store
/// needs to index the segment without decoding the body columns.
struct SegmentFooter {
  /// One region's postings contribution: sequence ordinal (within the
  /// segment) plus the union time fence of its visits to the region.
  struct RegionEntry {
    dsm::RegionId region = dsm::kInvalidRegion;
    uint32_t sequence = 0;  ///< ordinal within the segment
    TimeRange fence;
  };
  /// One flow-matrix contribution of the segment.
  struct FlowEntry {
    dsm::RegionId from = dsm::kInvalidRegion;
    dsm::RegionId to = dsm::kInvalidRegion;
    uint64_t count = 0;
  };

  uint64_t sequence_count = 0;
  uint64_t triplet_count = 0;
  uint64_t base_ordinal = 0;  ///< store-global ordinal of the first sequence
  TimeRange span;             ///< union span of every triplet
  bool has_span = false;
  uint64_t checksum = 0;      ///< FNV-1a over everything before the footer

  std::vector<std::string> devices;       ///< per-sequence device id
  std::vector<uint32_t> seq_triplets;     ///< per-sequence triplet count
  /// Region postings ascending by (region, sequence ordinal) — the same
  /// per-region enumeration order TripStore's ingest-time indexing produces.
  std::vector<RegionEntry> postings;
  /// Flow deltas ascending by (from, to).
  std::vector<FlowEntry> flow;
};

/// Parses the footer + index block of a v2 blob without touching the body
/// columns (reads only the mapping's tail pages). Fails with ParseError on a
/// v1 blob, a truncated footer, or a corrupt index block.
Result<SegmentFooter> ReadSegmentFooter(std::string_view bytes);

/// FNV-1a 64 over `bytes` — the integrity checksum stored in v2 footers and
/// the store manifest.
uint64_t SegmentChecksum(std::string_view bytes);

}  // namespace trips::store
