// Compaction planning for the TripStore: picks runs of small, adjacent,
// sealed segments in the same time partition to merge into one full segment.
//
// Only ADJACENT segments merge, so the store-global sequence order — and with
// it every SequenceId, posting order and query result — is unchanged by a
// compaction; queries are byte-identical before and after. The planner is a
// pure function over segment descriptors so the policy is unit-testable
// without a store.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace trips::store {

/// What the planner needs to know about one live segment, in append order.
struct CompactionCandidate {
  size_t segment_index = 0;   ///< position in the store's segment list
  uint64_t sequences = 0;     ///< sequences currently in the segment
  int64_t partition = 0;      ///< time-partition bucket
  bool eligible = false;      ///< sealed, persisted, and not the active tail
};

/// A planned merge: consecutive positions [begin, end) of the candidate list.
struct CompactionPlan {
  size_t begin = 0;
  size_t end = 0;  ///< exclusive; end - begin >= min_run
  bool empty() const { return begin == end; }
};

/// Returns the first (oldest) run of at least `min_run` adjacent eligible
/// candidates that share a partition, are each under `max_sequences`, and
/// merge to at most `max_sequences` total. Returns an empty plan when no such
/// run exists. `candidates` must be in append order.
CompactionPlan PlanCompaction(const std::vector<CompactionCandidate>& candidates,
                              uint64_t max_sequences, size_t min_run);

}  // namespace trips::store
