#include "store/segment_codec.h"

#include <algorithm>
#include <cstring>
#include <map>

namespace trips::store {

namespace {

// Fixed trailer of a v2 blob: nine u64 section/count fields, a flag byte
// (padded to 4), the prefix checksum and the trailing magic.
constexpr size_t kFooterSize = 9 * 8 + 4 + 8 + sizeof(kSegmentFooterMagic);
constexpr size_t kHeaderSize = sizeof(kSegmentMagicV2) + 1;  // magic + version

void PutVarint(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

void PutFixed32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void PutFixed64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

uint32_t GetFixed32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  return v;
}

uint64_t GetFixed64(const char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  return v;
}

uint64_t ZigZag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

int64_t UnZigZag(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

// Bounds-checked sequential reader over the blob.
class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  bool ReadVarint(uint64_t* out) {
    uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      if (pos_ >= bytes_.size()) return false;
      uint8_t byte = static_cast<uint8_t>(bytes_[pos_++]);
      v |= static_cast<uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) return (*out = v, true);
    }
    return false;  // varint longer than 64 bits
  }

  bool ReadString(std::string* out) {
    uint64_t len = 0;
    if (!ReadVarint(&len)) return false;
    if (len > bytes_.size() - pos_) return false;
    out->assign(bytes_.data() + pos_, static_cast<size_t>(len));
    pos_ += static_cast<size_t>(len);
    return true;
  }

  bool Exhausted() const { return pos_ == bytes_.size(); }

  size_t Remaining() const { return bytes_.size() - pos_; }

 private:
  std::string_view bytes_;
  size_t pos_ = 0;
};

// First-appearance string interner.
class StringTable {
 public:
  uint64_t Intern(const std::string& s) {
    auto [it, inserted] = ids_.try_emplace(s, strings_.size());
    if (inserted) strings_.push_back(s);
    return it->second;
  }
  const std::vector<std::string>& strings() const { return strings_; }

 private:
  std::map<std::string, uint64_t> ids_;
  std::vector<std::string> strings_;
};

Result<std::vector<std::string>> DecodeStringTable(Reader* reader) {
  // Every decoded entry consumes at least one byte, so a count exceeding the
  // remaining bytes is corrupt — reject it before reserve() can blow up on an
  // absurd value.
  uint64_t table_size = 0;
  if (!reader->ReadVarint(&table_size) || table_size > reader->Remaining()) {
    return Status::ParseError("truncated segment string table");
  }
  std::vector<std::string> table;
  table.reserve(static_cast<size_t>(table_size));
  for (uint64_t i = 0; i < table_size; ++i) {
    std::string s;
    if (!reader->ReadString(&s)) {
      return Status::ParseError("truncated segment string table");
    }
    table.push_back(std::move(s));
  }
  return table;
}

// Decodes one triplet from its five field values (shared by the v1 row
// decoder and the v2 column decoder). Append only stores Valid()
// (begin <= end) ranges, so a negative duration — or a delta/duration that
// overflows int64 — can only come from corruption; reject it rather than
// indexing a range the store's own ingest path would have refused.
bool BuildTriplet(const std::vector<std::string>& table, uint64_t event,
                  uint64_t region, uint64_t name, uint64_t delta,
                  uint64_t duration, TimestampMs* prev_end,
                  core::MobilitySemantic* out) {
  if ((event >> 1) >= table.size() || name >= table.size()) return false;
  out->inferred = (event & 1) != 0;
  out->event = table[event >> 1];
  out->region = static_cast<dsm::RegionId>(UnZigZag(region));
  out->region_name = table[name];
  int64_t duration_ms = UnZigZag(duration);
  if (duration_ms < 0 ||
      __builtin_add_overflow(*prev_end, UnZigZag(delta), &out->range.begin) ||
      __builtin_add_overflow(out->range.begin, duration_ms, &out->range.end)) {
    return false;
  }
  *prev_end = out->range.end;
  return true;
}

Result<std::vector<core::MobilitySemanticsSequence>> DecodeSegmentV1(
    std::string_view bytes) {
  if (bytes[sizeof(kSegmentMagic)] != 1) {
    return Status::ParseError("unsupported segment version");
  }
  Reader reader(bytes.substr(sizeof(kSegmentMagic) + 1));
  TRIPS_ASSIGN_OR_RETURN(std::vector<std::string> table,
                         DecodeStringTable(&reader));

  // A sequence header costs at least 2 bytes (device + count varints).
  uint64_t sequence_count = 0;
  if (!reader.ReadVarint(&sequence_count) ||
      sequence_count > reader.Remaining() / 2) {
    return Status::ParseError("truncated segment body");
  }
  std::vector<core::MobilitySemanticsSequence> sequences;
  sequences.reserve(static_cast<size_t>(sequence_count));
  for (uint64_t i = 0; i < sequence_count; ++i) {
    core::MobilitySemanticsSequence seq;
    uint64_t device = 0, triplet_count = 0;
    // A triplet costs at least 5 bytes (five varints).
    if (!reader.ReadVarint(&device) || device >= table.size() ||
        !reader.ReadVarint(&triplet_count) ||
        triplet_count > reader.Remaining() / 5) {
      return Status::ParseError("truncated segment sequence header");
    }
    seq.device_id = table[device];
    seq.semantics.reserve(static_cast<size_t>(triplet_count));
    TimestampMs prev_end = 0;
    for (uint64_t j = 0; j < triplet_count; ++j) {
      uint64_t event = 0, region = 0, name = 0, delta = 0, duration = 0;
      if (!reader.ReadVarint(&event) || !reader.ReadVarint(&region) ||
          !reader.ReadVarint(&name) || !reader.ReadVarint(&delta) ||
          !reader.ReadVarint(&duration)) {
        return Status::ParseError("truncated segment triplet");
      }
      core::MobilitySemantic s;
      if (!BuildTriplet(table, event, region, name, delta, duration, &prev_end,
                        &s)) {
        return Status::ParseError("invalid triplet in segment");
      }
      seq.semantics.push_back(std::move(s));
    }
    sequences.push_back(std::move(seq));
  }
  if (!reader.Exhausted()) {
    return Status::ParseError("trailing bytes after segment body");
  }
  return sequences;
}

// The fixed v2 footer fields, as laid out on disk.
struct RawFooter {
  uint64_t string_table_off = 0;
  uint64_t body_off = 0;
  uint64_t seq_offsets_off = 0;
  uint64_t index_off = 0;
  uint64_t sequence_count = 0;
  uint64_t triplet_count = 0;
  uint64_t base_ordinal = 0;
  int64_t span_begin = 0;
  int64_t span_end = 0;
  bool has_span = false;
  uint64_t checksum = 0;
};

Result<RawFooter> ParseRawFooter(std::string_view bytes) {
  if (bytes.size() < kHeaderSize + kFooterSize ||
      std::memcmp(bytes.data(), kSegmentMagicV2, sizeof(kSegmentMagicV2)) != 0) {
    return Status::ParseError("not a v2 TripStore segment (bad magic)");
  }
  if (bytes[sizeof(kSegmentMagicV2)] != 2) {
    return Status::ParseError("unsupported v2 segment version");
  }
  const char* footer = bytes.data() + bytes.size() - kFooterSize;
  if (std::memcmp(bytes.data() + bytes.size() - sizeof(kSegmentFooterMagic),
                  kSegmentFooterMagic, sizeof(kSegmentFooterMagic)) != 0) {
    return Status::ParseError("truncated v2 segment (bad footer magic)");
  }
  RawFooter f;
  f.string_table_off = GetFixed64(footer);
  f.body_off = GetFixed64(footer + 8);
  f.seq_offsets_off = GetFixed64(footer + 16);
  f.index_off = GetFixed64(footer + 24);
  f.sequence_count = GetFixed64(footer + 32);
  f.triplet_count = GetFixed64(footer + 40);
  f.base_ordinal = GetFixed64(footer + 48);
  f.span_begin = static_cast<int64_t>(GetFixed64(footer + 56));
  f.span_end = static_cast<int64_t>(GetFixed64(footer + 64));
  f.has_span = footer[72] != 0;
  f.checksum = GetFixed64(footer + 76);
  size_t footer_off = bytes.size() - kFooterSize;
  if (f.string_table_off != kHeaderSize || f.body_off < f.string_table_off ||
      f.seq_offsets_off < f.body_off || f.index_off < f.seq_offsets_off ||
      f.index_off > footer_off ||
      f.seq_offsets_off + f.sequence_count * 4 != f.index_off) {
    return Status::ParseError("corrupt v2 segment section offsets");
  }
  return f;
}

}  // namespace

uint64_t SegmentChecksum(std::string_view bytes) {
  uint64_t h = 1469598103934665603ull;  // FNV-1a 64 offset basis
  for (unsigned char c : std::string_view(bytes)) {
    h ^= c;
    h *= 1099511628211ull;  // FNV-1a 64 prime
  }
  return h;
}

std::string EncodeSegment(
    const std::vector<core::MobilitySemanticsSequence>& sequences) {
  StringTable table;
  // Intern in the order the decoder will need them: a body pass first, so the
  // table is complete before the header is laid down.
  std::string body;
  PutVarint(&body, sequences.size());
  for (const core::MobilitySemanticsSequence& seq : sequences) {
    PutVarint(&body, table.Intern(seq.device_id));
    PutVarint(&body, seq.semantics.size());
    TimestampMs prev_end = 0;
    for (const core::MobilitySemantic& s : seq.semantics) {
      PutVarint(&body, (table.Intern(s.event) << 1) | (s.inferred ? 1 : 0));
      PutVarint(&body, ZigZag(s.region));
      PutVarint(&body, table.Intern(s.region_name));
      PutVarint(&body, ZigZag(s.range.begin - prev_end));
      PutVarint(&body, ZigZag(s.range.Duration()));
      prev_end = s.range.end;
    }
  }

  std::string out(kSegmentMagic, sizeof(kSegmentMagic));
  out.push_back(1);  // version
  PutVarint(&out, table.strings().size());
  for (const std::string& s : table.strings()) {
    PutVarint(&out, s.size());
    out += s;
  }
  out += body;
  return out;
}

std::string EncodeSegmentV2(
    const std::vector<core::MobilitySemanticsSequence>& sequences,
    uint64_t base_ordinal) {
  StringTable table;
  std::string body;
  std::vector<uint32_t> seq_offsets;
  seq_offsets.reserve(sequences.size());

  // Index-block accumulators, gathered during the body pass.
  TimeRange span{0, 0};
  bool has_span = false;
  uint64_t triplet_count = 0;
  std::map<dsm::RegionId, std::vector<SegmentFooter::RegionEntry>> postings;
  std::map<std::pair<dsm::RegionId, dsm::RegionId>, uint64_t> flow;

  for (size_t i = 0; i < sequences.size(); ++i) {
    const core::MobilitySemanticsSequence& seq = sequences[i];
    seq_offsets.push_back(static_cast<uint32_t>(body.size()));
    PutVarint(&body, table.Intern(seq.device_id));
    PutVarint(&body, seq.semantics.size());
    // Columnar triplet layout: one varint run per field over the whole
    // sequence, so each column compresses and scans as a unit.
    TimestampMs prev_end = 0;
    for (const core::MobilitySemantic& s : seq.semantics) {
      PutVarint(&body, (table.Intern(s.event) << 1) | (s.inferred ? 1 : 0));
    }
    for (const core::MobilitySemantic& s : seq.semantics) {
      PutVarint(&body, ZigZag(s.region));
    }
    for (const core::MobilitySemantic& s : seq.semantics) {
      PutVarint(&body, table.Intern(s.region_name));
    }
    for (const core::MobilitySemantic& s : seq.semantics) {
      PutVarint(&body, ZigZag(s.range.begin - prev_end));
      prev_end = s.range.end;
    }
    for (const core::MobilitySemantic& s : seq.semantics) {
      PutVarint(&body, ZigZag(s.range.Duration()));
    }

    // Index contributions: the exact data TripStore::IndexSequenceLocked
    // derives at ingest, so an index rebuilt from the footer is identical to
    // one rebuilt from the decoded sequences.
    std::map<dsm::RegionId, TimeRange> fences;
    dsm::RegionId prev = dsm::kInvalidRegion;
    for (const core::MobilitySemantic& s : seq.semantics) {
      ++triplet_count;
      if (!has_span) {
        span = s.range;
        has_span = true;
      } else {
        span.begin = std::min(span.begin, s.range.begin);
        span.end = std::max(span.end, s.range.end);
      }
      if (s.region == dsm::kInvalidRegion) continue;
      auto [it, inserted] = fences.try_emplace(s.region, s.range);
      if (!inserted) {
        it->second.begin = std::min(it->second.begin, s.range.begin);
        it->second.end = std::max(it->second.end, s.range.end);
      }
      if (prev != dsm::kInvalidRegion && prev != s.region) {
        ++flow[{prev, s.region}];
      }
      prev = s.region;
    }
    for (const auto& [region, fence] : fences) {
      postings[region].push_back({region, static_cast<uint32_t>(i), fence});
    }
  }

  std::string out(kSegmentMagicV2, sizeof(kSegmentMagicV2));
  out.push_back(2);  // version
  uint64_t string_table_off = out.size();
  PutVarint(&out, table.strings().size());
  for (const std::string& s : table.strings()) {
    PutVarint(&out, s.size());
    out += s;
  }
  uint64_t body_off = out.size();
  out += body;
  uint64_t seq_offsets_off = out.size();
  for (uint32_t off : seq_offsets) PutFixed32(&out, off);
  uint64_t index_off = out.size();

  // Index block: per-sequence meta, region postings, flow deltas.
  for (const core::MobilitySemanticsSequence& seq : sequences) {
    PutVarint(&out, table.Intern(seq.device_id));  // already interned
    PutVarint(&out, seq.semantics.size());
  }
  PutVarint(&out, postings.size());
  for (const auto& [region, entries] : postings) {
    PutVarint(&out, ZigZag(region));
    PutVarint(&out, entries.size());
    for (const SegmentFooter::RegionEntry& e : entries) {
      PutVarint(&out, e.sequence);
      PutVarint(&out, ZigZag(e.fence.begin));
      PutVarint(&out, ZigZag(e.fence.Duration()));
    }
  }
  PutVarint(&out, flow.size());
  for (const auto& [pair, count] : flow) {
    PutVarint(&out, ZigZag(pair.first));
    PutVarint(&out, ZigZag(pair.second));
    PutVarint(&out, count);
  }

  uint64_t checksum = SegmentChecksum(out);  // everything before the footer
  PutFixed64(&out, string_table_off);
  PutFixed64(&out, body_off);
  PutFixed64(&out, seq_offsets_off);
  PutFixed64(&out, index_off);
  PutFixed64(&out, sequences.size());
  PutFixed64(&out, triplet_count);
  PutFixed64(&out, base_ordinal);
  PutFixed64(&out, static_cast<uint64_t>(span.begin));
  PutFixed64(&out, static_cast<uint64_t>(span.end));
  out.push_back(has_span ? 1 : 0);
  out.append(3, '\0');  // padding
  PutFixed64(&out, checksum);
  out.append(kSegmentFooterMagic, sizeof(kSegmentFooterMagic));
  return out;
}

Result<SegmentFooter> ReadSegmentFooter(std::string_view bytes) {
  TRIPS_ASSIGN_OR_RETURN(RawFooter raw, ParseRawFooter(bytes));
  SegmentFooter footer;
  footer.sequence_count = raw.sequence_count;
  footer.triplet_count = raw.triplet_count;
  footer.base_ordinal = raw.base_ordinal;
  footer.span = {raw.span_begin, raw.span_end};
  footer.has_span = raw.has_span;
  footer.checksum = raw.checksum;

  // The per-sequence device ids live in the string table; the index block
  // references them by id. Both sections are tail-adjacent enough that an
  // open touches only a handful of pages even on large segments.
  Reader table_reader(
      bytes.substr(raw.string_table_off, raw.body_off - raw.string_table_off));
  TRIPS_ASSIGN_OR_RETURN(std::vector<std::string> table,
                         DecodeStringTable(&table_reader));

  Reader reader(bytes.substr(raw.index_off,
                             bytes.size() - kFooterSize - raw.index_off));
  footer.devices.reserve(static_cast<size_t>(raw.sequence_count));
  footer.seq_triplets.reserve(static_cast<size_t>(raw.sequence_count));
  for (uint64_t i = 0; i < raw.sequence_count; ++i) {
    uint64_t device = 0, triplets = 0;
    if (!reader.ReadVarint(&device) || device >= table.size() ||
        !reader.ReadVarint(&triplets)) {
      return Status::ParseError("corrupt v2 segment index (sequence meta)");
    }
    footer.devices.push_back(table[device]);
    footer.seq_triplets.push_back(static_cast<uint32_t>(triplets));
  }
  uint64_t region_count = 0;
  if (!reader.ReadVarint(&region_count) || region_count > reader.Remaining()) {
    return Status::ParseError("corrupt v2 segment index (regions)");
  }
  for (uint64_t r = 0; r < region_count; ++r) {
    uint64_t region = 0, count = 0;
    if (!reader.ReadVarint(&region) || !reader.ReadVarint(&count) ||
        count > reader.Remaining()) {
      return Status::ParseError("corrupt v2 segment index (postings)");
    }
    for (uint64_t p = 0; p < count; ++p) {
      uint64_t seq = 0, begin = 0, duration = 0;
      if (!reader.ReadVarint(&seq) || seq >= raw.sequence_count ||
          !reader.ReadVarint(&begin) || !reader.ReadVarint(&duration)) {
        return Status::ParseError("corrupt v2 segment index (postings)");
      }
      SegmentFooter::RegionEntry entry;
      entry.region = static_cast<dsm::RegionId>(UnZigZag(region));
      entry.sequence = static_cast<uint32_t>(seq);
      entry.fence.begin = UnZigZag(begin);
      entry.fence.end = entry.fence.begin + UnZigZag(duration);
      footer.postings.push_back(entry);
    }
  }
  uint64_t flow_count = 0;
  if (!reader.ReadVarint(&flow_count) || flow_count > reader.Remaining()) {
    return Status::ParseError("corrupt v2 segment index (flow)");
  }
  for (uint64_t i = 0; i < flow_count; ++i) {
    uint64_t from = 0, to = 0, count = 0;
    if (!reader.ReadVarint(&from) || !reader.ReadVarint(&to) ||
        !reader.ReadVarint(&count)) {
      return Status::ParseError("corrupt v2 segment index (flow)");
    }
    footer.flow.push_back({static_cast<dsm::RegionId>(UnZigZag(from)),
                           static_cast<dsm::RegionId>(UnZigZag(to)), count});
  }
  if (!reader.Exhausted()) {
    return Status::ParseError("trailing bytes after v2 segment index");
  }
  return footer;
}

Result<std::vector<core::MobilitySemanticsSequence>> DecodeSegment(
    std::string_view bytes) {
  if (bytes.size() >= sizeof(kSegmentMagic) + 1 &&
      std::memcmp(bytes.data(), kSegmentMagic, sizeof(kSegmentMagic)) == 0) {
    return DecodeSegmentV1(bytes);
  }
  if (bytes.size() >= kHeaderSize + kFooterSize &&
      std::memcmp(bytes.data(), kSegmentMagicV2, sizeof(kSegmentMagicV2)) == 0) {
    TRIPS_ASSIGN_OR_RETURN(RawFooter raw, ParseRawFooter(bytes));
    if (SegmentChecksum(bytes.substr(0, bytes.size() - kFooterSize)) !=
        raw.checksum) {
      return Status::ParseError("v2 segment checksum mismatch");
    }
    Reader table_reader(
        bytes.substr(raw.string_table_off, raw.body_off - raw.string_table_off));
    TRIPS_ASSIGN_OR_RETURN(std::vector<std::string> table,
                           DecodeStringTable(&table_reader));
    std::string_view body =
        bytes.substr(raw.body_off, raw.seq_offsets_off - raw.body_off);
    std::string_view offsets =
        bytes.substr(raw.seq_offsets_off, raw.index_off - raw.seq_offsets_off);

    std::vector<core::MobilitySemanticsSequence> sequences;
    sequences.reserve(static_cast<size_t>(raw.sequence_count));
    for (uint64_t i = 0; i < raw.sequence_count; ++i) {
      uint32_t off = GetFixed32(offsets.data() + i * 4);
      if (off > body.size()) {
        return Status::ParseError("corrupt v2 segment sequence offset");
      }
      Reader reader(body.substr(off));
      core::MobilitySemanticsSequence seq;
      uint64_t device = 0, triplet_count = 0;
      // A triplet costs at least 5 bytes across its five columns.
      if (!reader.ReadVarint(&device) || device >= table.size() ||
          !reader.ReadVarint(&triplet_count) ||
          triplet_count > reader.Remaining() / 5) {
        return Status::ParseError("truncated v2 segment sequence header");
      }
      size_t n = static_cast<size_t>(triplet_count);
      seq.device_id = table[device];
      // Columns in layout order; events/regions/names/deltas/durations.
      std::vector<uint64_t> events(n), regions(n), names(n), deltas(n),
          durations(n);
      for (auto* column : {&events, &regions, &names, &deltas, &durations}) {
        for (size_t j = 0; j < n; ++j) {
          if (!reader.ReadVarint(&(*column)[j])) {
            return Status::ParseError("truncated v2 segment column");
          }
        }
      }
      seq.semantics.resize(n);
      TimestampMs prev_end = 0;
      for (size_t j = 0; j < n; ++j) {
        if (!BuildTriplet(table, events[j], regions[j], names[j], deltas[j],
                          durations[j], &prev_end, &seq.semantics[j])) {
          return Status::ParseError("invalid triplet in v2 segment");
        }
      }
      sequences.push_back(std::move(seq));
    }
    return sequences;
  }
  return Status::ParseError("not a TripStore segment (bad magic)");
}

}  // namespace trips::store
