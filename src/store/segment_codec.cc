#include "store/segment_codec.h"

#include <cstdint>
#include <cstring>
#include <map>

namespace trips::store {

namespace {

void PutVarint(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

uint64_t ZigZag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

int64_t UnZigZag(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

// Bounds-checked sequential reader over the blob.
class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  bool ReadVarint(uint64_t* out) {
    uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      if (pos_ >= bytes_.size()) return false;
      uint8_t byte = static_cast<uint8_t>(bytes_[pos_++]);
      v |= static_cast<uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) return (*out = v, true);
    }
    return false;  // varint longer than 64 bits
  }

  bool ReadString(std::string* out) {
    uint64_t len = 0;
    if (!ReadVarint(&len)) return false;
    if (len > bytes_.size() - pos_) return false;
    out->assign(bytes_.data() + pos_, static_cast<size_t>(len));
    pos_ += static_cast<size_t>(len);
    return true;
  }

  bool Exhausted() const { return pos_ == bytes_.size(); }

  size_t Remaining() const { return bytes_.size() - pos_; }

 private:
  std::string_view bytes_;
  size_t pos_ = 0;
};

// First-appearance string interner.
class StringTable {
 public:
  uint64_t Intern(const std::string& s) {
    auto [it, inserted] = ids_.try_emplace(s, strings_.size());
    if (inserted) strings_.push_back(s);
    return it->second;
  }
  const std::vector<std::string>& strings() const { return strings_; }

 private:
  std::map<std::string, uint64_t> ids_;
  std::vector<std::string> strings_;
};

}  // namespace

std::string EncodeSegment(
    const std::vector<core::MobilitySemanticsSequence>& sequences) {
  StringTable table;
  // Intern in the order the decoder will need them: a body pass first, so the
  // table is complete before the header is laid down.
  std::string body;
  PutVarint(&body, sequences.size());
  for (const core::MobilitySemanticsSequence& seq : sequences) {
    PutVarint(&body, table.Intern(seq.device_id));
    PutVarint(&body, seq.semantics.size());
    TimestampMs prev_end = 0;
    for (const core::MobilitySemantic& s : seq.semantics) {
      PutVarint(&body, (table.Intern(s.event) << 1) | (s.inferred ? 1 : 0));
      PutVarint(&body, ZigZag(s.region));
      PutVarint(&body, table.Intern(s.region_name));
      PutVarint(&body, ZigZag(s.range.begin - prev_end));
      PutVarint(&body, ZigZag(s.range.Duration()));
      prev_end = s.range.end;
    }
  }

  std::string out(kSegmentMagic, sizeof(kSegmentMagic));
  out.push_back(1);  // version
  PutVarint(&out, table.strings().size());
  for (const std::string& s : table.strings()) {
    PutVarint(&out, s.size());
    out += s;
  }
  out += body;
  return out;
}

Result<std::vector<core::MobilitySemanticsSequence>> DecodeSegment(
    std::string_view bytes) {
  if (bytes.size() < sizeof(kSegmentMagic) + 1 ||
      std::memcmp(bytes.data(), kSegmentMagic, sizeof(kSegmentMagic)) != 0) {
    return Status::ParseError("not a TripStore segment (bad magic)");
  }
  if (bytes[sizeof(kSegmentMagic)] != 1) {
    return Status::ParseError("unsupported segment version");
  }
  Reader reader(bytes.substr(sizeof(kSegmentMagic) + 1));

  // Every decoded entry consumes at least one byte, so a count exceeding the
  // remaining bytes is corrupt — reject it before reserve() can blow up on an
  // absurd value.
  uint64_t table_size = 0;
  if (!reader.ReadVarint(&table_size) || table_size > reader.Remaining()) {
    return Status::ParseError("truncated segment string table");
  }
  std::vector<std::string> table;
  table.reserve(static_cast<size_t>(table_size));
  for (uint64_t i = 0; i < table_size; ++i) {
    std::string s;
    if (!reader.ReadString(&s)) {
      return Status::ParseError("truncated segment string table");
    }
    table.push_back(std::move(s));
  }

  // A sequence header costs at least 2 bytes (device + count varints).
  uint64_t sequence_count = 0;
  if (!reader.ReadVarint(&sequence_count) ||
      sequence_count > reader.Remaining() / 2) {
    return Status::ParseError("truncated segment body");
  }
  std::vector<core::MobilitySemanticsSequence> sequences;
  sequences.reserve(static_cast<size_t>(sequence_count));
  for (uint64_t i = 0; i < sequence_count; ++i) {
    core::MobilitySemanticsSequence seq;
    uint64_t device = 0, triplet_count = 0;
    // A triplet costs at least 5 bytes (five varints).
    if (!reader.ReadVarint(&device) || device >= table.size() ||
        !reader.ReadVarint(&triplet_count) ||
        triplet_count > reader.Remaining() / 5) {
      return Status::ParseError("truncated segment sequence header");
    }
    seq.device_id = table[device];
    seq.semantics.reserve(static_cast<size_t>(triplet_count));
    TimestampMs prev_end = 0;
    for (uint64_t j = 0; j < triplet_count; ++j) {
      uint64_t event = 0, region = 0, name = 0, delta = 0, duration = 0;
      if (!reader.ReadVarint(&event) || !reader.ReadVarint(&region) ||
          !reader.ReadVarint(&name) || !reader.ReadVarint(&delta) ||
          !reader.ReadVarint(&duration)) {
        return Status::ParseError("truncated segment triplet");
      }
      if ((event >> 1) >= table.size() || name >= table.size()) {
        return Status::ParseError("segment string index out of range");
      }
      core::MobilitySemantic s;
      s.inferred = (event & 1) != 0;
      s.event = table[event >> 1];
      s.region = static_cast<dsm::RegionId>(UnZigZag(region));
      s.region_name = table[name];
      // Append only stores Valid() (begin <= end) ranges, so a negative
      // duration — or a delta/duration that overflows int64 — can only come
      // from corruption; reject it rather than indexing a range the store's
      // own ingest path would have refused.
      int64_t duration_ms = UnZigZag(duration);
      if (duration_ms < 0 ||
          __builtin_add_overflow(prev_end, UnZigZag(delta), &s.range.begin) ||
          __builtin_add_overflow(s.range.begin, duration_ms, &s.range.end)) {
        return Status::ParseError("invalid triplet time range in segment");
      }
      prev_end = s.range.end;
      seq.semantics.push_back(std::move(s));
    }
    sequences.push_back(std::move(seq));
  }
  if (!reader.Exhausted()) {
    return Status::ParseError("trailing bytes after segment body");
  }
  return sequences;
}

}  // namespace trips::store
