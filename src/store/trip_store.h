// TripStore — the persistence layer between translation and analytics: an
// append-only, segmented store of translated mobility semantics sequences
// with in-memory indexes and a query surface. The paper's point is that
// downstream analyses consume mobility semantics, not raw records; this is
// where those semantics live once a Service session has produced them.
//
//     auto stored = store::TripStore::Open({.directory = "mall_store"});
//     auto stream = service.NewStreamSession();
//     stream->SetSink(stored.ValueOrDie()->MakeSink());   // live ingestion
//     ... feed records ...
//     stored.ValueOrDie()->Flush();                       // persist + checkpoint
//
//     auto history = stored.ValueOrDie()->DeviceHistory("3a.6f.14");
//     auto lunch = stored.ValueOrDie()->RegionVisitors(adidas, t0, t1);
//     core::MobilityAnalytics a = stored.ValueOrDie()->BuildAnalytics(&dsm);
//
// On-disk layout: sealed segments are v2 (mmap-readable) blobs named
// "segment-NNNNNN.tseg" inside time-partition directories
// ("part-<bucket>/", bucket = floor(span begin / partition_ms)), with
// "MANIFEST.json" as the atomic checkpoint listing the live segments in
// append order. Open memory-maps every listed segment and reads only its
// footer + index block — device postings, region postings with time fences,
// per-segment spans and the flow matrix are all rebuilt from footers without
// decoding a single triplet column. A segment's body is materialized lazily
// on the first query that touches it, and cached. Legacy v1 segments (flat
// directory, no manifest) are still opened via a full eager decode.
//
// Background compaction merges runs of small adjacent sealed segments of one
// partition into full segments on the worker pool (inline with zero
// workers). Only adjacent segments merge, so sequence ids, index postings
// and every query result are byte-identical across compactions; the manifest
// is rewritten before the merged inputs are deleted, so a crash at any point
// reopens to a consistent checkpoint.
//
// Thread-safety: all public methods are internally synchronized (appends
// exclusive, queries shared), so one store can be fed from several stream
// sessions while serving queries; lazy materialization and compaction take
// per-segment locks under the shared query lock.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "core/analytics.h"
#include "core/session.h"
#include "obs/metrics.h"
#include "store/mmap_file.h"
#include "util/thread_pool.h"
#include "util/time_util.h"

namespace trips::store {

/// Store configuration.
struct StoreOptions {
  /// Segment directory. Empty: memory-only (Flush seals but writes nothing).
  /// Non-empty: created if missing; existing segments are loaded on Open.
  std::string directory;
  /// Sequences per segment before the active segment is sealed.
  size_t segment_max_sequences = 256;
  /// Worker threads for segment-parallel scans, Open-time decoding and
  /// background compaction (0 = everything on the calling thread).
  size_t worker_threads = 0;
  /// Memory-map sealed segments and materialize their bodies lazily on first
  /// touch. false: eager v1-style open (read + decode everything up front) —
  /// the parity reference for the mmap path. The TRIPS_STORE_NO_MMAP
  /// environment variable (any value but "0") forces false.
  bool mmap = true;
  /// Width of one time-partition directory ("part-<bucket>/"). <= 0: flat
  /// layout, every segment in the directory root, no partition pruning.
  DurationMs partition_ms = kMillisPerDay;
  /// Merge runs of small adjacent sealed segments in the background after
  /// Flush. Query results are identical either way; compaction only reduces
  /// file count and reopen cost.
  bool compaction = true;
  /// Minimum number of adjacent undersized segments before a merge is
  /// worthwhile (clamped to >= 2).
  size_t compaction_min_run = 2;
  /// Optional external pool for scans and compaction (must outlive the
  /// store). Null: the store runs its own pool with `worker_threads`
  /// workers. Lets co-located stores (cluster shards) share one pool instead
  /// of oversubscribing the host.
  util::ThreadPool* shared_pool = nullptr;
  /// Metrics registry the store records into (append/query latency, segment
  /// and byte counts — all under the "store." prefix). Null: no recording.
  /// Stores sharing a registry aggregate into the same metrics.
  std::shared_ptr<obs::MetricsRegistry> metrics;
};

/// One triplet of one device matching a RegionVisitors query.
struct RegionVisit {
  std::string device_id;
  core::MobilitySemantic visit;

  bool operator==(const RegionVisit& other) const = default;
};

/// Aggregate store counters.
struct StoreStats {
  size_t sequences = 0;
  size_t triplets = 0;
  size_t segments = 0;
  /// Segments already written to the directory.
  size_t persisted_segments = 0;
  /// Segments whose bodies are decoded in memory (lazily opened segments
  /// count only once touched).
  size_t materialized_segments = 0;
  /// Distinct time-partition buckets with at least one spanned segment.
  size_t partitions = 0;
  /// Bytes held by the region-postings append tail (zero right after a seal
  /// or an explicit index compaction).
  size_t postings_tail_bytes = 0;
  /// Devices with at least one stored sequence.
  size_t devices = 0;
  /// Union span of all stored triplets ([0,0] when empty).
  TimeRange span;
};

/// Append-only, indexed store of mobility semantics sequences.
class TripStore {
 public:
  /// Identifier of one stored sequence (its global append ordinal).
  using SequenceId = uint32_t;

  /// Opens a store: memory-only when `options.directory` is empty, otherwise
  /// loads the directory's manifest (or scans it when the manifest is
  /// missing or torn), maps every live segment and continues appending after
  /// them.
  static Result<std::unique_ptr<TripStore>> Open(StoreOptions options = {});

  ~TripStore();
  TripStore(const TripStore&) = delete;
  TripStore& operator=(const TripStore&) = delete;

  // ---- ingestion ------------------------------------------------------------

  /// Appends one sequence. Fails on an empty device id or an invalid triplet
  /// time range; triplets are indexed as given (not re-sorted).
  Result<SequenceId> Append(core::MobilitySemanticsSequence seq);

  /// Appends the final semantics of every result of a batch response.
  Status AppendResponse(const core::TranslationResponse& response);

  /// A StreamSession sink that appends every flushed result's semantics —
  /// the live-ingestion wiring:
  ///     stream->SetSink(store->MakeSink());
  /// The store must outlive the session. Append failures are counted in
  /// Stats-independent dropped_count() rather than surfaced per record.
  core::StreamSession::Sink MakeSink();

  /// Sequences a sink discarded because Append rejected them.
  size_t dropped_count() const;

  /// Seals the active segment, writes every unpersisted segment to its
  /// partition directory, checkpoints the manifest, and (when compaction is
  /// enabled) kicks a background merge of small segments. This is the
  /// store's checkpoint operation: everything appended before a returning
  /// Flush survives a crash. No-op persistence for memory-only stores.
  Status Flush();

  /// Synchronously merges small adjacent sealed segments until no eligible
  /// run remains (regardless of options.compaction). Returns the first
  /// error; already-applied merges stay applied.
  Status Compact();

  /// Blocks until the background compaction pass in flight (if any) has
  /// finished.
  void WaitForCompaction() const;

  // ---- JSON-compatible import ----------------------------------------------

  /// Imports one "<device>.result.json" result file (core::ReadResultFile).
  Result<SequenceId> ImportResultFile(const std::string& path);

  /// Imports every "*.result.json" of a directory in name order. Returns the
  /// number of sequences imported.
  Result<size_t> ImportResultDir(const std::string& dir);

  // ---- queries --------------------------------------------------------------

  /// All stored triplets of `device`, across every appended sequence, merged
  /// into one sequence sorted by begin time. Empty sequence (with the device
  /// id set) when the device is unknown.
  core::MobilitySemanticsSequence DeviceHistory(const std::string& device) const;

  /// Every stored triplet in `region` whose time range overlaps [t0, t1],
  /// sorted by (begin, device, end). Index-backed: only sequences whose
  /// region postings overlap the window are scanned (and only their segments
  /// are materialized).
  std::vector<RegionVisit> RegionVisitors(dsm::RegionId region, TimestampMs t0,
                                          TimestampMs t1) const;

  /// Transitions from `from` to `to` over consecutive triplets of stored
  /// sequences — the pairwise slice of MobilityAnalytics::FlowMatrix.
  size_t FlowBetween(dsm::RegionId from, dsm::RegionId to) const;

  /// The full region-transition matrix of the stored corpus.
  std::map<dsm::RegionId, std::map<dsm::RegionId, size_t>> FlowMatrix() const;

  /// Copies of every stored sequence whose span overlaps [t0, t1], in append
  /// order. Two-level pruning: whole time partitions outside the window are
  /// skipped first, then individual segments via their spans; only surviving
  /// segments are materialized and scanned (segment-parallel).
  std::vector<core::MobilitySemanticsSequence> SequencesInRange(
      TimestampMs t0, TimestampMs t1) const;

  /// Visits every stored sequence in append order (brute-force scans,
  /// exports). The callback must not reenter the store.
  void ForEachSequence(
      const std::function<void(SequenceId, const core::MobilitySemanticsSequence&)>&
          fn) const;

  /// Region-level analytics over the whole store, built segment-parallel
  /// (per-segment partials merged in segment order — identical to feeding
  /// every sequence to one MobilityAnalytics). `dsm` may be null.
  core::MobilityAnalytics BuildAnalytics(const dsm::Dsm* dsm = nullptr) const;

  /// Devices with stored sequences, sorted.
  std::vector<std::string> Devices() const;

  /// Aggregate counters.
  StoreStats Stats() const;

 private:
  struct Segment {
    SequenceId base = 0;          ///< id of the segment's first sequence
    uint64_t sequence_count = 0;  ///< valid even before materialization
    uint64_t triplet_count = 0;
    TimeRange span;       ///< union of member spans; meaningless without triplets
    bool has_span = false;
    bool sealed = false;
    bool persisted = false;
    int64_t partition = 0;    ///< time bucket; assigned at first spanned append
    std::string file;         ///< path relative to the directory, when persisted
    uint64_t checksum = 0;    ///< FNV-1a of the encoded blob, when persisted
    MappedFile mapping;       ///< keeps lazily decoded bytes alive

    // Lazy body: guarded by mat_mu + the materialized flag, not by the
    // store-wide lock, so readers holding the shared lock can materialize
    // different segments concurrently.
    mutable std::vector<core::MobilitySemanticsSequence> sequences;
    mutable std::atomic<bool> materialized{true};
    mutable std::mutex mat_mu;
  };
  /// Region posting: one stored sequence visiting the region, with the union
  /// time fence of its visits (queries skip sequences outside the window).
  struct RegionPosting {
    SequenceId sequence = 0;
    TimeRange fence;
  };

  /// Region -> postings in the CSR bucket idiom of dsm::SpatialIndex: one
  /// contiguous postings array grouped by region (regions/offsets/postings)
  /// plus a small append tail that is merged in amortized-O(1) compactions
  /// and forced empty at every segment seal. A region's postings scan is
  /// then one cache-dense range (plus the short tail) instead of a
  /// node-based map walk.
  struct RegionPostingsIndex {
    std::vector<dsm::RegionId> regions;   ///< ascending, unique
    std::vector<uint32_t> offsets;        ///< postings of regions[i]: [offsets[i], offsets[i+1])
    std::vector<RegionPosting> postings;  ///< grouped by region, append order within
    std::vector<std::pair<dsm::RegionId, RegionPosting>> tail;  ///< not yet merged

    /// Appends one posting (tail write; compacts when the tail outgrows a
    /// quarter of the CSR body).
    void Add(dsm::RegionId region, const RegionPosting& posting);
    /// Merges the tail into the CSR arrays (stable: append order preserved).
    void Compact();
    /// Appends `region`'s postings — CSR range first, then tail hits, which
    /// together enumerate them in append order — onto `out`.
    void CollectInto(dsm::RegionId region, std::vector<RegionPosting>* out) const;
  };

  /// Spanned segments of one time-partition bucket, with the bucket's union
  /// span for whole-partition pruning.
  struct PartitionInfo {
    std::vector<size_t> segments;  ///< indexes into segments_, ascending
    TimeRange span;
    bool has_span = false;
  };

  /// One planned background merge, captured while holding the writer lock.
  struct PendingCompaction {
    size_t begin = 0;  ///< segment index range [begin, end) to merge
    size_t end = 0;
    SequenceId base = 0;
    int64_t partition = 0;
    std::string file;  ///< reserved output path, relative to the directory
  };

  /// Resolved "store." metric pointers (all null when options.metrics is).
  struct StoreMetrics {
    obs::Histogram* append_ns = nullptr;   ///< Append call wall time
    obs::Counter* appended_sequences = nullptr;
    obs::Counter* appended_triplets = nullptr;
    obs::Histogram* query_ns = nullptr;    ///< any public query's wall time
    obs::Counter* queries = nullptr;
    obs::Gauge* segments = nullptr;        ///< segments held (incl. active)
    obs::Gauge* persisted_segments = nullptr;
    obs::Counter* persisted_bytes = nullptr;  ///< encoded blob bytes written
    obs::Counter* mapped_segments = nullptr;  ///< segments opened via footer only
    obs::Counter* materializations = nullptr;  ///< lazy body decodes performed
    obs::Counter* decode_errors = nullptr;     ///< bodies that failed to decode
    obs::Counter* dropped_segments = nullptr;  ///< corrupt segments skipped at Open
    obs::Counter* compactions = nullptr;       ///< merges applied
    obs::Counter* compacted_segments = nullptr;  ///< inputs consumed by merges
    obs::Counter* manifest_writes = nullptr;
  };

  explicit TripStore(StoreOptions options);

  struct PendingLoad;  // one pre-validated segment file during Open

  int64_t PartitionBucket(TimestampMs t) const;
  std::string PartitionedFileName(int64_t partition, size_t file_index) const;

  Status LoadDirectoryLocked();
  Status ScanDirectoryLocked();
  struct StagedSegmentIndex;

  Result<PendingLoad> MapSegmentFile(const std::string& relative) const;
  void AttachLoadedLocked(PendingLoad load);
  /// Applies every staged segment footer to the in-memory indexes (device
  /// map, region postings, flow matrix). Cheap no-op once hydrated.
  void HydrateIndexes() const;
  void HydrateIndexesLocked();
  void SealSegmentLocked(Segment& segment);
  Status PersistSegmentLocked(size_t segment_index);
  Status WriteManifestLocked();
  void RebuildPartitionIndexLocked();
  void NoteSegmentSpanLocked(size_t segment_index);
  void EnsureMaterialized(const Segment& segment) const;
  void IndexSequenceLocked(SequenceId id, const core::MobilitySemanticsSequence& seq);
  void AddToLastSegmentLocked(core::MobilitySemanticsSequence seq);
  Result<SequenceId> AppendLocked(core::MobilitySemanticsSequence seq);
  const core::MobilitySemanticsSequence& SequenceLocked(SequenceId id) const;
  void AddFlowLocked(dsm::RegionId from, dsm::RegionId to, size_t count);

  void MaybeScheduleCompaction(bool force);
  bool PrepareCompactionLocked(PendingCompaction* out);
  Status ExecuteCompaction(const PendingCompaction& pending);
  void CompactionWorker();

  StoreOptions options_;
  StoreMetrics metrics_;  // resolved once at construction
  mutable util::ThreadPool own_pool_;
  util::ThreadPool* pool_;  ///< options_.shared_pool or &own_pool_
  mutable std::shared_mutex mu_;
  std::vector<std::unique_ptr<Segment>> segments_;
  size_t next_file_index_ = 0;
  /// Region ids below this use the dense flow rows; anything else (negative
  /// ids other than kInvalidRegion, or absurdly large ones from hand-written
  /// imports) falls back to the sparse overflow map, so a stray id can never
  /// force a giant row allocation — the old map-of-maps accepted any id.
  static constexpr dsm::RegionId kDenseFlowLimit = 1 << 14;

  // Indexes (all guarded by mu_: appends/compactions exclusive, reads shared).
  //
  // After an Open the indexes are NOT built yet: each loaded segment's footer
  // is parked in staged_index_ and the first call that actually reads an
  // index — or the first append, which must extend it — hydrates them all in
  // one bulk pass (HydrateIndexes). Span-pruned scans like SequencesInRange
  // never touch the indexes, so a cold open followed by a window query pays
  // for neither index construction nor body decode outside the window.
  std::vector<std::unique_ptr<StagedSegmentIndex>> staged_index_;
  mutable std::atomic<bool> indexes_ready_{true};
  std::map<std::string, std::vector<SequenceId>> device_index_;
  RegionPostingsIndex region_index_;
  /// Partition bucket -> spanned member segments (two-level range pruning).
  std::map<int64_t, PartitionInfo> partition_index_;
  // Flow matrix as flat per-source rows (row = contiguous counts indexed by
  // destination region id) instead of nested maps: FlowBetween is two bounds
  // checks + one load, FlowMatrix one dense sweep. Out-of-band ids live in
  // flow_overflow_.
  std::vector<std::vector<size_t>> flow_;
  std::map<std::pair<dsm::RegionId, dsm::RegionId>, size_t> flow_overflow_;
  size_t triplet_count_ = 0;
  size_t sequence_count_ = 0;
  size_t dropped_ = 0;

  // Background compaction state (own mutex: RunCompaction signals completion
  // without holding mu_; lock order is always mu_ before compaction_mu_).
  mutable std::mutex compaction_mu_;
  mutable std::condition_variable compaction_cv_;
  bool compaction_inflight_ = false;
  Status compaction_error_;  ///< first failure of the current/last pass
};

}  // namespace trips::store
