// TripStore — the persistence layer between translation and analytics: an
// append-only, segmented store of translated mobility semantics sequences
// with in-memory indexes and a query surface. The paper's point is that
// downstream analyses consume mobility semantics, not raw records; this is
// where those semantics live once a Service session has produced them.
//
//     auto stored = store::TripStore::Open({.directory = "mall_store"});
//     auto stream = service.NewStreamSession();
//     stream->SetSink(stored.ValueOrDie()->MakeSink());   // live ingestion
//     ... feed records ...
//     stored.ValueOrDie()->Flush();                       // persist segments
//
//     auto history = stored.ValueOrDie()->DeviceHistory("3a.6f.14");
//     auto lunch = stored.ValueOrDie()->RegionVisitors(adidas, t0, t1);
//     core::MobilityAnalytics a = stored.ValueOrDie()->BuildAnalytics(&dsm);
//
// Layout: sequences are appended to an active segment; full (or flushed)
// segments are sealed and, when the store has a directory, written once as
// "segment-NNNNNN.tseg" blobs in the binary segment codec. Indexes — device
// -> sequence postings, region -> visiting-sequence postings with time
// fences, per-segment time spans, and a running region-flow matrix — are
// built at ingest and rebuilt on Open. Scans fan out over the segments on an
// internal util::ThreadPool.
//
// Thread-safety: all public methods are internally synchronized (appends
// exclusive, queries shared), so one store can be fed from several stream
// sessions while serving queries.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "core/analytics.h"
#include "core/session.h"
#include "obs/metrics.h"
#include "util/thread_pool.h"

namespace trips::store {

/// Store configuration.
struct StoreOptions {
  /// Segment directory. Empty: memory-only (Flush seals but writes nothing).
  /// Non-empty: created if missing; existing segments are loaded on Open.
  std::string directory;
  /// Sequences per segment before the active segment is sealed.
  size_t segment_max_sequences = 256;
  /// Worker threads for segment-parallel scans and Open-time decoding
  /// (0 = everything on the calling thread).
  size_t worker_threads = 0;
  /// Metrics registry the store records into (append/query latency, segment
  /// and byte counts — all under the "store." prefix). Null: no recording.
  /// Stores sharing a registry aggregate into the same metrics.
  std::shared_ptr<obs::MetricsRegistry> metrics;
};

/// One triplet of one device matching a RegionVisitors query.
struct RegionVisit {
  std::string device_id;
  core::MobilitySemantic visit;

  bool operator==(const RegionVisit& other) const = default;
};

/// Aggregate store counters.
struct StoreStats {
  size_t sequences = 0;
  size_t triplets = 0;
  size_t segments = 0;
  /// Segments already written to the directory.
  size_t persisted_segments = 0;
  /// Devices with at least one stored sequence.
  size_t devices = 0;
  /// Union span of all stored triplets ([0,0] when empty).
  TimeRange span;
};

/// Append-only, indexed store of mobility semantics sequences.
class TripStore {
 public:
  /// Identifier of one stored sequence (its global append ordinal).
  using SequenceId = uint32_t;

  /// Opens a store: memory-only when `options.directory` is empty, otherwise
  /// loads every existing segment of the directory (decoded segment-parallel)
  /// and continues appending after them.
  static Result<std::unique_ptr<TripStore>> Open(StoreOptions options = {});

  ~TripStore();
  TripStore(const TripStore&) = delete;
  TripStore& operator=(const TripStore&) = delete;

  // ---- ingestion ------------------------------------------------------------

  /// Appends one sequence. Fails on an empty device id or an invalid triplet
  /// time range; triplets are indexed as given (not re-sorted).
  Result<SequenceId> Append(core::MobilitySemanticsSequence seq);

  /// Appends the final semantics of every result of a batch response.
  Status AppendResponse(const core::TranslationResponse& response);

  /// A StreamSession sink that appends every flushed result's semantics —
  /// the live-ingestion wiring:
  ///     stream->SetSink(store->MakeSink());
  /// The store must outlive the session. Append failures are counted in
  /// Stats-independent dropped_count() rather than surfaced per record.
  core::StreamSession::Sink MakeSink();

  /// Sequences a sink discarded because Append rejected them.
  size_t dropped_count() const;

  /// Seals the active segment and writes every unpersisted segment to the
  /// directory (no-op persistence for memory-only stores).
  Status Flush();

  // ---- JSON-compatible import ----------------------------------------------

  /// Imports one "<device>.result.json" result file (core::ReadResultFile).
  Result<SequenceId> ImportResultFile(const std::string& path);

  /// Imports every "*.result.json" of a directory in name order. Returns the
  /// number of sequences imported.
  Result<size_t> ImportResultDir(const std::string& dir);

  // ---- queries --------------------------------------------------------------

  /// All stored triplets of `device`, across every appended sequence, merged
  /// into one sequence sorted by begin time. Empty sequence (with the device
  /// id set) when the device is unknown.
  core::MobilitySemanticsSequence DeviceHistory(const std::string& device) const;

  /// Every stored triplet in `region` whose time range overlaps [t0, t1],
  /// sorted by (begin, device, end). Index-backed: only sequences whose
  /// region postings overlap the window are scanned.
  std::vector<RegionVisit> RegionVisitors(dsm::RegionId region, TimestampMs t0,
                                          TimestampMs t1) const;

  /// Transitions from `from` to `to` over consecutive triplets of stored
  /// sequences — the pairwise slice of MobilityAnalytics::FlowMatrix.
  size_t FlowBetween(dsm::RegionId from, dsm::RegionId to) const;

  /// The full region-transition matrix of the stored corpus.
  std::map<dsm::RegionId, std::map<dsm::RegionId, size_t>> FlowMatrix() const;

  /// Copies of every stored sequence whose span overlaps [t0, t1], in append
  /// order. Segment-parallel: segments outside the window are skipped via
  /// their time fences.
  std::vector<core::MobilitySemanticsSequence> SequencesInRange(
      TimestampMs t0, TimestampMs t1) const;

  /// Visits every stored sequence in append order (brute-force scans,
  /// exports). The callback must not reenter the store.
  void ForEachSequence(
      const std::function<void(SequenceId, const core::MobilitySemanticsSequence&)>&
          fn) const;

  /// Region-level analytics over the whole store, built segment-parallel
  /// (per-segment partials merged in segment order — identical to feeding
  /// every sequence to one MobilityAnalytics). `dsm` may be null.
  core::MobilityAnalytics BuildAnalytics(const dsm::Dsm* dsm = nullptr) const;

  /// Devices with stored sequences, sorted.
  std::vector<std::string> Devices() const;

  /// Aggregate counters.
  StoreStats Stats() const;

 private:
  struct Segment {
    SequenceId base = 0;  // id of sequences.front()
    std::vector<core::MobilitySemanticsSequence> sequences;
    TimeRange span;       // union of member spans; meaningless when no triplets
    bool has_span = false;
    bool sealed = false;
    bool persisted = false;
  };
  /// Region posting: one stored sequence visiting the region, with the union
  /// time fence of its visits (queries skip sequences outside the window).
  struct RegionPosting {
    SequenceId sequence = 0;
    TimeRange fence;
  };

  /// Region -> postings in the CSR bucket idiom of dsm::SpatialIndex: one
  /// contiguous postings array grouped by region (regions/offsets/postings)
  /// plus a small append tail that is merged in amortized-O(1) compactions.
  /// A region's postings scan is then one cache-dense range (plus the short
  /// tail) instead of a node-based map walk.
  struct RegionPostingsIndex {
    std::vector<dsm::RegionId> regions;   ///< ascending, unique
    std::vector<uint32_t> offsets;        ///< postings of regions[i]: [offsets[i], offsets[i+1])
    std::vector<RegionPosting> postings;  ///< grouped by region, append order within
    std::vector<std::pair<dsm::RegionId, RegionPosting>> tail;  ///< not yet merged

    /// Appends one posting (tail write; compacts when the tail outgrows a
    /// quarter of the CSR body).
    void Add(dsm::RegionId region, const RegionPosting& posting);
    /// Merges the tail into the CSR arrays (stable: append order preserved).
    void Compact();
    /// Appends `region`'s postings — CSR range first, then tail hits, which
    /// together enumerate them in append order — onto `out`.
    void CollectInto(dsm::RegionId region, std::vector<RegionPosting>* out) const;
  };

  /// Resolved "store." metric pointers (all null when options.metrics is).
  struct StoreMetrics {
    obs::Histogram* append_ns = nullptr;   ///< Append call wall time
    obs::Counter* appended_sequences = nullptr;
    obs::Counter* appended_triplets = nullptr;
    obs::Histogram* query_ns = nullptr;    ///< any public query's wall time
    obs::Counter* queries = nullptr;
    obs::Gauge* segments = nullptr;        ///< segments held (incl. active)
    obs::Gauge* persisted_segments = nullptr;
    obs::Counter* persisted_bytes = nullptr;  ///< encoded blob bytes written
  };

  explicit TripStore(StoreOptions options);

  Status LoadDirectoryLocked();
  Status PersistSegmentLocked(size_t segment_index);
  void IndexSequenceLocked(SequenceId id, const core::MobilitySemanticsSequence& seq);
  void AddToLastSegmentLocked(core::MobilitySemanticsSequence seq);
  Result<SequenceId> AppendLocked(core::MobilitySemanticsSequence seq);
  const core::MobilitySemanticsSequence& SequenceLocked(SequenceId id) const;
  void BumpFlowLocked(dsm::RegionId from, dsm::RegionId to);

  StoreOptions options_;
  StoreMetrics metrics_;  // resolved once at construction
  mutable util::ThreadPool pool_;
  mutable std::shared_mutex mu_;
  std::vector<Segment> segments_;
  size_t next_file_index_ = 0;
  /// Region ids below this use the dense flow rows; anything else (negative
  /// ids other than kInvalidRegion, or absurdly large ones from hand-written
  /// imports) falls back to the sparse overflow map, so a stray id can never
  /// force a giant row allocation — the old map-of-maps accepted any id.
  static constexpr dsm::RegionId kDenseFlowLimit = 1 << 14;

  // Indexes (all guarded by mu_: appends/compactions exclusive, reads shared).
  std::map<std::string, std::vector<SequenceId>> device_index_;
  RegionPostingsIndex region_index_;
  // Flow matrix as flat per-source rows (row = contiguous counts indexed by
  // destination region id) instead of nested maps: FlowBetween is two bounds
  // checks + one load, FlowMatrix one dense sweep. Out-of-band ids live in
  // flow_overflow_.
  std::vector<std::vector<size_t>> flow_;
  std::map<std::pair<dsm::RegionId, dsm::RegionId>, size_t> flow_overflow_;
  size_t triplet_count_ = 0;
  size_t sequence_count_ = 0;
  size_t dropped_ = 0;
};

}  // namespace trips::store
