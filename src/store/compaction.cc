#include "store/compaction.h"

namespace trips::store {

CompactionPlan PlanCompaction(const std::vector<CompactionCandidate>& candidates,
                              uint64_t max_sequences, size_t min_run) {
  if (min_run < 2) min_run = 2;
  size_t i = 0;
  while (i < candidates.size()) {
    const CompactionCandidate& head = candidates[i];
    if (!head.eligible || head.sequences >= max_sequences) {
      ++i;
      continue;
    }
    // Greedily extend the run while the merge still fits one full segment.
    uint64_t total = head.sequences;
    size_t j = i + 1;
    while (j < candidates.size() && candidates[j].eligible &&
           candidates[j].partition == head.partition &&
           candidates[j].sequences < max_sequences &&
           total + candidates[j].sequences <= max_sequences) {
      total += candidates[j].sequences;
      ++j;
    }
    if (j - i >= min_run) return {i, j};
    // A run headed inside [i, j) can still succeed when this one stopped on
    // capacity (dropping the head frees budget), so only advance one slot.
    ++i;
  }
  return {};
}

}  // namespace trips::store
