// Read-only memory-mapped file for the TripStore's zero-copy segment reads:
// Open maps every sealed segment and decodes lazily from the mapped bytes, so
// cold-open cost is paged in on demand instead of read+decoded up front. On
// platforms without mmap (or when mapping fails) Map falls back to reading
// the file into an owned buffer — the view contract is identical, only the
// paging behaviour differs.
#pragma once

#include <string>
#include <string_view>

#include "util/result.h"

namespace trips::store {

/// Move-only RAII handle over one read-only file mapping (or its read-into-
/// memory fallback). The view stays valid for the lifetime of the handle.
class MappedFile {
 public:
  /// Maps `path` read-only. Empty files yield a valid handle with an empty
  /// view. Fails with IOError when the file cannot be opened or statted.
  static Result<MappedFile> Map(const std::string& path);

  MappedFile() = default;
  MappedFile(MappedFile&& other) noexcept { *this = std::move(other); }
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile();

  /// The file's bytes. Empty for a default-constructed handle.
  std::string_view view() const {
    return data_ != nullptr ? std::string_view(data_, size_)
                            : std::string_view(fallback_);
  }

  /// True when the bytes are an actual kernel mapping (false for the owned-
  /// buffer fallback and for default-constructed handles).
  bool mapped() const { return data_ != nullptr; }

 private:
  const char* data_ = nullptr;  ///< mmap base (null: fallback_ owns the bytes)
  size_t size_ = 0;
  std::string fallback_;
};

}  // namespace trips::store
