#include "store/trip_store.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/result_io.h"
#include "store/segment_codec.h"
#include "util/string_util.h"

namespace trips::store {

namespace {

constexpr const char* kSegmentPrefix = "segment-";
constexpr const char* kSegmentSuffix = ".tseg";

std::string SegmentFileName(size_t index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s%06zu%s", kSegmentPrefix, index,
                kSegmentSuffix);
  return buf;
}

// Parses "segment-NNNNNN.tseg" -> NNNNNN; false for foreign files.
bool ParseSegmentFileName(const std::string& name, size_t* index) {
  size_t prefix = std::string_view(kSegmentPrefix).size();
  size_t suffix = std::string_view(kSegmentSuffix).size();
  if (name.size() <= prefix + suffix || !StartsWith(name, kSegmentPrefix) ||
      !EndsWith(name, kSegmentSuffix)) {
    return false;
  }
  size_t value = 0;
  for (size_t i = prefix; i < name.size() - suffix; ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    value = value * 10 + static_cast<size_t>(name[i] - '0');
  }
  *index = value;
  return true;
}

void GrowSpan(TimeRange* span, bool* has_span, const TimeRange& range) {
  if (!*has_span) {
    *span = range;
    *has_span = true;
    return;
  }
  span->begin = std::min(span->begin, range.begin);
  span->end = std::max(span->end, range.end);
}

}  // namespace

// ---- RegionPostingsIndex ----------------------------------------------------

void TripStore::RegionPostingsIndex::Add(dsm::RegionId region,
                                         const RegionPosting& posting) {
  tail.emplace_back(region, posting);
  // Compact once the tail outgrows a quarter of the CSR body (amortized O(1)
  // per append); the floor keeps tiny stores from compacting on every write.
  constexpr size_t kMinCompactTail = 64;
  if (tail.size() >= kMinCompactTail && tail.size() * 4 >= postings.size()) {
    Compact();
  }
}

void TripStore::RegionPostingsIndex::Compact() {
  if (tail.empty()) return;
  // Stable by region: postings of one region keep their append order, so the
  // merged CSR enumerates exactly what the old per-region vectors held.
  std::stable_sort(tail.begin(), tail.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });

  std::vector<dsm::RegionId> merged_regions;
  std::vector<uint32_t> merged_offsets;
  std::vector<RegionPosting> merged_postings;
  merged_regions.reserve(regions.size() + tail.size());
  merged_offsets.reserve(regions.size() + tail.size() + 1);
  merged_postings.reserve(postings.size() + tail.size());

  size_t ri = 0;  // cursor over the existing CSR regions
  size_t ti = 0;  // cursor over the sorted tail
  merged_offsets.push_back(0);
  while (ri < regions.size() || ti < tail.size()) {
    dsm::RegionId next;
    if (ri == regions.size()) {
      next = tail[ti].first;
    } else if (ti == tail.size()) {
      next = regions[ri];
    } else {
      next = std::min(regions[ri], tail[ti].first);
    }
    if (ri < regions.size() && regions[ri] == next) {
      merged_postings.insert(merged_postings.end(),
                             postings.begin() + offsets[ri],
                             postings.begin() + offsets[ri + 1]);
      ++ri;
    }
    while (ti < tail.size() && tail[ti].first == next) {
      merged_postings.push_back(tail[ti].second);
      ++ti;
    }
    merged_regions.push_back(next);
    merged_offsets.push_back(static_cast<uint32_t>(merged_postings.size()));
  }
  regions = std::move(merged_regions);
  offsets = std::move(merged_offsets);
  postings = std::move(merged_postings);
  tail.clear();
}

void TripStore::RegionPostingsIndex::CollectInto(
    dsm::RegionId region, std::vector<RegionPosting>* out) const {
  auto it = std::lower_bound(regions.begin(), regions.end(), region);
  if (it != regions.end() && *it == region) {
    size_t i = static_cast<size_t>(it - regions.begin());
    out->insert(out->end(), postings.begin() + offsets[i],
                postings.begin() + offsets[i + 1]);
  }
  for (const auto& [r, posting] : tail) {
    if (r == region) out->push_back(posting);
  }
}

// ---- TripStore --------------------------------------------------------------

TripStore::TripStore(StoreOptions options)
    : options_(std::move(options)), pool_(options_.worker_threads) {
  if (options_.metrics != nullptr) {
    obs::MetricsRegistry& reg = *options_.metrics;
    metrics_.append_ns = reg.histogram("store.append_ns");
    metrics_.appended_sequences = reg.counter("store.appended_sequences");
    metrics_.appended_triplets = reg.counter("store.appended_triplets");
    metrics_.query_ns = reg.histogram("store.query_ns");
    metrics_.queries = reg.counter("store.queries");
    metrics_.segments = reg.gauge("store.segments");
    metrics_.persisted_segments = reg.gauge("store.persisted_segments");
    metrics_.persisted_bytes = reg.counter("store.persisted_bytes");
  }
}

TripStore::~TripStore() = default;

Result<std::unique_ptr<TripStore>> TripStore::Open(StoreOptions options) {
  if (options.segment_max_sequences == 0) {
    return Status::InvalidArgument("segment_max_sequences must be positive");
  }
  std::unique_ptr<TripStore> store(new TripStore(std::move(options)));
  if (!store->options_.directory.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(store->options_.directory, ec);
    if (ec) {
      return Status::IOError("cannot create store directory " +
                             store->options_.directory + ": " + ec.message());
    }
    std::unique_lock lock(store->mu_);
    TRIPS_RETURN_NOT_OK(store->LoadDirectoryLocked());
  }
  return store;
}

Status TripStore::LoadDirectoryLocked() {
  std::vector<std::pair<size_t, std::filesystem::path>> files;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(options_.directory, ec)) {
    size_t index = 0;
    if (!entry.is_regular_file()) continue;
    if (!ParseSegmentFileName(entry.path().filename().string(), &index)) continue;
    files.emplace_back(index, entry.path());
  }
  if (ec) {
    return Status::IOError("cannot list store directory " + options_.directory +
                           ": " + ec.message());
  }
  std::sort(files.begin(), files.end());

  // Read serially (IO), decode segment-parallel, then index in file order so
  // sequence ids are deterministic.
  std::vector<std::string> blobs(files.size());
  for (size_t i = 0; i < files.size(); ++i) {
    std::ifstream in(files[i].second, std::ios::binary);
    if (!in) {
      return Status::IOError("cannot read segment " + files[i].second.string());
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    blobs[i] = std::move(buffer).str();
  }
  std::vector<Result<std::vector<core::MobilitySemanticsSequence>>> decoded(
      blobs.size(), std::vector<core::MobilitySemanticsSequence>{});
  pool_.ParallelFor(blobs.size(),
                    [&](size_t i) { decoded[i] = DecodeSegment(blobs[i]); });
  for (size_t i = 0; i < decoded.size(); ++i) {
    if (!decoded[i].ok()) {
      return Status(decoded[i].status().code(), files[i].second.string() + ": " +
                                                    decoded[i].status().message());
    }
    next_file_index_ = std::max(next_file_index_, files[i].first + 1);
    std::vector<core::MobilitySemanticsSequence> sequences =
        std::move(decoded[i]).ValueOrDie();
    if (sequences.empty()) continue;
    Segment segment;
    segment.base = static_cast<SequenceId>(sequence_count_);
    segment.sealed = true;
    segment.persisted = true;
    segments_.push_back(std::move(segment));
    if (metrics_.segments != nullptr) metrics_.segments->Add(1);
    if (metrics_.persisted_segments != nullptr) {
      metrics_.persisted_segments->Add(1);
    }
    for (core::MobilitySemanticsSequence& seq : sequences) {
      AddToLastSegmentLocked(std::move(seq));
    }
  }
  return Status::OK();
}

void TripStore::AddToLastSegmentLocked(core::MobilitySemanticsSequence seq) {
  Segment& segment = segments_.back();
  segment.sequences.push_back(std::move(seq));
  const core::MobilitySemanticsSequence& stored = segment.sequences.back();
  for (const core::MobilitySemantic& s : stored.semantics) {
    GrowSpan(&segment.span, &segment.has_span, s.range);
  }
  IndexSequenceLocked(static_cast<SequenceId>(sequence_count_), stored);
  ++sequence_count_;
}

Result<TripStore::SequenceId> TripStore::AppendLocked(
    core::MobilitySemanticsSequence seq) {
  if (segments_.empty() || segments_.back().sealed ||
      segments_.back().sequences.size() >= options_.segment_max_sequences) {
    if (!segments_.empty()) segments_.back().sealed = true;
    Segment segment;
    segment.base = static_cast<SequenceId>(sequence_count_);
    segments_.push_back(std::move(segment));
    if (metrics_.segments != nullptr) metrics_.segments->Add(1);
  }
  SequenceId id = static_cast<SequenceId>(sequence_count_);
  AddToLastSegmentLocked(std::move(seq));
  return id;
}

void TripStore::BumpFlowLocked(dsm::RegionId from, dsm::RegionId to) {
  if (from < 0 || from >= kDenseFlowLimit || to < 0 || to >= kDenseFlowLimit) {
    ++flow_overflow_[{from, to}];
    return;
  }
  size_t row = static_cast<size_t>(from);
  size_t col = static_cast<size_t>(to);
  if (row >= flow_.size()) flow_.resize(row + 1);
  if (col >= flow_[row].size()) flow_[row].resize(col + 1, 0);
  ++flow_[row][col];
}

void TripStore::IndexSequenceLocked(SequenceId id,
                                    const core::MobilitySemanticsSequence& seq) {
  device_index_[seq.device_id].push_back(id);
  std::map<dsm::RegionId, TimeRange> fences;
  dsm::RegionId prev = dsm::kInvalidRegion;
  for (const core::MobilitySemantic& s : seq.semantics) {
    ++triplet_count_;
    if (s.region == dsm::kInvalidRegion) continue;
    auto [it, inserted] = fences.try_emplace(s.region, s.range);
    if (!inserted) {
      it->second.begin = std::min(it->second.begin, s.range.begin);
      it->second.end = std::max(it->second.end, s.range.end);
    }
    if (prev != dsm::kInvalidRegion && prev != s.region) BumpFlowLocked(prev, s.region);
    prev = s.region;
  }
  for (const auto& [region, fence] : fences) {
    region_index_.Add(region, {id, fence});
  }
}

Result<TripStore::SequenceId> TripStore::Append(
    core::MobilitySemanticsSequence seq) {
  if (seq.device_id.empty()) {
    return Status::InvalidArgument("stored sequence needs a device id");
  }
  for (const core::MobilitySemantic& s : seq.semantics) {
    if (!s.range.Valid()) {
      return Status::InvalidArgument("invalid triplet time range for device " +
                                     seq.device_id);
    }
  }
  obs::StageTimer append_timer(metrics_.append_ns);
  size_t triplets = seq.semantics.size();
  std::unique_lock lock(mu_);
  Result<SequenceId> id = AppendLocked(std::move(seq));
  if (id.ok()) {
    if (metrics_.appended_sequences != nullptr) {
      metrics_.appended_sequences->Add(1);
    }
    if (metrics_.appended_triplets != nullptr) {
      metrics_.appended_triplets->Add(triplets);
    }
  }
  return id;
}

Status TripStore::AppendResponse(const core::TranslationResponse& response) {
  for (const core::TranslationResult& result : response.results) {
    TRIPS_RETURN_NOT_OK(Append(result.semantics).status());
  }
  return Status::OK();
}

core::StreamSession::Sink TripStore::MakeSink() {
  return [this](core::TranslationResult result) {
    if (!Append(std::move(result.semantics)).ok()) {
      std::unique_lock lock(mu_);
      ++dropped_;
    }
  };
}

size_t TripStore::dropped_count() const {
  std::shared_lock lock(mu_);
  return dropped_;
}

Status TripStore::PersistSegmentLocked(size_t segment_index) {
  Segment& segment = segments_[segment_index];
  std::string blob = EncodeSegment(segment.sequences);
  std::filesystem::path path =
      std::filesystem::path(options_.directory) / SegmentFileName(next_file_index_);
  // Write to a temp name and rename into place, so a crash mid-write leaves a
  // stray ".tmp" (ignored by ParseSegmentFileName on load) instead of a
  // truncated segment that would make the whole store unopenable.
  std::filesystem::path tmp = path;
  tmp += ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::IOError("cannot open " + tmp.string() + " for writing");
    }
    out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
    out.flush();
    if (!out) {
      return Status::IOError("short write to " + tmp.string());
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::string message = ec.message();
    std::filesystem::remove(tmp, ec);
    return Status::IOError("cannot finalize " + path.string() + ": " + message);
  }
  ++next_file_index_;
  segment.persisted = true;
  if (metrics_.persisted_segments != nullptr) {
    metrics_.persisted_segments->Add(1);
  }
  if (metrics_.persisted_bytes != nullptr) {
    metrics_.persisted_bytes->Add(blob.size());
  }
  return Status::OK();
}

Status TripStore::Flush() {
  std::unique_lock lock(mu_);
  if (!segments_.empty() && !segments_.back().sequences.empty()) {
    segments_.back().sealed = true;
  }
  if (options_.directory.empty()) return Status::OK();
  for (size_t i = 0; i < segments_.size(); ++i) {
    if (segments_[i].persisted || !segments_[i].sealed) continue;
    TRIPS_RETURN_NOT_OK(PersistSegmentLocked(i));
  }
  return Status::OK();
}

Result<TripStore::SequenceId> TripStore::ImportResultFile(const std::string& path) {
  TRIPS_ASSIGN_OR_RETURN(core::MobilitySemanticsSequence seq,
                         core::ReadResultFile(path));
  return Append(std::move(seq));
}

Result<size_t> TripStore::ImportResultDir(const std::string& dir) {
  constexpr const char* kResultSuffix = ".result.json";
  std::vector<std::filesystem::path> paths;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    std::string name = entry.path().filename().string();
    if (name.size() <= std::string_view(kResultSuffix).size() ||
        !EndsWith(name, kResultSuffix)) {
      continue;
    }
    paths.push_back(entry.path());
  }
  if (ec) {
    return Status::IOError("cannot list result directory " + dir + ": " +
                           ec.message());
  }
  std::sort(paths.begin(), paths.end());
  for (const std::filesystem::path& path : paths) {
    TRIPS_RETURN_NOT_OK(ImportResultFile(path.string()).status());
  }
  return paths.size();
}

const core::MobilitySemanticsSequence& TripStore::SequenceLocked(
    SequenceId id) const {
  // Last segment whose base <= id.
  auto it = std::upper_bound(
      segments_.begin(), segments_.end(), id,
      [](SequenceId value, const Segment& s) { return value < s.base; });
  const Segment& segment = *std::prev(it);
  return segment.sequences[id - segment.base];
}

core::MobilitySemanticsSequence TripStore::DeviceHistory(
    const std::string& device) const {
  obs::StageTimer query_timer(metrics_.query_ns);
  if (metrics_.queries != nullptr) metrics_.queries->Add(1);
  std::shared_lock lock(mu_);
  core::MobilitySemanticsSequence history;
  history.device_id = device;
  auto it = device_index_.find(device);
  if (it == device_index_.end()) return history;
  for (SequenceId id : it->second) {
    const core::MobilitySemanticsSequence& seq = SequenceLocked(id);
    history.semantics.insert(history.semantics.end(), seq.semantics.begin(),
                             seq.semantics.end());
  }
  history.SortByTime();
  return history;
}

std::vector<RegionVisit> TripStore::RegionVisitors(dsm::RegionId region,
                                                   TimestampMs t0,
                                                   TimestampMs t1) const {
  obs::StageTimer query_timer(metrics_.query_ns);
  if (metrics_.queries != nullptr) metrics_.queries->Add(1);
  std::shared_lock lock(mu_);
  TimeRange window{t0, t1};
  std::vector<RegionVisit> visits;
  std::vector<RegionPosting> postings;
  region_index_.CollectInto(region, &postings);
  if (postings.empty()) return visits;
  std::vector<std::vector<RegionVisit>> partial(postings.size());
  pool_.ParallelFor(postings.size(), [&](size_t i) {
    const RegionPosting& posting = postings[i];
    if (!posting.fence.Overlaps(window)) return;
    const core::MobilitySemanticsSequence& seq = SequenceLocked(posting.sequence);
    for (const core::MobilitySemantic& s : seq.semantics) {
      if (s.region != region || !s.range.Overlaps(window)) continue;
      partial[i].push_back({seq.device_id, s});
    }
  });
  for (std::vector<RegionVisit>& p : partial) {
    visits.insert(visits.end(), std::make_move_iterator(p.begin()),
                  std::make_move_iterator(p.end()));
  }
  std::sort(visits.begin(), visits.end(),
            [](const RegionVisit& a, const RegionVisit& b) {
              if (a.visit.range.begin != b.visit.range.begin) {
                return a.visit.range.begin < b.visit.range.begin;
              }
              if (a.device_id != b.device_id) return a.device_id < b.device_id;
              return a.visit.range.end < b.visit.range.end;
            });
  return visits;
}

size_t TripStore::FlowBetween(dsm::RegionId from, dsm::RegionId to) const {
  obs::StageTimer query_timer(metrics_.query_ns);
  if (metrics_.queries != nullptr) metrics_.queries->Add(1);
  std::shared_lock lock(mu_);
  if (from < 0 || from >= kDenseFlowLimit || to < 0 || to >= kDenseFlowLimit) {
    auto it = flow_overflow_.find({from, to});
    return it == flow_overflow_.end() ? 0 : it->second;
  }
  size_t row = static_cast<size_t>(from);
  size_t col = static_cast<size_t>(to);
  if (row >= flow_.size() || col >= flow_[row].size()) return 0;
  return flow_[row][col];
}

std::map<dsm::RegionId, std::map<dsm::RegionId, size_t>> TripStore::FlowMatrix()
    const {
  obs::StageTimer query_timer(metrics_.query_ns);
  if (metrics_.queries != nullptr) metrics_.queries->Add(1);
  std::shared_lock lock(mu_);
  // The public shape stays the nested map; only observed transitions appear,
  // exactly as the former map-of-maps accumulated them.
  std::map<dsm::RegionId, std::map<dsm::RegionId, size_t>> out;
  for (size_t row = 0; row < flow_.size(); ++row) {
    for (size_t col = 0; col < flow_[row].size(); ++col) {
      if (flow_[row][col] > 0) {
        out[static_cast<dsm::RegionId>(row)][static_cast<dsm::RegionId>(col)] =
            flow_[row][col];
      }
    }
  }
  for (const auto& [pair, count] : flow_overflow_) {
    out[pair.first][pair.second] = count;
  }
  return out;
}

std::vector<core::MobilitySemanticsSequence> TripStore::SequencesInRange(
    TimestampMs t0, TimestampMs t1) const {
  obs::StageTimer query_timer(metrics_.query_ns);
  if (metrics_.queries != nullptr) metrics_.queries->Add(1);
  std::shared_lock lock(mu_);
  TimeRange window{t0, t1};
  std::vector<std::vector<core::MobilitySemanticsSequence>> partial(
      segments_.size());
  pool_.ParallelFor(segments_.size(), [&](size_t i) {
    const Segment& segment = segments_[i];
    if (!segment.has_span || !segment.span.Overlaps(window)) return;
    for (const core::MobilitySemanticsSequence& seq : segment.sequences) {
      bool overlaps = false;
      for (const core::MobilitySemantic& s : seq.semantics) {
        if (s.range.Overlaps(window)) {
          overlaps = true;
          break;
        }
      }
      if (overlaps) partial[i].push_back(seq);
    }
  });
  std::vector<core::MobilitySemanticsSequence> out;
  for (std::vector<core::MobilitySemanticsSequence>& p : partial) {
    out.insert(out.end(), std::make_move_iterator(p.begin()),
               std::make_move_iterator(p.end()));
  }
  return out;
}

void TripStore::ForEachSequence(
    const std::function<void(SequenceId, const core::MobilitySemanticsSequence&)>&
        fn) const {
  std::shared_lock lock(mu_);
  for (const Segment& segment : segments_) {
    SequenceId id = segment.base;
    for (const core::MobilitySemanticsSequence& seq : segment.sequences) {
      fn(id++, seq);
    }
  }
}

core::MobilityAnalytics TripStore::BuildAnalytics(const dsm::Dsm* dsm) const {
  obs::StageTimer query_timer(metrics_.query_ns);
  if (metrics_.queries != nullptr) metrics_.queries->Add(1);
  std::shared_lock lock(mu_);
  std::vector<core::MobilityAnalytics> partial(segments_.size(),
                                               core::MobilityAnalytics(dsm));
  pool_.ParallelFor(segments_.size(), [&](size_t i) {
    for (const core::MobilitySemanticsSequence& seq : segments_[i].sequences) {
      partial[i].AddSequence(seq);
    }
  });
  core::MobilityAnalytics analytics(dsm);
  for (const core::MobilityAnalytics& p : partial) analytics.Merge(p);
  return analytics;
}

std::vector<std::string> TripStore::Devices() const {
  std::shared_lock lock(mu_);
  std::vector<std::string> devices;
  devices.reserve(device_index_.size());
  for (const auto& [device, postings] : device_index_) devices.push_back(device);
  return devices;
}

StoreStats TripStore::Stats() const {
  std::shared_lock lock(mu_);
  StoreStats stats;
  stats.sequences = sequence_count_;
  stats.triplets = triplet_count_;
  stats.segments = segments_.size();
  stats.devices = device_index_.size();
  bool has_span = false;
  for (const Segment& segment : segments_) {
    if (segment.persisted) ++stats.persisted_segments;
    if (segment.has_span) GrowSpan(&stats.span, &has_span, segment.span);
  }
  return stats;
}

}  // namespace trips::store
