#include "store/trip_store.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "core/result_io.h"
#include "store/compaction.h"
#include "store/manifest.h"
#include "store/segment_codec.h"
#include "util/string_util.h"

namespace trips::store {

namespace {

constexpr const char* kSegmentPrefix = "segment-";
constexpr const char* kSegmentSuffix = ".tseg";
constexpr const char* kPartitionPrefix = "part-";

std::string SegmentFileName(size_t index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s%06zu%s", kSegmentPrefix, index,
                kSegmentSuffix);
  return buf;
}

// Parses "segment-NNNNNN.tseg" -> NNNNNN; false for foreign files.
bool ParseSegmentFileName(const std::string& name, size_t* index) {
  size_t prefix = std::string_view(kSegmentPrefix).size();
  size_t suffix = std::string_view(kSegmentSuffix).size();
  if (name.size() <= prefix + suffix || !StartsWith(name, kSegmentPrefix) ||
      !EndsWith(name, kSegmentSuffix)) {
    return false;
  }
  size_t value = 0;
  for (size_t i = prefix; i < name.size() - suffix; ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    value = value * 10 + static_cast<size_t>(name[i] - '0');
  }
  *index = value;
  return true;
}

void GrowSpan(TimeRange* span, bool* has_span, const TimeRange& range) {
  if (!*has_span) {
    *span = range;
    *has_span = true;
    return;
  }
  span->begin = std::min(span->begin, range.begin);
  span->end = std::max(span->end, range.end);
}

// TRIPS_STORE_NO_MMAP (set, non-empty, not "0") forces the eager v1-style
// read path — the parity reference for the mmap path and the escape hatch on
// filesystems where mapping misbehaves.
bool MmapDisabledByEnv() {
  const char* value = std::getenv("TRIPS_STORE_NO_MMAP");
  return value != nullptr && *value != '\0' && std::string_view(value) != "0";
}

// Writes `blob` to `path` via a temp name + rename, creating the parent
// directory if needed. A crash mid-write leaves a stray ".tmp" (ignored on
// load, cleaned on the next manifest-backed open) instead of a truncated
// file under the real name.
Status WriteFileAtomic(const std::filesystem::path& path,
                       const std::string& blob) {
  std::error_code ec;
  if (path.has_parent_path()) {
    std::filesystem::create_directories(path.parent_path(), ec);
    if (ec) {
      return Status::IOError("cannot create " + path.parent_path().string() +
                             ": " + ec.message());
    }
  }
  std::filesystem::path tmp = path;
  tmp += ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::IOError("cannot open " + tmp.string() + " for writing");
    }
    out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
    out.flush();
    if (!out) {
      return Status::IOError("short write to " + tmp.string());
    }
  }
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::string message = ec.message();
    std::filesystem::remove(tmp, ec);
    return Status::IOError("cannot finalize " + path.string() + ": " + message);
  }
  return Status::OK();
}

}  // namespace

// ---- RegionPostingsIndex ----------------------------------------------------

void TripStore::RegionPostingsIndex::Add(dsm::RegionId region,
                                         const RegionPosting& posting) {
  tail.emplace_back(region, posting);
  // Compact once the tail outgrows a quarter of the CSR body (amortized O(1)
  // per append); the floor keeps tiny stores from compacting on every write.
  constexpr size_t kMinCompactTail = 64;
  if (tail.size() >= kMinCompactTail && tail.size() * 4 >= postings.size()) {
    Compact();
  }
}

void TripStore::RegionPostingsIndex::Compact() {
  if (tail.empty()) return;

  dsm::RegionId min_region = tail.front().first;
  dsm::RegionId max_region = tail.front().first;
  for (const auto& [r, posting] : tail) {
    min_region = std::min(min_region, r);
    max_region = std::max(max_region, r);
  }
  const size_t range =
      static_cast<size_t>(static_cast<int64_t>(max_region) - min_region) + 1;

  // Region ids are near-dense in practice (venues hand them out
  // sequentially), so a counting scatter — histogram, prefix offsets, one
  // stable pass placing each posting — builds the merged CSR in
  // O(n + range) without ever sorting the 40-byte tail entries. This is the
  // bulk-load path: a cold open of a large store appends every segment's
  // footer postings to the tail and compacts exactly once, and sorting that
  // tail used to dominate the open.
  if (range <= tail.size() * 4 + 1024) {
    std::vector<uint32_t> tail_count(range, 0);
    for (const auto& [r, posting] : tail) {
      ++tail_count[static_cast<size_t>(r - min_region)];
    }

    std::vector<dsm::RegionId> merged_regions;
    std::vector<uint32_t> merged_offsets;
    merged_regions.reserve(regions.size() + range);
    merged_offsets.reserve(regions.size() + range + 1);
    std::vector<RegionPosting> merged_postings(postings.size() + tail.size());
    // Per-region write cursor for the scatter pass; only slots with a
    // nonzero count are read.
    std::vector<uint32_t> tail_start(range, 0);

    size_t pos = 0;  // next free slot in merged_postings
    size_t ri = 0;   // cursor over the existing CSR regions
    merged_offsets.push_back(0);
    auto copy_csr_region = [&] {
      size_t count = offsets[ri + 1] - offsets[ri];
      std::copy(postings.begin() + offsets[ri],
                postings.begin() + offsets[ri + 1],
                merged_postings.begin() + pos);
      pos += count;
      ++ri;
    };
    for (size_t di = 0; di < range; ++di) {
      if (tail_count[di] == 0) continue;
      dsm::RegionId region = min_region + static_cast<dsm::RegionId>(di);
      while (ri < regions.size() && regions[ri] < region) {
        merged_regions.push_back(regions[ri]);
        copy_csr_region();
        merged_offsets.push_back(static_cast<uint32_t>(pos));
      }
      merged_regions.push_back(region);
      if (ri < regions.size() && regions[ri] == region) copy_csr_region();
      tail_start[di] = static_cast<uint32_t>(pos);
      pos += tail_count[di];
      merged_offsets.push_back(static_cast<uint32_t>(pos));
    }
    while (ri < regions.size()) {
      merged_regions.push_back(regions[ri]);
      copy_csr_region();
      merged_offsets.push_back(static_cast<uint32_t>(pos));
    }
    // Stable: one forward pass over the tail preserves append order within
    // each region, exactly what the sort-based path guaranteed.
    for (const auto& [r, posting] : tail) {
      merged_postings[tail_start[static_cast<size_t>(r - min_region)]++] =
          posting;
    }
    regions = std::move(merged_regions);
    offsets = std::move(merged_offsets);
    postings = std::move(merged_postings);
    tail.clear();
    return;
  }

  // Sparse keys: fall back to the sort-and-merge build.
  // Stable by region: postings of one region keep their append order, so the
  // merged CSR enumerates exactly what the old per-region vectors held.
  std::stable_sort(tail.begin(), tail.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });

  std::vector<dsm::RegionId> merged_regions;
  std::vector<uint32_t> merged_offsets;
  std::vector<RegionPosting> merged_postings;
  merged_regions.reserve(regions.size() + tail.size());
  merged_offsets.reserve(regions.size() + tail.size() + 1);
  merged_postings.reserve(postings.size() + tail.size());

  size_t ri = 0;  // cursor over the existing CSR regions
  size_t ti = 0;  // cursor over the sorted tail
  merged_offsets.push_back(0);
  while (ri < regions.size() || ti < tail.size()) {
    dsm::RegionId next;
    if (ri == regions.size()) {
      next = tail[ti].first;
    } else if (ti == tail.size()) {
      next = regions[ri];
    } else {
      next = std::min(regions[ri], tail[ti].first);
    }
    if (ri < regions.size() && regions[ri] == next) {
      merged_postings.insert(merged_postings.end(),
                             postings.begin() + offsets[ri],
                             postings.begin() + offsets[ri + 1]);
      ++ri;
    }
    while (ti < tail.size() && tail[ti].first == next) {
      merged_postings.push_back(tail[ti].second);
      ++ti;
    }
    merged_regions.push_back(next);
    merged_offsets.push_back(static_cast<uint32_t>(merged_postings.size()));
  }
  regions = std::move(merged_regions);
  offsets = std::move(merged_offsets);
  postings = std::move(merged_postings);
  tail.clear();
}

void TripStore::RegionPostingsIndex::CollectInto(
    dsm::RegionId region, std::vector<RegionPosting>* out) const {
  auto it = std::lower_bound(regions.begin(), regions.end(), region);
  if (it != regions.end() && *it == region) {
    size_t i = static_cast<size_t>(it - regions.begin());
    out->insert(out->end(), postings.begin() + offsets[i],
                postings.begin() + offsets[i + 1]);
  }
  for (const auto& [r, posting] : tail) {
    if (r == region) out->push_back(posting);
  }
}

// ---- TripStore --------------------------------------------------------------

// One loaded segment's index contributions, parked until a query needs the
// indexes. Keyed by the segment's base id, which compaction preserves (a
// merged segment inherits the first input's base and changes no content), so
// staged entries stay accurate even if a background compaction rewrites the
// files before hydration.
struct TripStore::StagedSegmentIndex {
  SequenceId base = 0;
  SegmentFooter footer;
};

struct TripStore::PendingLoad {
  std::string file;       ///< path relative to the store directory
  MappedFile mapping;
  bool v2 = false;
  SegmentFooter footer;   ///< valid when v2
  uint64_t checksum = 0;  ///< footer checksum (v2) or whole-blob FNV (v1)
  std::vector<core::MobilitySemanticsSequence> decoded;  ///< v1 or eager v2
  bool materialized = false;
};

TripStore::TripStore(StoreOptions options)
    : options_(std::move(options)),
      own_pool_(options_.shared_pool != nullptr ? 0 : options_.worker_threads),
      pool_(options_.shared_pool != nullptr ? options_.shared_pool
                                            : &own_pool_) {
  if (options_.metrics != nullptr) {
    obs::MetricsRegistry& reg = *options_.metrics;
    metrics_.append_ns = reg.histogram("store.append_ns");
    metrics_.appended_sequences = reg.counter("store.appended_sequences");
    metrics_.appended_triplets = reg.counter("store.appended_triplets");
    metrics_.query_ns = reg.histogram("store.query_ns");
    metrics_.queries = reg.counter("store.queries");
    metrics_.segments = reg.gauge("store.segments");
    metrics_.persisted_segments = reg.gauge("store.persisted_segments");
    metrics_.persisted_bytes = reg.counter("store.persisted_bytes");
    metrics_.mapped_segments = reg.counter("store.mapped_segments");
    metrics_.materializations = reg.counter("store.materializations");
    metrics_.decode_errors = reg.counter("store.decode_errors");
    metrics_.dropped_segments = reg.counter("store.dropped_segments");
    metrics_.compactions = reg.counter("store.compactions");
    metrics_.compacted_segments = reg.counter("store.compacted_segments");
    metrics_.manifest_writes = reg.counter("store.manifest_writes");
  }
}

TripStore::~TripStore() {
  // A scheduled background merge holds `this`; let it finish before members
  // are torn down. (With a shared pool the pool must outlive the store.)
  WaitForCompaction();
}

Result<std::unique_ptr<TripStore>> TripStore::Open(StoreOptions options) {
  if (options.segment_max_sequences == 0) {
    return Status::InvalidArgument("segment_max_sequences must be positive");
  }
  if (MmapDisabledByEnv()) options.mmap = false;
  std::unique_ptr<TripStore> store(new TripStore(std::move(options)));
  if (!store->options_.directory.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(store->options_.directory, ec);
    if (ec) {
      return Status::IOError("cannot create store directory " +
                             store->options_.directory + ": " + ec.message());
    }
    std::unique_lock lock(store->mu_);
    TRIPS_RETURN_NOT_OK(store->LoadDirectoryLocked());
  }
  return store;
}

int64_t TripStore::PartitionBucket(TimestampMs t) const {
  DurationMs width = options_.partition_ms;
  if (width <= 0) return 0;
  int64_t quotient = t / width;
  if (t % width != 0 && t < 0) --quotient;  // floor, not truncation
  return quotient;
}

std::string TripStore::PartitionedFileName(int64_t partition,
                                           size_t file_index) const {
  if (options_.partition_ms <= 0) return SegmentFileName(file_index);
  return kPartitionPrefix + std::to_string(partition) + "/" +
         SegmentFileName(file_index);
}

Result<TripStore::PendingLoad> TripStore::MapSegmentFile(
    const std::string& relative) const {
  PendingLoad load;
  load.file = relative;
  std::filesystem::path abs =
      std::filesystem::path(options_.directory) / relative;
  TRIPS_ASSIGN_OR_RETURN(load.mapping, MappedFile::Map(abs.string()));
  std::string_view view = load.mapping.view();
  if (view.size() > sizeof(kSegmentMagic) &&
      std::memcmp(view.data(), kSegmentMagic, sizeof(kSegmentMagic)) == 0) {
    // Legacy v1 segment: no footer, so the only way in is a full decode.
    TRIPS_ASSIGN_OR_RETURN(load.decoded, DecodeSegment(view));
    load.checksum = SegmentChecksum(view);
    load.materialized = true;
    return load;
  }
  load.v2 = true;
  TRIPS_ASSIGN_OR_RETURN(load.footer, ReadSegmentFooter(view));
  load.checksum = load.footer.checksum;
  if (!options_.mmap) {
    // Eager parity path: decode (and checksum-verify) the body up front.
    TRIPS_ASSIGN_OR_RETURN(load.decoded, DecodeSegment(view));
    load.materialized = true;
  }
  return load;
}

void TripStore::AttachLoadedLocked(PendingLoad load) {
  uint64_t count = load.v2 ? load.footer.sequence_count : load.decoded.size();
  if (count == 0) return;  // empty segment files contribute nothing
  {
    auto segment = std::make_unique<Segment>();
    segment->base = static_cast<SequenceId>(sequence_count_);
    segment->sealed = true;
    segment->persisted = true;
    segment->file = std::move(load.file);
    segment->checksum = load.checksum;
    segments_.push_back(std::move(segment));
  }
  Segment& segment = *segments_.back();
  if (metrics_.segments != nullptr) metrics_.segments->Add(1);
  if (metrics_.persisted_segments != nullptr) {
    metrics_.persisted_segments->Add(1);
  }
  if (!load.v2) {
    // v1: indexed sequence by sequence, exactly like the legacy open path.
    // Staged v2 footers (if any) must land first so per-region posting order
    // stays global append order.
    HydrateIndexesLocked();
    for (core::MobilitySemanticsSequence& seq : load.decoded) {
      AddToLastSegmentLocked(std::move(seq));
    }
    return;
  }

  const SegmentFooter& footer = load.footer;
  segment.sequence_count = footer.sequence_count;
  segment.triplet_count = footer.triplet_count;
  segment.span = footer.span;
  segment.has_span = footer.has_span;
  segment.mapping = std::move(load.mapping);
  if (load.materialized) {
    segment.sequences = std::move(load.decoded);
  } else {
    segment.materialized.store(false, std::memory_order_relaxed);
    if (metrics_.mapped_segments != nullptr) metrics_.mapped_segments->Add(1);
  }
  if (segment.has_span) {
    segment.partition = PartitionBucket(segment.span.begin);
    NoteSegmentSpanLocked(segments_.size() - 1);
  }
  sequence_count_ += footer.sequence_count;
  triplet_count_ += footer.triplet_count;
  // The footer carries exactly what ingest-time indexing derives (devices,
  // postings with fences, flow deltas), so the segment's index contributions
  // can be rebuilt from it at any time. Park it instead of applying it now:
  // the first call that reads an index hydrates every staged footer in one
  // bulk pass, and an open followed by a span-pruned scan never builds
  // indexes at all.
  auto staged = std::make_unique<StagedSegmentIndex>();
  staged->base = segment.base;
  staged->footer = std::move(load.footer);
  staged_index_.push_back(std::move(staged));
  indexes_ready_.store(false, std::memory_order_relaxed);
}

void TripStore::HydrateIndexes() const {
  // Double-checked: the acquire pairs with the release store in
  // HydrateIndexesLocked, so a true flag means the built indexes are visible
  // to this thread without taking the exclusive lock.
  if (indexes_ready_.load(std::memory_order_acquire)) return;
  TripStore* self = const_cast<TripStore*>(this);
  std::unique_lock lock(self->mu_);
  self->HydrateIndexesLocked();
}

void TripStore::HydrateIndexesLocked() {
  if (indexes_ready_.load(std::memory_order_relaxed)) return;
  for (const auto& staged : staged_index_) {
    const SegmentFooter& footer = staged->footer;
    for (size_t i = 0; i < footer.devices.size(); ++i) {
      device_index_[footer.devices[i]].push_back(
          staged->base + static_cast<SequenceId>(i));
    }
    // Straight into the postings tail, bypassing Add's amortized-compaction
    // heuristic: every segment bulk-appends thousands of postings here, and
    // letting the heuristic fire would re-merge the growing CSR once per
    // quarter-growth. One Compact below merges the whole batch.
    for (const SegmentFooter::RegionEntry& entry : footer.postings) {
      region_index_.tail.emplace_back(
          entry.region,
          RegionPosting{staged->base + entry.sequence, entry.fence});
    }
    for (const SegmentFooter::FlowEntry& entry : footer.flow) {
      AddFlowLocked(entry.from, entry.to, static_cast<size_t>(entry.count));
    }
  }
  region_index_.Compact();
  staged_index_.clear();
  staged_index_.shrink_to_fit();
  indexes_ready_.store(true, std::memory_order_release);
}

Status TripStore::LoadDirectoryLocked() {
  Result<Manifest> manifest = ReadManifest(options_.directory);
  if (!manifest.ok()) {
    // Missing manifest: fresh store or pre-manifest layout. Torn manifest:
    // crash artifact. Both recover via a validated directory scan; the scan
    // result is then checkpointed so the next open is manifest-backed.
    TRIPS_RETURN_NOT_OK(ScanDirectoryLocked());
    if (!segments_.empty()) (void)WriteManifestLocked();
    return Status::OK();
  }

  std::set<std::string> referenced;
  for (const ManifestSegment& entry : manifest->segments) {
    referenced.insert(entry.file);
    size_t file_index = 0;
    std::string name = std::filesystem::path(entry.file).filename().string();
    if (ParseSegmentFileName(name, &file_index)) {
      next_file_index_ = std::max(next_file_index_, file_index + 1);
    }
    Result<PendingLoad> load = MapSegmentFile(entry.file);
    if (!load.ok() ||
        (entry.checksum != 0 && load->checksum != entry.checksum)) {
      // Torn or missing segment despite being checkpointed: drop it and keep
      // the rest of the store readable. The file (if any) is left on disk
      // for forensics — it is referenced, so cleanup below spares it.
      if (metrics_.dropped_segments != nullptr) {
        metrics_.dropped_segments->Add(1);
      }
      continue;
    }
    AttachLoadedLocked(std::move(load).ValueOrDie());
  }

  // With a valid manifest, everything else is a crash artifact: temp files
  // and segment files written but never checkpointed (e.g. a compaction
  // output whose manifest update never landed).
  std::error_code ec;
  std::vector<std::filesystem::path> stray;
  auto consider = [&](const std::filesystem::path& path,
                      const std::string& rel) {
    std::string name = path.filename().string();
    size_t index = 0;
    if (EndsWith(name, ".tmp") ||
        (ParseSegmentFileName(name, &index) && referenced.count(rel) == 0)) {
      stray.push_back(path);
    }
  };
  for (const auto& entry :
       std::filesystem::directory_iterator(options_.directory, ec)) {
    std::string name = entry.path().filename().string();
    if (entry.is_regular_file()) {
      consider(entry.path(), name);
    } else if (entry.is_directory() && StartsWith(name, kPartitionPrefix)) {
      std::error_code sub_ec;
      for (const auto& sub :
           std::filesystem::directory_iterator(entry.path(), sub_ec)) {
        if (!sub.is_regular_file()) continue;
        consider(sub.path(), name + "/" + sub.path().filename().string());
      }
    }
  }
  for (const std::filesystem::path& path : stray) {
    std::filesystem::remove(path, ec);
  }
  return Status::OK();
}

Status TripStore::ScanDirectoryLocked() {
  std::vector<std::string> relatives;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(options_.directory, ec)) {
    std::string name = entry.path().filename().string();
    size_t index = 0;
    if (entry.is_regular_file()) {
      if (ParseSegmentFileName(name, &index)) relatives.push_back(name);
    } else if (entry.is_directory() && StartsWith(name, kPartitionPrefix)) {
      std::error_code sub_ec;
      for (const auto& sub :
           std::filesystem::directory_iterator(entry.path(), sub_ec)) {
        if (!sub.is_regular_file()) continue;
        std::string sub_name = sub.path().filename().string();
        if (ParseSegmentFileName(sub_name, &index)) {
          relatives.push_back(name + "/" + sub_name);
        }
      }
    }
  }
  if (ec) {
    return Status::IOError("cannot list store directory " + options_.directory +
                           ": " + ec.message());
  }
  std::sort(relatives.begin(), relatives.end());

  std::vector<PendingLoad> loads;
  loads.reserve(relatives.size());
  for (const std::string& relative : relatives) {
    size_t file_index = 0;
    std::string name = std::filesystem::path(relative).filename().string();
    if (ParseSegmentFileName(name, &file_index)) {
      next_file_index_ = std::max(next_file_index_, file_index + 1);
    }
    Result<PendingLoad> load = MapSegmentFile(relative);
    if (!load.ok()) {
      // Scan mode is crash recovery: skip what cannot be validated (torn
      // tails) instead of refusing to open.
      if (metrics_.dropped_segments != nullptr) {
        metrics_.dropped_segments->Add(1);
      }
      continue;
    }
    loads.push_back(std::move(load).ValueOrDie());
  }
  // Append order: legacy v1 files first in name order (their file index IS
  // the append order), then v2 files by the base-ordinal hint their footers
  // carry — which survives compaction renumbering the files.
  std::stable_sort(loads.begin(), loads.end(),
                   [](const PendingLoad& a, const PendingLoad& b) {
                     if (a.v2 != b.v2) return !a.v2;
                     if (a.v2) {
                       return a.footer.base_ordinal < b.footer.base_ordinal;
                     }
                     return a.file < b.file;
                   });
  for (PendingLoad& load : loads) AttachLoadedLocked(std::move(load));
  return Status::OK();
}

void TripStore::NoteSegmentSpanLocked(size_t segment_index) {
  const Segment& segment = *segments_[segment_index];
  PartitionInfo& info = partition_index_[segment.partition];
  if (info.segments.empty() || info.segments.back() != segment_index) {
    info.segments.push_back(segment_index);
  }
  GrowSpan(&info.span, &info.has_span, segment.span);
}

void TripStore::RebuildPartitionIndexLocked() {
  partition_index_.clear();
  for (size_t i = 0; i < segments_.size(); ++i) {
    if (segments_[i]->has_span) NoteSegmentSpanLocked(i);
  }
}

void TripStore::EnsureMaterialized(const Segment& segment) const {
  if (segment.materialized.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(segment.mat_mu);
  if (segment.materialized.load(std::memory_order_relaxed)) return;
  Result<std::vector<core::MobilitySemanticsSequence>> decoded =
      DecodeSegment(segment.mapping.view());
  if (decoded.ok()) {
    segment.sequences = std::move(decoded).ValueOrDie();
  } else if (metrics_.decode_errors != nullptr) {
    metrics_.decode_errors->Add(1);
  }
  // A body that fails to decode after its footer validated at open (bit rot
  // under the mapping) degrades to empty sequences so queries stay well-
  // defined; decode_errors is the signal.
  if (segment.sequences.size() != segment.sequence_count) {
    segment.sequences.resize(static_cast<size_t>(segment.sequence_count));
  }
  if (metrics_.materializations != nullptr) metrics_.materializations->Add(1);
  segment.materialized.store(true, std::memory_order_release);
}

void TripStore::AddToLastSegmentLocked(core::MobilitySemanticsSequence seq) {
  Segment& segment = *segments_.back();
  segment.sequences.push_back(std::move(seq));
  ++segment.sequence_count;
  const core::MobilitySemanticsSequence& stored = segment.sequences.back();
  bool had_span = segment.has_span;
  for (const core::MobilitySemantic& s : stored.semantics) {
    GrowSpan(&segment.span, &segment.has_span, s.range);
  }
  segment.triplet_count += stored.semantics.size();
  if (segment.has_span) {
    if (!had_span) segment.partition = PartitionBucket(segment.span.begin);
    NoteSegmentSpanLocked(segments_.size() - 1);
  }
  IndexSequenceLocked(static_cast<SequenceId>(sequence_count_), stored);
  ++sequence_count_;
}

void TripStore::SealSegmentLocked(Segment& segment) {
  if (segment.sealed) return;
  segment.sealed = true;
  // Sealing is the natural index checkpoint: merge the postings append tail
  // into the CSR body so sealed data is served from the dense arrays only.
  region_index_.Compact();
}

Result<TripStore::SequenceId> TripStore::AppendLocked(
    core::MobilitySemanticsSequence seq) {
  // Appends extend the indexes incrementally, so any staged footers must be
  // applied first to keep per-region posting order equal to append order.
  HydrateIndexesLocked();
  if (segments_.empty() || segments_.back()->sealed ||
      segments_.back()->sequence_count >= options_.segment_max_sequences) {
    if (!segments_.empty()) SealSegmentLocked(*segments_.back());
    auto segment = std::make_unique<Segment>();
    segment->base = static_cast<SequenceId>(sequence_count_);
    segments_.push_back(std::move(segment));
    if (metrics_.segments != nullptr) metrics_.segments->Add(1);
  }
  SequenceId id = static_cast<SequenceId>(sequence_count_);
  AddToLastSegmentLocked(std::move(seq));
  return id;
}

void TripStore::AddFlowLocked(dsm::RegionId from, dsm::RegionId to,
                              size_t count) {
  if (count == 0) return;
  if (from < 0 || from >= kDenseFlowLimit || to < 0 || to >= kDenseFlowLimit) {
    flow_overflow_[{from, to}] += count;
    return;
  }
  size_t row = static_cast<size_t>(from);
  size_t col = static_cast<size_t>(to);
  if (row >= flow_.size()) flow_.resize(row + 1);
  if (col >= flow_[row].size()) flow_[row].resize(col + 1, 0);
  flow_[row][col] += count;
}

void TripStore::IndexSequenceLocked(SequenceId id,
                                    const core::MobilitySemanticsSequence& seq) {
  device_index_[seq.device_id].push_back(id);
  std::map<dsm::RegionId, TimeRange> fences;
  dsm::RegionId prev = dsm::kInvalidRegion;
  for (const core::MobilitySemantic& s : seq.semantics) {
    ++triplet_count_;
    if (s.region == dsm::kInvalidRegion) continue;
    auto [it, inserted] = fences.try_emplace(s.region, s.range);
    if (!inserted) {
      it->second.begin = std::min(it->second.begin, s.range.begin);
      it->second.end = std::max(it->second.end, s.range.end);
    }
    if (prev != dsm::kInvalidRegion && prev != s.region) {
      AddFlowLocked(prev, s.region, 1);
    }
    prev = s.region;
  }
  for (const auto& [region, fence] : fences) {
    region_index_.Add(region, {id, fence});
  }
}

Result<TripStore::SequenceId> TripStore::Append(
    core::MobilitySemanticsSequence seq) {
  if (seq.device_id.empty()) {
    return Status::InvalidArgument("stored sequence needs a device id");
  }
  for (const core::MobilitySemantic& s : seq.semantics) {
    if (!s.range.Valid()) {
      return Status::InvalidArgument("invalid triplet time range for device " +
                                     seq.device_id);
    }
  }
  obs::StageTimer append_timer(metrics_.append_ns);
  size_t triplets = seq.semantics.size();
  std::unique_lock lock(mu_);
  Result<SequenceId> id = AppendLocked(std::move(seq));
  if (id.ok()) {
    if (metrics_.appended_sequences != nullptr) {
      metrics_.appended_sequences->Add(1);
    }
    if (metrics_.appended_triplets != nullptr) {
      metrics_.appended_triplets->Add(triplets);
    }
  }
  return id;
}

Status TripStore::AppendResponse(const core::TranslationResponse& response) {
  for (const core::TranslationResult& result : response.results) {
    TRIPS_RETURN_NOT_OK(Append(result.semantics).status());
  }
  return Status::OK();
}

core::StreamSession::Sink TripStore::MakeSink() {
  return [this](core::TranslationResult result) {
    if (!Append(std::move(result.semantics)).ok()) {
      std::unique_lock lock(mu_);
      ++dropped_;
    }
  };
}

size_t TripStore::dropped_count() const {
  std::shared_lock lock(mu_);
  return dropped_;
}

Status TripStore::PersistSegmentLocked(size_t segment_index) {
  Segment& segment = *segments_[segment_index];
  std::string blob = EncodeSegmentV2(segment.sequences, segment.base);
  int64_t partition = segment.has_span ? segment.partition : 0;
  std::string relative = PartitionedFileName(partition, next_file_index_);
  std::filesystem::path path =
      std::filesystem::path(options_.directory) / relative;
  TRIPS_RETURN_NOT_OK(WriteFileAtomic(path, blob));
  ++next_file_index_;
  segment.persisted = true;
  segment.file = relative;
  Result<SegmentFooter> footer = ReadSegmentFooter(blob);
  segment.checksum = footer.ok() ? footer->checksum : 0;
  if (metrics_.persisted_segments != nullptr) {
    metrics_.persisted_segments->Add(1);
  }
  if (metrics_.persisted_bytes != nullptr) {
    metrics_.persisted_bytes->Add(blob.size());
  }
  return Status::OK();
}

Status TripStore::WriteManifestLocked() {
  if (options_.directory.empty()) return Status::OK();
  Manifest manifest;
  for (const auto& segment : segments_) {
    if (!segment->persisted) continue;
    manifest.segments.push_back({segment->file, segment->base,
                                 segment->sequence_count,
                                 segment->has_span ? segment->partition : 0,
                                 segment->checksum});
  }
  TRIPS_RETURN_NOT_OK(WriteManifest(options_.directory, manifest));
  if (metrics_.manifest_writes != nullptr) metrics_.manifest_writes->Add(1);
  return Status::OK();
}

Status TripStore::Flush() {
  {
    std::unique_lock lock(mu_);
    if (!segments_.empty() && !segments_.back()->sealed &&
        segments_.back()->sequence_count > 0) {
      SealSegmentLocked(*segments_.back());
    }
    if (!options_.directory.empty()) {
      for (size_t i = 0; i < segments_.size(); ++i) {
        if (segments_[i]->persisted || !segments_[i]->sealed) continue;
        TRIPS_RETURN_NOT_OK(PersistSegmentLocked(i));
      }
      TRIPS_RETURN_NOT_OK(WriteManifestLocked());
    }
  }
  MaybeScheduleCompaction(/*force=*/false);
  return Status::OK();
}

// ---- compaction -------------------------------------------------------------

void TripStore::MaybeScheduleCompaction(bool force) {
  if (!force && !options_.compaction) return;
  if (options_.directory.empty()) return;
  {
    std::lock_guard<std::mutex> lock(compaction_mu_);
    if (compaction_inflight_) return;
    compaction_inflight_ = true;
  }
  // With zero pool workers Submit runs the worker inline, so single-threaded
  // stores compact deterministically before Flush/Compact returns.
  pool_->Submit([this] { CompactionWorker(); });
}

bool TripStore::PrepareCompactionLocked(PendingCompaction* out) {
  std::vector<CompactionCandidate> candidates;
  candidates.reserve(segments_.size());
  for (size_t i = 0; i < segments_.size(); ++i) {
    const Segment& segment = *segments_[i];
    candidates.push_back({i, segment.sequence_count,
                          segment.has_span ? segment.partition : 0,
                          segment.sealed && segment.persisted});
  }
  CompactionPlan plan =
      PlanCompaction(candidates, options_.segment_max_sequences,
                     options_.compaction_min_run);
  if (plan.empty()) return false;
  out->begin = plan.begin;
  out->end = plan.end;
  out->base = segments_[plan.begin]->base;
  out->partition = candidates[plan.begin].partition;
  out->file = PartitionedFileName(out->partition, next_file_index_);
  ++next_file_index_;  // reserve the output name now, write off-lock later
  return true;
}

Status TripStore::ExecuteCompaction(const PendingCompaction& pending) {
  // Gather the inputs under the shared lock (they are sealed and immutable;
  // appends can only push NEW segments, which leaves [begin, end) valid),
  // then encode and write the merged file without blocking the store.
  std::vector<core::MobilitySemanticsSequence> merged;
  {
    std::shared_lock lock(mu_);
    for (size_t i = pending.begin; i < pending.end; ++i) {
      const Segment& segment = *segments_[i];
      EnsureMaterialized(segment);
      merged.insert(merged.end(), segment.sequences.begin(),
                    segment.sequences.end());
    }
  }
  std::string blob = EncodeSegmentV2(merged, pending.base);
  std::filesystem::path path =
      std::filesystem::path(options_.directory) / pending.file;
  TRIPS_RETURN_NOT_OK(WriteFileAtomic(path, blob));
  Result<SegmentFooter> footer = ReadSegmentFooter(blob);

  std::vector<std::string> stale;
  {
    std::unique_lock lock(mu_);
    auto segment = std::make_unique<Segment>();
    segment->base = pending.base;
    segment->sequence_count = merged.size();
    segment->sealed = true;
    segment->persisted = true;
    segment->partition = pending.partition;
    segment->file = pending.file;
    segment->checksum = footer.ok() ? footer->checksum : 0;
    for (size_t i = pending.begin; i < pending.end; ++i) {
      const Segment& old = *segments_[i];
      segment->triplet_count += old.triplet_count;
      if (old.has_span) GrowSpan(&segment->span, &segment->has_span, old.span);
      if (!old.file.empty()) stale.push_back(old.file);
    }
    segment->sequences = std::move(merged);
    size_t removed = pending.end - pending.begin;
    segments_.erase(segments_.begin() + static_cast<ptrdiff_t>(pending.begin),
                    segments_.begin() + static_cast<ptrdiff_t>(pending.end));
    segments_.insert(segments_.begin() + static_cast<ptrdiff_t>(pending.begin),
                     std::move(segment));
    RebuildPartitionIndexLocked();
    if (metrics_.segments != nullptr) {
      metrics_.segments->Sub(static_cast<int64_t>(removed - 1));
    }
    if (metrics_.persisted_segments != nullptr) {
      metrics_.persisted_segments->Sub(static_cast<int64_t>(removed - 1));
    }
    if (metrics_.compactions != nullptr) metrics_.compactions->Add(1);
    if (metrics_.compacted_segments != nullptr) {
      metrics_.compacted_segments->Add(removed);
    }
    // Checkpoint the new layout BEFORE deleting the inputs: a crash between
    // the two leaves both generations on disk and a manifest naming exactly
    // one of them. If the manifest write fails, keep the inputs — the old
    // manifest still describes a complete store.
    TRIPS_RETURN_NOT_OK(WriteManifestLocked());
  }
  for (const std::string& relative : stale) {
    std::error_code ec;
    std::filesystem::remove(
        std::filesystem::path(options_.directory) / relative, ec);
  }
  return Status::OK();
}

void TripStore::CompactionWorker() {
  Status status;
  for (;;) {
    PendingCompaction pending;
    {
      std::unique_lock lock(mu_);
      if (!PrepareCompactionLocked(&pending)) break;
    }
    status = ExecuteCompaction(pending);
    if (!status.ok()) break;  // same plan would fail the same way; stop
  }
  std::lock_guard<std::mutex> lock(compaction_mu_);
  if (!status.ok()) compaction_error_ = status;
  compaction_inflight_ = false;
  // Notify under the lock: once a waiter (possibly ~TripStore) observes the
  // flag it may destroy the condition variable.
  compaction_cv_.notify_all();
}

Status TripStore::Compact() {
  {
    std::lock_guard<std::mutex> lock(compaction_mu_);
    compaction_error_ = Status::OK();
  }
  MaybeScheduleCompaction(/*force=*/true);
  WaitForCompaction();
  std::lock_guard<std::mutex> lock(compaction_mu_);
  return compaction_error_;
}

void TripStore::WaitForCompaction() const {
  std::unique_lock<std::mutex> lock(compaction_mu_);
  compaction_cv_.wait(lock, [this] { return !compaction_inflight_; });
}

// ---- import -----------------------------------------------------------------

Result<TripStore::SequenceId> TripStore::ImportResultFile(const std::string& path) {
  TRIPS_ASSIGN_OR_RETURN(core::MobilitySemanticsSequence seq,
                         core::ReadResultFile(path));
  return Append(std::move(seq));
}

Result<size_t> TripStore::ImportResultDir(const std::string& dir) {
  constexpr const char* kResultSuffix = ".result.json";
  std::vector<std::filesystem::path> paths;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    std::string name = entry.path().filename().string();
    if (name.size() <= std::string_view(kResultSuffix).size() ||
        !EndsWith(name, kResultSuffix)) {
      continue;
    }
    paths.push_back(entry.path());
  }
  if (ec) {
    return Status::IOError("cannot list result directory " + dir + ": " +
                           ec.message());
  }
  std::sort(paths.begin(), paths.end());
  for (const std::filesystem::path& path : paths) {
    TRIPS_RETURN_NOT_OK(ImportResultFile(path.string()).status());
  }
  return paths.size();
}

// ---- queries ----------------------------------------------------------------

const core::MobilitySemanticsSequence& TripStore::SequenceLocked(
    SequenceId id) const {
  // Last segment whose base <= id.
  auto it = std::upper_bound(segments_.begin(), segments_.end(), id,
                             [](SequenceId value, const std::unique_ptr<Segment>& s) {
                               return value < s->base;
                             });
  const Segment& segment = **std::prev(it);
  EnsureMaterialized(segment);
  return segment.sequences[id - segment.base];
}

core::MobilitySemanticsSequence TripStore::DeviceHistory(
    const std::string& device) const {
  HydrateIndexes();
  obs::StageTimer query_timer(metrics_.query_ns);
  if (metrics_.queries != nullptr) metrics_.queries->Add(1);
  std::shared_lock lock(mu_);
  core::MobilitySemanticsSequence history;
  history.device_id = device;
  auto it = device_index_.find(device);
  if (it == device_index_.end()) return history;
  for (SequenceId id : it->second) {
    const core::MobilitySemanticsSequence& seq = SequenceLocked(id);
    history.semantics.insert(history.semantics.end(), seq.semantics.begin(),
                             seq.semantics.end());
  }
  history.SortByTime();
  return history;
}

std::vector<RegionVisit> TripStore::RegionVisitors(dsm::RegionId region,
                                                   TimestampMs t0,
                                                   TimestampMs t1) const {
  HydrateIndexes();
  obs::StageTimer query_timer(metrics_.query_ns);
  if (metrics_.queries != nullptr) metrics_.queries->Add(1);
  std::shared_lock lock(mu_);
  TimeRange window{t0, t1};
  std::vector<RegionVisit> visits;
  std::vector<RegionPosting> postings;
  region_index_.CollectInto(region, &postings);
  if (postings.empty()) return visits;
  std::vector<std::vector<RegionVisit>> partial(postings.size());
  pool_->ParallelFor(postings.size(), [&](size_t i) {
    const RegionPosting& posting = postings[i];
    if (!posting.fence.Overlaps(window)) return;
    const core::MobilitySemanticsSequence& seq = SequenceLocked(posting.sequence);
    for (const core::MobilitySemantic& s : seq.semantics) {
      if (s.region != region || !s.range.Overlaps(window)) continue;
      partial[i].push_back({seq.device_id, s});
    }
  });
  for (std::vector<RegionVisit>& p : partial) {
    visits.insert(visits.end(), std::make_move_iterator(p.begin()),
                  std::make_move_iterator(p.end()));
  }
  std::sort(visits.begin(), visits.end(),
            [](const RegionVisit& a, const RegionVisit& b) {
              if (a.visit.range.begin != b.visit.range.begin) {
                return a.visit.range.begin < b.visit.range.begin;
              }
              if (a.device_id != b.device_id) return a.device_id < b.device_id;
              return a.visit.range.end < b.visit.range.end;
            });
  return visits;
}

size_t TripStore::FlowBetween(dsm::RegionId from, dsm::RegionId to) const {
  HydrateIndexes();
  obs::StageTimer query_timer(metrics_.query_ns);
  if (metrics_.queries != nullptr) metrics_.queries->Add(1);
  std::shared_lock lock(mu_);
  if (from < 0 || from >= kDenseFlowLimit || to < 0 || to >= kDenseFlowLimit) {
    auto it = flow_overflow_.find({from, to});
    return it == flow_overflow_.end() ? 0 : it->second;
  }
  size_t row = static_cast<size_t>(from);
  size_t col = static_cast<size_t>(to);
  if (row >= flow_.size() || col >= flow_[row].size()) return 0;
  return flow_[row][col];
}

std::map<dsm::RegionId, std::map<dsm::RegionId, size_t>> TripStore::FlowMatrix()
    const {
  HydrateIndexes();
  obs::StageTimer query_timer(metrics_.query_ns);
  if (metrics_.queries != nullptr) metrics_.queries->Add(1);
  std::shared_lock lock(mu_);
  // The public shape stays the nested map; only observed transitions appear,
  // exactly as the former map-of-maps accumulated them.
  std::map<dsm::RegionId, std::map<dsm::RegionId, size_t>> out;
  for (size_t row = 0; row < flow_.size(); ++row) {
    for (size_t col = 0; col < flow_[row].size(); ++col) {
      if (flow_[row][col] > 0) {
        out[static_cast<dsm::RegionId>(row)][static_cast<dsm::RegionId>(col)] =
            flow_[row][col];
      }
    }
  }
  for (const auto& [pair, count] : flow_overflow_) {
    out[pair.first][pair.second] = count;
  }
  return out;
}

std::vector<core::MobilitySemanticsSequence> TripStore::SequencesInRange(
    TimestampMs t0, TimestampMs t1) const {
  obs::StageTimer query_timer(metrics_.query_ns);
  if (metrics_.queries != nullptr) metrics_.queries->Add(1);
  std::shared_lock lock(mu_);
  TimeRange window{t0, t1};
  // Two-level pruning: drop whole partitions by their union span, then
  // individual segments by theirs. Only survivors are materialized.
  std::vector<size_t> candidates;
  for (const auto& [bucket, info] : partition_index_) {
    if (!info.has_span || !info.span.Overlaps(window)) continue;
    for (size_t i : info.segments) {
      const Segment& segment = *segments_[i];
      if (segment.has_span && segment.span.Overlaps(window)) {
        candidates.push_back(i);
      }
    }
  }
  std::sort(candidates.begin(), candidates.end());  // back to append order
  std::vector<std::vector<core::MobilitySemanticsSequence>> partial(
      candidates.size());
  pool_->ParallelFor(candidates.size(), [&](size_t c) {
    const Segment& segment = *segments_[candidates[c]];
    EnsureMaterialized(segment);
    for (const core::MobilitySemanticsSequence& seq : segment.sequences) {
      bool overlaps = false;
      for (const core::MobilitySemantic& s : seq.semantics) {
        if (s.range.Overlaps(window)) {
          overlaps = true;
          break;
        }
      }
      if (overlaps) partial[c].push_back(seq);
    }
  });
  std::vector<core::MobilitySemanticsSequence> out;
  for (std::vector<core::MobilitySemanticsSequence>& p : partial) {
    out.insert(out.end(), std::make_move_iterator(p.begin()),
               std::make_move_iterator(p.end()));
  }
  return out;
}

void TripStore::ForEachSequence(
    const std::function<void(SequenceId, const core::MobilitySemanticsSequence&)>&
        fn) const {
  std::shared_lock lock(mu_);
  for (const auto& segment_ptr : segments_) {
    const Segment& segment = *segment_ptr;
    EnsureMaterialized(segment);
    SequenceId id = segment.base;
    for (const core::MobilitySemanticsSequence& seq : segment.sequences) {
      fn(id++, seq);
    }
  }
}

core::MobilityAnalytics TripStore::BuildAnalytics(const dsm::Dsm* dsm) const {
  obs::StageTimer query_timer(metrics_.query_ns);
  if (metrics_.queries != nullptr) metrics_.queries->Add(1);
  std::shared_lock lock(mu_);
  std::vector<core::MobilityAnalytics> partial(segments_.size(),
                                               core::MobilityAnalytics(dsm));
  pool_->ParallelFor(segments_.size(), [&](size_t i) {
    const Segment& segment = *segments_[i];
    EnsureMaterialized(segment);
    for (const core::MobilitySemanticsSequence& seq : segment.sequences) {
      partial[i].AddSequence(seq);
    }
  });
  core::MobilityAnalytics analytics(dsm);
  for (const core::MobilityAnalytics& p : partial) analytics.Merge(p);
  return analytics;
}

std::vector<std::string> TripStore::Devices() const {
  HydrateIndexes();
  std::shared_lock lock(mu_);
  std::vector<std::string> devices;
  devices.reserve(device_index_.size());
  for (const auto& [device, postings] : device_index_) devices.push_back(device);
  return devices;
}

StoreStats TripStore::Stats() const {
  HydrateIndexes();
  std::shared_lock lock(mu_);
  StoreStats stats;
  stats.sequences = sequence_count_;
  stats.triplets = triplet_count_;
  stats.segments = segments_.size();
  stats.devices = device_index_.size();
  stats.partitions = partition_index_.size();
  stats.postings_tail_bytes =
      region_index_.tail.size() *
      sizeof(std::pair<dsm::RegionId, RegionPosting>);
  bool has_span = false;
  for (const auto& segment : segments_) {
    if (segment->persisted) ++stats.persisted_segments;
    if (segment->materialized.load(std::memory_order_acquire)) {
      ++stats.materialized_segments;
    }
    if (segment->has_span) GrowSpan(&stats.span, &has_span, segment->span);
  }
  return stats;
}

}  // namespace trips::store
