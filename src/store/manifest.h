// The TripStore manifest: the authoritative list of sealed segment files in
// append order, written atomically (tmp + rename) after every seal, flush and
// compaction. Recovery reads it first — a directory scan is only the fallback
// for a missing or torn manifest — so reopening after a crash is
// deterministic: segments the manifest does not reference (half-written
// compaction outputs, torn tails) are dropped and deleted, and the store
// resumes from the last checkpoint the manifest describes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/result.h"

namespace trips::store {

/// File name of the manifest inside a store directory.
inline constexpr char kManifestFileName[] = "MANIFEST.json";

/// One sealed segment the manifest references.
struct ManifestSegment {
  /// Path relative to the store directory, e.g. "part-20500/segment-000012.tseg".
  std::string file;
  /// Store-global append ordinal of the segment's first sequence.
  uint64_t base_ordinal = 0;
  /// Number of sequences in the segment.
  uint64_t sequences = 0;
  /// Time-partition bucket the segment belongs to (floor of span begin over
  /// the partition width).
  int64_t partition = 0;
  /// FNV-1a 64 of the encoded segment file (0 = unknown; stored as a hex
  /// string in JSON, since JSON numbers cannot hold a full u64).
  uint64_t checksum = 0;
};

/// The parsed manifest: sealed segments in append order.
struct Manifest {
  std::vector<ManifestSegment> segments;
};

/// Reads and parses `<directory>/MANIFEST.json`. Fails with NotFound when the
/// file does not exist (fresh store, or pre-manifest layout) and ParseError
/// when it exists but is torn or malformed — callers fall back to a directory
/// scan in both cases, but only rewrite strays for the latter.
Result<Manifest> ReadManifest(const std::string& directory);

/// Atomically writes `<directory>/MANIFEST.json` (tmp file + rename), so a
/// crash mid-write leaves either the old manifest or the new one, never a
/// torn file under the manifest name.
Status WriteManifest(const std::string& directory, const Manifest& manifest);

}  // namespace trips::store
