// Load & SLO harness CLI: replays event-driven load scenarios (Poisson
// arrivals, diurnal ramps, heavy-tail bursts) into a single Service or a
// multi-venue Cluster and reports ingest-to-result latency quantiles, drop
// counters and queue depths as a JSON SLO report. With --assert-slo the exit
// code carries the verdict, so CI can gate on it.
//
//   ./loadgen_slo                                  # steady scenario, service
//   ./loadgen_slo --scenario=all --target=both --out=loadgen_report.json
//   ./loadgen_slo --scenario=burst --assert-slo    # exit 1 on violation
//
// Flags:
//   --scenario=steady|diurnal|burst|all   scenarios to run (default steady)
//   --target=service|cluster|both         ingest targets (default service)
//   --sessions=N       session cap per run (default 200)
//   --templates=N      distinct mobility itineraries (default 16)
//   --workers=N        worker threads in the target's pool (default 4)
//   --venues=N         venues in the cluster target (default 4)
//   --rps=R            pace replay at R records/sec wall (default 0: unpaced)
//   --seed=S           scenario seed (default 1)
//   --p50-ms/--p95-ms/--p99-ms=X   override the scenario's latency SLO
//   --out=FILE         write the JSON report to FILE (default: stdout)
//   --assert-slo       exit nonzero when any run violates its SLO
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/trips.h"
#include "loadgen/harness.h"
#include "loadgen/scenario.h"

using namespace trips;

namespace {

struct Flags {
  std::string scenario = "steady";
  std::string target = "service";
  size_t sessions = 200;
  size_t templates = 16;
  size_t workers = 4;
  size_t venues = 4;
  double rps = 0;
  uint64_t seed = 1;
  double p50_ms = -1, p95_ms = -1, p99_ms = -1;  // < 0: keep scenario default
  std::string out;
  bool assert_slo = false;
};

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *value = arg + len + 1;
  return true;
}

bool ParseFlags(int argc, char** argv, Flags* flags) {
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (ParseFlag(argv[i], "--scenario", &value)) {
      flags->scenario = value;
    } else if (ParseFlag(argv[i], "--target", &value)) {
      flags->target = value;
    } else if (ParseFlag(argv[i], "--sessions", &value)) {
      flags->sessions = static_cast<size_t>(std::strtoull(value.c_str(), nullptr, 10));
    } else if (ParseFlag(argv[i], "--templates", &value)) {
      flags->templates = static_cast<size_t>(std::strtoull(value.c_str(), nullptr, 10));
    } else if (ParseFlag(argv[i], "--workers", &value)) {
      flags->workers = static_cast<size_t>(std::strtoull(value.c_str(), nullptr, 10));
    } else if (ParseFlag(argv[i], "--venues", &value)) {
      flags->venues = static_cast<size_t>(std::strtoull(value.c_str(), nullptr, 10));
    } else if (ParseFlag(argv[i], "--rps", &value)) {
      flags->rps = std::strtod(value.c_str(), nullptr);
    } else if (ParseFlag(argv[i], "--seed", &value)) {
      flags->seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--p50-ms", &value)) {
      flags->p50_ms = std::strtod(value.c_str(), nullptr);
    } else if (ParseFlag(argv[i], "--p95-ms", &value)) {
      flags->p95_ms = std::strtod(value.c_str(), nullptr);
    } else if (ParseFlag(argv[i], "--p99-ms", &value)) {
      flags->p99_ms = std::strtod(value.c_str(), nullptr);
    } else if (ParseFlag(argv[i], "--out", &value)) {
      flags->out = value;
    } else if (std::strcmp(argv[i], "--assert-slo") == 0) {
      flags->assert_slo = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (!ParseFlags(argc, argv, &flags)) return 2;

  std::vector<std::string> scenarios;
  if (flags.scenario == "all") {
    scenarios = loadgen::ScenarioNames();
  } else {
    scenarios.push_back(flags.scenario);
  }
  std::vector<std::string> targets;
  if (flags.target == "both") {
    targets = {"service", "cluster"};
  } else if (flags.target == "service" || flags.target == "cluster") {
    targets.push_back(flags.target);
  } else {
    std::fprintf(stderr, "unknown target: %s\n", flags.target.c_str());
    return 2;
  }

  // The paper's mall venue: DSM + planner + engine, shared by every run.
  auto mall = dsm::BuildMallDsm({.floors = 3, .shops_per_arm = 3});
  if (!mall.ok()) {
    std::fprintf(stderr, "mall: %s\n", mall.status().ToString().c_str());
    return 2;
  }
  dsm::Dsm dsm = std::move(mall).ValueOrDie();
  auto planner = dsm::RoutePlanner::Build(&dsm);
  if (!planner.ok()) {
    std::fprintf(stderr, "planner: %s\n", planner.status().ToString().c_str());
    return 2;
  }
  auto engine = core::Engine::Builder().BorrowDsm(&dsm).Build();
  if (!engine.ok()) {
    std::fprintf(stderr, "engine: %s\n", engine.status().ToString().c_str());
    return 2;
  }

  std::vector<loadgen::ScenarioResult> results;
  for (const std::string& name : scenarios) {
    auto config_or = loadgen::ScenarioByName(name);
    if (!config_or.ok()) {
      std::fprintf(stderr, "%s\n", config_or.status().ToString().c_str());
      return 2;
    }
    loadgen::ScenarioConfig config = std::move(config_or).ValueOrDie();
    config.seed = flags.seed;
    config.max_sessions = flags.sessions;
    config.session_templates = flags.templates;
    config.target_records_per_sec = flags.rps;
    if (flags.p50_ms >= 0) config.slo.p50_ms = flags.p50_ms;
    if (flags.p95_ms >= 0) config.slo.p95_ms = flags.p95_ms;
    if (flags.p99_ms >= 0) config.slo.p99_ms = flags.p99_ms;
    config.noise.floor_count = static_cast<int>(dsm.FloorCount());

    mobility::MobilityGenerator generator(&dsm, &planner.ValueOrDie(),
                                          config.mobility);
    for (const std::string& target : targets) {
      loadgen::TargetFactory factory;
      if (target == "service") {
        factory = [&](const core::StreamOptions& stream) {
          return loadgen::MakeServiceTarget(*engine, flags.workers, stream);
        };
      } else {
        factory = [&](const core::StreamOptions& stream) {
          return loadgen::MakeClusterTarget(*engine, flags.venues,
                                            flags.workers, stream);
        };
      }
      auto result = loadgen::RunScenario(config, generator, factory);
      if (!result.ok()) {
        std::fprintf(stderr, "%s/%s: %s\n", name.c_str(), target.c_str(),
                     result.status().ToString().c_str());
        return 2;
      }
      const loadgen::ScenarioResult& r = result.ValueOrDie();
      std::fprintf(stderr,
                   "%-8s %-11s sessions=%llu records=%llu rps=%.0f "
                   "p50=%.1fms p95=%.1fms p99=%.1fms drops=%llu %s\n",
                   r.scenario.c_str(), r.target.c_str(),
                   static_cast<unsigned long long>(r.sessions_started),
                   static_cast<unsigned long long>(r.records_offered),
                   r.achieved_records_per_sec, r.latency.p50_ms,
                   r.latency.p95_ms, r.latency.p99_ms,
                   static_cast<unsigned long long>(r.dropped_small_buffers),
                   r.slo_pass ? "PASS" : "VIOLATED");
      for (const loadgen::SloViolation& v : r.violations) {
        std::fprintf(stderr, "  SLO violation: %s actual %.1f > limit %.1f\n",
                     v.what.c_str(), v.actual, v.limit);
      }
      results.push_back(std::move(result).ValueOrDie());
    }
  }

  const json::Value report = loadgen::SloReportJson(results);
  if (flags.out.empty()) {
    std::cout << report.Pretty() << "\n";
  } else {
    std::ofstream out(flags.out);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", flags.out.c_str());
      return 2;
    }
    out << report.Pretty() << "\n";
    std::fprintf(stderr, "report written to %s\n", flags.out.c_str());
  }

  bool all_pass = true;
  for (const loadgen::ScenarioResult& r : results) all_pass &= r.slo_pass;
  if (flags.assert_slo && !all_pass) return 1;
  return 0;
}
