// Quickstart: the smallest end-to-end TRIPS session, driven entirely through
// the Engine/Service API.
//
// Builds a sample indoor space, simulates one shopper, degrades the data with
// a Wi-Fi-like error model, assembles an immutable core::Engine (DSM +
// trained event model), and translates the data back into mobility semantics
// through a core::Service — once as a batch request and once as a record-by-
// record stream — then prints the paper's Table-1-style comparison.
//
//   ./quickstart
#include <cstdio>

#include "core/trips.h"

using namespace trips;

int main() {
  // 1. An indoor space (a 2-floor slice of the synthetic mall).
  auto mall = dsm::BuildMallDsm({.floors = 2, .shops_per_arm = 2});
  if (!mall.ok()) {
    std::fprintf(stderr, "mall: %s\n", mall.status().ToString().c_str());
    return 1;
  }

  // 2. Simulated shopper + positioning errors (stands in for a real feed).
  auto planner = dsm::RoutePlanner::Build(&mall.ValueOrDie());
  if (!planner.ok()) return 1;
  mobility::MobilityGenerator generator(&mall.ValueOrDie(), &planner.ValueOrDie());
  Rng rng(2024);
  auto device = generator.GenerateDevice("oi", 0, &rng);
  if (!device.ok()) return 1;

  positioning::ErrorModelOptions noise;
  noise.floor_count = 2;
  positioning::PositioningSequence raw =
      positioning::ApplyErrorModel(device->truth, noise, &rng);

  // 3. Training corpus from a few designated example segments (the Event
  // Editor step); skip SetTrainingData to fall back to rule-based
  // identification.
  std::vector<config::LabeledSegment> training;
  for (int d = 0; d < 6; ++d) {
    auto sample = generator.GenerateDevice("train-" + std::to_string(d), 0, &rng);
    if (!sample.ok()) return 1;
    for (const core::MobilitySemantic& s : sample->semantics.semantics) {
      config::LabeledSegment seg;
      seg.event = s.event;
      seg.segment.records = sample->truth.RecordsIn(s.range);
      if (seg.segment.records.size() >= 2) training.push_back(std::move(seg));
    }
  }

  // 4. The engine: immutable model, built once, shareable across threads.
  auto engine = core::Engine::Builder()
                    .SetDsm(mall.ValueOrDie())
                    .SetTrainingData(training)
                    .Build();
  if (!engine.ok()) {
    std::fprintf(stderr, "engine: %s\n", engine.status().ToString().c_str());
    return 1;
  }
  if (!engine.ValueOrDie()->training_status().ok()) {
    std::fprintf(stderr, "train: %s\n",
                 engine.ValueOrDie()->training_status().ToString().c_str());
    return 1;
  }

  // 5. The service: batch translation through a session.
  core::Service service(engine.ValueOrDie());
  auto response = service.Translate({.sequences = {raw}});
  if (!response.ok()) {
    std::fprintf(stderr, "translate: %s\n", response.status().ToString().c_str());
    return 1;
  }
  const core::TranslationResult& r = response->results[0];

  // 6. Show what happened.
  std::printf("%s\n", core::RenderTable1(r.raw, r.semantics).c_str());
  std::printf("cleaning: %zu violations, %zu floor-corrected, %zu interpolated\n",
              r.cleaning_report.speed_violations, r.cleaning_report.floor_corrected,
              r.cleaning_report.interpolated);
  std::printf("complementing: %zu gaps filled, %zu triplets inferred\n",
              r.complement_report.gaps_filled,
              r.complement_report.triplets_inferred);
  std::printf("conciseness: %zu raw records -> %zu semantics triplets (%.0fx)\n",
              r.raw.records.size(), r.semantics.Size(),
              static_cast<double>(r.raw.records.size()) /
                  static_cast<double>(std::max<size_t>(r.semantics.Size(), 1)));
  std::printf("\n%s", viewer::RenderTimelineText(r.semantics).c_str());

  // Agreement against the simulator's ground truth.
  core::SemanticsAgreement agreement =
      core::CompareSemantics(device->semantics, r.semantics);
  std::printf("\nagreement vs ground truth: region %.0f%%, event %.0f%%\n",
              agreement.region_match * 100, agreement.event_match * 100);

  // 7. The same data as a live stream: a stream session over the same shared
  // engine, with a sink callback receiving each flushed device.
  auto stream = service.NewStreamSession();
  size_t streamed_triplets = 0;
  stream->SetSink([&](core::TranslationResult result) {
    streamed_triplets += result.semantics.Size();
  });
  for (const positioning::RawRecord& record : raw.records) {
    if (!stream->Ingest(raw.device_id, record).ok()) return 1;
  }
  if (!stream->FlushAll().ok()) return 1;
  std::printf("streaming the same feed: %zu devices emitted, %zu triplets\n",
              stream->EmittedCount(), streamed_triplets);
  return 0;
}
