// Office scenario: traces a floorplan programmatically with the Space
// Modeler's drawing API (the paper's Fig. 2 tool), builds the DSM from the
// drawn shapes, and translates simulated employee movements — showing that
// TRIPS is not mall-specific.
//
//   ./office_scenario
#include <cstdio>

#include "core/trips.h"

using namespace trips;

namespace {

// Step (2) of the workflow, done with drawing operations instead of a mouse:
// import the floorplan image, trace entities, tag them, build the DSM.
Result<dsm::Dsm> TraceOffice() {
  config::SpaceModeler modeler;
  TRIPS_RETURN_NOT_OK(modeler.ImportFloorplan(0, "G", 60.0, 24.0));

  // Trace the corridor and tag it.
  TRIPS_ASSIGN_OR_RETURN(
      config::ShapeId corridor,
      modeler.DrawRectangle(dsm::EntityKind::kHallway, "corridor", 0, 0, 10, 60, 14));
  TRIPS_RETURN_NOT_OK(modeler.AssignTag(corridor, "corridor"));
  TRIPS_RETURN_NOT_OK(modeler.MarkAsRegion(corridor, "corridor"));

  // Trace six rooms with doors onto the corridor; the last one is drawn
  // deliberately wrong, undone, and redrawn — exercising undo/redo.
  struct RoomSpec {
    const char* name;
    double x;
    bool top;
    const char* category;
  };
  const RoomSpec rooms[] = {
      {"Lobby", 2, false, "lobby"},        {"Lab", 22, false, "office"},
      {"Server Room", 42, false, "infra"}, {"Office-A", 2, true, "office"},
      {"Office-B", 22, true, "office"},    {"Meeting Room", 42, true, "meeting"},
  };
  for (const RoomSpec& spec : rooms) {
    double y0 = spec.top ? 14 : 2;
    double y1 = spec.top ? 22 : 10;
    TRIPS_ASSIGN_OR_RETURN(config::ShapeId room,
                           modeler.DrawRectangle(dsm::EntityKind::kRoom, spec.name,
                                                 0, spec.x, y0, spec.x + 16, y1));
    TRIPS_RETURN_NOT_OK(modeler.AssignTag(room, spec.category));
    TRIPS_RETURN_NOT_OK(modeler.MarkAsRegion(room, spec.category));
    double door_y = spec.top ? 14 : 10;
    TRIPS_RETURN_NOT_OK(
        modeler
            .DrawRectangle(dsm::EntityKind::kDoor, std::string(spec.name) + "-door",
                           0, spec.x + 7, door_y - 0.5, spec.x + 9, door_y + 0.5)
            .status());
  }

  // Oops: a pillar drawn in the middle of the corridor — undo it.
  TRIPS_RETURN_NOT_OK(
      modeler.DrawCircle(dsm::EntityKind::kObstacle, "pillar", 0, {30, 12}, 1.0)
          .status());
  TRIPS_RETURN_NOT_OK(modeler.Undo());

  modeler.SetTagStyle("office", "#cfe8cf");
  modeler.SetTagStyle("meeting", "#f6d6ad");
  std::printf("traced %zu shapes\n", modeler.shapes().size());
  return modeler.BuildDsm("example-office");
}

}  // namespace

int main() {
  auto office = TraceOffice();
  if (!office.ok()) {
    std::fprintf(stderr, "trace: %s\n", office.status().ToString().c_str());
    return 1;
  }
  std::printf("DSM: %zu entities, %zu regions\n", office->entities().size(),
              office->regions().size());

  auto planner = dsm::RoutePlanner::Build(&office.ValueOrDie());
  if (!planner.ok()) return 1;

  // Employees visit offices and the meeting room; longer stays than shoppers.
  mobility::GeneratorOptions gen_opt;
  gen_opt.target_categories = {"office", "meeting", "lobby"};
  gen_opt.wander_categories = {"corridor"};
  gen_opt.stay_min = 10 * kMillisPerMinute;
  gen_opt.stay_max = 40 * kMillisPerMinute;
  gen_opt.pass_by_prob = 0.2;
  mobility::MobilityGenerator generator(&office.ValueOrDie(), &planner.ValueOrDie(),
                                        gen_opt);
  Rng rng(42);
  TimestampMs morning = ParseTimestamp("2017-01-02 09:00:00").ValueOrDie();
  auto fleet = generator.GenerateFleet(6, {morning, morning + kMillisPerHour}, &rng,
                                       "emp-");
  if (!fleet.ok()) return 1;

  positioning::ErrorModelOptions noise;
  noise.floor_count = 1;
  noise.xy_noise_sigma = 1.0;
  std::vector<positioning::PositioningSequence> raw;
  for (const mobility::GeneratedDevice& dev : fleet.ValueOrDie()) {
    raw.push_back(positioning::ApplyErrorModel(dev.truth, noise, &rng));
  }

  core::TranslatorOptions opt;
  opt.annotator.splitter.eps_space = 2.5;
  auto engine = core::Engine::Builder()
                    .BorrowDsm(&office.ValueOrDie())
                    .SetOptions(opt)
                    .Build();
  if (!engine.ok()) return 1;
  core::Service service(engine.ValueOrDie());
  auto response = service.Translate({.sequences = std::move(raw)});
  if (!response.ok()) {
    std::fprintf(stderr, "translate: %s\n", response.status().ToString().c_str());
    return 1;
  }
  const std::vector<core::TranslationResult>* results = &response->results;

  for (const core::TranslationResult& r : *results) {
    std::printf("\n%s", viewer::RenderTimelineText(r.semantics).c_str());
  }

  // Who visited the meeting room, and for how long in total?
  const dsm::SemanticRegion* meeting = office->FindRegionByName("Meeting Room");
  DurationMs meeting_time = 0;
  int visitors = 0;
  for (const core::TranslationResult& r : *results) {
    bool visited = false;
    for (const core::MobilitySemantic& s : r.semantics.semantics) {
      if (s.region == meeting->id && s.event == core::kEventStay) {
        meeting_time += s.range.Duration();
        visited = true;
      }
    }
    if (visited) ++visitors;
  }
  std::printf("\nmeeting room: %d visitors, %lld minutes of stays in total\n",
              visitors, static_cast<long long>(meeting_time / kMillisPerMinute));
  return 0;
}
