// The paper's §4 walk-through: the five-step workflow on a 7-floor shopping
// mall. Generates a week of shopper traffic, configures the Data Selector
// with the mall's operating hours (10:00-22:00), trains the event model from
// Event-Editor-designated segments, translates, and exports result files plus
// an HTML view.
//
//   ./mall_scenario [output_dir]
#include <cstdio>
#include <filesystem>

#include "core/trips.h"

using namespace trips;

int main(int argc, char** argv) {
  std::string out_dir = argc > 1 ? argv[1] : "mall_out";
  std::filesystem::create_directories(out_dir);

  // The venue: a 7-floor mall (the paper's demonstration dataset venue).
  auto mall = dsm::BuildMallDsm({.floors = 7, .shops_per_arm = 3});
  if (!mall.ok()) return 1;
  auto planner = dsm::RoutePlanner::Build(&mall.ValueOrDie());
  if (!planner.ok()) return 1;

  // Simulate 3 days x 20 shoppers with a mid-quality Wi-Fi error model.
  mobility::MobilityGenerator generator(&mall.ValueOrDie(), &planner.ValueOrDie());
  Rng rng(7);
  TimestampMs day0 = ParseTimestamp("2017-01-01 10:00:00").ValueOrDie();
  std::vector<positioning::PositioningSequence> raw_feed;
  std::vector<mobility::GeneratedDevice> truths;
  positioning::ErrorModelOptions noise;  // defaults: sigma 1.5 m, 5% floor errors
  for (int day = 0; day < 3; ++day) {
    TimeRange window{day0 + day * kMillisPerDay,
                     day0 + day * kMillisPerDay + 10 * kMillisPerHour};
    auto fleet = generator.GenerateFleet(20, window, &rng,
                                         "3a." + std::to_string(day) + ".");
    if (!fleet.ok()) return 1;
    std::vector<mobility::GeneratedDevice> day_fleet = std::move(fleet).ValueOrDie();
    for (mobility::GeneratedDevice& dev : day_fleet) {
      raw_feed.push_back(positioning::ApplyErrorModel(dev.truth, noise, &rng));
      truths.push_back(std::move(dev));
    }
  }
  std::printf("simulated %zu devices\n", raw_feed.size());

  // Step (1): positioning data + selection rules: operating hours, at least
  // 15 minutes of data.
  config::DataSelector selector;
  selector.AddSequences(raw_feed);
  selector.SetRule(config::And({
      config::PeriodicPattern(10 * kMillisPerHour, 22 * kMillisPerHour, 0.95),
      config::MinDuration(15 * kMillisPerMinute),
      config::DeviceIdPattern("3a.*"),
  }));

  // Step (3): define event patterns and designate training segments from a
  // handful of browsed sequences (the Fig. 5(3) interaction).
  config::EventEditor editor;
  editor.DefinePattern(core::kEventStay, "shopper dwells in one shop");
  editor.DefinePattern(core::kEventPassBy, "shopper passes through a region");
  editor.DefinePattern(core::kEventWander, "shopper drifts around a hall");
  for (size_t d = 0; d < 8 && d < truths.size(); ++d) {
    for (const core::MobilitySemantic& s : truths[d].semantics.semantics) {
      editor.DesignateRange(s.event, truths[d].truth, s.range);  // best effort
    }
  }
  auto counts = editor.SegmentCounts();
  for (const auto& [event, n] : counts) {
    std::printf("training segments for '%s': %zu\n", event.c_str(), n);
  }

  // Step (2)+(3) assembled: the immutable engine — DSM plus the event model
  // trained from the Event Editor's designated segments. Persist the DSM for
  // reuse in later sessions.
  dsm::SaveToFile(*mall, out_dir + "/mall_dsm.json");
  auto engine = core::Engine::Builder()
                    .SetDsm(mall.ValueOrDie())
                    .SetTrainingData(editor.training_data())
                    .Build();
  if (!engine.ok()) {
    std::fprintf(stderr, "engine: %s\n", engine.status().ToString().c_str());
    return 1;
  }

  // Step (4): translate the selected sequences through the service.
  core::Service service(engine.ValueOrDie());
  auto selected = selector.Select();
  if (!selected.ok()) return 1;
  auto response = service.Translate({.sequences = std::move(selected).ValueOrDie()});
  if (!response.ok()) {
    std::fprintf(stderr, "run: %s\n", response.status().ToString().c_str());
    return 1;
  }
  const std::vector<core::TranslationResult>* results = &response->results;
  std::printf("translated %zu selected devices (%zu workers, %.0f ms)\n",
              results->size(), response->workers_used, response->elapsed_ms);

  // Step (5): export result files and an HTML view of the first device.
  auto written = core::ExportResultFiles(*results, out_dir);
  if (!written.ok()) return 1;
  std::printf("wrote %zu result files to %s/\n", written.ValueOrDie(),
              out_dir.c_str());

  const core::TranslationResult& first = (*results)[0];
  viewer::MapRenderer renderer(&engine.ValueOrDie()->dsm());
  renderer.AddTimeline(viewer::Timeline::FromPositioning(first.raw, "raw"));
  renderer.AddTimeline(viewer::Timeline::FromPositioning(first.cleaned, "cleaned"));
  renderer.AddTimeline(viewer::Timeline::FromSemantics(
      first.semantics, first.cleaned, viewer::DisplayPointPolicy::kTemporalMiddle,
      "semantics"));
  viewer::HtmlExportOptions html;
  html.title = "TRIPS mall walk-through: " + first.semantics.device_id;
  if (!viewer::WriteHtml(engine.ValueOrDie()->dsm(), renderer, out_dir + "/view.html", html)
           .ok()) {
    return 1;
  }
  std::printf("wrote %s/view.html\n", out_dir.c_str());

  // Aggregate accuracy vs ground truth over the selected devices.
  double region = 0, event = 0;
  int matched = 0;
  for (const core::TranslationResult& r : *results) {
    for (const mobility::GeneratedDevice& t : truths) {
      if (t.truth.device_id != r.semantics.device_id) continue;
      core::SemanticsAgreement a = core::CompareSemantics(t.semantics, r.semantics);
      region += a.region_match;
      event += a.event_match;
      ++matched;
    }
  }
  if (matched > 0) {
    std::printf("mean agreement vs ground truth: region %.0f%%, event %.0f%%\n",
                region / matched * 100, event / matched * 100);
  }

  // Downstream analytics (the paper's motivating applications): popular
  // regions, conversion, and a popularity heatmap of the ground floor — all
  // served from a TripStore fed with the batch response, the layer analyses
  // run on once translation has happened (see persist_and_query for the
  // on-disk version).
  auto stored = store::TripStore::Open({});
  if (!stored.ok() || !stored.ValueOrDie()->AppendResponse(*response).ok()) return 1;
  core::MobilityAnalytics analytics =
      stored.ValueOrDie()->BuildAnalytics(&engine.ValueOrDie()->dsm());
  std::printf("\ntop regions by visits:\n%s", analytics.FormatReport(8).c_str());
  if (viewer::WriteRegionHeatmapSvg(engine.ValueOrDie()->dsm(), analytics, 0,
                                    out_dir + "/heatmap_1F.svg")
          .ok()) {
    std::printf("wrote %s/heatmap_1F.svg\n", out_dir.c_str());
  }
  return 0;
}
