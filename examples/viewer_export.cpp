// Viewer showcase: renders one translated device every way the Viewer can —
// per-floor SVG maps with visibility toggles and time windows, the timeline
// abstraction under both display-point policies, an ASCII map for terminals,
// and the standalone HTML export.
//
//   ./viewer_export [output_dir]
#include <cstdio>
#include <filesystem>

#include "core/trips.h"

using namespace trips;

int main(int argc, char** argv) {
  std::string out_dir = argc > 1 ? argv[1] : "viewer_out";
  std::filesystem::create_directories(out_dir);

  auto mall = dsm::BuildMallDsm({.floors = 2, .shops_per_arm = 2});
  if (!mall.ok()) return 1;
  auto planner = dsm::RoutePlanner::Build(&mall.ValueOrDie());
  if (!planner.ok()) return 1;

  mobility::MobilityGenerator generator(&mall.ValueOrDie(), &planner.ValueOrDie());
  Rng rng(99);
  auto device = generator.GenerateDevice("3a.6f.14", 0, &rng);
  if (!device.ok()) return 1;
  positioning::ErrorModelOptions noise;
  noise.floor_count = 2;
  positioning::PositioningSequence raw =
      positioning::ApplyErrorModel(device->truth, noise, &rng);

  auto engine = core::Engine::Builder().BorrowDsm(&mall.ValueOrDie()).Build();
  if (!engine.ok()) return 1;
  core::Service service(engine.ValueOrDie());
  auto response = service.Translate({.sequences = {raw}});
  if (!response.ok()) return 1;
  const core::TranslationResult& r = response->results[0];

  // All four mobility data sequences of §3 on one canvas.
  viewer::MapRenderer renderer(&mall.ValueOrDie());
  renderer.AddTimeline(viewer::Timeline::FromPositioning(r.raw, "raw"));
  renderer.AddTimeline(viewer::Timeline::FromPositioning(r.cleaned, "cleaned"));
  renderer.AddTimeline(viewer::Timeline::FromPositioning(device->truth, "truth"));
  renderer.AddTimeline(viewer::Timeline::FromSemantics(
      r.semantics, r.cleaned, viewer::DisplayPointPolicy::kTemporalMiddle,
      "semantics"));

  // Per-floor SVGs.
  for (const dsm::Floor& floor : mall->floors()) {
    std::string path = out_dir + "/floor_" + floor.name + ".svg";
    if (!renderer.WriteFloorSvg(floor.id, path).ok()) return 1;
    std::printf("wrote %s\n", path.c_str());
  }

  // Visibility control: hide the noisy raw data, keep cleaned + semantics.
  viewer::MapViewOptions clean_only;
  clean_only.visible["raw"] = false;
  clean_only.visible["truth"] = false;
  renderer.WriteFloorSvg(0, out_dir + "/floor_1F_clean_only.svg", clean_only);
  std::printf("wrote %s/floor_1F_clean_only.svg (raw/truth hidden)\n",
              out_dir.c_str());

  // Timeline control: zoom to the first semantics entry's time range.
  if (!r.semantics.Empty()) {
    viewer::MapViewOptions windowed;
    windowed.window = r.semantics.semantics.front().range;
    renderer.WriteFloorSvg(0, out_dir + "/floor_1F_first_entry.svg", windowed);
    std::printf("wrote %s/floor_1F_first_entry.svg (windowed)\n", out_dir.c_str());
  }

  // The HTML bundle (map views + timeline listing).
  viewer::HtmlExportOptions html;
  html.title = "TRIPS viewer export: 3a.6f.14";
  if (!viewer::WriteHtml(*mall, renderer, out_dir + "/view.html", html).ok()) {
    return 1;
  }
  std::printf("wrote %s/view.html\n", out_dir.c_str());

  // Terminal rendering.
  std::vector<viewer::Timeline> for_ascii;
  for_ascii.push_back(viewer::Timeline::FromSemantics(
      r.semantics, r.cleaned, viewer::DisplayPointPolicy::kSpatialCenter,
      "semantics"));
  std::printf("\nfloor 1F (ASCII, * = semantics display points):\n%s\n",
              viewer::RenderFloorAscii(*mall, 0, for_ascii).c_str());
  std::printf("%s", viewer::RenderTimelineText(r.semantics).c_str());
  return 0;
}
