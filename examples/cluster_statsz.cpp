// Observability walk-through: a two-venue cluster ingests simulated traffic
// and dumps its /statsz snapshot — every layer's counters, queue gauges and
// latency histograms (pool, translate stages, stream ingest-to-result, store
// append/query, routing & spatial caches, per-venue rollups) as one JSON
// document. This is the smoke target CI's sanitizer job runs.
//
//   ./cluster_statsz
#include <cstdio>
#include <iostream>

#include "cluster/cluster.h"
#include "core/trips.h"
#include "mobility/generator.h"
#include "positioning/error_model.h"

using namespace trips;

namespace {

struct Venue {
  std::string id;
  std::unique_ptr<dsm::Dsm> dsm;
  std::unique_ptr<dsm::RoutePlanner> planner;
  std::shared_ptr<const core::Engine> engine;
  std::vector<positioning::PositioningSequence> fleet;
};

bool MakeVenue(Venue* venue, const std::string& id, Result<dsm::Dsm> built,
               std::vector<std::string> target_categories, int devices,
               uint64_t seed) {
  if (!built.ok()) return false;
  venue->id = id;
  venue->dsm = std::make_unique<dsm::Dsm>(std::move(built).ValueOrDie());
  auto planner = dsm::RoutePlanner::Build(venue->dsm.get());
  if (!planner.ok()) return false;
  venue->planner =
      std::make_unique<dsm::RoutePlanner>(std::move(planner).ValueOrDie());
  auto engine = core::Engine::Builder().BorrowDsm(venue->dsm.get()).Build();
  if (!engine.ok()) return false;
  venue->engine = *engine;

  mobility::GeneratorOptions gen;
  gen.target_categories = std::move(target_categories);
  mobility::MobilityGenerator generator(venue->dsm.get(), venue->planner.get(),
                                        gen);
  positioning::ErrorModelOptions noise;
  noise.floor_count = static_cast<int>(venue->dsm->FloorCount());
  for (int i = 0; i < devices; ++i) {
    Rng rng(seed + 10 * i);
    auto dev =
        generator.GenerateDevice(id + "-dev-" + std::to_string(i), 0, &rng);
    if (!dev.ok()) return false;
    venue->fleet.push_back(positioning::ApplyErrorModel(dev->truth, noise, &rng));
  }
  return true;
}

}  // namespace

int main() {
  Venue mall, office;
  if (!MakeVenue(&mall, "mall", dsm::BuildMallDsm({.floors = 3, .shops_per_arm = 3}),
                 {"shop", "hall"}, 6, 101) ||
      !MakeVenue(&office, "office", dsm::BuildOfficeDsm(),
                 {"office", "meeting", "lobby"}, 4, 211)) {
    std::fprintf(stderr, "venue setup failed\n");
    return 1;
  }

  cluster::Cluster city({.worker_threads = 2});
  for (Venue* venue : {&mall, &office}) {
    auto status = city.AddVenue({.venue_id = venue->id, .engine = venue->engine});
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
  }

  // Feed both venues' fleets record by record (interleaved, like live feeds).
  size_t max_len = 0;
  for (const Venue* venue : {&mall, &office}) {
    for (const auto& seq : venue->fleet) {
      max_len = std::max(max_len, seq.records.size());
    }
  }
  for (size_t r = 0; r < max_len; ++r) {
    for (const Venue* venue : {&mall, &office}) {
      for (const auto& seq : venue->fleet) {
        if (r >= seq.records.size()) continue;
        if (!city.Ingest(venue->id, seq.device_id, seq.records[r]).ok()) {
          return 1;
        }
      }
    }
  }
  if (!city.FlushAll().ok()) return 1;

  // A couple of store queries so the query-latency histograms are non-empty.
  (void)city.DeviceHistoryAcrossVenues("mall-dev-0");
  core::MobilityAnalytics analytics = city.BuildAnalytics();
  (void)analytics;

  cluster::ClusterStats stats = city.Stats();
  std::fprintf(stderr, "ingested %zu records into %zu venues, stored %zu\n",
               stats.ingested, stats.venues, stats.stored_sequences);

  // The /statsz snapshot: deterministic key order, one document.
  city.DumpStatsz(std::cout);
  return 0;
}
