// Persist + query walk-through: translate a day of simulated mall traffic,
// sink the semantics into an on-disk TripStore, reopen the store cold (as a
// later analytics session would), and answer queries straight from it —
// device history, region visitors in a time window, top flows, and a
// store-backed heatmap. The demonstration that analytics run on stored
// mobility semantics, not raw positioning records.
//
//   ./persist_and_query [output_dir]
#include <cstdio>
#include <filesystem>

#include "core/trips.h"

using namespace trips;

int main(int argc, char** argv) {
  std::string out_dir = argc > 1 ? argv[1] : "store_out";
  std::filesystem::create_directories(out_dir);
  std::string store_dir = out_dir + "/trip_store";
  // Each invocation is a fresh walk-through; without this, session 1 would
  // reopen a surviving store and append on top of the previous run's corpus.
  std::filesystem::remove_all(store_dir);

  auto mall = dsm::BuildMallDsm({.floors = 3, .shops_per_arm = 3});
  if (!mall.ok()) return 1;
  auto planner = dsm::RoutePlanner::Build(&mall.ValueOrDie());
  if (!planner.ok()) return 1;
  mobility::MobilityGenerator generator(&mall.ValueOrDie(), &planner.ValueOrDie());

  // A morning of shopper traffic with mid-quality Wi-Fi noise.
  Rng rng(31);
  TimestampMs open = ParseTimestamp("2017-01-01 10:00:00").ValueOrDie();
  auto fleet = generator.GenerateFleet(24, {open, open + 4 * kMillisPerHour}, &rng,
                                       "shopper.");
  if (!fleet.ok()) return 1;
  positioning::ErrorModelOptions noise;
  noise.floor_count = 3;
  std::vector<positioning::PositioningSequence> raw_feed;
  for (const mobility::GeneratedDevice& dev : *fleet) {
    raw_feed.push_back(positioning::ApplyErrorModel(dev.truth, noise, &rng));
  }

  auto engine = core::Engine::Builder().SetDsm(mall.ValueOrDie()).Build();
  if (!engine.ok()) return 1;
  core::Service service(engine.ValueOrDie());

  store::StoreOptions store_options;
  store_options.directory = store_dir;

  // ---- session 1: translate and persist -----------------------------------
  {
    auto stored = store::TripStore::Open(store_options);
    if (!stored.ok()) {
      std::fprintf(stderr, "store: %s\n", stored.status().ToString().c_str());
      return 1;
    }
    auto response = service.Translate({.sequences = raw_feed});
    if (!response.ok()) return 1;
    if (!stored.ValueOrDie()->AppendResponse(*response).ok()) return 1;
    if (!stored.ValueOrDie()->Flush().ok()) return 1;
    store::StoreStats stats = stored.ValueOrDie()->Stats();
    std::printf("persisted %zu sequences / %zu triplets in %zu segment(s) to %s\n",
                stats.sequences, stats.triplets, stats.persisted_segments,
                store_dir.c_str());
  }

  // ---- session 2: reopen cold and query -----------------------------------
  store_options.worker_threads = 4;
  auto stored = store::TripStore::Open(store_options);
  if (!stored.ok()) return 1;
  const store::TripStore& trips_db = *stored.ValueOrDie();
  const dsm::Dsm& space = engine.ValueOrDie()->dsm();

  store::StoreStats stats = trips_db.Stats();
  std::printf("reopened store: %zu devices, %zu sequences, span %s .. %s\n\n",
              stats.devices, stats.sequences,
              FormatTimestamp(stats.span.begin).c_str(),
              FormatTimestamp(stats.span.end).c_str());

  // Device history: the first stored device's timeline.
  std::vector<std::string> devices = trips_db.Devices();
  if (devices.empty()) {
    std::fprintf(stderr, "store is empty\n");
    return 1;
  }
  std::printf("%s\n", viewer::RenderDeviceTimelineText(trips_db, devices.front()).c_str());

  // Region visitors over the first hour of a popular shop.
  core::MobilityAnalytics analytics = trips_db.BuildAnalytics(&space);
  auto top = analytics.TopRegionsByVisits(1);
  if (!top.empty()) {
    TimestampMs t0 = stats.span.begin;
    auto visits = trips_db.RegionVisitors(top[0].region, t0, t0 + kMillisPerHour);
    std::printf("'%s' visitors in the first hour: %zu triplet(s)\n",
                top[0].region_name.c_str(), visits.size());
    for (size_t i = 0; i < visits.size() && i < 5; ++i) {
      std::printf("  %-14s %s\n", visits[i].device_id.c_str(),
                  visits[i].visit.ToString().c_str());
    }
  }

  // Strongest region-to-region flow in the stored corpus.
  size_t best = 0;
  dsm::RegionId best_from = dsm::kInvalidRegion, best_to = dsm::kInvalidRegion;
  for (const auto& [from, row] : trips_db.FlowMatrix()) {
    for (const auto& [to, n] : row) {
      if (n > best) {
        best = n;
        best_from = from;
        best_to = to;
      }
    }
  }
  if (best > 0) {
    const dsm::SemanticRegion* a = space.GetRegion(best_from);
    const dsm::SemanticRegion* b = space.GetRegion(best_to);
    std::printf("\nstrongest flow: %s -> %s (%zu transitions; FlowBetween=%zu)\n",
                a != nullptr ? a->name.c_str() : "?",
                b != nullptr ? b->name.c_str() : "?", best,
                trips_db.FlowBetween(best_from, best_to));
  }

  std::printf("\ntop regions by visits (store-backed analytics):\n%s",
              analytics.FormatReport(8).c_str());

  // Heatmap from the store-built analytics already in hand (the one-call
  // viewer::WriteStoreHeatmapSvg re-aggregates the corpus itself).
  std::string heatmap = out_dir + "/store_heatmap_1F.svg";
  if (viewer::WriteRegionHeatmapSvg(space, analytics, 0, heatmap).ok()) {
    std::printf("\nwrote %s\n", heatmap.c_str());
  }
  return 0;
}
