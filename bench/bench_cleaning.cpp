// Columnar-cleaning benchmarks: the SoA RecordBlock pipeline (reused block +
// CleanerScratch arena, combined SnapIfOutside pass 4) vs the retained AoS
// reference implementation, at 1x / 4x / 16x venue scale with the vectorized
// kernels on and off, the snap-heavy high-noise configuration the vectorized
// pass-4 batch targets, the parallel intra-sequence passes at 1–8 threads,
// and the batched vs per-record snap query. Records/sec is reported as
// items_per_second; spatial snap-probe counts per sequence ride along as
// counters (probes are reset per benchmark, so each row reports its own
// config's probe cost). Run through bench/run_benches.sh to capture
// BENCH_cleaning.json.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <map>
#include <memory>
#include <vector>

#include "bench_common.h"

using namespace trips;

namespace {

constexpr int kFloors = 7;

// state.range(0) is the venue scale factor (1, 4, 16): shops_per_arm = 3x.
bench::MallContext& ContextFor(int scale) {
  static std::map<int, bench::MallContext> contexts;
  auto it = contexts.find(scale);
  if (it == contexts.end()) {
    it = contexts.emplace(scale, bench::MallContext::Make(kFloors, 3 * scale)).first;
  }
  return it->second;
}

// A long noisy corridor walk on the scaled venue: the input shape the cleaner
// sees from heavy devices (outliers + floor errors + jitter force all four
// passes to do real work). The corridor stretches with the venue scale.
positioning::PositioningSequence NoisyWalk(const bench::MallContext& ctx, int n,
                                           uint64_t seed) {
  geo::BoundingBox bounds = ctx.dsm->FloorBounds(0);
  double x_lo = bounds.min.x + 5, x_hi = bounds.max.x - 5;
  positioning::PositioningSequence truth;
  truth.device_id = "bench-walker";
  double x = x_lo;
  double dir = 3.0;
  for (int i = 0; i < n; ++i) {
    truth.records.emplace_back(x, 30.0, 0, static_cast<TimestampMs>(i) * 3000);
    if (x + dir > x_hi || x + dir < x_lo) dir = -dir;
    x += dir;
  }
  positioning::ErrorModelOptions noise = bench::DefaultNoise(kFloors);
  noise.dropout_rate = 0;
  noise.gaps_per_hour = 0;
  Rng rng(seed);
  return positioning::ApplyErrorModel(truth, noise, &rng);
}

cleaning::CleanerOptions BenchCleanerOptions() {
  cleaning::CleanerOptions opt;
  opt.smoothing_window = 3;  // the full-pipeline default
  return opt;
}

void SetCounters(benchmark::State& state, const dsm::Dsm& dsm, size_t records) {
  state.counters["entities"] = static_cast<double>(dsm.entities().size());
  state.counters["records_per_seq"] = static_cast<double>(records);
}

// Per-iteration spatial snap-probe counts for this benchmark's config: probes
// are reset before the timing loop, so the exported numbers are this row's
// own query cost, not an accumulation across earlier rows.
void SetProbeCounters(benchmark::State& state, const dsm::Dsm& dsm) {
  dsm::SpatialProbeStats probes = dsm.spatial_index().probes();
  double iters = static_cast<double>(std::max<int64_t>(state.iterations(), 1));
  state.counters["snap_probes_per_iter"] =
      static_cast<double>(probes.snap_probes) / iters;
  state.counters["snapped_outside_per_iter"] =
      static_cast<double>(probes.snapped_outside) / iters;
}

// ---- AoS reference vs SoA block path, venue scaling ------------------------

constexpr int kSeqRecords = 4096;

void BM_Clean_AoSReference(benchmark::State& state) {
  bench::MallContext& ctx = ContextFor(static_cast<int>(state.range(0)));
  cleaning::RawDataCleaner cleaner(ctx.dsm.get(), ctx.planner.get(),
                                   BenchCleanerOptions());
  positioning::PositioningSequence raw = NoisyWalk(ctx, kSeqRecords, 17);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cleaner.CleanReference(raw));
  }
  state.SetItemsProcessed(state.iterations() * raw.records.size());
  SetCounters(state, *ctx.dsm, raw.records.size());
}
BENCHMARK(BM_Clean_AoSReference)->Arg(1)->Arg(4)->Arg(16)->Unit(benchmark::kMillisecond);

// state.range(1): vectorized kernels off (0 = the scalar per-record SoA path,
// the pre-vectorization baseline) or on (1).
void BM_Clean_SoA(benchmark::State& state) {
  bench::MallContext& ctx = ContextFor(static_cast<int>(state.range(0)));
  cleaning::CleanerOptions opt = BenchCleanerOptions();
  opt.vectorize = state.range(1) != 0;
  cleaning::RawDataCleaner cleaner(ctx.dsm.get(), ctx.planner.get(), opt);
  positioning::PositioningSequence raw = NoisyWalk(ctx, kSeqRecords, 17);
  // Steady-state block pipeline: the work block and scratch arena are reused
  // across sequences (reserve-once), as a translation worker holds them.
  positioning::RecordBlock block;
  cleaning::CleanerScratch scratch;
  ctx.dsm->spatial_index().ResetProbes();
  for (auto _ : state) {
    block.AssignFrom(raw);
    cleaner.CleanBlock(&block, &scratch);
    benchmark::DoNotOptimize(block.xs.data());
  }
  state.SetItemsProcessed(state.iterations() * raw.records.size());
  SetCounters(state, *ctx.dsm, raw.records.size());
  SetProbeCounters(state, *ctx.dsm);
}
BENCHMARK(BM_Clean_SoA)
    ->ArgsProduct({{1, 4, 16}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

// The snap-heavy configuration: sparse fixes (120 s spacing) with 70 m jitter
// — slow enough that the speed scan accepts nearly everything (no route
// interpolation), scattered enough that most records land outside the
// building envelope entirely, far from any walkable edge. Pass 4's
// expanding-ring searches dominate, which is exactly what the cell-sorted +
// ring-seeded batch snap targets.
void BM_Clean_SoA_HighNoise(benchmark::State& state) {
  bench::MallContext& ctx = ContextFor(static_cast<int>(state.range(0)));
  cleaning::CleanerOptions opt = BenchCleanerOptions();
  opt.vectorize = state.range(1) != 0;
  cleaning::RawDataCleaner cleaner(ctx.dsm.get(), ctx.planner.get(), opt);
  positioning::PositioningSequence raw = [&] {
    geo::BoundingBox bounds = ctx.dsm->FloorBounds(0);
    double x_lo = bounds.min.x + 5, x_hi = bounds.max.x - 5;
    positioning::PositioningSequence truth;
    truth.device_id = "bench-noisy-walker";
    double x = x_lo;
    double dir = 3.0;
    for (int i = 0; i < kSeqRecords; ++i) {
      truth.records.emplace_back(x, 30.0, 0,
                                 static_cast<TimestampMs>(i) * 120000);
      if (x + dir > x_hi || x + dir < x_lo) dir = -dir;
      x += dir;
    }
    positioning::ErrorModelOptions noise = bench::DefaultNoise(kFloors);
    noise.xy_noise_sigma = 70.0;  // most fixes land outside the building
    noise.floor_error_rate = 0;
    noise.outlier_rate = 0;
    noise.dropout_rate = 0;
    noise.gaps_per_hour = 0;
    Rng rng(31);
    return positioning::ApplyErrorModel(truth, noise, &rng);
  }();
  positioning::RecordBlock block;
  cleaning::CleanerScratch scratch;
  ctx.dsm->spatial_index().ResetProbes();
  for (auto _ : state) {
    block.AssignFrom(raw);
    cleaner.CleanBlock(&block, &scratch);
    benchmark::DoNotOptimize(block.xs.data());
  }
  state.SetItemsProcessed(state.iterations() * raw.records.size());
  SetCounters(state, *ctx.dsm, raw.records.size());
  SetProbeCounters(state, *ctx.dsm);
}
BENCHMARK(BM_Clean_SoA_HighNoise)
    ->ArgsProduct({{1, 4, 16}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

// ---- parallel intra-sequence cleaning, 1–8 threads --------------------------

// state.range(0): venue scale; state.range(1): total threads (pool workers =
// threads - 1; the calling thread participates in ParallelFor);
// state.range(2): vectorized kernels off/on — thread scaling and
// vectorization compose, so both axes are reported.
void BM_Clean_SoA_Threads(benchmark::State& state) {
  bench::MallContext& ctx = ContextFor(static_cast<int>(state.range(0)));
  cleaning::CleanerOptions opt = BenchCleanerOptions();
  opt.parallel_min_records = 2048;
  opt.vectorize = state.range(2) != 0;
  cleaning::RawDataCleaner cleaner(ctx.dsm.get(), ctx.planner.get(), opt);
  positioning::PositioningSequence raw = NoisyWalk(ctx, 32768, 23);
  util::ThreadPool pool(static_cast<size_t>(state.range(1)) - 1);
  positioning::RecordBlock block;
  cleaning::CleanerScratch scratch;
  for (auto _ : state) {
    block.AssignFrom(raw);
    cleaner.CleanBlock(&block, &scratch, nullptr, &pool);
    benchmark::DoNotOptimize(block.xs.data());
  }
  state.SetItemsProcessed(state.iterations() * raw.records.size());
  SetCounters(state, *ctx.dsm, raw.records.size());
}
BENCHMARK(BM_Clean_SoA_Threads)
    ->ArgsProduct({{16}, {1, 2, 4, 8}, {0, 1}})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// ---- combined snap query ----------------------------------------------------

void BM_SnapIfOutside_vs_Pair(benchmark::State& state) {
  bench::MallContext& ctx = ContextFor(static_cast<int>(state.range(0)));
  geo::BoundingBox bounds = ctx.dsm->FloorBounds(0);
  Rng rng(29);
  std::vector<geo::IndoorPoint> points;
  for (int i = 0; i < 1024; ++i) {
    points.push_back({rng.Uniform(bounds.min.x - 3, bounds.max.x + 3),
                      rng.Uniform(bounds.min.y - 3, bounds.max.y + 3),
                      static_cast<geo::FloorId>(rng.UniformInt(0, kFloors - 1))});
  }
  bool combined = state.range(1) != 0;
  size_t i = 0;
  for (auto _ : state) {
    const geo::IndoorPoint& p = points[i++ % points.size()];
    if (combined) {
      bool snapped;
      benchmark::DoNotOptimize(ctx.dsm->SnapIfOutside(p, &snapped));
    } else {
      benchmark::DoNotOptimize(ctx.dsm->IsWalkable(p)
                                   ? p
                                   : ctx.dsm->SnapToWalkable(p));
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SnapIfOutside_vs_Pair)
    ->ArgsProduct({{1, 4, 16}, {0, 1}});

// One SnapIfOutsideBatch call over a whole point block vs the same points
// through the per-record SnapIfOutside loop pass 4 used before batching.
// state.range(1): 0 = per-record loop, 1 = batched (cell-sorted) call.
void BM_SnapBatch_vs_PerRecord(benchmark::State& state) {
  bench::MallContext& ctx = ContextFor(static_cast<int>(state.range(0)));
  geo::BoundingBox bounds = ctx.dsm->FloorBounds(0);
  Rng rng(29);
  std::vector<geo::IndoorPoint> points;
  for (int i = 0; i < 1024; ++i) {
    points.push_back({rng.Uniform(bounds.min.x - 3, bounds.max.x + 3),
                      rng.Uniform(bounds.min.y - 3, bounds.max.y + 3),
                      static_cast<geo::FloorId>(rng.UniformInt(0, kFloors - 1))});
  }
  bool batched = state.range(1) != 0;
  std::vector<geo::IndoorPoint> out(points.size());
  std::vector<uint8_t> snapped(points.size());
  ctx.dsm->spatial_index().ResetProbes();
  for (auto _ : state) {
    if (batched) {
      ctx.dsm->SnapIfOutsideBatch(points, out, snapped);
    } else {
      for (size_t i = 0; i < points.size(); ++i) {
        bool s = false;
        out[i] = ctx.dsm->SnapIfOutside(points[i], &s);
        snapped[i] = s ? 1 : 0;
      }
    }
    benchmark::DoNotOptimize(out.data());
    benchmark::DoNotOptimize(snapped.data());
  }
  state.SetItemsProcessed(state.iterations() * points.size());
  SetProbeCounters(state, *ctx.dsm);
}
BENCHMARK(BM_SnapBatch_vs_PerRecord)
    ->ArgsProduct({{1, 4, 16}, {0, 1}});

}  // namespace

BENCHMARK_MAIN();
