// Experiment F3a (paper Fig. 3, Cleaning layer): repair quality and
// throughput as injected error rates grow. The no-cleaning pass-through is
// the baseline. Expected shape: cleaning reduces planar RMSE and floor
// errors at every noise level, with the margin growing with the error rate.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.h"

using namespace trips;
using bench::MallContext;

namespace {

void ReportCleaningSweep() {
  MallContext ctx = MallContext::Make(7, 3);
  cleaning::CleanerOptions copt;
  copt.smoothing_window = 3;
  cleaning::RawDataCleaner cleaner(ctx.dsm.get(), ctx.planner.get(), copt);

  std::printf("=== Fig. 3 / Cleaning: repair quality vs. injected error ===\n\n");
  std::printf("%8s %8s %8s | %9s %9s | %10s %10s | %9s %9s\n", "sigma_m",
              "floor%", "outlier%", "rmse_raw", "rmse_cln", "floor_raw",
              "floor_cln", "violations", "repaired");

  struct Level {
    double sigma, floor_rate, outlier_rate;
  };
  const Level levels[] = {
      {0.5, 0.00, 0.00}, {1.0, 0.02, 0.01}, {1.5, 0.05, 0.01},
      {2.0, 0.10, 0.03}, {3.0, 0.15, 0.05}, {4.0, 0.25, 0.10},
  };
  for (const Level& lvl : levels) {
    positioning::ErrorModelOptions noise;
    noise.xy_noise_sigma = lvl.sigma;
    noise.floor_error_rate = lvl.floor_rate;
    noise.outlier_rate = lvl.outlier_rate;
    noise.dropout_rate = 0;
    noise.gaps_per_hour = 0;
    noise.floor_count = 7;
    auto fleet = bench::MakeFleet(ctx, 8, noise, 404);

    double rmse_raw = 0, rmse_clean = 0;
    size_t floor_raw = 0, floor_clean = 0, violations = 0, repaired = 0, matched = 0;
    for (const bench::NoisyDevice& nd : fleet) {
      cleaning::CleaningReport report;
      positioning::PositioningSequence cleaned = cleaner.Clean(nd.raw, &report);
      positioning::ErrorStats before =
          positioning::CompareToTruth(nd.truth.truth, nd.raw);
      positioning::ErrorStats after =
          positioning::CompareToTruth(nd.truth.truth, cleaned);
      rmse_raw += before.planar_rmse * before.matched;
      rmse_clean += after.planar_rmse * after.matched;
      matched += before.matched;
      floor_raw += before.floor_errors;
      floor_clean += after.floor_errors;
      violations += report.speed_violations;
      repaired += report.floor_corrected + report.interpolated;
    }
    std::printf("%8.1f %8.0f %8.0f | %9.2f %9.2f | %10zu %10zu | %9zu %9zu\n",
                lvl.sigma, lvl.floor_rate * 100, lvl.outlier_rate * 100,
                rmse_raw / matched, rmse_clean / matched, floor_raw, floor_clean,
                violations, repaired);
  }
  std::printf("\n(baseline 'no cleaning' equals the rmse_raw / floor_raw"
              " columns by construction)\n\n");
}

void BM_CleanSequence(benchmark::State& state) {
  static MallContext ctx = MallContext::Make(7, 3);
  positioning::ErrorModelOptions noise = bench::DefaultNoise(7);
  noise.outlier_rate = 0.01 * state.range(0);
  noise.floor_error_rate = 0.02 * state.range(0);
  static auto fleet = bench::MakeFleet(ctx, 2, noise, 505);
  cleaning::RawDataCleaner cleaner(ctx.dsm.get(), ctx.planner.get());
  size_t records = 0;
  for (auto _ : state) {
    cleaning::CleaningReport report;
    auto cleaned = cleaner.Clean(fleet[0].raw, &report);
    benchmark::DoNotOptimize(cleaned);
    records += fleet[0].raw.records.size();
  }
  state.counters["records/s"] =
      benchmark::Counter(static_cast<double>(records), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CleanSequence)->Arg(1)->Arg(3)->Arg(5)->Unit(benchmark::kMillisecond);

void BM_CleanSmoothing(benchmark::State& state) {
  static MallContext ctx = MallContext::Make(7, 3);
  static auto fleet = bench::MakeFleet(ctx, 1, bench::DefaultNoise(7), 606);
  cleaning::CleanerOptions copt;
  copt.smoothing_window = static_cast<size_t>(state.range(0));
  cleaning::RawDataCleaner cleaner(ctx.dsm.get(), ctx.planner.get(), copt);
  for (auto _ : state) {
    auto cleaned = cleaner.Clean(fleet[0].raw, nullptr);
    benchmark::DoNotOptimize(cleaned);
  }
}
BENCHMARK(BM_CleanSmoothing)->Arg(0)->Arg(3)->Arg(7)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  ReportCleaningSweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
