#!/usr/bin/env bash
# Runs the perf-trajectory benchmark suites and captures machine-readable
# results:
#   BENCH_spatial.json  — spatial-index fast path (point location, snapping,
#                         memoized routing, batch distances, venue scaling)
#   BENCH_service.json  — end-to-end Service translation throughput
#   BENCH_cleaning.json — columnar cleaning: SoA RecordBlock + scratch reuse
#                         vs the AoS reference with the vectorized kernels on
#                         and off, the snap-heavy high-noise configuration,
#                         parallel passes at 1-8 threads, combined
#                         SnapIfOutside vs the two-call pair, and the batched
#                         vs per-record snap (with snap-probe counters)
#   BENCH_routing.json  — CH-lite contracted portal graph vs the flat clique
#                         reference (FindRoute cached/uncached, batch
#                         distances, planner build) at 1x/4x/16x venue scale
#   BENCH_cluster.json  — multi-venue Cluster ingest throughput at 1/2/4/8
#                         venue shards, balanced and skewed feeds, plus
#                         city-wide analytics fan-out
#   BENCH_obs_overhead.json — metrics-subsystem cost: Counter/Histogram
#                         primitives (enabled and gated off) and end-to-end
#                         Service throughput with recording on vs off (the
#                         < 2% overhead gate)
#   BENCH_store.json    — TripStore storage axes on the tiled ~100x corpus
#                         (TRIPS_BENCH_STORE_SCALE tiles, one day each):
#                         cold open + first window with eager decode vs the
#                         mmap/lazy path, windowed scans on the partitioned
#                         vs flat layout, plus append/history/visitor
#                         latencies
#   BENCH_loadgen.json  — load-generator SLO curves: the three named
#                         scenarios (steady/diurnal/burst) replayed unpaced
#                         into Service and Cluster targets, plus the steady
#                         scenario paced at fixed wall records/sec for the
#                         throughput-vs-tail-latency curve
#
# Usage: bench/run_benches.sh [build_dir] [out_dir] [min_time]
#   build_dir  where the bench binaries live        (default: build)
#   out_dir    where the JSON files are written     (default: repo root)
#   min_time   google-benchmark --benchmark_min_time (default: 0.05)
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-$(cd "$(dirname "$0")/.." && pwd)}"
MIN_TIME="${3:-0.05}"
mkdir -p "$OUT_DIR"

if [[ ! -x "$BUILD_DIR/bench_spatial_index" ]]; then
  echo "error: $BUILD_DIR/bench_spatial_index not found." >&2
  echo "Configure with google-benchmark available and build first, e.g.:" >&2
  echo "  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release && cmake --build build -j" >&2
  exit 1
fi

# google-benchmark >= 1.7 wants a unit suffix on --benchmark_min_time; older
# releases reject it. Probe once and use whichever form this binary accepts.
min_time_flag="--benchmark_min_time=${MIN_TIME}s"
if ! "$BUILD_DIR/bench_spatial_index" --benchmark_list_tests "$min_time_flag" \
    >/dev/null 2>&1; then
  min_time_flag="--benchmark_min_time=${MIN_TIME}"
fi

run_suite() {
  local binary="$1" out="$2" filter="${3:-}"
  local args=("$min_time_flag" "--benchmark_format=json" "--benchmark_out=$out"
              "--benchmark_out_format=json")
  if [[ -n "$filter" ]]; then args+=("--benchmark_filter=$filter"); fi
  echo "== $binary -> $out"
  "$BUILD_DIR/$binary" "${args[@]}" > /dev/null
}

run_suite bench_spatial_index "$OUT_DIR/BENCH_spatial.json"
run_suite bench_service_throughput "$OUT_DIR/BENCH_service.json"
run_suite bench_cleaning "$OUT_DIR/BENCH_cleaning.json"
run_suite bench_routing "$OUT_DIR/BENCH_routing.json"
run_suite bench_cluster "$OUT_DIR/BENCH_cluster.json"
run_suite bench_obs_overhead "$OUT_DIR/BENCH_obs_overhead.json"
# Filtered to the registered benchmarks so the default latency-study payload
# (meant for humans) doesn't slow the JSON capture down.
run_suite bench_store_query "$OUT_DIR/BENCH_store.json" \
  'BM_StoreAppend|BM_DeviceHistory|BM_RegionVisitors|BM_ColdOpenFirstWindow|BM_WindowScan'
# The paced rows sleep against the wall clock by design; keep the JSON capture
# to the cheaper paced points (the unpaced scenario grid runs in full).
run_suite bench_loadgen "$OUT_DIR/BENCH_loadgen.json" \
  'BM_LoadgenScenario|BM_LoadgenPaced/1000|BM_LoadgenPaced/4000'

echo "Wrote $OUT_DIR/BENCH_spatial.json, $OUT_DIR/BENCH_service.json, $OUT_DIR/BENCH_cleaning.json, $OUT_DIR/BENCH_routing.json, $OUT_DIR/BENCH_cluster.json, $OUT_DIR/BENCH_obs_overhead.json, $OUT_DIR/BENCH_store.json and $OUT_DIR/BENCH_loadgen.json"
