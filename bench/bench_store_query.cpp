// TripStore numbers: ingest throughput, query latency percentiles, and the
// mmap/partitioning/compaction storage axes on a scaled corpus.
//
// The fleet is translated once through a core::Service (128 devices on the
// simulated 7-floor mall), then tiled TRIPS_BENCH_STORE_SCALE times (default
// 100) with each tile renamed and shifted onto its own day — ~100x the base
// corpus, spread over ~100 time partitions. The store is measured on its own,
// so the rows isolate the storage layer from translation cost:
//
//   - ingest: Append of every translated sequence, memory-only and persisted
//     (segment codec + one fsync-less write per sealed segment);
//   - cold open + first window: TripStore::Open on the scaled corpus followed
//     by one narrow SequencesInRange, eager decode vs mmap/lazy — the v2
//     format's reason to exist ("cold" means a cold store, not a cold page
//     cache: the axis isolates decode work, which dwarfs the read either way);
//   - windowed scans: one-hour SequencesInRange windows rotating across the
//     days, time-partitioned layout vs flat;
//   - queries: p50/p95/max wall latency of DeviceHistory (per-device merge)
//     and RegionVisitors (posting-fenced window scan) over a mixed workload;
//   - compaction: merging a flush-fragmented day back into full segments.
//
//   ./bench_store_query [--benchmark_filter=...]
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"

using namespace trips;
using bench::MallContext;

namespace {

constexpr int kReportDevices = 128;

/// Tiles of the base fleet appended to the scaled corpus (~100x by default).
size_t StoreBenchScale() {
  const char* raw = std::getenv("TRIPS_BENCH_STORE_SCALE");
  if (raw != nullptr && *raw != '\0') {
    long parsed = std::strtol(raw, nullptr, 10);
    if (parsed > 0) return static_cast<size_t>(parsed);
  }
  return 100;
}

/// Translates `count` noisy devices once and returns their final semantics.
std::vector<core::MobilitySemanticsSequence> TranslateFleet(const MallContext& ctx,
                                                            int count) {
  auto engine = core::Engine::Builder().BorrowDsm(ctx.dsm.get()).Build();
  if (!engine.ok()) std::abort();
  core::Service service(engine.ValueOrDie(), {.worker_threads = 4});

  auto fleet = bench::MakeFleet(ctx, count, bench::DefaultNoise(7), 977);
  core::TranslationRequest request;
  for (const auto& nd : fleet) request.sequences.push_back(nd.raw);
  auto response = service.Translate(request);
  if (!response.ok()) std::abort();

  std::vector<core::MobilitySemanticsSequence> sequences;
  sequences.reserve(response->results.size());
  for (auto& result : response->results) sequences.push_back(std::move(result.semantics));
  return sequences;
}

/// The base fleet copied `scale` times; tile t's devices are renamed and
/// shifted onto day t, so the corpus spans `scale` day partitions.
std::vector<core::MobilitySemanticsSequence> TiledCorpus(
    const std::vector<core::MobilitySemanticsSequence>& base, size_t scale) {
  std::vector<core::MobilitySemanticsSequence> out;
  out.reserve(base.size() * scale);
  for (size_t t = 0; t < scale; ++t) {
    TimestampMs shift = static_cast<TimestampMs>(t) * kMillisPerDay;
    for (const core::MobilitySemanticsSequence& seq : base) {
      core::MobilitySemanticsSequence copy = seq;
      copy.device_id = "t" + std::to_string(t) + "." + seq.device_id;
      for (core::MobilitySemantic& s : copy.semantics) {
        s.range.begin += shift;
        s.range.end += shift;
      }
      out.push_back(std::move(copy));
    }
  }
  return out;
}

std::unique_ptr<store::TripStore> MemoryStore(
    const std::vector<core::MobilitySemanticsSequence>& sequences) {
  auto stored = store::TripStore::Open({});
  if (!stored.ok()) std::abort();
  for (const auto& seq : sequences) {
    if (!stored.ValueOrDie()->Append(seq).ok()) std::abort();
  }
  return std::move(stored).ValueOrDie();
}

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                   start)
      .count();
}

/// The scaled on-disk corpus every storage-axis benchmark reads: one
/// partitioned directory and one flat one, both sealed and checkpointed.
struct ScaledCorpus {
  std::vector<core::MobilitySemanticsSequence> sequences;
  size_t triplets = 0;
  size_t scale = 0;
  std::string partitioned_dir;
  std::string flat_dir;
  TimeRange span;
  DurationMs base_duration = 0;  ///< wall span of one tile (one day's traffic)
  size_t segments = 0;
  size_t partitions = 0;

  static const ScaledCorpus& Get() {
    static ScaledCorpus corpus = Build();
    return corpus;
  }

  static ScaledCorpus Build() {
    MallContext ctx = MallContext::Make(7, 3);
    ScaledCorpus corpus;
    corpus.scale = StoreBenchScale();
    corpus.sequences = TiledCorpus(TranslateFleet(ctx, kReportDevices), corpus.scale);
    for (const auto& seq : corpus.sequences) corpus.triplets += seq.Size();

    auto tmp = std::filesystem::temp_directory_path();
    corpus.partitioned_dir = (tmp / "trips_bench_store_part").string();
    corpus.flat_dir = (tmp / "trips_bench_store_flat").string();
    const std::pair<std::string, DurationMs> layouts[] = {
        {corpus.partitioned_dir, kMillisPerDay},
        {corpus.flat_dir, 0},
    };
    for (const auto& [dir, partition_ms] : layouts) {
      std::filesystem::remove_all(dir);
      auto stored = store::TripStore::Open(
          {.directory = dir, .partition_ms = partition_ms, .compaction = false});
      if (!stored.ok()) std::abort();
      for (const auto& seq : corpus.sequences) {
        if (!stored.ValueOrDie()->Append(seq).ok()) std::abort();
      }
      if (!stored.ValueOrDie()->Flush().ok()) std::abort();
      store::StoreStats stats = stored.ValueOrDie()->Stats();
      corpus.span = stats.span;
      if (partition_ms > 0) {
        corpus.segments = stats.segments;
        corpus.partitions = stats.partitions;
      }
    }
    corpus.base_duration =
        corpus.span.end - corpus.span.begin -
        static_cast<DurationMs>(corpus.scale - 1) * kMillisPerDay;
    return corpus;
  }

  /// A narrow window inside day `day`'s traffic (an hour, or the middle half
  /// of the tile if its span is shorter than that).
  TimeRange DayWindow(size_t day) const {
    TimestampMs base = span.begin +
                       static_cast<TimestampMs>(day % scale) * kMillisPerDay +
                       base_duration / 4;
    return {base, base + std::min<DurationMs>(kMillisPerHour, base_duration / 2)};
  }
};

struct LatencyDist {
  double p50 = 0, p95 = 0, max = 0;
};

LatencyDist Percentiles(std::vector<double> micros) {
  std::sort(micros.begin(), micros.end());
  LatencyDist d;
  d.p50 = micros[micros.size() / 2];
  d.p95 = micros[micros.size() * 95 / 100];
  d.max = micros.back();
  return d;
}

/// The default payload: ingest + query + storage-axis tables.
void ReportStoreNumbers() {
  const ScaledCorpus& corpus = ScaledCorpus::Get();
  const auto& sequences = corpus.sequences;
  std::printf("=== TripStore, %zu sequences / %zu triplets (%zux tiling), "
              "%zu segments / %zu partitions ===\n\n",
              sequences.size(), corpus.triplets, corpus.scale, corpus.segments,
              corpus.partitions);

  // ---- ingest --------------------------------------------------------------
  auto measure_ingest = [&](const char* label, store::StoreOptions options) {
    auto start = std::chrono::steady_clock::now();
    auto stored = store::TripStore::Open(std::move(options));
    if (!stored.ok()) std::abort();
    for (const auto& seq : sequences) {
      if (!stored.ValueOrDie()->Append(seq).ok()) std::abort();
    }
    if (!stored.ValueOrDie()->Flush().ok()) std::abort();
    double ms = MillisSince(start);
    std::printf("ingest %-10s | %8.1f ms | %8.0f seq/s | %9.0f triplets/s\n", label,
                ms, sequences.size() / (ms / 1000.0), corpus.triplets / (ms / 1000.0));
  };
  measure_ingest("memory", {});
  std::string dir =
      (std::filesystem::temp_directory_path() / "trips_bench_store").string();
  std::filesystem::remove_all(dir);
  measure_ingest("persisted", {.directory = dir});
  std::filesystem::remove_all(dir);
  std::printf("\n");

  // ---- cold open + first window: eager vs mmap -----------------------------
  TimeRange window = corpus.DayWindow(corpus.scale / 2);
  auto measure_cold = [&](const char* label, bool mmap) {
    auto start = std::chrono::steady_clock::now();
    auto stored = store::TripStore::Open({.directory = corpus.partitioned_dir,
                                          .mmap = mmap,
                                          .compaction = false});
    if (!stored.ok()) std::abort();
    auto rows = stored.ValueOrDie()->SequencesInRange(window.begin, window.end);
    double ms = MillisSince(start);
    std::printf("cold open + 1h window %-7s | %8.1f ms | %4zu rows | "
                "%zu/%zu segments decoded\n",
                label, ms, rows.size(),
                stored.ValueOrDie()->Stats().materialized_segments,
                stored.ValueOrDie()->Stats().segments);
    return ms;
  };
  double eager_ms = measure_cold("eager", false);
  double mmap_ms = measure_cold("mmap", true);
  std::printf("cold-path speedup           | %7.1fx\n\n", eager_ms / mmap_ms);

  // ---- windowed scans: partitioned vs flat ---------------------------------
  auto measure_windows = [&](const char* label, const std::string& directory) {
    auto stored = store::TripStore::Open(
        {.directory = directory, .compaction = false});
    if (!stored.ok()) std::abort();
    // Warm every segment so the axis isolates pruning, not first-touch decode.
    stored.ValueOrDie()->ForEachSequence(
        [](store::TripStore::SequenceId, const core::MobilitySemanticsSequence&) {});
    constexpr int kWindowRounds = 512;
    size_t rows = 0;
    auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kWindowRounds; ++i) {
      TimeRange w = corpus.DayWindow(static_cast<size_t>(i) * 7);
      rows += stored.ValueOrDie()->SequencesInRange(w.begin, w.end).size();
    }
    double ms = MillisSince(start);
    std::printf("1h windows %-12s | %8.1f us/query | %.0f rows avg\n", label,
                ms * 1000.0 / kWindowRounds,
                static_cast<double>(rows) / kWindowRounds);
  };
  measure_windows("partitioned", corpus.partitioned_dir);
  measure_windows("flat", corpus.flat_dir);
  std::printf("\n");

  // ---- compaction: a flush-fragmented day merged back to full segments -----
  {
    std::string frag_dir =
        (std::filesystem::temp_directory_path() / "trips_bench_store_frag").string();
    std::filesystem::remove_all(frag_dir);
    auto stored = store::TripStore::Open(
        {.directory = frag_dir, .compaction = false});
    if (!stored.ok()) std::abort();
    // One flush per 16 sequences: the pathology compaction exists to undo.
    size_t appended = 0;
    for (size_t i = 0; i < sequences.size() && appended < 256; ++i, ++appended) {
      if (!stored.ValueOrDie()->Append(sequences[i]).ok()) std::abort();
      if (appended % 16 == 15 && !stored.ValueOrDie()->Flush().ok()) std::abort();
    }
    if (!stored.ValueOrDie()->Flush().ok()) std::abort();
    size_t before = stored.ValueOrDie()->Stats().segments;
    auto start = std::chrono::steady_clock::now();
    if (!stored.ValueOrDie()->Compact().ok()) std::abort();
    std::printf("compaction                  | %8.1f ms | %zu -> %zu segments\n\n",
                MillisSince(start), before, stored.ValueOrDie()->Stats().segments);
    std::filesystem::remove_all(frag_dir);
  }

  // ---- queries -------------------------------------------------------------
  auto reopened = store::TripStore::Open(
      {.directory = corpus.partitioned_dir, .worker_threads = 4, .compaction = false});
  if (!reopened.ok()) std::abort();
  const store::TripStore& db = *reopened.ValueOrDie();
  std::vector<std::string> devices = db.Devices();
  core::MobilityAnalytics analytics = db.BuildAnalytics();
  std::vector<core::RegionStats> top = analytics.TopRegionsByVisits(16);
  store::StoreStats stats = db.Stats();

  constexpr int kRounds = 2000;
  std::vector<double> history_us, visitors_us;
  history_us.reserve(kRounds);
  visitors_us.reserve(kRounds);
  size_t history_triplets = 0, visitor_triplets = 0;
  for (int i = 0; i < kRounds; ++i) {
    const std::string& device = devices[static_cast<size_t>(i) % devices.size()];
    auto t0 = std::chrono::steady_clock::now();
    history_triplets += db.DeviceHistory(device).Size();
    history_us.push_back(MillisSince(t0) * 1000.0);

    const core::RegionStats& region = top[static_cast<size_t>(i) % top.size()];
    TimestampMs begin =
        stats.span.begin + (static_cast<size_t>(i) % 8) * kMillisPerHour / 2;
    t0 = std::chrono::steady_clock::now();
    visitor_triplets += db.RegionVisitors(region.region, begin, begin + kMillisPerHour)
                            .size();
    visitors_us.push_back(MillisSince(t0) * 1000.0);
  }
  LatencyDist history = Percentiles(std::move(history_us));
  LatencyDist visitors = Percentiles(std::move(visitors_us));
  std::printf("%-30s | %8s | %8s | %8s | %s\n", "query (x2000)", "p50_us", "p95_us",
              "max_us", "avg hits");
  std::printf("%-30s | %8.1f | %8.1f | %8.1f | %.1f\n", "DeviceHistory", history.p50,
              history.p95, history.max,
              static_cast<double>(history_triplets) / kRounds);
  std::printf("%-30s | %8.1f | %8.1f | %8.1f | %.1f\n", "RegionVisitors(1h window)",
              visitors.p50, visitors.p95, visitors.max,
              static_cast<double>(visitor_triplets) / kRounds);
  std::printf("\n");
}

// ---- google-benchmark registrations (CI smoke / filtered runs) -------------

const std::vector<core::MobilitySemanticsSequence>& SharedFleet() {
  static MallContext ctx = MallContext::Make(7, 3);
  static auto sequences = TranslateFleet(ctx, 64);
  return sequences;
}

void BM_StoreAppend(benchmark::State& state) {
  const auto& sequences = SharedFleet();
  size_t triplets = 0;
  for (auto _ : state) {
    auto stored = store::TripStore::Open({});
    if (!stored.ok()) std::abort();
    for (const auto& seq : sequences) {
      if (!stored.ValueOrDie()->Append(seq).ok()) std::abort();
      triplets += seq.Size();
    }
    benchmark::DoNotOptimize(stored);
  }
  state.counters["triplets/s"] =
      benchmark::Counter(static_cast<double>(triplets), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_StoreAppend)->Unit(benchmark::kMillisecond);

void BM_DeviceHistory(benchmark::State& state) {
  static auto stored = MemoryStore(SharedFleet());
  static std::vector<std::string> devices = stored->Devices();
  size_t i = 0;
  for (auto _ : state) {
    auto history = stored->DeviceHistory(devices[i++ % devices.size()]);
    benchmark::DoNotOptimize(history);
  }
}
BENCHMARK(BM_DeviceHistory)->Unit(benchmark::kMicrosecond);

void BM_RegionVisitors(benchmark::State& state) {
  static auto stored = MemoryStore(SharedFleet());
  static store::StoreStats stats = stored->Stats();
  static std::vector<core::RegionStats> top =
      stored->BuildAnalytics().TopRegionsByVisits(8);
  size_t i = 0;
  for (auto _ : state) {
    const core::RegionStats& region = top[i % top.size()];
    TimestampMs begin = stats.span.begin + (i % 8) * kMillisPerHour / 2;
    auto visits = stored->RegionVisitors(region.region, begin, begin + kMillisPerHour);
    benchmark::DoNotOptimize(visits);
    ++i;
  }
}
BENCHMARK(BM_RegionVisitors)->Unit(benchmark::kMicrosecond);

/// Cold TripStore::Open of the scaled corpus + one narrow window, eager
/// decode — the v1-era reference path (every segment decoded up front).
void BM_ColdOpenFirstWindow_Eager(benchmark::State& state) {
  const ScaledCorpus& corpus = ScaledCorpus::Get();
  TimeRange window = corpus.DayWindow(corpus.scale / 2);
  for (auto _ : state) {
    auto stored = store::TripStore::Open({.directory = corpus.partitioned_dir,
                                          .mmap = false,
                                          .compaction = false});
    if (!stored.ok()) std::abort();
    auto rows = stored.ValueOrDie()->SequencesInRange(window.begin, window.end);
    benchmark::DoNotOptimize(rows);
  }
  state.counters["segments"] = static_cast<double>(corpus.segments);
}
BENCHMARK(BM_ColdOpenFirstWindow_Eager)->Unit(benchmark::kMillisecond);

/// Same cold open + first window through the mmap path: Open reads only
/// footers, the window materializes just the partitions it overlaps.
void BM_ColdOpenFirstWindow_Mmap(benchmark::State& state) {
  const ScaledCorpus& corpus = ScaledCorpus::Get();
  TimeRange window = corpus.DayWindow(corpus.scale / 2);
  for (auto _ : state) {
    auto stored = store::TripStore::Open({.directory = corpus.partitioned_dir,
                                          .mmap = true,
                                          .compaction = false});
    if (!stored.ok()) std::abort();
    auto rows = stored.ValueOrDie()->SequencesInRange(window.begin, window.end);
    benchmark::DoNotOptimize(rows);
  }
  // Counter capture outside the timed loop: Stats() hydrates the deferred
  // indexes, which the open + window path under measurement never touches.
  size_t materialized = 0;
  {
    auto stored = store::TripStore::Open({.directory = corpus.partitioned_dir,
                                          .mmap = true,
                                          .compaction = false});
    if (!stored.ok()) std::abort();
    auto rows = stored.ValueOrDie()->SequencesInRange(window.begin, window.end);
    benchmark::DoNotOptimize(rows);
    materialized = stored.ValueOrDie()->Stats().materialized_segments;
  }
  state.counters["segments"] = static_cast<double>(corpus.segments);
  state.counters["decoded"] = static_cast<double>(materialized);
}
BENCHMARK(BM_ColdOpenFirstWindow_Mmap)->Unit(benchmark::kMillisecond);

void RunWindowScan(benchmark::State& state, const std::string& directory,
                   const ScaledCorpus& corpus) {
  auto stored = store::TripStore::Open(
      {.directory = directory, .compaction = false});
  if (!stored.ok()) std::abort();
  // Warm every segment so the axis isolates pruning, not first-touch decode.
  stored.ValueOrDie()->ForEachSequence(
      [](store::TripStore::SequenceId, const core::MobilitySemanticsSequence&) {});
  size_t i = 0;
  for (auto _ : state) {
    TimeRange w = corpus.DayWindow(i * 7);
    auto rows = stored.ValueOrDie()->SequencesInRange(w.begin, w.end);
    benchmark::DoNotOptimize(rows);
    ++i;
  }
}

/// One-hour windows against the day-partitioned layout: whole partitions are
/// pruned by the two-level (partition span, segment span) check.
void BM_WindowScan_Partitioned(benchmark::State& state) {
  const ScaledCorpus& corpus = ScaledCorpus::Get();
  RunWindowScan(state, corpus.partitioned_dir, corpus);
}
BENCHMARK(BM_WindowScan_Partitioned)->Unit(benchmark::kMicrosecond);

/// The same windows against the flat layout: only per-segment spans prune.
void BM_WindowScan_Flat(benchmark::State& state) {
  const ScaledCorpus& corpus = ScaledCorpus::Get();
  RunWindowScan(state, corpus.flat_dir, corpus);
}
BENCHMARK(BM_WindowScan_Flat)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  // The latency study is the default payload; a filtered invocation (CI
  // smoke) gets exactly the benchmarks it asked for and nothing else.
  bool filtered = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_filter", 0) == 0) filtered = true;
  }
  if (!filtered) ReportStoreNumbers();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
