// TripStore numbers: ingest throughput and query latency percentiles on the
// bench venue (the simulated 7-floor mall). The fleet is translated once
// through a core::Service; the store is then measured on its own, so the
// rows isolate the storage layer from the translation cost:
//
//   - ingest: Append of every translated sequence, memory-only and persisted
//     (segment codec + one fsync-less write per sealed segment);
//   - queries: p50/p95/max wall latency of DeviceHistory (per-device merge)
//     and RegionVisitors (posting-fenced window scan) over a mixed workload.
//
//   ./bench_store_query [--benchmark_filter=...]
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"

using namespace trips;
using bench::MallContext;

namespace {

constexpr int kReportDevices = 128;

/// Translates `count` noisy devices once and returns their final semantics.
std::vector<core::MobilitySemanticsSequence> TranslateFleet(const MallContext& ctx,
                                                            int count) {
  auto engine = core::Engine::Builder().BorrowDsm(ctx.dsm.get()).Build();
  if (!engine.ok()) std::abort();
  core::Service service(engine.ValueOrDie(), {.worker_threads = 4});

  auto fleet = bench::MakeFleet(ctx, count, bench::DefaultNoise(7), 977);
  core::TranslationRequest request;
  for (const auto& nd : fleet) request.sequences.push_back(nd.raw);
  auto response = service.Translate(request);
  if (!response.ok()) std::abort();

  std::vector<core::MobilitySemanticsSequence> sequences;
  sequences.reserve(response->results.size());
  for (auto& result : response->results) sequences.push_back(std::move(result.semantics));
  return sequences;
}

std::unique_ptr<store::TripStore> MemoryStore(
    const std::vector<core::MobilitySemanticsSequence>& sequences) {
  auto stored = store::TripStore::Open({});
  if (!stored.ok()) std::abort();
  for (const auto& seq : sequences) {
    if (!stored.ValueOrDie()->Append(seq).ok()) std::abort();
  }
  return std::move(stored).ValueOrDie();
}

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                   start)
      .count();
}

struct LatencyDist {
  double p50 = 0, p95 = 0, max = 0;
};

LatencyDist Percentiles(std::vector<double> micros) {
  std::sort(micros.begin(), micros.end());
  LatencyDist d;
  d.p50 = micros[micros.size() / 2];
  d.p95 = micros[micros.size() * 95 / 100];
  d.max = micros.back();
  return d;
}

/// The default payload: one table of ingest + query numbers on 128 devices.
void ReportStoreNumbers() {
  MallContext ctx = MallContext::Make(7, 3);
  auto sequences = TranslateFleet(ctx, kReportDevices);
  size_t triplets = 0;
  for (const auto& seq : sequences) triplets += seq.Size();
  std::printf("=== TripStore, %d devices / %zu triplets ===\n\n", kReportDevices,
              triplets);

  // ---- ingest --------------------------------------------------------------
  auto measure_ingest = [&](const char* label, store::StoreOptions options) {
    auto start = std::chrono::steady_clock::now();
    auto stored = store::TripStore::Open(std::move(options));
    if (!stored.ok()) std::abort();
    for (const auto& seq : sequences) {
      if (!stored.ValueOrDie()->Append(seq).ok()) std::abort();
    }
    if (!stored.ValueOrDie()->Flush().ok()) std::abort();
    double ms = MillisSince(start);
    std::printf("ingest %-10s | %8.1f ms | %8.0f seq/s | %9.0f triplets/s\n", label,
                ms, sequences.size() / (ms / 1000.0), triplets / (ms / 1000.0));
  };
  measure_ingest("memory", {});
  std::string dir =
      (std::filesystem::temp_directory_path() / "trips_bench_store").string();
  std::filesystem::remove_all(dir);
  measure_ingest("persisted", {.directory = dir});

  // Cold reopen: segment decode + index rebuild.
  auto start = std::chrono::steady_clock::now();
  auto reopened = store::TripStore::Open({.directory = dir, .worker_threads = 4});
  if (!reopened.ok()) std::abort();
  std::printf("reopen (4 workers)  | %8.1f ms | %zu segment(s)\n\n",
              MillisSince(start), reopened.ValueOrDie()->Stats().segments);
  std::filesystem::remove_all(dir);

  // ---- queries -------------------------------------------------------------
  const store::TripStore& db = *reopened.ValueOrDie();
  std::vector<std::string> devices = db.Devices();
  core::MobilityAnalytics analytics = db.BuildAnalytics(ctx.dsm.get());
  std::vector<core::RegionStats> top = analytics.TopRegionsByVisits(16);
  store::StoreStats stats = db.Stats();

  constexpr int kRounds = 2000;
  std::vector<double> history_us, visitors_us;
  history_us.reserve(kRounds);
  visitors_us.reserve(kRounds);
  size_t history_triplets = 0, visitor_triplets = 0;
  for (int i = 0; i < kRounds; ++i) {
    const std::string& device = devices[static_cast<size_t>(i) % devices.size()];
    auto t0 = std::chrono::steady_clock::now();
    history_triplets += db.DeviceHistory(device).Size();
    history_us.push_back(MillisSince(t0) * 1000.0);

    const core::RegionStats& region = top[static_cast<size_t>(i) % top.size()];
    TimestampMs begin =
        stats.span.begin + (static_cast<size_t>(i) % 8) * kMillisPerHour / 2;
    t0 = std::chrono::steady_clock::now();
    visitor_triplets += db.RegionVisitors(region.region, begin, begin + kMillisPerHour)
                            .size();
    visitors_us.push_back(MillisSince(t0) * 1000.0);
  }
  LatencyDist history = Percentiles(std::move(history_us));
  LatencyDist visitors = Percentiles(std::move(visitors_us));
  std::printf("%-30s | %8s | %8s | %8s | %s\n", "query (x2000)", "p50_us", "p95_us",
              "max_us", "avg hits");
  std::printf("%-30s | %8.1f | %8.1f | %8.1f | %.1f\n", "DeviceHistory", history.p50,
              history.p95, history.max,
              static_cast<double>(history_triplets) / kRounds);
  std::printf("%-30s | %8.1f | %8.1f | %8.1f | %.1f\n", "RegionVisitors(1h window)",
              visitors.p50, visitors.p95, visitors.max,
              static_cast<double>(visitor_triplets) / kRounds);
  std::printf("\n");
}

// ---- google-benchmark registrations (CI smoke / filtered runs) -------------

const std::vector<core::MobilitySemanticsSequence>& SharedFleet() {
  static MallContext ctx = MallContext::Make(7, 3);
  static auto sequences = TranslateFleet(ctx, 64);
  return sequences;
}

void BM_StoreAppend(benchmark::State& state) {
  const auto& sequences = SharedFleet();
  size_t triplets = 0;
  for (auto _ : state) {
    auto stored = store::TripStore::Open({});
    if (!stored.ok()) std::abort();
    for (const auto& seq : sequences) {
      if (!stored.ValueOrDie()->Append(seq).ok()) std::abort();
      triplets += seq.Size();
    }
    benchmark::DoNotOptimize(stored);
  }
  state.counters["triplets/s"] =
      benchmark::Counter(static_cast<double>(triplets), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_StoreAppend)->Unit(benchmark::kMillisecond);

void BM_DeviceHistory(benchmark::State& state) {
  static auto stored = MemoryStore(SharedFleet());
  static std::vector<std::string> devices = stored->Devices();
  size_t i = 0;
  for (auto _ : state) {
    auto history = stored->DeviceHistory(devices[i++ % devices.size()]);
    benchmark::DoNotOptimize(history);
  }
}
BENCHMARK(BM_DeviceHistory)->Unit(benchmark::kMicrosecond);

void BM_RegionVisitors(benchmark::State& state) {
  static auto stored = MemoryStore(SharedFleet());
  static store::StoreStats stats = stored->Stats();
  static std::vector<core::RegionStats> top =
      stored->BuildAnalytics().TopRegionsByVisits(8);
  size_t i = 0;
  for (auto _ : state) {
    const core::RegionStats& region = top[i % top.size()];
    TimestampMs begin = stats.span.begin + (i % 8) * kMillisPerHour / 2;
    auto visits = stored->RegionVisitors(region.region, begin, begin + kMillisPerHour);
    benchmark::DoNotOptimize(visits);
    ++i;
  }
}
BENCHMARK(BM_RegionVisitors)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  // The latency study is the default payload; a filtered invocation (CI
  // smoke) gets exactly the benchmarks it asked for and nothing else.
  bool filtered = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_filter", 0) == 0) filtered = true;
  }
  if (!filtered) ReportStoreNumbers();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
