// Experiment F3b (paper Fig. 3, Annotation layer): event-identification
// quality of the learning-based models against the stop/move baseline of the
// prior GPS systems ([10,12]), plus splitting and spatial-matching quality
// and annotation throughput. Expected shape: learned models beat the
// two-pattern baseline, mainly by separating pass-by/wander from stay.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.h"

using namespace trips;
using bench::MallContext;

namespace {

std::vector<config::LabeledSegment> CollectSegments(const MallContext& ctx,
                                                    int devices, uint64_t seed) {
  Rng rng(seed);
  std::vector<config::LabeledSegment> segments;
  for (int d = 0; d < devices; ++d) {
    auto dev = ctx.generator->GenerateDevice("seg-" + std::to_string(d), 0, &rng);
    if (!dev.ok()) std::abort();
    for (const core::MobilitySemantic& s : dev->semantics.semantics) {
      config::LabeledSegment seg;
      seg.event = s.event;
      seg.segment.records = dev->truth.RecordsIn(s.range);
      if (seg.segment.records.size() >= 2) segments.push_back(std::move(seg));
    }
  }
  return segments;
}

void ReportEventIdentification() {
  MallContext ctx = MallContext::Make(7, 3);
  std::vector<config::LabeledSegment> train = CollectSegments(ctx, 20, 42);
  std::vector<config::LabeledSegment> test = CollectSegments(ctx, 10, 4242);
  std::printf("=== Fig. 3 / Annotation: event identification ===\n\n");
  std::printf("training segments: %zu, held-out segments: %zu\n\n", train.size(),
              test.size());

  // Vocabulary in first-appearance order (same as EventClassifier).
  std::vector<std::string> vocab;
  for (const auto& seg : train) {
    if (std::find(vocab.begin(), vocab.end(), seg.event) == vocab.end()) {
      vocab.push_back(seg.event);
    }
  }
  std::vector<annotation::Sample> test_x;
  std::vector<int> test_y;
  annotation::BuildTrainingMatrix(test, vocab, &test_x, &test_y);

  std::printf("%-22s %9s", "model", "accuracy");
  for (const std::string& v : vocab) std::printf(" %11s", ("F1:" + v).c_str());
  std::printf("\n");

  for (annotation::ModelKind kind :
       {annotation::ModelKind::kDecisionTree, annotation::ModelKind::kRandomForest,
        annotation::ModelKind::kLogisticRegression}) {
    annotation::EventClassifier classifier({.model = kind});
    if (!classifier.Train(train).ok()) std::abort();
    size_t hits = 0;
    std::vector<size_t> tp(vocab.size()), fp(vocab.size()), fn(vocab.size());
    for (size_t i = 0; i < test_x.size(); ++i) {
      annotation::FeatureVector f{};
      std::copy(test_x[i].begin(), test_x[i].end(), f.begin());
      std::string predicted = classifier.Identify(f);
      auto it = std::find(vocab.begin(), vocab.end(), predicted);
      int pred = it == vocab.end() ? -1 : static_cast<int>(it - vocab.begin());
      if (pred == test_y[i]) {
        ++hits;
        ++tp[test_y[i]];
      } else {
        if (pred >= 0) ++fp[pred];
        ++fn[test_y[i]];
      }
    }
    std::printf("%-22s %8.1f%%", annotation::ModelKindName(kind),
                100.0 * hits / test_x.size());
    for (size_t c = 0; c < vocab.size(); ++c) {
      double p = tp[c] + fp[c] > 0 ? static_cast<double>(tp[c]) / (tp[c] + fp[c]) : 0;
      double r = tp[c] + fn[c] > 0 ? static_cast<double>(tp[c]) / (tp[c] + fn[c]) : 0;
      double f1 = p + r > 0 ? 2 * p * r / (p + r) : 0;
      std::printf(" %10.2f ", f1);
    }
    std::printf("\n");
  }

  // Stop/move baseline: only two patterns; anything not "stay" counts as
  // pass-by, so wander is unreachable for it.
  size_t baseline_hits = 0;
  for (size_t i = 0; i < test_x.size(); ++i) {
    double mean_speed = test_x[i][annotation::kMeanSpeed];
    std::string predicted = mean_speed < 0.5 ? core::kEventStay : core::kEventPassBy;
    if (predicted == vocab[static_cast<size_t>(test_y[i])]) ++baseline_hits;
  }
  std::printf("%-22s %8.1f%%   (two-pattern stop/move scheme of [10,12])\n\n",
              "stop_move_baseline", 100.0 * baseline_hits / test_x.size());

  // End-to-end annotation agreement (trained TRIPS vs baseline) on fresh devices.
  annotation::EventClassifier trained;
  if (!trained.Train(train).ok()) std::abort();
  annotation::Annotator annotator(ctx.dsm.get(), &trained);
  annotation::StopMoveBaseline baseline(ctx.dsm.get());
  Rng rng(777);
  double trips_event = 0, base_event = 0, trips_region = 0;
  const int kEval = 8;
  for (int d = 0; d < kEval; ++d) {
    auto dev = ctx.generator->GenerateDevice("eval", 0, &rng);
    if (!dev.ok()) std::abort();
    core::SemanticsAgreement a =
        core::CompareSemantics(dev->semantics, annotator.Annotate(dev->truth));
    core::SemanticsAgreement b =
        core::CompareSemantics(dev->semantics, baseline.Annotate(dev->truth));
    trips_event += a.event_match;
    trips_region += a.region_match;
    base_event += b.event_match;
  }
  std::printf("end-to-end (noiseless data, %d devices): TRIPS event match %.0f%%, "
              "region match %.0f%%; stop/move baseline event match %.0f%%\n\n",
              kEval, trips_event / kEval * 100, trips_region / kEval * 100,
              base_event / kEval * 100);
}

void BM_SplitSequence(benchmark::State& state) {
  static MallContext ctx = MallContext::Make(7, 3);
  static auto fleet = bench::MakeFleet(ctx, 1, bench::DefaultNoise(7), 808);
  for (auto _ : state) {
    auto snippets = annotation::SplitSequence(fleet[0].raw);
    benchmark::DoNotOptimize(snippets);
  }
  state.counters["records"] = static_cast<double>(fleet[0].raw.records.size());
}
BENCHMARK(BM_SplitSequence)->Unit(benchmark::kMillisecond);

void BM_ExtractFeatures(benchmark::State& state) {
  static MallContext ctx = MallContext::Make(7, 3);
  static auto fleet = bench::MakeFleet(ctx, 1, bench::DefaultNoise(7), 909);
  for (auto _ : state) {
    auto f = annotation::ExtractFeatures(fleet[0].raw);
    benchmark::DoNotOptimize(f);
  }
}
BENCHMARK(BM_ExtractFeatures)->Unit(benchmark::kMicrosecond);

void BM_TrainModel(benchmark::State& state) {
  static MallContext ctx = MallContext::Make(7, 3);
  static auto train = CollectSegments(ctx, 10, 111);
  auto kind = static_cast<annotation::ModelKind>(state.range(0));
  for (auto _ : state) {
    annotation::EventClassifier classifier({.model = kind});
    if (!classifier.Train(train).ok()) std::abort();
    benchmark::DoNotOptimize(classifier);
  }
  state.SetLabel(annotation::ModelKindName(kind));
}
BENCHMARK(BM_TrainModel)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

void BM_Annotate(benchmark::State& state) {
  static MallContext ctx = MallContext::Make(7, 3);
  static auto fleet = bench::MakeFleet(ctx, 1, bench::DefaultNoise(7), 121);
  static annotation::EventClassifier classifier;  // rule-based
  annotation::Annotator annotator(ctx.dsm.get(), &classifier);
  size_t records = 0;
  for (auto _ : state) {
    auto semantics = annotator.Annotate(fleet[0].raw);
    benchmark::DoNotOptimize(semantics);
    records += fleet[0].raw.records.size();
  }
  state.counters["records/s"] =
      benchmark::Counter(static_cast<double>(records), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Annotate)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  ReportEventIdentification();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
