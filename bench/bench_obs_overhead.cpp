// Observability overhead: the cost of the obs metrics subsystem on the
// serving hot paths. Two layers of measurement:
//
//   * Micro: one Counter::Add / Histogram::Record — the primitive cost a
//     recording site pays (a relaxed fetch_add on a thread-local shard),
//     plus the disabled-registry early-return it pays when recording is off.
//   * Macro: end-to-end Service batch throughput with metrics recording on
//     vs off on the Fig. 5 workload — the acceptance gate is that recording
//     costs < 2% of throughput.
//
//   ./bench_obs_overhead [--benchmark_filter=...]
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "obs/metrics.h"

using namespace trips;
using bench::MallContext;

namespace {

// ---- micro: metric primitives ----------------------------------------------

void BM_CounterAdd(benchmark::State& state) {
  obs::Counter counter;
  for (auto _ : state) counter.Add(1);
  benchmark::DoNotOptimize(counter.Value());
}
BENCHMARK(BM_CounterAdd);

void BM_CounterAddDisabled(benchmark::State& state) {
  obs::MetricsRegistry registry(/*enabled=*/false);
  obs::Counter* counter = registry.counter("bench");
  for (auto _ : state) counter->Add(1);
  benchmark::DoNotOptimize(counter->Value());
}
BENCHMARK(BM_CounterAddDisabled);

void BM_HistogramRecord(benchmark::State& state) {
  obs::Histogram histogram;
  uint64_t v = 1;
  for (auto _ : state) {
    histogram.Record(v);
    v = v * 6364136223846793005ull + 1442695040888963407ull;  // vary buckets
    v &= (1ull << 22) - 1;                                    // ns..ms range
  }
  benchmark::DoNotOptimize(histogram.Summarize().count);
}
BENCHMARK(BM_HistogramRecord);

void BM_StageTimerDisabled(benchmark::State& state) {
  obs::MetricsRegistry registry(/*enabled=*/false);
  obs::Histogram* histogram = registry.histogram("bench");
  for (auto _ : state) {
    obs::StageTimer timer(histogram);  // must skip both clock reads
    benchmark::DoNotOptimize(histogram);
  }
}
BENCHMARK(BM_StageTimerDisabled);

// ---- macro: end-to-end service overhead ------------------------------------

std::shared_ptr<const core::Engine> SharedEngine(const MallContext& ctx) {
  auto engine = core::Engine::Builder().BorrowDsm(ctx.dsm.get()).Build();
  if (!engine.ok()) std::abort();
  return engine.ValueOrDie();
}

// One Service batch run per iteration; metrics_on toggles recording on the
// SAME code path (the registry gate), so the delta between the two arcs is
// exactly the recording cost. The CI artifact (BENCH_obs_overhead.json)
// tracks both counters; overhead = 1 - records/s(on) / records/s(off).
void BM_ServiceBatchMetrics(benchmark::State& state) {
  static MallContext ctx = MallContext::Make(7, 3);
  static std::shared_ptr<const core::Engine> engine = SharedEngine(ctx);
  static auto fleet = bench::MakeFleet(ctx, 32, bench::DefaultNoise(7), 461);

  core::TranslationRequest request;
  size_t records = 0;
  for (const auto& nd : fleet) {
    request.sequences.push_back(nd.raw);
    records += nd.raw.records.size();
  }

  const bool metrics_on = state.range(0) != 0;
  core::ServiceOptions options;
  options.worker_threads = 3;
  options.metrics = std::make_shared<obs::MetricsRegistry>(metrics_on);
  core::Service service(engine, options);

  size_t processed = 0;
  for (auto _ : state) {
    auto response = service.Translate(request);
    if (!response.ok()) std::abort();
    benchmark::DoNotOptimize(response);
    processed += records;
  }
  state.counters["records/s"] = benchmark::Counter(
      static_cast<double>(processed), benchmark::Counter::kIsRate);
  state.counters["metrics_on"] = metrics_on ? 1 : 0;
}
BENCHMARK(BM_ServiceBatchMetrics)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
