// Ablation study over the design choices DESIGN.md calls out: which layers
// and which models actually buy the output quality. Grid: cleaning on/off x
// complementing on/off, the four event-model families, and the splitter's
// density radius. Run on the default-noise mall fleet with ground truth.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.h"

using namespace trips;
using bench::MallContext;

namespace {

struct Scores {
  double region = 0;
  double event = 0;
};

Scores Evaluate(const MallContext& ctx, const std::vector<bench::NoisyDevice>& fleet,
                core::TranslatorOptions opt,
                const std::vector<config::LabeledSegment>& training) {
  core::Translator translator(ctx.dsm.get(), opt);
  if (!translator.Init().ok()) std::abort();
  if (!training.empty()) {
    if (!translator.TrainEventModel(training).ok()) std::abort();
  }
  std::vector<positioning::PositioningSequence> raws;
  for (const auto& nd : fleet) raws.push_back(nd.raw);
  auto results = translator.TranslateAll(raws);
  if (!results.ok()) std::abort();
  Scores scores;
  for (size_t i = 0; i < fleet.size(); ++i) {
    core::SemanticsAgreement a =
        core::CompareSemantics(fleet[i].truth.semantics, (*results)[i].semantics);
    scores.region += a.region_match;
    scores.event += a.event_match;
  }
  scores.region /= static_cast<double>(fleet.size());
  scores.event /= static_cast<double>(fleet.size());
  return scores;
}

std::vector<config::LabeledSegment> Training(const MallContext& ctx, int devices,
                                             uint64_t seed) {
  Rng rng(seed);
  std::vector<config::LabeledSegment> out;
  for (int d = 0; d < devices; ++d) {
    auto dev = ctx.generator->GenerateDevice("t", 0, &rng);
    if (!dev.ok()) std::abort();
    for (const core::MobilitySemantic& s : dev->semantics.semantics) {
      config::LabeledSegment seg;
      seg.event = s.event;
      seg.segment.records = dev->truth.RecordsIn(s.range);
      if (seg.segment.records.size() >= 2) out.push_back(std::move(seg));
    }
  }
  return out;
}

void ReportAblation() {
  MallContext ctx = MallContext::Make(7, 3);
  positioning::ErrorModelOptions noise = bench::DefaultNoise(7);
  noise.gaps_per_hour = 4.0;
  auto fleet = bench::MakeFleet(ctx, 16, noise, 987);
  auto training = Training(ctx, 12, 654);

  std::printf("=== Ablation: layers ===\n\n");
  std::printf("%10s %14s | %8s %8s\n", "cleaning", "complementing", "region%",
              "event%");
  for (bool clean : {false, true}) {
    for (bool complement : {false, true}) {
      core::TranslatorOptions opt;
      opt.enable_cleaning = clean;
      opt.enable_complementing = complement;
      Scores s = Evaluate(ctx, fleet, opt, training);
      std::printf("%10s %14s | %7.1f%% %7.1f%%\n", clean ? "on" : "off",
                  complement ? "on" : "off", s.region * 100, s.event * 100);
    }
  }

  std::printf("\n=== Ablation: event model ===\n\n");
  std::printf("%-22s | %8s %8s\n", "model", "region%", "event%");
  {
    core::TranslatorOptions opt;
    Scores s = Evaluate(ctx, fleet, opt, {});
    std::printf("%-22s | %7.1f%% %7.1f%%\n", "rule_based(cold)", s.region * 100,
                s.event * 100);
  }
  for (annotation::ModelKind kind :
       {annotation::ModelKind::kDecisionTree, annotation::ModelKind::kRandomForest,
        annotation::ModelKind::kLogisticRegression, annotation::ModelKind::kKnn}) {
    core::TranslatorOptions opt;
    opt.classifier.model = kind;
    Scores s = Evaluate(ctx, fleet, opt, training);
    std::printf("%-22s | %7.1f%% %7.1f%%\n", annotation::ModelKindName(kind),
                s.region * 100, s.event * 100);
  }

  std::printf("\n=== Ablation: splitter density radius ===\n\n");
  std::printf("%12s | %8s %8s\n", "eps_space_m", "region%", "event%");
  for (double eps : {1.5, 3.0, 5.0, 8.0}) {
    core::TranslatorOptions opt;
    opt.annotator.splitter.eps_space = eps;
    Scores s = Evaluate(ctx, fleet, opt, training);
    std::printf("%12.1f | %7.1f%% %7.1f%%\n", eps, s.region * 100, s.event * 100);
  }

  std::printf("\n=== Ablation: cleaner smoothing window ===\n\n");
  std::printf("%12s | %8s %8s\n", "window", "region%", "event%");
  for (int window : {0, 3, 7, 15}) {
    core::TranslatorOptions opt;
    opt.cleaner.smoothing_window = static_cast<size_t>(window);
    Scores s = Evaluate(ctx, fleet, opt, training);
    std::printf("%12d | %7.1f%% %7.1f%%\n", window, s.region * 100, s.event * 100);
  }
  std::printf("\n");
}

// Timing counterpart: cost of each layer toggle combination.
void BM_AblationLayers(benchmark::State& state) {
  static MallContext ctx = MallContext::Make(7, 3);
  static auto fleet = bench::MakeFleet(ctx, 8, bench::DefaultNoise(7), 321);
  core::TranslatorOptions opt;
  opt.enable_cleaning = state.range(0) != 0;
  opt.enable_complementing = state.range(1) != 0;
  std::vector<positioning::PositioningSequence> raws;
  for (const auto& nd : fleet) raws.push_back(nd.raw);
  for (auto _ : state) {
    core::Translator translator(ctx.dsm.get(), opt);
    if (!translator.Init().ok()) std::abort();
    auto results = translator.TranslateAll(raws);
    if (!results.ok()) std::abort();
    benchmark::DoNotOptimize(results);
  }
  state.SetLabel(std::string(opt.enable_cleaning ? "clean" : "noclean") + "+" +
                 (opt.enable_complementing ? "compl" : "nocompl"));
}
BENCHMARK(BM_AblationLayers)
    ->Args({0, 0})
    ->Args({1, 0})
    ->Args({0, 1})
    ->Args({1, 1})
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  ReportAblation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
